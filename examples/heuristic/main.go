// Heuristic feeds the paper's Figure 3, 4 and 5 programs to the
// compile-time analysis and prints the update matrices and per-loop
// mechanism choices, annotated with what the paper says should happen.
package main

import (
	"fmt"

	"repro/olden"
)

var figures = []struct {
	title string
	note  string
	src   string
}{
	{
		title: "Figure 3: a simple loop with induction variables",
		note: `s and t are induction variables (diagonal entries); u is not.
s wins with affinity 90 ≥ threshold ⇒ migrate s; u's dereferences cache.`,
		src: `
struct node {
  struct node *left __affinity(90);
  struct node *right __affinity(70);
};
void f(struct node *s, struct node *t, struct node *u) {
  while (s) {
    s = s->left;
    t = t->right->left;
    u = s->right;
  }
}
`,
	},
	{
		title: "Figure 4: TreeAdd",
		note: `Both recursive calls execute every iteration, so the update of t
combines as 1−(1−0.9)(1−0.7) = 97% ⇒ migrate (and the loop is parallel).`,
		src: `
struct tree {
  int val;
  struct tree *left __affinity(90);
  struct tree *right __affinity(70);
};
int TreeAdd(struct tree *t) {
  if (t == NULL) return 0;
  else return touch(futurecall(TreeAdd(t->left))) + TreeAdd(t->right) + t->val;
}
`,
	},
	{
		title: "Figure 5: bottleneck detection",
		note: `WalkAndTraverse spawns a Traverse of the SAME tree per list item:
migrating the traversal would serialize on the root ⇒ demoted to cache.
TraverseAndWalk walks a DIFFERENT list at each node ⇒ no bottleneck.`,
		src: `
struct tree {
  struct tree *left;
  struct tree *right;
  struct list *list;
};
struct list { int v; struct list *next; };

void visit(struct list *l) { return; }

void Traverse(struct tree *t) {
  if (t == NULL) return;
  Traverse(t->left);
  Traverse(t->right);
}

void Walk(struct list *l) {
  while (l) {
    visit(l);
    l = l->next;
  }
}

void WalkAndTraverse(struct list *l, struct tree *t) {
  while (l) {
    futurecall(Traverse(t));
    l = l->next;
  }
}

void TraverseAndWalk(struct tree *t) {
  if (t == NULL) return;
  futurecall(TraverseAndWalk(t->left));
  futurecall(TraverseAndWalk(t->right));
  Walk(t->list);
}
`,
	},
}

func main() {
	for _, f := range figures {
		fmt.Println("=============================================================")
		fmt.Println(f.title)
		fmt.Println("=============================================================")
		report, err := olden.Analyze(f.src)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(report)
		fmt.Println("paper:", f.note)
		fmt.Println()
	}
}
