// Coherence compares the three cache-coherence schemes of Appendix A —
// local knowledge, global knowledge (eager release), and bilateral — on a
// workload with long-lived read-mostly shared data: worker threads
// repeatedly migrate to their processor and read a shared table, while a
// writer occasionally updates a small part of it.
//
// The local scheme throws the whole cache away on every migration receive,
// so read-mostly data keeps missing; the global and bilateral schemes keep
// unchanged lines valid, at the price of per-write tracking. This is the
// trade-off behind Table 3 (where Health's miss rate drops from 87% to 10%
// with global knowledge, yet local knowledge still wins overall).
package main

import (
	"fmt"

	"repro/olden"
)

func main() {
	const (
		procs     = 8
		tableLen  = 512 // shared words, homed on processor 0
		rounds    = 20
		writesPer = 4 // words the writer touches per round
	)

	for _, scheme := range []olden.SchemeKind{
		olden.LocalKnowledge, olden.GlobalKnowledge, olden.Bilateral,
	} {
		r := olden.New(olden.Config{Procs: procs, Scheme: scheme})
		read := &olden.Site{Name: "table.read", Mech: olden.Cache}
		write := &olden.Site{Name: "table.write", Mech: olden.Cache}

		cycles := r.Run(0, func(t *olden.Thread) {
			table := t.Alloc(0, tableLen*8)
			for i := 0; i < tableLen; i++ {
				t.StoreInt(write, table, uint32(i*8), int64(i))
			}
			for round := 0; round < rounds; round++ {
				// The writer updates a few words.
				for w := 0; w < writesPer; w++ {
					idx := (round*writesPer + w) % tableLen
					t.StoreInt(write, table, uint32(idx*8), int64(round))
				}
				// Each worker migrates home and scans the table.
				var fs []interface{ Touch(*olden.Thread) int64 }
				for p := 1; p < procs; p++ {
					p := p
					fs = append(fs, olden.Spawn(t, func(c *olden.Thread) int64 {
						c.MigrateTo(p)
						var sum int64
						for i := 0; i < tableLen; i++ {
							sum += c.LoadInt(read, table, uint32(i*8))
						}
						return sum
					}))
				}
				for _, f := range fs {
					f.Touch(t)
				}
			}
		})

		s := r.M.Stats.Snapshot()
		fmt.Printf("%-9s: makespan %9d cycles, remote reads %7d, misses %6d (%.1f%%), invalidation msgs %d, stamp checks %d\n",
			scheme, cycles, s.RemoteReads, s.Misses, s.MissPct(), s.Invalidations, s.StampChecks)
	}
	fmt.Println("\nRead-mostly sharing favours global/bilateral knowledge; the Olden")
	fmt.Println("benchmarks mostly write shared data between migrations, which is why")
	fmt.Println("the paper ships local knowledge as the default (Appendix A).")
}
