// Quickstart: build a distributed linked structure, traverse it with both
// of Olden's mechanisms, and look at what the machine did.
package main

import (
	"fmt"

	"repro/olden"
)

// A list node: value at offset 0, next pointer at offset 8.
const (
	offVal  = 0
	offNext = 8
	nodeSz  = 16
)

func main() {
	const procs = 4
	const items = 32

	r := olden.New(olden.Config{Procs: procs})

	build := &olden.Site{Name: "quickstart.build", Mech: olden.Cache}
	walkM := &olden.Site{Name: "quickstart.migrate", Mech: olden.Migrate}
	walkC := &olden.Site{Name: "quickstart.cache", Mech: olden.Cache}

	makespan := r.Run(0, func(t *olden.Thread) {
		// Build a blocked list: items i live on processor i*procs/items,
		// exactly Figure 2's "blocked distribution".
		nodes := make([]olden.GP, items)
		for i := range nodes {
			nodes[i] = t.Alloc(i*procs/items, nodeSz)
		}
		for i, n := range nodes {
			t.StoreInt(build, n, offVal, int64(i))
			if i+1 < items {
				t.StorePtr(build, n, offNext, nodes[i+1])
			} else {
				t.StoreWord(build, n, offNext, 0)
			}
		}

		// Traverse by computation migration: the thread follows the
		// data, crossing processors only at block boundaries.
		sum := int64(0)
		for g := nodes[0]; !g.IsNil(); g = t.LoadPtr(walkM, g, offNext) {
			sum += t.LoadInt(walkM, g, offVal)
		}
		fmt.Printf("migrating walk: sum=%d (thread ended on processor %d)\n", sum, t.Loc())

		// Traverse again by software caching: the thread stays put and
		// 64-byte lines come to it.
		t.MigrateTo(0)
		sum = 0
		for g := nodes[0]; !g.IsNil(); g = t.LoadPtr(walkC, g, offNext) {
			sum += t.LoadInt(walkC, g, offVal)
		}
		fmt.Printf("caching walk:   sum=%d (thread stayed on processor %d)\n", sum, t.Loc())

		// Futures: sum the four blocks in parallel.
		total := int64(0)
		var fs []interface{ Touch(*olden.Thread) int64 }
		for p := 0; p < procs; p++ {
			head := nodes[p*items/procs]
			end := olden.GP(0)
			if (p+1)*items/procs < items {
				end = nodes[(p+1)*items/procs]
			}
			fs = append(fs, olden.Spawn(t, func(c *olden.Thread) int64 {
				var s int64
				for g := head; g != end && !g.IsNil(); g = c.LoadPtr(walkM, g, offNext) {
					s += c.LoadInt(walkM, g, offVal)
				}
				return s
			}))
		}
		for _, f := range fs {
			total += f.Touch(t)
		}
		fmt.Printf("parallel sum:   %d across %d futures\n", total, procs)
	})

	s := r.M.Stats.Snapshot()
	fmt.Printf("\nsimulated makespan: %d cycles\n", makespan)
	fmt.Printf("migrations: %d, cache misses: %d, pointer tests: %d\n",
		s.Migrations, s.Misses, s.PtrTests)
}
