/* Paper Figure 3: a list walk whose update matrix has a non-trivial
 * off-diagonal row. `oldenc figure3.c` prints the matrix; `-lint` points
 * out that u's store is dead (the figure keeps it only for the matrix). */
struct node {
  struct node *left __affinity(90);
  struct node *right __affinity(70);
};
void f(struct node *s, struct node *t, struct node *u) {
  while (s) {
    s = s->left;
    t = t->right->left;
    u = s->right;
  }
}
