/* Hostile fixture for `oldenc -analyze`: every function here defeats one
 * leg of the effect/cost analysis, and the goldens pin how.
 *
 *   spin    — while(1): no trip bound, steps<=⊤.
 *   rewire  — a migrating list walk whose iteration also stores through a
 *             second, possibly-aliased pointer: the differential demotes
 *             the migration (aliased-write:node.next via m), and the
 *             write keeps the program uncertifiable.
 *   grow    — allocates in a loop whose variable never advances through
 *             its own fields: no progress argument, allocs<=⊤.
 *   creep   — counts up to a literal limit from a starting value the
 *             analysis cannot see: the limit alone bounds nothing,
 *             steps<=⊤.
 *   stall   — a pointer chase that only advances on some paths: no
 *             iteration is guaranteed to make progress, steps<=⊤.
 */
struct node {
  int v;
  struct node *next __affinity(95);
};

void spin(struct node *n) {
  while (1) {
    n->v = 0;
  }
}

void rewire(struct node *l, struct node *m) {
  while (l) {
    m->next = l->next;
    l = l->next;
  }
}

struct node *grow(struct node *l) {
  struct node *n;
  while (l) {
    n = alloc();
    n->next = l;
    l = n;
  }
  return l;
}

int creep(int n) {
  int i;
  i = 0 - 1000000;
  while (i < 10) {
    i = i + 1;
  }
  return i;
}

void stall(struct node *p, int c) {
  while (p) {
    if (c) {
      p = p->next;
    }
    c = 0;
  }
}
