/* Paper Figure 4: TreeAdd. The sequenced recursive calls combine t's
 * update as 1 - (1-0.9)(1-0.7) = 0.97, so the heuristic migrates t. */
struct tree {
  int val;
  struct tree *left __affinity(90);
  struct tree *right __affinity(70);
};
int TreeAdd(struct tree *t) {
  if (t == NULL) return 0;
  else return TreeAdd(t->left) + TreeAdd(t->right) + t->val;
}
