/* Paper Figure 5: the bottleneck pass. WalkAndTraverse spawns a Traverse
 * of the same tree per list element, so migrating the traversal would
 * serialize on the root; the second pass demotes it to caching, and
 * `oldenc -lint` surfaces the demotion. TraverseAndWalk has no bottleneck. */
struct tree {
  struct tree *left;
  struct tree *right;
  struct list *list;
};
struct list { int v; struct list *next; };

void visit(struct list *l) { return; }

void Traverse(struct tree *t) {
  if (t == NULL) return;
  Traverse(t->left);
  Traverse(t->right);
}

void Walk(struct list *l) {
  while (l) {
    visit(l);
    l = l->next;
  }
}

void WalkAndTraverse(struct list *l, struct tree *t) {
  while (l) {
    futurecall(Traverse(t));
    l = l->next;
  }
}

void TraverseAndWalk(struct tree *t) {
  if (t == NULL) return;
  futurecall(TraverseAndWalk(t->left));
  futurecall(TraverseAndWalk(t->right));
  Walk(t->list);
}
