// Listdist reproduces the analysis of Figure 2: an N-element list evenly
// divided among P processors. With a blocked layout, computation migration
// needs only P−1 migrations; with a cyclic layout it needs N−1. Caching
// needs N(P−1)/P remote fetches either way. The crossover motivates the
// paper's selection heuristic.
package main

import (
	"flag"
	"fmt"

	"repro/olden"
)

const (
	offVal  = 0
	offNext = 8
	nodeSz  = 16
)

func main() {
	n := flag.Int("n", 1024, "list length")
	procs := flag.Int("procs", 8, "machine size")
	flag.Parse()

	layouts := map[string]func(i int) int{
		"blocked": func(i int) int { return i * *procs / *n },
		"cyclic":  func(i int) int { return i % *procs },
	}
	fmt.Printf("N=%d items over P=%d processors\n\n", *n, *procs)
	fmt.Printf("%-8s %-9s %11s %12s %14s\n", "layout", "mechanism", "migrations", "remote refs", "cycles")

	for _, name := range []string{"blocked", "cyclic"} {
		for _, mech := range []olden.Mechanism{olden.Migrate, olden.Cache} {
			r := olden.New(olden.Config{Procs: *procs})
			site := &olden.Site{Name: "listdist.walk", Mech: mech}
			build := &olden.Site{Name: "listdist.build", Mech: olden.Cache}

			var head olden.GP
			r.Run(0, func(t *olden.Thread) {
				nodes := make([]olden.GP, *n)
				for i := range nodes {
					nodes[i] = t.Alloc(layouts[name](i), nodeSz)
				}
				for i, g := range nodes {
					t.StoreInt(build, g, offVal, int64(i))
					if i+1 < *n {
						t.StorePtr(build, g, offNext, nodes[i+1])
					} else {
						t.StoreWord(build, g, offNext, 0)
					}
				}
				head = nodes[0]
			})
			r.ResetForKernel()
			cycles := r.Run(0, func(t *olden.Thread) {
				for g := head; !g.IsNil(); g = t.LoadPtr(site, g, offNext) {
					t.LoadInt(site, g, offVal)
					t.Work(10)
				}
			})
			s := r.M.Stats.Snapshot()
			fmt.Printf("%-8s %-9s %11d %12d %14d\n",
				name, mech, s.Migrations, s.RemoteReads+s.RemoteWrites, cycles)
		}
	}
	fmt.Printf("\nclosed forms: blocked/migrate P-1 = %d; cyclic/migrate N-1 = %d;\n", *procs-1, *n-1)
	fmt.Printf("cached either way ≈ 2·N(P-1)/P = %d remote refs (val+next per remote node)\n",
		2**n*(*procs-1)/(*procs))
}
