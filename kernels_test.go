package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/barneshut"
	"repro/internal/bench/bisort"
	"repro/internal/bench/em3d"
	"repro/internal/bench/health"
	"repro/internal/bench/mst"
	"repro/internal/bench/perimeter"
	"repro/internal/bench/power"
	"repro/internal/bench/treeadd"
	"repro/internal/bench/tsp"
	"repro/internal/bench/voronoi"
	"repro/olden"
)

// benchKernels returns the mini-C kernel of every benchmark.
func benchKernels() map[string]string {
	return map[string]string{
		"treeadd":   treeadd.KernelSource,
		"power":     power.KernelSource,
		"tsp":       tsp.KernelSource,
		"mst":       mst.KernelSource,
		"bisort":    bisort.KernelSource,
		"voronoi":   voronoi.KernelSource,
		"em3d":      em3d.KernelSource,
		"barneshut": barneshut.KernelSource,
		"perimeter": perimeter.KernelSource,
		"health":    health.KernelSource,
	}
}

// TestHeuristicMatchesTable2 is the whole-suite integration check: the
// compile-time heuristic's M vs M+C classification of every benchmark
// kernel must match Table 2's "Heuristic choice" column.
func TestHeuristicMatchesTable2(t *testing.T) {
	for name, src := range benchKernels() {
		info, ok := bench.Get(name)
		if !ok {
			t.Fatalf("benchmark %q not registered", name)
		}
		rep, err := olden.Analyze(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantM := info.Choice == "M"
		if got := rep.UsesMigrationOnly(); got != wantM {
			t.Errorf("%s: heuristic M-only=%v, Table 2 says %s", name, got, info.Choice)
		}
	}
}

// TestKernelsLintClean keeps the ten benchmark kernels clean under the
// full lint suite (`oldenc -lint -bench <name>` reports nothing). The one
// sanctioned exception is barneshut's bottleneck-demotion warning: the
// second heuristic pass really does demote the cell walk inside the
// parallel force loop (§4.3), and the lint exists precisely to surface
// that silent decision — suppressing it would defeat the check.
func TestKernelsLintClean(t *testing.T) {
	allowed := map[string]map[string]bool{
		"barneshut": {"bottleneck-demotion": true},
	}
	for name, src := range benchKernels() {
		rep, err := olden.Analyze(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, d := range rep.Lint() {
			if allowed[name][d.Code] {
				continue
			}
			t.Errorf("%s kernel: unexpected lint diagnostic %s", name, d)
		}
	}
}

// TestAllBenchmarksVerifyAt32 exercises the paper's full machine size once
// per benchmark at a small problem scale.
func TestAllBenchmarksVerifyAt32(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range bench.Names() {
		info, _ := bench.Get(name)
		res := info.Run(bench.Config{Procs: 32, Scale: 64})
		if !res.Verified() {
			t.Errorf("%s at P=32: checksum %#x != %#x", name, res.Check, res.WantCheck)
		}
	}
}

// TestTablesRender smoke-tests the table generators end to end at a tiny
// scale.
func TestTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := bench.Table2([]int{1, 4}, 64, olden.LocalKnowledge); err != nil {
		t.Fatalf("table 2: %v", err)
	}
	if _, err := bench.Table3(4, 64); err != nil {
		t.Fatalf("table 3: %v", err)
	}
	if out := bench.Table1(); len(out) == 0 {
		t.Fatal("table 1 empty")
	}
	if out := bench.Figure2(256, 4); len(out) == 0 {
		t.Fatal("figure 2 empty")
	}
}

// TestCurveRenders smoke-tests the per-benchmark curve generator.
func TestCurveRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := bench.Curve("treeadd", []int{1, 4}, 64, olden.LocalKnowledge)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty curve")
	}
	if _, err := bench.Curve("nope", []int{1}, 64, olden.LocalKnowledge); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}
