// Wall-clock benchmarks for the simulator itself. Every other perf gate in
// the repo measures *simulated cycles*; these measure how fast the
// simulator executes them — the quantity that bounds served throughput per
// oldend core. Each benchmark reports ns/sim-cycle (wall-clock nanoseconds
// per simulated cycle, the column oldenreport renders) alongside Go's
// standard ns/op and -benchmem allocation counts.
//
//	go test -bench WallClock -benchmem
//	make profile   # pprof CPU + allocation profiles over the same suite
//
// BENCH_SCALE divides the paper's problem sizes (default 64, like the
// Table benchmarks): BENCH_SCALE=8 go test -bench WallClock -benchtime=1x
package repro_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/rt"
)

// wallProcs is the machine size the wall-clock suite runs at; P=4 matches
// the committed BENCH_*.json pins and the EXPERIMENTS.md geomean.
const wallProcs = 4

// parseBenchScale reads a problem-size divisor from the BENCH_SCALE
// environment text, falling back to def when the text is empty or not a
// positive integer. It is the one parser behind every harness that honors
// the knob.
func parseBenchScale(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return def
	}
	return v
}

// envScale returns the effective suite scale: BENCH_SCALE, or def.
func envScale(def int) int { return parseBenchScale(os.Getenv("BENCH_SCALE"), def) }

// wallCase is one wall-clock measurement: a kernel under one scheme.
type wallCase struct {
	bench string // registered benchmark name
	label string // sub-benchmark label (bench/scheme)
	cfg   bench.Config
}

// wallCases enumerates the full suite: all ten kernels × the three
// coherence schemes at P=4. Both the benchmark and its smoke test walk
// this list, so the smoke test proves exactly the suite CI measures.
func wallCases(scale int) []wallCase {
	var cases []wallCase
	for _, name := range bench.Names() {
		for _, scheme := range coherence.Kinds() {
			cases = append(cases, wallCase{
				bench: name,
				label: fmt.Sprintf("%s/%s", name, scheme),
				cfg:   bench.Config{Procs: wallProcs, Scale: scale, Scheme: scheme},
			})
		}
	}
	return cases
}

// runWall executes one case and fails the harness if the kernel's answer
// does not verify against the sequential reference.
func runWall(tb testing.TB, name string, cfg bench.Config) bench.Result {
	info, ok := bench.Get(name)
	if !ok {
		tb.Fatalf("benchmark %q not registered", name)
	}
	res := info.Run(cfg)
	if !res.Verified() {
		tb.Fatalf("%s: check %#x != %#x", name, res.Check, res.WantCheck)
	}
	return res
}

// reportSimRate attaches the wall-clock-per-simulated-cycle metric.
func reportSimRate(b *testing.B, cycles int64) {
	if cycles > 0 && b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cycles), "ns/sim-cycle")
	}
}

// BenchmarkWallClock runs every kernel under every coherence scheme at P=4
// and reports wall-clock time, allocations, and ns/sim-cycle. This is the
// suite `make profile` and the bench-wallclock CI job drive, and the one
// EXPERIMENTS.md's before/after table quotes.
func BenchmarkWallClock(b *testing.B) {
	for _, c := range wallCases(suiteScale) {
		c := c
		b.Run(c.label, func(b *testing.B) {
			b.ReportAllocs()
			var res bench.Result
			for i := 0; i < b.N; i++ {
				res = runWall(b, c.bench, c.cfg)
			}
			reportSimRate(b, res.Cycles)
		})
	}
}

// BenchmarkWallClockBaseline measures the sequential (no-overhead) runs —
// the pure single-thread hot path with no scheduler handoffs at all.
func BenchmarkWallClockBaseline(b *testing.B) {
	scale := suiteScale
	for _, name := range bench.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var res bench.Result
			for i := 0; i < b.N; i++ {
				res = runWall(b, name, bench.Config{Baseline: true, Scale: scale})
			}
			reportSimRate(b, res.Cycles)
		})
	}
}

// BenchmarkWallClockModes isolates the two mechanism extremes for
// profiling: migrate-only stresses scheduler handoffs and coherence
// releases, cache-only stresses the cache-lookup fast path.
func BenchmarkWallClockModes(b *testing.B) {
	scale := suiteScale
	for _, name := range []string{"treeadd", "em3d", "health"} {
		for _, mode := range []rt.Mode{rt.MigrateOnly, rt.CacheOnly} {
			name, mode := name, mode
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				b.ReportAllocs()
				var res bench.Result
				for i := 0; i < b.N; i++ {
					res = runWall(b, name, bench.Config{Procs: wallProcs, Scale: scale, Mode: mode})
				}
				reportSimRate(b, res.Cycles)
			})
		}
	}
}

// TestBenchScaleParse pins the BENCH_SCALE parsing contract: empty,
// garbage, zero and negative fall back to the default; positive integers
// win.
func TestBenchScaleParse(t *testing.T) {
	cases := []struct {
		in   string
		def  int
		want int
	}{
		{"", 64, 64},
		{"8", 64, 8},
		{"1", 64, 1},
		{"0", 64, 64},
		{"-4", 64, 64},
		{"sixteen", 64, 64},
		{"64", 16, 64},
	}
	for _, c := range cases {
		if got := parseBenchScale(c.in, c.def); got != c.want {
			t.Errorf("parseBenchScale(%q, %d) = %d; want %d", c.in, c.def, got, c.want)
		}
	}
}

// TestWallClockSmoke runs every case of the wall-clock suite exactly once
// at scale 1/64 — the -benchtime=1x semantics — proving the suite stays
// runnable (and verified) as kernels and schemes evolve.
func TestWallClockSmoke(t *testing.T) {
	for _, c := range wallCases(64) {
		runWall(t, c.bench, c.cfg)
	}
}
