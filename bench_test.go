// Package repro_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper, plus ablations of the design choices
// DESIGN.md calls out. Custom metrics carry the reproduced quantities
// (speedups, miss rates) alongside Go's wall-clock numbers:
//
//	go test -bench=Table2 -benchmem
//	BENCH_SCALE=8 go test -bench=. -benchtime=1x
//
// Problem sizes default to 1/64 of the paper's so the full suite stays
// fast (BENCH_SCALE divides the paper sizes instead when set to a positive
// integer); cmd/oldenbench regenerates the tables at any scale.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/rt"
	"repro/olden"

	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

// benchScale is the default size divisor for the testing.B harness; the
// BENCH_SCALE environment knob overrides it (parsed by parseBenchScale in
// wallclock_bench_test.go, which also pins the parsing contract).
const benchScale = 64

// suiteScale is the effective divisor for this process.
var suiteScale = envScale(benchScale)

// benchProcs is the machine size the Table 2 benchmarks report speedup at.
const benchProcs = 8

// BenchmarkTable2 runs every benchmark row: sequential baseline plus the
// parallel run, reporting speedup and simulated cycles as metrics.
func BenchmarkTable2(b *testing.B) {
	for _, name := range bench.Names() {
		info, _ := bench.Get(name)
		b.Run(name, func(b *testing.B) {
			var base, par bench.Result
			for i := 0; i < b.N; i++ {
				base = info.Run(bench.Config{Baseline: true, Scale: suiteScale})
				par = info.Run(bench.Config{Procs: benchProcs, Scale: suiteScale})
			}
			if !base.Verified() || !par.Verified() {
				b.Fatalf("verification failed")
			}
			b.ReportMetric(float64(base.Cycles)/float64(par.Cycles), "speedup")
			b.ReportMetric(float64(par.Cycles), "sim-cycles")
			b.ReportMetric(float64(par.Stats.Migrations), "migrations")
		})
	}
}

// BenchmarkTable2MigrateOnly reports the migrate-only column for the M+C
// benchmarks — the paper's headline comparison.
func BenchmarkTable2MigrateOnly(b *testing.B) {
	for _, name := range bench.Names() {
		info, _ := bench.Get(name)
		if info.Choice != "M+C" {
			continue
		}
		b.Run(name, func(b *testing.B) {
			var base, mo bench.Result
			for i := 0; i < b.N; i++ {
				base = info.Run(bench.Config{Baseline: true, Scale: suiteScale})
				mo = info.Run(bench.Config{Procs: benchProcs, Scale: suiteScale, Mode: rt.MigrateOnly})
			}
			if !base.Verified() || !mo.Verified() {
				b.Fatal("verification failed")
			}
			b.ReportMetric(float64(base.Cycles)/float64(mo.Cycles), "speedup")
		})
	}
}

// BenchmarkTable3 runs the M+C benchmarks under each coherence scheme,
// reporting the miss percentage of remote references (Table 3's columns).
func BenchmarkTable3(b *testing.B) {
	schemes := []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral}
	for _, name := range bench.Names() {
		info, _ := bench.Get(name)
		if info.Choice != "M+C" {
			continue
		}
		for _, scheme := range schemes {
			b.Run(fmt.Sprintf("%s/%s", name, scheme), func(b *testing.B) {
				var res bench.Result
				for i := 0; i < b.N; i++ {
					res = info.Run(bench.Config{Procs: benchProcs, Scale: suiteScale, Scheme: scheme})
				}
				if !res.Verified() {
					b.Fatal("verification failed")
				}
				b.ReportMetric(res.Stats.MissPct(), "miss-pct")
				b.ReportMetric(float64(res.Pages), "pages-cached")
				b.ReportMetric(float64(res.Cycles), "sim-cycles")
			})
		}
	}
}

// BenchmarkFigure2 measures the four layout×mechanism list traversals.
func BenchmarkFigure2(b *testing.B) {
	const n, p = 1024, 8
	layouts := map[string]func(i int) int{
		"blocked": func(i int) int { return bench.BlockedProc(i, n, p) },
		"cyclic":  func(i int) int { return bench.CyclicProc(i, p) },
	}
	for _, lay := range []string{"blocked", "cyclic"} {
		for _, mech := range []olden.Mechanism{olden.Migrate, olden.Cache} {
			b.Run(fmt.Sprintf("%s/%s", lay, mech), func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					r := rt.New(rt.Config{Procs: p})
					nodes := make([]olden.GP, n)
					for j := range nodes {
						nodes[j] = bench.RawAlloc(r, layouts[lay](j), 16)
					}
					for j := range nodes {
						if j+1 < n {
							bench.RawStorePtr(r, nodes[j], 8, nodes[j+1])
						}
					}
					site := &rt.Site{Name: "layout.walk", Mech: mech}
					r.ResetForKernel()
					cycles = r.Run(0, func(t *rt.Thread) {
						for g := nodes[0]; !g.IsNil(); g = t.LoadPtr(site, g, 8) {
							t.Work(10)
						}
					})
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
			})
		}
	}
}

// BenchmarkAblationThreshold sweeps the migration threshold and reports how
// many of the ten benchmark kernels remain migration-only — the knob §4.3
// fixes at 90%.
func BenchmarkAblationThreshold(b *testing.B) {
	kernels := benchKernels()
	for _, th := range []int{50, 70, 86, 90, 95, 101} {
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			var mOnly int
			for i := 0; i < b.N; i++ {
				mOnly = 0
				for _, src := range kernels {
					p := olden.DefaultParams()
					p.Threshold = float64(th) / 100
					rep, err := olden.AnalyzeWith(src, p)
					if err != nil {
						b.Fatal(err)
					}
					if rep.UsesMigrationOnly() {
						mOnly++
					}
				}
			}
			b.ReportMetric(float64(mOnly), "M-only-kernels")
		})
	}
}

// BenchmarkAblationCostRatio sweeps the migration:miss cost ratio (the
// paper's CM-5 measured ≈7×) and reports where the blocked-list crossover
// between mechanisms sits.
func BenchmarkAblationCostRatio(b *testing.B) {
	const n, p = 512, 8
	for _, ratio := range []int64{1, 3, 7, 20} {
		b.Run(fmt.Sprintf("migrate-to-miss=%dx", ratio), func(b *testing.B) {
			var mig, cac int64
			for i := 0; i < b.N; i++ {
				cost := machine.DefaultCost()
				total := cost.MissTotal() * ratio
				cost.MigrateSend = total * 2 / 7
				cost.MigrateNet = total * 3 / 7
				cost.MigrateRecv = total - cost.MigrateSend - cost.MigrateNet
				mig = runList(cost, n, p, olden.Migrate)
				cac = runList(cost, n, p, olden.Cache)
			}
			b.ReportMetric(float64(mig), "migrate-cycles")
			b.ReportMetric(float64(cac), "cache-cycles")
			b.ReportMetric(float64(mig)/float64(cac), "migrate-over-cache")
		})
	}
}

// runList traverses a blocked list under the given cost model.
func runList(cost machine.Cost, n, p int, mech olden.Mechanism) int64 {
	r := rt.New(rt.Config{Procs: p, Cost: cost})
	nodes := make([]olden.GP, n)
	for j := range nodes {
		nodes[j] = bench.RawAlloc(r, bench.BlockedProc(j, n, p), 16)
	}
	for j := range nodes {
		if j+1 < n {
			bench.RawStorePtr(r, nodes[j], 8, nodes[j+1])
		}
	}
	site := &rt.Site{Name: "costs.walk", Mech: mech}
	r.ResetForKernel()
	return r.Run(0, func(t *rt.Thread) {
		for g := nodes[0]; !g.IsNil(); g = t.LoadPtr(site, g, 8) {
			t.Work(10)
		}
	})
}

// BenchmarkAblationCoherence compares the three schemes on the benchmark
// most sensitive to them (Health, per Table 3).
func BenchmarkAblationCoherence(b *testing.B) {
	info, _ := bench.Get("health")
	for _, scheme := range []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral} {
		b.Run(scheme.String(), func(b *testing.B) {
			var res bench.Result
			for i := 0; i < b.N; i++ {
				res = info.Run(bench.Config{Procs: benchProcs, Scale: suiteScale, Scheme: scheme})
			}
			if !res.Verified() {
				b.Fatal("verification failed")
			}
			b.ReportMetric(float64(res.Cycles), "sim-cycles")
			b.ReportMetric(res.Stats.MissPct(), "miss-pct")
		})
	}
}

// BenchmarkAnalysis measures the compile-time analysis itself over all ten
// kernels.
func BenchmarkAnalysis(b *testing.B) {
	kernels := benchKernels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range kernels {
			if _, err := olden.Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	}
}
