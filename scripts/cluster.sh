#!/usr/bin/env bash
# cluster.sh — `make cluster`: a local sharded cluster in one command.
# Boots three oldend replicas and oldenrouter in front of them, streams
# all four logs to the terminal, and tears the whole thing down on
# ctrl-C. Point clients (or `oldenload -via-router`) at the router; the
# surface is identical to a single oldend.
set -euo pipefail

ROUTER_ADDR=${CLUSTER_ADDR:-127.0.0.1:8090}
BASE_PORT=${CLUSTER_BASE_PORT:-8081}
NREPLICAS=${CLUSTER_REPLICAS:-3}
PROBE_OWNERS=${CLUSTER_PROBE_OWNERS:-2}
VERIFY_EVERY=${CLUSTER_VERIFY_EVERY:-16}

BIN=$(mktemp -d)
trap 'kill 0 2>/dev/null; rm -rf "$BIN"' EXIT INT TERM

go build -o "$BIN/oldend" ./cmd/oldend
go build -o "$BIN/oldenrouter" ./cmd/oldenrouter

REPLICAS=""
for i in $(seq 0 $((NREPLICAS - 1))); do
  port=$((BASE_PORT + i))
  "$BIN/oldend" -addr "127.0.0.1:$port" -shard "shard$i" 2>&1 \
    | sed "s/^/[shard$i] /" &
  REPLICAS="$REPLICAS,http://127.0.0.1:$port"
done
REPLICAS=${REPLICAS#,}

for _ in $(seq 1 50); do
  curl -fsS "http://127.0.0.1:$BASE_PORT/readyz" >/dev/null 2>&1 && break
  sleep 0.2
done

"$BIN/oldenrouter" -addr "$ROUTER_ADDR" -replicas "$REPLICAS" \
  -probe-owners "$PROBE_OWNERS" -verify-every "$VERIFY_EVERY" 2>&1 \
  | sed 's/^/[router] /' &

echo "cluster: router on http://$ROUTER_ADDR fronting $NREPLICAS replicas (ctrl-C stops everything)"
wait
