#!/usr/bin/env bash
# serve_smoke.sh — boots oldend, drives it with oldenload, and asserts the
# serving-layer acceptance criteria:
#   1. a cache-hit repeat of a traced run is byte-identical and carries the
#      trace digest, and a verify re-run agrees with the memoized digest;
#   2. a queue-saturating mixed burst completes with zero 5xx (429
#      shedding is the admission-control contract, not an error) and the
#      latency SLO holds on cached traffic;
#   3. end-to-end tracing: a request with a sampled traceparent keeps its
#      trace id on the response, appears in /debug/requests, and its
#      /debug/trace/<id> export — service spans merged with simulated
#      cache events — passes the strict Chrome trace validator;
#   4. SIGTERM during load drains in-flight jobs cleanly: readiness fails
#      first, admitted runs finish, the process exits 0.
# Artifacts (latency reports, /metrics scrape, access log, the sampled
# Chrome trace and /debug/requests snapshot) land in $SMOKE_OUT for CI
# upload.
set -euo pipefail

ADDR=${SMOKE_ADDR:-127.0.0.1:18080}
OUT=${SMOKE_OUT:-/tmp/oldend-smoke}
mkdir -p "$OUT"

go build -o "$OUT/oldend" ./cmd/oldend
go build -o "$OUT/oldenload" ./cmd/oldenload
go build -o "$OUT/validatetrace" ./cmd/validatetrace

"$OUT/oldend" -addr "$ADDR" -workers 2 -queue 4 2>"$OUT/oldend.log" &
OLDEND_PID=$!
trap 'kill -9 $OLDEND_PID 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$ADDR/readyz" >/dev/null
echo "smoke: oldend ready on $ADDR"

# The catalog endpoint must serve the same enumeration oldenbench -list
# prints — the no-drift contract between the three binaries.
curl -fsS "http://$ADDR/benchmarks" >"$OUT/benchmarks.json"
go run ./cmd/oldenbench -list | cmp - "$OUT/benchmarks.json"
echo "smoke: /benchmarks matches oldenbench -list byte-for-byte"

# 1. Deterministic memoization: repeat of a traced run.
BODY='{"benchmark":"treeadd","procs":4,"scale":64}'
curl -fsS -X POST -d "$BODY" "http://$ADDR/run" -o "$OUT/r1.json" -D "$OUT/h1.txt"
curl -fsS -X POST -d "$BODY" "http://$ADDR/run" -o "$OUT/r2.json" -D "$OUT/h2.txt"
cmp "$OUT/r1.json" "$OUT/r2.json"
grep -qi '^X-Oldend-Cache: hit' "$OUT/h2.txt"
grep -qi '^X-Oldend-Trace-Digest: events=' "$OUT/h2.txt"
curl -fsS -X POST -d '{"benchmark":"treeadd","procs":4,"scale":64,"verify":true}' \
  "http://$ADDR/run" >/dev/null
echo "smoke: cache hit byte-identical, digest attached, verify re-run matched"

# 3 (before the load phases, while the server is quiet). End-to-end
# tracing: a fixed sampled traceparent must come back as the response's
# trace id, show up in /debug/requests, and produce a merged Chrome
# trace that passes the strict validator with both service spans and
# simulated cache events.
TID=4bf92f3577b34da6a3ce929d0e0e4736
curl -fsS -X POST -d '{"benchmark":"em3d","procs":2,"scale":64,"no_cache":true}' \
  -H "traceparent: 00-$TID-00f067aa0ba902b7-01" \
  "http://$ADDR/run" -o /dev/null -D "$OUT/htrace.txt"
grep -qi "^X-Oldend-Trace-Id: $TID" "$OUT/htrace.txt"
grep -qi "^X-Request-Id: $TID" "$OUT/htrace.txt"
curl -fsS "http://$ADDR/debug/requests" >"$OUT/debug-requests.json"
grep -q "$TID" "$OUT/debug-requests.json"
grep -q '"dominant"' "$OUT/debug-requests.json"
curl -fsS "http://$ADDR/debug/trace/$TID" >"$OUT/trace-$TID.json"
"$OUT/validatetrace" -min-service 4 -require-sim "$OUT/trace-$TID.json"
curl -fsS "http://$ADDR/debug/trace/$TID?format=tree" >"$OUT/trace-tree-$TID.json"
grep -q '"queue_wait"' "$OUT/trace-tree-$TID.json"
# Error responses carry a trace id too — the header contract covers
# every status, not just 200s.
ERR_CODE=$(curl -s -o /dev/null -D "$OUT/herr.txt" -w '%{http_code}' \
  -X POST -d 'not json' "http://$ADDR/run")
[ "$ERR_CODE" = 400 ]
grep -qi '^X-Oldend-Trace-Id: ' "$OUT/herr.txt"
echo "smoke: traceparent round-trip, /debug endpoints and merged Chrome trace validated"

# 2a. Deliberate over-admission: open loop far beyond capacity. Gate:
# zero 5xx, every non-200 a clean 429 shed.
"$OUT/oldenload" -url "http://$ADDR" -rps 250 -duration 5s \
  -mix "treeadd:4:64,em3d:2:64,power:4:64" -no-cache \
  -slo-error-rate 0 -min-requests 100 \
  -out "$OUT/load-burst.json" | tee "$OUT/load-burst.txt"

# 2b. Cached closed loop: latency SLO on the memoized hot path, with
# every 10th request traced so the run ends in span breakdowns of the
# slowest sampled requests.
"$OUT/oldenload" -url "http://$ADDR" -c 8 -duration 3s \
  -mix "treeadd:4:64,em3d:2:64" \
  -trace-every 10 -slowest 3 \
  -slo-p95 250 -slo-error-rate 0 -min-requests 100 \
  -out "$OUT/load-cached.json" | tee "$OUT/load-cached.txt"
grep -q 'dominates at depth' "$OUT/load-cached.txt" \
  || { echo "smoke: oldenload printed no span breakdowns" >&2; exit 1; }

# Server-side cross-check via the metrics scrape artifact.
curl -fsS "http://$ADDR/metrics" >"$OUT/metrics.prom"
grep -Eq 'oldend_shed_total [1-9]' "$OUT/metrics.prom" \
  || { echo "smoke: over-admission never shed" >&2; exit 1; }
if grep -E 'oldend_requests_total\{code="5' "$OUT/metrics.prom"; then
  echo "smoke: server counted 5xx responses" >&2; exit 1
fi
grep -Eq 'oldend_cache_hits_total [1-9]' "$OUT/metrics.prom" \
  || { echo "smoke: no cache hits recorded" >&2; exit 1; }
echo "smoke: metrics scrape confirms shedding, zero 5xx, cache hits"

# 3. SIGTERM during live load: clean drain.
("$OUT/oldenload" -url "http://$ADDR" -rps 50 -duration 4s -mix "treeadd:4:64" -no-cache \
  >"$OUT/load-drain.txt" 2>&1 || true) &
LOAD_PID=$!
sleep 1
kill -TERM "$OLDEND_PID"
wait "$OLDEND_PID" # exits 0 only on a clean drain
wait "$LOAD_PID" || true
grep -q 'drained cleanly' "$OUT/oldend.log"
echo "smoke: SIGTERM under load drained cleanly"
echo "smoke: PASS (artifacts in $OUT)"
