#!/usr/bin/env bash
# serve_smoke.sh — boots oldend, drives it with oldenload, and asserts the
# serving-layer acceptance criteria:
#   1. a cache-hit repeat of a traced run is byte-identical and carries the
#      trace digest, and a verify re-run agrees with the memoized digest;
#   2. a queue-saturating mixed burst completes with zero 5xx (429
#      shedding is the admission-control contract, not an error) and the
#      latency SLO holds on cached traffic;
#   3. SIGTERM during load drains in-flight jobs cleanly: readiness fails
#      first, admitted runs finish, the process exits 0.
# Artifacts (latency reports, /metrics scrape, access log) land in
# $SMOKE_OUT for CI upload.
set -euo pipefail

ADDR=${SMOKE_ADDR:-127.0.0.1:18080}
OUT=${SMOKE_OUT:-/tmp/oldend-smoke}
mkdir -p "$OUT"

go build -o "$OUT/oldend" ./cmd/oldend
go build -o "$OUT/oldenload" ./cmd/oldenload

"$OUT/oldend" -addr "$ADDR" -workers 2 -queue 4 2>"$OUT/oldend.log" &
OLDEND_PID=$!
trap 'kill -9 $OLDEND_PID 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$ADDR/readyz" >/dev/null
echo "smoke: oldend ready on $ADDR"

# The catalog endpoint must serve the same enumeration oldenbench -list
# prints — the no-drift contract between the three binaries.
curl -fsS "http://$ADDR/benchmarks" >"$OUT/benchmarks.json"
go run ./cmd/oldenbench -list | cmp - "$OUT/benchmarks.json"
echo "smoke: /benchmarks matches oldenbench -list byte-for-byte"

# 1. Deterministic memoization: repeat of a traced run.
BODY='{"benchmark":"treeadd","procs":4,"scale":64}'
curl -fsS -X POST -d "$BODY" "http://$ADDR/run" -o "$OUT/r1.json" -D "$OUT/h1.txt"
curl -fsS -X POST -d "$BODY" "http://$ADDR/run" -o "$OUT/r2.json" -D "$OUT/h2.txt"
cmp "$OUT/r1.json" "$OUT/r2.json"
grep -qi '^X-Oldend-Cache: hit' "$OUT/h2.txt"
grep -qi '^X-Oldend-Trace-Digest: events=' "$OUT/h2.txt"
curl -fsS -X POST -d '{"benchmark":"treeadd","procs":4,"scale":64,"verify":true}' \
  "http://$ADDR/run" >/dev/null
echo "smoke: cache hit byte-identical, digest attached, verify re-run matched"

# 2a. Deliberate over-admission: open loop far beyond capacity. Gate:
# zero 5xx, every non-200 a clean 429 shed.
"$OUT/oldenload" -url "http://$ADDR" -rps 250 -duration 5s \
  -mix "treeadd:4:64,em3d:2:64,power:4:64" -no-cache \
  -slo-error-rate 0 -min-requests 100 \
  -out "$OUT/load-burst.json" | tee "$OUT/load-burst.txt"

# 2b. Cached closed loop: latency SLO on the memoized hot path.
"$OUT/oldenload" -url "http://$ADDR" -c 8 -duration 3s \
  -mix "treeadd:4:64,em3d:2:64" \
  -slo-p95 250 -slo-error-rate 0 -min-requests 100 \
  -out "$OUT/load-cached.json" | tee "$OUT/load-cached.txt"

# Server-side cross-check via the metrics scrape artifact.
curl -fsS "http://$ADDR/metrics" >"$OUT/metrics.prom"
grep -Eq 'oldend_shed_total [1-9]' "$OUT/metrics.prom" \
  || { echo "smoke: over-admission never shed" >&2; exit 1; }
if grep -E 'oldend_requests_total\{code="5' "$OUT/metrics.prom"; then
  echo "smoke: server counted 5xx responses" >&2; exit 1
fi
grep -Eq 'oldend_cache_hits_total [1-9]' "$OUT/metrics.prom" \
  || { echo "smoke: no cache hits recorded" >&2; exit 1; }
echo "smoke: metrics scrape confirms shedding, zero 5xx, cache hits"

# 3. SIGTERM during live load: clean drain.
("$OUT/oldenload" -url "http://$ADDR" -rps 50 -duration 4s -mix "treeadd:4:64" -no-cache \
  >"$OUT/load-drain.txt" 2>&1 || true) &
LOAD_PID=$!
sleep 1
kill -TERM "$OLDEND_PID"
wait "$OLDEND_PID" # exits 0 only on a clean drain
wait "$LOAD_PID" || true
grep -q 'drained cleanly' "$OUT/oldend.log"
echo "smoke: SIGTERM under load drained cleanly"
echo "smoke: PASS (artifacts in $OUT)"
