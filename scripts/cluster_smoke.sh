#!/usr/bin/env bash
# cluster_smoke.sh — boots three oldend replicas behind oldenrouter and
# asserts the sharded-cluster acceptance criteria:
#   1. a routed run lands on a shard (named in X-Oldend-Shard), a repeat
#      through the router is a byte-identical cache hit, and fetching the
#      same configuration directly from the answering replica returns the
#      same bytes — ⟨replica, run-config⟩ addressing is real;
#   2. a verify sweep (every 4th routed execution duplicated to a second
#      replica) over the full kernel catalog ends with
#      oldenrouter_verify_mismatch_total = 0 — replicas agree
#      byte-for-byte, the determinism contract holds across processes;
#   3. routed load spreads over all three shards within the balance gate
#      (oldenload -via-router -expect-shards/-max-shard-spread) and the
#      repeated mix is served mostly from the federated caches;
#   4. killing one replica mid-traffic costs nothing visible: requests
#      retry to the next ring owner with zero 5xx;
#   5. a sampled traceparent survives the router hop, and both
#      /debug/requests and /debug/trace/<id> answer THROUGH the router.
# Artifacts (balance reports, router + replica logs, /metrics scrapes,
# the fetched traces) land in $CLUSTER_OUT for CI upload.
set -euo pipefail

ROUTER_ADDR=${CLUSTER_ADDR:-127.0.0.1:18090}
BASE_PORT=${CLUSTER_BASE_PORT:-18091}
OUT=${CLUSTER_OUT:-/tmp/oldend-cluster}
mkdir -p "$OUT"

go build -o "$OUT/oldend" ./cmd/oldend
go build -o "$OUT/oldenrouter" ./cmd/oldenrouter
go build -o "$OUT/oldenload" ./cmd/oldenload

REPLICAS=""
PIDS=()
for i in 0 1 2; do
  port=$((BASE_PORT + i))
  "$OUT/oldend" -addr "127.0.0.1:$port" -workers 2 -queue 32 -shard "shard$i" \
    2>"$OUT/oldend-$i.log" &
  PIDS+=($!)
  REPLICAS="$REPLICAS,http://127.0.0.1:$port"
done
REPLICAS=${REPLICAS#,}

"$OUT/oldenrouter" -addr "$ROUTER_ADDR" -replicas "$REPLICAS" \
  -probe-owners 2 -verify-every 4 -down-cooldown 5s \
  2>"$OUT/oldenrouter.log" &
ROUTER_PID=$!
trap 'kill -9 $ROUTER_PID "${PIDS[@]}" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fsS "http://$ROUTER_ADDR/readyz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$ROUTER_ADDR/readyz" >"$OUT/readyz.json"
grep -q '"ready_shards":3' "$OUT/readyz.json"
echo "cluster-smoke: router ready on $ROUTER_ADDR with 3 shards"

# The router's catalog is any replica's catalog, byte-for-byte.
curl -fsS "http://$ROUTER_ADDR/benchmarks" >"$OUT/benchmarks.json"
curl -fsS "http://127.0.0.1:$BASE_PORT/benchmarks" | cmp - "$OUT/benchmarks.json"

# 1. Routed execution and federated caching. The first request executes
# on an owner of the key; the repeat must be a cache hit with identical
# bytes; and asking the answering replica DIRECTLY for the same
# configuration must return those same bytes — the shard really is the
# home of that result.
BODY='{"benchmark":"treeadd","procs":4,"scale":64}'
curl -fsS -X POST -d "$BODY" "http://$ROUTER_ADDR/run" -o "$OUT/r1.json" -D "$OUT/h1.txt"
SHARD=$(grep -i '^X-Oldend-Shard:' "$OUT/h1.txt" | tr -d '\r' | awk '{print $2}')
[ -n "$SHARD" ]
curl -fsS -X POST -d "$BODY" "http://$ROUTER_ADDR/run" -o "$OUT/r2.json" -D "$OUT/h2.txt"
cmp "$OUT/r1.json" "$OUT/r2.json"
grep -qi '^X-Oldend-Cache: hit' "$OUT/h2.txt"
grep -qi '^X-Oldend-Trace-Digest: events=' "$OUT/h2.txt"
SHARD_PORT=$((BASE_PORT + ${SHARD#shard}))
curl -fsS -X POST -d "$BODY" "http://127.0.0.1:$SHARD_PORT/run" | cmp - "$OUT/r1.json"
echo "cluster-smoke: routed repeat byte-identical ($SHARD), direct replica fetch agrees"

# 2. Cross-replica verify sweep: run the whole catalog through the
# router twice (the second pass is cache-hit traffic on the primaries,
# and every 4th execution was duplicated to a peer). Zero mismatches is
# the gate; at least one match proves the verifier actually ran.
BENCHES=$(grep -o '"name": "[a-z0-9]*"' "$OUT/benchmarks.json" | cut -d'"' -f4)
[ -n "$BENCHES" ]
for b in $BENCHES; do
  for p in 1 4; do
    curl -fsS -X POST -d "{\"benchmark\":\"$b\",\"procs\":$p,\"scale\":64}" \
      "http://$ROUTER_ADDR/run" -o /dev/null
  done
done
curl -fsS "http://$ROUTER_ADDR/metrics" >"$OUT/router-metrics-verify.prom"
grep -Eq 'oldenrouter_verify_total\{outcome="match"\} [1-9]' "$OUT/router-metrics-verify.prom" \
  || { echo "cluster-smoke: verify mode never ran a duplicate" >&2; exit 1; }
if grep -E 'oldenrouter_verify_mismatch_total [1-9]' "$OUT/router-metrics-verify.prom"; then
  echo "cluster-smoke: CROSS-REPLICA VERIFY MISMATCH — replicas disagreed byte-for-byte" >&2
  exit 1
fi
echo "cluster-smoke: verify sweep over the catalog, zero mismatches"

# 3. Balance: a closed-loop mix of distinct configurations must reach
# all three shards within the spread gate, and the repeats must be
# served from the federated caches.
"$OUT/oldenload" -url "http://$ROUTER_ADDR" -c 6 -duration 4s \
  -mix "treeadd:1:64,treeadd:4:64,power:2:64,power:4:64,tsp:2:64,mst:4:64,bisort:2:64,voronoi:4:64,em3d:2:64,em3d:4:64,barneshut:2:64,perimeter:4:64,health:2:64,tsp:4:64,mst:2:64,bisort:4:64" \
  -via-router -expect-shards 3 -max-shard-spread 4.0 \
  -slo-error-rate 0 -min-requests 100 \
  -out "$OUT/load-balance.json" | tee "$OUT/load-balance.txt"
HIT_PCT=$(awk -F'[(%]' '/^cache hits:/ {print int($2)}' "$OUT/load-balance.txt")
[ "${HIT_PCT:-0}" -ge 50 ] \
  || { echo "cluster-smoke: federated hit rate only $HIT_PCT% on a repeated mix" >&2; exit 1; }
echo "cluster-smoke: three-shard balance within spread gate, hit rate $HIT_PCT%"

# 4. Shard loss under traffic: kill one replica (not with SIGTERM — a
# hard kill, the failure the retry path exists for) and require zero
# 5xx: the router retries connection failures on the next ring owner.
# The no_cache sweep bypasses the probe phase, so keys owned by the dead
# shard are proxied straight at it and MUST take the retry path.
kill -9 "${PIDS[1]}"
for b in $BENCHES; do
  curl -fsS -X POST -d "{\"benchmark\":\"$b\",\"procs\":4,\"scale\":64,\"no_cache\":true}" \
    "http://$ROUTER_ADDR/run" -o /dev/null
done
"$OUT/oldenload" -url "http://$ROUTER_ADDR" -c 4 -duration 3s \
  -mix "treeadd:4:64,em3d:2:64,power:4:64,tsp:2:64,mst:4:64" \
  -via-router -slo-error-rate 0 -min-requests 50 \
  -out "$OUT/load-degraded.json" | tee "$OUT/load-degraded.txt"
curl -fsS "http://$ROUTER_ADDR/readyz" >"$OUT/readyz-degraded.json"
grep -q '"ready_shards":2' "$OUT/readyz-degraded.json"
echo "cluster-smoke: replica killed mid-traffic, zero 5xx, router degraded to 2 shards"

# 5. Tracing through the router: a fixed sampled traceparent keeps its
# id across the hop, and the debug endpoints answer through the router —
# the trace is found on whichever replica retained it.
TID=4bf92f3577b34da6a3ce929d0e0e4736
curl -fsS -X POST -d '{"benchmark":"health","procs":2,"scale":64,"no_cache":true}' \
  -H "traceparent: 00-$TID-00f067aa0ba902b7-01" \
  "http://$ROUTER_ADDR/run" -o /dev/null -D "$OUT/htrace.txt"
grep -qi "^X-Oldend-Trace-Id: $TID" "$OUT/htrace.txt"
curl -fsS "http://$ROUTER_ADDR/debug/requests" >"$OUT/debug-requests.json"
grep -q "$TID" "$OUT/debug-requests.json"
grep -q '"shards"' "$OUT/debug-requests.json"
curl -fsS "http://$ROUTER_ADDR/debug/trace/$TID?format=tree" >"$OUT/trace-$TID.json"
grep -q "$TID" "$OUT/trace-$TID.json"
echo "cluster-smoke: traceparent survived the router, debug endpoints fan out"

# Final metrics scrape for the artifact bundle, then a clean shutdown.
curl -fsS "http://$ROUTER_ADDR/metrics" >"$OUT/router-metrics.prom"
grep -Eq 'oldenrouter_proxy_retries_total [1-9]' "$OUT/router-metrics.prom" \
  || { echo "cluster-smoke: shard loss never exercised the retry path" >&2; exit 1; }
if grep -E 'oldenrouter_requests_total\{[^}]*code="5' "$OUT/router-metrics.prom"; then
  echo "cluster-smoke: router answered 5xx during the smoke" >&2; exit 1
fi

kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID"
grep -q 'drained cleanly' "$OUT/oldenrouter.log"
echo "cluster-smoke: PASS (artifacts in $OUT)"
