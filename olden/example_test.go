package olden_test

import (
	"fmt"

	"repro/olden"
)

// Example builds a tiny distributed list and traverses it with computation
// migration: the thread follows the data across processors.
func Example() {
	r := olden.New(olden.Config{Procs: 4})
	site := &olden.Site{Name: "list.next", Mech: olden.Migrate}

	r.Run(0, func(t *olden.Thread) {
		// Four nodes, one per processor: value at 0, next at 8.
		var nodes [4]olden.GP
		for p := range nodes {
			nodes[p] = t.Alloc(p, 16)
		}
		for p, n := range nodes {
			t.StoreInt(site, n, 0, int64(10*(p+1)))
			if p+1 < len(nodes) {
				t.StorePtr(site, n, 8, nodes[p+1])
			}
		}
		sum := int64(0)
		for g := nodes[0]; !g.IsNil(); g = t.LoadPtr(site, g, 8) {
			sum += t.LoadInt(site, g, 0)
		}
		fmt.Printf("sum=%d, thread finished on processor %d\n", sum, t.Loc())
	})
	// Building migrated to processors 1..3, jumping back to node 0 cost
	// one more, and the traversal crossed three block boundaries.
	fmt.Printf("migrations: %d\n", r.M.Stats.Migrations.Load())
	// Output:
	// sum=100, thread finished on processor 3
	// migrations: 7
}

// ExampleAnalyze runs the paper's selection heuristic on a tree traversal:
// the recursive update combines the child affinities above the 90%
// threshold, so the traversal migrates.
func ExampleAnalyze() {
	report, _ := olden.Analyze(`
struct tree { int v; struct tree *left; struct tree *right; };
int Sum(struct tree *t) {
  if (t == NULL) return 0;
  return Sum(t->left) + Sum(t->right) + t->v;
}
`)
	fmt.Print(report)
	// Output:
	// function Sum:
	//   recursion Sum/rec
	//     update t ← t  affinity 91%
	//     choice: migrate t (affinity 91% ≥ threshold)
}

// ExampleSpawn shows futures: the body runs logically in parallel with the
// caller and Touch synchronizes.
func ExampleSpawn() {
	r := olden.New(olden.Config{Procs: 2})
	r.Run(0, func(t *olden.Thread) {
		f := olden.Spawn(t, func(c *olden.Thread) int {
			c.MigrateTo(1)
			c.Work(1000)
			return 21
		})
		t.Work(1000) // overlaps with the future body
		fmt.Println("answer:", 2*f.Touch(t))
	})
	// Output:
	// answer: 42
}
