package olden_test

import (
	"strings"
	"testing"

	"repro/olden"
)

func TestQuickstart(t *testing.T) {
	r := olden.New(olden.Config{Procs: 4})
	site := &olden.Site{Name: "demo.slot", Mech: olden.Cache}
	mk := r.Run(0, func(th *olden.Thread) {
		g := th.Alloc(2, 16)
		th.StoreInt(site, g, 0, 42)
		if v := th.LoadInt(site, g, 0); v != 42 {
			t.Errorf("read %d", v)
		}
	})
	if mk <= 0 {
		t.Fatal("makespan must advance")
	}
}

func TestSpawnAndCall(t *testing.T) {
	r := olden.New(olden.Config{Procs: 2})
	r.Run(0, func(th *olden.Thread) {
		f := olden.Spawn(th, func(c *olden.Thread) int {
			c.MigrateTo(1)
			c.Work(100)
			return 7
		})
		v := olden.Call(th, func() int { return 1 })
		if f.Touch(th)+v != 8 {
			t.Fatal("wrong results")
		}
	})
}

func TestAnalyze(t *testing.T) {
	report, err := olden.Analyze(`
struct tree { int v; struct tree *left; struct tree *right; };
int Sum(struct tree *t) {
  if (t == NULL) return 0;
  return Sum(t->left) + Sum(t->right) + t->v;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	out := report.String()
	if !strings.Contains(out, "migrate t") {
		t.Fatalf("analysis should migrate the traversal:\n%s", out)
	}
	if _, err := olden.Analyze(`int f( {`); err == nil {
		t.Fatal("parse errors must surface")
	}
}

func TestAnalyzeWith(t *testing.T) {
	// With an absurd threshold nothing migrates.
	src := `
struct tree { struct tree *left; struct tree *right; };
void T(struct tree *t) {
  if (t == NULL) return;
  T(t->left);
  T(t->right);
}
`
	p := olden.DefaultParams()
	p.Threshold = 1.01
	report, err := olden.AnalyzeWith(src, p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(report.String(), "migrate") {
		t.Fatal("threshold above 100% must cache everything")
	}
}
