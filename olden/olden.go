// Package olden is the public face of this reproduction of "Software
// Caching and Computation Migration in Olden" (Carlisle & Rogers, PPoPP
// 1995): a simulated distributed-memory machine, the Olden runtime
// (computation migration + software caching + futures), and the
// compile-time heuristic that picks a mechanism per pointer dereference.
//
// A minimal program:
//
//	r := olden.New(olden.Config{Procs: 4})
//	site := &olden.Site{Name: "list.next", Mech: olden.Cache}
//	makespan := r.Run(0, func(t *olden.Thread) {
//		head := t.Alloc(1, 16)
//		t.StoreInt(site, head, 0, 42)
//		_ = t.LoadInt(site, head, 0)
//	})
//
// To run the compile-time analysis on a mini-C kernel:
//
//	report, err := olden.Analyze(src)
//	fmt.Print(report)
//
// The complete benchmark suite from the paper lives in internal/bench and
// is driven by cmd/oldenbench.
package olden

import (
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/gaddr"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/rt"
)

// Core runtime types, re-exported.
type (
	// Config describes a runtime instance (processors, coherence
	// scheme, mechanism mode, cost model).
	Config = rt.Config
	// Runtime is the simulated machine plus the Olden runtime.
	Runtime = rt.Runtime
	// Thread is one logical Olden thread.
	Thread = rt.Thread
	// Site is a pointer-dereference site with its chosen mechanism.
	Site = rt.Site
	// Mechanism selects migration or caching for a site.
	Mechanism = rt.Mechanism
	// Mode optionally overrides all sites (heuristic/migrate-only/
	// cache-only).
	Mode = rt.Mode
	// GP is a global heap pointer ⟨processor, offset⟩ in 32 bits.
	GP = gaddr.GP
	// Cost is the cycle-cost model.
	Cost = machine.Cost
	// SchemeKind selects the coherence scheme.
	SchemeKind = coherence.Kind
	// Report is the compile-time analysis result.
	Report = core.Report
	// Params are the heuristic's threshold and default affinity.
	Params = core.Params
	// Diag is one mini-C lint diagnostic (Report.Lint).
	Diag = core.Diag
	// DiagSeverity ranks a lint diagnostic.
	DiagSeverity = core.DiagSeverity
)

// Mechanisms and modes.
const (
	Migrate     = rt.Migrate
	Cache       = rt.Cache
	Heuristic   = rt.Heuristic
	MigrateOnly = rt.MigrateOnly
	CacheOnly   = rt.CacheOnly
)

// Lint severities.
const (
	DiagWarning = core.DiagWarning
	DiagError   = core.DiagError
)

// Coherence schemes (Appendix A).
const (
	LocalKnowledge  = coherence.LocalKnowledge
	GlobalKnowledge = coherence.GlobalKnowledge
	Bilateral       = coherence.Bilateral
)

// New builds a runtime and its simulated machine.
func New(cfg Config) *Runtime { return rt.New(cfg) }

// Spawn issues a futurecall; Touch the result to synchronize.
func Spawn[T any](t *Thread, body func(child *Thread) T) *rt.Future[T] {
	return rt.Spawn(t, body)
}

// Call executes f as an Olden procedure call with return-stub semantics.
func Call[T any](t *Thread, f func() T) T { return rt.Call(t, f) }

// CallVoid is Call for procedures without results.
func CallVoid(t *Thread, f func()) { rt.CallVoid(t, f) }

// DefaultCost returns the CM-5-flavoured cost model (migration ≈ 7× a
// cache miss).
func DefaultCost() Cost { return machine.DefaultCost() }

// DefaultParams returns the paper's heuristic settings: 90% migration
// threshold, 70% default path-affinity.
func DefaultParams() Params { return core.DefaultParams() }

// Analyze parses a mini-C program and runs the full three-step selection
// process: path-affinity hints, update matrices, and the two-pass
// heuristic with the bottleneck rule.
func Analyze(src string) (*Report, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return core.Analyze(prog, core.DefaultParams()), nil
}

// AnalyzeWith runs the analysis with custom heuristic parameters.
func AnalyzeWith(src string, p Params) (*Report, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return core.Analyze(prog, p), nil
}
