package machine

import (
	"container/heap"
	"fmt"
	"os"
	"sync"

	"repro/internal/trace"
)

// A Scheduler serializes all logical threads of a simulation in virtual-time
// order: at any moment exactly one thread — the runnable thread with the
// smallest virtual clock (ties broken by creation order) — executes. This
// makes the simulation deterministic and causally correct: when a thread
// charges work on a processor, no other live thread has an earlier clock,
// so processor clocks only ever advance in globally consistent order.
//
// Protocol (enforced by the runtime layer):
//   - Register a SchedEntry for every thread before it runs, then hand the
//     thread's body to the scheduler with Go (or Main for the root).
//   - Call Sync(e, clock) before every simulation operation; it blocks
//     until e is the minimal runnable entry.
//   - Call Park(e) to block on a future; the entry leaves the runnable set.
//   - Call Resume(e, clock) — from the currently running thread — to make
//     a parked entry runnable again at the given clock.
//   - Call Exit(e) when the thread is done.
//
// Two implementations satisfy the interface: the virtual-time event loop
// (LoopScheduler, the default — see sched_loop.go), which runs every thread
// as a coroutine under one dispatcher goroutine, and the original
// channel-handoff scheduler (ChanScheduler, kept behind a flag for
// differential testing), which runs each thread on its own goroutine. Both
// replay the identical decision procedure, so they produce byte-identical
// event orders; the digest-equivalence battery in internal/bench pins that.
type Scheduler interface {
	// Register creates and enrolls a new entry with the given clock. The
	// new thread must call Sync before touching simulation state.
	Register(clock int64) *SchedEntry
	// Go binds body to an already-registered entry and runs it as that
	// entry's logical thread. The body must follow the protocol: Sync
	// before touching simulation state, Exit when done.
	Go(e *SchedEntry, body func())
	// Main binds body to an already-registered entry and runs it as the
	// root logical thread on the calling goroutine's behalf. Under the
	// event loop the caller becomes the dispatcher: Main returns only
	// when every registered thread has exited. Under the channel
	// scheduler Main returns when body does; threads spawned with Go may
	// still be running and the caller must wait for them itself.
	Main(e *SchedEntry, body func())
	// Sync updates e's clock and blocks until e is the minimal runnable
	// entry. The calling goroutine may then execute simulation operations
	// until its next Sync.
	Sync(e *SchedEntry, clock int64)
	// Park removes e from the runnable set (the thread is about to block
	// on a future) and blocks until a Resume makes it runnable and it
	// becomes minimal.
	Park(e *SchedEntry)
	// Resume re-enrolls a parked entry at the given clock. It must be
	// called by the currently running thread (so wake-ups happen at
	// deterministic points). The resumed thread proceeds once it becomes
	// minimal.
	Resume(e *SchedEntry, clock int64)
	// Exit removes e permanently and hands control to the next minimal
	// entry.
	Exit(e *SchedEntry)
	// SetTracer attaches a recorder for thread lifecycle events (start
	// and end, stamped with the entry's clock). Set it before the first
	// Register; the registration sequence is deterministic, so the
	// lifecycle events are part of the run's reproducible trace.
	SetTracer(tr *trace.Recorder)
}

// SchedKind selects a scheduler implementation.
type SchedKind int

const (
	// SchedDefault resolves to the event loop, unless the OLDEN_SCHED
	// environment variable names the channel scheduler.
	SchedDefault SchedKind = iota
	// SchedEventLoop is the virtual-time event loop (sched_loop.go).
	SchedEventLoop
	// SchedChannel is the original per-yield channel-handoff scheduler.
	SchedChannel
)

// String names the kind as OLDEN_SCHED and the differential tests spell it.
func (k SchedKind) String() string {
	switch k {
	case SchedEventLoop:
		return "eventloop"
	case SchedChannel:
		return "channel"
	}
	return "default"
}

// ParseSchedKind maps a scheduler name back to its kind.
func ParseSchedKind(s string) (SchedKind, error) {
	switch s {
	case "", "default":
		return SchedDefault, nil
	case "eventloop":
		return SchedEventLoop, nil
	case "channel":
		return SchedChannel, nil
	}
	return 0, fmt.Errorf("machine: unknown scheduler %q (want eventloop or channel)", s)
}

// envSchedKind reads the OLDEN_SCHED fallback flag once per process: set it
// to "channel" to run every default-constructed scheduler on the original
// channel-handoff implementation (differential debugging).
var envSchedKind = sync.OnceValue(func() SchedKind {
	if k, err := ParseSchedKind(os.Getenv("OLDEN_SCHED")); err == nil && k != SchedDefault {
		return k
	}
	return SchedEventLoop
})

// NewScheduler returns an empty scheduler of the default kind.
func NewScheduler() Scheduler { return NewSchedulerOf(SchedDefault) }

// NewSchedulerOf returns an empty scheduler of the named kind.
func NewSchedulerOf(kind SchedKind) Scheduler {
	if kind == SchedDefault {
		kind = envSchedKind()
	}
	if kind == SchedChannel {
		return NewChanScheduler()
	}
	return NewLoopScheduler()
}

// SchedEntry is one thread's handle in the scheduler. Under the channel
// scheduler the clock, heap index and parked flag are guarded by the
// scheduler's mutex and wake is the handoff signal; under the event loop
// there is no concurrency at all — every access happens on the single
// dispatcher goroutine's control flow, with next/yield the coroutine
// switch points (see sched_loop.go).
type SchedEntry struct {
	clock  int64
	seq    uint64
	index  int // heap index; -1 when off-heap
	parked bool
	wake   chan struct{} // channel scheduler: handoff signal

	// Event-loop coroutine handles: next resumes the thread's coroutine
	// until its next yield (false when the body has returned), yield
	// returns control to the dispatcher, stop releases the coroutine.
	next  func() (struct{}, bool)
	stop  func()
	yield func(struct{}) bool
}

// Seq returns the entry's creation sequence number, which the runtime and
// trace layers use as the logical thread id.
func (e *SchedEntry) Seq() uint64 { return e.seq }

// less is the virtual-time execution order: by clock, ties by creation
// sequence. It is a strict total order — no two entries compare equal.
func (e *SchedEntry) less(o *SchedEntry) bool {
	if e.clock != o.clock {
		return e.clock < o.clock
	}
	return e.seq < o.seq
}

// ChanScheduler is the original scheduler: every thread is a goroutine, and
// every yield point takes the scheduler mutex, re-heaps the entry, and —
// when activeness transfers — hands off through the winner's wake channel.
// It is kept as the differential-testing fallback for the event loop
// (OLDEN_SCHED=channel or SchedChannel).
type ChanScheduler struct {
	trace *trace.Recorder

	mu      sync.Mutex
	h       entryHeap
	active  *SchedEntry
	seq     uint64
	waiting int // entries parked off-heap (blocked on futures)
}

// NewChanScheduler returns an empty channel-handoff scheduler.
func NewChanScheduler() *ChanScheduler { return &ChanScheduler{} }

// SetTracer attaches the lifecycle-event recorder.
func (s *ChanScheduler) SetTracer(tr *trace.Recorder) { s.trace = tr }

// Register creates and enrolls a new entry with the given clock.
func (s *ChanScheduler) Register(clock int64) *SchedEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &SchedEntry{clock: clock, seq: s.seq, index: -1, wake: make(chan struct{}, 1)}
	s.seq++
	heap.Push(&s.h, e)
	if s.trace != nil {
		s.trace.Emit(trace.Event{
			Kind: trace.EvThreadStart, T: clock,
			Tid: int32(e.seq), P: -1, Site: -1, Line: -1,
		})
	}
	return e
}

// Go runs body on its own goroutine, the channel scheduler's thread shape:
// the goroutine blocks in its first Sync until the entry becomes minimal.
func (s *ChanScheduler) Go(e *SchedEntry, body func()) { go body() }

// Main runs the root body inline on the calling goroutine. Threads spawned
// with Go may still be running when it returns; the runtime layer waits for
// them separately.
func (s *ChanScheduler) Main(e *SchedEntry, body func()) { body() }

// Sync updates e's clock and blocks until e is the minimal runnable entry.
func (s *ChanScheduler) Sync(e *SchedEntry, clock int64) {
	s.mu.Lock()
	e.clock = clock
	heap.Fix(&s.h, e.index)
	mayRun := s.active == e || s.active == nil
	if mayRun && s.h.min() == e {
		s.active = e
		s.mu.Unlock()
		return
	}
	if mayRun {
		s.active = nil
		s.wakeMinLocked()
	}
	e.parked = true
	s.mu.Unlock()
	<-e.wake
}

// Park removes e from the runnable set and blocks until a Resume makes it
// runnable and it becomes minimal.
func (s *ChanScheduler) Park(e *SchedEntry) {
	s.mu.Lock()
	if e.index >= 0 {
		heap.Remove(&s.h, e.index)
	}
	s.waiting++
	if s.active == e || s.active == nil {
		s.active = nil
		s.wakeMinLocked()
	}
	e.parked = true
	s.mu.Unlock()
	<-e.wake
}

// Resume re-enrolls a parked entry at the given clock.
func (s *ChanScheduler) Resume(e *SchedEntry, clock int64) {
	s.mu.Lock()
	e.clock = clock
	s.waiting--
	heap.Push(&s.h, e)
	s.mu.Unlock()
}

// Exit removes e permanently and hands control to the next minimal entry.
func (s *ChanScheduler) Exit(e *SchedEntry) {
	s.mu.Lock()
	if s.trace != nil {
		s.trace.Emit(trace.Event{
			Kind: trace.EvThreadEnd, T: e.clock,
			Tid: int32(e.seq), P: -1, Site: -1, Line: -1,
		})
	}
	if e.index >= 0 {
		heap.Remove(&s.h, e.index)
	}
	if s.active == e || s.active == nil {
		s.active = nil
		s.wakeMinLocked()
	}
	s.mu.Unlock()
}

// wakeMinLocked transfers activeness to the minimal runnable entry, waking
// its goroutine if it is parked. With an empty heap and parked-off-heap
// entries remaining, every thread is blocked on a future that can never
// complete — a deadlock in the simulated program.
func (s *ChanScheduler) wakeMinLocked() {
	m := s.h.min()
	if m == nil {
		if s.waiting > 0 {
			panic("machine: simulation deadlock — every thread is blocked on a touch")
		}
		return
	}
	s.active = m
	if m.parked {
		m.parked = false
		m.wake <- struct{}{}
	}
}

// entryHeap orders entries by (clock, seq).
type entryHeap []*SchedEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*SchedEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	e.index = -1
	*h = old[:len(old)-1]
	return e
}
func (h entryHeap) min() *SchedEntry {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}
