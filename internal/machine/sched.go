package machine

import (
	"container/heap"
	"sync"

	"repro/internal/trace"
)

// Scheduler serializes all logical threads of a simulation in virtual-time
// order: at any moment exactly one thread — the runnable thread with the
// smallest virtual clock (ties broken by creation order) — executes. This
// makes the simulation deterministic and causally correct: when a thread
// charges work on a processor, no other live thread has an earlier clock,
// so processor clocks only ever advance in globally consistent order.
//
// Protocol (enforced by the runtime layer):
//   - Register a SchedEntry for every thread before it runs.
//   - Call Sync(e, clock) before every simulation operation; it blocks
//     until e is the minimal runnable entry.
//   - Call Park(e) to block on a future; the entry leaves the runnable set.
//   - Call Resume(e, clock) — from the currently running thread — to make
//     a parked entry runnable again at the given clock.
//   - Call Exit(e) when the thread is done.
type Scheduler struct {
	// Trace, when non-nil, records thread lifecycle events (start and
	// end, stamped with the entry's clock). Set it before the first
	// Register; the registration sequence is deterministic, so the
	// lifecycle events are part of the run's reproducible trace.
	Trace *trace.Recorder

	mu      sync.Mutex
	h       entryHeap
	active  *SchedEntry
	seq     uint64
	waiting int // entries parked off-heap (blocked on futures)
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler { return &Scheduler{} }

// SchedEntry is one thread's handle in the scheduler.
type SchedEntry struct {
	clock  int64
	seq    uint64
	index  int // heap index; -1 when off-heap
	parked bool
	wake   chan struct{}
}

// Register creates and enrolls a new entry with the given clock. The new
// thread must call Sync before touching simulation state.
func (s *Scheduler) Register(clock int64) *SchedEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &SchedEntry{clock: clock, seq: s.seq, index: -1, wake: make(chan struct{}, 1)}
	s.seq++
	heap.Push(&s.h, e)
	if s.Trace != nil {
		s.Trace.Emit(trace.Event{
			Kind: trace.EvThreadStart, T: clock,
			Tid: int32(e.seq), P: -1, Site: -1, Line: -1,
		})
	}
	return e
}

// Seq returns the entry's creation sequence number, which the runtime and
// trace layers use as the logical thread id.
func (e *SchedEntry) Seq() uint64 { return e.seq }

// Sync updates e's clock and blocks until e is the minimal runnable entry.
// The calling goroutine may then execute simulation operations until its
// next Sync.
func (s *Scheduler) Sync(e *SchedEntry, clock int64) {
	s.mu.Lock()
	e.clock = clock
	heap.Fix(&s.h, e.index)
	mayRun := s.active == e || s.active == nil
	if mayRun && s.h.min() == e {
		s.active = e
		s.mu.Unlock()
		return
	}
	if mayRun {
		s.active = nil
		s.wakeMinLocked()
	}
	e.parked = true
	s.mu.Unlock()
	<-e.wake
}

// Park removes e from the runnable set (the thread is about to block on a
// future) and blocks until a Resume makes it runnable and it becomes
// minimal.
func (s *Scheduler) Park(e *SchedEntry) {
	s.mu.Lock()
	if e.index >= 0 {
		heap.Remove(&s.h, e.index)
	}
	s.waiting++
	if s.active == e || s.active == nil {
		s.active = nil
		s.wakeMinLocked()
	}
	e.parked = true
	s.mu.Unlock()
	<-e.wake
}

// Resume re-enrolls a parked entry at the given clock. It must be called by
// the currently running thread (so wake-ups happen at deterministic points).
// The resumed thread proceeds once it becomes minimal.
func (s *Scheduler) Resume(e *SchedEntry, clock int64) {
	s.mu.Lock()
	e.clock = clock
	s.waiting--
	heap.Push(&s.h, e)
	s.mu.Unlock()
}

// Exit removes e permanently and hands control to the next minimal entry.
func (s *Scheduler) Exit(e *SchedEntry) {
	s.mu.Lock()
	if s.Trace != nil {
		s.Trace.Emit(trace.Event{
			Kind: trace.EvThreadEnd, T: e.clock,
			Tid: int32(e.seq), P: -1, Site: -1, Line: -1,
		})
	}
	if e.index >= 0 {
		heap.Remove(&s.h, e.index)
	}
	if s.active == e || s.active == nil {
		s.active = nil
		s.wakeMinLocked()
	}
	s.mu.Unlock()
}

// wakeMinLocked transfers activeness to the minimal runnable entry, waking
// its goroutine if it is parked. With an empty heap and parked-off-heap
// entries remaining, every thread is blocked on a future that can never
// complete — a deadlock in the simulated program.
func (s *Scheduler) wakeMinLocked() {
	m := s.h.min()
	if m == nil {
		if s.waiting > 0 {
			panic("machine: simulation deadlock — every thread is blocked on a touch")
		}
		return
	}
	s.active = m
	if m.parked {
		m.parked = false
		m.wake <- struct{}{}
	}
}

// entryHeap orders entries by (clock, seq).
type entryHeap []*SchedEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*SchedEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	e.index = -1
	*h = old[:len(old)-1]
	return e
}
func (h entryHeap) min() *SchedEntry {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}
