package machine

import (
	"sync"
	"testing"
)

func TestDefaultCostRatio(t *testing.T) {
	c := DefaultCost()
	ratio := float64(c.MigrateTotal()) / float64(c.MissTotal())
	if ratio < 6.5 || ratio > 7.5 {
		t.Fatalf("migration/miss ratio = %.2f; paper reports ≈7", ratio)
	}
}

func TestOccupySerializes(t *testing.T) {
	m := New(Config{Procs: 1})
	p := m.Procs[0]
	// Two threads each charge 100 cycles starting at time 0: the second
	// must start after the first.
	end1 := p.Occupy(0, 100)
	end2 := p.Occupy(0, 100)
	if end1 != 100 || end2 != 200 {
		t.Fatalf("ends = %d, %d; want 100, 200", end1, end2)
	}
	// A thread arriving later than the processor clock starts at its own
	// time.
	end3 := p.Occupy(1000, 50)
	if end3 != 1050 {
		t.Fatalf("end3 = %d; want 1050", end3)
	}
	if p.Busy() != 250 {
		t.Fatalf("busy = %d; want 250", p.Busy())
	}
}

func TestOccupyConcurrentTotal(t *testing.T) {
	m := New(Config{Procs: 1})
	p := m.Procs[0]
	const workers, per, cycles = 8, 500, 7
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			now := int64(0)
			for i := 0; i < per; i++ {
				now = p.Occupy(now, cycles)
			}
		}()
	}
	wg.Wait()
	want := int64(workers * per * cycles)
	if p.Busy() != want {
		t.Fatalf("busy = %d; want %d (work is conserved under concurrency)", p.Busy(), want)
	}
	if p.Clock() < want {
		t.Fatalf("clock = %d < total serial work %d", p.Clock(), want)
	}
}

func TestMakespanAndReset(t *testing.T) {
	m := New(Config{Procs: 4})
	m.Procs[2].Occupy(0, 500)
	m.Procs[0].Occupy(0, 100)
	if m.Makespan() != 500 {
		t.Fatalf("makespan = %d", m.Makespan())
	}
	if m.TotalBusy() != 600 {
		t.Fatalf("total busy = %d", m.TotalBusy())
	}
	m.ResetClocks()
	if m.Makespan() != 0 || m.TotalBusy() != 0 {
		t.Fatal("reset did not clear clocks")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero processors")
		}
	}()
	New(Config{Procs: 0})
}

func TestStatsSnapshot(t *testing.T) {
	var s Stats
	s.CacheableReads.Add(100)
	s.RemoteReads.Add(20)
	s.RemoteWrites.Add(5)
	s.Misses.Add(10)
	snap := s.Snapshot()
	if snap.RemoteRefs() != 25 {
		t.Fatalf("remote refs = %d", snap.RemoteRefs())
	}
	if got := snap.MissPct(); got != 40 {
		t.Fatalf("miss pct = %v", got)
	}
	s.Reset()
	if s.Snapshot() != (StatsSnapshot{}) {
		t.Fatal("reset did not zero stats")
	}
}

func TestMissPctZeroDenominator(t *testing.T) {
	var snap StatsSnapshot
	if snap.MissPct() != 0 {
		t.Fatal("MissPct with no remote refs must be 0")
	}
}
