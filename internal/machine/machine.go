// Package machine simulates the distributed-memory SPMD machine Olden runs
// on (a Thinking Machines CM-5 in the paper).
//
// Simulation model: every logical Olden thread carries its own virtual
// clock, and every simulated processor is a serial virtual-time resource.
// Charging `cycles` of work on processor P at thread time `now` performs
//
//	start  = max(P.clock, now)
//	P.clock = start + cycles
//	now'    = P.clock
//
// so two threads charging the same processor serialize in virtual time even
// though their goroutines run concurrently in real time. Message latencies
// advance only the thread clock; message *service* (a remote line fetch, a
// migration receive) occupies the serving processor, which is what makes
// hot homes — the root of a shared tree, say — serialize and bottleneck,
// exactly the phenomenon the paper's heuristic avoids (§4.3, Figure 5).
//
// The makespan of a run is the maximum processor clock when the root thread
// finishes; speedup is the ratio of the sequential baseline's cycles to the
// makespan.
package machine

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Proc is one simulated processor: a serial virtual-time resource plus its
// section of the distributed heap. (Its software cache and coherence state
// are attached by the runtime layer.)
//
// The clock and busy accounts are single-writer atomics rather than
// mutex-guarded fields: only the virtual-time-active thread ever calls
// Occupy or Reset (the scheduler's handoffs order those calls across
// goroutines), while Clock and Busy may be read at any real-time moment by
// the metrics scraper, so the loads must be atomic but never contend.
type Proc struct {
	ID   int
	Heap *mem.Heap

	clock atomic.Int64
	busy  atomic.Int64
}

// Occupy charges cycles of work on the processor starting no earlier than
// now, and returns the completion time (the thread's new clock).
func (p *Proc) Occupy(now, cycles int64) int64 {
	start := p.clock.Load()
	if now > start {
		start = now
	}
	end := start + cycles
	p.clock.Store(end)
	p.busy.Store(p.busy.Load() + cycles)
	return end
}

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() int64 { return p.clock.Load() }

// Busy returns the total cycles of work charged to the processor.
func (p *Proc) Busy() int64 { return p.busy.Load() }

// Reset clears the processor's virtual time and busy accounting (used
// between the build and kernel phases of a benchmark).
func (p *Proc) Reset() {
	p.clock.Store(0)
	p.busy.Store(0)
}

// Config describes a simulated machine.
type Config struct {
	// Procs is the number of processors (1..gaddr.MaxProcs).
	Procs int
	// HeapBytesPerProc sizes each processor's heap section; zero means
	// 32 MB.
	HeapBytesPerProc uint32
	// Cost is the cycle-cost model; the zero value means DefaultCost.
	Cost Cost
}

// Machine is the simulated multiprocessor.
type Machine struct {
	Cost  Cost
	Procs []*Proc
	Stats Stats
	// Tracer, when non-nil, records simulation events (migrations, cache
	// misses, coherence traffic) for the trace/profile layer. Nil — the
	// default — disables recording; every emit point guards on it.
	Tracer *trace.Recorder
	// Metrics, when non-nil, is the metrics registry the machine's
	// statistics are bound into (see Stats.Bind) and that the runtime and
	// coherence layers register their own counters with. Nil — the
	// default — disables registry recording; the Stats counters
	// themselves are always live.
	Metrics *metrics.Registry
}

// New builds a machine.
func New(cfg Config) *Machine {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("machine: invalid processor count %d", cfg.Procs))
	}
	if cfg.HeapBytesPerProc == 0 {
		cfg.HeapBytesPerProc = 32 << 20
	}
	if cfg.Cost == (Cost{}) {
		cfg.Cost = DefaultCost()
	}
	m := &Machine{Cost: cfg.Cost}
	for i := 0; i < cfg.Procs; i++ {
		m.Procs = append(m.Procs, &Proc{ID: i, Heap: mem.NewHeap(i, cfg.HeapBytesPerProc)})
	}
	return m
}

// P returns the number of processors.
func (m *Machine) P() int { return len(m.Procs) }

// Makespan returns the maximum processor clock: the simulated running time
// of everything executed so far.
func (m *Machine) Makespan() int64 {
	var mk int64
	for _, p := range m.Procs {
		if c := p.Clock(); c > mk {
			mk = c
		}
	}
	return mk
}

// TotalBusy returns the sum of busy cycles over all processors.
func (m *Machine) TotalBusy() int64 {
	var b int64
	for _, p := range m.Procs {
		b += p.Busy()
	}
	return b
}

// ResetClocks zeroes all processor clocks (keeping heap contents), so a
// benchmark can time its kernel separately from its build phase.
func (m *Machine) ResetClocks() {
	for _, p := range m.Procs {
		p.Reset()
	}
}

// Stats aggregates machine-wide event counters. The fields are
// metrics.Counters — atomically updated, so threads on any processor may
// bump them concurrently — which lets Bind expose the same hot-path
// counters through a metrics registry without double counting. Reset and
// Snapshot additionally serialize against each other (mu), so a snapshot
// taken mid-run — as the trace profiler does — never interleaves with a
// phase boundary's reset and observes half-cleared counters.
type Stats struct {
	mu              sync.Mutex
	PtrTests        metrics.Counter // locality checks executed
	Migrations      metrics.Counter // forward migrations
	Returns         metrics.Counter // return-stub migrations
	Futures         metrics.Counter // futurecalls issued
	Touches         metrics.Counter // touches executed
	CacheableReads  metrics.Counter // reads at cached sites
	CacheableWrites metrics.Counter // writes at cached sites
	RemoteReads     metrics.Counter // cacheable reads to remote addresses
	RemoteWrites    metrics.Counter // cacheable writes to remote addresses
	Misses          metrics.Counter // remote references paying a protocol round trip
	LineFetches     metrics.Counter // 64-byte line transfers
	PagesCached     metrics.Counter // cache page entries ever allocated
	Invalidations   metrics.Counter // invalidation messages (global scheme)
	StampChecks     metrics.Counter // timestamp round trips (bilateral scheme)
	FullFlushes     metrics.Counter // whole-cache invalidations (local scheme)
}

// Bind registers every Stats counter into the registry under its canonical
// olden_* name, so registry snapshots and exports carry the machine's
// statistics without a second set of increments on the hot path.
func (s *Stats) Bind(reg *metrics.Registry) {
	reg.RegisterCounter("olden_ptr_tests_total", &s.PtrTests)
	reg.RegisterCounter("olden_migrations_total", &s.Migrations)
	reg.RegisterCounter("olden_returns_total", &s.Returns)
	reg.RegisterCounter("olden_futures_spawned_total", &s.Futures)
	reg.RegisterCounter("olden_futures_touched_total", &s.Touches)
	reg.RegisterCounter("olden_cacheable_reads_total", &s.CacheableReads)
	reg.RegisterCounter("olden_cacheable_writes_total", &s.CacheableWrites)
	reg.RegisterCounter("olden_remote_reads_total", &s.RemoteReads)
	reg.RegisterCounter("olden_remote_writes_total", &s.RemoteWrites)
	reg.RegisterCounter("olden_cache_misses_total", &s.Misses)
	reg.RegisterCounter("olden_line_fetches_total", &s.LineFetches)
	reg.RegisterCounter("olden_pages_cached_total", &s.PagesCached)
	reg.RegisterCounter("olden_invalidation_msgs_total", &s.Invalidations)
	reg.RegisterCounter("olden_stamp_checks_total", &s.StampChecks)
	reg.RegisterCounter("olden_full_flushes_total", &s.FullFlushes)
}

// BindProcs registers per-processor read-through gauges (cumulative cache
// pages allocated is bound by the runtime, which owns the caches). Here the
// machine contributes each processor's busy-cycle account.
func (m *Machine) BindProcs(reg *metrics.Registry) {
	for _, p := range m.Procs {
		p := p
		reg.RegisterFunc("olden_proc_busy_cycles", metrics.KindGauge,
			p.Busy, metrics.L("proc", strconv.Itoa(p.ID)))
	}
}

// Reset zeroes every counter. It is safe against concurrent Snapshot calls
// (and against concurrent atomic updates, which simply land in the fresh
// epoch or the cleared one).
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.PtrTests.Store(0)
	s.Migrations.Store(0)
	s.Returns.Store(0)
	s.Futures.Store(0)
	s.Touches.Store(0)
	s.CacheableReads.Store(0)
	s.CacheableWrites.Store(0)
	s.RemoteReads.Store(0)
	s.RemoteWrites.Store(0)
	s.Misses.Store(0)
	s.LineFetches.Store(0)
	s.PagesCached.Store(0)
	s.Invalidations.Store(0)
	s.StampChecks.Store(0)
	s.FullFlushes.Store(0)
}

// Snapshot copies the counters into a plain struct for reporting. It may be
// called mid-run: individual counters are read atomically, and the mutex
// keeps the whole snapshot on one side of any concurrent Reset.
func (s *Stats) Snapshot() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StatsSnapshot{
		PtrTests:        s.PtrTests.Load(),
		Migrations:      s.Migrations.Load(),
		Returns:         s.Returns.Load(),
		Futures:         s.Futures.Load(),
		Touches:         s.Touches.Load(),
		CacheableReads:  s.CacheableReads.Load(),
		CacheableWrites: s.CacheableWrites.Load(),
		RemoteReads:     s.RemoteReads.Load(),
		RemoteWrites:    s.RemoteWrites.Load(),
		Misses:          s.Misses.Load(),
		LineFetches:     s.LineFetches.Load(),
		PagesCached:     s.PagesCached.Load(),
		Invalidations:   s.Invalidations.Load(),
		StampChecks:     s.StampChecks.Load(),
		FullFlushes:     s.FullFlushes.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	PtrTests        int64
	Migrations      int64
	Returns         int64
	Futures         int64
	Touches         int64
	CacheableReads  int64
	CacheableWrites int64
	RemoteReads     int64
	RemoteWrites    int64
	Misses          int64
	LineFetches     int64
	PagesCached     int64
	Invalidations   int64
	StampChecks     int64
	FullFlushes     int64
}

// RemoteRefs returns the total number of cacheable references to remote
// addresses (the denominator of Table 3's miss percentages).
func (s StatsSnapshot) RemoteRefs() int64 { return s.RemoteReads + s.RemoteWrites }

// MissPct returns misses as a percentage of remote references, or zero when
// there were none.
func (s StatsSnapshot) MissPct() float64 {
	r := s.RemoteRefs()
	if r == 0 {
		return 0
	}
	return 100 * float64(s.Misses) / float64(r)
}
