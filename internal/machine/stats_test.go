package machine

import "testing"

// TestStatsSnapshotDerivedAccessors pins the derived quantities Table 3 is
// built from: RemoteRefs is the miss-percentage denominator, and MissPct
// must be exactly zero — not NaN or Inf — when a run had no remote
// references at all (every migrate-only run, and any sequential baseline).
func TestStatsSnapshotDerivedAccessors(t *testing.T) {
	var zero StatsSnapshot
	if got := zero.RemoteRefs(); got != 0 {
		t.Fatalf("zero snapshot RemoteRefs = %d, want 0", got)
	}
	if got := zero.MissPct(); got != 0 {
		t.Fatalf("zero snapshot MissPct = %v, want exactly 0 (no NaN/Inf)", got)
	}

	s := StatsSnapshot{RemoteReads: 30, RemoteWrites: 10, Misses: 10}
	if got := s.RemoteRefs(); got != 40 {
		t.Fatalf("RemoteRefs = %d, want 40", got)
	}
	if got := s.MissPct(); got != 25 {
		t.Fatalf("MissPct = %v, want 25", got)
	}

	// Misses without remote refs cannot happen in a real run, but the
	// accessor must still not divide by zero.
	odd := StatsSnapshot{Misses: 5}
	if got := odd.MissPct(); got != 0 {
		t.Fatalf("MissPct with zero remote refs = %v, want 0", got)
	}

	// All-miss boundary: exactly 100.
	all := StatsSnapshot{RemoteReads: 7, Misses: 7}
	if got := all.MissPct(); got != 100 {
		t.Fatalf("MissPct = %v, want 100", got)
	}
}

// TestStatsSnapshotNeverTearsAcrossReset pins the mid-run snapshot fix:
// the runtime resets the counters between the build and kernel phases
// while observers may snapshot concurrently, and a snapshot must never
// interleave a reset's field-by-field stores — it sees the counters
// either entirely before or entirely after the epoch boundary. The
// writer alternates an atomic seed (taking the same mutex Reset does)
// with Reset, so the only two legal snapshots are all-sevens and
// all-zeros; any mix means Snapshot cut a Reset in half.
func TestStatsSnapshotNeverTearsAcrossReset(t *testing.T) {
	var s Stats
	seed := func() {
		s.mu.Lock()
		s.PtrTests.Store(7)
		s.Migrations.Store(7)
		s.Returns.Store(7)
		s.Futures.Store(7)
		s.Touches.Store(7)
		s.CacheableReads.Store(7)
		s.CacheableWrites.Store(7)
		s.RemoteReads.Store(7)
		s.RemoteWrites.Store(7)
		s.Misses.Store(7)
		s.LineFetches.Store(7)
		s.PagesCached.Store(7)
		s.Invalidations.Store(7)
		s.StampChecks.Store(7)
		s.FullFlushes.Store(7)
		s.mu.Unlock()
	}
	full := StatsSnapshot{
		PtrTests: 7, Migrations: 7, Returns: 7, Futures: 7, Touches: 7,
		CacheableReads: 7, CacheableWrites: 7, RemoteReads: 7, RemoteWrites: 7,
		Misses: 7, LineFetches: 7, PagesCached: 7, Invalidations: 7,
		StampChecks: 7, FullFlushes: 7,
	}
	var zero StatsSnapshot

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			seed()
			s.Reset()
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			if snap := s.Snapshot(); snap != full && snap != zero {
				t.Fatalf("snapshot tore across a reset: %+v", snap)
			}
		}
	}
}
