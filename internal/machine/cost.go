package machine

// Cost is the cycle-cost model of the simulated machine. The defaults are
// CM-5 flavoured: the paper reports that a thread migration costs about
// seven times a cache miss (§4, footnote 3), and Appendix A gives the
// write-tracking overheads (7 instructions for non-shared pages, 23 for
// shared pages). All values are in simulated processor cycles.
type Cost struct {
	// PtrTest is the compiler-inserted local-vs-remote pointer check
	// executed before every heap reference.
	PtrTest int64
	// CacheHit is the software cache lookup on the fast path: hash,
	// chain walk, valid-bit test, and global→local translation.
	CacheHit int64

	// A cache miss is a request to the home processor, service there
	// (which occupies the home, serializing hot homes), and a reply
	// carrying the 64-byte line.
	MissRequest int64
	MissService int64
	MissReply   int64

	// A migration ships registers, PC and the current stack frame:
	// send overhead at the source, network latency, receive overhead
	// (including scheduling the thread) at the destination.
	MigrateSend int64
	MigrateNet  int64
	MigrateRecv int64

	// A return stub migration ships only registers and the return
	// address — no stack frame — so it is cheaper.
	ReturnSend int64
	ReturnNet  int64
	ReturnRecv int64

	// FutureSpawn is the cost of a futurecall (saving the continuation
	// on the work list); Touch is the cost of a touch that finds the
	// value already computed.
	FutureSpawn int64
	Touch       int64

	// Writes are write-through: latency to the home plus a small
	// service there.
	WriteThrough int64
	WriteService int64

	// Write tracking (global-knowledge and bilateral schemes only,
	// Appendix A): per-write instrumentation cost.
	WriteTrackNonShared int64
	WriteTrackShared    int64

	// InvalidateMsg is the cost, charged at the receiving sharer, of
	// processing one invalidation message (global scheme); InvalidateAck
	// is the latency of the acknowledgement the releaser waits for.
	InvalidateMsg int64
	InvalidateAck int64

	// StampRequest/StampService/StampReply price the bilateral scheme's
	// "what changed since timestamp T" round trip.
	StampRequest int64
	StampService int64
	StampReply   int64

	// FlushAll is the cost of invalidating the entire local cache
	// (local-knowledge scheme, on migration receive).
	FlushAll int64
}

// DefaultCost returns the CM-5-flavoured cost model used throughout the
// experiments. Miss total = 100+200+100 = 400 cycles; migration total =
// 800+1200+800 = 2800 cycles = 7× a miss, matching the paper's ratio.
func DefaultCost() Cost {
	return Cost{
		PtrTest:  2,
		CacheHit: 12,

		MissRequest: 100,
		MissService: 200,
		MissReply:   100,

		MigrateSend: 800,
		MigrateNet:  1200,
		MigrateRecv: 800,

		ReturnSend: 400,
		ReturnNet:  600,
		ReturnRecv: 400,

		FutureSpawn: 30,
		Touch:       8,

		WriteThrough: 40,
		WriteService: 20,

		WriteTrackNonShared: 7,
		WriteTrackShared:    23,

		InvalidateMsg: 60,
		InvalidateAck: 100,

		StampRequest: 100,
		StampService: 60,
		StampReply:   100,

		FlushAll: 50,
	}
}

// MissTotal returns the end-to-end cost of one cache miss.
func (c Cost) MissTotal() int64 { return c.MissRequest + c.MissService + c.MissReply }

// MigrateTotal returns the end-to-end cost of one migration.
func (c Cost) MigrateTotal() int64 { return c.MigrateSend + c.MigrateNet + c.MigrateRecv }
