package machine

import (
	"sync"
	"testing"
)

func TestSchedulerOrdersByClock(t *testing.T) {
	s := NewScheduler()
	var mu sync.Mutex
	var order []int

	run := func(id int, clocks []int64) *sync.WaitGroup {
		var wg sync.WaitGroup
		wg.Add(1)
		e := s.Register(clocks[0])
		go func() {
			defer wg.Done()
			for _, c := range clocks {
				s.Sync(e, c)
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			}
			s.Exit(e)
		}()
		return &wg
	}

	// Thread 1 has clocks 0,10,20; thread 2 has 5,15,25: the interleaving
	// must be strictly by clock: 1,2,1,2,1,2.
	w1 := run(1, []int64{0, 10, 20})
	w2 := run(2, []int64{5, 15, 25})
	w1.Wait()
	w2.Wait()
	want := []int{1, 2, 1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v; want %v", order, want)
		}
	}
}

func TestSchedulerTieBreakBySeq(t *testing.T) {
	s := NewScheduler()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	entries := make([]*SchedEntry, 3)
	for i := range entries {
		entries[i] = s.Register(100) // all tie at clock 100
	}
	for i := range entries {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Sync(entries[i], 100)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Exit(entries[i])
		}()
	}
	wg.Wait()
	for i, id := range order {
		if id != i {
			t.Fatalf("tie-break order = %v; want registration order", order)
		}
	}
}

func TestSchedulerParkResume(t *testing.T) {
	s := NewScheduler()
	waiter := s.Register(0)
	worker := s.Register(1)
	var got int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.Sync(waiter, 0)
		s.Park(waiter) // resumed at clock 500 by the worker
		got = 500
		s.Exit(waiter)
	}()
	go func() {
		defer wg.Done()
		s.Sync(worker, 1)
		s.Sync(worker, 400)
		s.Resume(waiter, 500)
		s.Exit(worker)
	}()
	wg.Wait()
	if got != 500 {
		t.Fatal("parked thread did not resume")
	}
}

func TestSchedulerDeadlockPanics(t *testing.T) {
	s := NewScheduler()
	e := s.Register(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s.Sync(e, 0)
	s.Park(e) // nobody will ever resume us
}
