package machine

import (
	"sync"
	"testing"
)

// forEachScheduler runs a conformance test against both scheduler
// implementations: the virtual-time event loop and the channel-handoff
// fallback. Every semantic the runtime relies on must hold for both — the
// digest battery in internal/bench then pins that whole *runs* are
// byte-identical.
func forEachScheduler(t *testing.T, f func(t *testing.T, s Scheduler)) {
	for _, kind := range []SchedKind{SchedEventLoop, SchedChannel} {
		t.Run(kind.String(), func(t *testing.T) {
			f(t, NewSchedulerOf(kind))
		})
	}
}

// driveThreads registers one entry per body (at the given start clocks, in
// slice order, so slice index = seq), runs body 0 as the root via Main and
// the rest via Go, and returns once every thread has finished. Bodies
// receive the full entry slice so they can Resume each other.
func driveThreads(s Scheduler, clocks []int64, bodies []func(entries []*SchedEntry)) {
	entries := make([]*SchedEntry, len(bodies))
	for i, c := range clocks {
		entries[i] = s.Register(c)
	}
	var wg sync.WaitGroup
	for i := 1; i < len(bodies); i++ {
		i := i
		wg.Add(1)
		s.Go(entries[i], func() {
			defer wg.Done()
			bodies[i](entries)
		})
	}
	s.Main(entries[0], func() { bodies[0](entries) })
	wg.Wait()
}

func TestSchedulerOrdersByClock(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, s Scheduler) {
		var mu sync.Mutex
		var order []int

		body := func(id int, clocks []int64) func(entries []*SchedEntry) {
			return func(entries []*SchedEntry) {
				e := entries[id-1]
				for _, c := range clocks {
					s.Sync(e, c)
					mu.Lock()
					order = append(order, id)
					mu.Unlock()
				}
				s.Exit(e)
			}
		}

		// Thread 1 has clocks 0,10,20; thread 2 has 5,15,25: the
		// interleaving must be strictly by clock: 1,2,1,2,1,2.
		driveThreads(s, []int64{0, 5}, []func([]*SchedEntry){
			body(1, []int64{0, 10, 20}),
			body(2, []int64{5, 15, 25}),
		})
		want := []int{1, 2, 1, 2, 1, 2}
		if len(order) != len(want) {
			t.Fatalf("order = %v", order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order = %v; want %v", order, want)
			}
		}
	})
}

func TestSchedulerTieBreakBySeq(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, s Scheduler) {
		var mu sync.Mutex
		var order []int
		body := func(i int) func(entries []*SchedEntry) {
			return func(entries []*SchedEntry) {
				s.Sync(entries[i], 100)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				s.Exit(entries[i])
			}
		}
		// All three tie at clock 100; execution must follow seq order.
		driveThreads(s, []int64{100, 100, 100},
			[]func([]*SchedEntry){body(0), body(1), body(2)})
		for i, id := range order {
			if id != i {
				t.Fatalf("tie-break order = %v; want registration order", order)
			}
		}
	})
}

// TestSchedulerSameClockFIFOAcrossYields pins the stronger tie-break
// property: entries that keep syncing at the same clock rotate in seq
// (FIFO) order at every yield, not just on first arrival.
func TestSchedulerSameClockFIFOAcrossYields(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, s Scheduler) {
		const threads, rounds = 3, 4
		var mu sync.Mutex
		var order []int
		body := func(i int) func(entries []*SchedEntry) {
			return func(entries []*SchedEntry) {
				for r := 0; r < rounds; r++ {
					// All threads tie at each round's clock; seq must
					// decide every round identically.
					s.Sync(entries[i], int64(r*10))
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
				}
				s.Exit(entries[i])
			}
		}
		driveThreads(s, []int64{0, 0, 0},
			[]func([]*SchedEntry){body(0), body(1), body(2)})
		var want []int
		for r := 0; r < rounds; r++ {
			for i := 0; i < threads; i++ {
				want = append(want, i)
			}
		}
		if len(order) != len(want) {
			t.Fatalf("order = %v", order)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order = %v; want %v", order, want)
			}
		}
	})
}

func TestSchedulerParkResume(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, s Scheduler) {
		var got int64
		driveThreads(s, []int64{0, 1}, []func([]*SchedEntry){
			func(entries []*SchedEntry) {
				s.Sync(entries[0], 0)
				s.Park(entries[0]) // resumed at clock 500 by the worker
				got = 500
				s.Exit(entries[0])
			},
			func(entries []*SchedEntry) {
				s.Sync(entries[1], 1)
				s.Sync(entries[1], 400)
				s.Resume(entries[0], 500)
				s.Exit(entries[1])
			},
		})
		if got != 500 {
			t.Fatal("parked thread did not resume")
		}
	})
}

// TestSchedulerParkEmptyHeapWakeup exercises the wake path where the
// resumed entry is the ONLY runnable thread left: the resumer exits with
// an otherwise-empty heap, so the handoff must find and wake the parked
// waiter rather than declaring the machine idle (or deadlocked).
func TestSchedulerParkEmptyHeapWakeup(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, s Scheduler) {
		var got int64
		driveThreads(s, []int64{0, 1}, []func([]*SchedEntry){
			func(entries []*SchedEntry) {
				s.Sync(entries[0], 0)
				s.Park(entries[0])
				got = 700
				s.Exit(entries[0])
			},
			func(entries []*SchedEntry) {
				s.Sync(entries[1], 1)
				s.Resume(entries[0], 700)
				s.Exit(entries[1]) // heap: only the re-enrolled waiter
			},
		})
		if got != 700 {
			t.Fatal("waiter not woken after resume + exit")
		}
	})
}

func TestSchedulerDeadlockPanics(t *testing.T) {
	forEachScheduler(t, func(t *testing.T, s Scheduler) {
		e := s.Register(0)
		defer func() {
			if recover() == nil {
				t.Fatal("expected deadlock panic")
			}
		}()
		// The panic surfaces on this goroutine either way: the channel
		// scheduler raises it inside Park itself, the event loop inside
		// Main's dispatcher once the only thread has parked.
		s.Main(e, func() {
			s.Sync(e, 0)
			s.Park(e) // nobody will ever resume us
		})
	})
}

func TestParseSchedKind(t *testing.T) {
	cases := []struct {
		in   string
		want SchedKind
		ok   bool
	}{
		{"", SchedDefault, true},
		{"default", SchedDefault, true},
		{"eventloop", SchedEventLoop, true},
		{"channel", SchedChannel, true},
		{"turnip", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSchedKind(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseSchedKind(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, k := range []SchedKind{SchedDefault, SchedEventLoop, SchedChannel} {
		back, err := ParseSchedKind(k.String())
		if err != nil || back != k {
			t.Errorf("round trip %v -> %q -> %v, %v", k, k.String(), back, err)
		}
	}
}

func TestNewSchedulerOfKinds(t *testing.T) {
	if _, ok := NewSchedulerOf(SchedEventLoop).(*LoopScheduler); !ok {
		t.Error("SchedEventLoop did not build a LoopScheduler")
	}
	if _, ok := NewSchedulerOf(SchedChannel).(*ChanScheduler); !ok {
		t.Error("SchedChannel did not build a ChanScheduler")
	}
}

// TestStatsSnapshotNoTearing pins the documented Stats guarantee: a
// mid-run Snapshot never interleaves with a Reset (or any mu-holding
// writer) and observes half-cleared counters. The writer alternates the
// whole counter set between N and zero — arming under the same mutex
// Snapshot takes — so the only legal observations are all-N or all-zero;
// a snapshot landing inside either transition would see a mix.
func TestStatsSnapshotNoTearing(t *testing.T) {
	const n = 1 << 20
	var s Stats
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			s.mu.Lock()
			s.PtrTests.Store(n)
			s.Migrations.Store(n)
			s.FullFlushes.Store(n)
			s.mu.Unlock()
			s.Reset()
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		snap := s.Snapshot()
		armed := snap.PtrTests == n && snap.Migrations == n && snap.FullFlushes == n
		cleared := snap.PtrTests == 0 && snap.Migrations == 0 && snap.FullFlushes == 0
		if !armed && !cleared {
			t.Fatalf("torn snapshot: PtrTests=%d Migrations=%d FullFlushes=%d",
				snap.PtrTests, snap.Migrations, snap.FullFlushes)
		}
	}
}
