package machine

import (
	"container/heap"
	"iter"

	"repro/internal/trace"
)

// LoopScheduler is the virtual-time event loop. It keeps the same protocol
// and the same (clock, seq) execution order as ChanScheduler — the digest
// battery pins byte-identical traces — but changes what a "thread" is:
// every logical thread runs as a coroutine (iter.Pull) under one dispatcher
// goroutine, so a virtual-time handoff is two stack switches that never
// enter the Go runtime scheduler. The channel scheduler pays a mutex, a
// heap fix, a channel send and two goroutine reschedules (park + wake, each
// with its casgstatus/timer-check overhead) per handoff; the event loop
// pays a heap push, a heap pop and two coroswitches.
//
// Because the dispatcher and every coroutine execute on one strictly
// serialized control flow, the scheduler needs no mutex and no atomics:
// exactly one of {dispatcher, some thread body} runs at any instant, and
// coroutine switches order all accesses. (Externally scraped values —
// processor clocks, cache page counts — remain atomic in their own
// packages, since metrics scrapes arrive on foreign goroutines.)
//
// Execution order is decided exactly as in ChanScheduler: the running
// entry is held OFF the heap; at each Sync it continues if and only if its
// (clock, seq) key is strictly less than the heap minimum's — the same
// predicate as "still the heap minimum" when it was kept in-heap — and
// otherwise re-enqueues itself and yields to the dispatcher, which pops
// and resumes the minimal runnable entry.
type LoopScheduler struct {
	trace *trace.Recorder

	h       entryHeap
	active  *SchedEntry
	seq     uint64
	waiting int  // entries parked off-heap (blocked on futures)
	driving bool // a Main dispatcher loop is running
}

// NewLoopScheduler returns an empty event-loop scheduler.
func NewLoopScheduler() *LoopScheduler { return &LoopScheduler{} }

// SetTracer attaches the lifecycle-event recorder.
func (s *LoopScheduler) SetTracer(tr *trace.Recorder) { s.trace = tr }

// Register creates and enrolls a new entry with the given clock. The entry
// joins the runnable heap immediately; its body starts when a dispatcher
// first picks it (Go must attach the body before the registering thread
// next yields).
func (s *LoopScheduler) Register(clock int64) *SchedEntry {
	e := &SchedEntry{clock: clock, seq: s.seq, index: -1}
	s.seq++
	heap.Push(&s.h, e)
	if s.trace != nil {
		s.trace.Emit(trace.Event{
			Kind: trace.EvThreadStart, T: clock,
			Tid: int32(e.seq), P: -1, Site: -1, Line: -1,
		})
	}
	return e
}

// Go wraps body in a coroutine bound to e. The coroutine is primed to its
// first yield point, so no body code runs until the dispatcher resumes it.
func (s *LoopScheduler) Go(e *SchedEntry, body func()) {
	e.next, e.stop = iter.Pull(func(yield func(struct{}) bool) {
		e.yield = yield
		yield(struct{}{}) // wait for the dispatcher's first pick
		body()
	})
	e.next()
}

// Main runs body as e's thread and drives the dispatcher loop: pop the
// minimal runnable entry, resume its coroutine until it yields (in Sync or
// Park) or its body returns, repeat. It returns only when every registered
// thread has exited. An empty heap with parked entries remaining means
// every thread is blocked on a future that can never complete — a deadlock
// in the simulated program.
func (s *LoopScheduler) Main(e *SchedEntry, body func()) {
	if s.driving {
		panic("machine: nested Main on one scheduler")
	}
	s.Go(e, body)
	s.driving = true
	defer func() { s.driving = false }()
	for {
		m := s.h.min()
		if m == nil {
			if s.waiting > 0 {
				panic("machine: simulation deadlock — every thread is blocked on a touch")
			}
			return
		}
		heap.Remove(&s.h, m.index)
		if m.next == nil {
			panic("machine: entry scheduled before Go attached its thread body")
		}
		s.active = m
		m.next()
		s.active = nil
	}
}

// Sync updates e's clock and yields unless e is still the minimal runnable
// entry. The fast path — the running thread advances but stays ahead of
// every waiter — is three comparisons with no locking, no heap traffic and
// no switch.
func (s *LoopScheduler) Sync(e *SchedEntry, clock int64) {
	e.clock = clock
	if m := s.h.min(); m != nil && !e.less(m) {
		heap.Push(&s.h, e)
		e.yield(struct{}{})
	}
}

// Park removes e from the runnable set (the thread is about to block on a
// future) and yields; the coroutine resumes after a Resume re-enrolls the
// entry and the dispatcher picks it again.
func (s *LoopScheduler) Park(e *SchedEntry) {
	if e.index >= 0 {
		heap.Remove(&s.h, e.index)
	}
	s.waiting++
	e.parked = true
	e.yield(struct{}{})
}

// Resume re-enrolls a parked entry at the given clock. The resuming thread
// keeps running until its own next Sync — wake-ups happen at deterministic
// protocol points, exactly as in the channel scheduler.
func (s *LoopScheduler) Resume(e *SchedEntry, clock int64) {
	e.clock = clock
	e.parked = false
	s.waiting--
	heap.Push(&s.h, e)
}

// Exit removes e permanently. The thread's body returns right after, which
// ends its coroutine and hands control back to the dispatcher.
func (s *LoopScheduler) Exit(e *SchedEntry) {
	if s.trace != nil {
		s.trace.Emit(trace.Event{
			Kind: trace.EvThreadEnd, T: e.clock,
			Tid: int32(e.seq), P: -1, Site: -1, Line: -1,
		})
	}
	if e.index >= 0 {
		heap.Remove(&s.h, e.index)
	}
}
