package gaddr

import (
	"testing"
	"testing/quick"
)

func TestNil(t *testing.T) {
	var g GP
	if !g.IsNil() {
		t.Fatal("zero GP must be nil")
	}
	if Nil.Proc() != 0 || Nil.Off() != 0 {
		t.Fatal("nil decodes to ⟨0,0⟩")
	}
	if Nil.String() != "⟨nil⟩" {
		t.Fatalf("nil String = %q", Nil.String())
	}
}

func TestPackRoundTrip(t *testing.T) {
	cases := []struct {
		proc int
		off  uint32
	}{
		{0, 8}, {1, 0}, {31, 1 << 20}, {MaxProcs - 1, MaxOffset - 1},
	}
	for _, c := range cases {
		g := Pack(c.proc, c.off)
		if g.Proc() != c.proc || g.Off() != c.off {
			t.Errorf("Pack(%d,%#x) = %v; decodes to (%d,%#x)", c.proc, c.off, g, g.Proc(), g.Off())
		}
	}
}

func TestPackRoundTripQuick(t *testing.T) {
	f := func(p uint8, off uint32) bool {
		proc := int(p) % MaxProcs
		off %= MaxOffset
		g := Pack(proc, off)
		return g.Proc() == proc && g.Off() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("proc too big", func() { Pack(MaxProcs, 0) })
	mustPanic("proc negative", func() { Pack(-1, 0) })
	mustPanic("offset too big", func() { Pack(0, MaxOffset) })
	mustPanic("add overflow", func() { Pack(3, MaxOffset-4).Add(8) })
}

func TestAdd(t *testing.T) {
	g := Pack(5, 128)
	h := g.Add(64)
	if h.Proc() != 5 || h.Off() != 192 {
		t.Fatalf("Add: got %v", h)
	}
}

func TestPageGeometry(t *testing.T) {
	if LinesPerPage != 32 {
		t.Fatalf("paper geometry requires 32 lines/page, got %d", LinesPerPage)
	}
	if WordsPerLine*WordBytes != LineBytes || WordsPerPage*WordBytes != PageBytes {
		t.Fatal("word geometry inconsistent")
	}
}

func TestPageOfLineOf(t *testing.T) {
	g := Pack(3, 2*PageBytes+5*LineBytes+8)
	pg := PageOf(g)
	if pg.Proc() != 3 {
		t.Fatalf("page proc = %d", pg.Proc())
	}
	if pg.Base().Off() != 2*PageBytes {
		t.Fatalf("page base off = %#x", pg.Base().Off())
	}
	if LineOf(g) != 5 {
		t.Fatalf("line = %d", LineOf(g))
	}
}

func TestPageOfQuick(t *testing.T) {
	// Every address within a page maps to that page; lines partition it.
	f := func(p uint8, pageIdx uint16, within uint16) bool {
		proc := int(p) % MaxProcs
		base := (uint32(pageIdx) % 128) * PageBytes
		w := uint32(within) % PageBytes
		g := Pack(proc, base+w)
		pg := PageOf(g)
		return pg.Proc() == proc &&
			pg.Base().Off() == base &&
			LineOf(g) == int(w)/LineBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	g := Pack(7, 0x40)
	if got := g.String(); got != "⟨7:0x40⟩" {
		t.Fatalf("String = %q", got)
	}
}
