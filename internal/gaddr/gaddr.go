// Package gaddr implements Olden's global heap addresses.
//
// A global pointer encodes a pair ⟨processor, local byte offset⟩ in a single
// 32-bit word, exactly as in the paper (§2): "We view heap addresses as
// consisting of a pair of a processor name and a local address ⟨p, l⟩. This
// information is encoded in a single 32-bit word."
//
// The top ProcBits bits hold the processor number and the remaining bits the
// byte offset into that processor's heap section. Offset zero on processor
// zero is reserved so that GP(0) is the nil pointer.
package gaddr

import "fmt"

const (
	// ProcBits is the number of bits reserved for the processor name.
	// Six bits allow up to 64 processors (the paper evaluates up to 32).
	ProcBits = 6
	// OffBits is the number of bits for the local byte offset: 26 bits
	// give each processor a 64 MB heap section.
	OffBits = 32 - ProcBits
	// MaxProcs is the largest machine size encodable in a GP.
	MaxProcs = 1 << ProcBits
	// MaxOffset is the exclusive upper bound on local byte offsets.
	MaxOffset = 1 << OffBits
	// offMask extracts the offset field.
	offMask = MaxOffset - 1
)

// GP is a global heap pointer: processor name in the high bits, local byte
// offset in the low bits. The zero value is the nil pointer.
type GP uint32

// Nil is the null global pointer.
const Nil GP = 0

// Pack builds a global pointer from a processor number and local offset.
// It panics if either field is out of range: global pointers are built only
// by the allocator, so a bad field is a runtime bug, not a user error.
func Pack(proc int, off uint32) GP {
	if proc < 0 || proc >= MaxProcs {
		panic(fmt.Sprintf("gaddr: processor %d out of range [0,%d)", proc, MaxProcs))
	}
	if off >= MaxOffset {
		panic(fmt.Sprintf("gaddr: offset %#x out of range [0,%#x)", off, uint32(MaxOffset)))
	}
	return GP(uint32(proc)<<OffBits | off)
}

// Proc returns the processor name encoded in g.
func (g GP) Proc() int { return int(uint32(g) >> OffBits) }

// Off returns the local byte offset encoded in g.
func (g GP) Off() uint32 { return uint32(g) & offMask }

// IsNil reports whether g is the null pointer.
func (g GP) IsNil() bool { return g == Nil }

// Add returns g advanced by delta bytes within the same processor section.
// It panics on overflow of the offset field, which would silently change
// the processor name.
func (g GP) Add(delta uint32) GP {
	off := g.Off() + delta
	if off >= MaxOffset {
		panic(fmt.Sprintf("gaddr: offset overflow: %#x + %#x", g.Off(), delta))
	}
	return GP(uint32(g) + delta)
}

// String formats g as ⟨p:off⟩ for diagnostics.
func (g GP) String() string {
	if g.IsNil() {
		return "⟨nil⟩"
	}
	return fmt.Sprintf("⟨%d:%#x⟩", g.Proc(), g.Off())
}

// Page geometry, from the paper (§3.2, footnote 2): "In Olden, a page is
// 2K bytes, and a line 64 bytes."
const (
	PageBytes = 2048 // bytes per cache page
	LineBytes = 64   // bytes per cache line
	// LinesPerPage is the number of lines in a page; with the paper's
	// geometry this is 32, so a page's valid bits fit one 32-bit word
	// (Figure 1).
	LinesPerPage = PageBytes / LineBytes
	// WordBytes is the machine word size used by the heap. The CM-5 used
	// 4-byte words; we use 8 so a float64 or a packed GP fits one word.
	WordBytes = 8
	// WordsPerLine is the number of heap words per cache line.
	WordsPerLine = LineBytes / WordBytes
	// WordsPerPage is the number of heap words per page.
	WordsPerPage = PageBytes / WordBytes
)

// PageID identifies a global page: the global byte address with the
// low log2(PageBytes) bits cleared. Page IDs never cross processors
// because heap sections are page-aligned.
type PageID uint32

// PageOf returns the global page containing g.
func PageOf(g GP) PageID { return PageID(uint32(g) &^ uint32(PageBytes-1)) }

// LineOf returns the index within its page of the line containing g.
func LineOf(g GP) int { return int(g.Off()%PageBytes) / LineBytes }

// Proc returns the processor owning the page.
func (p PageID) Proc() int { return GP(p).Proc() }

// Base returns the global pointer to the first byte of the page.
func (p PageID) Base() GP { return GP(p) }

// String formats the page for diagnostics.
func (p PageID) String() string {
	return fmt.Sprintf("page⟨%d:%#x⟩", GP(p).Proc(), GP(p).Off())
}
