package gaddr

import "testing"

// FuzzPackUnpack checks that the ⟨processor, offset⟩ encoding round-trips
// for every in-range field pair and that the page/line geometry derived
// from a pointer is internally consistent.
func FuzzPackUnpack(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(0), uint32(WordBytes)) // first real word after nil
	f.Add(uint32(1), uint32(PageBytes-1))
	f.Add(uint32(31), uint32(LineBytes*7+3))
	f.Add(uint32(MaxProcs-1), uint32(MaxOffset-1))
	f.Fuzz(func(t *testing.T, procRaw, offRaw uint32) {
		proc := int(procRaw % MaxProcs)
		off := offRaw % MaxOffset
		g := Pack(proc, off)
		if g.Proc() != proc || g.Off() != off {
			t.Fatalf("Pack(%d, %#x) round-trips to ⟨%d, %#x⟩", proc, off, g.Proc(), g.Off())
		}
		if g.IsNil() != (proc == 0 && off == 0) {
			t.Fatalf("IsNil() = %v for ⟨%d, %#x⟩", g.IsNil(), proc, off)
		}

		pg := PageOf(g)
		base := pg.Base()
		if pg.Proc() != proc || base.Proc() != proc {
			t.Fatalf("page of ⟨%d, %#x⟩ claims processor %d", proc, off, pg.Proc())
		}
		if base.Off()%PageBytes != 0 {
			t.Fatalf("page base %#x not page-aligned", base.Off())
		}
		if off < base.Off() || off-base.Off() >= PageBytes {
			t.Fatalf("offset %#x outside its page [%#x, %#x)", off, base.Off(), base.Off()+PageBytes)
		}

		line := LineOf(g)
		if line < 0 || line >= LinesPerPage {
			t.Fatalf("line index %d out of [0, %d)", line, LinesPerPage)
		}
		if want := int(off%PageBytes) / LineBytes; line != want {
			t.Fatalf("LineOf = %d, want %d", line, want)
		}

		// Every address within the same line maps to the same page and line.
		sib := Pack(proc, off-off%LineBytes)
		if PageOf(sib) != pg || LineOf(sib) != line {
			t.Fatalf("line start ⟨%d, %#x⟩ maps to (%v, %d), original to (%v, %d)",
				proc, sib.Off(), PageOf(sib), LineOf(sib), pg, line)
		}

		// Add stays within the section and agrees with field arithmetic.
		if delta := offRaw % 64; off+delta < MaxOffset {
			h := g.Add(delta)
			if h.Proc() != proc || h.Off() != off+delta {
				t.Fatalf("Add(%d) on ⟨%d, %#x⟩ gave ⟨%d, %#x⟩", delta, proc, off, h.Proc(), h.Off())
			}
		}
	})
}
