package analysis

import (
	"path"
	"strings"

	"repro/internal/analysis/effects"
	"repro/internal/bench"
	"repro/internal/core"

	// The certificate cross-validation runs registered benchmarks; the
	// kernels register themselves in package init.
	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

// checkCertTrace cross-validates the static cacheability certificate of
// a benchmark package's mini-C kernel against the runtime's own account
// of what it did. A certificate claims the program's semantic access
// behaviour is independent of the coherence scheme; the runtime half of
// that claim is trace.AccessDigest — the order-insensitive projection of
// the event stream onto semantic kinds, excluding protocol traffic. The
// check runs the registered benchmark under all three schemes and flags
// any certified kernel whose access digests differ, and any run that
// fails its own verification.
//
// Packages without a KernelSource, kernels that are not registered
// benchmarks, and kernels whose certificate is (correctly) refused are
// all skipped: a refusal is the analysis doing its job, not a finding.
func checkCertTrace(p *Package) []Finding {
	src, pos, ok := kernelSource(p)
	if !ok {
		return nil
	}
	benchName := path.Base(p.unitPath())
	info, registered := bench.Get(benchName)
	if !registered {
		return nil
	}
	res, err := effects.AnalyzeSource(src, core.DefaultParams())
	if err != nil {
		return nil // mechanism-consistency already reports parse failures
	}
	cert := res.Certificate()
	if !cert.Cacheable {
		return nil
	}
	var fs []Finding
	for _, msg := range validateCertified(benchName, info) {
		fs = append(fs, p.finding("cert-trace", pos, "%s", msg))
	}
	return fs
}

func validateCertified(name string, info bench.Info) []string {
	var msgs []string
	all := observeSchemes(name, info)
	var obs []schemeObs
	for _, o := range all {
		if !o.verified {
			msgs = append(msgs, "certified kernel "+name+" failed verification under "+
				o.scheme)
			continue
		}
		obs = append(obs, o)
	}
	for i := 1; i < len(obs); i++ {
		if obs[i].kernelAccess != obs[0].kernelAccess {
			msgs = append(msgs, "certificate for "+name+
				" claims scheme-independence but kernel access digests differ: "+
				obs[0].scheme+"="+obs[0].kernelAccess.String()+" vs "+
				obs[i].scheme+"="+obs[i].kernelAccess.String())
		}
		if obs[i].buildAccess != obs[0].buildAccess {
			msgs = append(msgs, "certificate for "+name+
				" claims scheme-independence but build access digests differ: "+
				obs[0].scheme+"="+obs[0].buildAccess.String()+" vs "+
				obs[i].scheme+"="+obs[i].buildAccess.String())
		}
	}
	// Normalize duplicate messages away (several schemes can disagree in
	// the same way).
	return dedupe(msgs)
}

func dedupe(msgs []string) []string {
	var out []string
	for _, m := range msgs {
		if len(out) == 0 || !contains(out, m) {
			out = append(out, m)
		}
	}
	return out
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if strings.EqualFold(x, v) {
			return true
		}
	}
	return false
}
