package analysis

import (
	"path"
	"strings"
	"sync"

	"repro/internal/analysis/effects"
	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/rt"
	"repro/internal/trace"

	// The certificate cross-validation runs registered benchmarks; the
	// kernels register themselves in package init.
	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

// checkCertTrace cross-validates the static cacheability certificate of
// a benchmark package's mini-C kernel against the runtime's own account
// of what it did. A certificate claims the program's semantic access
// behaviour is independent of the coherence scheme; the runtime half of
// that claim is trace.AccessDigest — the order-insensitive projection of
// the event stream onto semantic kinds, excluding protocol traffic. The
// check runs the registered benchmark under all three schemes and flags
// any certified kernel whose access digests differ, and any run that
// fails its own verification.
//
// Packages without a KernelSource, kernels that are not registered
// benchmarks, and kernels whose certificate is (correctly) refused are
// all skipped: a refusal is the analysis doing its job, not a finding.
func checkCertTrace(p *Package) []Finding {
	src, pos, ok := kernelSource(p)
	if !ok {
		return nil
	}
	benchName := path.Base(p.unitPath())
	info, registered := bench.Get(benchName)
	if !registered {
		return nil
	}
	res, err := effects.AnalyzeSource(src, core.DefaultParams())
	if err != nil {
		return nil // mechanism-consistency already reports parse failures
	}
	cert := res.Certificate()
	if !cert.Cacheable {
		return nil
	}
	var fs []Finding
	for _, msg := range validateCertified(benchName, info) {
		fs = append(fs, p.finding("cert-trace", pos, "%s", msg))
	}
	return fs
}

// certTraceCache memoizes the per-benchmark validation: oldenvet loads a
// benchmark package more than once (unit and test variants), and the
// simulation runs are the expensive part.
var certTraceCache sync.Map // bench name -> []string (failure messages)

// certTraceScale trades coverage for vet latency: the claim is about
// access *behaviour*, not size, so a reduced problem exercises the same
// code paths the certificate reasons about.
const certTraceScale = 4 * bench.DefaultScale

func validateCertified(name string, info bench.Info) []string {
	if v, ok := certTraceCache.Load(name); ok {
		return v.([]string)
	}
	var msgs []string
	type observed struct {
		scheme string
		kernel trace.Digest
		build  trace.Digest
	}
	var obs []observed
	for _, k := range []coherence.Kind{
		coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral,
	} {
		rec := trace.New(0)
		var rtm *rt.Runtime
		r := info.Run(bench.Config{
			Procs:       2,
			Scheme:      k,
			Scale:       certTraceScale,
			Trace:       rec,
			RuntimeHook: func(r *rt.Runtime) { rtm = r },
		})
		if !r.Verified() {
			msgs = append(msgs, "certified kernel "+name+" failed verification under "+
				k.String())
			continue
		}
		o := observed{scheme: k.String(), kernel: rec.AccessDigest()}
		if rtm != nil {
			if _, access, ok := rtm.BuildPhaseDigest(); ok {
				o.build = access
			}
		}
		obs = append(obs, o)
	}
	for i := 1; i < len(obs); i++ {
		if obs[i].kernel != obs[0].kernel {
			msgs = append(msgs, "certificate for "+name+
				" claims scheme-independence but kernel access digests differ: "+
				obs[0].scheme+"="+obs[0].kernel.String()+" vs "+
				obs[i].scheme+"="+obs[i].kernel.String())
		}
		if obs[i].build != obs[0].build {
			msgs = append(msgs, "certificate for "+name+
				" claims scheme-independence but build access digests differ: "+
				obs[0].scheme+"="+obs[0].build.String()+" vs "+
				obs[i].scheme+"="+obs[i].build.String())
		}
	}
	// Normalize duplicate messages away (several schemes can disagree in
	// the same way).
	msgs = dedupe(msgs)
	certTraceCache.Store(name, msgs)
	return msgs
}

func dedupe(msgs []string) []string {
	var out []string
	for _, m := range msgs {
		if len(out) == 0 || !contains(out, m) {
			out = append(out, m)
		}
	}
	return out
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if strings.EqualFold(x, v) {
			return true
		}
	}
	return false
}
