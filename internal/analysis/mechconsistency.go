package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
)

// checkMechConsistency cross-checks the Mech tag of every rt.Site
// literal against the compile-time heuristic run on the same package's
// mini-C kernel. A benchmark package is "compiler output": its
// `KernelSource` constant is the program the paper's compiler would have
// seen, and each hand-written `&rt.Site{Name: "bench.v", Mech: ...}` is
// a claim about what that compiler decided for v's dereferences. The
// check replays the decision — parse the kernel, run core.Analyze with
// the default parameters, look up the mechanism the heuristic gives the
// tag — and flags any literal whose claim disagrees.
//
// Sites whose tag does not map onto the kernel (helper phases, sites of
// variables the kernel abstracts away) are skipped, as are sites with a
// non-constant name or a Mech that is not spelled as the rt.Migrate /
// rt.Cache constant. Packages without a KernelSource constant are not
// benchmark packages and are skipped entirely.
func checkMechConsistency(p *Package) []Finding {
	src, pos, ok := kernelSource(p)
	if !ok {
		return nil
	}
	prog, err := lang.Parse(src)
	if err != nil {
		return []Finding{p.finding("mechanism-consistency", pos,
			"KernelSource does not parse as mini-C: %v", err)}
	}
	rep := core.Analyze(prog, core.DefaultParams())

	var fs []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[lit]
			if !ok || !p.namedFrom(tv.Type, "internal/rt", "Site") {
				return true
			}
			fs = append(fs, p.siteMechanism(lit, rep)...)
			return true
		})
	}
	return fs
}

// kernelSource returns the package's KernelSource string constant and
// its declaration position.
func kernelSource(p *Package) (string, token.Pos, bool) {
	obj, ok := p.Types.Scope().Lookup("KernelSource").(*types.Const)
	if !ok || obj.Val().Kind() != constant.String {
		return "", 0, false
	}
	return constant.StringVal(obj.Val()), obj.Pos(), true
}

// siteMechanism checks one rt.Site literal against the heuristic.
func (p *Package) siteMechanism(lit *ast.CompositeLit, rep *core.Report) []Finding {
	var nameExpr, mechExpr ast.Expr
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if k, ok := kv.Key.(*ast.Ident); ok {
			switch k.Name {
			case "Name":
				nameExpr = kv.Value
			case "Mech":
				mechExpr = kv.Value
			}
		}
	}
	if nameExpr == nil || mechExpr == nil {
		return nil // unnamed or untagged; site-hygiene owns naming
	}
	tv, ok := p.Info.Types[nameExpr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil
	}
	name := constant.StringVal(tv.Value)
	if !siteNameRE.MatchString(name) {
		return nil
	}
	tag := name[strings.Index(name, ".")+1:]
	if strings.Contains(tag, ".") {
		return nil // deeper qualification than the <bench>.<var> scheme
	}
	tagged, ok := p.mechConstName(mechExpr)
	if !ok {
		return nil
	}
	want, found := rep.MechanismForName(tag)
	if !found {
		return nil // tag does not map onto the kernel
	}
	wantName := "Cache"
	if want == core.ChooseMigrate {
		wantName = "Migrate"
	}
	if tagged == wantName {
		return nil
	}
	return []Finding{p.finding("mechanism-consistency", mechExpr.Pos(),
		"site %q is tagged %s but the kernel heuristic chooses %s for %q",
		name, tagged, wantName, tag)}
}

// mechConstName resolves a Mech field value to the rt constant it names
// ("Migrate" or "Cache", possibly through the olden re-export).
func (p *Package) mechConstName(e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	obj, ok := p.Info.Uses[id].(*types.Const)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	if path != p.mod()+"/internal/rt" && path != p.mod()+"/olden" {
		return "", false
	}
	if n := obj.Name(); n == "Migrate" || n == "Cache" {
		return n, true
	}
	return "", false
}
