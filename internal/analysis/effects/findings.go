package effects

import (
	"fmt"
	"sort"
)

// Finding is one effects-analysis finding in the oldenvet finding shape
// (internal/analysis.Finding has the identical JSON layout; this package
// cannot import it without creating a cycle through the certificate
// cross-validation check).
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// Findings renders the analysis as findings: one "effects/summary" and
// one "effects/bound" per function, one "effects/diff" per differential
// site, and one "effects/certificate" for the program. The slice is
// sorted by (file, line, col, check, message) — the deterministic
// ordering contract the vet findings follow.
func (r *Result) Findings(file string) []Finding {
	var out []Finding
	for _, s := range r.Summaries {
		out = append(out, Finding{
			Check: "effects/summary", File: file, Line: s.Pos.Line, Col: s.Pos.Col,
			Message: fmt.Sprintf("%s: %s", s.Name, s.EffectsLine()),
		})
		out = append(out, Finding{
			Check: "effects/bound", File: file, Line: s.Pos.Line, Col: s.Pos.Col,
			Message: fmt.Sprintf("%s: %s", s.Name, s.BoundsLine()),
		})
	}
	for _, d := range r.Diffs {
		out = append(out, Finding{
			Check: "effects/diff", File: file, Line: d.Pos.Line, Col: d.Pos.Col,
			Message: fmt.Sprintf("%s: loop %s: %s %s->%s (%s)",
				d.Fn, d.Loop, d.Var, d.Old, d.New, d.Reason),
		})
	}
	cert := r.Certificate()
	msg := fmt.Sprintf("cacheable digest=%s", cert.Digest)
	if !cert.Cacheable {
		msg = fmt.Sprintf("not cacheable: %s digest=%s",
			joinReasons(cert.Reasons), cert.Digest)
	}
	out = append(out, Finding{
		Check: "effects/certificate", File: file, Line: 1, Col: 1, Message: msg,
	})
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out
}

func joinReasons(rs []string) string {
	out := ""
	for i, r := range rs {
		if i > 0 {
			out += ","
		}
		out += r
	}
	return out
}
