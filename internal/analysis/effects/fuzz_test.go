package effects

import (
	"testing"

	"repro/internal/core"
)

// effectsSeeds are whole mini-C programs exercising the shapes the
// summary analysis distinguishes: deep call chains (summaries compose
// bottom-up through five frames), direct and mutual recursion (SCC
// fixpoints), aliased and fresh writes (the aval lattice), extern
// calls, unbounded and counted loops, and allocation in a loop.
var effectsSeeds = []string{
	"",
	"int main() { return 0; }",
	// Deep call chain: effects and bounds must propagate through all
	// five frames, with the write at the bottom surfacing at the top.
	`struct node { int v; struct node *next; };
void f5(struct node *n) { n->v = 1; }
void f4(struct node *n) { f5(n->next); }
void f3(struct node *n) { f4(n); }
void f2(struct node *n) { f3(n->next); }
void f1(struct node *n) { f2(n); }`,
	// Direct recursion over a tree: pure, heap-bounded.
	`struct tree { int val; struct tree *left; struct tree *right; };
int sum(struct tree *t) {
  if (t == 0) return 0;
  return t->val + sum(t->left) + sum(t->right);
}`,
	// Mutual recursion: the SCC fixpoint must converge and bounds go ⊤.
	`struct s { int v; struct s *n; };
int ping(struct s *p);
int pong(struct s *p) { if (p == 0) return 0; return ping(p->n); }
int ping(struct s *p) { if (p == 0) return 1; return pong(p->n); }`,
	// Aliased write inside a pointer-chasing loop (the demotion diff).
	`struct node { int v; struct node *next; };
void rewire(struct node *l, struct node *m) {
  while (l) {
    m->next = l->next;
    l = l->next;
  }
}`,
	// Fresh allocation: writes to just-allocated objects stay pure.
	`struct node { int v; struct node *next; };
struct node *mk(int n) {
  struct node *p;
  p = alloc(0);
  p->v = n;
  p->next = 0;
  return p;
}`,
	// Extern call: poisons purity, bounds and the certificate.
	`struct s { int v; };
int mystery(struct s *p);
int f(struct s *p) { return mystery(p); }`,
	// Unbounded loop and loop allocation: ⊤ steps, ⊤ allocs.
	`struct node { int v; struct node *next; };
void grow(struct node *l) {
  struct node *n;
  while (l) {
    n = alloc(0);
    n->next = l;
    l = n;
  }
}`,
	// Counted loops: one constant-trip, one symbolic-trip.
	`int f(int n) {
  int i;
  int t;
  t = 0;
  for (i = 0; i < n; i = i + 1) { t = t + i; }
  i = 0;
  while (i < 10) { i = i + 1; }
  return t;
}`,
	"int bad( { ;;; }",
}

// FuzzEffects checks the whole analysis pipeline — parse, alias
// dataflow, SCC fixpoint, bounds, heuristic diff, certificate — never
// panics on any parseable input, and that accepted programs analyze
// deterministically: a second run must reproduce the same findings and
// the same certificate digest.
func FuzzEffects(f *testing.F) {
	for _, s := range effectsSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Analysis cost is superlinear in program size (SCC fixpoints,
		// per-function dataflow); bound the input so the fuzzer explores
		// program shapes rather than sheer bulk.
		if len(src) > 1<<14 {
			return
		}
		res, err := AnalyzeSource(src, core.DefaultParams())
		if err != nil {
			return // parse or analysis rejection is fine; panics are not
		}
		if res == nil {
			t.Fatal("nil result without error")
		}
		cert := res.Certificate()
		if len(cert.Digest) != 16 {
			t.Fatalf("malformed certificate digest %q", cert.Digest)
		}
		findings := res.Findings("fuzz.c")
		again, err := AnalyzeSource(src, core.DefaultParams())
		if err != nil {
			t.Fatalf("accepted input rejected on re-analysis: %v", err)
		}
		if got := again.Certificate(); got.Digest != cert.Digest {
			t.Fatalf("certificate digest not deterministic: %s vs %s", got.Digest, cert.Digest)
		}
		reFindings := again.Findings("fuzz.c")
		if len(reFindings) != len(findings) {
			t.Fatalf("finding count not deterministic: %d vs %d", len(reFindings), len(findings))
		}
		for i := range findings {
			if findings[i] != reFindings[i] {
				t.Fatalf("finding %d not deterministic:\n %+v\nvs %+v", i, findings[i], reFindings[i])
			}
		}
	})
}
