package effects

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	r, err := AnalyzeSource(src, core.DefaultParams())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return r
}

const figure4 = `
struct tree {
  int val;
  struct tree *left __affinity(90);
  struct tree *right __affinity(70);
};
int TreeAdd(struct tree *t) {
  if (t == NULL) return 0;
  else return TreeAdd(t->left) + TreeAdd(t->right) + t->val;
}
`

func TestTreeAddSummary(t *testing.T) {
	r := analyze(t, figure4)
	s := r.Summary("TreeAdd")
	if s == nil {
		t.Fatal("no summary for TreeAdd")
	}
	if !s.Pure {
		t.Errorf("TreeAdd not pure: %s", s.EffectsLine())
	}
	if !s.Recursive || s.Mutual {
		t.Errorf("recursive=%v mutual=%v, want true,false", s.Recursive, s.Mutual)
	}
	wantReads := []Region{{"tree", "left"}, {"tree", "right"}, {"tree", "val"}}
	if !reflect.DeepEqual(s.Reads, wantReads) {
		t.Errorf("Reads = %v, want %v", s.Reads, wantReads)
	}
	if len(s.Writes) != 0 || len(s.Escapes) != 0 || len(s.Extern) != 0 {
		t.Errorf("unexpected effects: %s", s.EffectsLine())
	}
	if s.Steps.Class != BHeap {
		t.Errorf("Steps = %s (class %d), want heap-proportional", s.Steps, s.Steps.Class)
	}
	if s.Allocs.Class != BConst || s.Allocs.N != 0 {
		t.Errorf("Allocs = %s, want 0", s.Allocs)
	}
}

func TestFigure3ListWalk(t *testing.T) {
	r := analyze(t, `
struct node {
  struct node *left __affinity(90);
  struct node *right __affinity(70);
};
void f(struct node *s, struct node *t, struct node *u) {
  while (s) {
    s = s->left;
    t = t->right->left;
    u = s->right;
  }
}
`)
	s := r.Summary("f")
	if !s.Pure {
		t.Errorf("f not pure: %s", s.EffectsLine())
	}
	wantReads := []Region{{"node", "left"}, {"node", "right"}}
	if !reflect.DeepEqual(s.Reads, wantReads) {
		t.Errorf("Reads = %v, want %v", s.Reads, wantReads)
	}
	// Pointer chase on s: heap-proportional trip count.
	if s.Steps.Class != BHeap {
		t.Errorf("Steps = %s, want heap-proportional", s.Steps)
	}
}

func TestFreshAllocationsStayPure(t *testing.T) {
	r := analyze(t, `
struct node { int v; struct node *next; };
struct node *mk(int v) {
  struct node *n;
  n = alloc();
  n->v = v;
  n->next = NULL;
  return n;
}
`)
	s := r.Summary("mk")
	if !s.Pure {
		t.Errorf("mk not pure: %s", s.EffectsLine())
	}
	if len(s.Writes) != 0 {
		t.Errorf("fresh-only stores counted as writes: %v", s.Writes)
	}
	if s.Allocs.Class != BConst || s.Allocs.N != 1 {
		t.Errorf("Allocs = %s, want 1", s.Allocs)
	}
	if !s.ret.fresh || s.ret.heap || s.ret.top {
		t.Errorf("ret = %+v, want fresh-only", s.ret)
	}
}

func TestParamWriteEscapes(t *testing.T) {
	r := analyze(t, `
struct node { int v; struct node *next; };
void set(struct node *n, int v) {
  n->v = v;
}
void caller(struct node *m) {
  set(m, 3);
}
`)
	s := r.Summary("set")
	if s.Pure {
		t.Error("set should not be pure: writes through a parameter")
	}
	if !reflect.DeepEqual(s.Writes, []Region{{"node", "v"}}) {
		t.Errorf("Writes = %v, want [node.v]", s.Writes)
	}
	if !reflect.DeepEqual(s.Escapes, []string{"n"}) {
		t.Errorf("Escapes = %v, want [n]", s.Escapes)
	}
	// The effect propagates interprocedurally to the caller.
	c := r.Summary("caller")
	if c.Pure {
		t.Error("caller should inherit set's impurity")
	}
	if !reflect.DeepEqual(c.Writes, []Region{{"node", "v"}}) {
		t.Errorf("caller Writes = %v, want [node.v]", c.Writes)
	}
	if !reflect.DeepEqual(c.Escapes, []string{"m"}) {
		t.Errorf("caller Escapes = %v, want [m]", c.Escapes)
	}
}

func TestExternPoisonsEverything(t *testing.T) {
	r := analyze(t, `
struct node { int v; };
int f(struct node *n) {
  return mystery(n);
}
`)
	s := r.Summary("f")
	if s.Pure {
		t.Error("extern call should break purity")
	}
	if !reflect.DeepEqual(s.Extern, []string{"mystery"}) {
		t.Errorf("Extern = %v, want [mystery]", s.Extern)
	}
	if !reflect.DeepEqual(s.Escapes, []string{"n"}) {
		t.Errorf("Escapes = %v, want [n] (pointer arg to extern)", s.Escapes)
	}
	if !s.Steps.IsTop() || !s.Allocs.IsTop() {
		t.Errorf("bounds = %s/%s, want ⊤/⊤", s.Steps, s.Allocs)
	}
	cert := r.Certificate()
	if cert.Cacheable {
		t.Error("extern program must not be certified")
	}
	found := false
	for _, reason := range cert.Reasons {
		if reason == "extern-call:mystery" {
			found = true
		}
	}
	if !found {
		t.Errorf("Reasons = %v, want extern-call:mystery", cert.Reasons)
	}
}

func TestMutualRecursionTops(t *testing.T) {
	r := analyze(t, `
struct node { struct node *next; };
void ping(struct node *n) { pong(n); }
void pong(struct node *n) { ping(n); }
`)
	for _, name := range []string{"ping", "pong"} {
		s := r.Summary(name)
		if !s.Mutual {
			t.Errorf("%s: Mutual = false, want true", name)
		}
		if !s.Steps.IsTop() {
			t.Errorf("%s: Steps = %s, want ⊤", name, s.Steps)
		}
	}
}

func TestCountedLoopBounds(t *testing.T) {
	r := analyze(t, `
struct node { int v; };
int count(int n) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) {
    s = s + i;
  }
  return s;
}
int fixed() {
  int i;
  int s;
  s = 0;
  i = 0;
  while (i < 10) {
    s = s + i;
    i = i + 1;
  }
  return s;
}
`)
	c := r.Summary("count")
	if c.Steps.Class != BSym || !strings.Contains(c.Steps.Expr, "n") {
		t.Errorf("count Steps = %s, want symbolic in n", c.Steps)
	}
	f := r.Summary("fixed")
	if f.Steps.Class != BConst {
		t.Errorf("fixed Steps = %s, want constant", f.Steps)
	}
}

// TestInductionNeedsKnownStart: a literal loop limit bounds nothing when
// the counter's starting value is unknown — i starts a million below the
// limit here, and the old analysis admitted it as ~11 steps.
func TestInductionNeedsKnownStart(t *testing.T) {
	r := analyze(t, `
struct node { int v; };
int creep(int n) {
  int i;
  i = 0 - 1000000;
  while (i < 10) {
    i = i + 1;
  }
  return i;
}
`)
	if s := r.Summary("creep"); !s.Steps.IsTop() {
		t.Errorf("creep Steps = %s, want ⊤ (unknown initial value)", s.Steps)
	}
}

// TestConditionalAdvanceTops: a pointer chase that only advances on some
// paths can spin forever, so it gets no heap bound.
func TestConditionalAdvanceTops(t *testing.T) {
	r := analyze(t, `
struct node { int v; struct node *next; };
void stall(struct node *p, int c) {
  while (p) {
    if (c) p = p->next;
    c = 0;
  }
}
`)
	if s := r.Summary("stall"); !s.Steps.IsTop() {
		t.Errorf("stall Steps = %s, want ⊤ (advance only on some paths)", s.Steps)
	}
}

// TestConflictingStepsTop: branch-dependent steps whose net change may be
// zero or negative prove no progress toward the limit.
func TestConflictingStepsTop(t *testing.T) {
	r := analyze(t, `
struct node { int v; };
int wobble(int n) {
  int i;
  i = 0;
  while (i < 10) {
    if (n) i = i - 1;
    if (n) i = i + 1;
  }
  return i;
}
`)
	if s := r.Summary("wobble"); !s.Steps.IsTop() {
		t.Errorf("wobble Steps = %s, want ⊤ (net step may be zero)", s.Steps)
	}
}

// TestEveryPathAdvanceKeepsBound: the bisort shape — both branches of the
// body advance the chased pointer — still earns its heap bound.
func TestEveryPathAdvanceKeepsBound(t *testing.T) {
	r := analyze(t, `
struct tree { int v; struct tree *left; struct tree *right; };
int descend(struct tree *pl, int dir) {
  while (pl) {
    if (pl->v == dir) {
      pl = pl->left;
    } else {
      pl = pl->right;
    }
  }
  return dir;
}
`)
	if s := r.Summary("descend"); s.Steps.Class != BHeap {
		t.Errorf("descend Steps = %s, want heap-proportional", s.Steps)
	}
}

// TestDownwardCountedLoop: a known start above a literal limit with a
// negative step is a constant bound.
func TestDownwardCountedLoop(t *testing.T) {
	r := analyze(t, `
struct node { int v; };
int drain(int n) {
  int i;
  int s;
  s = 0;
  for (i = 10; i > 0; i = i - 1) {
    s = s + i;
  }
  return s;
}
`)
	s := r.Summary("drain")
	if s.Steps.Class != BConst {
		t.Errorf("drain Steps = %s, want constant", s.Steps)
	}
}

// TestNestedLoopOverflowSaturates: bound arithmetic that overflows int64
// must degrade to ⊤, never wrap to a small or negative constant that
// would slip under an admission budget.
func TestNestedLoopOverflowSaturates(t *testing.T) {
	r := analyze(t, `
struct node { int v; };
int burn() {
  int i;
  int j;
  int k;
  int s;
  s = 0;
  for (i = 0; i < 4000000000; i = i + 1) {
    for (j = 0; j < 4000000000; j = j + 1) {
      for (k = 0; k < 4000000000; k = k + 1) {
        s = s + 1;
      }
    }
  }
  return s;
}
`)
	s := r.Summary("burn")
	if s.Steps.Class == BConst && s.Steps.N <= 0 {
		t.Fatalf("burn Steps = %s: overflow wrapped instead of saturating", s.Steps)
	}
	if !s.Steps.IsTop() {
		t.Errorf("burn Steps = %s, want ⊤ (overflowing constant product)", s.Steps)
	}
}

func TestUnboundedLoopTops(t *testing.T) {
	r := analyze(t, `
struct node { int v; };
void spin(struct node *n) {
  while (1) {
    n->v = 0;
  }
}
`)
	s := r.Summary("spin")
	if !s.Steps.IsTop() {
		t.Errorf("spin Steps = %s, want ⊤", s.Steps)
	}
}

func TestAliasedWriteDiff(t *testing.T) {
	r := analyze(t, `
struct node { int v; struct node *next __affinity(95); };
void f(struct node *l, struct node *m) {
  while (l) {
    m->v = 3;
    l = l->next;
  }
}
`)
	var hit *Diff
	for i := range r.Diffs {
		if strings.HasPrefix(r.Diffs[i].Reason, "aliased-write:") {
			hit = &r.Diffs[i]
		}
	}
	if hit == nil {
		t.Fatalf("no aliased-write diff; diffs = %+v", r.Diffs)
	}
	if hit.Reason != "aliased-write:node.v via m" {
		t.Errorf("Reason = %q", hit.Reason)
	}
	if hit.Old != core.ChooseMigrate || hit.New != core.ChooseCache {
		t.Errorf("diff %s->%s, want migrate->cache", hit.Old, hit.New)
	}
}

func TestFreshWriteRaisesNoDiff(t *testing.T) {
	// Same shape, but the written object is allocated inside the loop:
	// provably unaliased, so the heuristic's choice stands.
	r := analyze(t, `
struct node { int v; struct node *next __affinity(95); };
void f(struct node *l) {
  struct node *m;
  while (l) {
    m = alloc();
    m->v = 3;
    l = l->next;
  }
}
`)
	for _, d := range r.Diffs {
		if strings.HasPrefix(d.Reason, "aliased-write:") {
			t.Errorf("fresh store reported as aliased write: %+v", d)
		}
	}
}

func TestDerivedFromDiff(t *testing.T) {
	r := analyze(t, `
struct tree { int val; struct tree *left __affinity(95); struct tree *kid __affinity(95); };
int g(struct tree *t) {
  struct tree *w;
  int s;
  s = 0;
  while (t) {
    w = t->kid;
    s = s + w->val;
    t = t->left;
  }
  return s;
}
`)
	var hit *Diff
	for i := range r.Diffs {
		if r.Diffs[i].Reason == "derived-from:t" && r.Diffs[i].Var == "w" {
			hit = &r.Diffs[i]
		}
	}
	if hit == nil {
		t.Fatalf("no derived-from diff for w; diffs = %+v", r.Diffs)
	}
	if hit.Old != core.ChooseCache || hit.New != core.ChooseMigrate {
		t.Errorf("diff %s->%s, want cache->migrate", hit.Old, hit.New)
	}
}

func TestCertificateMigrateOnly(t *testing.T) {
	r := analyze(t, figure4)
	cert := r.Certificate()
	if !cert.MigrateOnly {
		t.Error("figure4 should be migrate-only")
	}
	if !cert.Cacheable {
		t.Errorf("figure4 should be certified; reasons = %v", cert.Reasons)
	}
	if len(cert.Digest) != 16 {
		t.Errorf("Digest = %q, want 16 hex chars", cert.Digest)
	}
}

func TestCertificateStability(t *testing.T) {
	a := analyze(t, figure4).Certificate()
	b := analyze(t, figure4).Certificate()
	if a.Digest != b.Digest {
		t.Errorf("digest not stable: %s vs %s", a.Digest, b.Digest)
	}
	// Any effect change must move the digest.
	c := analyze(t, strings.Replace(figure4, "t->val", "t->val + TreeAdd(t->left)", 1)).Certificate()
	if c.Digest == a.Digest {
		t.Error("digest unchanged by a different program")
	}
}

func TestFindingsDeterministicOrder(t *testing.T) {
	src := `
struct node { int v; struct node *next __affinity(95); };
void f(struct node *l, struct node *m) {
  while (l) {
    m->v = 3;
    l = l->next;
  }
}
struct node *mk() {
  struct node *n;
  n = alloc();
  return n;
}
`
	first := analyze(t, src).Findings("x.c")
	for i := 0; i < 10; i++ {
		got := analyze(t, src).Findings("x.c")
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d differs:\n%v\nvs\n%v", i, got, first)
		}
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col) ||
			(a.Line == b.Line && a.Col == b.Col && a.Check > b.Check) {
			t.Errorf("findings out of order at %d: %+v then %+v", i, a, b)
		}
	}
}
