package effects

import (
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/lang/cfg"
)

// aval is the abstract value of a pointer variable: the set of abstract
// locations it may point into. The lattice is a powerset — join is
// field-wise or — with top as the explicit everything element.
//
//   - params: bitmask of the function's parameters whose referent the
//     pointer may alias (bit i for parameter i).
//   - fresh: may point at an object allocated during this call that has
//     not been loaded back from the heap. A fresh-only pointer aliases
//     nothing the caller can see, so stores through it are invisible
//     effects — the rule that keeps build-style initialization pure.
//   - heap: may point at an arbitrary pre-existing heap object (loaded
//     via a field, or returned heap-tainted by a callee).
//   - null: may be NULL.
//   - top: unknown (extern call results, use-before-init reads).
type aval struct {
	top    bool
	null   bool
	fresh  bool
	heap   bool
	params uint64
}

func (a aval) join(b aval) aval {
	return aval{
		top:    a.top || b.top,
		null:   a.null || b.null,
		fresh:  a.fresh || b.fresh,
		heap:   a.heap || b.heap,
		params: a.params | b.params,
	}
}

// freshOnly reports whether the pointer can only reference objects
// allocated during this call (or be NULL): writes through it are not
// caller-visible effects.
func (a aval) freshOnly() bool {
	return !a.top && !a.heap && a.params == 0
}

// avalLattice adapts aval to the generic solver's Lattice interface.
type avalLattice struct{}

func (avalLattice) Bottom() aval         { return aval{} }
func (avalLattice) Join(a, b aval) aval  { return a.join(b) }
func (avalLattice) Equal(a, b aval) bool { return a == b }

// env is the per-program-point alias environment.
type env = map[string]aval

// fnAnalysis analyzes one function against the current summary table.
type fnAnalysis struct {
	res   *Result
	fn    *lang.FuncDecl
	te    typeEnv
	inSCC map[string]bool
	g     *cfg.Graph
	flow  dataflow.Result[env]
}

func newFnAnalysis(res *Result, fn *lang.FuncDecl, inSCC map[string]bool) *fnAnalysis {
	fa := &fnAnalysis{res: res, fn: fn, te: buildTypeEnv(fn), inSCC: inSCC}
	fa.g = cfg.Build(fn)
	boundary := env{}
	for i, p := range fn.Params {
		if p.Type.IsPtr() && i < 64 {
			boundary[p.Name] = aval{params: 1 << uint(i)}
		}
	}
	lat := dataflow.MapLattice[aval]{Val: avalLattice{}}
	fa.flow = dataflow.Solve(fa.g, dataflow.Problem[env]{
		Lattice:  lat,
		Dir:      dataflow.Forward,
		Boundary: boundary,
		Transfer: func(n int, in env) env {
			if in == nil {
				return nil // unreachable
			}
			ev := make(env, len(in))
			for k, v := range in {
				ev[k] = v
			}
			for _, s := range fa.g.Block(n).Stmts {
				fa.applyStmt(ev, s)
			}
			return ev
		},
	})
	return fa
}

// applyStmt updates the alias environment across one straight-line
// statement. Heap stores change no local bindings.
func (fa *fnAnalysis) applyStmt(ev env, s lang.Stmt) {
	switch s := s.(type) {
	case *lang.VarDecl:
		if s.Type.IsPtr() {
			if s.Init != nil {
				ev[s.Name] = fa.evalAval(ev, s.Init)
			} else {
				ev[s.Name] = aval{top: true}
			}
		}
	case *lang.Assign:
		if id, ok := s.LHS.(*lang.Ident); ok {
			if _, isPtr := fa.te[id.Name]; isPtr {
				ev[id.Name] = fa.evalAval(ev, s.RHS)
			}
		}
	}
}

// evalAval computes the abstract value of a pointer expression.
func (fa *fnAnalysis) evalAval(ev env, e lang.Expr) aval {
	switch e := e.(type) {
	case *lang.Ident:
		if v, ok := ev[e.Name]; ok {
			return v
		}
		if _, isPtr := fa.te[e.Name]; isPtr {
			// Read before any assignment on this path: unknown. The
			// use-before-init lint owns reporting it; here it only has
			// to be conservative.
			return aval{top: true}
		}
		return aval{}
	case *lang.Null:
		return aval{null: true}
	case *lang.Arrow:
		return aval{heap: true}
	case *lang.Touch:
		return fa.evalAval(ev, e.E)
	case *lang.Call:
		return fa.callAval(ev, e)
	}
	return aval{}
}

// callAval maps a call's return value through the callee's summary:
// whatever parameters the return may alias translate into the abstract
// values of the corresponding arguments.
func (fa *fnAnalysis) callAval(ev env, c *lang.Call) aval {
	callee := fa.res.Prog.Func(c.Name)
	if callee == nil {
		if c.Name == AllocName {
			return aval{fresh: true}
		}
		return aval{top: true}
	}
	sum := fa.res.byName[c.Name]
	if sum == nil {
		return aval{top: true}
	}
	out := sum.ret
	out.params = 0
	for i := range callee.Params {
		if i >= len(c.Args) || i >= 64 {
			break
		}
		if sum.ret.params&(1<<uint(i)) != 0 {
			out = out.join(fa.evalAval(ev, c.Args[i]))
		}
	}
	return out
}

// summarize builds the function's effect summary (everything except the
// cost bounds) from the solved alias flow.
func (fa *fnAnalysis) summarize() *Summary {
	s := &Summary{
		Name:      fa.fn.Name,
		Pos:       fa.fn.Pos,
		Params:    paramNames(fa.fn),
		Recursive: fa.callsSelf(),
		Mutual:    len(fa.inSCC) > 1,
	}
	reads := map[Region]bool{}
	writes := map[Region]bool{}
	var escapeMask uint64
	extern := map[string]bool{}

	record := func(ev env, st lang.Stmt, cond lang.Expr) {
		// Region reads: every Arrow chain in the statement (or branch
		// condition). The final link of a store chain is the write; its
		// prefix is reads.
		var exprs []lang.Expr
		var writeLHS *lang.Arrow
		switch st := st.(type) {
		case nil:
			exprs = append(exprs, cond)
		case *lang.VarDecl:
			if st.Init != nil {
				exprs = append(exprs, st.Init)
			}
		case *lang.Assign:
			exprs = append(exprs, st.RHS)
			if a, ok := st.LHS.(*lang.Arrow); ok {
				writeLHS = a
			}
		case *lang.Return:
			if st.E != nil {
				exprs = append(exprs, st.E)
				s.ret = s.ret.join(fa.evalAval(ev, st.E))
			}
		case *lang.ExprStmt:
			exprs = append(exprs, st.E)
		}
		for _, e := range exprs {
			for _, ch := range chainsIn(e) {
				for _, rg := range chainRegions(fa.res.Prog, fa.te, ch) {
					reads[rg] = true
				}
			}
		}
		if writeLHS != nil {
			regs := chainRegions(fa.res.Prog, fa.te, writeLHS)
			for i, rg := range regs {
				if i < len(regs)-1 {
					reads[rg] = true
				}
			}
			base, _ := chainBase(writeLHS)
			bv := fa.evalAval(ev, &lang.Ident{Name: base, Pos: lang.ExprPos(writeLHS)})
			if len(regs) > 0 {
				rg := regs[len(regs)-1]
				if !bv.freshOnly() {
					writes[rg] = true
				}
				s.stores = append(s.stores, storeRec{
					base: base, baseAV: bv, region: rg, pos: lang.StmtPos(st),
				})
			}
			escapeMask |= bv.params
			// Storing a pointer into the heap publishes its referent.
			if rhs := st.(*lang.Assign).RHS; rhs != nil {
				escapeMask |= fa.evalAval(ev, rhs).params
			}
		}
		// Calls: fold in callee effects.
		var calls []*lang.Call
		if st != nil {
			calls = callsIn(st)
		} else {
			for _, c := range callsInExpr(cond) {
				calls = append(calls, c)
			}
		}
		for _, c := range calls {
			if c.Future {
				s.Futures = true
			}
			callee := fa.res.Prog.Func(c.Name)
			if callee == nil {
				if c.Name == AllocName {
					continue
				}
				extern[c.Name] = true
				// Unknown effects: every pointer argument escapes.
				for _, a := range c.Args {
					escapeMask |= fa.evalAval(ev, a).params
				}
				continue
			}
			sum := fa.res.byName[c.Name]
			if sum == nil {
				continue
			}
			for _, rg := range sum.Reads {
				reads[rg] = true
			}
			for _, rg := range sum.Writes {
				writes[rg] = true
			}
			for _, x := range sum.Extern {
				extern[x] = true
			}
			if sum.Futures {
				s.Futures = true
			}
			escIdx := map[string]int{}
			for i, p := range callee.Params {
				escIdx[p.Name] = i
			}
			for _, pn := range sum.Escapes {
				i := escIdx[pn]
				if i < len(c.Args) {
					av := fa.evalAval(ev, c.Args[i])
					escapeMask |= av.params
					// An argument that may hold a pre-existing heap
					// object and gets written inside the callee is a
					// heap write here too — already covered by merging
					// sum.Writes above.
				}
			}
		}
	}

	for id, b := range fa.g.Blocks {
		in := fa.flow.In[id]
		if in == nil {
			continue // unreachable: never executes
		}
		ev := make(env, len(in))
		for k, v := range in {
			ev[k] = v
		}
		for _, st := range b.Stmts {
			record(ev, st, nil)
			fa.applyStmt(ev, st)
		}
		if b.Cond != nil {
			record(ev, nil, b.Cond)
		}
	}

	s.Reads = sortRegions(reads)
	s.Writes = sortRegions(writes)
	for i, p := range fa.fn.Params {
		if i < 64 && escapeMask&(1<<uint(i)) != 0 {
			s.Escapes = append(s.Escapes, p.Name)
		}
	}
	s.Extern = sortStrings(extern)
	s.Pure = len(s.Writes) == 0 && len(s.Escapes) == 0 && len(s.Extern) == 0
	return s
}

func (fa *fnAnalysis) callsSelf() bool {
	for _, c := range callsIn(fa.fn.Body) {
		if c.Name == fa.fn.Name {
			return true
		}
	}
	return false
}

// chainsIn collects the maximal Arrow chains of an expression.
func chainsIn(e lang.Expr) []*lang.Arrow {
	var out []*lang.Arrow
	var walk func(e lang.Expr)
	walk = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Arrow:
			out = append(out, e)
			// Nested chains inside the base only occur through calls,
			// which the Call case below re-walks via arguments; a chain
			// rooted at an Ident has nothing further inside.
			if _, ok := chainBase(e); !ok {
				walk(e.X)
			}
		case *lang.Call:
			for _, a := range e.Args {
				walk(a)
			}
		case *lang.Touch:
			walk(e.E)
		case *lang.Binary:
			walk(e.L)
			walk(e.R)
		case *lang.Unary:
			walk(e.X)
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// callsInExpr collects the call expressions in one expression.
func callsInExpr(e lang.Expr) []*lang.Call {
	if e == nil {
		return nil
	}
	return callsIn(&lang.ExprStmt{E: e})
}

func sortRegions(set map[Region]bool) []Region {
	out := make([]Region, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sortSlice(out, func(a, b Region) bool {
		if a.Struct != b.Struct {
			return a.Struct < b.Struct
		}
		return a.Field < b.Field
	})
	return out
}

func sortStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortSlice(out, func(a, b string) bool { return a < b })
	return out
}

func sortSlice[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
