package effects

import (
	"sort"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/lang/cfg"
)

// Diff is one site where the alias-aware classification disagrees with
// the §4.2/§4.3 heuristic's mechanism choice.
type Diff struct {
	Fn     string
	Loop   string // enclosing loop label
	Var    string // the variable whose dereference sites change
	Pos    lang.Pos
	Old    core.Mechanism
	New    core.Mechanism
	Reason string // machine-readable: "aliased-write:<region> via <w>", "derived-from:<v>"
}

// computeDiffs compares the heuristic's per-loop choices against the
// alias analysis. Two disagreements are possible:
//
//   - Demotion (migrate → cache). The heuristic migrates a loop's
//     traversal variable on affinity alone; if the same iteration also
//     stores through a second pointer that may alias a pre-existing
//     object of the same region, the migrated computation can race its
//     own writes' coherence — the alias-aware choice is to cache, which
//     the protocol keeps sound.
//   - Promotion (cache → migrate). Inside a migrating loop every other
//     variable defaults to caching; a variable rebound every iteration
//     from the migration variable's own fields (w = v->kid) lands on
//     v's home with the declared affinity, so its dereferences are
//     better served by the migration already happening.
func (r *Result) computeDiffs() {
	for _, fr := range r.Report.Funcs {
		sum := r.byName[fr.Fn.Name]
		if sum == nil {
			continue
		}
		var walk func(l *core.Loop)
		walk = func(l *core.Loop) {
			if l.Fn != nil && l.Fn.Name == fr.Fn.Name {
				r.diffLoop(fr.Fn.Name, sum, l)
			}
			for _, c := range l.Children {
				walk(c)
			}
		}
		for _, l := range fr.Loops {
			walk(l)
		}
	}
	sort.SliceStable(r.Diffs, func(i, j int) bool {
		a, b := r.Diffs[i], r.Diffs[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		return a.Reason < b.Reason
	})
}

func (r *Result) diffLoop(fn string, sum *Summary, l *core.Loop) {
	if l.Var == "" || l.Mech != core.ChooseMigrate {
		return
	}
	body := l.Body()
	if body == nil {
		return
	}

	// Demotion: a store through w ≠ var whose base may alias a
	// pre-existing object (not provably fresh) in the loop body.
	for _, st := range cfg.StmtStores(body) {
		if st.Base == l.Var {
			continue
		}
		rec, ok := sum.findStore(st.Base, st.Pos)
		if !ok || rec.baseAV.freshOnly() {
			continue
		}
		r.Diffs = append(r.Diffs, Diff{
			Fn: fn, Loop: l.Label, Var: l.Var, Pos: st.Pos,
			Old: core.ChooseMigrate, New: core.ChooseCache,
			Reason: "aliased-write:" + rec.region.String() + " via " + st.Base,
		})
	}

	// Promotion: variables derived from the migration variable inside
	// the iteration whose dereferences the heuristic left cached.
	derived := derivedVars(l.Var, body)
	reported := map[string]bool{}
	for _, d := range cfg.StmtDerefs(body) {
		if d.Base == l.Var || !derived[d.Base] || reported[d.Base] {
			continue
		}
		reported[d.Base] = true
		r.Diffs = append(r.Diffs, Diff{
			Fn: fn, Loop: l.Label, Var: d.Base, Pos: d.Pos,
			Old: core.ChooseCache, New: core.ChooseMigrate,
			Reason: "derived-from:" + l.Var,
		})
	}
}

// findStore looks up the recorded store with a matching base and
// position.
func (s *Summary) findStore(base string, pos lang.Pos) (storeRec, bool) {
	for _, rec := range s.stores {
		if rec.base == base && rec.pos == pos {
			return rec, true
		}
	}
	return storeRec{}, false
}

// derivedVars computes the variables that, at the end of one loop
// iteration, provably hold a value reached from v through field loads
// made this iteration. The walk is structural: If contributes only
// bindings derived on both branches, nested loops kill everything they
// assign (their own analysis owns them), any other assignment kills the
// binding.
func derivedVars(v string, body lang.Stmt) map[string]bool {
	derived := map[string]bool{v: true}
	var walk func(s lang.Stmt, derived map[string]bool)
	kill := func(s lang.Stmt, derived map[string]bool) {
		for _, name := range cfg.StmtDefs(s) {
			if name != v {
				delete(derived, name)
			}
		}
	}
	walk = func(s lang.Stmt, derived map[string]bool) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st, derived)
			}
		case *lang.VarDecl:
			if s.Name == v {
				return
			}
			if s.Init != nil && derivedExpr(s.Init, derived) {
				derived[s.Name] = true
			} else {
				delete(derived, s.Name)
			}
		case *lang.Assign:
			id, ok := s.LHS.(*lang.Ident)
			if !ok || id.Name == v {
				return
			}
			if derivedExpr(s.RHS, derived) {
				derived[id.Name] = true
			} else {
				delete(derived, id.Name)
			}
		case *lang.If:
			then := copySet(derived)
			walk(s.Then, then)
			els := copySet(derived)
			if s.Else != nil {
				walk(s.Else, els)
			}
			for name := range derived {
				if !then[name] || !els[name] {
					delete(derived, name)
				}
			}
			for name := range then {
				if els[name] {
					derived[name] = true
				}
			}
		case *lang.While, *lang.For:
			kill(s, derived)
		}
	}
	walk(body, derived)
	return derived
}

// derivedExpr reports whether an expression's value is reached from the
// derived set through field loads: an Arrow chain rooted at a derived
// variable, a derived variable itself, or either wrapped in touch().
func derivedExpr(e lang.Expr, derived map[string]bool) bool {
	switch e := e.(type) {
	case *lang.Ident:
		return derived[e.Name]
	case *lang.Arrow:
		base, ok := chainBase(e)
		return ok && derived[base]
	case *lang.Touch:
		return derivedExpr(e.E, derived)
	}
	return false
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
