package effects

import (
	"sort"

	"repro/internal/lang"
)

// This file is the footprint API the phase-slicing pass
// (internal/analysis/phases) consumes: per-statement effect footprints
// assembled from the same chain resolution the summaries use, with call
// sites folded in through the finished interprocedural summaries.

// StmtEffects is the flow-insensitive effect footprint of one statement
// subtree, callee summaries included. Unlike the per-function Summary it
// does not subtract initializing stores to fresh allocations made by the
// statement itself — a phase footprint must name every region the phase
// touches, because the phase boundary is exactly where "fresh" objects
// become visible to the next phase.
type StmtEffects struct {
	Reads  []Region
	Writes []Region
	// Allocs reports whether the statement (or a callee) can allocate.
	Allocs bool
	// Calls lists the defined functions called directly, source order,
	// deduplicated.
	Calls []string
	// Extern lists undefined functions called directly or through
	// callees (the alloc primitive excluded), sorted.
	Extern []string
	// Futures reports a futurecall in the statement or any callee.
	Futures bool
}

// StmtEffects computes the footprint of one statement of fn, folding in
// the finished summary of every function it calls. fn must belong to the
// analyzed program.
func (r *Result) StmtEffects(fn *lang.FuncDecl, s lang.Stmt) StmtEffects {
	te := buildTypeEnv(fn)
	var fp StmtEffects
	reads := map[Region]bool{}
	writes := map[Region]bool{}
	extern := map[string]bool{}
	seenCall := map[string]bool{}

	var walkExpr func(e lang.Expr, asStore bool)
	walkExpr = func(e lang.Expr, asStore bool) {
		switch e := e.(type) {
		case *lang.Arrow:
			regs := chainRegions(r.Prog, te, e)
			for i, reg := range regs {
				if asStore && i == len(regs)-1 {
					writes[reg] = true
				} else {
					reads[reg] = true
				}
			}
			walkExpr(e.X, false)
		case *lang.Call:
			if e.Future {
				fp.Futures = true
			}
			for _, a := range e.Args {
				walkExpr(a, false)
			}
			if e.Name == AllocName {
				fp.Allocs = true
				return
			}
			sum := r.Summary(e.Name)
			if sum == nil {
				extern[e.Name] = true
				return
			}
			if !seenCall[e.Name] {
				seenCall[e.Name] = true
				fp.Calls = append(fp.Calls, e.Name)
			}
			for _, reg := range sum.Reads {
				reads[reg] = true
			}
			for _, reg := range sum.Writes {
				writes[reg] = true
			}
			for _, x := range sum.Extern {
				extern[x] = true
			}
			if sum.Futures {
				fp.Futures = true
			}
			if !sum.Allocs.IsTop() && sum.Allocs.Class == BConst && sum.Allocs.N == 0 {
				// provably allocation-free callee
			} else {
				fp.Allocs = true
			}
		case *lang.Binary:
			walkExpr(e.L, false)
			walkExpr(e.R, false)
		case *lang.Unary:
			walkExpr(e.X, false)
		case *lang.Touch:
			walkExpr(e.E, false)
		}
	}

	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Init != nil {
				walkExpr(s.Init, false)
			}
		case *lang.Assign:
			if a, ok := s.LHS.(*lang.Arrow); ok {
				walkExpr(a, true)
			}
			walkExpr(s.RHS, false)
		case *lang.If:
			walkExpr(s.Cond, false)
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walkExpr(s.Cond, false)
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Cond != nil {
				walkExpr(s.Cond, false)
			}
			walk(s.Body)
			if s.Post != nil {
				walk(s.Post)
			}
		case *lang.Return:
			if s.E != nil {
				walkExpr(s.E, false)
			}
		case *lang.ExprStmt:
			walkExpr(s.E, false)
		}
	}
	walk(s)

	fp.Reads = sortedRegions(reads)
	fp.Writes = sortedRegions(writes)
	fp.Extern = sortedStrings(extern)
	return fp
}

// CalleeClosure returns the names of every defined function reachable
// from the given roots through direct calls, the roots included, sorted.
func CalleeClosure(prog *lang.Program, roots []string) []string {
	seen := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		fn := prog.Func(name)
		if fn == nil {
			return
		}
		seen[name] = true
		for _, callee := range calleeNames(fn) {
			visit(callee)
		}
	}
	for _, root := range roots {
		visit(root)
	}
	return sortedStrings(seen)
}

// ContainsLoop reports whether the statement subtree contains a while or
// for loop.
func ContainsLoop(s lang.Stmt) bool {
	found := false
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		if found || s == nil {
			return
		}
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While, *lang.For:
			found = true
		}
	}
	walk(s)
	return found
}

func sortedRegions(set map[Region]bool) []Region {
	out := make([]Region, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Struct != out[j].Struct {
			return out[i].Struct < out[j].Struct
		}
		return out[i].Field < out[j].Field
	})
	return out
}

func sortedStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
