package effects

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/lang/cfg"
)

// BoundClass orders the precision of a cost bound: a known constant, a
// symbolic expression over numeric inputs, a heap-proportional bound
// (some traversal of a linked structure whose size only the runtime
// knows), or ⊤ — no bound at all.
type BoundClass int

const (
	// BConst is an exact integer bound.
	BConst BoundClass = iota
	// BSym is a symbolic bound over the function's scalar inputs.
	BSym
	// BHeap is proportional to the size of a heap structure ("|tree|").
	BHeap
	// BTop is unbounded: an extern call, a while(1), a non-progressing
	// loop, or mutual recursion.
	BTop
)

// Bound is one static cost bound. The zero value is the constant 0.
type Bound struct {
	Class BoundClass
	N     int64  // BConst only
	Expr  string // BSym and BHeap only
}

// Top is the unbounded cost.
func Top() Bound { return Bound{Class: BTop} }

// Const is an exact bound.
func Const(n int64) Bound { return Bound{Class: BConst, N: n} }

// Sym is a symbolic bound over scalar inputs.
func Sym(expr string) Bound { return Bound{Class: BSym, Expr: expr} }

// Heap is a heap-proportional bound.
func Heap(expr string) Bound { return Bound{Class: BHeap, Expr: expr} }

// IsTop reports an unbounded cost.
func (b Bound) IsTop() bool { return b.Class == BTop }

// String renders the bound; ⊤ for unbounded.
func (b Bound) String() string {
	switch b.Class {
	case BConst:
		return fmt.Sprint(b.N)
	case BTop:
		return "⊤"
	default:
		return b.Expr
	}
}

// maxExpr caps rendered expressions so fixpoints and deep programs cannot
// grow bounds without limit; a squashed bound keeps its class.
const maxExpr = 64

func squash(e string) string {
	if len(e) > maxExpr {
		return e[:maxExpr-3] + "..."
	}
	return e
}

func maxClass(a, b BoundClass) BoundClass {
	if a > b {
		return a
	}
	return b
}

// Add is the bound of doing both.
func (b Bound) Add(o Bound) Bound {
	if b.IsTop() || o.IsTop() {
		return Top()
	}
	if b.Class == BConst && o.Class == BConst {
		return Const(b.N + o.N)
	}
	if b.Class == BConst && b.N == 0 {
		return o
	}
	if o.Class == BConst && o.N == 0 {
		return b
	}
	return Bound{Class: maxClass(b.Class, o.Class), Expr: squash(b.String() + "+" + o.String())}
}

// Mul is the bound of repeating o up to b times.
func (b Bound) Mul(o Bound) Bound {
	if (b.Class == BConst && b.N == 0) || (o.Class == BConst && o.N == 0) {
		return Const(0)
	}
	if b.IsTop() || o.IsTop() {
		return Top()
	}
	if b.Class == BConst && o.Class == BConst {
		return Const(b.N * o.N)
	}
	if b.Class == BConst && b.N == 1 {
		return o
	}
	if o.Class == BConst && o.N == 1 {
		return b
	}
	return Bound{Class: maxClass(b.Class, o.Class), Expr: squash(mulTerm(b) + "*" + mulTerm(o))}
}

func mulTerm(b Bound) string {
	s := b.String()
	if strings.Contains(s, "+") {
		return "(" + s + ")"
	}
	return s
}

// Join is the bound of doing either.
func (b Bound) Join(o Bound) Bound {
	if b.IsTop() || o.IsTop() {
		return Top()
	}
	if b.Class == BConst && o.Class == BConst {
		if o.N > b.N {
			return o
		}
		return b
	}
	if b.String() == o.String() {
		return Bound{Class: maxClass(b.Class, o.Class), N: b.N, Expr: b.Expr}
	}
	if b.Class == BConst && b.N == 0 {
		return o
	}
	if o.Class == BConst && o.N == 0 {
		return b
	}
	return Bound{Class: maxClass(b.Class, o.Class), Expr: squash("max(" + b.String() + "," + o.String() + ")")}
}

// cost pairs the two bounded resources.
type cost struct {
	steps  Bound
	allocs Bound
}

func (c cost) add(o cost) cost {
	return cost{steps: c.steps.Add(o.steps), allocs: c.allocs.Add(o.allocs)}
}

func (c cost) join(o cost) cost {
	return cost{steps: c.steps.Join(o.steps), allocs: c.allocs.Join(o.allocs)}
}

func (c cost) mul(trip Bound) cost {
	return cost{steps: trip.Mul(c.steps), allocs: trip.Mul(c.allocs)}
}

// bounds derives the function's cost bounds from its body, assuming every
// callee outside the SCC already carries final bounds (the SCC driver
// runs callee-first).
func (fa *fnAnalysis) bounds(sum *Summary) {
	if len(sum.Extern) > 0 || sum.Mutual {
		sum.Steps, sum.Allocs = Top(), Top()
		return
	}
	c := fa.stmtCost(fa.fn.Body)
	if sum.Recursive {
		c = c.mul(fa.recursionFactor())
	}
	sum.Steps, sum.Allocs = c.steps, c.allocs
}

// recursionFactor bounds the number of recursive invocations. Structural
// recursion — some pointer parameter is rebound to one of its own fields
// at every recursive call, which is exactly a diagonal entry in the §4.2
// recursion-loop update matrix — descends a finite acyclic structure, so
// the invocation count is heap-proportional. Anything else is unbounded.
func (fa *fnAnalysis) recursionFactor() Bound {
	for _, l := range fa.res.Report.FuncLoops(fa.fn.Name) {
		if l.Kind != core.RecursionLoop {
			continue
		}
		for _, p := range fa.fn.Params {
			if !p.Type.IsPtr() {
				continue
			}
			if _, ok := l.Matrix.Diagonal(p.Name); ok {
				return Heap("|" + p.Type.Struct + "|")
			}
		}
	}
	return Top()
}

// stmtCost bounds one statement subtree, one invocation deep: calls fold
// in callee bounds, loops multiply their body by a trip bound.
func (fa *fnAnalysis) stmtCost(s lang.Stmt) cost {
	one := cost{steps: Const(1), allocs: Const(0)}
	switch s := s.(type) {
	case *lang.Block:
		var c cost
		for _, st := range s.Stmts {
			c = c.add(fa.stmtCost(st))
		}
		return c
	case *lang.VarDecl:
		if s.Init != nil {
			return one.add(fa.exprCost(s.Init))
		}
		return one
	case *lang.Assign:
		return one.add(fa.exprCost(s.RHS))
	case *lang.If:
		c := one.add(fa.exprCost(s.Cond))
		thenC := fa.stmtCost(s.Then)
		var elseC cost
		if s.Else != nil {
			elseC = fa.stmtCost(s.Else)
		}
		return c.add(thenC.join(elseC))
	case *lang.While:
		iter := cost{steps: Const(1)}.add(fa.exprCost(s.Cond)).add(fa.stmtCost(s.Body))
		return iter.mul(fa.tripBound(s.Cond, s.Body, nil))
	case *lang.For:
		var c cost
		if s.Init != nil {
			c = fa.stmtCost(s.Init)
		}
		iter := cost{steps: Const(1)}
		if s.Cond != nil {
			iter = iter.add(fa.exprCost(s.Cond))
		}
		iter = iter.add(fa.stmtCost(s.Body))
		if s.Post != nil {
			iter = iter.add(fa.stmtCost(s.Post))
		}
		return c.add(iter.mul(fa.tripBound(s.Cond, s.Body, s.Post)))
	case *lang.Return:
		if s.E != nil {
			return one.add(fa.exprCost(s.E))
		}
		return one
	case *lang.ExprStmt:
		return one.add(fa.exprCost(s.E))
	}
	return cost{}
}

// exprCost bounds an expression: straight-line operations are free (the
// enclosing statement's unit covers them); calls carry their callee's
// bounds. A call into the current SCC costs one step here — the
// recursion factor scales the whole body afterwards.
func (fa *fnAnalysis) exprCost(e lang.Expr) cost {
	var c cost
	for _, call := range callsInExpr(e) {
		switch {
		case fa.res.Prog.Func(call.Name) == nil && call.Name == AllocName:
			c = c.add(cost{steps: Const(1), allocs: Const(1)})
		case fa.res.Prog.Func(call.Name) == nil:
			return cost{steps: Top(), allocs: Top()}
		case fa.inSCC[call.Name]:
			c = c.add(cost{steps: Const(1)})
		default:
			sum := fa.res.byName[call.Name]
			c = c.add(cost{steps: Const(1).Add(sum.Steps), allocs: sum.Allocs})
		}
	}
	return c
}

// tripBound bounds a loop's iteration count.
//
//   - while(1) and other constant-true conditions: ⊤ (any exit is a
//     return, which leaves the function, not just the loop).
//   - Pointer chase: the condition tests a pointer v and every iteration
//     rebinds v through one of its own fields (v = v->next): the loop
//     walks a finite structure, bound |struct|.
//   - Numeric induction: the condition compares a variable against a
//     limit and the body/post steps it by a nonzero constant toward that
//     limit: bound is the constant range when both endpoints are integer
//     literals, symbolic in the limit otherwise.
//   - Anything else: ⊤.
func (fa *fnAnalysis) tripBound(cond lang.Expr, body lang.Stmt, post lang.Stmt) Bound {
	if cond == nil {
		return Top()
	}
	if v, ok := cfg.ConstCond(cond); ok {
		if !v {
			return Const(0)
		}
		return Top()
	}
	if b, ok := fa.pointerChase(cond, body, post); ok {
		return b
	}
	if b, ok := fa.induction(cond, body, post); ok {
		return b
	}
	return Top()
}

// pointerChase recognizes v-tests-and-advances loops: cond reads pointer
// v and every path through body∪post ends with v = <chain rooted at v>.
func (fa *fnAnalysis) pointerChase(cond lang.Expr, body lang.Stmt, post lang.Stmt) (Bound, bool) {
	for _, u := range cfg.ExprReads(cond) {
		st, isPtr := fa.te[u.Name]
		if !isPtr || st == "" {
			continue
		}
		if fa.advances(u.Name, body) || fa.advances(u.Name, post) {
			return Heap("|" + st + "|"), true
		}
	}
	return Bound{}, false
}

// advances reports whether the subtree contains v = <Arrow chain rooted
// at v> (possibly through a touch), the canonical list-walk step.
func (fa *fnAnalysis) advances(v string, s lang.Stmt) bool {
	if s == nil {
		return false
	}
	found := false
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.Assign:
			id, ok := s.LHS.(*lang.Ident)
			if !ok || id.Name != v {
				return
			}
			rhs := s.RHS
			if t, ok := rhs.(*lang.Touch); ok {
				rhs = t.E
			}
			if a, ok := rhs.(*lang.Arrow); ok {
				if base, ok := chainBase(a); ok && base == v {
					found = true
				}
			}
		case *lang.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			walk(s.Body)
			if s.Post != nil {
				walk(s.Post)
			}
		}
	}
	walk(s)
	return found
}

// induction recognizes counted loops: cond is v < limit (or <=, >, >=)
// and body∪post contains v = v ± k for a constant k moving toward the
// limit.
func (fa *fnAnalysis) induction(cond lang.Expr, body lang.Stmt, post lang.Stmt) (Bound, bool) {
	b, ok := cond.(*lang.Binary)
	if !ok {
		return Bound{}, false
	}
	v, limit, op := "", lang.Expr(nil), b.Op
	if id, ok := b.L.(*lang.Ident); ok {
		v, limit = id.Name, b.R
	} else if id, ok := b.R.(*lang.Ident); ok {
		// limit OP v: flip the comparison.
		v, limit = id.Name, b.L
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	} else {
		return Bound{}, false
	}
	if _, isPtr := fa.te[v]; isPtr {
		return Bound{}, false
	}
	step, ok := stepOf(v, body)
	if !ok {
		step, ok = stepOf(v, post)
	}
	if !ok || step == 0 {
		return Bound{}, false
	}
	up := step > 0
	switch op {
	case "<", "<=":
		if !up {
			return Bound{}, false
		}
	case ">", ">=":
		if up {
			return Bound{}, false
		}
	default:
		return Bound{}, false
	}
	mag := step
	if mag < 0 {
		mag = -mag
	}
	if lim, ok := limit.(*lang.IntLit); ok {
		span := lim.V
		if span < 0 {
			span = -span
		}
		// Without the initial value the literal span over the step is the
		// honest bound only for loops counting from zero toward the
		// limit; otherwise stay symbolic in the limit.
		return Const(span/mag + 1), true
	}
	if id, ok := limit.(*lang.Ident); ok {
		if _, isPtr := fa.te[id.Name]; !isPtr {
			if mag == 1 {
				return Sym(id.Name), true
			}
			return Sym(fmt.Sprintf("%s/%d", id.Name, mag)), true
		}
	}
	return Bound{}, false
}

// stepOf finds v = v + k / v = v - k in a subtree and returns the signed
// constant step.
func stepOf(v string, s lang.Stmt) (int64, bool) {
	if s == nil {
		return 0, false
	}
	var step int64
	found := false
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.Assign:
			id, ok := s.LHS.(*lang.Ident)
			if !ok || id.Name != v {
				return
			}
			b, ok := s.RHS.(*lang.Binary)
			if !ok || (b.Op != "+" && b.Op != "-") {
				return
			}
			base, bok := b.L.(*lang.Ident)
			k, kok := b.R.(*lang.IntLit)
			if !bok || !kok || base.Name != v {
				return
			}
			step = k.V
			if b.Op == "-" {
				step = -step
			}
			found = true
		case *lang.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			walk(s.Body)
			if s.Post != nil {
				walk(s.Post)
			}
		}
	}
	walk(s)
	return step, found
}
