package effects

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/lang/cfg"
)

// BoundClass orders the precision of a cost bound: a known constant, a
// symbolic expression over numeric inputs, a heap-proportional bound
// (some traversal of a linked structure whose size only the runtime
// knows), or ⊤ — no bound at all.
type BoundClass int

const (
	// BConst is an exact integer bound.
	BConst BoundClass = iota
	// BSym is a symbolic bound over the function's scalar inputs.
	BSym
	// BHeap is proportional to the size of a heap structure ("|tree|").
	BHeap
	// BTop is unbounded: an extern call, a while(1), a non-progressing
	// loop, or mutual recursion.
	BTop
)

// Bound is one static cost bound. The zero value is the constant 0.
type Bound struct {
	Class BoundClass
	N     int64  // BConst only
	Expr  string // BSym and BHeap only
}

// Top is the unbounded cost.
func Top() Bound { return Bound{Class: BTop} }

// Const is an exact bound.
func Const(n int64) Bound { return Bound{Class: BConst, N: n} }

// Sym is a symbolic bound over scalar inputs.
func Sym(expr string) Bound { return Bound{Class: BSym, Expr: expr} }

// Heap is a heap-proportional bound.
func Heap(expr string) Bound { return Bound{Class: BHeap, Expr: expr} }

// IsTop reports an unbounded cost.
func (b Bound) IsTop() bool { return b.Class == BTop }

// String renders the bound; ⊤ for unbounded.
func (b Bound) String() string {
	switch b.Class {
	case BConst:
		return fmt.Sprint(b.N)
	case BTop:
		return "⊤"
	default:
		return b.Expr
	}
}

// maxExpr caps rendered expressions so fixpoints and deep programs cannot
// grow bounds without limit; a squashed bound keeps its class.
const maxExpr = 64

func squash(e string) string {
	if len(e) > maxExpr {
		return e[:maxExpr-3] + "..."
	}
	return e
}

func maxClass(a, b BoundClass) BoundClass {
	if a > b {
		return a
	}
	return b
}

// addOvf is overflow-checked int64 addition.
func addOvf(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < a) || (a < 0 && b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// subOvf is overflow-checked int64 subtraction.
func subOvf(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

// mulOvf is overflow-checked int64 multiplication.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == minInt64 || b == minInt64 {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

const minInt64 = -1 << 63

// Add is the bound of doing both. Constant arithmetic that overflows
// int64 saturates to ⊤: a bound too large to represent is no bound.
func (b Bound) Add(o Bound) Bound {
	if b.IsTop() || o.IsTop() {
		return Top()
	}
	if b.Class == BConst && o.Class == BConst {
		if s, ok := addOvf(b.N, o.N); ok {
			return Const(s)
		}
		return Top()
	}
	if b.Class == BConst && b.N == 0 {
		return o
	}
	if o.Class == BConst && o.N == 0 {
		return b
	}
	return Bound{Class: maxClass(b.Class, o.Class), Expr: squash(b.String() + "+" + o.String())}
}

// Mul is the bound of repeating o up to b times.
func (b Bound) Mul(o Bound) Bound {
	if (b.Class == BConst && b.N == 0) || (o.Class == BConst && o.N == 0) {
		return Const(0)
	}
	if b.IsTop() || o.IsTop() {
		return Top()
	}
	if b.Class == BConst && o.Class == BConst {
		if p, ok := mulOvf(b.N, o.N); ok {
			return Const(p)
		}
		return Top()
	}
	if b.Class == BConst && b.N == 1 {
		return o
	}
	if o.Class == BConst && o.N == 1 {
		return b
	}
	return Bound{Class: maxClass(b.Class, o.Class), Expr: squash(mulTerm(b) + "*" + mulTerm(o))}
}

func mulTerm(b Bound) string {
	s := b.String()
	if strings.Contains(s, "+") {
		return "(" + s + ")"
	}
	return s
}

// Join is the bound of doing either.
func (b Bound) Join(o Bound) Bound {
	if b.IsTop() || o.IsTop() {
		return Top()
	}
	if b.Class == BConst && o.Class == BConst {
		if o.N > b.N {
			return o
		}
		return b
	}
	if b.String() == o.String() {
		return Bound{Class: maxClass(b.Class, o.Class), N: b.N, Expr: b.Expr}
	}
	if b.Class == BConst && b.N == 0 {
		return o
	}
	if o.Class == BConst && o.N == 0 {
		return b
	}
	return Bound{Class: maxClass(b.Class, o.Class), Expr: squash("max(" + b.String() + "," + o.String() + ")")}
}

// cost pairs the two bounded resources.
type cost struct {
	steps  Bound
	allocs Bound
}

func (c cost) add(o cost) cost {
	return cost{steps: c.steps.Add(o.steps), allocs: c.allocs.Add(o.allocs)}
}

func (c cost) join(o cost) cost {
	return cost{steps: c.steps.Join(o.steps), allocs: c.allocs.Join(o.allocs)}
}

func (c cost) mul(trip Bound) cost {
	return cost{steps: trip.Mul(c.steps), allocs: trip.Mul(c.allocs)}
}

// bounds derives the function's cost bounds from its body, assuming every
// callee outside the SCC already carries final bounds (the SCC driver
// runs callee-first).
func (fa *fnAnalysis) bounds(sum *Summary) {
	if len(sum.Extern) > 0 || sum.Mutual {
		sum.Steps, sum.Allocs = Top(), Top()
		return
	}
	c := fa.stmtCost(fa.fn.Body, constEnv{})
	if sum.Recursive {
		c = c.mul(fa.recursionFactor())
	}
	sum.Steps, sum.Allocs = c.steps, c.allocs
}

// constEnv maps scalar variables to the integer literal they are known to
// hold at the current program point; absence means unknown. It feeds the
// induction recognizer its initial values — a literal loop limit bounds
// nothing unless the variable's starting point is known too.
type constEnv map[string]int64

func (ce constEnv) clone() constEnv {
	out := make(constEnv, len(ce))
	for k, v := range ce {
		out[k] = v
	}
	return out
}

// afterStmt folds one executed statement into the environment: literal
// assignments record a value, everything else that touches a variable
// forgets it. Branch and loop statements forget every variable they might
// assign — the straight-line walk cannot tell which path ran.
func (ce constEnv) afterStmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.Block:
		for _, st := range s.Stmts {
			ce.afterStmt(st)
		}
	case *lang.VarDecl:
		if lit, ok := s.Init.(*lang.IntLit); ok {
			ce[s.Name] = lit.V
		} else {
			delete(ce, s.Name)
		}
	case *lang.Assign:
		id, ok := s.LHS.(*lang.Ident)
		if !ok {
			return
		}
		if lit, ok := s.RHS.(*lang.IntLit); ok {
			ce[id.Name] = lit.V
		} else {
			delete(ce, id.Name)
		}
	case *lang.If, *lang.While, *lang.For:
		for v := range assignedIn(s) {
			delete(ce, v)
		}
	}
}

// assignedIn collects every variable a subtree may assign or declare
// (the subset has one flat namespace per function).
func assignedIn(s lang.Stmt) map[string]bool {
	out := map[string]bool{}
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			out[s.Name] = true
		case *lang.Assign:
			if id, ok := s.LHS.(*lang.Ident); ok {
				out[id.Name] = true
			}
		case *lang.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			walk(s.Body)
			if s.Post != nil {
				walk(s.Post)
			}
		}
	}
	if s != nil {
		walk(s)
	}
	return out
}

// loopEntryEnv is the literal environment on entry to an arbitrary loop
// iteration: whatever held before the loop, minus everything the loop
// itself may assign.
func loopEntryEnv(ce constEnv, body, post lang.Stmt) constEnv {
	out := ce.clone()
	for v := range assignedIn(body) {
		delete(out, v)
	}
	if post != nil {
		for v := range assignedIn(post) {
			delete(out, v)
		}
	}
	return out
}

// recursionFactor bounds the number of recursive invocations. Structural
// recursion — some pointer parameter is rebound to one of its own fields
// at every recursive call, which is exactly a diagonal entry in the §4.2
// recursion-loop update matrix — descends a finite acyclic structure, so
// the invocation count is heap-proportional. Anything else is unbounded.
func (fa *fnAnalysis) recursionFactor() Bound {
	for _, l := range fa.res.Report.FuncLoops(fa.fn.Name) {
		if l.Kind != core.RecursionLoop {
			continue
		}
		for _, p := range fa.fn.Params {
			if !p.Type.IsPtr() {
				continue
			}
			if _, ok := l.Matrix.Diagonal(p.Name); ok {
				return Heap("|" + p.Type.Struct + "|")
			}
		}
	}
	return Top()
}

// stmtCost bounds one statement subtree, one invocation deep: calls fold
// in callee bounds, loops multiply their body by a trip bound. ce is the
// literal environment at the subtree's entry; blocks thread it forward so
// a loop sees the initial values established just before it.
func (fa *fnAnalysis) stmtCost(s lang.Stmt, ce constEnv) cost {
	one := cost{steps: Const(1), allocs: Const(0)}
	switch s := s.(type) {
	case *lang.Block:
		var c cost
		for _, st := range s.Stmts {
			c = c.add(fa.stmtCost(st, ce))
			ce.afterStmt(st)
		}
		return c
	case *lang.VarDecl:
		if s.Init != nil {
			return one.add(fa.exprCost(s.Init))
		}
		return one
	case *lang.Assign:
		return one.add(fa.exprCost(s.RHS))
	case *lang.If:
		c := one.add(fa.exprCost(s.Cond))
		thenC := fa.stmtCost(s.Then, ce.clone())
		var elseC cost
		if s.Else != nil {
			elseC = fa.stmtCost(s.Else, ce.clone())
		}
		return c.add(thenC.join(elseC))
	case *lang.While:
		trip := fa.tripBound(s.Cond, s.Body, nil, ce)
		body := loopEntryEnv(ce, s.Body, nil)
		iter := cost{steps: Const(1)}.add(fa.exprCost(s.Cond)).add(fa.stmtCost(s.Body, body))
		return iter.mul(trip)
	case *lang.For:
		var c cost
		if s.Init != nil {
			c = fa.stmtCost(s.Init, ce)
			ce.afterStmt(s.Init)
		}
		trip := fa.tripBound(s.Cond, s.Body, s.Post, ce)
		body := loopEntryEnv(ce, s.Body, s.Post)
		iter := cost{steps: Const(1)}
		if s.Cond != nil {
			iter = iter.add(fa.exprCost(s.Cond))
		}
		iter = iter.add(fa.stmtCost(s.Body, body))
		if s.Post != nil {
			iter = iter.add(fa.stmtCost(s.Post, body))
		}
		return c.add(iter.mul(trip))
	case *lang.Return:
		if s.E != nil {
			return one.add(fa.exprCost(s.E))
		}
		return one
	case *lang.ExprStmt:
		return one.add(fa.exprCost(s.E))
	}
	return cost{}
}

// exprCost bounds an expression: straight-line operations are free (the
// enclosing statement's unit covers them); calls carry their callee's
// bounds. A call into the current SCC costs one step here — the
// recursion factor scales the whole body afterwards.
func (fa *fnAnalysis) exprCost(e lang.Expr) cost {
	var c cost
	for _, call := range callsInExpr(e) {
		switch {
		case fa.res.Prog.Func(call.Name) == nil && call.Name == AllocName:
			c = c.add(cost{steps: Const(1), allocs: Const(1)})
		case fa.res.Prog.Func(call.Name) == nil:
			return cost{steps: Top(), allocs: Top()}
		case fa.inSCC[call.Name]:
			c = c.add(cost{steps: Const(1)})
		default:
			sum := fa.res.byName[call.Name]
			c = c.add(cost{steps: Const(1).Add(sum.Steps), allocs: sum.Allocs})
		}
	}
	return c
}

// tripBound bounds a loop's iteration count.
//
//   - while(1) and other constant-true conditions: ⊤ (any exit is a
//     return, which leaves the function, not just the loop).
//   - Pointer chase: the condition tests a pointer v and EVERY path
//     through one iteration rebinds v through one of its own fields
//     (v = v->next): the loop walks a finite structure, bound |struct|.
//   - Numeric induction: the condition compares a variable against a
//     limit, every path through the body/post moves it by a nonzero net
//     constant toward that limit, and the variable's initial value is a
//     known literal: bound is the constant span over the guaranteed step
//     when the limit is a literal too, symbolic in the limit otherwise.
//   - Anything else: ⊤. Progress on merely some path proves nothing — a
//     conditionally advancing loop can spin forever.
func (fa *fnAnalysis) tripBound(cond lang.Expr, body lang.Stmt, post lang.Stmt, ce constEnv) Bound {
	if cond == nil {
		return Top()
	}
	if v, ok := cfg.ConstCond(cond); ok {
		if !v {
			return Const(0)
		}
		return Top()
	}
	if b, ok := fa.pointerChase(cond, body, post); ok {
		return b
	}
	if b, ok := fa.induction(cond, body, post, ce); ok {
		return b
	}
	return Top()
}

// pointerChase recognizes v-tests-and-advances loops: cond reads pointer
// v, every path through body∪post advances v along its own chain, and no
// path rebinds v to anything else.
func (fa *fnAnalysis) pointerChase(cond lang.Expr, body lang.Stmt, post lang.Stmt) (Bound, bool) {
	for _, u := range cfg.ExprReads(cond) {
		st, isPtr := fa.te[u.Name]
		if !isPtr || st == "" {
			continue
		}
		b, p := advanceOf(u.Name, body), advanceOf(u.Name, post)
		if b == advBroken || p == advBroken {
			continue
		}
		if b == advAlways || p == advAlways {
			return Heap("|" + st + "|"), true
		}
	}
	return Bound{}, false
}

// advResult classifies what a subtree does to a chased pointer v.
type advResult int

const (
	// advNone: no path is guaranteed to advance v, but none rebinds it
	// off its own chain either (includes "v untouched").
	advNone advResult = iota
	// advAlways: every path through the subtree executes
	// v = <Arrow chain rooted at v> (possibly through a touch).
	advAlways
	// advBroken: some path may rebind v to something that is not a chain
	// rooted at v — no progress argument survives.
	advBroken
)

// advanceOf computes the advance classification of v over a subtree. The
// canonical list-walk step v = v->next is an advance; assignments under a
// branch only count when both arms advance; assignments inside nested
// loops never count as guaranteed (the loop may run zero times) but are
// harmless if they, too, only advance v along its own chain.
func advanceOf(v string, s lang.Stmt) advResult {
	if s == nil {
		return advNone
	}
	switch s := s.(type) {
	case *lang.Block:
		r := advNone
		for _, st := range s.Stmts {
			switch advanceOf(v, st) {
			case advBroken:
				return advBroken
			case advAlways:
				r = advAlways
			}
		}
		return r
	case *lang.VarDecl:
		if s.Name == v {
			return advBroken
		}
		return advNone
	case *lang.Assign:
		id, ok := s.LHS.(*lang.Ident)
		if !ok || id.Name != v {
			return advNone
		}
		rhs := s.RHS
		if t, ok := rhs.(*lang.Touch); ok {
			rhs = t.E
		}
		if a, ok := rhs.(*lang.Arrow); ok {
			if base, ok := chainBase(a); ok && base == v {
				return advAlways
			}
		}
		return advBroken
	case *lang.If:
		t := advanceOf(v, s.Then)
		e := advNone
		if s.Else != nil {
			e = advanceOf(v, s.Else)
		}
		if t == advBroken || e == advBroken {
			return advBroken
		}
		if t == advAlways && e == advAlways {
			return advAlways
		}
		return advNone
	case *lang.While:
		if advanceOf(v, s.Body) == advBroken {
			return advBroken
		}
		return advNone
	case *lang.For:
		for _, p := range []lang.Stmt{s.Init, s.Body, s.Post} {
			if p != nil && advanceOf(v, p) == advBroken {
				return advBroken
			}
		}
		return advNone
	}
	return advNone
}

// induction recognizes counted loops: cond is v < limit (or <=, >, >=),
// every path through body∪post changes v by a net constant moving toward
// the limit, and ce knows v's value at loop entry.
func (fa *fnAnalysis) induction(cond lang.Expr, body lang.Stmt, post lang.Stmt, ce constEnv) (Bound, bool) {
	b, ok := cond.(*lang.Binary)
	if !ok {
		return Bound{}, false
	}
	v, limit, op := "", lang.Expr(nil), b.Op
	if id, ok := b.L.(*lang.Ident); ok {
		v, limit = id.Name, b.R
	} else if id, ok := b.R.(*lang.Ident); ok {
		// limit OP v: flip the comparison.
		v, limit = id.Name, b.L
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	} else {
		return Bound{}, false
	}
	if _, isPtr := fa.te[v]; isPtr {
		return Bound{}, false
	}
	bl, bh, ok := stepInterval(v, body)
	if !ok {
		return Bound{}, false
	}
	pl, ph, ok := stepInterval(v, post)
	if !ok {
		return Bound{}, false
	}
	lo, okLo := addOvf(bl, pl)
	hi, okHi := addOvf(bh, ph)
	if !okLo || !okHi {
		return Bound{}, false
	}
	// Guaranteed progress per iteration is the interval endpoint nearest
	// the limit's far side; every path must move strictly toward it.
	var mag int64
	switch op {
	case "<", "<=":
		if lo <= 0 {
			return Bound{}, false
		}
		mag = lo
	case ">", ">=":
		if hi >= 0 {
			return Bound{}, false
		}
		mag = -hi
	default:
		return Bound{}, false
	}
	up := op == "<" || op == "<="
	init, known := ce[v]
	if !known {
		// The limit alone bounds nothing: a loop counting up to 10 from
		// an unknown start can run any number of iterations.
		return Bound{}, false
	}
	if lim, ok := limit.(*lang.IntLit); ok {
		var span int64
		var sok bool
		if up {
			span, sok = subOvf(lim.V, init)
		} else {
			span, sok = subOvf(init, lim.V)
		}
		if !sok {
			return Bound{}, false
		}
		if span < 0 {
			return Const(0), true
		}
		return Const(span/mag + 1), true
	}
	if id, ok := limit.(*lang.Ident); ok {
		if _, isPtr := fa.te[id.Name]; isPtr {
			return Bound{}, false
		}
		var span string
		switch {
		case up && init == 0:
			span = id.Name
		case up && init > 0:
			span = fmt.Sprintf("(%s-%d)", id.Name, init)
		case up:
			span = fmt.Sprintf("(%s+%d)", id.Name, -init)
		default:
			span = fmt.Sprintf("(%d-%s)", init, id.Name)
		}
		if mag != 1 {
			span += fmt.Sprintf("/%d", mag)
		}
		// Strict comparison with unit step is exact; everything else pays
		// one iteration for the flooring / the inclusive endpoint.
		if mag != 1 || op == "<=" || op == ">=" {
			span += "+1"
		}
		return Sym(span), true
	}
	return Bound{}, false
}

// stepInterval bounds the net change one execution of the subtree applies
// to v as a [lo, hi] interval. ok is false when the subtree may assign v
// in any form other than v = v ± <literal> — or steps it inside a nested
// loop, whose iteration count is unknown here — since no per-iteration
// progress guarantee survives such an assignment.
func stepInterval(v string, s lang.Stmt) (lo, hi int64, ok bool) {
	if s == nil {
		return 0, 0, true
	}
	switch s := s.(type) {
	case *lang.Block:
		for _, st := range s.Stmts {
			l, h, o := stepInterval(v, st)
			if !o {
				return 0, 0, false
			}
			if lo, o = addOvf(lo, l); !o {
				return 0, 0, false
			}
			if hi, o = addOvf(hi, h); !o {
				return 0, 0, false
			}
		}
		return lo, hi, true
	case *lang.VarDecl:
		if s.Name == v {
			return 0, 0, false
		}
		return 0, 0, true
	case *lang.Assign:
		id, isIdent := s.LHS.(*lang.Ident)
		if !isIdent || id.Name != v {
			return 0, 0, true
		}
		b, isBin := s.RHS.(*lang.Binary)
		if !isBin || (b.Op != "+" && b.Op != "-") {
			return 0, 0, false
		}
		base, bok := b.L.(*lang.Ident)
		k, kok := b.R.(*lang.IntLit)
		if !bok || !kok || base.Name != v {
			return 0, 0, false
		}
		step := k.V
		if b.Op == "-" {
			step = -step
		}
		return step, step, true
	case *lang.If:
		tl, th, o := stepInterval(v, s.Then)
		if !o {
			return 0, 0, false
		}
		el, eh := int64(0), int64(0)
		if s.Else != nil {
			if el, eh, o = stepInterval(v, s.Else); !o {
				return 0, 0, false
			}
		}
		return min64(tl, el), max64(th, eh), true
	case *lang.While, *lang.For:
		if assignedIn(s)[v] {
			return 0, 0, false
		}
		return 0, 0, true
	}
	return 0, 0, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
