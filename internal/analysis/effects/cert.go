package effects

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Certificate is a program-level cacheability certificate: a static proof
// obligation that the program's semantic memory-access behaviour — the
// trace.AccessDigest projection of its execution — is independent of the
// coherence scheme, plus a stable digest of the summaries it rests on.
//
// The rule is deliberately conservative. A program is certified when it
// calls nothing extern (unknown effects void everything) and either
//
//   - every dereference site migrates: no software cache is ever
//     consulted, so no scheme-specific protocol behaviour can leak into
//     the semantic event stream; or
//   - every site caches, no futurecall runs, and every function is pure:
//     a sequential read-only execution makes the same accesses in the
//     same order under any write-coherence scheme.
//
// Everything else carries a machine-readable refusal reason.
type Certificate struct {
	Cacheable   bool     `json:"cacheable"`
	MigrateOnly bool     `json:"migrate_only"`
	CacheOnly   bool     `json:"cache_only"`
	Parallel    bool     `json:"parallel"`
	Reasons     []string `json:"reasons,omitempty"`
	// Digest is the FNV-1a hash, in %016x, of the canonical summary and
	// bound lines of every function plus the site-mechanism shape —
	// byte-stable across runs, changed by any effect the certificate
	// depends on.
	Digest string `json:"digest"`
}

// Certificate derives the program's cacheability certificate from the
// computed summaries and the heuristic's site choices.
func (r *Result) Certificate() Certificate {
	c := Certificate{MigrateOnly: true, CacheOnly: true}
	var reasons []string

	for _, s := range r.Summaries {
		if s.Futures {
			c.Parallel = true
		}
		for _, x := range s.Extern {
			reasons = appendUnique(reasons, "extern-call:"+x)
		}
	}
	for _, site := range r.Report.DerefSites() {
		if site.Mech == core.ChooseCache {
			c.MigrateOnly = false
		} else {
			c.CacheOnly = false
		}
	}

	switch {
	case c.MigrateOnly:
		// No cache traffic at all; certified unless extern.
	case c.CacheOnly:
		if c.Parallel {
			reasons = appendUnique(reasons, "parallel-caching")
		}
		for _, s := range r.Summaries {
			for _, w := range s.Writes {
				reasons = appendUnique(reasons, "cached-write:"+w.String())
			}
		}
	default:
		reasons = appendUnique(reasons, "mixed-mechanisms")
	}

	c.Reasons = reasons
	c.Cacheable = len(reasons) == 0
	c.Digest = r.certDigest(c)
	return c
}

// certDigest hashes the canonical text of everything the certificate
// depends on.
func (r *Result) certDigest(c Certificate) string {
	var sb strings.Builder
	for _, s := range r.Summaries {
		fmt.Fprintf(&sb, "%s(%s): %s %s\n",
			s.Name, strings.Join(s.Params, ","), s.EffectsLine(), s.BoundsLine())
	}
	fmt.Fprintf(&sb, "sites: migrate_only=%v cache_only=%v parallel=%v\n",
		c.MigrateOnly, c.CacheOnly, c.Parallel)
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, b := range []byte(sb.String()) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return fmt.Sprintf("%016x", h)
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
