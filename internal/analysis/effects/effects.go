// Package effects is an interprocedural, bottom-up summary analysis over
// mini-C. Per function it computes a side-effect/alias summary — the heap
// regions (struct fields) read and written, the parameters whose referents
// may be mutated or stored away, and whether the function is observably
// pure — together with static cost bounds: a symbolic bound on the steps
// the function can execute and on the allocations it can perform, with ⊤
// when the analysis cannot bound them.
//
// Three clients consume the summaries:
//
//   - Cacheability certificates (cert.go): a program whose summaries prove
//     its access behaviour independent of the coherence scheme gets a
//     stable certificate digest — the soundness foundation for
//     phase-granular memoization. oldenvet cross-validates certificates
//     against runtime trace digests (trace.AccessDigest) on the pinned
//     kernels.
//   - Admission budgets (internal/server): the cost bounds are checked
//     against per-request limits before any simulation runs; ⊤-bounded
//     programs are rejected up front.
//   - The §4.2 heuristic differential (diff.go): alias-aware traversal
//     classification, reported wherever it would change the paper
//     heuristic's migrate/cache decision.
//
// The analysis is hosted on the existing infrastructure: function bodies
// become cfg.Build graphs, the per-variable alias facts (aval.go) flow
// through the generic dataflow.Solve worklist solver under a
// dataflow.MapLattice, and functions are processed bottom-up over the
// call-graph SCCs so every call site folds in its callee's finished
// summary. Calls to the undefined function "alloc" are allocation sites;
// calls to any other undefined function are extern — unknown effects, so
// summaries go conservative and certificates are refused.
package effects

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
)

// AllocName is the undefined-function name treated as an allocation
// primitive rather than an extern call.
const AllocName = "alloc"

// Region is one heap region at field granularity: a struct field. The
// subset's type system makes this sound as an alias partition — pointers
// to different structs never alias, and all heap accesses are field
// accesses.
type Region struct {
	Struct string
	Field  string
}

// String renders the region as struct.field.
func (r Region) String() string { return r.Struct + "." + r.Field }

// storeRec is one heap store recorded during summary construction, with
// the alias value of its base at the store point — the differential and
// certificate passes replay these without re-running the dataflow.
type storeRec struct {
	base   string
	baseAV aval
	region Region
	pos    lang.Pos
}

// Summary is one function's interprocedural effect summary.
type Summary struct {
	Name   string
	Pos    lang.Pos
	Params []string

	// Reads and Writes are the heap regions the function (or anything it
	// calls) may read and write, sorted. Initializing stores to provably
	// fresh allocations are not Writes: an object that has not escaped
	// is invisible to the caller.
	Reads  []Region
	Writes []Region
	// Escapes lists the parameters whose referents may be written or
	// stored into the heap (directly or by a callee), in parameter order.
	Escapes []string
	// Extern lists the undefined functions called (transitively),
	// excluding the alloc primitive, sorted. A non-empty Extern poisons
	// purity, bounds and certificates.
	Extern []string
	// Pure means no heap writes, no escaping parameters and no extern
	// calls. Allocation and initialization of fresh objects do not break
	// purity: they are invisible to the caller's heap.
	Pure bool
	// Futures means the function (or a callee) issues a futurecall.
	Futures bool
	// Recursive marks self-recursion; Mutual marks membership in a
	// call-graph cycle of more than one function.
	Recursive bool
	Mutual    bool

	// Steps bounds the statements and calls one invocation can execute;
	// Allocs bounds its allocations. Both are ⊤ when unbounded.
	Steps  Bound
	Allocs Bound

	ret    aval       // what the return value may alias
	stores []storeRec // heap stores with base alias values, source order
}

// EffectsLine renders the effect half of the summary canonically (the
// bounds are rendered separately).
func (s *Summary) EffectsLine() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "reads=%s writes=%s escapes={%s}",
		regionSet(s.Reads), regionSet(s.Writes), strings.Join(s.Escapes, ","))
	fmt.Fprintf(&sb, " pure=%v", s.Pure)
	if s.Futures {
		sb.WriteString(" parallel")
	}
	if s.Recursive {
		sb.WriteString(" recursive")
	}
	if s.Mutual {
		sb.WriteString(" mutual")
	}
	if len(s.Extern) > 0 {
		fmt.Fprintf(&sb, " extern={%s}", strings.Join(s.Extern, ","))
	}
	return sb.String()
}

// BoundsLine renders the cost half of the summary canonically.
func (s *Summary) BoundsLine() string {
	return fmt.Sprintf("steps<=%s allocs<=%s", s.Steps, s.Allocs)
}

func regionSet(rs []Region) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Result is the whole-program analysis result.
type Result struct {
	Prog   *lang.Program
	Params core.Params
	// Report is the §4.2/§4.3 heuristic's own report on the program; the
	// differential and certificates are computed against it.
	Report *core.Report
	// Summaries holds one summary per function, in source order
	// (declaration position, then name — the deterministic-ordering
	// contract shared with the lint diagnostics).
	Summaries []*Summary
	// Diffs lists the sites where alias-aware classification would change
	// the heuristic's mechanism decision, sorted by position.
	Diffs []Diff

	byName map[string]*Summary
}

// Summary returns a function's summary by name, or nil.
func (r *Result) Summary(name string) *Summary { return r.byName[name] }

// Analyze computes the effect summaries, cost bounds and heuristic
// differential of a parsed program.
func Analyze(prog *lang.Program, params core.Params) *Result {
	res := &Result{
		Prog:   prog,
		Params: params,
		Report: core.Analyze(prog, params),
		byName: map[string]*Summary{},
	}
	for _, comp := range sccs(prog) {
		res.solveSCC(comp)
	}
	for _, fn := range prog.Funcs {
		res.Summaries = append(res.Summaries, res.byName[fn.Name])
	}
	sort.SliceStable(res.Summaries, func(i, j int) bool {
		a, b := res.Summaries[i], res.Summaries[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Name < b.Name
	})
	res.computeDiffs()
	return res
}

// AnalyzeSource parses and analyzes a mini-C program.
func AnalyzeSource(src string, params core.Params) (*Result, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(prog, params), nil
}

// solveSCC iterates the effect summaries of one call-graph component to a
// fixpoint (region sets, escape masks and return aliases only grow, so
// termination is immediate from the finite domains), then derives the
// cost bounds in a single final pass per function.
func (r *Result) solveSCC(comp []*lang.FuncDecl) {
	inSCC := map[string]bool{}
	for _, fn := range comp {
		inSCC[fn.Name] = true
		r.byName[fn.Name] = &Summary{
			Name:   fn.Name,
			Pos:    fn.Pos,
			Params: paramNames(fn),
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range comp {
			fa := newFnAnalysis(r, fn, inSCC)
			next := fa.summarize()
			if !equalEffects(r.byName[fn.Name], next) {
				changed = true
			}
			r.byName[fn.Name] = next
		}
	}
	for _, fn := range comp {
		fa := newFnAnalysis(r, fn, inSCC)
		fa.bounds(r.byName[fn.Name])
	}
}

func paramNames(fn *lang.FuncDecl) []string {
	out := make([]string, len(fn.Params))
	for i, p := range fn.Params {
		out[i] = p.Name
	}
	return out
}

// equalEffects compares the fixpoint-relevant parts of two summaries,
// including the recorded stores' contents: downstream passes read
// storeRec.baseAV, so a store whose base alias value is still moving must
// keep the fixpoint loop running.
func equalEffects(a, b *Summary) bool {
	if a.EffectsLine() != b.EffectsLine() || a.ret != b.ret ||
		len(a.stores) != len(b.stores) {
		return false
	}
	for i := range a.stores {
		if a.stores[i] != b.stores[i] {
			return false
		}
	}
	return true
}

// sccs returns the strongly connected components of the defined-function
// call graph in bottom-up (callee-first) order — Tarjan's algorithm emits
// components in reverse topological order, which is exactly the order a
// bottom-up summary analysis wants.
func sccs(prog *lang.Program) [][]*lang.FuncDecl {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []*lang.FuncDecl
	var out [][]*lang.FuncDecl
	next := 0

	var strongconnect func(fn *lang.FuncDecl)
	strongconnect = func(fn *lang.FuncDecl) {
		index[fn.Name] = next
		low[fn.Name] = next
		next++
		stack = append(stack, fn)
		onStack[fn.Name] = true
		for _, callee := range calleeNames(fn) {
			g := prog.Func(callee)
			if g == nil {
				continue
			}
			if _, seen := index[g.Name]; !seen {
				strongconnect(g)
				if low[g.Name] < low[fn.Name] {
					low[fn.Name] = low[g.Name]
				}
			} else if onStack[g.Name] && index[g.Name] < low[fn.Name] {
				low[fn.Name] = index[g.Name]
			}
		}
		if low[fn.Name] == index[fn.Name] {
			var comp []*lang.FuncDecl
			for {
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[f.Name] = false
				comp = append(comp, f)
				if f == fn {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, fn := range prog.Funcs {
		if _, seen := index[fn.Name]; !seen {
			strongconnect(fn)
		}
	}
	return out
}

// calleeNames lists the function names fn calls, in source order with
// duplicates.
func calleeNames(fn *lang.FuncDecl) []string {
	var out []string
	for _, c := range callsIn(fn.Body) {
		out = append(out, c.Name)
	}
	return out
}

// callsIn collects every call expression in a statement subtree.
func callsIn(s lang.Stmt) []*lang.Call {
	var out []*lang.Call
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Call:
			out = append(out, e)
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *lang.Arrow:
			walkExpr(e.X)
		case *lang.Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *lang.Unary:
			walkExpr(e.X)
		case *lang.Touch:
			walkExpr(e.E)
		}
	}
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Init != nil {
				walkExpr(s.Init)
			}
		case *lang.Assign:
			walkExpr(s.LHS)
			walkExpr(s.RHS)
		case *lang.If:
			walkExpr(s.Cond)
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walkExpr(s.Cond)
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Cond != nil {
				walkExpr(s.Cond)
			}
			walk(s.Body)
			if s.Post != nil {
				walk(s.Post)
			}
		case *lang.Return:
			if s.E != nil {
				walkExpr(s.E)
			}
		case *lang.ExprStmt:
			walkExpr(s.E)
		}
	}
	if s != nil {
		walk(s)
	}
	return out
}

// typeEnv maps pointer variables to their pointed-to struct (the subset
// has a flat per-function namespace).
type typeEnv map[string]string

func buildTypeEnv(fn *lang.FuncDecl) typeEnv {
	te := typeEnv{}
	for _, p := range fn.Params {
		if p.Type.IsPtr() {
			te[p.Name] = p.Type.Struct
		}
	}
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Type.IsPtr() {
				te[s.Name] = s.Type.Struct
			}
		case *lang.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Post != nil {
				walk(s.Post)
			}
			walk(s.Body)
		}
	}
	walk(fn.Body)
	return te
}

// chainRegions resolves the regions an Arrow chain touches, innermost
// first: for p->a->b with p pointing to S, the regions are S.a and T.b
// where T is the struct S.a points to. Resolution stops at an unknown
// link (undeclared struct or field).
func chainRegions(prog *lang.Program, te typeEnv, chain *lang.Arrow) []Region {
	var arrows []*lang.Arrow
	e := lang.Expr(chain)
	for {
		a, ok := e.(*lang.Arrow)
		if !ok {
			break
		}
		arrows = append(arrows, a)
		e = a.X
	}
	id, ok := e.(*lang.Ident)
	if !ok {
		return nil
	}
	st := te[id.Name]
	var out []Region
	for i := len(arrows) - 1; i >= 0; i-- {
		if st == "" {
			break
		}
		a := arrows[i]
		out = append(out, Region{Struct: st, Field: a.Field})
		st = ""
		if sd := prog.Struct(out[len(out)-1].Struct); sd != nil {
			if fd := sd.Field(a.Field); fd != nil && fd.Type.IsPtr() {
				st = fd.Type.Struct
			}
		}
	}
	return out
}

// chainBase returns the base identifier of an Arrow chain, if any.
func chainBase(e lang.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *lang.Arrow:
			e = x.X
		case *lang.Ident:
			return x.Name, true
		default:
			return "", false
		}
	}
}
