package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// siteNameRE is the "<bench>.<var>" convention: at least two dotted
// identifier segments, e.g. "treeadd.child" or "fig2.walk".
var siteNameRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)+$`)

// loadStoreMethods are the typed dereference entry points on rt.Thread;
// each takes the *rt.Site as its first argument.
var loadStoreMethods = map[string]bool{
	"LoadWord": true, "StoreWord": true,
	"LoadPtr": true, "StorePtr": true,
	"LoadInt": true, "StoreInt": true,
	"LoadFloat": true, "StoreFloat": true,
}

// checkSiteHygiene enforces the site-naming contract: every rt.Site
// literal carries a nonempty constant Name following the dotted
// "<bench>.<var>" convention, names are unique within a package (two
// sites sharing a name would merge their statistics), and typed
// load/store calls never pass a nil site.
func checkSiteHygiene(p *Package) []Finding {
	var fs []Finding
	first := map[string]token.Position{}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				tv, ok := p.Info.Types[n]
				if !ok || !p.namedFrom(tv.Type, "internal/rt", "Site") {
					return true
				}
				fs = append(fs, p.siteLiteral(n, first)...)
			case *ast.CallExpr:
				fs = append(fs, p.siteArgs(n)...)
			}
			return true
		})
	}
	return fs
}

// siteLiteral validates one rt.Site composite literal.
func (p *Package) siteLiteral(lit *ast.CompositeLit, first map[string]token.Position) []Finding {
	var nameExpr ast.Expr
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if k, ok := kv.Key.(*ast.Ident); ok && k.Name == "Name" {
				nameExpr = kv.Value
			}
		}
	}
	if nameExpr == nil && len(lit.Elts) > 0 {
		if _, ok := lit.Elts[0].(*ast.KeyValueExpr); !ok {
			nameExpr = lit.Elts[0]
		}
	}
	if nameExpr == nil {
		return []Finding{p.finding("site-hygiene", lit.Pos(),
			"rt.Site literal has no Name; every dereference site must be named")}
	}
	tv, ok := p.Info.Types[nameExpr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil // dynamically built name; nothing to check statically
	}
	name := constant.StringVal(tv.Value)
	if name == "" {
		return []Finding{p.finding("site-hygiene", nameExpr.Pos(),
			"rt.Site literal has an empty Name")}
	}
	if !siteNameRE.MatchString(name) {
		return []Finding{p.finding("site-hygiene", nameExpr.Pos(),
			"site name %q does not follow the dotted <bench>.<var> convention", name)}
	}
	if prev, ok := first[name]; ok {
		return []Finding{p.finding("site-hygiene", nameExpr.Pos(),
			"duplicate site name %q in this package (first used at %s:%d); duplicate names merge per-site statistics",
			name, prev.Filename, prev.Line)}
	}
	first[name] = p.Fset.Position(nameExpr.Pos())
	return nil
}

// siteArgs flags nil site arguments at typed load/store calls.
func (p *Package) siteArgs(call *ast.CallExpr) []Finding {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !loadStoreMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return nil
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !p.namedFrom(sig.Recv().Type(), "internal/rt", "Thread") {
		return nil
	}
	if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.IsNil() {
		return []Finding{p.finding("site-hygiene", call.Args[0].Pos(),
			"nil site passed to %s; dereferences must be attributed to a named rt.Site", sel.Sel.Name)}
	}
	return nil
}
