package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// gaddrLayers are the module-relative packages allowed to look inside
// the gaddr.GP ⟨processor, offset⟩ encoding.  Everyone else treats a
// global pointer as an opaque capability and goes through the typed
// rt.Thread API (or rt.FieldPtr / Runtime.Raw* for untimed setup).
// internal/trace qualifies because its events stamp ⟨processor, page,
// line⟩ coordinates and its exporters render them for humans.
var gaddrLayers = map[string]bool{
	"internal/gaddr":     true,
	"internal/mem":       true,
	"internal/cache":     true,
	"internal/rt":        true,
	"internal/coherence": true,
	"internal/machine":   true,
	"internal/trace":     true,
}

// gaddrUnpackFuncs and gaddrUnpackMethods are the package-level
// functions and GP/PageID methods that expose the encoding.  IsNil and
// String are deliberately absent: they reveal nothing a benchmark could
// misuse.
var gaddrUnpackFuncs = map[string]bool{"Pack": true, "PageOf": true, "LineOf": true}
var gaddrUnpackMethods = map[string]bool{"Proc": true, "Off": true, "Add": true, "Base": true}

// checkHeapEscape flags code outside the runtime layers that unpacks,
// forges, or does arithmetic on global heap pointers.
func checkHeapEscape(p *Package) []Finding {
	rel := strings.TrimPrefix(p.unitPath(), p.mod()+"/")
	if gaddrLayers[rel] {
		return nil
	}
	var fs []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fs = append(fs, p.escapeCall(n)...)
			case *ast.BinaryExpr:
				fs = append(fs, p.escapeBinary(n)...)
			}
			return true
		})
	}
	return fs
}

func (p *Package) isGaddrValue(t types.Type) bool {
	return p.namedFrom(t, "internal/gaddr", "GP") || p.namedFrom(t, "internal/gaddr", "PageID")
}

func (p *Package) escapeCall(call *ast.CallExpr) []Finding {
	// Conversions to or from the packed representation.
	if tv, ok := p.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := types.Type(nil)
		if atv, ok := p.Info.Types[call.Args[0]]; ok {
			src = atv.Type
		}
		switch {
		case p.isGaddrValue(dst) && src != nil && !p.isGaddrValue(src):
			return []Finding{p.finding("heap-escape", call.Pos(),
				"conversion forges a global pointer from a raw integer; only the runtime layers may pack gaddr values")}
		case src != nil && p.isGaddrValue(src) && !p.isGaddrValue(dst):
			return []Finding{p.finding("heap-escape", call.Pos(),
				"conversion unpacks a global pointer to a raw integer; only the runtime layers may inspect the encoding")}
		}
		return nil
	}
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if p.isGaddrValue(sig.Recv().Type()) && gaddrUnpackMethods[fn.Name()] {
			return []Finding{p.finding("heap-escape", call.Pos(),
				"call to gaddr method %s unpacks the ⟨processor, offset⟩ encoding outside the runtime layers", fn.Name())}
		}
		return nil
	}
	if fn.Pkg().Path() == p.mod()+"/internal/gaddr" && gaddrUnpackFuncs[fn.Name()] {
		return []Finding{p.finding("heap-escape", call.Pos(),
			"call to gaddr.%s outside the runtime layers; benchmarks must treat global pointers as opaque", fn.Name())}
	}
	return nil
}

func (p *Package) escapeBinary(b *ast.BinaryExpr) []Finding {
	switch b.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.AND_NOT, token.SHL, token.SHR:
	default:
		return nil // comparisons and logic are fine
	}
	for _, e := range []ast.Expr{b.X, b.Y} {
		if tv, ok := p.Info.Types[e]; ok && p.isGaddrValue(tv.Type) {
			return []Finding{p.finding("heap-escape", b.Pos(),
				"arithmetic on a global pointer outside the runtime layers; use rt.FieldPtr for interior pointers")}
		}
	}
	return nil
}
