package analysis

import (
	"testing"

	"repro/internal/analysis/phases"
	"repro/internal/bench"
)

// The ten pinned kernels, by what their phase plan must prove: every
// kernel-timed benchmark exposes a reusable scheme-invariant build
// prefix (even when extern calls refuse the compute chain), and the
// bounded migrate-only kernels certify their whole chain.
func TestRegisteredKernelPhasePlans(t *testing.T) {
	type want struct {
		refused    bool
		buildChain bool
		certified  bool
	}
	cases := map[string]want{
		"treeadd": {buildChain: true, certified: true},
		"mst":     {buildChain: true, certified: true},
		"bisort":  {buildChain: true},
		"em3d":    {buildChain: true},
		// The extern calls (conquer, incircle, adj) poison the step
		// bounds, so the compute chains are refused — but the harness
		// build phase survives and stays reusable.
		"tsp":       {refused: true, buildChain: true},
		"voronoi":   {refused: true, buildChain: true},
		"perimeter": {refused: true, buildChain: true},
		// Whole-program benchmarks have no harness build phase; power is
		// migrate-only and bounded, so its whole chain certifies.
		"power":     {certified: true},
		"health":    {},
		"barneshut": {},
	}
	for name, w := range cases {
		t.Run(name, func(t *testing.T) {
			info, ok := bench.Get(name)
			if !ok {
				t.Fatalf("benchmark %q not registered", name)
			}
			if info.Source == "" {
				t.Fatalf("benchmark %q has no kernel source wired", name)
			}
			plan, err := phases.ComputeSource(info.Source, phases.Options{IncludeBuild: info.Phased != nil})
			if err != nil {
				t.Fatalf("ComputeSource: %v", err)
			}
			if plan.Refused != w.refused {
				t.Fatalf("refused=%t want %t (reasons %v)\n%s", plan.Refused, w.refused, plan.Reasons, plan)
			}
			if w.refused && len(plan.Reasons) == 0 {
				t.Fatalf("refusal must carry machine-readable reasons")
			}
			_, bc := plan.BuildChain()
			if bc != w.buildChain {
				t.Fatalf("buildChain=%t want %t\n%s", bc, w.buildChain, plan)
			}
			if plan.Certified != w.certified {
				t.Fatalf("certified=%t want %t\n%s", plan.Certified, w.certified, plan)
			}
		})
	}
}

// The runtime half on one build-prefix benchmark and one fully
// certified one: no validation messages means the static claims held
// under all three schemes.
func TestValidatePhasesHolds(t *testing.T) {
	for _, tc := range []struct {
		name      string
		certified bool
	}{
		{"treeadd", true},
		{"em3d", false},
	} {
		info, ok := bench.Get(tc.name)
		if !ok {
			t.Fatalf("benchmark %q not registered", tc.name)
		}
		if msgs := validatePhases(tc.name, info, true, tc.certified); len(msgs) != 0 {
			t.Fatalf("%s: %v", tc.name, msgs)
		}
	}
}
