// Package analysis is a static-analysis suite for this repository's
// runtime-API contracts: the rules that keep benchmark and example code
// honest about threads, futures, dereference sites, and global-pointer
// opacity.  It is built on the standard library alone (go/ast, go/parser,
// go/types) — package loading shells out to `go list -export` for
// compiled export data instead of depending on golang.org/x/tools.
//
// The five checks, and the contract each one enforces:
//
//   - thread-capture: an rt.Thread is confined to the goroutine that owns
//     it, so a Spawn closure must use its own child-thread parameter and
//     never the parent thread it closed over.
//   - site-hygiene: every rt.Site literal carries a nonempty, dotted
//     "<bench>.<var>" name, unique within its package, and typed
//     load/store calls never pass a nil site.
//   - future-discipline: a future returned by rt.Spawn is touched on
//     every path before it goes out of scope, and never touched twice.
//   - heap-escape: the ⟨processor, offset⟩ packing of gaddr.GP is an
//     implementation detail of the runtime layers; nothing else unpacks,
//     forges, or does arithmetic on it.
//   - mechanism-consistency: in a package carrying a mini-C KernelSource,
//     every rt.Site's Mech tag agrees with what the compile-time
//     heuristic chooses for that site's variable on the kernel.
//
// cmd/oldenvet is the command-line driver.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked unit: a package's source files (test files
// included) together with its type information.  External test packages
// (package foo_test) load as their own unit with Path suffixed "_test".
type Package struct {
	Path  string // import path of the unit
	Name  string // package name
	Dir   string // directory holding the source files
	Mod   string // module path, e.g. "repro"
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader typechecks packages against compiled export data.  One `go list
// -deps -export -json -test` run at construction maps every import path
// reachable from the module to its export file; Load and LoadDir then
// parse target sources and typecheck them with that map as the importer.
type Loader struct {
	Dir     string // module root the go tool runs in
	Mod     string // module path
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// listPkg is the slice of `go list -json` output the loader reads.
type listPkg struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	ForTest      string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path string }
}

// NewLoader shells out once for the module rooted at dir (typically the
// repository root) and indexes export data for everything `./...` and its
// tests depend on.
func NewLoader(dir string) (*Loader, error) {
	l := &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
	}
	pkgs, err := l.goList("-deps", "-export", "-test", "./...")
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Module != nil && !p.Standard && l.Mod == "" {
			l.Mod = p.Module.Path
		}
		if p.Export == "" {
			continue
		}
		path := cleanImportPath(p.ImportPath)
		// Prefer the base variant of a package over its
		// test-augmented recompilation ("pkg [pkg.test]").
		if _, ok := l.exports[path]; !ok || p.ForTest == "" {
			l.exports[path] = p.Export
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return l, nil
}

// cleanImportPath strips the " [pkg.test]" suffix go list attaches to
// test variants.
func cleanImportPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}

func (l *Loader) goList(args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = l.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves the given package patterns (e.g. "./...") and typechecks
// each match from source.  A package's ordinary and internal-test files
// form one unit; its external test files, if any, form a second.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, r := range roots {
		if r.Standard {
			continue
		}
		files := append(append([]string{}, r.GoFiles...), r.TestGoFiles...)
		if len(files) > 0 {
			p, err := l.check(r.ImportPath, r.Name, r.Dir, files)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		if len(r.XTestGoFiles) > 0 {
			p, err := l.check(r.ImportPath+"_test", r.Name+"_test", r.Dir, r.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir typechecks the .go files of a single directory that the go
// tool does not see — fixture packages under testdata/.  The directory
// must lie inside the loader's module so runtime imports resolve.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	path := filepath.ToSlash(dir)
	if abs, err := filepath.Abs(dir); err == nil {
		if root, err2 := filepath.Abs(l.Dir); err2 == nil {
			if rel, err3 := filepath.Rel(root, abs); err3 == nil && !strings.HasPrefix(rel, "..") {
				path = l.Mod + "/" + filepath.ToSlash(rel)
			}
		}
	}
	return l.check(path, "", dir, files)
}

func (l *Loader) check(path, name, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	if name == "" {
		name = parsed[0].Name.Name
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	cfg := types.Config{Importer: l.imp}
	tpkg, err := cfg.Check(path, l.fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Name:  name,
		Dir:   dir,
		Mod:   l.Mod,
		Fset:  l.fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}, nil
}
