package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkFutureDiscipline verifies that a future returned by rt.Spawn is
// touched on every control-flow path before it goes out of scope, and
// never touched twice.  An untouched future leaves its child thread's
// work unserialised into the parent's virtual clock (the simulated
// makespan silently drops it); a second touch panics at runtime.
//
// The analysis is local and conservative: it tracks only futures bound
// to a plain variable by `f := rt.Spawn(...)`.  A future that escapes —
// stored in a slice or struct, passed to a call, returned, reassigned,
// or captured by a closure — is skipped rather than guessed at.
func checkFutureDiscipline(p *Package) []Finding {
	var fs []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					fs = append(fs, p.futuresInBody(fn.Body)...)
				}
			case *ast.FuncLit:
				fs = append(fs, p.futuresInBody(fn.Body)...)
			}
			return true
		})
	}
	return fs
}

// walkShallow visits root's subtree without descending into nested
// function literals (each literal is analysed as its own body).
func walkShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok && m != root {
			return false
		}
		return fn(m)
	})
}

// futuresInBody analyses one function body: spawns whose results are
// discarded outright, then per-variable touch discipline.
func (p *Package) futuresInBody(body *ast.BlockStmt) []Finding {
	var fs []Finding
	type tracked struct {
		obj types.Object
		def *ast.AssignStmt
	}
	var vars []tracked
	walkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && p.isSpawn(call) {
				fs = append(fs, p.finding("future-discipline", n.Pos(),
					"result of Spawn discarded; the future is never touched"))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !p.isSpawn(call) || i >= len(n.Lhs) || len(n.Lhs) != len(n.Rhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					fs = append(fs, p.finding("future-discipline", n.Pos(),
						"result of Spawn discarded; the future is never touched"))
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && len(n.Lhs) == 1 {
					vars = append(vars, tracked{obj, n})
				}
			}
		}
		return true
	})
	for _, v := range vars {
		fs = append(fs, p.futureVar(body, v.obj, v.def)...)
	}
	return fs
}

// futureVar runs the touch-discipline flow analysis for one future
// variable, unless the future escapes local analysis.
func (p *Package) futureVar(body *ast.BlockStmt, obj types.Object, def *ast.AssignStmt) []Finding {
	escaped := false
	var list []ast.Stmt
	idx := -1
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if escaped {
			return false
		}
		if n == def && len(stack) > 0 {
			switch parent := stack[len(stack)-1].(type) {
			case *ast.BlockStmt:
				list = parent.List
			case *ast.CaseClause:
				list = parent.Body
			case *ast.CommClause:
				list = parent.Body
			}
			for i, s := range list {
				if s == def {
					idx = i
				}
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != obj {
			return true
		}
		for _, a := range stack {
			if _, ok := a.(*ast.FuncLit); ok {
				escaped = true // captured by a closure
				return false
			}
		}
		parent := stack[len(stack)-1]
		switch parent := parent.(type) {
		case *ast.AssignStmt:
			if parent == def {
				return true // the definition itself
			}
		case *ast.SelectorExpr:
			if parent.Sel.Name == "Touch" && len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == parent {
					return true // a touch
				}
			}
		case *ast.BinaryExpr:
			return true // nil comparison or similar inspection
		}
		escaped = true
		return false
	})
	if escaped || idx < 0 {
		return nil
	}
	ff := &futureFlow{p: p, obj: obj}
	st, terminated := ff.stmts(list[idx+1:], stUntouched)
	if !terminated {
		switch st {
		case stUntouched:
			ff.report(def.Pos(), "future %q is never touched", obj.Name())
		case stMaybe:
			ff.report(def.Pos(), "future %q is not touched on every path", obj.Name())
		}
	}
	return ff.fs
}

// touchState abstracts how many times the future has been touched on
// the paths reaching a program point.
type touchState int

const (
	stUntouched touchState = iota
	stMaybe                // touched on some paths only
	stTouched
)

func join(a, b touchState) touchState {
	if a == b {
		return a
	}
	return stMaybe
}

type futureFlow struct {
	p   *Package
	obj types.Object
	fs  []Finding
}

func (ff *futureFlow) report(pos token.Pos, format string, args ...any) {
	ff.fs = append(ff.fs, ff.p.finding("future-discipline", pos, format, args...))
}

// stmts runs the statement list from state st; the bool result reports
// whether every path through the list terminates (returns).
func (ff *futureFlow) stmts(list []ast.Stmt, st touchState) (touchState, bool) {
	for _, s := range list {
		var term bool
		st, term = ff.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// expr applies every touch of the tracked future inside n (skipping
// nested function literals) to the state, reporting double touches.
func (ff *futureFlow) expr(n ast.Node, st touchState) touchState {
	if n == nil {
		return st
	}
	walkShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Touch" {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || ff.p.Info.Uses[id] != ff.obj {
			return true
		}
		if st == stTouched {
			ff.report(call.Pos(), "future %q touched again; a future completes exactly once", ff.obj.Name())
		}
		st = stTouched
		return true
	})
	return st
}

func (ff *futureFlow) stmt(s ast.Stmt, st touchState) (touchState, bool) {
	switch s := s.(type) {
	case nil:
		return st, false
	case *ast.BlockStmt:
		return ff.stmts(s.List, st)
	case *ast.LabeledStmt:
		return ff.stmt(s.Stmt, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = ff.expr(r, st)
		}
		switch st {
		case stUntouched:
			ff.report(s.Pos(), "future %q is not touched before this return", ff.obj.Name())
		case stMaybe:
			ff.report(s.Pos(), "future %q is not touched on every path reaching this return", ff.obj.Name())
		}
		return st, true
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = ff.stmt(s.Init, st)
		}
		st = ff.expr(s.Cond, st)
		thenSt, thenTerm := ff.stmt(s.Body, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = ff.stmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return join(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = ff.stmt(s.Init, st)
		}
		st = ff.expr(s.Cond, st)
		bodySt, _ := ff.stmt(s.Body, st)
		if s.Post != nil {
			bodySt, _ = ff.stmt(s.Post, bodySt)
		}
		// The body may run zero times.
		return join(st, bodySt), false
	case *ast.RangeStmt:
		st = ff.expr(s.X, st)
		bodySt, _ := ff.stmt(s.Body, st)
		return join(st, bodySt), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = ff.stmt(s.Init, st)
		}
		st = ff.expr(s.Tag, st)
		return ff.clauses(s.Body, st, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = ff.stmt(s.Init, st)
		}
		st = ff.expr(s.Assign, st)
		return ff.clauses(s.Body, st, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		// A select without default still runs exactly one clause.
		return ff.clauses(s.Body, st, true)
	case *ast.BranchStmt:
		// break/continue/goto: stop tracking this path rather than
		// model label targets.
		return st, true
	case *ast.DeferStmt:
		return ff.expr(s.Call, st), false
	case *ast.GoStmt:
		return ff.expr(s.Call, st), false
	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, ...
		return ff.expr(s, st), false
	}
}

// clauses joins the branches of a switch or select body.  exhaustive
// says one clause always runs (a default is present, or it is a select).
func (ff *futureFlow) clauses(body *ast.BlockStmt, st touchState, exhaustive bool) (touchState, bool) {
	var states []touchState
	for _, c := range body.List {
		var cls []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			cls = c.Body
		case *ast.CommClause:
			cls = c.Body
		}
		cs, term := ff.stmts(cls, st)
		if !term {
			states = append(states, cs)
		}
	}
	if !exhaustive {
		states = append(states, st) // no clause may match
	}
	if len(states) == 0 {
		return st, len(body.List) > 0
	}
	out := states[0]
	for _, s := range states[1:] {
		out = join(out, s)
	}
	return out, false
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
