// Package badescape is a negative fixture for the heap-escape check:
// benchmark-level code unpacking, forging, and doing arithmetic on the
// packed gaddr.GP representation.
package badescape

import "repro/internal/gaddr"

func Forge(g gaddr.GP) gaddr.GP {
	raw := uint32(g)             // BAD: unpack to raw integer
	home := g.Proc()             // BAD: accessor unpacks
	next := gaddr.Pack(home, 16) // BAD: forge from raw parts
	interior := g + 4            // BAD: pointer arithmetic
	_, _ = raw, interior
	return next
}
