// Package badcapture is a negative fixture for the thread-capture
// check: a Spawn closure that uses the parent thread instead of its own
// child-thread parameter.
package badcapture

import "repro/internal/rt"

func Twice(t *rt.Thread) int {
	f := rt.Spawn(t, func(c *rt.Thread) int {
		// BAD: the nested spawn names the parent thread t; it must
		// spawn from c, the thread actually running this closure.
		g := rt.Spawn(t, func(c2 *rt.Thread) int { return 1 })
		return g.Touch(c)
	})
	return f.Touch(t)
}
