// Package badmech is a negative fixture for the mechanism-consistency
// check: its kernel is a plain tree traversal whose recursion combines
// the child affinities to 1−(1−0.9)(1−0.9) = 99% ≥ the 90% threshold,
// so the heuristic migrates t — but the site literal claims caching.
package badmech

import "repro/internal/rt"

// KernelSource is the mini-C program this package pretends to be the
// compiled output of.
const KernelSource = `
struct tree {
  int val;
  struct tree *left __affinity(90);
  struct tree *right __affinity(90);
};

int Traverse(struct tree *t) {
  if (t == NULL) return 0;
  return Traverse(t->left) + Traverse(t->right) + t->val;
}
`

var (
	siteT = &rt.Site{Name: "badmech.t", Mech: rt.Cache}       // BAD: heuristic migrates t
	siteV = &rt.Site{Name: "badmech.tree", Mech: rt.Migrate}  // ok: struct-name tag, migrates
	aux   = &rt.Site{Name: "badmech.scratch", Mech: rt.Cache} // ok: tag not in the kernel
)
