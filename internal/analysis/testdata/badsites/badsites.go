// Package badsites is a negative fixture for the site-hygiene check:
// an anonymous site, a name that ignores the dotted convention, a
// duplicated name, and a nil site at a typed load.
package badsites

import (
	"repro/internal/gaddr"
	"repro/internal/rt"
)

var (
	anon = &rt.Site{Mech: rt.Cache}               // BAD: no Name
	flat = &rt.Site{Name: "walk", Mech: rt.Cache} // BAD: not <bench>.<var>
	dupA = &rt.Site{Name: "bad.dup", Mech: rt.Migrate}
	dupB = &rt.Site{Name: "bad.dup", Mech: rt.Cache} // BAD: duplicate
)

func Read(t *rt.Thread, g gaddr.GP) uint64 {
	return t.LoadWord(nil, g, 0) // BAD: nil site
}
