// Package badfuture is a negative fixture for the future-discipline
// check: a future that is never touched, one missed on a path, and one
// touched twice.
package badfuture

import "repro/internal/rt"

func Dropped(t *rt.Thread) {
	f := rt.Spawn(t, func(c *rt.Thread) int { return 1 })
	_ = f == nil // BAD: inspected but never touched
}

func Conditional(t *rt.Thread, p bool) int {
	f := rt.Spawn(t, func(c *rt.Thread) int { return 2 })
	if p {
		return f.Touch(t)
	}
	return 0 // BAD: un-touched on this path
}

func Double(t *rt.Thread) int {
	f := rt.Spawn(t, func(c *rt.Thread) int { return 3 })
	return f.Touch(t) + f.Touch(t) // BAD: touched twice
}
