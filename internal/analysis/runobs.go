package analysis

import (
	"path"
	"sync"

	"repro/internal/analysis/effects"
	"repro/internal/analysis/phases"
	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/rt"
	"repro/internal/trace"
)

// This file is the shared observation runner behind the cert-trace and
// phase-trace checks: both cross-validate static claims against the same
// three-scheme simulations, so each benchmark is simulated exactly once
// per vet invocation — the three schemes concurrently (each scheme gets
// its own Runtime, recorder and registry, so the runs are isolated the
// way t.Parallel() subtests must be) and the finished observation
// memoized across the unit and test package variants oldenvet loads.

// obsScale trades coverage for vet latency: the claims are about access
// *behaviour*, not size, so a reduced problem exercises the same code
// paths the certificates reason about.
const obsScale = 4 * bench.DefaultScale

// obsSchemes is the observation order; digests are compared pairwise
// against index 0.
var obsSchemes = []coherence.Kind{
	coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral,
}

// schemeObs is what one scheme's run exposes to the static checks.
type schemeObs struct {
	scheme   string
	verified bool
	// kernelAccess is the order-insensitive scheme-invariant projection
	// of the timed region's trace.
	kernelAccess trace.Digest
	// buildAccess is the same projection of the build phase (retired by
	// ResetForKernel); buildOK is false for whole-program benchmarks.
	buildAccess trace.Digest
	buildOK     bool
	// buildHeapFP fingerprints the heap image at the phase boundary;
	// finalHeapFP fingerprints it after the kernel.
	buildHeapFP uint64
	buildHeapOK bool
	finalHeapFP uint64
}

type benchObs struct {
	once sync.Once
	obs  []schemeObs
}

var obsCache sync.Map // bench name -> *benchObs

// observeSchemes runs the registered benchmark under all three schemes,
// concurrently, and memoizes the observations per benchmark name.
func observeSchemes(name string, info bench.Info) []schemeObs {
	v, _ := obsCache.LoadOrStore(name, &benchObs{})
	bo := v.(*benchObs)
	bo.once.Do(func() {
		bo.obs = make([]schemeObs, len(obsSchemes))
		var wg sync.WaitGroup
		for i, k := range obsSchemes {
			wg.Add(1)
			go func(i int, k coherence.Kind) {
				defer wg.Done()
				bo.obs[i] = observeOne(info, k)
			}(i, k)
		}
		wg.Wait()
	})
	return bo.obs
}

func observeOne(info bench.Info, k coherence.Kind) schemeObs {
	rec := trace.New(0)
	var rtm *rt.Runtime
	r := info.Run(bench.Config{
		Procs:       2,
		Scheme:      k,
		Scale:       obsScale,
		Trace:       rec,
		RuntimeHook: func(r *rt.Runtime) { rtm = r },
	})
	o := schemeObs{
		scheme:       k.String(),
		verified:     r.Verified(),
		kernelAccess: rec.AccessDigest(),
	}
	if rtm != nil {
		if _, access, ok := rtm.BuildPhaseDigest(); ok {
			o.buildAccess = access
			o.buildOK = true
		}
		o.buildHeapFP, o.buildHeapOK = rtm.BuildHeapFingerprint()
		o.finalHeapFP = rtm.HeapFingerprint()
	}
	return o
}

// warmObservations starts the three-scheme observation runs for every
// benchmark package in the batch that a trace-validating check will
// need, so distinct kernels simulate concurrently instead of serially as
// the check loop reaches them. The per-name memoization makes the later
// check calls block on (or reuse) the warmed result.
func warmObservations(pkgs []*Package) {
	launched := map[string]bool{}
	for _, p := range pkgs {
		name, info, ok := observationTarget(p)
		if !ok || launched[name] {
			continue
		}
		launched[name] = true
		go observeSchemes(name, info)
	}
}

// observationTarget reports whether a trace-validating check will need
// the three-scheme observations of this package's kernel, mirroring the
// gates of checkCertTrace and checkPhaseTrace: a registered benchmark
// whose certificate holds or whose phase plan certified something.
func observationTarget(p *Package) (string, bench.Info, bool) {
	src, _, ok := kernelSource(p)
	if !ok {
		return "", bench.Info{}, false
	}
	name := path.Base(p.unitPath())
	info, registered := bench.Get(name)
	if !registered {
		return "", bench.Info{}, false
	}
	res, err := effects.AnalyzeSource(src, core.DefaultParams())
	if err != nil {
		return "", bench.Info{}, false
	}
	if res.Certificate().Cacheable {
		return name, info, true
	}
	plan := phases.Compute(res, phases.Options{IncludeBuild: info.Phased != nil})
	if _, ok := plan.BuildChain(); ok || plan.Certified {
		return name, info, true
	}
	return "", bench.Info{}, false
}
