package analysis

import (
	"fmt"
	"path"

	"repro/internal/analysis/phases"
	"repro/internal/bench"
)

// checkPhaseTrace cross-validates a benchmark's static phase plan — the
// cert-trace pattern, one level finer. The plan makes two falsifiable
// claims, and each is checked against the runtime's own account of the
// three-scheme observation runs:
//
//   - An invariant build phase claims the heap image at the
//     ResetForKernel boundary is identical under every coherence scheme:
//     the build heap fingerprints and build access digests must agree.
//     This is the exact obligation the server's phase cache rests on
//     when it restores one configuration's build state for another.
//
//   - A fully certified chain claims the whole execution's semantic
//     access behaviour and final heap state are scheme-independent: the
//     kernel access digests and final heap fingerprints must agree.
//
// A compute-chain refusal (hostile kernels, extern calls, unbounded
// steps) voids the second claim but not the first: the synthetic build
// phase is invariant by harness construction, so its fingerprints are
// validated even for refused plans.
func checkPhaseTrace(p *Package) []Finding {
	src, pos, ok := kernelSource(p)
	if !ok {
		return nil
	}
	benchName := path.Base(p.unitPath())
	info, registered := bench.Get(benchName)
	if !registered {
		return nil
	}
	plan, err := phases.ComputeSource(src, phases.Options{IncludeBuild: info.Phased != nil})
	if err != nil {
		return nil // mechanism-consistency already reports parse failures
	}
	_, checkBuild := plan.BuildChain()
	if !checkBuild && !plan.Certified {
		// Nothing certified, nothing to validate: either the plan was
		// refused with machine-readable reasons (the analysis doing its
		// job) or no prefix proved invariant.
		return nil
	}
	var fs []Finding
	for _, msg := range validatePhases(benchName, info, checkBuild, plan.Certified) {
		fs = append(fs, p.finding("phase-trace", pos, "%s", msg))
	}
	return fs
}

func validatePhases(name string, info bench.Info, checkBuild, certified bool) []string {
	var msgs []string
	all := observeSchemes(name, info)
	var obs []schemeObs
	for _, o := range all {
		if !o.verified {
			msgs = append(msgs, "phase plan for "+name+" but the kernel failed verification under "+
				o.scheme)
			continue
		}
		obs = append(obs, o)
	}
	for i := range obs {
		if checkBuild && !obs[i].buildHeapOK {
			msgs = append(msgs, "phase plan for "+name+
				" has an invariant build phase but the run under "+obs[i].scheme+
				" crossed no phase boundary")
		}
	}
	for i := 1; i < len(obs); i++ {
		if checkBuild && obs[i].buildHeapOK && obs[0].buildHeapOK &&
			obs[i].buildHeapFP != obs[0].buildHeapFP {
			msgs = append(msgs, fmt.Sprintf(
				"invariant build phase of %s reaches different heap images: %s=%#x vs %s=%#x",
				name, obs[0].scheme, obs[0].buildHeapFP, obs[i].scheme, obs[i].buildHeapFP))
		}
		if checkBuild && obs[i].buildAccess != obs[0].buildAccess {
			msgs = append(msgs, "invariant build phase of "+name+
				" emits different access digests: "+
				obs[0].scheme+"="+obs[0].buildAccess.String()+" vs "+
				obs[i].scheme+"="+obs[i].buildAccess.String())
		}
		if certified && obs[i].kernelAccess != obs[0].kernelAccess {
			msgs = append(msgs, "certified phase chain of "+name+
				" diverges in kernel access digests: "+
				obs[0].scheme+"="+obs[0].kernelAccess.String()+" vs "+
				obs[i].scheme+"="+obs[i].kernelAccess.String())
		}
		if certified && obs[i].finalHeapFP != obs[0].finalHeapFP {
			msgs = append(msgs, fmt.Sprintf(
				"certified phase chain of %s leaves different final heaps: %s=%#x vs %s=%#x",
				name, obs[0].scheme, obs[0].finalHeapFP, obs[i].scheme, obs[i].finalHeapFP))
		}
	}
	return dedupe(msgs)
}
