package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// repoLoader builds one Loader for the repository root, shared by every
// test (the go list run behind it is the expensive part).
func repoLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader("../..")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// The whole repository — benchmarks, examples, tests, commands — obeys
// its own contracts: the suite self-hosts with zero findings.
func TestSelfHostZeroFindings(t *testing.T) {
	l := repoLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the full module", len(pkgs))
	}
	findings := Run(pkgs)
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// Each negative fixture fires its own check — and only its own check,
// so a regression in one analysis cannot hide behind another.
func TestFixturesFire(t *testing.T) {
	cases := []struct {
		dir   string
		check string
		min   int // minimum findings expected
	}{
		{"badcapture", "thread-capture", 1},
		{"badsites", "site-hygiene", 4},
		{"badfuture", "future-discipline", 3},
		{"badescape", "heap-escape", 4},
		{"badmech", "mechanism-consistency", 1},
	}
	l := repoLoader(t)
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			p, err := l.LoadDir(filepath.Join("testdata", c.dir))
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			findings := Run([]*Package{p})
			if len(findings) < c.min {
				t.Fatalf("got %d findings, want at least %d: %v", len(findings), c.min, findings)
			}
			for _, f := range findings {
				if f.Check != c.check {
					t.Errorf("finding from unexpected check %q: %s", f.Check, f)
				}
				if f.Line == 0 || f.File == "" {
					t.Errorf("finding without a position: %+v", f)
				}
			}
		})
	}
}

// Specific diagnostics the fixtures must produce, by message fragment.
func TestFixtureMessages(t *testing.T) {
	l := repoLoader(t)
	wants := map[string][]string{
		"badsites": {
			"has no Name",
			"does not follow the dotted",
			"duplicate site name \"bad.dup\"",
			"nil site passed to LoadWord",
		},
		"badfuture": {
			"never touched",
			"not touched before this return",
			"touched again",
		},
		"badescape": {
			"unpacks a global pointer to a raw integer",
			"gaddr method Proc",
			"call to gaddr.Pack",
			"arithmetic on a global pointer",
		},
		"badcapture": {
			"parent thread \"t\" used inside Spawn closure",
		},
		"badmech": {
			`site "badmech.t" is tagged Cache but the kernel heuristic chooses Migrate for "t"`,
		},
	}
	for dir, fragments := range wants {
		p, err := l.LoadDir(filepath.Join("testdata", dir))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		findings := Run([]*Package{p})
		for _, frag := range fragments {
			found := false
			for _, f := range findings {
				if strings.Contains(f.Message, frag) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: no finding mentions %q; got %v", dir, frag, findings)
			}
		}
	}
}

// Findings marshal to the JSON shape oldenvet -json documents.
func TestFindingJSON(t *testing.T) {
	f := Finding{Check: "site-hygiene", File: "x.go", Line: 3, Col: 7, Message: "m"}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"check":"site-hygiene","file":"x.go","line":3,"col":7,"message":"m"}`
	if string(b) != want {
		t.Fatalf("JSON = %s; want %s", b, want)
	}
	if got := f.String(); got != "x.go:3:7: m [site-hygiene]" {
		t.Fatalf("String = %q", got)
	}
}
