package phases

import (
	"strings"
	"testing"
)

const treeAddSrc = `
struct tree {
  int val;
  struct tree *left __affinity(90);
  struct tree *right __affinity(70);
};

int TreeAdd(struct tree *t) {
  int l;
  int r;
  if (t == NULL) return 0;
  l = touch(futurecall(TreeAdd(t->left)));
  r = TreeAdd(t->right);
  return l + r + t->val;
}
`

const em3dSrc = `
struct node {
  float value;
  struct node *next;
  struct node *from;
  float coeff;
};

void compute_node(struct node *n) {
  n->value = n->value - n->from->value * n->coeff;
}

void all_compute(struct node *l) {
  while (l) {
    futurecall(compute_node(l));
    l = l->next;
  }
}
`

const unboundedSrc = `
struct node {
  int v;
  struct node *next;
};

void spin(struct node *n) {
  while (1) {
    n->v = 0;
  }
}
`

func mustPlan(t *testing.T, src string, opt Options) *Plan {
	t.Helper()
	p, err := ComputeSource(src, opt)
	if err != nil {
		t.Fatalf("ComputeSource: %v", err)
	}
	return p
}

func TestTreeAddCertified(t *testing.T) {
	p := mustPlan(t, treeAddSrc, Options{IncludeBuild: true})
	if got, want := len(p.Entries), 1; got != want {
		t.Fatalf("entries = %v, want 1", p.Entries)
	}
	if p.Entries[0] != "TreeAdd" {
		t.Fatalf("entry = %q, want TreeAdd", p.Entries[0])
	}
	// build + two compute phases: the sequenced recursive calls are the
	// heavy statements, the guard and declarations ride with the first,
	// the return with the second.
	if len(p.Phases) != 3 {
		t.Fatalf("phases = %d, want 3\n%s", len(p.Phases), p)
	}
	if p.Phases[0].Kind != KindBuild || !p.Phases[0].Invariant {
		t.Fatalf("build phase not invariant: %+v", p.Phases[0])
	}
	for _, ph := range p.Phases[1:] {
		if ph.Fn != "TreeAdd" || ph.Kind != KindCompute {
			t.Fatalf("compute phase mislabelled: %+v", ph)
		}
		if !ph.Invariant {
			t.Fatalf("migrate-only phase should be invariant: %+v", ph)
		}
		if ph.MigrateSites == 0 || ph.CacheSites != 0 {
			t.Fatalf("TreeAdd sites: %+v", ph)
		}
	}
	if !p.Phases[1].Parallel {
		t.Fatalf("futurecall phase not marked parallel: %+v", p.Phases[1])
	}
	if !p.Certified || p.Refused {
		t.Fatalf("TreeAdd should certify: %s", p)
	}
	if p.InvariantPrefix != 3 {
		t.Fatalf("invariant prefix = %d, want 3", p.InvariantPrefix)
	}
	if _, ok := p.BuildChain(); !ok {
		t.Fatalf("certified plan must expose a build chain")
	}
}

func TestEm3dMixedPrefix(t *testing.T) {
	p := mustPlan(t, em3dSrc, Options{IncludeBuild: true})
	// compute_node is called by all_compute, so the only entry is the
	// driver loop: build + one compute phase.
	if len(p.Entries) != 1 || p.Entries[0] != "all_compute" {
		t.Fatalf("entries = %v, want [all_compute]", p.Entries)
	}
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d, want 2\n%s", len(p.Phases), p)
	}
	ph := p.Phases[1]
	if ph.Invariant {
		t.Fatalf("mixed-mechanism phase must not be invariant: %+v", ph)
	}
	if !hasReason(ph.Reasons, "mixed-mechanisms") {
		t.Fatalf("reasons = %v, want mixed-mechanisms", ph.Reasons)
	}
	if p.Certified {
		t.Fatalf("em3d must not certify end to end")
	}
	if p.Refused {
		t.Fatalf("em3d must not be refused: %v", p.Reasons)
	}
	if p.InvariantPrefix != 1 {
		t.Fatalf("invariant prefix = %d, want 1 (build only)", p.InvariantPrefix)
	}
	if _, ok := p.BuildChain(); !ok {
		t.Fatalf("build prefix should still be reusable")
	}
}

func TestUnboundedRefused(t *testing.T) {
	p := mustPlan(t, unboundedSrc, Options{IncludeBuild: true})
	if !p.Refused {
		t.Fatalf("unbounded kernel must be refused:\n%s", p)
	}
	if !hasReason(p.Reasons, "unbounded-steps:spin") {
		t.Fatalf("reasons = %v, want unbounded-steps:spin", p.Reasons)
	}
	// The compute chain is voided, but the synthetic build phase is
	// invariant by harness construction and survives the refusal.
	if p.InvariantPrefix != 1 {
		t.Fatalf("refused plan with a build phase must have prefix 1, got %d", p.InvariantPrefix)
	}
	if _, ok := p.BuildChain(); !ok {
		t.Fatalf("the build phase must survive a compute-chain refusal")
	}
	if p.Certified {
		t.Fatalf("refused plan cannot certify")
	}
	// Without the harness build phase nothing at all survives.
	bare := mustPlan(t, unboundedSrc, Options{})
	if bare.InvariantPrefix != 0 {
		t.Fatalf("refused bare plan must have prefix 0, got %d", bare.InvariantPrefix)
	}
	if _, ok := bare.BuildChain(); ok {
		t.Fatalf("bare refused plan must not expose a build chain")
	}
}

func TestNoEntryRefused(t *testing.T) {
	p := mustPlan(t, "struct node { int v; };", Options{})
	if !p.Refused || !hasReason(p.Reasons, "no-entry-function") {
		t.Fatalf("empty program: refused=%t reasons=%v", p.Refused, p.Reasons)
	}
}

func TestExternPoisonsBoundsAndRefuses(t *testing.T) {
	// An extern call poisons the callee's step bound to ⊤ in the effect
	// analysis, so the plan is refused — but the phase that actually
	// makes the call still carries the machine-readable extern reason.
	src := `
struct node { int v; struct node *next __affinity(90); };
int walk(struct node *l) {
  int n;
  n = 0;
  while (l) {
    n = n + l->v;
    l = l->next;
  }
  n = mystery(n);
  return n;
}
`
	p := mustPlan(t, src, Options{IncludeBuild: true})
	if !p.Refused || !hasReason(p.Reasons, "unbounded-steps:walk") {
		t.Fatalf("extern kernel: refused=%t reasons=%v", p.Refused, p.Reasons)
	}
	if p.InvariantPrefix != 1 {
		t.Fatalf("build prefix should survive, got %d", p.InvariantPrefix)
	}
	if len(p.Phases) != 3 {
		t.Fatalf("phases = %d, want 3 (build, loop, extern)\n%s", len(p.Phases), p)
	}
	last := p.Phases[2]
	if last.Invariant || !hasReason(last.Reasons, "extern-call:mystery") {
		t.Fatalf("extern phase verdict: %+v", last)
	}
}

func TestDigestChainDeterministicAndSourceSensitive(t *testing.T) {
	a := mustPlan(t, treeAddSrc, Options{IncludeBuild: true})
	b := mustPlan(t, treeAddSrc, Options{IncludeBuild: true})
	if a.Digest != b.Digest {
		t.Fatalf("plan digest not deterministic: %s vs %s", a.Digest, b.Digest)
	}
	for i := range a.Phases {
		if a.Phases[i].Chain != b.Phases[i].Chain {
			t.Fatalf("chain[%d] not deterministic", i)
		}
	}
	c := mustPlan(t, em3dSrc, Options{IncludeBuild: true})
	// The chain is seeded with the program certificate digest, so even
	// the synthetic build phase (identical shape everywhere) must have a
	// kernel-specific chain link.
	if a.Phases[0].Chain == c.Phases[0].Chain {
		t.Fatalf("build chain must be kernel-specific")
	}
	if a.Phases[0].Digest != c.Phases[0].Digest {
		t.Fatalf("build phase digest (chain-free) should be shape-identical")
	}
}

func TestMultiEntrySourceOrder(t *testing.T) {
	src := `
struct tree { struct tree *left; struct tree *right; };
void Traverse(struct tree *t) {
  if (t == NULL) return;
  Traverse(t->left);
  Traverse(t->right);
}
void Drive(struct tree *t) {
  Traverse(t);
}
void Other(struct tree *t) {
  Traverse(t);
}
`
	p := mustPlan(t, src, Options{})
	if len(p.Entries) != 2 || p.Entries[0] != "Drive" || p.Entries[1] != "Other" {
		t.Fatalf("entries = %v, want [Drive Other]", p.Entries)
	}
	for i, ph := range p.Phases {
		if ph.Index != i {
			t.Fatalf("phase %d has index %d", i, ph.Index)
		}
	}
}

func TestHumanRenderingMentionsRefusal(t *testing.T) {
	p := mustPlan(t, unboundedSrc, Options{})
	s := p.String()
	if !strings.Contains(s, "REFUSED") || !strings.Contains(s, "unbounded-steps:spin") {
		t.Fatalf("rendering missing refusal:\n%s", s)
	}
}

func hasReason(rs []string, want string) bool {
	for _, r := range rs {
		if r == want {
			return true
		}
	}
	return false
}
