// Package phases implements the static phase-slicing pass: it partitions
// a mini-C kernel into an ordered chain of phases at build/compute
// statement boundaries, computes each phase's read/write/alloc footprint
// from the interprocedural effect summaries, and proves scheme-invariance
// of prefixes — a phase whose footprint contains no cached-mechanism
// reads and no cross-processor shared writes must produce identical heap
// state under all three coherence schemes, so any run may reuse another
// run's heap image at that boundary.
//
// The result is a PhasePlan certificate: the ordered phase list with
// per-phase footprints, invariance verdicts with machine-readable
// refusal reasons, and an FNV-1a digest chain. chain[i] commits to the
// whole prefix up to and including phase i, so two configurations whose
// chains agree on a prefix may share cached state at that boundary. The
// chain is seeded with the effect-certificate digest of the whole
// program: a kernel edit reshuffles every chain link, invalidating any
// cached state keyed on it.
package phases

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis/effects"
	"repro/internal/core"
	"repro/internal/lang"
)

// Kind labels for Phase.Kind.
const (
	KindBuild   = "build"
	KindCompute = "compute"
)

// Phase is one element of the sliced chain.
type Phase struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	// Fn and Line locate the phase's first statement; both are zero for
	// the synthetic build phase.
	Fn    string `json:"fn,omitempty"`
	Line  int    `json:"line,omitempty"`
	Stmts int    `json:"stmts"`

	// Reads and Writes are the heap regions the phase may touch,
	// callee summaries folded in, sorted.
	Reads  []string `json:"reads,omitempty"`
	Writes []string `json:"writes,omitempty"`
	Allocs bool     `json:"allocs"`
	// Calls lists the defined functions the phase calls directly.
	Calls []string `json:"calls,omitempty"`

	// MigrateSites and CacheSites count the dereference sites the phase
	// can reach, classified by the §4 heuristic's mechanism choice.
	MigrateSites int `json:"migrate_sites"`
	CacheSites   int `json:"cache_sites"`
	// Parallel reports a futurecall inside the phase or a callee.
	Parallel bool `json:"parallel"`

	// Invariant is the scheme-invariance verdict; Reasons lists the
	// machine-readable obligations that failed when it is false.
	Invariant bool     `json:"invariant"`
	Reasons   []string `json:"reasons,omitempty"`

	// Digest hashes this phase's canonical line alone; Chain commits to
	// the whole prefix ending at this phase.
	Digest string `json:"digest"`
	Chain  string `json:"chain"`
}

// Plan is the machine-readable PhasePlan certificate.
type Plan struct {
	// Entries lists the slicing roots: defined functions no other
	// defined function calls, in source order.
	Entries []string `json:"entries,omitempty"`
	Phases  []Phase  `json:"phases,omitempty"`
	// InvariantPrefix is the number of leading phases proven
	// scheme-invariant (0 when the plan is refused).
	InvariantPrefix int `json:"invariant_prefix"`
	// Certified means the plan was not refused and every phase in the
	// chain is scheme-invariant.
	Certified bool `json:"certified"`
	// Refused means the slicer cannot stand behind any *compute* phase;
	// Reasons says why, deterministically. The synthetic build phase,
	// when present, is scheme-invariant by harness construction — no
	// simulated accesses happen before the kernel — so it survives a
	// refusal and remains reusable.
	Refused bool     `json:"refused"`
	Reasons []string `json:"reasons,omitempty"`
	// Digest commits to the whole plan (chain tail folded with the
	// plan-level verdict).
	Digest string `json:"digest"`
}

// Options configures slicing.
type Options struct {
	// IncludeBuild prepends the synthetic build phase: the harness
	// materializes the kernel's input structure through the raw heap
	// API before virtual time starts, so the build performs no simulated
	// accesses at all and is scheme-invariant by construction. Set it
	// when the program is a benchmark kernel; leave it unset for
	// standalone sources, which have no harness around them.
	IncludeBuild bool
}

// Compute slices the analyzed program into its phase plan.
func Compute(res *effects.Result, opt Options) *Plan {
	p := &Plan{}
	entries := sliceEntries(res)
	for _, e := range entries {
		p.Entries = append(p.Entries, e.Name)
	}

	// Plan-level refusals: no root to slice from, or a reachable
	// function whose step bound is ⊤ — if a phase may not terminate, no
	// later boundary is guaranteed to be reached, so the chain as a
	// whole is not a certificate of anything.
	if len(entries) == 0 {
		p.refuse("no-entry-function")
	}
	for _, name := range effects.CalleeClosure(res.Prog, p.Entries) {
		if sum := res.Summary(name); sum != nil && sum.Steps.IsTop() {
			p.refuse("unbounded-steps:" + name)
		}
	}

	chain := fnvString(fnvOffset, res.Certificate().Digest)
	if opt.IncludeBuild {
		ph := Phase{
			Index:     0,
			Name:      KindBuild,
			Kind:      KindBuild,
			Allocs:    true,
			Invariant: true,
		}
		chain = sealPhase(&ph, chain)
		p.Phases = append(p.Phases, ph)
	}
	for _, e := range entries {
		for _, ph := range slice(res, e) {
			ph.Index = len(p.Phases)
			chain = sealPhase(&ph, chain)
			p.Phases = append(p.Phases, ph)
		}
	}

	p.InvariantPrefix = len(p.Phases)
	for i, ph := range p.Phases {
		if !ph.Invariant {
			p.InvariantPrefix = i
			break
		}
	}
	if p.Refused {
		// A refusal voids every compute verdict; only the synthetic
		// build phase (invariant by construction, not by analysis)
		// survives.
		p.InvariantPrefix = 0
		if len(p.Phases) > 0 && p.Phases[0].Kind == KindBuild {
			p.InvariantPrefix = 1
		}
	}
	p.Certified = !p.Refused && p.InvariantPrefix == len(p.Phases) && len(p.Phases) > 0

	h := chain
	h = fnvString(h, fmt.Sprintf("|refused=%t reasons=%s", p.Refused, braced(p.Reasons)))
	p.Digest = fmt.Sprintf("%016x", h)
	return p
}

// ComputeSource parses, analyzes and slices a mini-C program.
func ComputeSource(src string, opt Options) (*Plan, error) {
	res, err := effects.AnalyzeSource(src, core.DefaultParams())
	if err != nil {
		return nil, err
	}
	return Compute(res, opt), nil
}

func (p *Plan) refuse(reason string) {
	p.Refused = true
	for _, r := range p.Reasons {
		if r == reason {
			return
		}
	}
	p.Reasons = append(p.Reasons, reason)
	sort.Strings(p.Reasons)
}

// BuildChain returns the chain digest of the build phase when the plan
// has one. This is the key the server's phase cache shares build state
// under. The build phase survives a compute-chain refusal: its
// invariance is the harness's construction (raw heap image, no
// simulated accesses), not a property the refused analysis claimed.
func (p *Plan) BuildChain() (string, bool) {
	if len(p.Phases) == 0 || p.Phases[0].Kind != KindBuild || !p.Phases[0].Invariant {
		return "", false
	}
	return p.Phases[0].Chain, true
}

// sliceEntries returns the slicing roots in source order: defined
// functions that no *other* defined function calls (self-recursion does
// not disqualify a root).
func sliceEntries(res *effects.Result) []*lang.FuncDecl {
	called := map[string]bool{}
	for _, fn := range res.Prog.Funcs {
		for _, callee := range res.StmtEffects(fn, fn.Body).Calls {
			if callee != fn.Name {
				called[callee] = true
			}
		}
	}
	var out []*lang.FuncDecl
	for _, fn := range res.Prog.Funcs {
		if !called[fn.Name] {
			out = append(out, fn)
		}
	}
	return out
}

// slice cuts one entry function's top-level statement list into phases.
// A statement is heavy when it contains a loop or any call: those are
// the statements that correspond to a build or compute pass over the
// heap structure, and each heavy statement after the first starts a new
// phase. Light statements (declarations, scalar arithmetic, guards)
// ride with the first heavy statement that follows them; trailing
// lights (the final return) ride with the last phase.
func slice(res *effects.Result, fn *lang.FuncDecl) []Phase {
	stmts := fn.Body.Stmts
	if len(stmts) == 0 {
		return nil
	}
	first := -1
	for i, s := range stmts {
		if heavy(res, fn, s) {
			first = i
			break
		}
	}
	var starts []int
	for i := first + 1; first >= 0 && i < len(stmts); i++ {
		if heavy(res, fn, stmts[i]) {
			starts = append(starts, i)
		}
	}
	bounds := append([]int{0}, starts...)
	bounds = append(bounds, len(stmts))

	sites := res.Report.DerefSites()
	var phases []Phase
	for k := 0; k+1 < len(bounds); k++ {
		group := stmts[bounds[k]:bounds[k+1]]
		ph := footprint(res, fn, group)
		ph.Name = fmt.Sprintf("%s#%d", fn.Name, k+1)
		ph.Kind = KindCompute
		ph.Fn = fn.Name
		ph.Line = lang.StmtPos(group[0]).Line
		ph.Stmts = len(group)
		hi := 0
		if k+2 < len(bounds) {
			hi = lang.StmtPos(stmts[bounds[k+1]]).Line
		}
		countSites(&ph, sites, fn.Name, res.Prog, ph.Line, hi)
		judge(&ph)
		phases = append(phases, ph)
	}
	return phases
}

func heavy(res *effects.Result, fn *lang.FuncDecl, s lang.Stmt) bool {
	if effects.ContainsLoop(s) {
		return true
	}
	fp := res.StmtEffects(fn, s)
	return len(fp.Calls) > 0 || len(fp.Extern) > 0 || fp.Allocs
}

// footprint folds the statement effects of a phase's statement group.
func footprint(res *effects.Result, fn *lang.FuncDecl, group []lang.Stmt) Phase {
	var ph Phase
	reads := map[string]bool{}
	writes := map[string]bool{}
	extern := map[string]bool{}
	seenCall := map[string]bool{}
	for _, s := range group {
		fp := res.StmtEffects(fn, s)
		for _, r := range fp.Reads {
			reads[r.String()] = true
		}
		for _, w := range fp.Writes {
			writes[w.String()] = true
		}
		for _, x := range fp.Extern {
			extern[x] = true
		}
		for _, c := range fp.Calls {
			if !seenCall[c] {
				seenCall[c] = true
				ph.Calls = append(ph.Calls, c)
			}
		}
		ph.Allocs = ph.Allocs || fp.Allocs
		ph.Parallel = ph.Parallel || fp.Futures
	}
	ph.Reads = sortedKeys(reads)
	ph.Writes = sortedKeys(writes)
	for _, x := range sortedKeys(extern) {
		ph.Reasons = append(ph.Reasons, "extern-call:"+x)
	}
	return ph
}

// countSites attributes the heuristic's dereference sites to a phase:
// every site inside a function the phase calls (transitively) belongs to
// it, and sites in the entry function itself belong to the phase whose
// statement range covers them — unless the entry is in its own callee
// closure (recursion), in which case the closure already claimed them.
func countSites(ph *Phase, sites []core.DerefSite, entry string, prog *lang.Program, lo, hi int) {
	inClosure := map[string]bool{}
	for _, name := range effects.CalleeClosure(prog, ph.Calls) {
		inClosure[name] = true
	}
	for _, s := range sites {
		n := false
		if inClosure[s.Fn] {
			n = true
		} else if s.Fn == entry && s.Pos.Line >= lo && (hi == 0 || s.Pos.Line < hi) {
			n = true
		}
		if !n {
			continue
		}
		switch s.Mech {
		case core.ChooseCache:
			ph.CacheSites++
		case core.ChooseMigrate:
			ph.MigrateSites++
		}
	}
}

// judge applies the scheme-invariance proof obligation, mirroring the
// whole-program certificate rules one phase at a time:
//
//   - an extern call makes the footprint incomplete (reason already
//     recorded by footprint);
//   - mixing cached and migrated sites couples the phase to protocol
//     ordering ("mixed-mechanisms");
//   - a cached phase that spawns futures can read stale lines another
//     processor is writing ("parallel-caching");
//   - a cached phase that writes shared regions publishes under
//     scheme-dependent visibility ("cached-write:R").
//
// A migrate-only phase computes at the data's home processor, so its
// heap effects are scheme-independent even with writes and futures.
func judge(ph *Phase) {
	if ph.CacheSites > 0 && ph.MigrateSites > 0 {
		ph.Reasons = append(ph.Reasons, "mixed-mechanisms")
	}
	if ph.CacheSites > 0 && ph.MigrateSites == 0 {
		if ph.Parallel {
			ph.Reasons = append(ph.Reasons, "parallel-caching")
		}
		for _, w := range ph.Writes {
			ph.Reasons = append(ph.Reasons, "cached-write:"+w)
		}
	}
	sort.Strings(ph.Reasons)
	ph.Invariant = len(ph.Reasons) == 0
}

// sealPhase computes the phase's canonical line, its own digest and the
// chain link, and returns the running chain state.
func sealPhase(ph *Phase, chain uint64) uint64 {
	line := ph.canonical()
	ph.Digest = fmt.Sprintf("%016x", fnvString(fnvOffset, line))
	chain = fnvString(chain, "|"+line)
	ph.Chain = fmt.Sprintf("%016x", chain)
	return chain
}

func (ph *Phase) canonical() string {
	return fmt.Sprintf(
		"phase[%d] %s kind=%s fn=%s line=%d stmts=%d reads=%s writes=%s allocs=%t calls=%s sites=migrate:%d,cache:%d parallel=%t invariant=%t reasons=%s",
		ph.Index, ph.Name, ph.Kind, ph.Fn, ph.Line, ph.Stmts,
		braced(ph.Reads), braced(ph.Writes), ph.Allocs, braced(ph.Calls),
		ph.MigrateSites, ph.CacheSites, ph.Parallel, ph.Invariant,
		braced(ph.Reasons))
}

// String renders the plan for humans; the oldenc goldens pin it.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "phase plan: entries=%s phases=%d invariant-prefix=%d/%d certified=%t digest=%s\n",
		braced(p.Entries), len(p.Phases), p.InvariantPrefix, len(p.Phases),
		p.Certified, p.Digest)
	if p.Refused {
		fmt.Fprintf(&b, "  REFUSED: %s\n", strings.Join(p.Reasons, ", "))
	}
	for _, ph := range p.Phases {
		verdict := "invariant"
		if !ph.Invariant {
			verdict = "varies"
		}
		loc := ""
		if ph.Kind != KindBuild {
			loc = fmt.Sprintf(" %s:%d stmts=%d", ph.Fn, ph.Line, ph.Stmts)
		}
		fmt.Fprintf(&b, "  [%d] %-18s %-9s%s chain=%s\n", ph.Index, ph.Name, verdict, loc, ph.Chain)
		if ph.Kind == KindBuild {
			fmt.Fprintf(&b, "      raw heap image; no simulated accesses by construction\n")
			continue
		}
		fmt.Fprintf(&b, "      reads=%s writes=%s allocs=%t sites=migrate:%d,cache:%d parallel=%t\n",
			braced(ph.Reads), braced(ph.Writes), ph.Allocs,
			ph.MigrateSites, ph.CacheSites, ph.Parallel)
		if len(ph.Reasons) > 0 {
			fmt.Fprintf(&b, "      reasons=%s\n", braced(ph.Reasons))
		}
	}
	return b.String()
}

func braced(xs []string) string {
	return "{" + strings.Join(xs, ",") + "}"
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FNV-1a, the same digest the trace and effect certificates use.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}
