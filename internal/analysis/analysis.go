package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Finding is one contract violation, anchored to a source position.
// Severity is optional ("warning" or "error"); producers whose checks
// have a single implicit severity (the vet checks — every finding is a
// violation) leave it empty.
type Finding struct {
	Check    string `json:"check"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Severity string `json:"severity,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Check)
}

// Checks is the registry, in reporting order.
var Checks = []struct {
	Name string
	Fn   func(*Package) []Finding
}{
	{"thread-capture", checkThreadCapture},
	{"site-hygiene", checkSiteHygiene},
	{"future-discipline", checkFutureDiscipline},
	{"heap-escape", checkHeapEscape},
	{"mechanism-consistency", checkMechConsistency},
	{"cert-trace", checkCertTrace},
	{"phase-trace", checkPhaseTrace},
}

// Run applies every check to every package and returns the findings
// sorted by position.
func Run(pkgs []*Package) []Finding {
	warmObservations(pkgs)
	var all []Finding
	for _, p := range pkgs {
		for _, c := range Checks {
			all = append(all, c.Fn(p)...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return all
}

func (p *Package) finding(check string, pos token.Pos, format string, args ...any) Finding {
	ps := p.Fset.Position(pos)
	return Finding{
		Check:   check,
		File:    ps.Filename,
		Line:    ps.Line,
		Col:     ps.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// mod returns the module path the runtime packages live under,
// defaulting to "repro" if the loader could not determine one.
func (p *Package) mod() string {
	if p.Mod != "" {
		return p.Mod
	}
	return "repro"
}

// unitPath is the unit's import path with the external-test suffix
// stripped, for allowlist matching.
func (p *Package) unitPath() string {
	return strings.TrimSuffix(p.Path, "_test")
}

// rtFunc reports whether obj is the function name exported by the
// runtime package (or its public re-export in package olden).
func (p *Package) rtFunc(obj types.Object, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == p.mod()+"/internal/rt" || path == p.mod()+"/olden"
}

// calleeFunc resolves a call expression to the function object it
// invokes, looking through explicit generic instantiations.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = f.X
	case *ast.IndexListExpr:
		fun = f.X
	}
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isSpawn reports whether call invokes rt.Spawn (or olden.Spawn).
func (p *Package) isSpawn(call *ast.CallExpr) bool {
	return p.rtFunc(p.calleeFunc(call), "Spawn")
}

// namedFrom reports whether t is (a pointer to) the named type
// pkgSuffix.name, where pkgSuffix is relative to the module root.
// Type identity is by package path and name, not pointer identity,
// because each typechecked unit has its own object graph.
func (p *Package) namedFrom(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		obj.Pkg().Path() == p.mod()+"/"+pkgSuffix
}

// walkStack is ast.Inspect with an ancestor stack: fn receives each node
// together with its ancestors, stack[len(stack)-1] being the parent.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
