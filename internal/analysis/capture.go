package analysis

import "go/ast"

// checkThreadCapture flags uses of the parent thread inside a Spawn
// closure.  An rt.Thread is confined to the goroutine running it; the
// closure passed to Spawn executes on the child thread's goroutine, so
// touching the parent *rt.Thread there is a data race on the simulated
// clock (and deadlocks the virtual-time scheduler).  The closure must
// use its own *rt.Thread parameter.
func checkThreadCapture(p *Package) []Finding {
	var fs []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 || !p.isSpawn(call) {
				return true
			}
			parent, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return true
			}
			pobj := p.Info.Uses[parent]
			if pobj == nil {
				return true
			}
			body, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(body.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == pobj {
					fs = append(fs, p.finding("thread-capture", id.Pos(),
						"parent thread %q used inside Spawn closure; use the closure's own *rt.Thread parameter", id.Name))
				}
				return true
			})
			return true
		})
	}
	return fs
}
