// Package coherence implements the three cache-coherence schemes of the
// paper's Appendix A on top of the software cache:
//
//   - LocalKnowledge — the scheme used in the main text: each processor
//     invalidates its entire cache on receiving a migration; on receiving a
//     *return*, it invalidates only lines homed on processors the returning
//     thread wrote. No coherence messages at all.
//   - GlobalKnowledge — an adaptation of eager release consistency: the
//     compiler tracks writes at line granularity (a dirty-bit vector per
//     page); the home tracks sharers at page granularity; each outgoing
//     migration (a release) sends line-grained invalidations to the sharers
//     and collects acknowledgements.
//   - Bilateral — no sharer tracking; the home keeps a timestamp per page,
//     bumped at each release that wrote the page. A migration receive marks
//     all cached pages stale; the first access to a stale page asks the
//     home which lines changed since the cached timestamp.
//
// All three provide release consistency with respect to Olden's "virtual
// locks" (one per migration), which — given that futures guarantee
// non-interference — yields the same semantics as sequential consistency.
package coherence

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/cache"
	"repro/internal/gaddr"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Kind selects one of the three schemes.
type Kind int

const (
	// LocalKnowledge is the paper's default scheme (fastest overall).
	LocalKnowledge Kind = iota
	// GlobalKnowledge is eager release consistency with sharer tracking.
	GlobalKnowledge
	// Bilateral combines local and global knowledge via timestamps.
	Bilateral
)

// String names the scheme as in Table 3.
func (k Kind) String() string {
	switch k {
	case LocalKnowledge:
		return "local"
	case GlobalKnowledge:
		return "global"
	case Bilateral:
		return "bilateral"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// TracksWrites reports whether the scheme pays per-write tracking overhead
// (Appendix A: 7 instructions for non-shared pages, 23 for shared).
func (k Kind) TracksWrites() bool { return k != LocalKnowledge }

// Kinds lists every scheme in definition order — the enumeration the CLIs
// and the serving layer share so flag parsing can never drift from the
// simulator.
func Kinds() []Kind { return []Kind{LocalKnowledge, GlobalKnowledge, Bilateral} }

// Parse maps a scheme name (as printed by Kind.String) back to its Kind.
func Parse(s string) (Kind, error) {
	for _, k := range Kinds() {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("coherence: unknown scheme %q (want local, global or bilateral)", s)
}

// pageDir is the home-side state for one page.
type pageDir struct {
	sharers    uint64                     // processors caching the page (global)
	stamp      uint32                     // page timestamp (bilateral)
	lineStamp  [gaddr.LinesPerPage]uint32 // stamp at each line's last release-write (bilateral)
	everCached bool                       // page has been cached by someone ⇒ "shared"
}

// directory is one processor's home-side page table.
type directory struct {
	mu    sync.Mutex
	pages map[gaddr.PageID]*pageDir
}

func (d *directory) get(p gaddr.PageID) *pageDir {
	pd := d.pages[p]
	if pd == nil {
		pd = &pageDir{}
		d.pages[p] = pd
	}
	return pd
}

// DirtySet is the writer-side write-tracking state a thread accumulates
// between releases: for each page written, the mask of dirtied lines.
type DirtySet map[gaddr.PageID]uint32

// Add records a write to the line containing g.
func (ds DirtySet) Add(g gaddr.GP) {
	ds[gaddr.PageOf(g)] |= 1 << uint(gaddr.LineOf(g))
}

// SortedPages returns the dirtied pages in ascending order. Release
// processing must iterate in this order, not Go's randomized map order:
// the order in which per-page invalidations go out determines when each
// sharer is occupied and when acknowledgement waits accrue, so a random
// order would make processor clocks — and the event trace — differ from
// run to run.
func (ds DirtySet) SortedPages() []gaddr.PageID {
	pages := make([]gaddr.PageID, 0, len(ds))
	for p := range ds {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// Engine runs one coherence scheme for a whole machine.
type Engine struct {
	kind   Kind
	m      *machine.Machine
	caches []*cache.Cache
	dirs   []*directory

	// Registry-backed protocol meters, labelled with the scheme so runs
	// under different schemes dump distinguishable series. All handles
	// are nil when the machine carries no registry (the nil-safe
	// disabled state).
	mLinesInval *metrics.Counter
	mAckWaits   *metrics.Counter
	mMsgInval   *metrics.Counter
	mMsgAck     *metrics.Counter
	mMsgStamp   *metrics.Counter
	mMsgFlush   *metrics.Counter
	mMsgHome    *metrics.Counter
	mMsgStale   *metrics.Counter
}

// New wires an engine to the machine and the per-processor caches
// (caches[i] belongs to processor i). The machine's metrics registry, when
// attached, receives the engine's per-scheme protocol counters.
func New(kind Kind, m *machine.Machine, caches []*cache.Cache) *Engine {
	if len(caches) != m.P() {
		panic("coherence: one cache per processor required")
	}
	e := &Engine{kind: kind, m: m, caches: caches}
	for i := 0; i < m.P(); i++ {
		e.dirs = append(e.dirs, &directory{pages: map[gaddr.PageID]*pageDir{}})
	}
	reg := m.Metrics
	scheme := metrics.L("scheme", kind.String())
	msg := func(typ string) *metrics.Counter {
		return reg.Counter("olden_protocol_messages_total", scheme, metrics.L("type", typ))
	}
	e.mLinesInval = reg.Counter("olden_lines_invalidated_total", scheme)
	e.mAckWaits = reg.Counter("olden_ack_round_trips_total", scheme)
	e.mMsgInval = msg("inval")
	e.mMsgAck = msg("ack")
	e.mMsgStamp = msg("stamp_check")
	e.mMsgFlush = msg("full_flush")
	e.mMsgHome = msg("home_flush")
	e.mMsgStale = msg("mark_stale")
	return e
}

// Kind returns the scheme in use.
func (e *Engine) Kind() Kind { return e.kind }

// RegisterSharer records, at the page's home, that processor sharer now
// caches the page. Called on every line fetch.
func (e *Engine) RegisterSharer(p gaddr.PageID, sharer int) {
	d := e.dirs[p.Proc()]
	d.mu.Lock()
	pd := d.get(p)
	pd.everCached = true
	if e.kind == GlobalKnowledge {
		pd.sharers |= 1 << uint(sharer)
	}
	d.mu.Unlock()
}

// WriteTrackCost returns the per-write instrumentation cost for a write to
// the page containing g: zero for local knowledge, else 7 cycles for a
// non-shared page and 23 for a shared one.
func (e *Engine) WriteTrackCost(g gaddr.GP) int64 {
	if !e.kind.TracksWrites() {
		return 0
	}
	p := gaddr.PageOf(g)
	d := e.dirs[p.Proc()]
	d.mu.Lock()
	pd := d.pages[p]
	shared := pd != nil && pd.everCached
	d.mu.Unlock()
	if shared {
		return e.m.Cost.WriteTrackShared
	}
	return e.m.Cost.WriteTrackNonShared
}

// OnRelease runs the release half of the protocol when a thread leaves a
// processor (forward migration or return). It consumes the thread's dirty
// set and returns the thread's new clock.
func (e *Engine) OnRelease(src int, now int64, dirty DirtySet) int64 {
	tr := e.m.Tracer
	switch e.kind {
	case GlobalKnowledge:
		for _, p := range dirty.SortedPages() {
			mask := dirty[p]
			d := e.dirs[p.Proc()]
			d.mu.Lock()
			pd := d.pages[p]
			var sharers uint64
			if pd != nil {
				// Sharing is tracked per page, so sharers stay
				// registered even after an invalidation: they may
				// still hold valid copies of *other* lines. (This
				// is why the paper notes the scheme "could cause
				// some spurious invalidation messages".)
				sharers = pd.sharers
			}
			d.mu.Unlock()
			sent := false
			for s := 0; s < e.m.P(); s++ {
				if s == src || sharers&(1<<uint(s)) == 0 {
					continue
				}
				cleared := e.caches[s].InvalidateLines(p, mask)
				// Processing the invalidation occupies the sharer.
				e.m.Procs[s].Occupy(now, e.m.Cost.InvalidateMsg)
				e.m.Stats.Invalidations.Add(1)
				e.mMsgInval.Inc()
				e.mLinesInval.Add(int64(bits.OnesCount32(cleared)))
				sent = true
				if tr != nil {
					tr.Emit(trace.Event{
						Kind: trace.EvLineInval, T: now,
						P: int16(s), Tid: -1, Site: -1, Line: -1,
						Page: uint32(p), Arg: int64(cleared),
					})
				}
			}
			if sent {
				// The release completes only after acknowledgements
				// are collected.
				if tr != nil {
					tr.Emit(trace.Event{
						Kind: trace.EvInvalAck, T: now, Dur: e.m.Cost.InvalidateAck,
						P: int16(src), Tid: -1, Site: -1, Line: -1,
						Page: uint32(p),
					})
				}
				now += e.m.Cost.InvalidateAck
				e.mMsgAck.Inc()
				e.mAckWaits.Inc()
			}
		}
	case Bilateral:
		for _, p := range dirty.SortedPages() {
			mask := dirty[p]
			d := e.dirs[p.Proc()]
			d.mu.Lock()
			pd := d.get(p)
			pd.stamp++
			for l := 0; l < gaddr.LinesPerPage; l++ {
				if mask&(1<<uint(l)) != 0 {
					pd.lineStamp[l] = pd.stamp
				}
			}
			d.mu.Unlock()
		}
	}
	return now
}

// OnAcquire runs the acquire half when a thread arrives at processor dst.
// isReturn selects the refined local-knowledge rule; writtenProcs is the
// set (bitmask) of processors whose memories the returning thread wrote.
// It returns the thread's new clock.
func (e *Engine) OnAcquire(dst int, now int64, isReturn bool, writtenProcs uint64) int64 {
	tr := e.m.Tracer
	switch e.kind {
	case LocalKnowledge:
		if isReturn {
			if writtenProcs != 0 {
				lines := e.caches[dst].InvalidateHomes(writtenProcs)
				e.mMsgHome.Inc()
				e.mLinesInval.Add(int64(lines))
				if tr != nil {
					tr.Emit(trace.Event{
						Kind: trace.EvHomeFlush, T: now,
						P: int16(dst), Tid: -1, Site: -1, Line: -1,
						Arg: int64(lines),
					})
				}
				now = e.m.Procs[dst].Occupy(now, e.m.Cost.FlushAll)
			}
		} else {
			lines := e.caches[dst].InvalidateAll()
			e.m.Stats.FullFlushes.Add(1)
			e.mMsgFlush.Inc()
			e.mLinesInval.Add(int64(lines))
			if tr != nil {
				tr.Emit(trace.Event{
					Kind: trace.EvFullFlush, T: now,
					P: int16(dst), Tid: -1, Site: -1, Line: -1,
					Arg: int64(lines),
				})
			}
			now = e.m.Procs[dst].Occupy(now, e.m.Cost.FlushAll)
		}
	case GlobalKnowledge:
		// Invalidations were pushed eagerly at the release.
	case Bilateral:
		pages := e.caches[dst].MarkAllStale()
		e.mMsgStale.Inc()
		if tr != nil {
			tr.Emit(trace.Event{
				Kind: trace.EvMarkStale, T: now,
				P: int16(dst), Tid: -1, Site: -1, Line: -1,
				Arg: int64(pages),
			})
		}
		now = e.m.Procs[dst].Occupy(now, e.m.Cost.FlushAll)
	}
	return now
}

// StaleCheck performs the bilateral scheme's timestamp round trip for a
// stale entry cached at processor requester: it asks the home which lines
// changed since the entry's stamp, refreshes the entry, and returns the
// thread's new clock. The home service occupies the home processor.
func (e *Engine) StaleCheck(entry *cache.Entry, requester int, now int64) int64 {
	if e.kind != Bilateral {
		panic("coherence: StaleCheck outside the bilateral scheme")
	}
	p := entry.Page
	home := e.m.Procs[p.Proc()]
	now += e.m.Cost.StampRequest
	now = home.Occupy(now, e.m.Cost.StampService)
	d := e.dirs[p.Proc()]
	d.mu.Lock()
	pd := d.get(p)
	var changed uint32
	for l := 0; l < gaddr.LinesPerPage; l++ {
		if pd.lineStamp[l] > entry.Stamp {
			changed |= 1 << uint(l)
		}
	}
	newStamp := pd.stamp
	d.mu.Unlock()
	lines := e.caches[requester].Refresh(entry, changed, newStamp)
	e.m.Stats.StampChecks.Add(1)
	e.mMsgStamp.Inc()
	e.mLinesInval.Add(int64(lines))
	return now + e.m.Cost.StampReply
}

// Sharers reports the home-side sharer mask for a page (testing aid).
func (e *Engine) Sharers(p gaddr.PageID) uint64 {
	d := e.dirs[p.Proc()]
	d.mu.Lock()
	defer d.mu.Unlock()
	if pd := d.pages[p]; pd != nil {
		return pd.sharers
	}
	return 0
}

// Stamp reports the home-side timestamp for a page (testing aid).
func (e *Engine) Stamp(p gaddr.PageID) uint32 {
	d := e.dirs[p.Proc()]
	d.mu.Lock()
	defer d.mu.Unlock()
	if pd := d.pages[p]; pd != nil {
		return pd.stamp
	}
	return 0
}
