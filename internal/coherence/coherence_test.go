package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/gaddr"
	"repro/internal/machine"
)

func setup(t *testing.T, kind Kind, procs int) (*Engine, *machine.Machine, []*cache.Cache) {
	t.Helper()
	m := machine.New(machine.Config{Procs: procs, HeapBytesPerProc: 1 << 20})
	caches := make([]*cache.Cache, procs)
	for i := range caches {
		caches[i] = cache.New()
	}
	return New(kind, m, caches), m, caches
}

func install(c *cache.Cache, g gaddr.GP) *cache.Entry {
	e, _, _ := c.Probe(g)
	c.InstallLine(e, gaddr.LineOf(g), make([]uint64, gaddr.WordsPerLine))
	return e
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{LocalKnowledge: "local", GlobalKnowledge: "global", Bilateral: "bilateral"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if LocalKnowledge.TracksWrites() || !GlobalKnowledge.TracksWrites() || !Bilateral.TracksWrites() {
		t.Fatal("write tracking flags wrong")
	}
}

func TestLocalAcquireFlushesAll(t *testing.T) {
	e, _, caches := setup(t, LocalKnowledge, 2)
	g := gaddr.Pack(0, gaddr.PageBytes)
	ent := install(caches[1], g)
	e.OnAcquire(1, 0, false, 0)
	if ent.Valid != 0 {
		t.Fatal("migration receive must invalidate the whole cache")
	}
}

func TestLocalReturnInvalidatesOnlyWrittenHomes(t *testing.T) {
	e, _, caches := setup(t, LocalKnowledge, 4)
	g0 := gaddr.Pack(0, gaddr.PageBytes)
	g2 := gaddr.Pack(2, gaddr.PageBytes)
	e0 := install(caches[1], g0)
	e2 := install(caches[1], g2)
	e.OnAcquire(1, 0, true, 1<<2) // thread returning to 1 wrote processor 2's memory
	if e0.Valid == 0 {
		t.Fatal("lines homed on unwritten processors must survive a return")
	}
	if e2.Valid != 0 {
		t.Fatal("lines homed on written processors must be invalidated")
	}
}

func TestLocalReturnNoWritesIsFree(t *testing.T) {
	e, m, caches := setup(t, LocalKnowledge, 2)
	install(caches[1], gaddr.Pack(0, gaddr.PageBytes))
	now := e.OnAcquire(1, 123, true, 0)
	if now != 123 {
		t.Fatalf("return with empty write set should cost nothing, now=%d", now)
	}
	if m.Procs[1].Busy() != 0 {
		t.Fatal("no work should be charged")
	}
}

func TestGlobalReleaseInvalidatesSharers(t *testing.T) {
	e, m, caches := setup(t, GlobalKnowledge, 4)
	g := gaddr.Pack(0, gaddr.PageBytes)
	p := gaddr.PageOf(g)
	// Processors 1 and 3 cache the page.
	e1 := install(caches[1], g)
	e3 := install(caches[3], g)
	e.RegisterSharer(p, 1)
	e.RegisterSharer(p, 3)
	if e.Sharers(p) != 1<<1|1<<3 {
		t.Fatalf("sharers = %#x", e.Sharers(p))
	}
	// A thread on processor 1 wrote line 0 and releases.
	dirty := DirtySet{}
	dirty.Add(g)
	now := e.OnRelease(1, 0, dirty)
	if now < m.Cost.InvalidateAck {
		t.Fatalf("release must wait for acks, now=%d", now)
	}
	if e1.Valid == 0 {
		t.Fatal("the writer keeps its own (current) copy")
	}
	if e3.Valid != 0 {
		t.Fatal("other sharers must lose the dirty line")
	}
	if m.Stats.Invalidations.Load() != 1 {
		t.Fatalf("invalidations = %d", m.Stats.Invalidations.Load())
	}
	if e.Sharers(p)&(1<<3) == 0 {
		t.Fatal("sharers stay registered: they may hold other valid lines of the page")
	}
	// Acquire at the destination is free under global knowledge.
	if got := e.OnAcquire(2, 50, false, 0); got != 50 {
		t.Fatalf("global acquire must be free, got %d", got)
	}
}

func TestGlobalSpuriousLineInvalidation(t *testing.T) {
	// Sharing is tracked per page, so a sharer caching only line 5 still
	// receives an invalidation for line 0 (it is simply ineffective) —
	// the paper's "spurious invalidation messages".
	e, m, caches := setup(t, GlobalKnowledge, 2)
	base := gaddr.Pack(0, gaddr.PageBytes)
	other := base.Add(5 * gaddr.LineBytes)
	ent := install(caches[1], other)
	e.RegisterSharer(gaddr.PageOf(base), 1)
	dirty := DirtySet{}
	dirty.Add(base) // line 0 dirty
	e.OnRelease(0, 0, dirty)
	if m.Stats.Invalidations.Load() != 1 {
		t.Fatal("a spurious invalidation message must still be sent")
	}
	if ent.Valid != 1<<5 {
		t.Fatalf("line 5 must survive, valid=%#x", ent.Valid)
	}
}

func TestBilateralStampsAndStaleCheck(t *testing.T) {
	e, m, caches := setup(t, Bilateral, 2)
	g := gaddr.Pack(0, gaddr.PageBytes)
	p := gaddr.PageOf(g)
	ent := install(caches[1], g)
	install(caches[1], g.Add(3*gaddr.LineBytes))
	e.RegisterSharer(p, 1)

	// Writer on processor 1 dirties line 0, releases: stamp bumps.
	dirty := DirtySet{}
	dirty.Add(g)
	e.OnRelease(1, 0, dirty)
	if e.Stamp(p) != 1 {
		t.Fatalf("stamp = %d", e.Stamp(p))
	}
	// Receive at processor 1: everything goes stale.
	e.OnAcquire(1, 0, false, 0)
	if !ent.Stale {
		t.Fatal("entry must be stale after acquire")
	}
	// Stale check: line 0 changed since stamp 0, line 3 did not.
	now := e.StaleCheck(ent, 1, 0)
	if now < m.Cost.StampRequest+m.Cost.StampService+m.Cost.StampReply {
		t.Fatalf("stale check underpriced: %d", now)
	}
	if ent.Stale {
		t.Fatal("stale mark must clear")
	}
	if ent.Valid&1 != 0 {
		t.Fatal("changed line must be invalidated")
	}
	if ent.Valid&(1<<3) == 0 {
		t.Fatal("unchanged line must stay valid")
	}
	if ent.Stamp != 1 {
		t.Fatalf("entry stamp = %d", ent.Stamp)
	}
	if m.Stats.StampChecks.Load() != 1 {
		t.Fatal("stamp check not counted")
	}
	// A second stale check after an idle release sees nothing new.
	e.OnRelease(1, 0, DirtySet{})
	e.OnAcquire(1, 0, false, 0)
	e.StaleCheck(ent, 1, 0)
	if ent.Valid&(1<<3) == 0 {
		t.Fatal("unchanged lines must survive repeated checks")
	}
}

func TestWriteTrackCost(t *testing.T) {
	g := gaddr.Pack(0, gaddr.PageBytes)
	for _, kind := range []Kind{GlobalKnowledge, Bilateral} {
		e, m, _ := setup(t, kind, 2)
		if got := e.WriteTrackCost(g); got != m.Cost.WriteTrackNonShared {
			t.Fatalf("%v: non-shared cost = %d", kind, got)
		}
		e.RegisterSharer(gaddr.PageOf(g), 1)
		if got := e.WriteTrackCost(g); got != m.Cost.WriteTrackShared {
			t.Fatalf("%v: shared cost = %d", kind, got)
		}
	}
	e, _, _ := setup(t, LocalKnowledge, 2)
	if e.WriteTrackCost(g) != 0 {
		t.Fatal("local knowledge does not track writes")
	}
}

func TestStaleCheckPanicsOutsideBilateral(t *testing.T) {
	e, _, caches := setup(t, LocalKnowledge, 1)
	ent := install(caches[0], gaddr.Pack(0, gaddr.PageBytes))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.StaleCheck(ent, 0, 0)
}
