package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func ev(k Kind, t int64) Event {
	return Event{Kind: k, T: t, Site: -1, Tid: -1, P: -1, Line: -1}
}

func TestRingWrap(t *testing.T) {
	r := New(4)
	for i := int64(0); i < 6; i++ {
		r.Emit(ev(EvCacheHit, i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	got := r.Events()
	for i, e := range got {
		if want := int64(i + 2); e.T != want {
			t.Errorf("event %d has T=%d, want %d (oldest-first after wrap)", i, e.T, want)
		}
	}
}

func TestResetKeepsSites(t *testing.T) {
	r := New(8)
	id := r.SiteID("treeadd.node")
	r.Emit(ev(EvCacheMiss, 1))
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	if got := r.SiteID("treeadd.node"); got != id {
		t.Errorf("site id changed across Reset: %d -> %d", id, got)
	}
	if name := r.SiteName(id); name != "treeadd.node" {
		t.Errorf("SiteName(%d) = %q", id, name)
	}
}

func TestSiteInterning(t *testing.T) {
	r := New(8)
	a := r.SiteID("a")
	b := r.SiteID("b")
	if a == b {
		t.Fatalf("distinct names share id %d", a)
	}
	if got := r.SiteID("a"); got != a {
		t.Errorf("re-interning %q gave %d, want %d", "a", got, a)
	}
	if name := r.SiteName(-1); name != "" {
		t.Errorf("SiteName(-1) = %q, want empty", name)
	}
	if sites := r.Sites(); len(sites) != 2 || sites[0] != "a" || sites[1] != "b" {
		t.Errorf("Sites() = %v", sites)
	}
}

func TestDigestStability(t *testing.T) {
	mk := func() *Recorder {
		r := New(16)
		r.Emit(Event{Kind: EvMigrate, T: 10, Dur: 5, Arg: 2, P: 0, Tid: 1, Site: 0, Line: -1})
		r.Emit(Event{Kind: EvCacheMiss, T: 20, Dur: 40, Page: 4096, P: 2, Tid: 1, Site: 1, Line: 3})
		return r
	}
	d1, d2 := mk().Digest(), mk().Digest()
	if d1 != d2 {
		t.Fatalf("identical traces digest differently:\n%s\n%s", d1, d2)
	}
	r3 := mk()
	r3.Emit(ev(EvThreadEnd, 30))
	if d3 := r3.Digest(); d3.Hash == d1.Hash {
		t.Errorf("extra event did not change hash %016x", d1.Hash)
	}
	if d1.Events != 2 || d1.Counts[EvMigrate] != 1 || d1.Counts[EvCacheMiss] != 1 {
		t.Errorf("counts wrong: %+v", d1)
	}
}

// TestDigestFoldsDrops pins that a wrapped ring cannot collide with an
// unwrapped ring holding the same surviving events.
func TestDigestFoldsDrops(t *testing.T) {
	wrapped := New(2)
	for i := int64(0); i < 4; i++ {
		wrapped.Emit(ev(EvCacheHit, i))
	}
	plain := New(4)
	plain.Emit(ev(EvCacheHit, 2))
	plain.Emit(ev(EvCacheHit, 3))
	dw, dp := wrapped.Digest(), plain.Digest()
	if dw.Dropped != 2 || dp.Dropped != 0 {
		t.Fatalf("drop counts: wrapped=%d plain=%d", dw.Dropped, dp.Dropped)
	}
	if dw.Hash == dp.Hash {
		t.Errorf("wrapped and unwrapped rings with the same suffix collide at %016x", dw.Hash)
	}
}

// TestAccessDigest pins the access projection's three defining properties:
// protocol events are invisible, timing is invisible, and order is
// invisible — while the multiset of semantic access events is not.
func TestAccessDigest(t *testing.T) {
	hit := Event{Kind: EvCacheHit, T: 10, Page: 4096, Site: 1, Tid: 0, P: 1, Line: 2}
	miss := Event{Kind: EvCacheMiss, T: 20, Dur: 44, Page: 8192, Site: 2, Tid: 0, P: 1, Line: 0}

	base := New(16)
	base.Emit(hit)
	base.Emit(miss)
	want := base.AccessDigest()
	if want.Events != 2 || want.Counts[EvCacheHit] != 1 || want.Counts[EvCacheMiss] != 1 {
		t.Fatalf("access counts wrong: %+v", want)
	}

	// Protocol events (flush, inval, ack, stamp, stale) must not perturb it.
	proto := New(16)
	proto.Emit(hit)
	proto.Emit(Event{Kind: EvFullFlush, T: 15, Arg: 7, P: 1, Site: -1, Line: -1})
	proto.Emit(Event{Kind: EvLineInval, T: 16, Arg: 3, Page: 4096, P: 2, Site: -1, Line: -1})
	proto.Emit(Event{Kind: EvMarkStale, T: 17, Arg: 4, P: 1, Site: -1, Line: -1})
	proto.Emit(miss)
	if got := proto.AccessDigest(); got != want {
		t.Errorf("protocol events leaked into access digest:\n got %s\nwant %s", got, want)
	}

	// Timing shifts (a different coherence scheme's clock) must not either.
	late := New(16)
	h2, m2 := hit, miss
	h2.T, m2.T, m2.Dur = 900, 1000, 80
	late.Emit(h2)
	late.Emit(m2)
	if got := late.AccessDigest(); got != want {
		t.Errorf("timing leaked into access digest:\n got %s\nwant %s", got, want)
	}

	// Nor must emission order: the digest is over the event multiset.
	rev := New(16)
	rev.Emit(miss)
	rev.Emit(hit)
	if got := rev.AccessDigest(); got != want {
		t.Errorf("order leaked into access digest:\n got %s\nwant %s", got, want)
	}

	// But a genuinely different access (another page) must change it.
	other := New(16)
	h3 := hit
	h3.Page = 12288
	other.Emit(h3)
	other.Emit(miss)
	if got := other.AccessDigest(); got.Hash == want.Hash {
		t.Errorf("different page collided at %016x", got.Hash)
	}

	if IsAccessKind(EvLineInval) || IsAccessKind(EvFullFlush) || !IsAccessKind(EvMigrate) {
		t.Error("IsAccessKind misclassifies protocol/semantic kinds")
	}
}

func TestDigestString(t *testing.T) {
	r := New(8)
	r.Emit(ev(EvMigrate, 1))
	r.Emit(ev(EvMigrate, 2))
	r.Emit(ev(EvFutureTouch, 3))
	got := r.Digest().String()
	want := "events=3 dropped=0 hash="
	if len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("digest string %q lacks prefix %q", got, want)
	}
	const suffix = " migrate=2,touch=1"
	if got[len(got)-len(suffix):] != suffix {
		t.Errorf("digest string %q lacks per-kind counts %q", got, suffix)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 100, 1000} {
		h.Add(v)
	}
	if h.Count != 6 || h.Sum != 1106 || h.Max != 1000 {
		t.Fatalf("histogram totals: %+v", h)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Errorf("p100 bound %d below max 1000", q)
	}
	if q := h.Quantile(0.5); q > 8 {
		t.Errorf("p50 bound %d implausibly high for %v", q, h.Buckets)
	}
	var neg Histogram
	neg.Add(-5)
	if neg.Sum != 0 || neg.Count != 1 {
		t.Errorf("negative values should clamp to zero: %+v", neg)
	}
}

func TestProfileAggregation(t *testing.T) {
	r := New(64)
	hot := r.SiteID("hot")
	cold := r.SiteID("cold")
	r.Emit(Event{Kind: EvCacheMiss, T: 0, Dur: 50, Page: 2048, Site: hot, Tid: 0, P: 1, Line: 0})
	r.Emit(Event{Kind: EvCacheMiss, T: 60, Dur: 70, Page: 2048, Site: hot, Tid: 0, P: 1, Line: 1})
	r.Emit(Event{Kind: EvCacheHit, T: 130, Page: 2048, Site: cold, Tid: 0, P: 1, Line: 0})
	r.Emit(Event{Kind: EvMigrate, T: 140, Dur: 10, Arg: 3, Site: cold, Tid: 0, P: 1, Line: -1})
	r.Emit(Event{Kind: EvLineInval, T: 150, Arg: 0b101, Page: 2048, P: 2, Tid: -1, Line: -1})
	p := r.Profile()
	if len(p.Sites) != 2 || p.Sites[0].Site != "hot" {
		t.Fatalf("sites not sorted by misses: %+v", p.Sites)
	}
	if p.Sites[0].Misses != 2 || p.Sites[0].MissLatency.Max != 70 {
		t.Errorf("hot site aggregation wrong: %+v", p.Sites[0])
	}
	if p.Sites[1].Migrations != 1 || p.Sites[1].FanOut[3] != 1 {
		t.Errorf("cold site migration fan-out wrong: %+v", p.Sites[1])
	}
	if len(p.Pages) != 1 {
		t.Fatalf("pages: %+v", p.Pages)
	}
	pg := p.Pages[0]
	if pg.Hits != 1 || pg.Misses != 2 || pg.InvalMsgs != 1 || pg.InvalLines != 2 {
		t.Errorf("page aggregation wrong: %+v", pg)
	}
	if p.Migrations != 1 {
		t.Errorf("global migration count %d", p.Migrations)
	}
	if s := p.Format(10); s == "" {
		t.Error("Format returned nothing")
	}
}

// TestWriteChromeValidJSON pins that the exporter emits well-formed Chrome
// trace_event JSON with the expected phase vocabulary.
func TestWriteChromeValidJSON(t *testing.T) {
	r := New(64)
	s := r.SiteID("site")
	r.Emit(Event{Kind: EvThreadStart, T: 0, Tid: 1, P: -1, Site: -1, Line: -1})
	r.Emit(Event{Kind: EvResidency, T: 0, Dur: 100, P: 0, Tid: 1, Site: -1, Line: -1})
	r.Emit(Event{Kind: EvMigrate, T: 100, Dur: 8, Arg: 2, P: 0, Tid: 1, Site: s, Line: -1})
	r.Emit(Event{Kind: EvCacheMiss, T: 120, Dur: 44, Page: 4096, P: 2, Tid: 1, Site: s, Line: 2})
	r.Emit(Event{Kind: EvFullFlush, T: 130, Arg: 7, P: 2, Tid: 1, Site: -1, Line: -1})
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Pid  *int   `json:"pid"`
			Ts   *int64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "" || e.Pid == nil {
			t.Fatalf("event missing required fields: %+v", e)
		}
		if e.Ph != "M" && e.Ts == nil {
			t.Fatalf("non-metadata event missing ts: %+v", e)
		}
		phases[e.Ph] = true
	}
	for _, want := range []string{"M", "X", "i", "s", "f"} {
		if !phases[want] {
			t.Errorf("no %q-phase events in output (got %v)", want, phases)
		}
	}
}
