package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/gaddr"
)

// WriteChrome renders the trace in the Chrome trace_event JSON format, so
// chrome://tracing or Perfetto (ui.perfetto.dev) displays per-processor
// timelines: thread residency spans, miss and stamp-check latencies, line
// fetches, and migration flow arrows between processors.
//
// Mapping: pid = simulated processor, tid = logical thread, ts/dur =
// simulated cycles rendered as microseconds. Cache hits are omitted (they
// are per-event noise at timeline scale; the profile and digest keep
// them); scheduler start/end bookkeeping events are likewise omitted.
func (r *Recorder) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(obj map[string]any) error {
		b, err := json.Marshal(obj)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	if err := r.EmitChrome(emit); err != nil {
		return err
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// EmitChrome streams the trace's Chrome trace_event objects — metadata
// first, then one object per renderable event — through emit. It is the
// body of WriteChrome without the JSON envelope, so a caller composing a
// merged export (service spans plus simulation events in one file) can
// interleave these objects into its own traceEvents array.
//
// When the recorder's ring wrapped, a final metadata event named
// "trace_dropped" records how many events were lost, so a truncated
// timeline declares itself instead of silently looking complete.
func (r *Recorder) EmitChrome(emit func(obj map[string]any) error) error {
	events := r.Events()
	sites := r.Sites()

	// Name every processor and thread seen in the trace.
	procs := map[int16]bool{}
	threads := map[[2]int32]bool{} // (pid, tid) pairs
	for _, ev := range events {
		if ev.P < 0 {
			continue
		}
		procs[ev.P] = true
		if ev.Tid >= 0 {
			threads[[2]int32{int32(ev.P), ev.Tid}] = true
		}
	}
	procList := make([]int, 0, len(procs))
	for p := range procs {
		procList = append(procList, int(p))
	}
	sort.Ints(procList)
	for _, p := range procList {
		if err := emit(map[string]any{
			"ph": "M", "name": "process_name", "pid": p,
			"args": map[string]any{"name": fmt.Sprintf("proc %d", p)},
		}); err != nil {
			return err
		}
	}
	threadList := make([][2]int32, 0, len(threads))
	for t := range threads {
		threadList = append(threadList, t)
	}
	sort.Slice(threadList, func(i, j int) bool {
		if threadList[i][0] != threadList[j][0] {
			return threadList[i][0] < threadList[j][0]
		}
		return threadList[i][1] < threadList[j][1]
	})
	for _, t := range threadList {
		if err := emit(map[string]any{
			"ph": "M", "name": "thread_name", "pid": t[0], "tid": t[1],
			"args": map[string]any{"name": fmt.Sprintf("thread %d", t[1])},
		}); err != nil {
			return err
		}
	}
	if dropped := r.Dropped(); dropped > 0 {
		if err := emit(map[string]any{
			"ph": "M", "name": "trace_dropped", "pid": 0,
			"args": map[string]any{"dropped_events": dropped},
		}); err != nil {
			return err
		}
	}

	siteName := func(id int32) string {
		if id >= 0 && int(id) < len(sites) {
			return sites[id]
		}
		return ""
	}
	pageStr := func(p uint32) string { return gaddr.PageID(p).String() }

	flowID := 0
	for _, ev := range events {
		var err error
		switch ev.Kind {
		case EvResidency:
			err = emit(map[string]any{
				"ph": "X", "name": "resident", "cat": "thread",
				"pid": ev.P, "tid": ev.Tid, "ts": ev.T, "dur": ev.Dur,
			})
		case EvMigrate, EvReturn:
			flowID++
			name, cat := "migrate", "migration"
			if ev.Kind == EvReturn {
				name = "return"
			}
			args := map[string]any{"dst": ev.Arg}
			if s := siteName(ev.Site); s != "" {
				args["site"] = s
			}
			if err = emit(map[string]any{
				"ph": "s", "id": flowID, "name": name, "cat": cat,
				"pid": ev.P, "tid": ev.Tid, "ts": ev.T, "args": args,
			}); err == nil {
				err = emit(map[string]any{
					"ph": "f", "bp": "e", "id": flowID, "name": name, "cat": cat,
					"pid": ev.Arg, "tid": ev.Tid, "ts": ev.T + ev.Dur,
				})
			}
		case EvCacheMiss:
			err = emit(map[string]any{
				"ph": "X", "name": "miss " + siteName(ev.Site), "cat": "cache",
				"pid": ev.P, "tid": ev.Tid, "ts": ev.T, "dur": ev.Dur,
				"args": map[string]any{"page": pageStr(ev.Page), "line": ev.Line},
			})
		case EvLineFetch:
			err = emit(map[string]any{
				"ph": "X", "name": "line fetch", "cat": "cache",
				"pid": ev.P, "tid": ev.Tid, "ts": ev.T, "dur": ev.Dur,
				"args": map[string]any{"page": pageStr(ev.Page), "line": ev.Line, "home": ev.Arg},
			})
		case EvStampCheck:
			err = emit(map[string]any{
				"ph": "X", "name": "stamp check", "cat": "coherence",
				"pid": ev.P, "tid": ev.Tid, "ts": ev.T, "dur": ev.Dur,
				"args": map[string]any{"page": pageStr(ev.Page)},
			})
		case EvInvalAck:
			err = emit(map[string]any{
				"ph": "X", "name": "inval ack", "cat": "coherence",
				"pid": ev.P, "tid": ev.Tid, "ts": ev.T, "dur": ev.Dur,
				"args": map[string]any{"page": pageStr(ev.Page)},
			})
		case EvLineInval:
			err = emit(map[string]any{
				"ph": "i", "s": "t", "name": "invalidate", "cat": "coherence",
				"pid": ev.P, "tid": 0, "ts": ev.T,
				"args": map[string]any{"page": pageStr(ev.Page), "cleared": ev.Arg},
			})
		case EvFullFlush, EvHomeFlush, EvMarkStale:
			err = emit(map[string]any{
				"ph": "i", "s": "t", "name": ev.Kind.String(), "cat": "coherence",
				"pid": ev.P, "tid": ev.Tid, "ts": ev.T,
				"args": map[string]any{"arg": ev.Arg},
			})
		case EvFutureSpawn:
			err = emit(map[string]any{
				"ph": "i", "s": "t", "name": "spawn", "cat": "future",
				"pid": ev.P, "tid": ev.Tid, "ts": ev.T,
				"args": map[string]any{"child": ev.Arg},
			})
		case EvFutureTouch:
			err = emit(map[string]any{
				"ph": "X", "name": "touch", "cat": "future",
				"pid": ev.P, "tid": ev.Tid, "ts": ev.T, "dur": ev.Dur,
			})
		}
		if err != nil {
			return err
		}
	}
	return nil
}
