package trace

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/gaddr"
)

// HistBuckets is the number of power-of-two latency buckets a Histogram
// keeps: bucket i counts values in [2^i, 2^(i+1)), with bucket 0 also
// holding zeros.
const HistBuckets = 24

// Histogram is a log2-bucketed latency histogram.
type Histogram struct {
	Buckets [HistBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Add records one value.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b > 0 {
		b--
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the average recorded value.
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// exclusive top of the bucket where the quantile falls.
func (h Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < HistBuckets; i++ {
		seen += h.Buckets[i]
		if seen >= target {
			return 1 << uint(i+1)
		}
	}
	return h.Max
}

// SiteProfile aggregates the trace's view of one dereference site: how its
// cacheable references behaved and where its migrations went.
type SiteProfile struct {
	Site        string
	Hits        int64
	Misses      int64
	MissLatency Histogram
	Migrations  int64
	FanOut      map[int]int64
}

// PageProfile aggregates the trace's view of one cache page.
type PageProfile struct {
	Page        gaddr.PageID
	Hits        int64
	Misses      int64
	Fetches     int64
	InvalMsgs   int64 // invalidation messages delivered for this page
	InvalLines  int64 // lines those messages actually cleared
	StampChecks int64
}

// Profile is the aggregate view of a trace.
type Profile struct {
	Sites []SiteProfile // sorted by misses then migrations, descending
	Pages []PageProfile // sorted by traffic (fetches+invals+stamps), descending

	Migrations  int64
	Returns     int64
	Spawns      int64
	Touches     int64
	TouchWait   Histogram
	MissLatency Histogram

	// Dropped counts events lost to ring wrap-around before aggregation:
	// when non-zero, every figure above is a lower bound on the run.
	Dropped int64
}

// Profile aggregates the recorded events into per-site and per-page
// profiles — the observability layer Table 3's machine-wide statistics
// lack.
func (r *Recorder) Profile() *Profile {
	events := r.Events()
	sites := r.Sites()
	p := &Profile{Dropped: r.Dropped()}
	siteAgg := map[int32]*SiteProfile{}
	pageAgg := map[uint32]*PageProfile{}
	siteOf := func(id int32) *SiteProfile {
		sp := siteAgg[id]
		if sp == nil {
			name := ""
			if id >= 0 && int(id) < len(sites) {
				name = sites[id]
			}
			sp = &SiteProfile{Site: name, FanOut: map[int]int64{}}
			siteAgg[id] = sp
		}
		return sp
	}
	pageOf := func(pg uint32) *PageProfile {
		pp := pageAgg[pg]
		if pp == nil {
			pp = &PageProfile{Page: gaddr.PageID(pg)}
			pageAgg[pg] = pp
		}
		return pp
	}
	for _, ev := range events {
		switch ev.Kind {
		case EvMigrate:
			p.Migrations++
			sp := siteOf(ev.Site)
			sp.Migrations++
			sp.FanOut[int(ev.Arg)]++
		case EvReturn:
			p.Returns++
		case EvFutureSpawn:
			p.Spawns++
		case EvFutureTouch:
			p.Touches++
			p.TouchWait.Add(ev.Dur)
		case EvCacheHit:
			siteOf(ev.Site).Hits++
			pageOf(ev.Page).Hits++
		case EvCacheMiss:
			sp := siteOf(ev.Site)
			sp.Misses++
			sp.MissLatency.Add(ev.Dur)
			p.MissLatency.Add(ev.Dur)
			pageOf(ev.Page).Misses++
		case EvLineFetch:
			pageOf(ev.Page).Fetches++
		case EvLineInval:
			pp := pageOf(ev.Page)
			pp.InvalMsgs++
			pp.InvalLines += int64(bits.OnesCount64(uint64(ev.Arg)))
		case EvStampCheck:
			pageOf(ev.Page).StampChecks++
		}
	}
	for _, sp := range siteAgg {
		p.Sites = append(p.Sites, *sp)
	}
	sort.Slice(p.Sites, func(i, j int) bool {
		a, b := p.Sites[i], p.Sites[j]
		if a.Misses != b.Misses {
			return a.Misses > b.Misses
		}
		if a.Migrations != b.Migrations {
			return a.Migrations > b.Migrations
		}
		return a.Site < b.Site
	})
	for _, pp := range pageAgg {
		p.Pages = append(p.Pages, *pp)
	}
	traffic := func(pp PageProfile) int64 {
		return pp.Fetches + pp.InvalMsgs + pp.StampChecks
	}
	sort.Slice(p.Pages, func(i, j int) bool {
		a, b := p.Pages[i], p.Pages[j]
		if traffic(a) != traffic(b) {
			return traffic(a) > traffic(b)
		}
		return a.Page < b.Page
	})
	return p
}

// Format renders the profile as text, listing at most topN sites and
// pages (topN <= 0 means everything).
func (p *Profile) Format(topN int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "migrations %d, returns %d, spawns %d, touches %d (mean wait %.0f cyc)\n",
		p.Migrations, p.Returns, p.Spawns, p.Touches, p.TouchWait.Mean())
	if p.Dropped > 0 {
		fmt.Fprintf(&sb, "WARNING: ring dropped %d events; all figures are lower bounds\n", p.Dropped)
	}
	if p.MissLatency.Count > 0 {
		fmt.Fprintf(&sb, "miss latency: n=%d mean=%.0f p50<%d p95<%d max=%d cyc\n",
			p.MissLatency.Count, p.MissLatency.Mean(),
			p.MissLatency.Quantile(0.50), p.MissLatency.Quantile(0.95), p.MissLatency.Max)
	}
	sb.WriteString("\nper-site profile:\n")
	fmt.Fprintf(&sb, "%-28s %10s %10s %9s %9s %10s  %s\n",
		"site", "hits", "misses", "mean-lat", "max-lat", "migrations", "fan-out")
	n := 0
	for _, s := range p.Sites {
		if topN > 0 && n >= topN {
			fmt.Fprintf(&sb, "... (%d more sites)\n", len(p.Sites)-n)
			break
		}
		n++
		name := s.Site
		if name == "" {
			name = "(no site)"
		}
		fmt.Fprintf(&sb, "%-28s %10d %10d %9.0f %9d %10d  %s\n",
			name, s.Hits, s.Misses, s.MissLatency.Mean(), s.MissLatency.Max,
			s.Migrations, fanOutString(s.FanOut))
	}
	sb.WriteString("\nper-page profile (by traffic):\n")
	fmt.Fprintf(&sb, "%-16s %5s %10s %10s %8s %10s %10s %8s\n",
		"page", "home", "hits", "misses", "fetches", "inval-msgs", "inval-lines", "stamps")
	n = 0
	for _, pg := range p.Pages {
		if topN > 0 && n >= topN {
			fmt.Fprintf(&sb, "... (%d more pages)\n", len(p.Pages)-n)
			break
		}
		n++
		fmt.Fprintf(&sb, "%-16s %5d %10d %10d %8d %10d %10d %8d\n",
			pg.Page, pg.Page.Proc(), pg.Hits, pg.Misses, pg.Fetches,
			pg.InvalMsgs, pg.InvalLines, pg.StampChecks)
	}
	return sb.String()
}

// fanOutString renders a migration destination histogram compactly, in
// destination order.
func fanOutString(m map[int]int64) string {
	if len(m) == 0 {
		return "-"
	}
	dsts := make([]int, 0, len(m))
	for d := range m {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	parts := make([]string, 0, len(dsts))
	for _, d := range dsts {
		parts = append(parts, fmt.Sprintf("p%d:%d", d, m[d]))
	}
	return strings.Join(parts, " ")
}
