// Package trace is the simulation's event recorder: a low-overhead,
// allocation-conscious ring buffer of typed events stamped with the
// deterministic simulation clock.
//
// The paper's evaluation (§5, Tables 2–4) explains cycle counts in terms of
// mechanism events — who migrated, which reference missed, which
// invalidations were sent — but aggregate counters cannot localize a
// regression to a site or a page. The recorder captures every migration,
// return stub, future spawn/touch, cache hit/miss/fill, line invalidation
// and acknowledgement round trip as a typed Event stamped with
// (processor, simulated clock, thread, site, page/line).
//
// Because every event is emitted by the virtual-time-active thread between
// scheduler hand-offs, the event sequence is a pure function of the program
// and configuration: the same run always yields the same bytes. That makes
// the trace itself a regression artifact — Digest condenses it into a
// stable hash plus per-kind counts that tests can pin.
//
// Recording is off by default (a nil *Recorder); every emit point in the
// machine, runtime, cache and coherence layers guards on the pointer, so
// disabled runs pay one predictable branch and Table 2 numbers are
// unchanged.
package trace

import (
	"sync"
)

// Kind is the type tag of an event.
type Kind uint8

// Event kinds. The order is part of the digest format — append, never
// reorder.
const (
	// EvMigrate is a forward migration: P is the source processor, Arg
	// the destination, T the departure time and Dur the transit (network
	// + receive + acquire) time. Site is the dereference site that
	// triggered it, or -1 for an explicit MigrateTo.
	EvMigrate Kind = iota
	// EvReturn is a return-stub migration (same stamps as EvMigrate).
	EvReturn
	// EvFutureSpawn is a futurecall; Arg is the child's thread id.
	EvFutureSpawn
	// EvFutureTouch is a touch; Dur is the time spent blocked (zero when
	// the future was already resolved).
	EvFutureTouch
	// EvCacheHit is a cacheable remote reference satisfied locally.
	EvCacheHit
	// EvCacheMiss is a remote reference that paid a protocol round trip;
	// Dur is the full miss latency.
	EvCacheMiss
	// EvLineFetch is a 64-byte line transfer; Arg is the home processor
	// and Dur the request/service/reply round trip.
	EvLineFetch
	// EvLineInval is an invalidation message processed by a sharer
	// (global scheme): P is the sharer, Arg the mask of lines actually
	// cleared (zero means the message was spurious).
	EvLineInval
	// EvInvalAck is the acknowledgement wait paid by a releasing
	// processor after sending invalidations for one page.
	EvInvalAck
	// EvStampCheck is a bilateral timestamp round trip; Dur is the
	// request/service/reply latency.
	EvStampCheck
	// EvFullFlush is a local-knowledge whole-cache invalidation on a
	// migration receive; Arg is the number of lines flushed.
	EvFullFlush
	// EvHomeFlush is the refined local-knowledge return invalidation;
	// Arg is the number of valid lines it discarded.
	EvHomeFlush
	// EvMarkStale is the bilateral acquire (mark all cached pages
	// stale); Arg is the number of pages marked.
	EvMarkStale
	// EvResidency is a completed residency span: the thread occupied
	// processor P from T to T+Dur between two migrations (or spawn and
	// finish).
	EvResidency
	// EvThreadStart is a thread registering with the scheduler.
	EvThreadStart
	// EvThreadEnd is a thread leaving the scheduler.
	EvThreadEnd

	numKinds = int(EvThreadEnd) + 1
)

// NumKinds is the number of event kinds (the length of Digest.Counts).
const NumKinds = numKinds

var kindNames = [numKinds]string{
	"migrate", "return", "spawn", "touch", "hit", "miss", "fetch",
	"inval", "ack", "stamp", "flush", "homeflush", "stale",
	"resident", "start", "end",
}

// String names the kind as it appears in digests and profiles.
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "?"
}

// Event is one simulation event. The struct is fixed-size and free of
// pointers so the ring buffer holds events by value and recording never
// allocates after the buffer reaches capacity.
type Event struct {
	T    int64  // simulated clock at the event's start
	Dur  int64  // duration in cycles; zero for instantaneous events
	Arg  int64  // kind-specific argument (see the Kind docs)
	Page uint32 // global page id, zero when not applicable
	Site int32  // interned site id (SiteName), -1 when not applicable
	Tid  int32  // logical thread id, -1 when no thread is involved
	P    int16  // processor, -1 when no processor is involved
	Line int16  // line index within Page, -1 when not applicable
	Kind Kind
}

// DefaultCapacity bounds the ring buffer when New is given no capacity:
// 2^18 events (≈12 MB) keeps full kernels of the default-scale benchmarks
// without drops.
const DefaultCapacity = 1 << 18

// Recorder collects events into a bounded ring. A nil *Recorder is the
// disabled state: emit points must guard on it.
//
// The recorder is internally locked: although the virtual-time scheduler
// serializes emissions logically, the emitting goroutines overlap in real
// time.
type Recorder struct {
	mu      sync.Mutex
	cap     int
	buf     []Event
	next    int // ring write cursor (index into buf once len==cap)
	wrapped bool
	dropped int64

	sites   []string
	siteIDs map[string]int32
}

// New returns a recorder bounded at capacity events (DefaultCapacity when
// capacity <= 0). An explicitly sized recorder preallocates its ring, so
// recording never grows the buffer mid-run; the default-capacity ring
// (≈12 MB) still grows on demand up to the bound, then wraps, dropping
// the oldest events.
func New(capacity int) *Recorder {
	r := &Recorder{cap: capacity, siteIDs: map[string]int32{}}
	if capacity <= 0 {
		r.cap = DefaultCapacity
	} else {
		r.buf = make([]Event, 0, capacity)
	}
	return r
}

// Emit appends one event. When the ring is full the oldest event is
// overwritten and counted as dropped.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next++
		if r.next == r.cap {
			r.next = 0
		}
		r.wrapped = true
		r.dropped++
	}
	r.mu.Unlock()
}

// SiteID interns a site name, assigning ids in first-registration order
// (which the deterministic scheduler makes stable run to run).
func (r *Recorder) SiteID(name string) int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.siteIDs[name]; ok {
		return id
	}
	id := int32(len(r.sites))
	r.sites = append(r.sites, name)
	r.siteIDs[name] = id
	return id
}

// SiteName resolves an interned site id; out-of-range ids (including the
// -1 sentinel) resolve to the empty string.
func (r *Recorder) SiteName(id int32) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || int(id) >= len(r.sites) {
		return ""
	}
	return r.sites[id]
}

// Sites returns the interned site names in id order.
func (r *Recorder) Sites() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.sites))
	copy(out, r.sites)
	return out
}

// Events returns the recorded events oldest-first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsLocked()
}

func (r *Recorder) eventsLocked() []Event {
	if !r.wrapped {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, r.cap)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns the number of events lost to ring wrap-around.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards recorded events (and the drop count) but keeps interned
// site names, so a benchmark's kernel phase can be traced on its own after
// an instrumented build phase.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.wrapped = false
	r.dropped = 0
	r.mu.Unlock()
}
