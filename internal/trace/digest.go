package trace

import (
	"fmt"
	"strings"
)

// Digest condenses a trace into a byte-stable regression artifact: an
// FNV-1a hash over every event's fields (in emission order) plus per-kind
// event counts. Two runs of the same benchmark at the same configuration
// must produce identical digests — any divergence means the simulation
// picked up a real-time or iteration-order dependence.
type Digest struct {
	Events  int64
	Dropped int64
	Hash    uint64
	Counts  [NumKinds]int64
}

// fnv-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// HashEvent folds one event into a running FNV-1a hash.
func HashEvent(h uint64, ev Event) uint64 {
	h = fnvWord(h, uint64(ev.Kind))
	h = fnvWord(h, uint64(ev.T))
	h = fnvWord(h, uint64(ev.Dur))
	h = fnvWord(h, uint64(ev.Arg))
	h = fnvWord(h, uint64(ev.Page))
	h = fnvWord(h, uint64(int64(ev.Site)))
	h = fnvWord(h, uint64(int64(ev.Tid)))
	h = fnvWord(h, uint64(int64(ev.P)))
	h = fnvWord(h, uint64(int64(ev.Line)))
	return h
}

// Digest computes the digest of the currently held events.
func (r *Recorder) Digest() Digest {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := Digest{Dropped: r.dropped, Hash: fnvOffset}
	for _, ev := range r.eventsLocked() {
		d.Events++
		d.Counts[ev.Kind]++
		d.Hash = HashEvent(d.Hash, ev)
	}
	// Fold the drop count in so a wrapped ring cannot collide with an
	// unwrapped one holding the same suffix.
	d.Hash = fnvWord(d.Hash, uint64(d.Dropped))
	return d
}

// accessKinds marks the event kinds that describe the program's semantic
// heap-access behaviour — migrations, future spawns/touches, cache
// hits/misses/fetches, residency spans and thread lifecycle — as opposed
// to coherence-protocol bookkeeping (inval, ack, stamp, flush, homeflush,
// stale), whose very presence is specific to one scheme: the local scheme
// flushes whole caches at migration receives, the global scheme sends
// invalidations, the bilateral scheme stamps and marks stale. A phase
// whose access behaviour is provably independent of the coherence scheme
// must produce the same access events under all three schemes even though
// the protocol events (and therefore the full Digest) differ.
var accessKinds = [NumKinds]bool{
	EvMigrate: true, EvReturn: true, EvFutureSpawn: true, EvFutureTouch: true,
	EvCacheHit: true, EvCacheMiss: true, EvLineFetch: true,
	EvResidency: true, EvThreadStart: true, EvThreadEnd: true,
}

// IsAccessKind reports whether k is part of the access projection.
func IsAccessKind(k Kind) bool { return int(k) < NumKinds && accessKinds[k] }

// hashAccessEvent hashes the scheme-invariant fields of one access
// event: kind, site, page and line. Everything scheduling- or
// timing-dependent is deliberately excluded — the clock (T, Dur) because
// protocol costs legitimately shift it between schemes; the processor
// and thread id, and the argument (a migration's destination), because
// work stealing places the same semantic work differently when protocol
// latencies perturb which processor idles first. What remains is the
// multiset of (what happened, at which site, to which page) — the part a
// cacheability certificate actually speaks about.
func hashAccessEvent(ev Event) uint64 {
	h := uint64(fnvOffset)
	h = fnvWord(h, uint64(ev.Kind))
	h = fnvWord(h, uint64(ev.Page))
	h = fnvWord(h, uint64(int64(ev.Site)))
	h = fnvWord(h, uint64(int64(ev.Line)))
	return h
}

// AccessDigest condenses the trace's access projection into an
// order-insensitive digest: each access event hashes on its own
// (timing-free, see hashAccessEvent) and the hashes combine by modular
// addition, so two traces agree exactly when they contain the same
// multiset of access events — regardless of how protocol timing
// interleaved them. This is the runtime half of the cacheability
// certificates in internal/analysis/effects: a phase the static analysis
// certifies as coherence-scheme-independent must produce byte-identical
// AccessDigests under all three schemes, and the oldenvet
// certificate-trace check enforces exactly that on the pinned kernels.
func (r *Recorder) AccessDigest() Digest {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := Digest{Dropped: r.dropped}
	for _, ev := range r.eventsLocked() {
		if !accessKinds[ev.Kind] {
			continue
		}
		d.Events++
		d.Counts[ev.Kind]++
		d.Hash += hashAccessEvent(ev)
	}
	d.Hash = fnvWord(d.Hash, uint64(d.Dropped))
	return d
}

// String renders the digest in the pinned golden format:
//
//	events=N dropped=D hash=0123456789abcdef kind=count,kind=count,...
//
// Only kinds with nonzero counts appear, in Kind order.
func (d Digest) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "events=%d dropped=%d hash=%016x", d.Events, d.Dropped, d.Hash)
	sep := " "
	for k := 0; k < NumKinds; k++ {
		if d.Counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%s%s=%d", sep, Kind(k), d.Counts[k])
		sep = ","
	}
	return sb.String()
}
