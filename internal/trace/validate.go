package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// ChromeStats summarizes a validated Chrome trace_event file: what kinds
// of events it holds and which processes emitted them. Tests and the
// smoke script use it to require properties beyond well-formedness —
// e.g. "the merged export must contain both service spans and
// simulation events".
type ChromeStats struct {
	Events   int            // renderable (non-metadata) events
	Metadata int            // ph:"M" metadata events
	ByPhase  map[string]int // count per ph value
	ByCat    map[string]int // count per cat value
	ByPid    map[int64]int  // count per pid (renderable events only)
	// DroppedEvents is the value declared by a "trace_dropped" metadata
	// event, 0 when the trace declares itself complete.
	DroppedEvents int64
}

// ValidateChrome strictly parses a Chrome trace_event JSON file of the
// shape this package (and the obs merged export) writes: a single object
// with displayTimeUnit and a traceEvents array. Every event must be an
// object with a known ph, a string name, and an integer pid; timed
// events additionally need integer ts (and non-negative dur for ph:"X").
// Any unknown envelope key, trailing data, or malformed event fails.
func ValidateChrome(r io.Reader) (*ChromeStats, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	dec.UseNumber()
	var env struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("trace: invalid chrome envelope: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("trace: trailing data after chrome envelope")
	}
	if env.DisplayTimeUnit != "ms" {
		return nil, fmt.Errorf("trace: displayTimeUnit %q, want \"ms\"", env.DisplayTimeUnit)
	}
	if env.TraceEvents == nil {
		return nil, fmt.Errorf("trace: missing traceEvents array")
	}
	stats := &ChromeStats{
		ByPhase: map[string]int{},
		ByCat:   map[string]int{},
		ByPid:   map[int64]int{},
	}
	for i, raw := range env.TraceEvents {
		// Events carry heterogeneous fields; decode generically but
		// require each field we inspect to have the right type.
		var obj map[string]any
		evDec := json.NewDecoder(bytes.NewReader(raw))
		evDec.UseNumber()
		if err := evDec.Decode(&obj); err != nil {
			return nil, fmt.Errorf("trace: event %d: not an object: %w", i, err)
		}
		ph, ok := obj["ph"].(string)
		if !ok {
			return nil, fmt.Errorf("trace: event %d: missing ph", i)
		}
		switch ph {
		case "M", "X", "s", "f", "i", "b", "e":
		default:
			return nil, fmt.Errorf("trace: event %d: unknown ph %q", i, ph)
		}
		name, ok := obj["name"].(string)
		if !ok || name == "" {
			return nil, fmt.Errorf("trace: event %d: missing name", i)
		}
		pid, err := intField(obj, "pid")
		if err != nil {
			return nil, fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		stats.ByPhase[ph]++
		if cat, ok := obj["cat"].(string); ok {
			stats.ByCat[cat]++
		}
		if ph == "M" {
			stats.Metadata++
			if name == "trace_dropped" {
				args, _ := obj["args"].(map[string]any)
				if args == nil {
					return nil, fmt.Errorf("trace: event %d: trace_dropped without args", i)
				}
				d, err := intField(args, "dropped_events")
				if err != nil {
					return nil, fmt.Errorf("trace: event %d: trace_dropped: %w", i, err)
				}
				stats.DroppedEvents = d
			}
			continue
		}
		stats.Events++
		stats.ByPid[pid]++
		if _, err := intField(obj, "ts"); err != nil {
			return nil, fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		if ph == "X" {
			dur, err := intField(obj, "dur")
			if err != nil {
				return nil, fmt.Errorf("trace: event %d (%s): %w", i, name, err)
			}
			if dur < 0 {
				return nil, fmt.Errorf("trace: event %d (%s): negative dur %d", i, name, dur)
			}
		}
	}
	return stats, nil
}

func intField(obj map[string]any, key string) (int64, error) {
	n, ok := obj[key].(json.Number)
	if !ok {
		return 0, fmt.Errorf("missing or non-numeric %s", key)
	}
	v, err := n.Int64()
	if err != nil {
		return 0, fmt.Errorf("non-integer %s %q", key, n)
	}
	return v, nil
}
