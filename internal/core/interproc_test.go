package core

import (
	"testing"

	"repro/internal/lang"
)

// The interprocedural return-path extension (the paper's stated future
// work): accessor helpers contribute their field paths.
const accessorSrc = `
struct node {
  struct node *next __affinity(95);
  struct node *skip __affinity(40);
};

struct node * advance(struct node *p) {
  return p->next;
}

struct node * hop(struct node *p) {
  if (p == NULL) return NULL;
  return p->next->next;
}

struct node * either(struct node *p, int c) {
  if (c > 0) return p->next;
  return p->skip;
}

void walk(struct node *s) {
  while (s) {
    s = advance(s);
  }
}

void walk2(struct node *s) {
  while (s) {
    s = hop(s);
  }
}

void walkE(struct node *s) {
  while (s) {
    s = either(s, 1);
  }
}
`

func analyzeIP(t *testing.T, src string) *Report {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.InterproceduralReturns = true
	return Analyze(prog, p)
}

func TestReturnPathSummaries(t *testing.T) {
	r := analyzeIP(t, accessorSrc)

	// walk: s = advance(s) is s ← s along next (95%) ⇒ migrate.
	l := r.FindLoop("walk/while")
	if aff, ok := l.Matrix.Diagonal("s"); !ok || !approx(aff, 0.95) {
		t.Fatalf("walk (s,s) = %v,%v; want 95%% through advance()", aff, ok)
	}
	if l.Mech != ChooseMigrate {
		t.Fatal("walk must migrate s")
	}

	// walk2: hop() is two next hops ⇒ 0.95² ≈ 90.25%.
	l2 := r.FindLoop("walk2/while")
	if aff, ok := l2.Matrix.Diagonal("s"); !ok || !approx(aff, 0.95*0.95) {
		t.Fatalf("walk2 (s,s) = %v,%v; want 90.25%%", aff, ok)
	}

	// walkE: either() averages its two return paths: (95+40)/2 = 67.5%
	// ⇒ cache.
	lE := r.FindLoop("walkE/while")
	if aff, ok := lE.Matrix.Diagonal("s"); !ok || !approx(aff, 0.675) {
		t.Fatalf("walkE (s,s) = %v,%v; want 67.5%%", aff, ok)
	}
	if lE.Mech != ChooseCache {
		t.Fatal("walkE must cache s")
	}
}

func TestReturnPathsOffByDefault(t *testing.T) {
	prog, err := lang.Parse(accessorSrc)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(prog, DefaultParams())
	l := r.FindLoop("walk/while")
	if _, ok := l.Matrix.Diagonal("s"); ok {
		t.Fatal("the paper's preliminary analysis does not consider return values")
	}
}

func TestReturnPathRejections(t *testing.T) {
	r := analyzeIP(t, `
struct node { struct node *next; };

struct node * self(struct node *p) { return self(p->next); }

struct node * two(struct node *p, struct node *q, int c) {
  if (c > 0) return p->next;
  return q->next;
}

void w1(struct node *s) { while (s) { s = self(s); } }
void w2(struct node *s, struct node *o) { while (s) { s = two(s, o, 1); } }
`)
	// Recursive functions are not summarized.
	if _, ok := r.FindLoop("w1/while").Matrix.Diagonal("s"); ok {
		t.Fatal("recursive callee must not be summarized")
	}
	// Returns deriving from different parameters are rejected.
	if _, ok := r.FindLoop("w2/while").Matrix.Diagonal("s"); ok {
		t.Fatal("mixed-parameter returns must not be summarized")
	}
}

func TestReturnPathNullBranchIgnored(t *testing.T) {
	// NULL base cases do not block summarization (like TreeAdd's base
	// case not blocking the recursion analysis).
	r := analyzeIP(t, `
struct node { struct node *next __affinity(95); };
struct node * safeNext(struct node *p) {
  if (p == NULL) return NULL;
  return p->next;
}
void w(struct node *s) { while (s) { s = safeNext(s); } }
`)
	if aff, ok := r.FindLoop("w/while").Matrix.Diagonal("s"); !ok || !approx(aff, 0.95) {
		t.Fatalf("(s,s) = %v,%v; NULL branch must not block the summary", aff, ok)
	}
}

func TestReturnPathsDoNotChangeBenchmarkKernels(t *testing.T) {
	// The extension must not flip any of the figure programs' choices.
	for _, src := range []string{figure3, figure4, figure5, defaultsSrc} {
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		p.InterproceduralReturns = true
		withExt := Analyze(prog, p)
		base := Analyze(prog, DefaultParams())
		if withExt.UsesMigrationOnly() != base.UsesMigrationOnly() {
			t.Fatal("extension flipped a figure program's classification")
		}
	}
}
