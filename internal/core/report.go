package core

import (
	"fmt"
	"sort"
	"strings"
)

// FuncLoops returns the top-level control loops of a function, or nil.
func (r *Report) FuncLoops(fn string) []*Loop {
	for _, fr := range r.Funcs {
		if fr.Fn.Name == fn {
			return fr.Loops
		}
	}
	return nil
}

// FindLoop returns the loop whose label has the given prefix, or nil.
// Labels look like "TreeAdd/rec" or "Walk/while@4:3". When the prefix
// matches several loops the result is deterministic and favours the most
// canonical match: an exact label match beats a proper prefix, an original
// loop beats a call-expanded instance of it, a shallower loop beats a
// deeper one, and remaining ties break on label then program order.
func (r *Report) FindLoop(prefix string) *Loop {
	type cand struct {
		l     *Loop
		depth int
		order int
	}
	var cands []cand
	order := 0
	var walk func(l *Loop, depth int)
	walk = func(l *Loop, depth int) {
		if strings.HasPrefix(l.Label, prefix) {
			cands = append(cands, cand{l, depth, order})
		}
		order++
		for _, c := range l.Children {
			walk(c, depth+1)
		}
	}
	for _, fr := range r.Funcs {
		for _, l := range fr.Loops {
			walk(l, 0)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if ae, be := a.l.Label == prefix, b.l.Label == prefix; ae != be {
			return ae
		}
		if ao, bo := a.l.origin == nil, b.l.origin == nil; ao != bo {
			return ao
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		if a.l.Label != b.l.Label {
			return a.l.Label < b.l.Label
		}
		return a.order < b.order
	})
	return cands[0].l
}

// MechanismOf reports the selected mechanism for variable v inside the
// first loop matching the label prefix: the loop's migration variable
// migrates, everything else caches.
func (r *Report) MechanismOf(loopPrefix, v string) Mechanism {
	l := r.FindLoop(loopPrefix)
	if l == nil {
		return ChooseCache
	}
	if l.Mech == ChooseMigrate && l.Var == v {
		return ChooseMigrate
	}
	return ChooseCache
}

// MechanismForName reports the mechanism the heuristic assigned to the
// dereference sites an rt.Site tag stands for. The tag is the variable
// segment of a site name ("treeadd.t" → "t") and is matched per function
// against the flat namespace the subset gives each function: a pointer
// variable with that name, or any pointer variable whose pointed-to
// struct has that name ("mst.vertex" matches a `struct vertex *v`).
// The result is ChooseMigrate when any matching dereference site
// migrates; found is false when no site matches, i.e. the tag does not
// map onto the kernel at all.
func (r *Report) MechanismForName(tag string) (mech Mechanism, found bool) {
	match := map[string]map[string]bool{}
	for _, fn := range r.Prog.Funcs {
		vars := map[string]bool{}
		for v, st := range buildTypeEnv(fn) {
			if v == tag || st == tag {
				vars[v] = true
			}
		}
		match[fn.Name] = vars
	}
	mech = ChooseCache
	for _, s := range r.DerefSites() {
		if !match[s.Fn][s.Base] {
			continue
		}
		found = true
		if s.Mech == ChooseMigrate {
			mech = ChooseMigrate
		}
	}
	return mech, found
}

// SitesString renders the per-dereference-site mechanism assignment — the
// view of the analysis closest to what the compiler would emit.
func (r *Report) SitesString() string {
	var sb strings.Builder
	last := ""
	for _, s := range r.DerefSites() {
		if s.Fn != last {
			fmt.Fprintf(&sb, "function %s:\n", s.Fn)
			last = s.Fn
		}
		loop := s.Loop
		if loop == "" {
			loop = "(top level)"
		}
		fmt.Fprintf(&sb, "  %-8s deref of %-12s at %-8s in %s\n", s.Mech, s.Base, s.Pos, loop)
	}
	return sb.String()
}

// UsesMigrationOnly reports whether every dereference site in the program
// was assigned migration — the paper's "M" rows of Table 2 versus "M+C".
func (r *Report) UsesMigrationOnly() bool {
	for _, s := range r.DerefSites() {
		if s.Mech == ChooseCache {
			return false
		}
	}
	return true
}

// String renders the report: per function, the loop tree with update
// matrices and choices — the output of cmd/oldenc.
func (r *Report) String() string {
	var sb strings.Builder
	for _, fr := range r.Funcs {
		if len(fr.Loops) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "function %s:\n", fr.Fn.Name)
		for _, l := range fr.Loops {
			writeLoop(&sb, l, 1)
		}
	}
	return sb.String()
}

func writeLoop(sb *strings.Builder, l *Loop, depth int) {
	ind := strings.Repeat("  ", depth)
	kind := "loop"
	if l.Kind == RecursionLoop {
		kind = "recursion"
	}
	inst := ""
	if l.ArgBase != nil {
		inst = " (call instance)"
	}
	fmt.Fprintf(sb, "%s%s %s%s", ind, kind, l.Label, inst)
	if l.Parallel {
		sb.WriteString(" [parallel]")
	}
	sb.WriteString("\n")
	// Update matrix, rows sorted for stable output.
	rows := make([]string, 0, len(l.Matrix))
	for s := range l.Matrix {
		rows = append(rows, s)
	}
	sort.Strings(rows)
	for _, s := range rows {
		cols := make([]string, 0, len(l.Matrix[s]))
		for t := range l.Matrix[s] {
			cols = append(cols, t)
		}
		sort.Strings(cols)
		for _, t := range cols {
			fmt.Fprintf(sb, "%s  update %s ← %s  affinity %.0f%%\n", ind, s, t, 100*l.Matrix[s][t])
		}
	}
	switch {
	case l.Inherited:
		fmt.Fprintf(sb, "%s  choice: migrate %s (inherited from parent)\n", ind, l.Var)
	case l.Var == "":
		fmt.Fprintf(sb, "%s  choice: cache (no induction variable)\n", ind)
	case l.Bottleneck:
		fmt.Fprintf(sb, "%s  choice: cache %s (bottleneck inside parallel loop)\n", ind, l.Var)
	case l.Mech == ChooseMigrate:
		why := fmt.Sprintf("affinity %.0f%% ≥ threshold", 100*l.Affinity)
		if l.Parallel {
			why = "parallelizable"
		}
		fmt.Fprintf(sb, "%s  choice: migrate %s (%s)\n", ind, l.Var, why)
	default:
		fmt.Fprintf(sb, "%s  choice: cache %s (affinity %.0f%% below threshold)\n", ind, l.Var, 100*l.Affinity)
	}
	for _, c := range l.Children {
		writeLoop(sb, c, depth+1)
	}
}
