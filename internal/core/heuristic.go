package core

import (
	"sort"

	"repro/internal/lang"
)

// Report is the result of analyzing a program: per function, the tree of
// control loops with their update matrices and mechanism choices.
type Report struct {
	Prog   *lang.Program
	Params Params
	Funcs  []*FuncReport
}

// FuncReport holds one function's top-level control loops (a recursion
// loop, if the function is recursive, contains the syntactic loops).
type FuncReport struct {
	Fn    *lang.FuncDecl
	Loops []*Loop
}

// Analyze runs the full three-step selection process on a program.
func Analyze(prog *lang.Program, params Params) *Report {
	r := &Report{Prog: prog, Params: params}
	var summaries map[string]retSummary
	if params.InterproceduralReturns {
		summaries = returnSummaries(prog, params)
	}
	for _, f := range prog.Funcs {
		a := &analysis{prog: prog, fn: f, te: buildTypeEnv(f), params: params, summaries: summaries}
		r.Funcs = append(r.Funcs, &FuncReport{Fn: f, Loops: a.buildFuncLoops()})
	}
	r.expandCalls()
	for _, fr := range r.Funcs {
		for _, l := range fr.Loops {
			selectMechanisms(l, params)
		}
	}
	for _, fr := range r.Funcs {
		for _, l := range fr.Loops {
			bottleneckPass(l)
		}
	}
	return r
}

// expandCalls attaches, under every loop, instances of the loops of the
// functions it directly calls, carrying the argument bindings. This is the
// limited interprocedural view the bottleneck pass needs (the paper's
// preliminary implementation does not analyze loops spanning procedures,
// but Figure 5's interaction crosses a call). Instances are single-level:
// the callee's own call expansions are not copied.
func (r *Report) expandCalls() {
	byName := map[string]*FuncReport{}
	for _, fr := range r.Funcs {
		byName[fr.Fn.Name] = fr
	}
	for _, fr := range r.Funcs {
		a := &analysis{prog: r.Prog, fn: fr.Fn, te: buildTypeEnv(fr.Fn), params: r.Params}
		for _, l := range fr.Loops {
			expandLoopCalls(l, a, byName)
		}
	}
}

// expandLoopCalls instantiates callee loops under l and recurses into l's
// syntactic children.
func expandLoopCalls(l *Loop, a *analysis, byName map[string]*FuncReport) {
	syntactic := append([]*Loop(nil), l.Children...)
	for _, c := range directCalls(loopBody(l)) {
		if c.Name == l.Fn.Name {
			continue // the recursion loop itself
		}
		callee := byName[c.Name]
		if callee == nil || len(callee.Loops) == 0 {
			continue
		}
		argBase := map[string]string{}
		ev := identityEnv(a.te)
		for i, p := range callee.Fn.Params {
			if !p.Type.IsPtr() || i >= len(c.Args) {
				continue
			}
			if v := a.evalExpr(ev, c.Args[i]); v.known {
				argBase[p.Name] = v.base
			}
		}
		for _, cl := range callee.Loops {
			inst := cloneLoop(cl, l)
			inst.ArgBase = argBase
			l.Children = append(l.Children, inst)
		}
	}
	for _, c := range syntactic {
		expandLoopCalls(c, a, byName)
	}
}

// loopBody returns the statement whose direct (non-nested-loop) calls
// belong to the loop.
func loopBody(l *Loop) lang.Stmt {
	if l.Kind == RecursionLoop {
		return l.Fn.Body
	}
	return l.bodyStmt
}

// cloneLoop copies a callee loop subtree for instantiation under a caller
// loop. Matrices and flags are shared; selection fields are re-derived.
func cloneLoop(l *Loop, parent *Loop) *Loop {
	c := &Loop{
		Kind:     l.Kind,
		Fn:       l.Fn,
		Label:    l.Label,
		Pos:      l.Pos,
		Parent:   parent,
		Matrix:   l.Matrix,
		Parallel: l.Parallel,
		bodyStmt: l.bodyStmt,
		origin:   l,
	}
	for _, ch := range l.Children {
		if ch.ArgBase != nil {
			continue // don't copy the callee's own call expansions
		}
		cc := cloneLoop(ch, c)
		c.Children = append(c.Children, cc)
	}
	return c
}

// directCalls collects the calls in a statement subtree that are not inside
// a nested syntactic loop.
func directCalls(s lang.Stmt) []*lang.Call {
	var calls []*lang.Call
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Call:
			calls = append(calls, e)
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *lang.Arrow:
			walkExpr(e.X)
		case *lang.Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *lang.Unary:
			walkExpr(e.X)
		case *lang.Touch:
			walkExpr(e.E)
		}
	}
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Init != nil {
				walkExpr(s.Init)
			}
		case *lang.Assign:
			walkExpr(s.RHS)
		case *lang.If:
			walkExpr(s.Cond)
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.Return:
			if s.E != nil {
				walkExpr(s.E)
			}
		case *lang.ExprStmt:
			walkExpr(s.E)
		case *lang.While, *lang.For:
			// calls inside nested loops belong to those loops
		}
	}
	if s != nil {
		walk(s)
	}
	return calls
}

// selectMechanisms is the heuristic's first pass (§4.3): per control loop,
// pick the induction variable with the strongest update affinity; migrate
// it if the affinity meets the threshold or the loop is parallelizable
// (migration is what spawns new threads), else cache it. Loops without an
// induction variable select migration for the same variable as their
// parent. All other variables are cached.
func selectMechanisms(l *Loop, p Params) {
	bestVar, bestAff := "", -1.0
	vars := make([]string, 0, len(l.Matrix))
	for v := range l.Matrix {
		vars = append(vars, v)
	}
	sort.Strings(vars) // deterministic tie-break
	for _, v := range vars {
		if aff, ok := l.Matrix.Diagonal(v); ok && aff > bestAff {
			bestVar, bestAff = v, aff
		}
	}
	switch {
	case bestVar == "":
		if l.Parent != nil && l.Parent.Var != "" && l.Parent.Mech == ChooseMigrate {
			l.Var = l.Parent.Var
			l.Mech = ChooseMigrate
			l.Inherited = true
		} else {
			l.Mech = ChooseCache
		}
	case bestAff >= p.Threshold || l.Parallel:
		l.Var, l.Affinity, l.Mech = bestVar, bestAff, ChooseMigrate
	default:
		l.Var, l.Affinity, l.Mech = bestVar, bestAff, ChooseCache
	}
	for _, c := range l.Children {
		selectMechanisms(c, p)
	}
}

// bottleneckPass is the heuristic's second pass (§4.3, Figure 5): inside a
// parallel loop, an inner loop that migrates on a variable whose initial
// value is the same across the outer iterations would serialize every
// thread on one processor. The approximation: if the inner loop's
// induction variable (mapped through call-site argument bindings) is not
// updated in the parallel ancestor's matrix, assume a bottleneck and demote
// the inner loop to caching.
func bottleneckPass(l *Loop) {
	if l.Parallel {
		var walk func(d *Loop)
		walk = func(d *Loop) {
			if d.Mech == ChooseMigrate && !d.Inherited {
				// Demote only when the inner loop's variable is
				// positively traceable into this frame and is not
				// updated here. An untraceable entry value (e.g. a
				// function's return value, which the preliminary
				// analysis does not model) is assumed to differ per
				// iteration — this keeps TSP's per-merge tour walks
				// migrating, matching the paper's "M" for TSP.
				v := baseInAncestor(l, d)
				if v != "" && len(l.Matrix[v]) == 0 {
					d.Mech = ChooseCache
					d.Bottleneck = true
					for o := d.origin; o != nil; o = o.origin {
						o.DemotedByContext = true
					}
				}
			}
			for _, c := range d.Children {
				walk(c)
			}
		}
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, c := range l.Children {
		bottleneckPass(c)
	}
}

// baseInAncestor translates d's induction variable into ancestor p's frame,
// applying the call-site argument binding at every call-instance boundary
// on the way up. It returns "" when the variable cannot be traced.
func baseInAncestor(p, d *Loop) string {
	v := d.Var
	for x := d; x != nil && x != p; x = x.Parent {
		if v == "" {
			return ""
		}
		if x.ArgBase != nil {
			v = x.ArgBase[v]
		}
	}
	return v
}
