package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lang"
)

var update = flag.Bool("update", false, "rewrite lint golden files")

// lintGolden compares the lint output of src against a golden file — the
// same rendering `oldenc -lint` emits.
func lintGolden(t *testing.T, name, src string) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := LintString(Analyze(prog, DefaultParams()).Lint())
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("lint output mismatch for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// The paper's figure sources: 3 and 4 lint clean (their hints are all live
// inside control loops); 5 surfaces the bottleneck demotion the second
// heuristic pass makes silently.
func TestLintGoldenFigure3(t *testing.T) { lintGolden(t, "lint_figure3.golden", figure3) }
func TestLintGoldenFigure4(t *testing.T) { lintGolden(t, "lint_figure4.golden", figure4) }
func TestLintGoldenFigure5(t *testing.T) { lintGolden(t, "lint_figure5.golden", figure5) }

func lintOf(t *testing.T, src string) []Diag {
	t.Helper()
	return analyze(t, src).Lint()
}

func hasDiag(diags []Diag, code, substr string) bool {
	for _, d := range diags {
		if d.Code == code && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

func TestLintAffinityRange(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next __affinity(150); };
void f(struct n *l) { while (l) { l = l->next; } }
`)
	if !hasDiag(diags, "affinity-range", "150%") {
		t.Fatalf("missing affinity-range diagnostic: %v", diags)
	}
	if diags[0].Sev != DiagError {
		t.Fatal("affinity-range must be an error")
	}
}

func TestLintUnusedAffinity(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next __affinity(80); struct n *prev __affinity(80); };
void f(struct n *l) { while (l) { l = l->next; } }
`)
	if !hasDiag(diags, "unused-affinity", "n.prev") {
		t.Fatalf("missing unused-affinity for n.prev: %v", diags)
	}
	if hasDiag(diags, "unused-affinity", "n.next") {
		t.Fatalf("n.next is live in a loop; must not be flagged: %v", diags)
	}
}

// A hint used only by a recursion control loop (the whole body of a
// recursive function) is live.
func TestLintRecursionBodyCountsAsLoop(t *testing.T) {
	diags := lintOf(t, `
struct tree { struct tree *left __affinity(90); };
void g(struct tree *t) {
  if (t == NULL) return;
  g(t->left);
}
`)
	if hasDiag(diags, "unused-affinity", "tree.left") {
		t.Fatalf("recursion body is a control loop: %v", diags)
	}
}

func TestLintShadowedInduction(t *testing.T) {
	diags := lintOf(t, `
struct tree { struct tree *left __affinity(95); struct tree *right __affinity(95); };
void g(struct tree *t) {
  if (t == NULL) return;
  g(t->left);
  g(t->right);
  while (t) { t = t->left; }
}
`)
	if !hasDiag(diags, "shadowed-induction", `"t"`) {
		t.Fatalf("missing shadowed-induction: %v", diags)
	}
}

// Inheritance (a loop without an induction variable migrating on its
// parent's) is deliberate behaviour, not shadowing.
func TestLintInheritanceIsNotShadowing(t *testing.T) {
	diags := lintOf(t, `
struct tree { struct tree *left __affinity(95); struct tree *right __affinity(95); int n; };
void g(struct tree *t) {
  if (t == NULL) return;
  int i = 0;
  while (i < t->n) { i = i + 1; }
  g(t->left);
  g(t->right);
}
`)
	if hasDiag(diags, "shadowed-induction", "") {
		t.Fatalf("inherited loop flagged as shadowing: %v", diags)
	}
}

func TestLintBottleneckDemotion(t *testing.T) {
	diags := lintOf(t, figure5)
	if !hasDiag(diags, "bottleneck-demotion", "Traverse/rec") {
		t.Fatalf("missing bottleneck-demotion: %v", diags)
	}
}

func TestLintDiagsSortedByPosition(t *testing.T) {
	diags := lintOf(t, `
struct a { struct a *x __affinity(120); };
struct b { struct b *y __affinity(130); };
void f(struct a *p) { return; }
`)
	if len(diags) < 2 {
		t.Fatalf("want several diagnostics, got %v", diags)
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Line < diags[i-1].Pos.Line {
			t.Fatalf("diagnostics not sorted: %v", diags)
		}
	}
}
