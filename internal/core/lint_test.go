package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lang"
)

var update = flag.Bool("update", false, "rewrite lint golden files")

// lintGolden compares the lint output of src against a golden file — the
// same rendering `oldenc -lint` emits.
func lintGolden(t *testing.T, name, src string) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := LintString(Analyze(prog, DefaultParams()).Lint())
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("lint output mismatch for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// The paper's figure sources: 4 lints clean; 3 carries a genuine dead
// store (u is assigned in the loop and never read — the figure only needs
// it to show a non-induction matrix row); 5 surfaces the bottleneck
// demotion the second heuristic pass makes silently.
func TestLintGoldenFigure3(t *testing.T) { lintGolden(t, "lint_figure3.golden", figure3) }
func TestLintGoldenFigure4(t *testing.T) { lintGolden(t, "lint_figure4.golden", figure4) }
func TestLintGoldenFigure5(t *testing.T) { lintGolden(t, "lint_figure5.golden", figure5) }

func lintOf(t *testing.T, src string) []Diag {
	t.Helper()
	return analyze(t, src).Lint()
}

func hasDiag(diags []Diag, code, substr string) bool {
	for _, d := range diags {
		if d.Code == code && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

func TestLintAffinityRange(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next __affinity(150); };
void f(struct n *l) { while (l) { l = l->next; } }
`)
	if !hasDiag(diags, "affinity-range", "150%") {
		t.Fatalf("missing affinity-range diagnostic: %v", diags)
	}
	if diags[0].Sev != DiagError {
		t.Fatal("affinity-range must be an error")
	}
}

func TestLintUnusedAffinity(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next __affinity(80); struct n *prev __affinity(80); };
void f(struct n *l) { while (l) { l = l->next; } }
`)
	if !hasDiag(diags, "unused-affinity", "n.prev") {
		t.Fatalf("missing unused-affinity for n.prev: %v", diags)
	}
	if hasDiag(diags, "unused-affinity", "n.next") {
		t.Fatalf("n.next is live in a loop; must not be flagged: %v", diags)
	}
}

// A hint used only by a recursion control loop (the whole body of a
// recursive function) is live.
func TestLintRecursionBodyCountsAsLoop(t *testing.T) {
	diags := lintOf(t, `
struct tree { struct tree *left __affinity(90); };
void g(struct tree *t) {
  if (t == NULL) return;
  g(t->left);
}
`)
	if hasDiag(diags, "unused-affinity", "tree.left") {
		t.Fatalf("recursion body is a control loop: %v", diags)
	}
}

func TestLintShadowedInduction(t *testing.T) {
	diags := lintOf(t, `
struct tree { struct tree *left __affinity(95); struct tree *right __affinity(95); };
void g(struct tree *t) {
  if (t == NULL) return;
  g(t->left);
  g(t->right);
  while (t) { t = t->left; }
}
`)
	if !hasDiag(diags, "shadowed-induction", `"t"`) {
		t.Fatalf("missing shadowed-induction: %v", diags)
	}
}

// Inheritance (a loop without an induction variable migrating on its
// parent's) is deliberate behaviour, not shadowing.
func TestLintInheritanceIsNotShadowing(t *testing.T) {
	diags := lintOf(t, `
struct tree { struct tree *left __affinity(95); struct tree *right __affinity(95); int n; };
void g(struct tree *t) {
  if (t == NULL) return;
  int i = 0;
  while (i < t->n) { i = i + 1; }
  g(t->left);
  g(t->right);
}
`)
	if hasDiag(diags, "shadowed-induction", "") {
		t.Fatalf("inherited loop flagged as shadowing: %v", diags)
	}
}

func TestLintBottleneckDemotion(t *testing.T) {
	diags := lintOf(t, figure5)
	if !hasDiag(diags, "bottleneck-demotion", "Traverse/rec") {
		t.Fatalf("missing bottleneck-demotion: %v", diags)
	}
}

func TestLintDiagsSortedByPosition(t *testing.T) {
	diags := lintOf(t, `
struct a { struct a *x __affinity(120); };
struct b { struct b *y __affinity(130); };
void f(struct a *p) { return; }
`)
	if len(diags) < 2 {
		t.Fatalf("want several diagnostics, got %v", diags)
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Line < diags[i-1].Pos.Line {
			t.Fatalf("diagnostics not sorted: %v", diags)
		}
	}
}

// ---- dataflow lints (lintflow.go) ----

func TestLintUseBeforeInit(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next; int v; };
int f(struct n *l, int c) {
  struct n *p;
  if (c) { p = l; }
  return p->v;
}
`)
	if !hasDiag(diags, "use-before-init", `"p"`) {
		t.Fatalf("missing use-before-init for p: %v", diags)
	}
}

func TestLintUseBeforeInitCleanWhenAssignedOnEveryPath(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next; int v; };
int f(struct n *l, int c) {
  struct n *p;
  if (c) { p = l; } else { p = l->next; }
  return p->v;
}
`)
	if hasDiag(diags, "use-before-init", "") {
		t.Fatalf("p is assigned on every path: %v", diags)
	}
}

func TestLintDeadStore(t *testing.T) {
	if !hasDiag(lintOf(t, figure3), "dead-store", `"u"`) {
		t.Fatalf("figure3's u = s->right is a dead store")
	}
}

func TestLintDeadStoreCleanAcrossBackEdge(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next; int v; };
int f(struct n *l) {
  int c;
  c = 0;
  while (l != NULL) {
    c = c + 1;
    l->v = 5;
    l = l->next;
  }
  return c;
}
`)
	// c = c + 1 is live only through the loop's back edge and the final
	// return; l->v = 5 is a heap store and never a dead store.
	if hasDiag(diags, "dead-store", "") {
		t.Fatalf("no store here is dead: %v", diags)
	}
}

func TestLintUnreachable(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next; int v; };
int f(struct n *l) {
  if (0) { l = l->next; }
  return 0;
  l = l->next;
}
`)
	var n int
	for _, d := range diags {
		if d.Code == "unreachable" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("want 2 unreachable diagnostics (if(0) body, post-return), got %v", diags)
	}
}

func TestLintUnreachableCleanOnFigures(t *testing.T) {
	for _, src := range []string{figure3, figure4, figure5, defaultsSrc} {
		if hasDiag(lintOf(t, src), "unreachable", "") {
			t.Fatal("figure sources have no unreachable code")
		}
	}
}

func TestLintNilDeref(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next; int v; };
void f(struct n *p) {
  if (p == NULL) { p->v = 1; }
}
void g(struct n *q) {
  q = NULL;
  q->v = 2;
}
`)
	if !hasDiag(diags, "nil-deref", `"p"`) {
		t.Fatalf("missing nil-deref inside p == NULL branch: %v", diags)
	}
	if !hasDiag(diags, "nil-deref", `"q"`) {
		t.Fatalf("missing nil-deref after q = NULL: %v", diags)
	}
	for _, d := range diags {
		if d.Code == "nil-deref" && d.Sev != DiagError {
			t.Fatalf("nil-deref must be an error: %v", d)
		}
	}
}

func TestLintNilDerefGuardIdiomClean(t *testing.T) {
	diags := lintOf(t, `
struct n { struct n *next; int v; };
int f(struct n *p) {
  if (p == NULL) return 0;
  return p->v + f(p->next);
}
int g(struct n *p) {
  if (p != NULL) { return p->v; }
  return 0;
}
`)
	if hasDiag(diags, "nil-deref", "") {
		t.Fatalf("guarded dereferences must not be flagged: %v", diags)
	}
}

// The ten benchmark kernels must stay clean under every lint — the
// repo-level kernels test asserts the same through the public facade.
func TestLintFiguresOnlyKnownDiags(t *testing.T) {
	want := map[string]int{"dead-store": 1}
	got := map[string]int{}
	for _, d := range lintOf(t, figure3) {
		got[d.Code]++
	}
	for code, n := range got {
		if want[code] != n {
			t.Fatalf("figure3 diag %s ×%d unexpected (all: %v)", code, n, got)
		}
	}
}

// Lint output must be deterministically ordered: position ascending, and
// errors before warnings at the same position.
func TestLintOrderingInvariant(t *testing.T) {
	diags := lintOf(t, `
struct a { struct a *x __affinity(120); struct a *y __affinity(80); };
void f(struct a *p) {
  struct a *q;
  if (p == NULL) { p->x = q; }
  return;
  p = p->y;
}
`)
	if len(diags) < 3 {
		t.Fatalf("want a busy program, got %v", diags)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		switch {
		case a.Pos.Line > b.Pos.Line:
			t.Fatalf("line order violated: %v before %v", a, b)
		case a.Pos.Line == b.Pos.Line && a.Pos.Col > b.Pos.Col:
			t.Fatalf("column order violated: %v before %v", a, b)
		case a.Pos.Line == b.Pos.Line && a.Pos.Col == b.Pos.Col && a.Sev < b.Sev:
			t.Fatalf("severity order violated: %v before %v", a, b)
		}
	}
}
