package core

import "repro/internal/lang"

// DerefSite is one pointer-dereference site of the program with the
// mechanism the heuristic assigned to it: a dereference of the enclosing
// control loop's migration variable migrates; every other dereference —
// other variables, and dereferences outside any control loop — caches.
type DerefSite struct {
	Fn   string
	Loop string // enclosing loop label, "" at top level
	Base string // the variable whose dereference this is
	Mech Mechanism
	Pos  lang.Pos
}

// DerefSites enumerates every dereference site per function. The traversal
// mirrors the loop tree built by the analysis: a recursion loop encloses
// the whole body of a recursive function.
func (r *Report) DerefSites() []DerefSite {
	var sites []DerefSite
	for _, fr := range r.Funcs {
		var rec *Loop
		var loops []*Loop
		for _, l := range fr.Loops {
			if l.Kind == RecursionLoop {
				rec = l
			}
		}
		collectSyntactic(fr.Loops, &loops)

		findLoop := func(s lang.Stmt) *Loop {
			for _, l := range loops {
				if stmtOfLoop(l) == s {
					return l
				}
			}
			return nil
		}

		addExpr := func(e lang.Expr, cur *Loop) {
			for _, site := range exprDerefs(e) {
				mech := ChooseCache
				loopLabel := ""
				if cur != nil {
					loopLabel = cur.Label
					if cur.Mech == ChooseMigrate && cur.Var == site.base && !cur.DemotedByContext {
						mech = ChooseMigrate
					}
				}
				sites = append(sites, DerefSite{
					Fn: fr.Fn.Name, Loop: loopLabel,
					Base: site.base, Mech: mech, Pos: site.pos,
				})
			}
		}

		var walk func(s lang.Stmt, cur *Loop)
		walk = func(s lang.Stmt, cur *Loop) {
			switch s := s.(type) {
			case *lang.Block:
				for _, st := range s.Stmts {
					walk(st, cur)
				}
			case *lang.VarDecl:
				if s.Init != nil {
					addExpr(s.Init, cur)
				}
			case *lang.Assign:
				addExpr(s.LHS, cur)
				addExpr(s.RHS, cur)
			case *lang.If:
				addExpr(s.Cond, cur)
				walk(s.Then, cur)
				if s.Else != nil {
					walk(s.Else, cur)
				}
			case *lang.While:
				l := findLoop(s.Body)
				if l == nil {
					l = cur
				}
				addExpr(s.Cond, l)
				walk(s.Body, l)
			case *lang.For:
				l := findLoop(s.Body)
				if l == nil {
					l = cur
				}
				if s.Init != nil {
					walk(s.Init, l)
				}
				if s.Cond != nil {
					addExpr(s.Cond, l)
				}
				if s.Post != nil {
					walk(s.Post, l)
				}
				walk(s.Body, l)
			case *lang.Return:
				if s.E != nil {
					addExpr(s.E, cur)
				}
			case *lang.ExprStmt:
				addExpr(s.E, cur)
			}
		}
		walk(fr.Fn.Body, rec)
	}
	return sites
}

// stmtOfLoop recovers the body statement used to key syntactic loops.
func stmtOfLoop(l *Loop) lang.Stmt { return l.bodyStmt }

// collectSyntactic gathers syntactic (non-instance) loops from a tree.
func collectSyntactic(ls []*Loop, out *[]*Loop) {
	for _, l := range ls {
		if l.ArgBase != nil {
			continue
		}
		if l.Kind == SyntacticLoop {
			*out = append(*out, l)
		}
		collectSyntactic(l.Children, out)
	}
}

type derefRef struct {
	base string
	pos  lang.Pos
}

// exprDerefs lists the dereferences in an expression: one per Arrow chain,
// attributed to the chain's base variable.
func exprDerefs(e lang.Expr) []derefRef {
	var out []derefRef
	var walk func(e lang.Expr)
	walk = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Arrow:
			// The whole chain is one site on its base variable;
			// still record nested chains inside call arguments etc.
			if b, ok := chainBase(e); ok {
				out = append(out, derefRef{base: b, pos: e.Pos})
			} else {
				walk(e.X)
			}
		case *lang.Call:
			for _, a := range e.Args {
				walk(a)
			}
		case *lang.Binary:
			walk(e.L)
			walk(e.R)
		case *lang.Unary:
			walk(e.X)
		case *lang.Touch:
			walk(e.E)
		}
	}
	walk(e)
	return out
}

// chainBase returns the base identifier of an Arrow chain.
func chainBase(e lang.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *lang.Arrow:
			e = x.X
		case *lang.Ident:
			return x.Name, true
		default:
			return "", false
		}
	}
}
