package core

import (
	"fmt"

	"repro/internal/lang"
)

// LoopKind distinguishes the two flavours of control loop (§4.2: "loops and
// recursive calls, hereafter referred to as control loops").
type LoopKind int

const (
	// SyntacticLoop is a while or for loop.
	SyntacticLoop LoopKind = iota
	// RecursionLoop is the control loop formed by a function's recursive
	// calls.
	RecursionLoop
)

// Mechanism is the compile-time choice for a dereference.
type Mechanism int

const (
	// ChooseMigrate selects computation migration.
	ChooseMigrate Mechanism = iota
	// ChooseCache selects software caching.
	ChooseCache
)

// String names the mechanism.
func (m Mechanism) String() string {
	if m == ChooseMigrate {
		return "migrate"
	}
	return "cache"
}

// Loop is one control loop in the report tree. Call-expanded nodes
// (a callee's loop appearing inside a caller's loop) carry the argument
// binding used by the bottleneck pass.
type Loop struct {
	Kind     LoopKind
	Fn       *lang.FuncDecl
	Label    string
	Pos      lang.Pos // loop keyword (syntactic) or function (recursion)
	Parent   *Loop
	Children []*Loop

	Matrix   Matrix
	Parallel bool

	// Selection results (pass 1 + pass 2).
	Var        string    // the variable the loop's choice applies to
	Mech       Mechanism // mechanism for Var's dereferences
	Affinity   float64   // the winning update affinity (0 when inherited)
	Inherited  bool      // no induction variable: inherited parent's
	Bottleneck bool      // demoted to caching by the bottleneck pass
	// DemotedByContext marks an original loop some call instance of
	// which was demoted by the bottleneck pass: the compiled site must
	// take the conservative (caching) choice.
	DemotedByContext bool

	// origin points from a call instance back to the loop it clones.
	origin *Loop

	// ArgBase maps the callee's parameters to the base variable of the
	// argument expression at the call site (call-expanded nodes only).
	ArgBase map[string]string

	// bodyStmt is the loop body (syntactic loops only); the recursion
	// loop's "body" is the whole function body.
	bodyStmt lang.Stmt
}

// Body returns the statements the control loop repeats: the loop body for
// a syntactic loop, the whole function body for a recursion loop. Clients
// outside the package (the effects analysis re-deriving traversal shape
// per loop) need the body without re-walking the source for it.
func (l *Loop) Body() lang.Stmt {
	if l.Kind == SyntacticLoop {
		return l.bodyStmt
	}
	return l.Fn.Body
}

// IsParallelizable reports whether a statement subtree contains a
// futurecall outside any nested syntactic loop (nested loops are their own
// control loops).
func containsFuture(s lang.Stmt) bool {
	found := false
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Call:
			if e.Future {
				found = true
			}
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *lang.Arrow:
			walkExpr(e.X)
		case *lang.Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *lang.Unary:
			walkExpr(e.X)
		case *lang.Touch:
			walkExpr(e.E)
		}
	}
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Init != nil {
				walkExpr(s.Init)
			}
		case *lang.Assign:
			walkExpr(s.RHS)
		case *lang.If:
			walkExpr(s.Cond)
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.Return:
			if s.E != nil {
				walkExpr(s.E)
			}
		case *lang.ExprStmt:
			walkExpr(s.E)
		case *lang.While, *lang.For:
			// nested control loops are separate
		}
	}
	walk(s)
	return found
}

// isRecursive reports whether f calls itself.
func isRecursive(f *lang.FuncDecl) bool {
	found := false
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Call:
			if e.Name == f.Name {
				found = true
			}
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *lang.Arrow:
			walkExpr(e.X)
		case *lang.Binary:
			walkExpr(e.L)
			walkExpr(e.R)
		case *lang.Unary:
			walkExpr(e.X)
		case *lang.Touch:
			walkExpr(e.E)
		}
	}
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Init != nil {
				walkExpr(s.Init)
			}
		case *lang.Assign:
			walkExpr(s.RHS)
		case *lang.If:
			walkExpr(s.Cond)
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walkExpr(s.Cond)
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Cond != nil {
				walkExpr(s.Cond)
			}
			if s.Post != nil {
				walk(s.Post)
			}
			walk(s.Body)
		case *lang.Return:
			if s.E != nil {
				walkExpr(s.E)
			}
		case *lang.ExprStmt:
			walkExpr(s.E)
		}
	}
	walk(f.Body)
	return found
}

// buildFuncLoops builds the control-loop tree of one function: an optional
// recursion loop at the root, syntactic loops nested per the source.
func (a *analysis) buildFuncLoops() []*Loop {
	var top []*Loop
	var rec *Loop
	if isRecursive(a.fn) {
		rec = &Loop{
			Kind:     RecursionLoop,
			Fn:       a.fn,
			Label:    a.fn.Name + "/rec",
			Pos:      a.fn.Pos,
			Matrix:   a.recursionMatrix(),
			Parallel: containsFuture(a.fn.Body),
		}
		top = append(top, rec)
	}
	var walk func(s lang.Stmt, parent *Loop)
	attach := func(l *Loop, parent *Loop) {
		l.Parent = parent
		if parent != nil {
			parent.Children = append(parent.Children, l)
		} else {
			top = append(top, l)
		}
	}
	walk = func(s lang.Stmt, parent *Loop) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st, parent)
			}
		case *lang.If:
			walk(s.Then, parent)
			if s.Else != nil {
				walk(s.Else, parent)
			}
		case *lang.While:
			l := &Loop{
				Kind:     SyntacticLoop,
				Fn:       a.fn,
				Label:    fmt.Sprintf("%s/while@%s", a.fn.Name, s.Pos),
				Pos:      s.Pos,
				Matrix:   a.loopMatrix(s.Body, nil),
				Parallel: containsFuture(s.Body),
				bodyStmt: s.Body,
			}
			attach(l, parent)
			walk(s.Body, l)
		case *lang.For:
			l := &Loop{
				Kind:     SyntacticLoop,
				Fn:       a.fn,
				Label:    fmt.Sprintf("%s/for@%s", a.fn.Name, s.Pos),
				Pos:      s.Pos,
				Matrix:   a.loopMatrix(s.Body, s.Post),
				Parallel: containsFuture(s.Body),
				bodyStmt: s.Body,
			}
			attach(l, parent)
			walk(s.Body, l)
		}
	}
	walk(a.fn.Body, rec)
	return top
}
