package core

import (
	"math/rand"
	"testing"
)

// Property tests for the affinity lattice that loopMatrix hands to the
// generic solver: the paper's branch-join rule must behave as a real
// semilattice join on the values the analysis actually produces
// (well-formed symvals: an identity value always has affinity 1 — it is
// the untouched start-of-iteration value of its base).

var latticeVars = []string{"p", "q", "r"}

func randWellFormedSymval(r *rand.Rand) symval {
	switch r.Intn(3) {
	case 0:
		return unknownVal
	case 1:
		return symval{known: true, base: latticeVars[r.Intn(len(latticeVars))], aff: 1, ident: true}
	default:
		return symval{known: true, base: latticeVars[r.Intn(len(latticeVars))], aff: float64(r.Intn(101)) / 100}
	}
}

func randEnv(r *rand.Rand) env {
	e := env{}
	for _, v := range latticeVars {
		if r.Intn(4) > 0 { // occasionally leave a variable out entirely
			e[v] = randWellFormedSymval(r)
		}
	}
	return e
}

func randEnvVal(r *rand.Rand) envVal {
	if r.Intn(5) == 0 {
		return envVal{} // bottom: an unreachable path
	}
	return envVal{reachable: true, vals: randEnv(r)}
}

func TestEnvJoinCommutative(t *testing.T) {
	lat := envLattice{}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b := randEnvVal(r), randEnvVal(r)
		ab, ba := lat.Join(a, b), lat.Join(b, a)
		if !lat.Equal(ab, ba) {
			t.Fatalf("join not commutative:\n a = %#v\n b = %#v\n ab = %#v\n ba = %#v", a, b, ab, ba)
		}
	}
}

func TestEnvJoinIdempotent(t *testing.T) {
	lat := envLattice{}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		a := randEnvVal(r)
		if aa := lat.Join(a, a); !lat.Equal(aa, a) {
			t.Fatalf("join not idempotent:\n a = %#v\n aa = %#v", a, aa)
		}
	}
}

func TestEnvJoinBottomIsIdentity(t *testing.T) {
	lat := envLattice{}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		a := randEnvVal(r)
		if !lat.Equal(lat.Join(lat.Bottom(), a), a) || !lat.Equal(lat.Join(a, lat.Bottom()), a) {
			t.Fatalf("bottom is not a join identity for %#v", a)
		}
	}
}

// The one-sided omission rule, stated as a property: a variable updated
// in only one of two reachable branches never survives the join as a
// known value (§4.2: only updates occurring on every iteration count).
func TestEnvJoinOmitsOneSided(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		a, b := randEnv(r), randEnv(r)
		out := join(a, b)
		for v, val := range out {
			if !val.known {
				continue
			}
			va, aok := a[v]
			vb, bok := b[v]
			if !aok || !bok || !va.known || !vb.known {
				t.Fatalf("join invented a known value for %s: %#v (a=%#v b=%#v)", v, val, a, b)
			}
			if va.ident != vb.ident {
				t.Fatalf("one-sided update for %s survived the join: %#v", v, val)
			}
		}
	}
}
