package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang"
)

func analyze(t *testing.T, src string) *Report {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog, DefaultParams())
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// Figure 3 of the paper: a simple loop with induction variables. With
// path-affinity 90 for left and 70 for right: s and t are induction
// variables (s' = s->left, t' = t->right->left); u is not.
const figure3 = `
struct node {
  struct node *left __affinity(90);
  struct node *right __affinity(70);
};
void f(struct node *s, struct node *t, struct node *u) {
  while (s) {
    s = s->left;
    t = t->right->left;
    u = s->right;
  }
}
`

func TestFigure3UpdateMatrix(t *testing.T) {
	r := analyze(t, figure3)
	l := r.FindLoop("f/while")
	if l == nil {
		t.Fatal("loop not found")
	}
	if aff, ok := l.Matrix.Diagonal("s"); !ok || !approx(aff, 0.90) {
		t.Errorf("(s,s) = %v,%v; want 90%%", aff, ok)
	}
	// t' = t->right->left: product 0.70 × 0.90 = 0.63, as in the figure.
	if aff, ok := l.Matrix.Diagonal("t"); !ok || !approx(aff, 0.63) {
		t.Errorf("(t,t) = %v,%v; want 63%%", aff, ok)
	}
	if _, ok := l.Matrix.Diagonal("u"); ok {
		t.Error("u must not be an induction variable")
	}
	// u is updated by s along right: entry (u,s) = 70 in the figure.
	if aff, ok := l.Matrix.Get("u", "s"); !ok || !approx(aff, 0.70*0.90) {
		// Note: the figure shows (u,s)=70 because it reads the update
		// u = s->right against the *new* s; our dataflow composes with
		// s' = s->left first, giving 63 via s-at-iteration-start. Both
		// identify u as updated-by-s and not an induction variable.
		if !ok || !approx(aff, 0.70) {
			t.Errorf("(u,s) = %v,%v", aff, ok)
		}
	}
	// The heuristic picks s (strongest diagonal, 90 ≥ threshold) and
	// migrates it.
	if l.Var != "s" || l.Mech != ChooseMigrate {
		t.Errorf("choice = %s %s; want migrate s", l.Mech, l.Var)
	}
}

// Figure 4: TreeAdd. The two recursive calls both execute, so the update of
// t combines as 1−(1−0.9)(1−0.7) = 0.97.
const figure4 = `
struct tree {
  int val;
  struct tree *left __affinity(90);
  struct tree *right __affinity(70);
};
int TreeAdd(struct tree *t) {
  if (t == NULL) return 0;
  else return TreeAdd(t->left) + TreeAdd(t->right) + t->val;
}
`

func TestFigure4TreeAddRecursion(t *testing.T) {
	r := analyze(t, figure4)
	l := r.FindLoop("TreeAdd/rec")
	if l == nil {
		t.Fatal("recursion loop not found")
	}
	if aff, ok := l.Matrix.Diagonal("t"); !ok || !approx(aff, 0.97) {
		t.Fatalf("(t,t) = %v,%v; want 97%%", aff, ok)
	}
	if l.Var != "t" || l.Mech != ChooseMigrate {
		t.Fatalf("choice = %s %s; want migrate t", l.Mech, l.Var)
	}
}

// With default affinities (70/70) a tree traversal still migrates:
// 1−0.3×0.3 = 0.91 ≥ 90%; a tree search averages to 70 and caches; a list
// traversal has 70 and caches. This is exactly how the paper says the
// defaults were chosen (§4.3).
const defaultsSrc = `
struct tree {
  int val;
  struct tree *left;
  struct tree *right;
};
struct list { int v; struct list *next; };

void Traverse(struct tree *t) {
  if (t == NULL) return;
  Traverse(t->left);
  Traverse(t->right);
}

struct tree * Search(struct tree *t, int k) {
  if (t == NULL) return NULL;
  if (k < t->val) return Search(t->left, k);
  else return Search(t->right, k);
}

int Walk(struct list *l) {
  int n = 0;
  while (l) {
    n = n + l->v;
    l = l->next;
  }
  return n;
}
`

func TestDefaultChoices(t *testing.T) {
	r := analyze(t, defaultsSrc)

	trav := r.FindLoop("Traverse/rec")
	if aff, _ := trav.Matrix.Diagonal("t"); !approx(aff, 0.91) {
		t.Errorf("traversal affinity = %v; want 91%%", aff)
	}
	if trav.Mech != ChooseMigrate {
		t.Error("tree traversals must migrate by default")
	}

	search := r.FindLoop("Search/rec")
	if aff, _ := search.Matrix.Diagonal("t"); !approx(aff, 0.70) {
		t.Errorf("search affinity = %v; want 70%% (average of branches)", aff)
	}
	if search.Mech != ChooseCache {
		t.Error("tree searches must cache by default")
	}

	walk := r.FindLoop("Walk/while")
	if aff, _ := walk.Matrix.Diagonal("l"); !approx(aff, 0.70) {
		t.Errorf("list affinity = %v; want 70%%", aff)
	}
	if walk.Mech != ChooseCache {
		t.Error("list traversals must cache by default")
	}
}

// Figure 5: the bottleneck pass. WalkAndTraverse spawns a Traverse of the
// same tree for every list element — migrating the traversal would
// serialize on the tree root, so it is demoted to caching. TraverseAndWalk
// walks a different list at every tree node — no bottleneck.
const figure5 = `
struct tree {
  struct tree *left;
  struct tree *right;
  struct list *list;
};
struct list { int v; struct list *next; };

void visit(struct list *l) { return; }

void Traverse(struct tree *t) {
  if (t == NULL) return;
  Traverse(t->left);
  Traverse(t->right);
}

void Walk(struct list *l) {
  while (l) {
    visit(l);
    l = l->next;
  }
}

void WalkAndTraverse(struct list *l, struct tree *t) {
  while (l) {
    futurecall(Traverse(t));
    l = l->next;
  }
}

void TraverseAndWalk(struct tree *t) {
  if (t == NULL) return;
  futurecall(TraverseAndWalk(t->left));
  futurecall(TraverseAndWalk(t->right));
  Walk(t->list);
}
`

func TestFigure5Bottleneck(t *testing.T) {
	r := analyze(t, figure5)

	// Standalone, Traverse migrates.
	if l := r.FindLoop("Traverse/rec"); l.Mech != ChooseMigrate {
		t.Fatal("standalone Traverse must migrate")
	}

	// Inside WalkAndTraverse's parallel while loop, the Traverse
	// instance is a bottleneck (t is not updated by the outer loop):
	// demoted to caching.
	outer := r.FindLoop("WalkAndTraverse/while")
	if outer == nil || !outer.Parallel {
		t.Fatal("outer loop must be parallel")
	}
	var inst *Loop
	for _, c := range outer.Children {
		if strings.HasPrefix(c.Label, "Traverse/rec") {
			inst = c
		}
	}
	if inst == nil {
		t.Fatal("Traverse instance not expanded under the while loop")
	}
	if inst.Mech != ChooseCache || !inst.Bottleneck {
		t.Fatalf("Traverse inside WalkAndTraverse: mech=%s bottleneck=%v; want cache via bottleneck rule",
			inst.Mech, inst.Bottleneck)
	}

	// TraverseAndWalk: the recursion migrates (parallel), and the Walk
	// instance is not flagged — t->list differs at every node because t
	// is updated in the parent loop.
	rec := r.FindLoop("TraverseAndWalk/rec")
	if rec.Mech != ChooseMigrate {
		t.Fatal("TraverseAndWalk recursion must migrate")
	}
	var walkInst *Loop
	for _, c := range rec.Children {
		if strings.HasPrefix(c.Label, "Walk/while") {
			walkInst = c
		}
	}
	if walkInst == nil {
		t.Fatal("Walk instance not expanded under the recursion")
	}
	if walkInst.Bottleneck {
		t.Fatal("Walk inside TraverseAndWalk must not be a bottleneck")
	}
}

func TestAffinityAlgebraQuick(t *testing.T) {
	// orCombine and avgCombine keep affinities in [0,1]; orCombine
	// dominates both inputs (at least one path local), avgCombine lies
	// between them.
	f := func(pa, pb uint8) bool {
		a := float64(pa%101) / 100
		b := float64(pb%101) / 100
		or, avg := orCombine(a, b), avgCombine(a, b)
		lo, hi := math.Min(a, b), math.Max(a, b)
		return or >= hi-1e-12 && or <= 1+1e-12 &&
			avg >= lo-1e-12 && avg <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathAffinityProductQuick(t *testing.T) {
	// A chain s = s->f->f->…->f of length k has affinity a^k.
	f := func(paff uint8, k uint8) bool {
		aff := int(paff % 101)
		n := int(k%4) + 1
		path := "s"
		for i := 0; i < n; i++ {
			path += "->f"
		}
		src := `
struct n { struct n *f __affinity(` + itoa(aff) + `); };
void g(struct n *s) { while (s) { s = ` + path + `; } }
`
		prog, err := lang.Parse(src)
		if err != nil {
			return false
		}
		r := Analyze(prog, DefaultParams())
		l := r.FindLoop("g/while")
		got, ok := l.Matrix.Diagonal("s")
		want := math.Pow(float64(aff)/100, float64(n))
		return ok && math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestJoinOmitsOneSidedUpdates(t *testing.T) {
	// An update present in only one branch of an if is omitted: it does
	// not occur on every iteration.
	src := `
struct n { struct n *next; };
void g(struct n *s, int c) {
  while (s) {
    if (c > 0) { s = s->next; }
    c = c - 1;
  }
}
`
	r := analyze(t, src)
	l := r.FindLoop("g/while")
	if _, ok := l.Matrix.Diagonal("s"); ok {
		t.Fatal("one-sided update must be omitted")
	}
}

func TestJoinAveragesBothBranches(t *testing.T) {
	src := `
struct n { struct n *a __affinity(80); struct n *b __affinity(40); };
void g(struct n *s, int c) {
  while (s) {
    if (c > 0) { s = s->a; }
    else { s = s->b; }
  }
}
`
	r := analyze(t, src)
	l := r.FindLoop("g/while")
	if aff, ok := l.Matrix.Diagonal("s"); !ok || !approx(aff, 0.60) {
		t.Fatalf("(s,s) = %v,%v; want 60%% (average)", aff, ok)
	}
}

func TestInheritance(t *testing.T) {
	// A loop without an induction variable migrates on its parent's
	// variable.
	src := `
struct tree { struct tree *left __affinity(95); struct tree *right __affinity(95); int n; };
void g(struct tree *t) {
  if (t == NULL) return;
  int i = 0;
  while (i < t->n) {
    i = i + 1;
  }
  g(t->left);
  g(t->right);
}
`
	r := analyze(t, src)
	inner := r.FindLoop("g/while")
	if !inner.Inherited || inner.Var != "t" || inner.Mech != ChooseMigrate {
		t.Fatalf("inner loop: inherited=%v var=%q mech=%s; want inherited migrate t",
			inner.Inherited, inner.Var, inner.Mech)
	}
}

func TestParallelizableLoopMigratesBelowThreshold(t *testing.T) {
	// A parallel loop migrates even when affinity is below threshold,
	// because only migration generates new threads.
	src := `
struct list { struct list *next; };
void work(struct list *l) { return; }
void g(struct list *l) {
  while (l) {
    futurecall(work(l));
    l = l->next;
  }
}
`
	r := analyze(t, src)
	l := r.FindLoop("g/while")
	if !l.Parallel || l.Mech != ChooseMigrate {
		t.Fatalf("parallel=%v mech=%s; want parallel migrate", l.Parallel, l.Mech)
	}
}

func TestReportString(t *testing.T) {
	r := analyze(t, figure4)
	out := r.String()
	for _, want := range []string{"TreeAdd/rec", "update t ← t", "97%", "migrate t"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestUsesMigrationOnly(t *testing.T) {
	if !analyze(t, figure4).UsesMigrationOnly() {
		t.Error("TreeAdd is an M benchmark")
	}
	if analyze(t, defaultsSrc).UsesMigrationOnly() {
		t.Error("defaultsSrc contains cached loops")
	}
}
