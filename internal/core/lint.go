package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// This file is the mini-C lint pass: positioned diagnostics about the
// program's annotations and loop structure that the selection heuristic
// itself has no reason to reject, surfaced through `oldenc -lint`.
//
// Checks:
//
//   - affinity-range (error): a path-affinity annotation outside [0,100].
//     The parser accepts any integer so the diagnostic can point at the
//     field; the analysis clamps when computing affinities.
//   - unused-affinity (warning): an annotated field never dereferenced
//     inside any control loop — the hint cannot influence any update
//     matrix, so it is dead weight (or a typo for a field that is).
//   - shadowed-induction (warning): a loop whose induction variable is
//     also an enclosing loop's induction variable. The subset has one flat
//     namespace per function, so the inner loop is advancing the outer
//     loop's variable — legal, but almost always an oversight.
//   - bottleneck-demotion (warning): a loop instance the second heuristic
//     pass demoted to caching (Figure 5). The demotion is correct but
//     silent in the report's summary line; -lint surfaces every one.
//
// Four further checks — unreachable, use-before-init, dead-store and
// nil-deref — are solved over the control-flow graph with the generic
// worklist engine; they live in lintflow.go.

// DiagSeverity ranks a diagnostic.
type DiagSeverity int

const (
	// DiagWarning marks suspicious but legal programs.
	DiagWarning DiagSeverity = iota
	// DiagError marks annotations that are out of contract.
	DiagError
)

// String names the severity.
func (s DiagSeverity) String() string {
	if s == DiagError {
		return "error"
	}
	return "warning"
}

// Diag is one positioned lint diagnostic.
type Diag struct {
	Pos  lang.Pos
	Sev  DiagSeverity
	Code string
	Msg  string
}

// String renders the diagnostic in the conventional line:col form.
func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Pos, d.Sev, d.Msg, d.Code)
}

// Lint runs every lint check over the analyzed program and returns the
// diagnostics in deterministic order: by position, then severity (errors
// first), then code and message. Individual checks may emit in any order
// (the dataflow lints iterate block IDs, not source lines), so the sort
// here is what keeps golden files and -json output stable as checks are
// added.
func (r *Report) Lint() []Diag {
	var diags []Diag
	diags = append(diags, lintAffinityRange(r.Prog)...)
	diags = append(diags, lintUnusedAffinity(r)...)
	diags = append(diags, lintShadowedInduction(r)...)
	diags = append(diags, lintBottleneckDemotions(r)...)
	diags = append(diags, lintFlow(r)...)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Sev != b.Sev {
			return a.Sev > b.Sev // errors before warnings at one position
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
	return diags
}

// LintString renders diagnostics one per line (the `oldenc -lint` output).
func LintString(diags []Diag) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// lintAffinityRange flags __affinity values outside [0,100].
func lintAffinityRange(prog *lang.Program) []Diag {
	var diags []Diag
	for _, s := range prog.Structs {
		for _, f := range s.Fields {
			if f.Affinity != -1 && (f.Affinity < 0 || f.Affinity > 100) {
				diags = append(diags, Diag{
					Pos: f.Pos, Sev: DiagError, Code: "affinity-range",
					Msg: fmt.Sprintf("affinity %d%% on %s.%s outside [0,100]", f.Affinity, s.Name, f.Name),
				})
			}
		}
	}
	return diags
}

// lintUnusedAffinity flags annotated fields that no control loop ever
// dereferences: their hints can never reach an update matrix.
func lintUnusedAffinity(r *Report) []Diag {
	type sf struct{ st, field string }
	used := map[sf]bool{}

	for _, fn := range r.Prog.Funcs {
		te := buildTypeEnv(fn)
		record := func(e lang.Expr) {
			var walkExpr func(e lang.Expr)
			walkExpr = func(e lang.Expr) {
				switch e := e.(type) {
				case *lang.Arrow:
					if st := exprStruct(r.Prog, te, e.X); st != "" {
						used[sf{st, e.Field}] = true
					}
					walkExpr(e.X)
				case *lang.Call:
					for _, a := range e.Args {
						walkExpr(a)
					}
				case *lang.Binary:
					walkExpr(e.L)
					walkExpr(e.R)
				case *lang.Unary:
					walkExpr(e.X)
				case *lang.Touch:
					walkExpr(e.E)
				}
			}
			walkExpr(e)
		}

		// A recursive function's whole body is its recursion control
		// loop; otherwise only statements inside while/for bodies count.
		var walk func(s lang.Stmt, inLoop bool)
		walk = func(s lang.Stmt, inLoop bool) {
			switch s := s.(type) {
			case *lang.Block:
				for _, st := range s.Stmts {
					walk(st, inLoop)
				}
			case *lang.VarDecl:
				if inLoop && s.Init != nil {
					record(s.Init)
				}
			case *lang.Assign:
				if inLoop {
					record(s.LHS)
					record(s.RHS)
				}
			case *lang.If:
				if inLoop {
					record(s.Cond)
				}
				walk(s.Then, inLoop)
				if s.Else != nil {
					walk(s.Else, inLoop)
				}
			case *lang.While:
				record(s.Cond)
				walk(s.Body, true)
			case *lang.For:
				if s.Init != nil {
					walk(s.Init, true)
				}
				if s.Cond != nil {
					record(s.Cond)
				}
				if s.Post != nil {
					walk(s.Post, true)
				}
				walk(s.Body, true)
			case *lang.Return:
				if inLoop && s.E != nil {
					record(s.E)
				}
			case *lang.ExprStmt:
				if inLoop {
					record(s.E)
				}
			}
		}
		walk(fn.Body, isRecursive(fn))
	}

	var diags []Diag
	for _, s := range r.Prog.Structs {
		for _, f := range s.Fields {
			if f.Affinity == -1 {
				continue
			}
			if !used[sf{s.Name, f.Name}] {
				diags = append(diags, Diag{
					Pos: f.Pos, Sev: DiagWarning, Code: "unused-affinity",
					Msg: fmt.Sprintf("affinity hint on %s.%s is never dereferenced in any control loop", s.Name, f.Name),
				})
			}
		}
	}
	return diags
}

// lintShadowedInduction flags loops whose induction variable is also an
// enclosing loop's induction variable in the same function.
func lintShadowedInduction(r *Report) []Diag {
	var diags []Diag
	var walk func(l *Loop)
	walk = func(l *Loop) {
		if l.origin == nil && l.Var != "" && !l.Inherited {
			for a := l.Parent; a != nil; a = a.Parent {
				if a.origin != nil || a.Fn != l.Fn {
					break // crossed a call-instance boundary
				}
				if a.Var == l.Var && !a.Inherited {
					diags = append(diags, Diag{
						Pos: l.Pos, Sev: DiagWarning, Code: "shadowed-induction",
						Msg: fmt.Sprintf("loop %s reuses induction variable %q of enclosing loop %s", l.Label, l.Var, a.Label),
					})
					break
				}
			}
		}
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, fr := range r.Funcs {
		for _, l := range fr.Loops {
			walk(l)
		}
	}
	return diags
}

// lintBottleneckDemotions surfaces every demotion made by the heuristic's
// second pass: the loop instance that was serialized inside a parallel
// ancestor and fell back to caching.
func lintBottleneckDemotions(r *Report) []Diag {
	var diags []Diag
	var walk func(l *Loop)
	walk = func(l *Loop) {
		if l.Bottleneck {
			parent := "a parallel loop"
			for a := l.Parent; a != nil; a = a.Parent {
				if a.Parallel {
					parent = a.Label
					break
				}
			}
			diags = append(diags, Diag{
				Pos: l.Pos, Sev: DiagWarning, Code: "bottleneck-demotion",
				Msg: fmt.Sprintf("loop %s demoted to caching: migrating %q would serialize parallel loop %s", l.Label, l.Var, parent),
			})
		}
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, fr := range r.Funcs {
		for _, l := range fr.Loops {
			walk(l)
		}
	}
	return diags
}
