// Package core implements the paper's primary contribution: the
// compile-time analysis that selects, for each pointer dereference, between
// computation migration and software caching (paper §4).
//
// The three-step process:
//
//  1. The programmer supplies path-affinity hints on structure fields
//     (§4.1); unannotated fields default to 70%.
//  2. A dataflow analysis over each control loop (iterative loops and
//     recursions) builds an update matrix (§4.2): entry (s,t) holds the
//     path affinity of the update when s's value at the end of an
//     iteration is t's value at the start dereferenced through a field
//     path. Diagonal entries mark induction variables. Joins average
//     affinities when the update appears in both branches and omit it
//     otherwise; multiple recursive updates combine as 1−∏(1−aᵢ); path
//     affinities multiply along the path.
//  3. A two-pass heuristic (§4.3): per loop, pick the induction variable
//     with the strongest update; choose migration if its affinity meets
//     the 90% threshold or the loop is parallelizable (contains futures),
//     else caching; loops without induction variables inherit the parent's
//     migration variable. A second pass demotes inner loops to caching
//     when migrating would serialize a parallel outer loop on one node —
//     the bottleneck rule of Figure 5.
package core

import "repro/internal/lang"

// Params are the heuristic's tunables, with the paper's defaults: the
// migration threshold is 90% and the default path-affinity 70% — chosen so
// that, by default, list traversals cache, tree traversals migrate, and
// tree searches cache. (The paper notes the break-even affinity is ≈86%
// given the 7× migration:miss cost ratio.)
type Params struct {
	Threshold       float64
	DefaultAffinity float64
	// InterproceduralReturns enables the return-value path extension the
	// paper leaves as future work: calls to functions that always return
	// a field path of one parameter contribute that path to the update
	// analysis. Off by default to match the paper's preliminary
	// implementation ("we do not consider return values").
	InterproceduralReturns bool
}

// DefaultParams returns the paper's settings.
func DefaultParams() Params {
	return Params{Threshold: 0.90, DefaultAffinity: 0.70}
}

// fieldAffinity returns the path affinity of one field of a struct, in
// [0,1], applying the default when the program gave no hint. Non-pointer
// fields have affinity 1 (dereferencing them does not leave the object).
func fieldAffinity(prog *lang.Program, structName, field string, p Params) float64 {
	s := prog.Struct(structName)
	if s == nil {
		return p.DefaultAffinity
	}
	f := s.Field(field)
	if f == nil {
		return p.DefaultAffinity
	}
	if !f.Type.IsPtr() {
		return 1
	}
	if f.Affinity < 0 {
		return p.DefaultAffinity
	}
	// Out-of-range hints are a lint error (core.Lint); the analysis
	// clamps so probabilities stay probabilities.
	if f.Affinity > 100 {
		return 1
	}
	return float64(f.Affinity) / 100
}

// orCombine merges two update affinities when both updates execute in the
// same iteration (multiple recursive calls): the probability that at least
// one stays local, 1−(1−a)(1−b), assuming independence (§4.2, Figure 4).
func orCombine(a, b float64) float64 { return 1 - (1-a)*(1-b) }

// avgCombine merges updates appearing in both branches of a join, assuming
// each branch is taken about half the time (§4.2).
func avgCombine(a, b float64) float64 { return (a + b) / 2 }
