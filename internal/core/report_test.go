package core

import "testing"

// An ambiguous prefix ("Walk" matches both Walk's and WalkAndTraverse's
// loops, plus the call-expanded Walk instance under TraverseAndWalk) must
// deterministically resolve to the original, shallowest,
// lexicographically-first loop.
func TestFindLoopAmbiguousPrefix(t *testing.T) {
	r := analyze(t, figure5)
	l := r.FindLoop("Walk")
	if l == nil {
		t.Fatal("no match")
	}
	if l.origin != nil {
		t.Fatalf("FindLoop returned a call instance of %s", l.Label)
	}
	if got := l.Label; got[:10] != "Walk/while" {
		t.Fatalf("FindLoop(\"Walk\") = %s; want Walk's own while loop", got)
	}
	// Repeated lookups agree (determinism).
	for i := 0; i < 5; i++ {
		if r.FindLoop("Walk") != l {
			t.Fatal("FindLoop not stable across calls")
		}
	}
}

// The original loop wins over its call-expanded instances even when the
// instance was demoted: MechanismOf("Traverse", "t") reports the
// standalone choice.
func TestFindLoopPrefersOriginalOverInstance(t *testing.T) {
	r := analyze(t, figure5)
	l := r.FindLoop("Traverse/rec")
	if l == nil || l.origin != nil {
		t.Fatal("want the original Traverse recursion loop")
	}
	if l.Mech != ChooseMigrate {
		t.Fatal("standalone Traverse migrates")
	}
	if m := r.MechanismOf("Traverse/rec", "t"); m != ChooseMigrate {
		t.Fatalf("MechanismOf = %s; want migrate (the original, not the demoted instance)", m)
	}
}

// Nested loops sharing a label prefix: the shallower (outer) loop wins.
func TestFindLoopNestedSamePrefix(t *testing.T) {
	src := `
struct n { struct n *next; };
void g(struct n *a, struct n *b) {
  while (a) {
    while (b) { b = b->next; }
    a = a->next;
  }
}
`
	r := analyze(t, src)
	l := r.FindLoop("g/while")
	if l == nil {
		t.Fatal("no match")
	}
	if l.Parent != nil {
		t.Fatalf("FindLoop(\"g/while\") = %s (nested); want the outer loop", l.Label)
	}
	if l.Var != "a" {
		t.Fatalf("outer loop var = %q; want a", l.Var)
	}
	// An exact label beats the shallower proper-prefix match.
	inner := l.Children[0]
	if got := r.FindLoop(inner.Label); got != inner {
		t.Fatalf("exact label %q did not resolve to the inner loop", inner.Label)
	}
}

func TestFindLoopUnknownPrefix(t *testing.T) {
	r := analyze(t, figure4)
	if l := r.FindLoop("NoSuchLoop"); l != nil {
		t.Fatalf("FindLoop of unknown prefix = %v; want nil", l)
	}
}

// MechanismOf: unknown loop prefixes and unknown variables both fall back
// to caching — the safe default the compiler would emit.
func TestMechanismOfEdgeCases(t *testing.T) {
	r := analyze(t, figure4)
	if m := r.MechanismOf("NoSuchLoop", "t"); m != ChooseCache {
		t.Fatalf("unknown loop: %s; want cache", m)
	}
	if m := r.MechanismOf("TreeAdd/rec", "nosuchvar"); m != ChooseCache {
		t.Fatalf("unknown variable: %s; want cache", m)
	}
	if m := r.MechanismOf("TreeAdd/rec", "t"); m != ChooseMigrate {
		t.Fatalf("induction variable: %s; want migrate", m)
	}
}
