package core

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/lang/cfg"
)

// This file holds the CFG-based lint checks, all solved on the same
// substrate the update-matrix analysis uses (internal/lang/cfg +
// internal/dataflow):
//
//   - unreachable (warning): statements no execution reaches — code after
//     a return, the body of a constant-false branch, anything following
//     an infinite loop.
//   - use-before-init (warning): a pointer variable that may be read
//     before any assignment reaches it. Forward may-analysis: the set of
//     possibly-uninitialized pointers, union join.
//   - dead-store (warning): a value assigned to a variable that no path
//     ever reads. Backward liveness with union join; stores through field
//     paths are heap writes and never flagged.
//   - nil-deref (error): a dereference of a variable that is NULL on
//     every path reaching it. Forward must-analysis over {nil, non-nil}
//     with branch-edge refinement (p == NULL, p != NULL, p, !p, &&, ||),
//     so the guard idiom `if (p == NULL) return;` sharpens the fall-
//     through state.
//
// Each lint solves to a fixpoint first and then replays the transfer over
// reachable blocks once, emitting diagnostics as it goes; Report.Lint
// sorts everything at the end, so emission order does not matter.

// lintFlow runs the four dataflow lints over every function.
func lintFlow(r *Report) []Diag {
	var diags []Diag
	for _, fn := range r.Prog.Funcs {
		g := cfg.Build(fn)
		te := buildTypeEnv(fn)
		reach := g.Reachable()
		diags = append(diags, lintUnreachable(g, reach)...)
		diags = append(diags, lintUseBeforeInit(g, te, reach)...)
		diags = append(diags, lintDeadStores(g, reach)...)
		diags = append(diags, lintNilDeref(g, te, reach)...)
	}
	return diags
}

// ---- unreachable ----

// lintUnreachable reports the head of every unreachable region: an
// unreachable block with content whose predecessors are all reachable (a
// pruned constant branch) or absent (the continuation after a return).
// Interior blocks of the region are suppressed so one dead region yields
// one diagnostic.
func lintUnreachable(g *cfg.Graph, reach []bool) []Diag {
	var diags []Diag
	for _, b := range g.Blocks {
		if reach[b.ID] {
			continue
		}
		head := true
		for _, p := range b.Preds() {
			if !reach[p.ID] {
				head = false
			}
		}
		if !head {
			continue
		}
		var pos lang.Pos
		switch {
		case len(b.Stmts) > 0:
			pos = lang.StmtPos(b.Stmts[0])
		case b.Cond != nil:
			pos = b.CondPos
		default:
			continue // empty structural block: nothing to point at
		}
		diags = append(diags, Diag{
			Pos: pos, Sev: DiagWarning, Code: "unreachable",
			Msg: "statement can never execute",
		})
	}
	return diags
}

// ---- shared set lattice ----

// varset is a set of variable names; nil is the empty set (bottom).
type varset map[string]bool

type varsetLattice struct{}

func (varsetLattice) Bottom() varset { return nil }

func (varsetLattice) Join(a, b varset) varset {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(varset, len(a)+len(b))
	for v := range a {
		out[v] = true
	}
	for v := range b {
		out[v] = true
	}
	return out
}

func (varsetLattice) Equal(a, b varset) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func (s varset) clone() varset {
	out := make(varset, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

// ---- use-before-init ----

// lintUseBeforeInit solves "which pointer variables may still be
// uninitialized" forward (parameters start initialized; a declaration
// without an initializer introduces the variable uninitialized; any
// assignment retires it) and flags reads of may-uninitialized pointers.
func lintUseBeforeInit(g *cfg.Graph, te typeEnv, reach []bool) []Diag {
	step := func(s varset, st lang.Stmt, report func(u cfg.VarUse)) {
		for _, u := range cfg.StmtReads(st) {
			if s[u.Name] && report != nil {
				report(u)
			}
		}
		switch st := st.(type) {
		case *lang.VarDecl:
			if st.Type.IsPtr() && st.Init == nil {
				s[st.Name] = true
			} else {
				delete(s, st.Name)
			}
		case *lang.Assign:
			if id, ok := st.LHS.(*lang.Ident); ok {
				delete(s, id.Name)
			}
		}
	}
	res := dataflow.Solve(g, dataflow.Problem[varset]{
		Lattice:  varsetLattice{},
		Dir:      dataflow.Forward,
		Boundary: varset{},
		Transfer: func(n int, in varset) varset {
			s := in.clone()
			for _, st := range g.Block(n).Stmts {
				step(s, st, nil)
			}
			return s
		},
	})

	var diags []Diag
	seen := map[lang.Pos]bool{} // one diagnostic per use site
	report := func(u cfg.VarUse) {
		if seen[u.Pos] {
			return
		}
		seen[u.Pos] = true
		diags = append(diags, Diag{
			Pos: u.Pos, Sev: DiagWarning, Code: "use-before-init",
			Msg: fmt.Sprintf("pointer %q may be used before it is assigned", u.Name),
		})
	}
	for _, b := range g.Blocks {
		if !reach[b.ID] {
			continue
		}
		s := res.In[b.ID].clone()
		for _, st := range b.Stmts {
			step(s, st, report)
		}
		if b.Cond != nil {
			for _, u := range cfg.ExprReads(b.Cond) {
				if s[u.Name] {
					report(u)
				}
			}
		}
	}
	return diags
}

// ---- dead stores ----

// lintDeadStores solves liveness backward and flags assignments to
// variables that are dead at the store. Heap stores (p->f = …) are never
// flagged, and a declaration without an initializer stores nothing.
func lintDeadStores(g *cfg.Graph, reach []bool) []Diag {
	// step applies one statement backwards to the live set; report is
	// called for dead stores with the stored variable's name.
	step := func(live varset, st lang.Stmt, report func(pos lang.Pos, name string)) {
		switch st := st.(type) {
		case *lang.VarDecl:
			if st.Init != nil {
				if !live[st.Name] && report != nil {
					report(st.Pos, st.Name)
				}
				delete(live, st.Name)
				for _, u := range cfg.ExprReads(st.Init) {
					live[u.Name] = true
				}
				return
			}
			delete(live, st.Name)
		case *lang.Assign:
			if id, ok := st.LHS.(*lang.Ident); ok {
				if !live[id.Name] && report != nil {
					report(st.Pos, id.Name)
				}
				delete(live, id.Name)
			} else {
				for _, u := range cfg.ExprReads(st.LHS) {
					live[u.Name] = true
				}
			}
			for _, u := range cfg.ExprReads(st.RHS) {
				live[u.Name] = true
			}
		default:
			for _, u := range cfg.StmtReads(st) {
				live[u.Name] = true
			}
		}
	}
	blockStep := func(n int, liveOut varset, report func(pos lang.Pos, name string)) varset {
		live := liveOut.clone()
		b := g.Block(n)
		if b.Cond != nil {
			for _, u := range cfg.ExprReads(b.Cond) {
				live[u.Name] = true
			}
		}
		for i := len(b.Stmts) - 1; i >= 0; i-- {
			step(live, b.Stmts[i], report)
		}
		return live
	}
	res := dataflow.Solve(g, dataflow.Problem[varset]{
		Lattice:  varsetLattice{},
		Dir:      dataflow.Backward,
		Boundary: varset{},
		Transfer: func(n int, liveOut varset) varset { return blockStep(n, liveOut, nil) },
	})

	var diags []Diag
	for _, b := range g.Blocks {
		if !reach[b.ID] {
			continue
		}
		blockStep(b.ID, res.In[b.ID], func(pos lang.Pos, name string) {
			diags = append(diags, Diag{
				Pos: pos, Sev: DiagWarning, Code: "dead-store",
				Msg: fmt.Sprintf("value stored to %q is never used", name),
			})
		})
	}
	return diags
}

// ---- guaranteed-nil dereference ----

// nilState is the abstract nullness of one pointer variable; absence from
// the map means unknown.
type nilState uint8

const (
	nsNil nilState = iota + 1
	nsNonNil
)

// nilEnv is the dataflow value: per-variable nullness on reachable paths,
// bottom (reachable=false) elsewhere.
type nilEnv struct {
	reachable bool
	m         map[string]nilState
}

type nilLattice struct{}

func (nilLattice) Bottom() nilEnv { return nilEnv{} }

func (nilLattice) Join(a, b nilEnv) nilEnv {
	if !a.reachable {
		return b
	}
	if !b.reachable {
		return a
	}
	out := map[string]nilState{}
	for v, sa := range a.m {
		if sb, ok := b.m[v]; ok && sa == sb {
			out[v] = sa
		}
	}
	return nilEnv{reachable: true, m: out}
}

func (nilLattice) Equal(a, b nilEnv) bool {
	if a.reachable != b.reachable {
		return false
	}
	if len(a.m) != len(b.m) {
		return false
	}
	for v, sa := range a.m {
		if b.m[v] != sa {
			return false
		}
	}
	return true
}

func cloneNil(m map[string]nilState) map[string]nilState {
	out := make(map[string]nilState, len(m))
	for v, s := range m {
		out[v] = s
	}
	return out
}

// nilValue abstracts the RHS of a pointer assignment.
func nilValue(m map[string]nilState, e lang.Expr) (nilState, bool) {
	switch e := e.(type) {
	case *lang.Null:
		return nsNil, true
	case *lang.Ident:
		s, ok := m[e.Name]
		return s, ok
	}
	return 0, false
}

// refineNil sharpens the nullness map with the truth (taken) or falsity
// (!taken) of a branch condition.
func refineNil(te typeEnv, m map[string]nilState, cond lang.Expr, taken bool) {
	set := func(name string, s nilState) {
		if _, isPtr := te[name]; isPtr {
			m[name] = s
		}
	}
	switch c := cond.(type) {
	case *lang.Ident:
		if taken {
			set(c.Name, nsNonNil)
		} else {
			set(c.Name, nsNil)
		}
	case *lang.Unary:
		if c.Op == "!" {
			refineNil(te, m, c.X, !taken)
		}
	case *lang.Binary:
		switch c.Op {
		case "==", "!=":
			// Only x == NULL / NULL == x (and !=) refine.
			var id *lang.Ident
			if l, ok := c.L.(*lang.Ident); ok {
				if _, n := c.R.(*lang.Null); n {
					id = l
				}
			} else if r, ok := c.R.(*lang.Ident); ok {
				if _, n := c.L.(*lang.Null); n {
					id = r
				}
			}
			if id == nil {
				return
			}
			if isNil := taken == (c.Op == "=="); isNil {
				set(id.Name, nsNil)
			} else {
				set(id.Name, nsNonNil)
			}
		case "&&":
			if taken {
				refineNil(te, m, c.L, true)
				refineNil(te, m, c.R, true)
			}
		case "||":
			if !taken {
				refineNil(te, m, c.L, false)
				refineNil(te, m, c.R, false)
			}
		}
	}
}

// lintNilDeref solves nullness forward with edge refinement and flags
// dereferences whose base is NULL on every path reaching them. After a
// dereference the base is assumed non-nil (execution did not survive
// otherwise), so one nil pointer reports once per chain, not per field.
func lintNilDeref(g *cfg.Graph, te typeEnv, reach []bool) []Diag {
	step := func(m map[string]nilState, st lang.Stmt, report func(d cfg.Deref)) {
		for _, d := range cfg.StmtDerefs(st) {
			if m[d.Base] == nsNil && report != nil {
				report(d)
			}
			if _, isPtr := te[d.Base]; isPtr {
				m[d.Base] = nsNonNil
			}
		}
		switch st := st.(type) {
		case *lang.VarDecl:
			if !st.Type.IsPtr() {
				return
			}
			if s, ok := nilValue(m, st.Init); ok {
				m[st.Name] = s
			} else {
				delete(m, st.Name)
			}
		case *lang.Assign:
			id, ok := st.LHS.(*lang.Ident)
			if !ok {
				return // heap store: no local changes
			}
			if _, isPtr := te[id.Name]; !isPtr {
				return
			}
			if s, ok := nilValue(m, st.RHS); ok {
				m[id.Name] = s
			} else {
				delete(m, id.Name)
			}
		}
	}
	condDerefs := func(m map[string]nilState, b *cfg.Block, report func(d cfg.Deref)) {
		if b.Cond == nil {
			return
		}
		for _, d := range cfg.ExprDerefs(b.Cond) {
			if m[d.Base] == nsNil && report != nil {
				report(d)
			}
			if _, isPtr := te[d.Base]; isPtr {
				m[d.Base] = nsNonNil
			}
		}
	}
	lat := nilLattice{}
	res := dataflow.Solve(g, dataflow.Problem[nilEnv]{
		Lattice:  lat,
		Dir:      dataflow.Forward,
		Boundary: nilEnv{reachable: true, m: map[string]nilState{}},
		Transfer: func(n int, in nilEnv) nilEnv {
			if !in.reachable {
				return in
			}
			m := cloneNil(in.m)
			for _, st := range g.Block(n).Stmts {
				step(m, st, nil)
			}
			condDerefs(m, g.Block(n), nil)
			return nilEnv{reachable: true, m: m}
		},
		TransferEdge: func(from, to int, v nilEnv) nilEnv {
			if !v.reachable {
				return v
			}
			b := g.Block(from)
			tb, fb, ok := b.Branch()
			if !ok || tb == fb {
				return v
			}
			m := cloneNil(v.m)
			refineNil(te, m, b.Cond, tb.ID == to)
			return nilEnv{reachable: true, m: m}
		},
	})

	var diags []Diag
	seen := map[lang.Pos]bool{}
	report := func(d cfg.Deref) {
		if seen[d.Pos] {
			return
		}
		seen[d.Pos] = true
		diags = append(diags, Diag{
			Pos: d.Pos, Sev: DiagError, Code: "nil-deref",
			Msg: fmt.Sprintf("dereference of %q, which is always NULL here", d.Base),
		})
	}
	for _, b := range g.Blocks {
		if !reach[b.ID] || !res.In[b.ID].reachable {
			continue
		}
		m := cloneNil(res.In[b.ID].m)
		for _, st := range b.Stmts {
			step(m, st, report)
		}
		condDerefs(m, b, report)
	}
	return diags
}
