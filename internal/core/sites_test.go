package core

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func analyzeSrc(t *testing.T, src string) *Report {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog, DefaultParams())
}

func TestDerefSitesAttribution(t *testing.T) {
	r := analyzeSrc(t, `
struct tree { int v; struct tree *left __affinity(95); struct tree *right __affinity(95); };
struct list { int v; struct list *next; };

int Walk(struct tree *t, struct list *l) {
  int n = t->v;
  if (t == NULL) return 0;
  n = n + Walk(t->left, l) + Walk(t->right, l);
  while (l) {
    n = n + l->v;
    l = l->next;
  }
  return n;
}
`)
	sites := r.DerefSites()
	if len(sites) == 0 {
		t.Fatal("no sites found")
	}
	var tMig, lCache int
	for _, s := range sites {
		switch {
		case s.Base == "t" && s.Mech == ChooseMigrate:
			tMig++
		case s.Base == "t":
			t.Errorf("t deref at %s cached; recursion migrates t", s.Pos)
		case s.Base == "l" && s.Mech == ChooseCache:
			lCache++
		case s.Base == "l":
			t.Errorf("l deref at %s migrates; list walk caches", s.Pos)
		}
	}
	if tMig < 3 || lCache < 2 {
		t.Fatalf("site counts: t-migrate=%d l-cache=%d", tMig, lCache)
	}
}

func TestDerefSitesTopLevelCache(t *testing.T) {
	r := analyzeSrc(t, `
struct pt { int x; struct pt *buddy; };
int f(struct pt *p) { return p->x + p->buddy->x; }
`)
	for _, s := range r.DerefSites() {
		if s.Mech != ChooseCache || s.Loop != "" {
			t.Fatalf("top-level deref must cache: %+v", s)
		}
	}
}

func TestSitesString(t *testing.T) {
	r := analyzeSrc(t, `
struct list { int v; struct list *next; };
int sum(struct list *l) {
  int n = 0;
  while (l) { n = n + l->v; l = l->next; }
  return n;
}
`)
	out := r.SitesString()
	for _, want := range []string{"function sum:", "cache", "deref of l", "sum/while"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sites output missing %q:\n%s", want, out)
		}
	}
}

func TestFindLoopMissing(t *testing.T) {
	r := analyzeSrc(t, `int f(int x) { return x; }`)
	if r.FindLoop("nope") != nil {
		t.Fatal("expected nil for unknown loop")
	}
	if r.MechanismOf("nope", "x") != ChooseCache {
		t.Fatal("unknown loops default to cache")
	}
}

func TestMechanismOf(t *testing.T) {
	r := analyzeSrc(t, `
struct tree { struct tree *left __affinity(95); struct tree *right __affinity(95); };
void T(struct tree *t) {
  if (t == NULL) return;
  T(t->left);
  T(t->right);
}
`)
	if r.MechanismOf("T/rec", "t") != ChooseMigrate {
		t.Fatal("t must migrate in T's recursion")
	}
	if r.MechanismOf("T/rec", "other") != ChooseCache {
		t.Fatal("non-selected variables cache")
	}
}

func TestFuncLoops(t *testing.T) {
	r := analyzeSrc(t, `
struct l { struct l *next; };
void f(struct l *a) { while (a) { a = a->next; } }
`)
	if got := r.FuncLoops("f"); len(got) != 1 {
		t.Fatalf("f has %d top-level loops", len(got))
	}
	if r.FuncLoops("missing") != nil {
		t.Fatal("unknown function must return nil")
	}
}

func TestNestedLoopMatrixIsolation(t *testing.T) {
	// A variable assigned in a nested loop is opaque to the outer loop's
	// matrix.
	r := analyzeSrc(t, `
struct l { struct l *next; };
void f(struct l *a, struct l *b) {
  while (a) {
    while (b) { b = b->next; }
    a = a->next;
  }
}
`)
	outer := r.FindLoop("f/while@4")
	if outer == nil {
		t.Fatal("outer loop not found")
	}
	if _, ok := outer.Matrix.Diagonal("b"); ok {
		t.Fatal("b's inner-loop update must not leak into the outer matrix")
	}
	if aff, ok := outer.Matrix.Diagonal("a"); !ok || aff != 0.70 {
		t.Fatalf("outer a update = %v,%v", aff, ok)
	}
}
