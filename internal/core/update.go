package core

import (
	"repro/internal/dataflow"
	"repro/internal/lang"
	"repro/internal/lang/cfg"
)

// Matrix is an update matrix (§4.2): Matrix[s][t] is the path affinity of
// the update of variable s by variable t — present when s's value at the
// end of a loop iteration equals t's value from the beginning of the
// iteration dereferenced through a field path. Entries on the diagonal
// identify induction variables.
type Matrix map[string]map[string]float64

// set records an entry.
func (m Matrix) set(s, t string, aff float64) {
	row := m[s]
	if row == nil {
		row = map[string]float64{}
		m[s] = row
	}
	row[t] = aff
}

// Get returns an entry and whether it is present.
func (m Matrix) Get(s, t string) (float64, bool) {
	aff, ok := m[s][t]
	return aff, ok
}

// Diagonal returns the affinity of s's self-update, if any: s is an
// induction variable exactly when this is present.
func (m Matrix) Diagonal(s string) (float64, bool) { return m.Get(s, s) }

// typeEnv maps pointer variables to the struct they point to.
type typeEnv map[string]string

// buildTypeEnv collects the pointer-typed parameters and locals of a
// function (the subset has a flat per-function namespace).
func buildTypeEnv(f *lang.FuncDecl) typeEnv {
	te := typeEnv{}
	for _, p := range f.Params {
		if p.Type.IsPtr() {
			te[p.Name] = p.Type.Struct
		}
	}
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Type.IsPtr() {
				te[s.Name] = s.Type.Struct
			}
		case *lang.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Post != nil {
				walk(s.Post)
			}
			walk(s.Body)
		}
	}
	walk(f.Body)
	return te
}

// exprStruct resolves the pointed-to struct of a pointer expression, or ""
// when unknown.
func exprStruct(prog *lang.Program, te typeEnv, e lang.Expr) string {
	switch e := e.(type) {
	case *lang.Ident:
		return te[e.Name]
	case *lang.Arrow:
		st := exprStruct(prog, te, e.X)
		if st == "" {
			return ""
		}
		sd := prog.Struct(st)
		if sd == nil {
			return ""
		}
		fd := sd.Field(e.Field)
		if fd == nil || !fd.Type.IsPtr() {
			return ""
		}
		return fd.Type.Struct
	}
	return ""
}

// symval is the symbolic value of a pointer variable at a program point,
// relative to variable values at the head of the current iteration: either
// unknown, or "base dereferenced through a path with affinity aff" (ident
// marks the empty path, i.e. the variable is unchanged).
type symval struct {
	known bool
	base  string
	aff   float64
	ident bool
}

var unknownVal = symval{}

// env maps pointer variables to their symbolic values.
type env map[string]symval

func identityEnv(te typeEnv) env {
	e := env{}
	for v := range te {
		e[v] = symval{known: true, base: v, aff: 1, ident: true}
	}
	return e
}

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// join merges the environments of two branches per the paper's rule:
// matching updates average their affinities; an update absent from one
// branch is omitted (only updates occurring on every iteration count).
func join(a, b env) env {
	out := env{}
	for v, va := range a {
		vb, ok := b[v]
		if !ok || !va.known || !vb.known || va.base != vb.base {
			out[v] = unknownVal
			continue
		}
		switch {
		case va.ident && vb.ident:
			out[v] = va
		case va.ident != vb.ident:
			// A real update in one branch, none in the other:
			// the update does not occur every iteration — omit.
			out[v] = unknownVal
		default:
			out[v] = symval{known: true, base: va.base, aff: avgCombine(va.aff, vb.aff)}
		}
	}
	for v := range b {
		if _, ok := a[v]; !ok {
			out[v] = unknownVal
		}
	}
	return out
}

// analysis carries the per-function analysis context.
type analysis struct {
	prog   *lang.Program
	fn     *lang.FuncDecl
	te     typeEnv
	params Params
	// summaries holds return-path summaries when the interprocedural
	// extension is enabled; summarizeFn resolves them on demand while
	// they are being computed.
	summaries   map[string]retSummary
	summarizeFn func(name string) (retSummary, bool)
}

// evalExpr computes the symbolic value of a pointer expression.
func (a *analysis) evalExpr(ev env, e lang.Expr) symval {
	switch e := e.(type) {
	case *lang.Ident:
		if v, ok := ev[e.Name]; ok {
			return v
		}
	case *lang.Arrow:
		v := a.evalExpr(ev, e.X)
		if !v.known {
			return unknownVal
		}
		st := exprStruct(a.prog, a.te, e.X)
		if st == "" {
			return unknownVal
		}
		aff := v.aff * fieldAffinity(a.prog, st, e.Field, a.params)
		return symval{known: true, base: v.base, aff: aff}
	}
	if c, ok := e.(*lang.Call); ok && a.params.InterproceduralReturns && !c.Future {
		if sum, ok := a.lookupSummary(c.Name); ok {
			g := a.prog.Func(c.Name)
			for i, p := range g.Params {
				if p.Name != sum.param || i >= len(c.Args) {
					continue
				}
				v := a.evalExpr(ev, c.Args[i])
				if !v.known {
					break
				}
				return symval{
					known: true,
					base:  v.base,
					aff:   v.aff * sum.aff,
					ident: v.ident && sum.ident,
				}
			}
		}
	}
	// Other calls, literals, arithmetic: no value tracked (the paper's
	// preliminary implementation does not consider return values at all).
	return unknownVal
}

// lookupSummary resolves a return-path summary by name.
func (a *analysis) lookupSummary(name string) (retSummary, bool) {
	if s, ok := a.summaries[name]; ok {
		return s, true
	}
	if a.summarizeFn != nil {
		return a.summarizeFn(name)
	}
	return retSummary{}, false
}

// killAssigned marks every variable assigned anywhere inside s as unknown
// (used for nested loops, which the analysis treats as opaque within the
// enclosing loop's dataflow).
func killAssigned(ev env, s lang.Stmt) {
	switch s := s.(type) {
	case *lang.Block:
		for _, st := range s.Stmts {
			killAssigned(ev, st)
		}
	case *lang.VarDecl:
		ev[s.Name] = unknownVal
	case *lang.Assign:
		if id, ok := s.LHS.(*lang.Ident); ok {
			ev[id.Name] = unknownVal
		}
	case *lang.If:
		killAssigned(ev, s.Then)
		if s.Else != nil {
			killAssigned(ev, s.Else)
		}
	case *lang.While:
		killAssigned(ev, s.Body)
	case *lang.For:
		if s.Init != nil {
			killAssigned(ev, s.Init)
		}
		if s.Post != nil {
			killAssigned(ev, s.Post)
		}
		killAssigned(ev, s.Body)
	}
}

// transferStmt applies one straight-line statement's effect to the
// symbolic environment in place. Nested syntactic loops arrive opaque
// (body-mode CFG blocks keep them as single statements) and kill their
// assignments; returns and expression statements change no local values.
func (a *analysis) transferStmt(ev env, s lang.Stmt) {
	switch s := s.(type) {
	case *lang.VarDecl:
		if s.Type.IsPtr() {
			if s.Init != nil {
				ev[s.Name] = a.evalExpr(ev, s.Init)
			} else {
				ev[s.Name] = unknownVal
			}
		}
	case *lang.Assign:
		if id, ok := s.LHS.(*lang.Ident); ok {
			if _, isPtr := a.te[id.Name]; isPtr {
				ev[id.Name] = a.evalExpr(ev, s.RHS)
			}
		}
		// Heap stores (p->f = …) do not change local variables.
	case *lang.While, *lang.For:
		killAssigned(ev, s)
	}
}

// envVal is the dataflow value for the update-matrix problem: a symbolic
// environment on reachable paths, bottom (reachable=false) elsewhere.
// Bottom arises at blocks cut off by a return, whose values must not
// reach the iteration's end.
type envVal struct {
	reachable bool
	vals      env
}

// envLattice lifts the paper's branch-join rule to a join-semilattice:
// bottom is the unreachable path (join identity) and joining two
// reachable environments averages matching updates and omits one-sided
// ones (the join function above).
type envLattice struct{}

func (envLattice) Bottom() envVal { return envVal{} }

func (envLattice) Join(a, b envVal) envVal {
	if !a.reachable {
		return b
	}
	if !b.reachable {
		return a
	}
	return envVal{reachable: true, vals: join(a.vals, b.vals)}
}

func (envLattice) Equal(a, b envVal) bool {
	if a.reachable != b.reachable {
		return false
	}
	if !a.reachable {
		return true
	}
	if len(a.vals) != len(b.vals) {
		return false
	}
	for k, v := range a.vals {
		if b.vals[k] != v {
			return false
		}
	}
	return true
}

// loopMatrix computes the update matrix of a syntactic loop (§4.2) by
// solving a forward dataflow problem over the acyclic per-iteration CFG
// of the body: start from the identity environment, apply each block's
// statements, and let the lattice join implement the paper's branch-merge
// rule at every merge point. Whatever non-identity derivations reach the
// exit — the head of the next iteration — become matrix entries. Paths
// that return leave the loop; their blocks have no successors, so their
// environments never reach the exit.
func (a *analysis) loopMatrix(body lang.Stmt, post lang.Stmt) Matrix {
	g := cfg.BuildBody(body, post)
	res := dataflow.Solve(g, dataflow.Problem[envVal]{
		Lattice:  envLattice{},
		Dir:      dataflow.Forward,
		Boundary: envVal{reachable: true, vals: identityEnv(a.te)},
		Transfer: func(n int, in envVal) envVal {
			if !in.reachable {
				return in
			}
			ev := in.vals.clone()
			for _, s := range g.Block(n).Stmts {
				a.transferStmt(ev, s)
			}
			return envVal{reachable: true, vals: ev}
		},
	})
	m := Matrix{}
	exit := res.Out[g.Exit()]
	if !exit.reachable {
		return m
	}
	for v, val := range exit.vals {
		if val.known && !val.ident {
			m.set(v, val.base, val.aff)
		}
	}
	return m
}

// recUpd accumulates the update of one parameter across the recursive
// calls of one path; bad marks conflicting bases.
type recUpd struct {
	base string
	aff  float64
	bad  bool
}

type recUpds map[string]recUpd

// seqCombine merges updates from two statement sequences that both execute
// (multiple recursive calls in one iteration): 1−∏(1−aᵢ).
func seqCombine(a, b recUpds) recUpds {
	out := recUpds{}
	for p, u := range a {
		out[p] = u
	}
	for p, ub := range b {
		if ua, ok := out[p]; ok {
			if ua.bad || ub.bad || ua.base != ub.base {
				out[p] = recUpd{bad: true}
			} else {
				out[p] = recUpd{base: ua.base, aff: orCombine(ua.aff, ub.aff)}
			}
		} else {
			out[p] = ub
		}
	}
	return out
}

// branchCombine merges updates from two alternative branches that both
// recurse: averaging, per the join rule; a parameter updated in only one
// recursing branch is omitted.
func branchCombine(a, b recUpds) recUpds {
	out := recUpds{}
	for p, ua := range a {
		ub, ok := b[p]
		if !ok {
			continue
		}
		if ua.bad || ub.bad || ua.base != ub.base {
			out[p] = recUpd{bad: true}
			continue
		}
		out[p] = recUpd{base: ua.base, aff: avgCombine(ua.aff, ub.aff)}
	}
	return out
}

// recCalls walks a statement collecting, along the way, the combined
// updates of the function's parameters at recursive call sites. It threads
// the symbolic environment through transferStmt. Calls inside nested
// syntactic loops are ignored (their per-iteration updates are not
// loop-invariant).
//
// Unlike loopMatrix, this walk is not re-hosted on the CFG solver: the
// recursion rule merges per-branch call-update deltas (branchCombine
// averages only across branches that both recurse), and that combination
// is not path-composable — branchCombine(seq(p,u1), seq(p,u2)) differs
// from seq(p, branchCombine(u1,u2)) because the omission rule must see
// each branch's delta, not the whole path. A structured fold over the
// syntax is the natural shape; the shared join rule itself (join /
// avgCombine) is the same code the lattice uses.
func (a *analysis) recCalls(ev env, s lang.Stmt) (env, recUpds, bool) {
	switch s := s.(type) {
	case *lang.Block:
		ups := recUpds{}
		term := false
		for _, st := range s.Stmts {
			if term {
				break
			}
			var u recUpds
			ev, u, term = a.recCalls(ev, st)
			ups = seqCombine(ups, u)
		}
		return ev, ups, term
	case *lang.If:
		e1, u1, t1 := a.recCalls(ev.clone(), s.Then)
		e2, u2, t2 := ev, recUpds{}, false
		if s.Else != nil {
			e2, u2, t2 = a.recCalls(ev.clone(), s.Else)
		}
		var outEnv env
		switch {
		case t1 && t2:
			outEnv = e1
		case t1:
			outEnv = e2
		case t2:
			outEnv = e1
		default:
			outEnv = join(e1, e2)
		}
		// The merging rule applies only across branches that both
		// recurse; a base case contributes nothing and does not veto
		// the other branch (Figure 4's control loop "does not include
		// the join", as the calls occur before the end of the else
		// branch).
		var ups recUpds
		switch {
		case len(u1) > 0 && len(u2) > 0:
			ups = branchCombine(u1, u2)
		case len(u1) > 0:
			ups = u1
		default:
			ups = u2
		}
		return outEnv, ups, t1 && t2
	case *lang.While:
		killAssigned(ev, s.Body)
		return ev, recUpds{}, false
	case *lang.For:
		if s.Init != nil {
			killAssigned(ev, s.Init)
		}
		killAssigned(ev, s.Body)
		if s.Post != nil {
			killAssigned(ev, s.Post)
		}
		return ev, recUpds{}, false
	case *lang.Return:
		_, ups := a.callUpdates(ev, s.E)
		return ev, ups, true
	case *lang.ExprStmt:
		_, ups := a.callUpdates(ev, s.E)
		return ev, ups, false
	case *lang.VarDecl:
		var ups recUpds
		if s.Init != nil {
			_, ups = a.callUpdates(ev, s.Init)
		}
		a.transferStmt(ev, s)
		return ev, ups, false
	case *lang.Assign:
		_, ups := a.callUpdates(ev, s.RHS)
		a.transferStmt(ev, s)
		return ev, ups, false
	}
	return ev, recUpds{}, false
}

// callUpdates extracts recursive-call updates from an expression (calls can
// be nested inside arithmetic, e.g. TreeAdd(t->left)+TreeAdd(t->right)).
// Sibling calls in one expression all execute, so they sequence-combine.
func (a *analysis) callUpdates(ev env, e lang.Expr) (env, recUpds) {
	ups := recUpds{}
	var walk func(e lang.Expr)
	walk = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Call:
			for _, arg := range e.Args {
				walk(arg)
			}
			if e.Name != a.fn.Name {
				return
			}
			u := recUpds{}
			for i, p := range a.fn.Params {
				if !p.Type.IsPtr() || i >= len(e.Args) {
					continue
				}
				v := a.evalExpr(ev, e.Args[i])
				if v.known && !v.ident {
					u[p.Name] = recUpd{base: v.base, aff: v.aff}
				}
			}
			ups = seqCombine(ups, u)
		case *lang.Arrow:
			walk(e.X)
		case *lang.Binary:
			walk(e.L)
			walk(e.R)
		case *lang.Unary:
			walk(e.X)
		case *lang.Touch:
			walk(e.E)
		}
	}
	if e != nil {
		walk(e)
	}
	return ev, ups
}

// recursionMatrix computes the update matrix of a function's recursion
// control loop: parameters updated by the values passed at recursive call
// sites.
func (a *analysis) recursionMatrix() Matrix {
	ev := identityEnv(a.te)
	_, ups, _ := a.recCalls(ev, a.fn.Body)
	m := Matrix{}
	for p, u := range ups {
		if !u.bad {
			m.set(p, u.base, u.aff)
		}
	}
	return m
}
