package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokPunct // operators and punctuation
)

type token struct {
	kind tokKind
	text string
	pos  Pos
}

// lexer tokenizes mini-C source.
type lexer struct {
	src  []rune
	i    int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("lang: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) peekRune() rune {
	if l.i >= len(l.src) {
		return 0
	}
	return l.src[l.i]
}

func (l *lexer) nextRune() rune {
	r := l.src[l.i]
	l.i++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// punctuators, longest first so maximal munch works.
var puncts = []string{
	"&&", "||", "==", "!=", "<=", ">=", "->",
	"(", ")", "{", "}", ";", ",", "=", "<", ">", "+", "-", "*", "/", "%", "!", "&",
}

func (l *lexer) skipSpaceAndComments() error {
	for l.i < len(l.src) {
		r := l.peekRune()
		switch {
		case unicode.IsSpace(r):
			l.nextRune()
		case r == '/' && l.i+1 < len(l.src) && l.src[l.i+1] == '/':
			for l.i < len(l.src) && l.peekRune() != '\n' {
				l.nextRune()
			}
		case r == '/' && l.i+1 < len(l.src) && l.src[l.i+1] == '*':
			pos := Pos{l.line, l.col}
			l.nextRune()
			l.nextRune()
			for {
				if l.i >= len(l.src) {
					return l.errorf(pos, "unterminated block comment")
				}
				if l.peekRune() == '*' && l.i+1 < len(l.src) && l.src[l.i+1] == '/' {
					l.nextRune()
					l.nextRune()
					break
				}
				l.nextRune()
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.i >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	r := l.peekRune()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var sb strings.Builder
		for l.i < len(l.src) {
			r := l.peekRune()
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			sb.WriteRune(l.nextRune())
		}
		return token{kind: tokIdent, text: sb.String(), pos: pos}, nil
	case unicode.IsDigit(r):
		var sb strings.Builder
		isFloat := false
		for l.i < len(l.src) {
			r := l.peekRune()
			if r == '.' && !isFloat {
				isFloat = true
			} else if !unicode.IsDigit(r) {
				break
			}
			sb.WriteRune(l.nextRune())
		}
		k := tokInt
		if isFloat {
			k = tokFloat
		}
		return token{kind: k, text: sb.String(), pos: pos}, nil
	default:
		rest := string(l.src[l.i:])
		for _, p := range puncts {
			if strings.HasPrefix(rest, p) {
				for range p {
					l.nextRune()
				}
				return token{kind: tokPunct, text: p, pos: pos}, nil
			}
		}
		return token{}, l.errorf(pos, "unexpected character %q", r)
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
