// Package cfg builds basic-block control-flow graphs over the mini-C AST
// (internal/lang). The same construction serves two clients:
//
//   - Build gives the full graph of a function — loops expanded with back
//     edges, every return wired to the exit — for the dataflow lints in
//     internal/core (use-before-init, dead stores, unreachable code,
//     guaranteed-nil dereference).
//   - BuildBody gives the acyclic per-iteration graph of a loop body for
//     the §4.2 update-matrix computation: nested syntactic loops stay
//     opaque single statements (the enclosing analysis treats them as
//     killing their assignments), and returning paths leave the loop, so
//     their blocks have no successor and never reach the exit join.
//
// Graphs expose integer adjacency (Len/Entry/Exit/Succs/Preds) so they
// plug directly into the generic solver in internal/dataflow, plus
// per-block def/use/deref summaries and dominator computation for
// structural queries.
package cfg

import "repro/internal/lang"

// Block is one basic block: a run of straight-line statements optionally
// terminated by a branch condition. A conditional block has exactly two
// successors, the true edge first; an unconditional block falls through to
// at most one.
type Block struct {
	ID      int
	Stmts   []lang.Stmt
	Cond    lang.Expr // terminating branch condition, nil if none
	CondPos lang.Pos  // position of the branch statement owning Cond
	succs   []*Block
	preds   []*Block
}

// Succs returns the successor blocks (true edge first for conditionals).
func (b *Block) Succs() []*Block { return b.succs }

// Preds returns the predecessor blocks.
func (b *Block) Preds() []*Block { return b.preds }

// Branch returns the true- and false-successors of a conditional block,
// or ok=false when the block does not end in a two-way branch.
func (b *Block) Branch() (t, f *Block, ok bool) {
	if b.Cond == nil || len(b.succs) != 2 {
		return nil, nil, false
	}
	return b.succs[0], b.succs[1], true
}

// Graph is a control-flow graph. Blocks[i].ID == i; the entry has no
// predecessors and the exit no successors.
type Graph struct {
	Fn     *lang.FuncDecl // nil for loop-body graphs
	Blocks []*Block

	entry, exit *Block
	succIDs     [][]int
	predIDs     [][]int
}

// EntryBlock returns the entry block.
func (g *Graph) EntryBlock() *Block { return g.entry }

// ExitBlock returns the exit block.
func (g *Graph) ExitBlock() *Block { return g.exit }

// Block returns the block with the given ID.
func (g *Graph) Block(i int) *Block { return g.Blocks[i] }

// Len, Entry, Exit, Succs and Preds implement the integer adjacency view
// consumed by dataflow.Solve.

// Len returns the number of blocks.
func (g *Graph) Len() int { return len(g.Blocks) }

// Entry returns the entry block's ID.
func (g *Graph) Entry() int { return g.entry.ID }

// Exit returns the exit block's ID.
func (g *Graph) Exit() int { return g.exit.ID }

// Succs returns the successor IDs of block i (true edge first).
func (g *Graph) Succs(i int) []int { return g.succIDs[i] }

// Preds returns the predecessor IDs of block i.
func (g *Graph) Preds(i int) []int { return g.predIDs[i] }

// builder accumulates blocks during construction.
type builder struct {
	g       *Graph
	returns []*Block // blocks ended by a return (function mode only)
	opaque  bool     // body mode: nested loops are opaque statements
}

func (bl *builder) newBlock() *Block {
	b := &Block{ID: len(bl.g.Blocks)}
	bl.g.Blocks = append(bl.g.Blocks, b)
	return b
}

func (bl *builder) edge(from, to *Block) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// finish freezes the integer adjacency.
func (bl *builder) finish() {
	g := bl.g
	g.succIDs = make([][]int, len(g.Blocks))
	g.predIDs = make([][]int, len(g.Blocks))
	for i, b := range g.Blocks {
		for _, s := range b.succs {
			g.succIDs[i] = append(g.succIDs[i], s.ID)
		}
		for _, p := range b.preds {
			g.predIDs[i] = append(g.predIDs[i], p.ID)
		}
	}
}

// Build constructs the full control-flow graph of a function: loops are
// expanded with back edges and every return flows to the exit block.
func Build(fn *lang.FuncDecl) *Graph {
	bl := &builder{g: &Graph{Fn: fn}}
	entry := bl.newBlock()
	end := bl.stmt(entry, fn.Body)
	exit := bl.newBlock()
	bl.edge(end, exit) // implicit fall-off-the-end return
	for _, b := range bl.returns {
		bl.edge(b, exit)
	}
	bl.g.entry, bl.g.exit = entry, exit
	bl.finish()
	return bl.g
}

// BuildBody constructs the acyclic per-iteration graph of a loop: the body
// followed by the for-post statement (nil for while loops). Nested
// syntactic loops are kept as opaque single statements, and a return
// statement exits the enclosing loop entirely — its block gets no
// successor, so values along returning paths never join at the exit. This
// matches §4.2, where an update matrix only records derivations that hold
// from one iteration head to the next.
func BuildBody(body, post lang.Stmt) *Graph {
	bl := &builder{g: &Graph{}, opaque: true}
	entry := bl.newBlock()
	end := bl.stmt(entry, body)
	if post != nil {
		end = bl.stmt(end, post)
	}
	exit := bl.newBlock()
	bl.edge(end, exit)
	bl.g.entry, bl.g.exit = entry, exit
	bl.finish()
	return bl.g
}

// stmt appends statement s to the graph starting at block cur and returns
// the block where control continues afterwards. Statements after a return
// land in a fresh block with no predecessors (unreachable).
func (bl *builder) stmt(cur *Block, s lang.Stmt) *Block {
	switch s := s.(type) {
	case *lang.Block:
		for _, st := range s.Stmts {
			cur = bl.stmt(cur, st)
		}
		return cur

	case *lang.VarDecl, *lang.Assign, *lang.ExprStmt:
		cur.Stmts = append(cur.Stmts, s)
		return cur

	case *lang.Return:
		cur.Stmts = append(cur.Stmts, s)
		if !bl.opaque {
			bl.returns = append(bl.returns, cur)
		}
		return bl.newBlock()

	case *lang.If:
		cur.Cond, cur.CondPos = s.Cond, s.Pos
		thenB := bl.newBlock()
		bl.edge(cur, thenB) // true edge
		if s.Else != nil {
			elseB := bl.newBlock()
			bl.edge(cur, elseB) // false edge
			thenEnd := bl.stmt(thenB, s.Then)
			elseEnd := bl.stmt(elseB, s.Else)
			join := bl.newBlock()
			bl.edge(thenEnd, join)
			bl.edge(elseEnd, join)
			return join
		}
		thenEnd := bl.stmt(thenB, s.Then)
		join := bl.newBlock()
		bl.edge(cur, join) // false edge
		bl.edge(thenEnd, join)
		return join

	case *lang.While:
		if bl.opaque {
			cur.Stmts = append(cur.Stmts, s)
			return cur
		}
		head := bl.newBlock()
		bl.edge(cur, head)
		head.Cond, head.CondPos = s.Cond, s.Pos
		body := bl.newBlock()
		bl.edge(head, body) // true edge
		after := bl.newBlock()
		bl.edge(head, after) // false edge
		bodyEnd := bl.stmt(body, s.Body)
		bl.edge(bodyEnd, head) // back edge
		return after

	case *lang.For:
		if bl.opaque {
			cur.Stmts = append(cur.Stmts, s)
			return cur
		}
		if s.Init != nil {
			cur = bl.stmt(cur, s.Init)
		}
		head := bl.newBlock()
		bl.edge(cur, head)
		body := bl.newBlock()
		bl.edge(head, body)
		after := bl.newBlock()
		if s.Cond != nil {
			head.Cond, head.CondPos = s.Cond, s.Pos
			bl.edge(head, after) // false edge
		}
		// A missing condition means for(;;): after stays unreachable.
		end := bl.stmt(body, s.Body)
		if s.Post != nil {
			end = bl.stmt(end, s.Post)
		}
		bl.edge(end, head) // back edge
		return after
	}
	return cur
}

// ConstCond evaluates a compile-time-constant branch condition: integer
// and float literals are their truth value, NULL is false, and ! of a
// constant negates. Everything else is not constant.
func ConstCond(e lang.Expr) (val, ok bool) {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.V != 0, true
	case *lang.FloatLit:
		return e.V != 0, true
	case *lang.Null:
		return false, true
	case *lang.Unary:
		if e.Op == "!" {
			if v, ok := ConstCond(e.X); ok {
				return !v, true
			}
		}
	}
	return false, false
}

// Reachable computes which blocks some execution can reach from the entry.
// A branch on a constant condition follows only its taken edge, so the
// body of `if (0)` and the code after `while (1)` both count as
// unreachable.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		if t, f, ok := b.Branch(); ok {
			if v, isConst := ConstCond(b.Cond); isConst {
				if v {
					dfs(t)
				} else {
					dfs(f)
				}
				return
			}
			dfs(t)
			dfs(f)
			return
		}
		for _, s := range b.succs {
			dfs(s)
		}
	}
	dfs(g.entry)
	return seen
}
