package cfg

import "repro/internal/lang"

// This file computes per-block access summaries and the statement- and
// expression-level def/use/deref helpers they are built from. The helpers
// are exported because the dataflow lints in internal/core replay them
// statement by statement with positions attached.

// VarUse is one read of a variable.
type VarUse struct {
	Name string
	Pos  lang.Pos
}

// Deref is one pointer dereference: a maximal Arrow chain attributed to
// the local variable at its base, positioned at the arrow adjacent to the
// base (the access that actually touches the heap first).
type Deref struct {
	Base string
	Pos  lang.Pos
}

// Summary aggregates one block's variable accesses.
type Summary struct {
	// Defs are the variables the block assigns (including everything
	// assigned inside opaque nested loops in body-mode graphs).
	Defs map[string]bool
	// Uses are the upward-exposed reads: variables read before any
	// definition inside the block.
	Uses map[string]bool
	// Derefs are the pointer dereferences in the block, in source order.
	Derefs []Deref
}

// Summaries computes the per-block access summaries, indexed by block ID.
func (g *Graph) Summaries() []*Summary {
	out := make([]*Summary, len(g.Blocks))
	for i, b := range g.Blocks {
		s := &Summary{Defs: map[string]bool{}, Uses: map[string]bool{}}
		for _, st := range b.Stmts {
			for _, u := range StmtReads(st) {
				if !s.Defs[u.Name] {
					s.Uses[u.Name] = true
				}
			}
			s.Derefs = append(s.Derefs, StmtDerefs(st)...)
			for _, d := range StmtDefs(st) {
				s.Defs[d] = true
			}
		}
		if b.Cond != nil {
			for _, u := range ExprReads(b.Cond) {
				if !s.Defs[u.Name] {
					s.Uses[u.Name] = true
				}
			}
			s.Derefs = append(s.Derefs, ExprDerefs(b.Cond)...)
		}
		out[i] = s
	}
	return out
}

// StmtDefs returns the variables a straight-line statement assigns. For
// opaque nested loops (body-mode graphs) it returns everything assigned
// anywhere inside the loop, matching the enclosing analysis's kill set.
func StmtDefs(s lang.Stmt) []string {
	var out []string
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			out = append(out, s.Name)
		case *lang.Assign:
			if id, ok := s.LHS.(*lang.Ident); ok {
				out = append(out, id.Name)
			}
		case *lang.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Post != nil {
				walk(s.Post)
			}
			walk(s.Body)
		}
	}
	walk(s)
	return out
}

// StmtReads returns the variable reads of a straight-line statement in
// evaluation order. Assigning to a variable does not read it; storing
// through a field path (p->f = …) reads the base pointer. For opaque
// nested loops it conservatively returns every read inside the loop.
func StmtReads(s lang.Stmt) []VarUse {
	var out []VarUse
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Init != nil {
				out = append(out, ExprReads(s.Init)...)
			}
		case *lang.Assign:
			out = append(out, ExprReads(s.RHS)...)
			if _, ok := s.LHS.(*lang.Ident); !ok {
				out = append(out, ExprReads(s.LHS)...)
			}
		case *lang.If:
			out = append(out, ExprReads(s.Cond)...)
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			out = append(out, ExprReads(s.Cond)...)
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Cond != nil {
				out = append(out, ExprReads(s.Cond)...)
			}
			walk(s.Body)
			if s.Post != nil {
				walk(s.Post)
			}
		case *lang.Return:
			if s.E != nil {
				out = append(out, ExprReads(s.E)...)
			}
		case *lang.ExprStmt:
			out = append(out, ExprReads(s.E)...)
		}
	}
	walk(s)
	return out
}

// StmtDerefs returns the pointer dereferences of a straight-line
// statement in evaluation order (including inside opaque nested loops).
func StmtDerefs(s lang.Stmt) []Deref {
	var out []Deref
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.VarDecl:
			if s.Init != nil {
				out = append(out, ExprDerefs(s.Init)...)
			}
		case *lang.Assign:
			out = append(out, ExprDerefs(s.RHS)...)
			out = append(out, ExprDerefs(s.LHS)...)
		case *lang.If:
			out = append(out, ExprDerefs(s.Cond)...)
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			out = append(out, ExprDerefs(s.Cond)...)
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			if s.Cond != nil {
				out = append(out, ExprDerefs(s.Cond)...)
			}
			walk(s.Body)
			if s.Post != nil {
				walk(s.Post)
			}
		case *lang.Return:
			if s.E != nil {
				out = append(out, ExprDerefs(s.E)...)
			}
		case *lang.ExprStmt:
			out = append(out, ExprDerefs(s.E)...)
		}
	}
	walk(s)
	return out
}

// Store is one heap store p->…->f = rhs: the Arrow chain's base variable,
// the final field assigned, and the position of the assignment. The chain
// between Base and Field is ordinary reads (StmtReads covers them); the
// store itself is the only write the statement performs on the heap.
type Store struct {
	Base  string
	Field string
	Pos   lang.Pos
}

// StmtStores returns the heap stores of a straight-line statement
// (including inside opaque nested loops in body-mode graphs), in source
// order. Only Assign statements whose left-hand side is an Arrow chain
// rooted at a variable produce stores.
func StmtStores(s lang.Stmt) []Store {
	var out []Store
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *lang.Assign:
			lhs, ok := s.LHS.(*lang.Arrow)
			if !ok {
				return
			}
			inner := lhs
			for {
				x, ok := inner.X.(*lang.Arrow)
				if !ok {
					break
				}
				inner = x
			}
			if id, ok := inner.X.(*lang.Ident); ok {
				out = append(out, Store{Base: id.Name, Field: lhs.Field, Pos: s.Pos})
			}
		case *lang.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.While:
			walk(s.Body)
		case *lang.For:
			if s.Init != nil {
				walk(s.Init)
			}
			walk(s.Body)
			if s.Post != nil {
				walk(s.Post)
			}
		}
	}
	walk(s)
	return out
}

// ExprReads returns the variable reads of an expression in evaluation
// order. Dereferencing a pointer reads its base variable.
func ExprReads(e lang.Expr) []VarUse {
	var out []VarUse
	var walk func(e lang.Expr)
	walk = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Ident:
			out = append(out, VarUse{Name: e.Name, Pos: e.Pos})
		case *lang.Arrow:
			walk(e.X)
		case *lang.Call:
			for _, a := range e.Args {
				walk(a)
			}
		case *lang.Touch:
			walk(e.E)
		case *lang.Binary:
			walk(e.L)
			walk(e.R)
		case *lang.Unary:
			walk(e.X)
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// ExprDerefs returns the pointer dereferences of an expression: one Deref
// per maximal Arrow chain rooted at a variable, plus any chains nested in
// call arguments or subexpressions.
func ExprDerefs(e lang.Expr) []Deref {
	var out []Deref
	var walk func(e lang.Expr)
	walk = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Arrow:
			inner := e
			for {
				x, ok := inner.X.(*lang.Arrow)
				if !ok {
					break
				}
				inner = x
			}
			if id, ok := inner.X.(*lang.Ident); ok {
				out = append(out, Deref{Base: id.Name, Pos: inner.Pos})
				return
			}
			walk(inner.X)
		case *lang.Call:
			for _, a := range e.Args {
				walk(a)
			}
		case *lang.Touch:
			walk(e.E)
		case *lang.Binary:
			walk(e.L)
			walk(e.R)
		case *lang.Unary:
			walk(e.X)
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}
