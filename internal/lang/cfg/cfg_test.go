package cfg

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
)

// parseFn parses a source and returns the named function.
func parseFn(t *testing.T, src, name string) *lang.FuncDecl {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := prog.Func(name)
	if fn == nil {
		t.Fatalf("no function %q", name)
	}
	return fn
}

const listSrc = `
struct n { struct n *next __affinity(80); int v; };

int walk(struct n *s) {
  int c;
  c = 0;
  while (s != NULL) {
    c = c + s->v;
    s = s->next;
  }
  return c;
}

int pick(struct n *s, int k) {
  if (k) {
    return s->v;
  } else {
    return 0;
  }
}
`

func TestBuildShape(t *testing.T) {
	g := Build(parseFn(t, listSrc, "walk"))
	if g.EntryBlock().ID != g.Entry() || g.ExitBlock().ID != g.Exit() {
		t.Fatalf("entry/exit views disagree")
	}
	if len(g.Preds(g.Entry())) != 0 {
		t.Errorf("entry has predecessors: %v", g.Preds(g.Entry()))
	}
	if len(g.Succs(g.Exit())) != 0 {
		t.Errorf("exit has successors: %v", g.Succs(g.Exit()))
	}
	// The while head must be a conditional block with a back edge.
	var head *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			if head != nil {
				t.Fatalf("expected one conditional block, found %d and %d", head.ID, b.ID)
			}
			head = b
		}
	}
	if head == nil {
		t.Fatal("no conditional block for the while loop")
	}
	tSucc, fSucc, ok := head.Branch()
	if !ok {
		t.Fatal("while head is not a two-way branch")
	}
	// The body (true successor) must eventually lead back to the head.
	back := false
	for _, p := range head.Preds() {
		if p.ID >= tSucc.ID {
			back = true
		}
	}
	if !back {
		t.Errorf("no back edge into while head %d (preds %v)", head.ID, g.Preds(head.ID))
	}
	if fSucc.ID == tSucc.ID {
		t.Errorf("true and false successors coincide: %d", fSucc.ID)
	}
}

func TestBuildIfElseJoins(t *testing.T) {
	g := Build(parseFn(t, listSrc, "pick"))
	var cond *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no conditional block")
	}
	tb, fb, ok := cond.Branch()
	if !ok || tb == fb {
		t.Fatalf("bad branch: %v %v %v", tb, fb, ok)
	}
	// Both branches return, so the exit has (at least) those two return
	// blocks among its predecessors.
	if len(g.Preds(g.Exit())) < 2 {
		t.Errorf("exit preds = %v, want both return paths", g.Preds(g.Exit()))
	}
}

func TestBuildBodyReturnLeavesLoop(t *testing.T) {
	prog, err := lang.Parse(`
struct n { struct n *next; };
void f(struct n *s) {
  while (s != NULL) {
    if (s->next == NULL) { return; }
    s = s->next;
  }
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := prog.Funcs[0].Body.Stmts[0].(*lang.While).Body
	g := BuildBody(body, nil)
	// The block holding the return must have no successors.
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if _, ok := s.(*lang.Return); ok && len(b.Succs()) != 0 {
				t.Errorf("return block %d has successors %v", b.ID, g.Succs(b.ID))
			}
		}
	}
	// The fall-through path (s = s->next) still reaches the exit.
	reach := g.Reachable()
	if !reach[g.Exit()] {
		t.Error("exit unreachable: fall-through path lost")
	}
}

func TestBuildBodyKeepsNestedLoopsOpaque(t *testing.T) {
	prog, err := lang.Parse(`
struct n { struct n *next; };
void f(struct n *s, struct n *q) {
  while (s != NULL) {
    while (q != NULL) { q = q->next; }
    s = s->next;
  }
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := prog.Funcs[0].Body.Stmts[0].(*lang.While).Body
	g := BuildBody(body, nil)
	opaque := false
	for _, b := range g.Blocks {
		if b.Cond != nil {
			t.Errorf("body graph has conditional block %d; nested loop was expanded", b.ID)
		}
		for _, s := range b.Stmts {
			if _, ok := s.(*lang.While); ok {
				opaque = true
			}
		}
	}
	if !opaque {
		t.Error("nested while not kept as an opaque statement")
	}
}

func TestReachableConstantBranches(t *testing.T) {
	fn := parseFn(t, `
struct n { struct n *next; };
int f(struct n *s) {
  int a;
  a = 1;
  if (0) { a = 2; }
  while (1) { a = a + 1; }
  return a;
}
`, "f")
	g := Build(fn)
	reach := g.Reachable()
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *lang.Assign:
				if rhs, ok := st.RHS.(*lang.IntLit); ok && rhs.V == 2 && reach[b.ID] {
					t.Errorf("if(0) body (block %d) should be unreachable", b.ID)
				}
			case *lang.Return:
				if reach[b.ID] {
					t.Errorf("code after while(1) (block %d) should be unreachable", b.ID)
				}
			}
		}
	}
}

func TestSummaries(t *testing.T) {
	g := Build(parseFn(t, listSrc, "walk"))
	sums := g.Summaries()
	// Find the loop-body block: it defines both c and s, uses both
	// (upward-exposed: c and s are read before their defs), and derefs s.
	found := false
	for i, s := range sums {
		if s.Defs["c"] && s.Defs["s"] {
			found = true
			if !s.Uses["c"] || !s.Uses["s"] {
				t.Errorf("block %d uses = %v, want c and s upward-exposed", i, s.Uses)
			}
			if len(s.Derefs) != 2 || s.Derefs[0].Base != "s" || s.Derefs[1].Base != "s" {
				t.Errorf("block %d derefs = %v, want two derefs of s", i, s.Derefs)
			}
		}
	}
	if !found {
		t.Fatal("loop body block not found in summaries")
	}
}

func TestExprDerefsChains(t *testing.T) {
	prog, err := lang.Parse(`
struct n { struct n *next; int v; };
int f(struct n *s, struct n *q) {
  return g(s->next->v, q) + q->v;
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*lang.Return)
	ds := ExprDerefs(ret.E)
	if len(ds) != 2 || ds[0].Base != "s" || ds[1].Base != "q" {
		t.Fatalf("derefs = %v, want one maximal chain on s and one on q", ds)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := Build(parseFn(t, listSrc, "pick"))
	dom := g.Dominators()
	var cond *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			cond = b
		}
	}
	tb, fb, _ := cond.Branch()
	if !dom.Dominates(g.Entry(), g.Exit()) {
		t.Error("entry must dominate exit")
	}
	if !dom.Dominates(cond.ID, tb.ID) || !dom.Dominates(cond.ID, fb.ID) {
		t.Error("branch must dominate both arms")
	}
	if dom.Dominates(tb.ID, g.Exit()) || dom.Dominates(fb.ID, g.Exit()) {
		t.Error("neither arm alone dominates the exit")
	}
	if dom.Idom(g.Entry()) != -1 {
		t.Errorf("entry idom = %d, want -1", dom.Idom(g.Entry()))
	}
}

// randStmt generates a random structured statement tree over variables
// s (pointer) and a (int), exercising every construct the builder
// handles.
func randStmt(r *rand.Rand, depth int) lang.Stmt {
	if depth <= 0 {
		return &lang.Assign{LHS: &lang.Ident{Name: "a"}, RHS: &lang.IntLit{V: r.Int63n(10)}}
	}
	switch r.Intn(7) {
	case 0:
		n := r.Intn(3)
		b := &lang.Block{}
		for i := 0; i < n; i++ {
			b.Stmts = append(b.Stmts, randStmt(r, depth-1))
		}
		return b
	case 1:
		s := &lang.If{Cond: randCond(r), Then: randStmt(r, depth-1)}
		if r.Intn(2) == 0 {
			s.Else = randStmt(r, depth-1)
		}
		return s
	case 2:
		return &lang.While{Cond: randCond(r), Body: randStmt(r, depth-1)}
	case 3:
		return &lang.For{
			Init: &lang.Assign{LHS: &lang.Ident{Name: "a"}, RHS: &lang.IntLit{V: 0}},
			Cond: randCond(r),
			Post: &lang.Assign{LHS: &lang.Ident{Name: "a"}, RHS: &lang.IntLit{V: 1}},
			Body: randStmt(r, depth-1),
		}
	case 4:
		return &lang.Return{}
	case 5:
		return &lang.Assign{LHS: &lang.Ident{Name: "s"}, RHS: &lang.Arrow{X: &lang.Ident{Name: "s"}, Field: "next"}}
	default:
		return &lang.ExprStmt{E: &lang.Call{Name: "g", Args: []lang.Expr{&lang.Ident{Name: "a"}}}}
	}
}

func randCond(r *rand.Rand) lang.Expr {
	switch r.Intn(3) {
	case 0:
		return &lang.IntLit{V: r.Int63n(2)}
	case 1:
		return &lang.Ident{Name: "a"}
	default:
		return &lang.Binary{Op: "!=", L: &lang.Ident{Name: "s"}, R: &lang.Null{}}
	}
}

// TestRandomCFGInvariants checks structural invariants of the builder on
// randomized statement trees: adjacency symmetry, branch arity, entry and
// exit degree, and dominator sanity.
func TestRandomCFGInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		fn := &lang.FuncDecl{
			Name:   "f",
			Params: []*lang.Param{{Name: "s", Type: lang.Type{Kind: lang.TypePtr, Struct: "n"}}},
			Body:   &lang.Block{Stmts: []lang.Stmt{randStmt(r, 4)}},
		}
		for _, mode := range []string{"full", "body"} {
			var g *Graph
			if mode == "full" {
				g = Build(fn)
			} else {
				g = BuildBody(fn.Body, nil)
			}
			if len(g.Preds(g.Entry())) != 0 {
				t.Fatalf("trial %d %s: entry has preds", trial, mode)
			}
			if len(g.Succs(g.Exit())) != 0 {
				t.Fatalf("trial %d %s: exit has succs", trial, mode)
			}
			for i, b := range g.Blocks {
				if b.ID != i {
					t.Fatalf("trial %d %s: block %d has ID %d", trial, mode, i, b.ID)
				}
				if b.Cond != nil && len(b.Succs()) != 2 {
					t.Fatalf("trial %d %s: conditional block %d has %d succs", trial, mode, i, len(b.Succs()))
				}
				for _, s := range b.Succs() {
					if !containsBlock(s.Preds(), b) {
						t.Fatalf("trial %d %s: edge %d->%d not mirrored in preds", trial, mode, b.ID, s.ID)
					}
				}
				for _, p := range b.Preds() {
					if !containsBlock(p.Succs(), b) {
						t.Fatalf("trial %d %s: pred edge %d->%d not mirrored in succs", trial, mode, p.ID, b.ID)
					}
				}
			}
			dom := g.Dominators()
			reach := g.Reachable()
			for i := range g.Blocks {
				if i != g.Entry() && reach[i] && !dom.Dominates(g.Entry(), i) {
					t.Fatalf("trial %d %s: entry does not dominate reachable block %d", trial, mode, i)
				}
			}
		}
	}
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
