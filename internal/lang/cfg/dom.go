package cfg

// Dominator computation: the Cooper–Harvey–Kennedy iterative algorithm
// ("A Simple, Fast Dominance Algorithm") over a reverse postorder. The
// graphs here are tiny (tens of blocks), so the simple O(N²) worst case is
// irrelevant and the data structure stays a flat idom array.

// DomTree is the immediate-dominator tree of a graph's reachable blocks.
type DomTree struct {
	idom []int // idom[b] = immediate dominator; -1 for entry and unreachable blocks
	rpo  []int // rpo[b] = reverse-postorder number; -1 for unreachable blocks
}

// Dominators computes the dominator tree over the blocks reachable from
// the entry along plain edges (constant conditions are not folded here;
// use Reachable for executable reachability).
func (g *Graph) Dominators() *DomTree {
	n := len(g.Blocks)
	post := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(i int)
	dfs = func(i int) {
		seen[i] = true
		for _, s := range g.succIDs[i] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, i)
	}
	entry := g.entry.ID
	dfs(entry)

	d := &DomTree{idom: make([]int, n), rpo: make([]int, n)}
	for i := range d.idom {
		d.idom[i] = -1
		d.rpo[i] = -1
	}
	// Reverse postorder: post is postorder, so number from the back.
	order := make([]int, 0, len(post)) // blocks in RPO
	for i := len(post) - 1; i >= 0; i-- {
		d.rpo[post[i]] = len(order)
		order = append(order, post[i])
	}

	intersect := func(a, b int) int {
		for a != b {
			for d.rpo[a] > d.rpo[b] {
				a = d.idom[a]
			}
			for d.rpo[b] > d.rpo[a] {
				b = d.idom[b]
			}
		}
		return a
	}

	d.idom[entry] = entry // sentinel so intersect terminates
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range g.predIDs[b] {
				if d.rpo[p] < 0 || d.idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	d.idom[entry] = -1
	return d
}

// Idom returns the immediate dominator of block b, or -1 for the entry
// and for blocks unreachable from it.
func (d *DomTree) Idom(b int) int { return d.idom[b] }

// Dominates reports whether block a dominates block b (reflexively).
// Unreachable blocks are dominated by nothing and dominate nothing but
// themselves.
func (d *DomTree) Dominates(a, b int) bool {
	if a == b {
		return true
	}
	for b = d.idom[b]; b >= 0; b = d.idom[b] {
		if b == a {
			return true
		}
	}
	return false
}
