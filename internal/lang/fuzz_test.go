package lang

import (
	"strings"
	"testing"
)

// fuzzSeeds are mini-C fragments exercising every token kind, both
// comment forms, and the declaration shapes the parser distinguishes.
var fuzzSeeds = []string{
	"",
	"int main() { return 0; }",
	"struct tree { int val; tree* left; tree* right; };",
	"tree* build(int n, int proc) {\n\tif (n == 0) return 0;\n\treturn alloc(proc);\n}",
	"int f(int x) { while (x > 0) { x = x - 1; } return x; }",
	"float g() { return 1.5 * 2.0 / 3.25; }",
	"int h(int a, int b) { return a && b || !a != b <= a >= b; }",
	"// line comment\nint i() { /* block */ return 42; }",
	"int bad( { ;;; }",
	"/* unterminated",
	"int tab() { return 1 % 2 - -3; }",
}

// FuzzLexAll checks the lexer never panics, terminates every accepted
// input with EOF, and yields tokens with sane kinds and positions.
func FuzzLexAll(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexAll(src)
		if err != nil {
			if toks != nil {
				t.Fatalf("error %v alongside non-nil tokens", err)
			}
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("accepted token stream not EOF-terminated: %v", toks)
		}
		for i, tok := range toks {
			if tok.pos.Line < 1 || tok.pos.Col < 1 {
				t.Fatalf("token %d has impossible position %v", i, tok.pos)
			}
			switch tok.kind {
			case tokEOF:
				if i != len(toks)-1 {
					t.Fatalf("EOF token at %d of %d", i, len(toks))
				}
			case tokIdent, tokInt, tokFloat, tokPunct:
				if tok.text == "" {
					t.Fatalf("token %d of kind %d has empty text", i, tok.kind)
				}
			default:
				t.Fatalf("token %d has unknown kind %d", i, tok.kind)
			}
		}
	})
}

// FuzzParse checks the parser never panics and that accepted programs
// re-parse to the same shape (parse is a function of the token stream,
// so a second parse must agree with the first).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// The lexer materializes the whole rune slice; bound the input so
		// the fuzzer explores syntax, not allocator throughput.
		if len(src) > 1<<16 {
			return
		}
		prog, err := Parse(src)
		if err != nil {
			if !strings.Contains(err.Error(), "lang:") {
				t.Fatalf("error %v does not identify the package", err)
			}
			return
		}
		if prog == nil {
			t.Fatal("nil program without error")
		}
		again, err := Parse(src)
		if err != nil {
			t.Fatalf("accepted input rejected on re-parse: %v", err)
		}
		if len(again.Structs) != len(prog.Structs) || len(again.Funcs) != len(prog.Funcs) {
			t.Fatalf("re-parse disagrees: %d/%d structs, %d/%d funcs",
				len(prog.Structs), len(again.Structs), len(prog.Funcs), len(again.Funcs))
		}
	})
}
