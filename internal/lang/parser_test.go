package lang

import (
	"strings"
	"testing"
)

const treeAddSrc = `
struct tree {
  int val;
  struct tree *left __affinity(90);
  struct tree *right __affinity(70);
};

int TreeAdd(struct tree *t) {
  if (t == NULL) return 0;
  else return touch(futurecall(TreeAdd(t->left))) + TreeAdd(t->right) + t->val;
}
`

func TestParseTreeAdd(t *testing.T) {
	prog, err := Parse(treeAddSrc)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Struct("tree")
	if s == nil {
		t.Fatal("struct tree not found")
	}
	if got := s.Field("left").Affinity; got != 90 {
		t.Errorf("left affinity = %d", got)
	}
	if got := s.Field("right").Affinity; got != 70 {
		t.Errorf("right affinity = %d", got)
	}
	if got := s.Field("val").Affinity; got != -1 {
		t.Errorf("val affinity = %d; want unannotated", got)
	}
	f := prog.Func("TreeAdd")
	if f == nil {
		t.Fatal("TreeAdd not found")
	}
	if len(f.Params) != 1 || f.Params[0].Type != (Type{Kind: TypePtr, Struct: "tree"}) {
		t.Fatalf("params = %+v", f.Params)
	}
	iff, ok := f.Body.Stmts[0].(*If)
	if !ok {
		t.Fatalf("body[0] = %T", f.Body.Stmts[0])
	}
	ret, ok := iff.Else.(*Return)
	if !ok {
		t.Fatalf("else = %T", iff.Else)
	}
	// touch(futurecall(...)) + TreeAdd(...) + t->val
	sum, ok := ret.E.(*Binary)
	if !ok || sum.Op != "+" {
		t.Fatalf("return expr = %#v", ret.E)
	}
	inner, ok := sum.L.(*Binary)
	if !ok {
		t.Fatalf("left of sum = %T", sum.L)
	}
	tch, ok := inner.L.(*Touch)
	if !ok {
		t.Fatalf("first operand = %T; want Touch", inner.L)
	}
	fc, ok := tch.E.(*Call)
	if !ok || !fc.Future {
		t.Fatalf("touch operand = %#v; want futurecall", tch.E)
	}
	if arrow, ok := fc.Args[0].(*Arrow); !ok || arrow.Field != "left" {
		t.Fatalf("futurecall arg = %#v", fc.Args[0])
	}
	if c, ok := inner.R.(*Call); !ok || c.Future {
		t.Fatalf("second call = %#v; must not be a future", inner.R)
	}
}

func TestParseFigure3Loop(t *testing.T) {
	src := `
struct node {
  struct node *left __affinity(90);
  struct node *right __affinity(70);
};
void f(struct node *s, struct node *t, struct node *u) {
  while (s) {
    s = s->left;
    t = t->right->left;
    u = s->right;
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	w, ok := f.Body.Stmts[0].(*While)
	if !ok {
		t.Fatalf("body[0] = %T", f.Body.Stmts[0])
	}
	body := w.Body.(*Block)
	if len(body.Stmts) != 3 {
		t.Fatalf("loop body has %d stmts", len(body.Stmts))
	}
	a := body.Stmts[1].(*Assign)
	// t = t->right->left
	outer := a.RHS.(*Arrow)
	if outer.Field != "left" {
		t.Fatalf("outer field = %s", outer.Field)
	}
	innerA := outer.X.(*Arrow)
	if innerA.Field != "right" {
		t.Fatalf("inner field = %s", innerA.Field)
	}
}

func TestParseForLoop(t *testing.T) {
	src := `
struct list { int v; struct list *next; };
int sum(struct list *l) {
  int acc = 0;
  for (l = l; l != NULL; l = l->next) {
    acc = acc + l->v;
  }
  return acc;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("sum")
	if _, ok := f.Body.Stmts[1].(*For); !ok {
		t.Fatalf("body[1] = %T", f.Body.Stmts[1])
	}
}

func TestParseVoidParams(t *testing.T) {
	prog, err := Parse(`int f(void) { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Func("f").Params) != 0 {
		t.Fatal("void parameter list must be empty")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`int f(int a, int b) { return a + b * 2 == a; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Func("f").Body.Stmts[0].(*Return)
	eq := ret.E.(*Binary)
	if eq.Op != "==" {
		t.Fatalf("top op = %s", eq.Op)
	}
	plus := eq.L.(*Binary)
	if plus.Op != "+" {
		t.Fatalf("left op = %s", plus.Op)
	}
	if mul := plus.R.(*Binary); mul.Op != "*" {
		t.Fatalf("inner op = %s", mul.Op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`struct t { int v }`, "expected"},
		{`int f() { return 1 }`, "expected"},
		{`int f() { 1 = 2; }`, "assignment target"},
		{`int f() { futurecall(3); }`, "futurecall requires"},
		{`int f() { return @; }`, "unexpected character"},
	}
	// Out-of-range affinities parse (range checking is a lint
	// diagnostic, not a parse failure) and carry the raw value.
	prog, err := Parse(`struct t { struct t *n __affinity(150); };`)
	if err != nil {
		t.Errorf("out-of-range affinity must parse: %v", err)
	} else if got := prog.Struct("t").Field("n").Affinity; got != 150 {
		t.Errorf("raw affinity = %d; want 150", got)
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse(`int f( { }`)
}

func TestComments(t *testing.T) {
	src := `
// line comment
struct t { int v; /* inline */ };
int f(struct t *p) {
  /* block
     comment */
  return p->v; // trailing
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
