package lang

import (
	"fmt"
	"strconv"
)

// Parse parses a mini-C translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		if p.err != nil {
			return nil, p.err
		}
		if p.at(tokIdent, "struct") && p.peekIs(2, tokPunct, "{") {
			prog.Structs = append(prog.Structs, p.structDecl())
			continue
		}
		prog.Funcs = append(prog.Funcs, p.funcDecl())
	}
	if p.err != nil {
		return nil, p.err
	}
	return prog, nil
}

// MustParse parses or panics; for tests and embedded kernels.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	toks []token
	i    int
	err  error
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

// peekIs looks n tokens ahead.
func (p *parser) peekIs(n int, k tokKind, text string) bool {
	if p.i+n >= len(p.toks) {
		return false
	}
	t := p.toks[p.i+n]
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("lang: %s: %s", p.cur().pos, fmt.Sprintf(format, args...))
	}
}

func (p *parser) expect(k tokKind, text string) token {
	if !p.at(k, text) {
		p.fail("expected %q, found %q", text, p.cur().text)
		return p.cur()
	}
	return p.advance()
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}

// atType reports whether the current token starts a type.
func (p *parser) atType() bool {
	return p.at(tokIdent, "int") || p.at(tokIdent, "float") ||
		p.at(tokIdent, "void") || p.at(tokIdent, "struct")
}

func (p *parser) parseType() Type {
	switch {
	case p.accept(tokIdent, "int"):
		return Type{Kind: TypeInt}
	case p.accept(tokIdent, "float"):
		return Type{Kind: TypeFloat}
	case p.accept(tokIdent, "void"):
		return Type{Kind: TypeVoid}
	case p.accept(tokIdent, "struct"):
		name := p.expect(tokIdent, "").text
		p.expect(tokPunct, "*")
		return Type{Kind: TypePtr, Struct: name}
	default:
		p.fail("expected a type, found %q", p.cur().text)
		return Type{}
	}
}

func (p *parser) structDecl() *StructDecl {
	pos := p.cur().pos
	p.expect(tokIdent, "struct")
	name := p.expect(tokIdent, "").text
	p.expect(tokPunct, "{")
	s := &StructDecl{Pos: pos, Name: name}
	for !p.at(tokPunct, "}") && p.err == nil {
		fpos := p.cur().pos
		ft := p.parseType()
		fname := p.expect(tokIdent, "").text
		aff := -1
		if p.accept(tokIdent, "__affinity") {
			p.expect(tokPunct, "(")
			// Any integer parses; range checking ([0,100]) is a lint
			// diagnostic (core.Lint), so out-of-range hints get a
			// positioned error instead of a parse failure.
			v, err := strconv.Atoi(p.expect(tokInt, "").text)
			if err != nil {
				p.fail("affinity must be an integer percentage")
			}
			aff = v
			p.expect(tokPunct, ")")
		}
		p.expect(tokPunct, ";")
		s.Fields = append(s.Fields, &FieldDecl{Pos: fpos, Name: fname, Type: ft, Affinity: aff})
	}
	p.expect(tokPunct, "}")
	p.expect(tokPunct, ";")
	return s
}

func (p *parser) funcDecl() *FuncDecl {
	pos := p.cur().pos
	ret := p.parseType()
	name := p.expect(tokIdent, "").text
	p.expect(tokPunct, "(")
	f := &FuncDecl{Pos: pos, Name: name, Ret: ret}
	if !p.at(tokPunct, ")") {
		if p.at(tokIdent, "void") && p.peekIs(1, tokPunct, ")") {
			p.advance()
		} else {
			for {
				ppos := p.cur().pos
				pt := p.parseType()
				pname := p.expect(tokIdent, "").text
				f.Params = append(f.Params, &Param{Pos: ppos, Name: pname, Type: pt})
				if !p.accept(tokPunct, ",") {
					break
				}
			}
		}
	}
	p.expect(tokPunct, ")")
	f.Body = p.block()
	return f
}

func (p *parser) block() *Block {
	pos := p.cur().pos
	p.expect(tokPunct, "{")
	b := &Block{Pos: pos}
	for !p.at(tokPunct, "}") && !p.at(tokEOF, "") && p.err == nil {
		b.Stmts = append(b.Stmts, p.stmt())
	}
	p.expect(tokPunct, "}")
	return b
}

func (p *parser) stmt() Stmt {
	pos := p.cur().pos
	switch {
	case p.at(tokPunct, "{"):
		return p.block()
	case p.atType():
		t := p.parseType()
		name := p.expect(tokIdent, "").text
		var init Expr
		if p.accept(tokPunct, "=") {
			init = p.expr()
		}
		p.expect(tokPunct, ";")
		return &VarDecl{Pos: pos, Name: name, Type: t, Init: init}
	case p.accept(tokIdent, "if"):
		p.expect(tokPunct, "(")
		cond := p.expr()
		p.expect(tokPunct, ")")
		then := p.stmt()
		var els Stmt
		if p.accept(tokIdent, "else") {
			els = p.stmt()
		}
		return &If{Pos: pos, Cond: cond, Then: then, Else: els}
	case p.accept(tokIdent, "while"):
		p.expect(tokPunct, "(")
		cond := p.expr()
		p.expect(tokPunct, ")")
		return &While{Pos: pos, Cond: cond, Body: p.stmt()}
	case p.accept(tokIdent, "for"):
		p.expect(tokPunct, "(")
		var init, post Stmt
		var cond Expr
		if !p.at(tokPunct, ";") {
			init = p.simpleStmt()
		}
		p.expect(tokPunct, ";")
		if !p.at(tokPunct, ";") {
			cond = p.expr()
		}
		p.expect(tokPunct, ";")
		if !p.at(tokPunct, ")") {
			post = p.simpleStmt()
		}
		p.expect(tokPunct, ")")
		return &For{Pos: pos, Init: init, Cond: cond, Post: post, Body: p.stmt()}
	case p.accept(tokIdent, "return"):
		var e Expr
		if !p.at(tokPunct, ";") {
			e = p.expr()
		}
		p.expect(tokPunct, ";")
		return &Return{Pos: pos, E: e}
	default:
		s := p.simpleStmt()
		p.expect(tokPunct, ";")
		return s
	}
}

// simpleStmt is an assignment or an expression statement (no semicolon).
func (p *parser) simpleStmt() Stmt {
	pos := p.cur().pos
	e := p.expr()
	if p.accept(tokPunct, "=") {
		rhs := p.expr()
		switch e.(type) {
		case *Ident, *Arrow:
		default:
			p.fail("invalid assignment target")
		}
		return &Assign{Pos: pos, LHS: e, RHS: rhs}
	}
	return &ExprStmt{Pos: pos, E: e}
}

// binary operator precedence, low to high.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() Expr { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) Expr {
	lhs := p.unary()
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs
		}
		p.advance()
		rhs := p.binExpr(prec + 1)
		lhs = &Binary{Pos: t.pos, Op: t.text, L: lhs, R: rhs}
	}
}

func (p *parser) unary() Expr {
	pos := p.cur().pos
	if p.accept(tokPunct, "!") {
		return &Unary{Pos: pos, Op: "!", X: p.unary()}
	}
	if p.accept(tokPunct, "-") {
		return &Unary{Pos: pos, Op: "-", X: p.unary()}
	}
	return p.postfix()
}

func (p *parser) postfix() Expr {
	e := p.primary()
	for p.at(tokPunct, "->") {
		pos := p.advance().pos
		f := p.expect(tokIdent, "").text
		e = &Arrow{Pos: pos, X: e, Field: f}
	}
	return e
}

func (p *parser) primary() Expr {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		v, _ := strconv.ParseInt(t.text, 10, 64)
		return &IntLit{Pos: t.pos, V: v}
	case t.kind == tokFloat:
		p.advance()
		v, _ := strconv.ParseFloat(t.text, 64)
		return &FloatLit{Pos: t.pos, V: v}
	case p.accept(tokPunct, "("):
		e := p.expr()
		p.expect(tokPunct, ")")
		return e
	case t.kind == tokIdent:
		switch t.text {
		case "NULL":
			p.advance()
			return &Null{Pos: t.pos}
		case "futurecall":
			p.advance()
			p.expect(tokPunct, "(")
			inner := p.postfix()
			call, ok := inner.(*Call)
			if !ok {
				p.fail("futurecall requires a function call")
				call = &Call{Pos: t.pos}
			}
			call.Future = true
			p.expect(tokPunct, ")")
			return call
		case "touch":
			p.advance()
			p.expect(tokPunct, "(")
			e := p.expr()
			p.expect(tokPunct, ")")
			return &Touch{Pos: t.pos, E: e}
		}
		p.advance()
		if p.accept(tokPunct, "(") {
			c := &Call{Pos: t.pos, Name: t.text}
			if !p.at(tokPunct, ")") {
				for {
					c.Args = append(c.Args, p.expr())
					if !p.accept(tokPunct, ",") {
						break
					}
				}
			}
			p.expect(tokPunct, ")")
			return c
		}
		return &Ident{Pos: t.pos, Name: t.text}
	default:
		p.fail("unexpected token %q", t.text)
		p.advance()
		return &IntLit{Pos: t.pos}
	}
}
