// Package lang implements the front end for the restricted C subset Olden
// accepts (paper §2): struct declarations whose pointer fields may carry
// path-affinity annotations (§4.1), functions over heap pointers, loops and
// recursion, and futurecall/touch annotations. The abstract syntax feeds
// the update-matrix dataflow and the mechanism-selection heuristic in
// internal/core.
package lang

import "fmt"

// Pos is a source position for diagnostics.
type Pos struct {
	Line, Col int
}

// String formats the position.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// TypeKind enumerates the subset's types.
type TypeKind int

const (
	// TypeInt is a machine integer.
	TypeInt TypeKind = iota
	// TypeFloat is a double-precision float.
	TypeFloat
	// TypeVoid is the absent return type.
	TypeVoid
	// TypePtr is a pointer to a named struct (all pointers point into
	// the distributed heap).
	TypePtr
)

// Type is a type in the subset.
type Type struct {
	Kind   TypeKind
	Struct string // referenced struct name when Kind == TypePtr
}

// String renders the type in C syntax.
func (t Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeVoid:
		return "void"
	case TypePtr:
		return "struct " + t.Struct + " *"
	}
	return "?"
}

// IsPtr reports whether the type is a heap pointer.
func (t Type) IsPtr() bool { return t.Kind == TypePtr }

// Program is a parsed translation unit.
type Program struct {
	Structs []*StructDecl
	Funcs   []*FuncDecl
}

// Struct finds a struct declaration by name.
func (p *Program) Struct(name string) *StructDecl {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Func finds a function by name.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// StructDecl is a struct declaration.
type StructDecl struct {
	Pos    Pos
	Name   string
	Fields []*FieldDecl
}

// Field finds a field by name.
func (s *StructDecl) Field(name string) *FieldDecl {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FieldDecl is one struct field. Pointer fields may carry a path-affinity
// hint: the probability (in percent) that following the field stays on the
// same processor. Affinity is -1 when the program gave no hint (the
// heuristic then applies its default of 70%).
type FieldDecl struct {
	Pos      Pos
	Name     string
	Type     Type
	Affinity int
}

// Param is a function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []*Param
	Body   *Block
}

// Stmt is a statement.
type Stmt interface{ stmt() }

// Block is a brace-delimited statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDecl declares (and optionally initializes) a local variable.
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // may be nil
}

// Assign is an assignment to a variable or a field path.
type Assign struct {
	Pos Pos
	LHS Expr // Ident or Arrow chain
	RHS Expr
}

// If is a conditional with optional else.
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop — a control loop for the analysis.
type While struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// For is a for loop — also a control loop.
type For struct {
	Pos  Pos
	Init Stmt // may be nil
	Cond Expr // may be nil
	Post Stmt // may be nil
	Body Stmt
}

// Return exits the enclosing function.
type Return struct {
	Pos Pos
	E   Expr // may be nil
}

// ExprStmt evaluates an expression for effect (typically a call).
type ExprStmt struct {
	Pos Pos
	E   Expr
}

func (*Block) stmt()    {}
func (*VarDecl) stmt()  {}
func (*Assign) stmt()   {}
func (*If) stmt()       {}
func (*While) stmt()    {}
func (*For) stmt()      {}
func (*Return) stmt()   {}
func (*ExprStmt) stmt() {}

// Expr is an expression.
type Expr interface{ expr() }

// Ident is a variable reference.
type Ident struct {
	Pos  Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	Pos Pos
	V   float64
}

// Null is the NULL pointer literal.
type Null struct{ Pos Pos }

// Arrow is a pointer field selection x->f.
type Arrow struct {
	Pos   Pos
	X     Expr
	Field string
}

// Call is a function call; Future marks a futurecall annotation.
type Call struct {
	Pos    Pos
	Name   string
	Args   []Expr
	Future bool
}

// Touch is the future-synchronization annotation touch(e).
type Touch struct {
	Pos Pos
	E   Expr
}

// Binary is a binary operation (arithmetic, comparison, logical).
type Binary struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// Unary is a unary operation (!, -).
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

func (*Ident) expr()    {}
func (*IntLit) expr()   {}
func (*FloatLit) expr() {}
func (*Null) expr()     {}
func (*Arrow) expr()    {}
func (*Call) expr()     {}
func (*Touch) expr()    {}
func (*Binary) expr()   {}
func (*Unary) expr()    {}

// StmtPos returns the source position of a statement.
func StmtPos(s Stmt) Pos {
	switch s := s.(type) {
	case *Block:
		return s.Pos
	case *VarDecl:
		return s.Pos
	case *Assign:
		return s.Pos
	case *If:
		return s.Pos
	case *While:
		return s.Pos
	case *For:
		return s.Pos
	case *Return:
		return s.Pos
	case *ExprStmt:
		return s.Pos
	}
	return Pos{}
}

// ExprPos returns the source position of an expression.
func ExprPos(e Expr) Pos {
	switch e := e.(type) {
	case *Ident:
		return e.Pos
	case *IntLit:
		return e.Pos
	case *FloatLit:
		return e.Pos
	case *Null:
		return e.Pos
	case *Arrow:
		return e.Pos
	case *Call:
		return e.Pos
	case *Touch:
		return e.Pos
	case *Binary:
		return e.Pos
	case *Unary:
		return e.Pos
	}
	return Pos{}
}
