package lang

import (
	"strings"
	"testing"
)

func lex(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

func TestLexerTokens(t *testing.T) {
	toks := lex(t, "while (s != NULL) { s = s->left; n = n + 1.5; }")
	var kinds []tokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []string{"while", "(", "s", "!=", "NULL", ")", "{", "s", "=", "s", "->", "left", ";",
		"n", "=", "n", "+", "1.5", ";", "}", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v", len(texts), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q; want %q", i, texts[i], want[i])
		}
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Fatal("missing EOF")
	}
}

func TestLexerPositions(t *testing.T) {
	toks := lex(t, "a\n  bb\n   c")
	if toks[0].pos != (Pos{1, 1}) || toks[1].pos != (Pos{2, 3}) || toks[2].pos != (Pos{3, 4}) {
		t.Fatalf("positions: %v %v %v", toks[0].pos, toks[1].pos, toks[2].pos)
	}
}

func TestLexerMaximalMunch(t *testing.T) {
	toks := lex(t, "a<=b >= c == d && e")
	ops := []string{}
	for _, tok := range toks {
		if tok.kind == tokPunct {
			ops = append(ops, tok.text)
		}
	}
	want := []string{"<=", ">=", "==", "&&"}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v", ops)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lexAll("a # b"); err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("err = %v", err)
	}
	if _, err := lexAll("/* never closed"); err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err = %v", err)
	}
}

func TestLexerNumbers(t *testing.T) {
	toks := lex(t, "12 3.25 0")
	if toks[0].kind != tokInt || toks[1].kind != tokFloat || toks[2].kind != tokInt {
		t.Fatalf("kinds: %v %v %v", toks[0].kind, toks[1].kind, toks[2].kind)
	}
}
