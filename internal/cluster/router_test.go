package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench/record"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/server"

	_ "repro/internal/bench/treeadd"
)

// fastExec is a deterministic substitute executor: every replica given
// the same function produces the same bytes for the same config, which
// is exactly the determinism contract the router leans on.
func fastExec(req server.RunRequest, _ *obs.Span) (record.RunRecord, error) {
	return record.RunRecord{
		Benchmark:   req.Benchmark,
		Procs:       req.Procs,
		Scheme:      req.Scheme,
		Mode:        req.Mode,
		Scale:       req.Scale,
		Cycles:      4242,
		Verified:    true,
		TraceDigest: "digest-" + req.Key(),
	}, nil
}

// newReplica boots one real oldend server (substituted executor, real
// cache, real probe endpoint) under httptest.
func newReplica(t *testing.T, shardName string, exec server.ExecuteFunc) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{
		Workers:      2,
		QueueDepth:   16,
		CacheEntries: 64,
		ShardName:    shardName,
		Execute:      exec,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

type testCluster struct {
	router   *Router
	front    *httptest.Server
	replicas map[string]*httptest.Server // base URL -> replica
	shards   map[string]string           // base URL -> shard name
}

func newTestCluster(t *testing.T, n int, cfg Config, exec server.ExecuteFunc) *testCluster {
	t.Helper()
	tc := &testCluster{
		replicas: map[string]*httptest.Server{},
		shards:   map[string]string{},
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard%d", i)
		ts := newReplica(t, name, exec)
		cfg.Replicas = append(cfg.Replicas, ts.URL)
		tc.replicas[ts.URL] = ts
		tc.shards[ts.URL] = name
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	tc.front = httptest.NewServer(rt.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

func postJSON(t *testing.T, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b, resp.Header
}

const runBody = `{"benchmark":"treeadd","procs":2,"scale":32}`

// keyOf computes the canonical key the router hashes for runBody-style
// requests — through the same Normalize/CacheKey pair the router uses.
func keyOf(t *testing.T, body string) string {
	t.Helper()
	var q server.RunRequest
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	nq, err := server.Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	return server.CacheKey(nq)
}

// TestRouterRoutesToOwnerAndServesCacheHits pins the basic contract: a
// run lands on the ring owner of its canonical key, names that shard in
// X-Oldend-Shard, and a repeat is a byte-identical cache hit on the same
// shard with the replica's cache/digest headers intact end to end.
func TestRouterRoutesToOwnerAndServesCacheHits(t *testing.T) {
	tc := newTestCluster(t, 3, Config{}, fastExec)
	owner := tc.router.Ring().Owner(keyOf(t, runBody))
	wantShard := tc.shards[owner]

	st, b1, h1 := postJSON(t, tc.front.URL+"/run", runBody)
	if st != http.StatusOK {
		t.Fatalf("first run: status %d: %s", st, b1)
	}
	if got := h1.Get("X-Oldend-Shard"); got != wantShard {
		t.Errorf("routed to shard %q, ring owner is %q", got, wantShard)
	}
	if got := h1.Get("X-Oldend-Cache"); got != "miss" {
		t.Errorf("first run X-Oldend-Cache = %q, want miss", got)
	}
	st, b2, h2 := postJSON(t, tc.front.URL+"/run", runBody)
	if st != http.StatusOK {
		t.Fatalf("repeat run: status %d", st)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cache-hit repeat not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
	if got := h2.Get("X-Oldend-Cache"); got != "hit" {
		t.Errorf("repeat X-Oldend-Cache = %q, want hit", got)
	}
	if got := h2.Get("X-Oldend-Shard"); got != wantShard {
		t.Errorf("repeat routed to %q, want %q", got, wantShard)
	}
	if h2.Get("X-Oldend-Trace-Digest") == "" {
		t.Error("X-Oldend-Trace-Digest not preserved through the router on the cache hit")
	}
}

// TestRouterRetriesNextOwner kills the primary owner and requires the
// request to succeed on a fallback owner with zero client-visible
// errors — deterministic replicas make any owner a correct answer.
func TestRouterRetriesNextOwner(t *testing.T) {
	tc := newTestCluster(t, 3, Config{DownCooldown: time.Minute}, fastExec)
	owner := tc.router.Ring().Owner(keyOf(t, runBody))
	tc.replicas[owner].Close()

	st, body, h := postJSON(t, tc.front.URL+"/run", runBody)
	if st != http.StatusOK {
		t.Fatalf("run with primary down: status %d: %s", st, body)
	}
	if got := h.Get("X-Oldend-Shard"); got == tc.shards[owner] || got == "" {
		t.Errorf("answered by %q, want a fallback shard (primary %q is down)", got, tc.shards[owner])
	}
	if n := tc.router.retries.Load(); n == 0 {
		t.Error("retry counter did not move")
	}

	// The primary is now inside its cooldown: the next request must not
	// pay the connection failure again (no new retries).
	before := tc.router.retries.Load()
	st, _, _ = postJSON(t, tc.front.URL+"/run", runBody)
	if st != http.StatusOK {
		t.Fatalf("second run: status %d", st)
	}
	if n := tc.router.retries.Load(); n != before {
		t.Errorf("cooldown not honored: retries went %d -> %d", before, n)
	}
}

// TestRouterAllOwnersDown503 requires the documented failure answer —
// 503 with Retry-After — when no replica is reachable.
func TestRouterAllOwnersDown503(t *testing.T) {
	tc := newTestCluster(t, 3, Config{RetryAfter: 3 * time.Second}, fastExec)
	for _, ts := range tc.replicas {
		ts.Close()
	}
	st, body, h := postJSON(t, tc.front.URL+"/run", runBody)
	if st != http.StatusServiceUnavailable {
		t.Fatalf("all replicas down: status %d: %s", st, body)
	}
	if got := h.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want %q", got, "3")
	}
	if n := tc.router.unroutable.Load(); n == 0 {
		t.Error("unroutable counter did not move")
	}
}

// TestRouterVerifyMatch duplicates every execution to a second replica;
// identical replicas must agree byte-for-byte, so the mismatch counter
// must stay zero while the match counter moves.
func TestRouterVerifyMatch(t *testing.T) {
	tc := newTestCluster(t, 2, Config{VerifyEvery: 1}, fastExec)
	st, _, _ := postJSON(t, tc.front.URL+"/run", runBody)
	if st != http.StatusOK {
		t.Fatalf("run: status %d", st)
	}
	if n := tc.router.verifyMatch.Load(); n != 1 {
		t.Errorf("verify match counter = %d, want 1", n)
	}
	if n := tc.router.verifyMismatch.Load(); n != 0 {
		t.Errorf("verify mismatch counter = %d, want 0", n)
	}
}

// TestRouterVerifyMismatch builds a deliberately broken cluster — two
// replicas whose executors disagree — and requires the router to catch
// it: mismatch counted, primary's answer still served as a 200.
func TestRouterVerifyMismatch(t *testing.T) {
	divergent := func(req server.RunRequest, sp *obs.Span) (record.RunRecord, error) {
		rec, _ := fastExec(req, sp)
		rec.Cycles = 6666 // nondeterminism stand-in
		rec.TraceDigest = "divergent-" + req.Key()
		return rec, nil
	}
	tc := &testCluster{replicas: map[string]*httptest.Server{}, shards: map[string]string{}}
	a := newReplica(t, "shard0", fastExec)
	b := newReplica(t, "shard1", divergent)
	tc.replicas[a.URL], tc.shards[a.URL] = a, "shard0"
	tc.replicas[b.URL], tc.shards[b.URL] = b, "shard1"
	rt, err := NewRouter(Config{Replicas: []string{a.URL, b.URL}, VerifyEvery: 1, AccessLog: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	tc.front = httptest.NewServer(rt.Handler())
	t.Cleanup(tc.front.Close)

	st, _, _ := postJSON(t, tc.front.URL+"/run", runBody)
	if st != http.StatusOK {
		t.Fatalf("run: status %d (mismatch must not fail the client request)", st)
	}
	if n := rt.verifyMismatch.Load(); n != 1 {
		t.Errorf("verify mismatch counter = %d, want 1", n)
	}
	if n := rt.verifyMatch.Load(); n != 0 {
		t.Errorf("verify match counter = %d, want 0", n)
	}
}

// TestRouterProbeServesPeerCache runs with hot-key replication width 2:
// once a key is resident on any of its first two owners, subsequent
// requests must be served from that cache via /cache/probe regardless of
// where the round-robin cursor points.
func TestRouterProbeServesPeerCache(t *testing.T) {
	tc := newTestCluster(t, 3, Config{ProbeOwners: 2}, fastExec)
	st, b1, _ := postJSON(t, tc.front.URL+"/run", runBody)
	if st != http.StatusOK {
		t.Fatalf("first run: status %d", st)
	}
	// Several repeats: whichever owner the rotation picks, the probe
	// phase must find the resident copy and serve identical bytes.
	hits := 0
	for i := 0; i < 4; i++ {
		st, b, h := postJSON(t, tc.front.URL+"/run", runBody)
		if st != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, st)
		}
		if !bytes.Equal(b1, b) {
			t.Fatalf("repeat %d not byte-identical", i)
		}
		if h.Get("X-Oldend-Cache") == "hit" {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("only %d/4 repeats were cache hits", hits)
	}
	var probeHits int64
	for _, u := range tc.router.names {
		probeHits += tc.router.cfg.Metrics.Counter("oldenrouter_probe_total",
			metrics.L("shard", u), metrics.L("outcome", "hit")).Load()
	}
	if probeHits == 0 {
		t.Error("no probe hits recorded; repeats were not served from peer caches")
	}
}

// TestRouterBatchShardsAndMerges sends a mixed batch — several valid
// configs spread over the ring plus one invalid item — and requires the
// response in request order with item-local statuses, exactly as one
// replica would have answered.
func TestRouterBatchShardsAndMerges(t *testing.T) {
	tc := newTestCluster(t, 3, Config{}, fastExec)
	batch := `{"runs":[
		{"benchmark":"treeadd","procs":1,"scale":16},
		{"benchmark":"nope"},
		{"benchmark":"treeadd","procs":2,"scale":16},
		{"benchmark":"treeadd","procs":4,"scale":16},
		{"benchmark":"treeadd","procs":8,"scale":16}]}`
	st, body, h := postJSON(t, tc.front.URL+"/batch", batch)
	if st != http.StatusOK {
		t.Fatalf("batch: status %d: %s", st, body)
	}
	var items []server.BatchItem
	if err := json.Unmarshal(body, &items); err != nil {
		t.Fatalf("batch response: %v", err)
	}
	if len(items) != 5 {
		t.Fatalf("batch answered %d items, want 5", len(items))
	}
	for i, it := range items {
		want := http.StatusOK
		if i == 1 {
			want = http.StatusBadRequest
		}
		if it.Status != want {
			t.Errorf("item %d: status %d, want %d (%s)", i, it.Status, want, it.Error)
		}
	}
	if items[3].Key != keyOf(t, `{"benchmark":"treeadd","procs":4,"scale":16}`) {
		t.Errorf("item order not preserved: item 3 is %q", items[3].Key)
	}
	if xb := h.Get("X-Oldend-Batch"); !strings.Contains(xb, "runs=5") || !strings.Contains(xb, "shards=") {
		t.Errorf("X-Oldend-Batch = %q, want runs=5 and a shards count", xb)
	}
}

// TestRouterReadyz: ready while at least one replica is, 503 when none.
func TestRouterReadyz(t *testing.T) {
	tc := newTestCluster(t, 2, Config{}, fastExec)
	resp, err := http.Get(tc.front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rz struct {
		Status      string            `json:"status"`
		ReadyShards int               `json:"ready_shards"`
		Shards      map[string]string `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rz.ReadyShards != 2 {
		t.Fatalf("readyz with all replicas up: status %d, ready %d", resp.StatusCode, rz.ReadyShards)
	}
	for _, ts := range tc.replicas {
		ts.Close()
	}
	resp, err = http.Get(tc.front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with all replicas down: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("readyz 503 missing Retry-After")
	}
}

// TestRouterDebugTraceFanOut drives a sampled request through the router
// and requires /debug/trace/<id> — asked of the ROUTER — to find the
// trace on whichever replica retained it.
func TestRouterDebugTraceFanOut(t *testing.T) {
	tc := newTestCluster(t, 3, Config{}, fastExec)
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest(http.MethodPost, tc.front.URL+"/run", strings.NewReader(runBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sampled run: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Oldend-Trace-Id"); got != traceID {
		t.Fatalf("trace id %q did not survive the router, got %q", traceID, got)
	}
	resp, err = http.Get(tc.front.URL + "/debug/trace/" + traceID + "?format=tree")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace via router: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(traceID)) {
		t.Errorf("trace export does not mention the trace id: %s", body)
	}
}

// TestRouterDebugRequestsMergesShards requires the fan-out view to carry
// every shard plus the router's own ring.
func TestRouterDebugRequestsMergesShards(t *testing.T) {
	tc := newTestCluster(t, 2, Config{}, fastExec)
	postJSON(t, tc.front.URL+"/run", runBody)
	resp, err := http.Get(tc.front.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Router map[string]json.RawMessage `json:"router"`
		Shards map[string]json.RawMessage `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if len(view.Shards) != 2 {
		t.Errorf("debug view has %d shards, want 2", len(view.Shards))
	}
	if view.Router == nil {
		t.Error("debug view missing the router's own section")
	}
}

// TestRouterBenchmarksProxied: the catalog comes from any replica and
// names the shard that answered.
func TestRouterBenchmarksProxied(t *testing.T) {
	tc := newTestCluster(t, 2, Config{}, fastExec)
	resp, err := http.Get(tc.front.URL + "/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/benchmarks via router: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Oldend-Shard") == "" {
		t.Error("/benchmarks response does not name the answering shard")
	}
}
