package cluster

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// reqCtx is the router's per-request state: the sampled span (nil
// otherwise) and the fields the access log and request ring report.
type reqCtx struct {
	sp        *obs.Span
	traceID   string
	key       string
	benchmark string
	shard     string
	cache     string
	shed      string
}

type reqCtxKey struct{}

func requestCtx(r *http.Request) *reqCtx {
	if rc, ok := r.Context().Value(reqCtxKey{}).(*reqCtx); ok {
		return rc
	}
	return &reqCtx{}
}

// statusWriter captures what the handler wrote, for logging/metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Handler returns the router's HTTP surface — deliberately the same
// shape as one oldend, so clients point at the cluster without changing
// anything:
//
//	POST /run             routed to the key's owning shard (probe → proxy → retry)
//	POST /batch           sharded sub-batches, answers merged in request order
//	POST /analyze         any reachable replica (stateless)
//	GET  /benchmarks      any reachable replica (identical on all by contract)
//	GET  /metrics         the ROUTER's own registry (per-shard counters)
//	GET  /debug/requests  fan-out: every replica's view plus the router's, tagged by shard
//	GET  /debug/trace/id  fan-out: served by whichever replica retained the trace
//	GET  /healthz         router liveness
//	GET  /readyz          ready while at least one replica is ready (per-shard detail in the body)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", rt.handleRun)
	mux.HandleFunc("/batch", rt.handleBatch)
	mux.HandleFunc("/analyze", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		rt.proxyAny(w, r, http.MethodPost, "/analyze", body)
	})
	mux.HandleFunc("/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		rt.proxyAny(w, r, http.MethodGet, "/benchmarks", nil)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		w.Header().Set("Content-Type", metrics.ContentType)
		io.WriteString(w, rt.cfg.Metrics.Snapshot().Prometheus())
	})
	mux.HandleFunc("/debug/requests", rt.handleDebugRequests)
	mux.HandleFunc("/debug/trace/", rt.handleDebugTrace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", rt.handleReadyz)
	return rt.instrument(mux)
}

// instrument mirrors the server's wrapper: traceparent parsing, the
// sampling decision, response trace-id headers, per-path/status request
// counting, the finished-request ring and the JSON access log.
func (rt *Router) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := rt.cfg.Now()
		parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
		sp := rt.cfg.Tracer.StartRequest(r.Method, r.URL.Path, parent)
		var traceID string
		switch {
		case sp.Sampled():
			traceID = sp.TraceID().String()
		case parent.Valid():
			traceID = parent.TraceID.String()
		default:
			traceID = rt.cfg.Tracer.NewTraceID().String()
		}
		w.Header().Set("X-Request-Id", traceID)
		w.Header().Set("X-Oldend-Trace-Id", traceID)

		rc := &reqCtx{sp: sp, traceID: traceID}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqCtxKey{}, rc)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		durUS := rt.cfg.Now().Sub(start).Microseconds()
		rt.cfg.Metrics.Counter("oldenrouter_requests_total",
			metrics.L("path", r.URL.Path),
			metrics.L("code", strconv.Itoa(sw.status))).Inc()
		rt.cfg.Tracer.FinishRequest(sp, obs.ReqInfo{
			TraceID:    traceID,
			Method:     r.Method,
			Path:       r.URL.Path,
			Status:     sw.status,
			Start:      start,
			DurUS:      durUS,
			Benchmark:  rc.benchmark,
			Cache:      rc.cache,
			ShedReason: rc.shed,
		})
		if rt.log != nil {
			rec := slog.NewRecord(start, slog.LevelInfo, "request", 0)
			rec.AddAttrs(
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Int64("dur_us", durUS),
				slog.String("trace_id", traceID),
			)
			if rc.benchmark != "" {
				rec.AddAttrs(slog.String("benchmark", rc.benchmark))
			}
			if rc.key != "" {
				rec.AddAttrs(slog.String("key", rc.key))
			}
			if rc.shard != "" {
				rec.AddAttrs(slog.String("shard", rc.shard))
			}
			if rc.cache != "" {
				rec.AddAttrs(slog.String("cache", rc.cache))
			}
			if rc.shed != "" {
				rec.AddAttrs(slog.String("shed_reason", rc.shed))
			}
			_ = rt.log.Handler().Handle(context.Background(), rec)
		}
	})
}

// handleReadyz asks every replica for readiness concurrently (bounded by
// a short timeout, outside the connection budgets so a saturated shard
// cannot wedge health checks). The router is ready while at least one
// replica is — a partial cluster degrades capacity, not availability.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type shardStatus struct {
		name   string
		status string
	}
	results := make([]shardStatus, len(rt.names))
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, name := range rt.names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/readyz", nil)
			if err != nil {
				results[i] = shardStatus{name, "error"}
				return
			}
			resp, err := rt.cfg.Client.Do(req)
			if err != nil {
				results[i] = shardStatus{name, "down"}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				results[i] = shardStatus{name, "ready"}
			} else {
				results[i] = shardStatus{name, "not_ready"}
			}
		}(i, name)
	}
	wg.Wait()
	shards := make(map[string]string, len(results))
	ready := 0
	for _, s := range results {
		shards[s.name] = s.status
		if s.status == "ready" {
			ready++
		}
	}
	body := map[string]any{"shards": shards, "ready_shards": ready}
	if ready == 0 {
		body["status"] = "no_ready_shards"
		w.Header().Set("Retry-After", rt.retryAfterSeconds())
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["status"] = "ready"
	writeJSON(w, http.StatusOK, body)
}

// handleDebugRequests merges every replica's /debug/requests view with
// the router's own, tagging each replica's entries with its shard —
// cluster-mode tracing stays one curl, no per-shard spelunking.
func (rt *Router) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type shardView struct {
		body []byte
		err  error
	}
	views := make([]shardView, len(rt.names))
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, name := range rt.names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/debug/requests", nil)
			if err != nil {
				views[i] = shardView{err: err}
				return
			}
			resp, err := rt.cfg.Client.Do(req)
			if err != nil {
				views[i] = shardView{err: err}
				return
			}
			b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			resp.Body.Close()
			views[i] = shardView{body: b, err: err}
		}(i, name)
	}
	wg.Wait()
	shards := make(map[string]json.RawMessage, len(rt.names))
	for i, name := range rt.names {
		if views[i].err != nil {
			b, _ := json.Marshal(map[string]string{"error": views[i].err.Error()})
			shards[name] = b
			continue
		}
		shards[name] = json.RawMessage(views[i].body)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"router": map[string]any{
			"in_flight": rt.cfg.Tracer.InFlight(),
			"requests":  rt.cfg.Tracer.Requests(),
		},
		"shards": shards,
	})
}

// handleDebugTrace fans a trace-id lookup out to the replicas — the
// trace lives wherever the sampled request executed, which the id alone
// does not reveal — and serves the first hit with X-Oldend-Shard naming
// the replica that retained it. When no replica holds the id, the
// router's own retained tree (span tree of the routed request itself)
// answers; only then 404.
func (rt *Router) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if _, err := obs.ParseTraceID(idStr); err != nil {
		writeError(w, http.StatusBadRequest, "bad trace id: "+err.Error())
		return
	}
	path := "/debug/trace/" + idStr
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	for _, name := range rt.names {
		sh := rt.shards[name]
		if !rt.alive(sh) {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		rep, err := rt.exchange(ctx, sh, http.MethodGet, path, nil, nil)
		cancel()
		if err == nil && rep.status == http.StatusOK {
			serveReply(w, rep, sh.name)
			return
		}
	}
	if root, ok := rt.cfg.Tracer.Lookup(idStr); ok {
		if r.URL.Query().Get("format") == "tree" {
			writeJSON(w, http.StatusOK, obs.Tree(root))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChrome(w, root)
		return
	}
	writeError(w, http.StatusNotFound, "trace not retained on any shard (unsampled or evicted)")
}
