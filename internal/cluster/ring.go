// Package cluster is the sharded serving layer over N oldend replicas: a
// consistent-hash ring that assigns every canonical run-config cache key
// a stable owner (and fallback owners), and an HTTP router that proxies
// requests to the owning shard, probes peer caches for hot keys, retries
// connection failures on the next owner, and — because every replica is
// deterministic — can duplicate any routed request to a second replica
// and demand byte-identical answers.
//
// This is the paper's ⟨processor, address⟩ addressing lifted one level:
// the simulator names heap data by home processor and lets the compiler
// choose between fetching the data and shipping the computation; the
// cluster names *results* by ⟨replica, run-config⟩ and ships the request
// to the shard that owns the result rather than copying cache state
// around. Determinism (PR 3's digest work) is what makes the whole
// scheme sound: any replica asked the same question produces the same
// bytes, so ownership is a performance decision, never a correctness
// one — and cross-replica disagreement is a bug worth failing loudly
// over.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is an immutable consistent-hash ring over a static replica list.
// Each replica is expanded into VNodes virtual points; a key is owned by
// the first point clockwise from its hash. Determinism matters here the
// same way it does in the simulator: the ring is a pure function of
// (replicas, vnodes), so every router process — and every restart —
// agrees on ownership without coordination.
type Ring struct {
	replicas []string
	vnodes   int
	points   []ringPoint // sorted by hash, ties broken by replica index
}

type ringPoint struct {
	hash    uint64
	replica int // index into replicas
}

// DefaultVNodes is the virtual-node count per replica when the caller
// passes 0: high enough that three replicas split the ten-kernel config
// space within a few percent, low enough that building the ring is
// trivially cheap.
const DefaultVNodes = 128

// NewRing builds a ring over the given replica names (base URLs in the
// router's case). Names must be unique and non-empty; order does not
// affect ownership (points hash by name, not position).
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(replicas))
	for _, r := range replicas {
		if r == "" {
			return nil, fmt.Errorf("cluster: empty replica name")
		}
		if seen[r] {
			return nil, fmt.Errorf("cluster: duplicate replica %q", r)
		}
		seen[r] = true
	}
	ring := &Ring{
		replicas: append([]string(nil), replicas...),
		vnodes:   vnodes,
		points:   make([]ringPoint, 0, len(replicas)*vnodes),
	}
	for i, r := range ring.replicas {
		for v := 0; v < vnodes; v++ {
			ring.points = append(ring.points, ringPoint{
				hash:    hashString(r + "#" + strconv.Itoa(v)),
				replica: i,
			})
		}
	}
	sort.Slice(ring.points, func(a, b int) bool {
		if ring.points[a].hash != ring.points[b].hash {
			return ring.points[a].hash < ring.points[b].hash
		}
		return ring.points[a].replica < ring.points[b].replica
	})
	return ring, nil
}

// Replicas returns the replica names the ring was built over, in the
// order given to NewRing.
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// Owner returns the key's primary owner: the first virtual point
// clockwise from the key's hash.
func (r *Ring) Owner(key string) string { return r.Owners(key, 1)[0] }

// Owners returns up to n distinct replicas in ring (preference) order
// starting at the key's primary owner — the retry/replication chain for
// the key. n is clamped to the replica count.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	if n < 1 {
		n = 1
	}
	h := hashString(key)
	// First point with hash >= h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if !taken[p.replica] {
			taken[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}

// hashString is 64-bit FNV-1a through a splitmix64 finalizer. FNV alone
// is stable and seedless (the same reasons the trace digests use it) but
// mixes too weakly for ring placement: vnode labels differ only in a few
// trailing digits, and their raw FNV values land on correlated arcs —
// measured skew over three replicas was ~1.5x the fair share. The
// finalizer is a fixed bijection, so determinism across processes and
// restarts is unchanged.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
