package cluster

import (
	"fmt"
	"testing"

	"repro/internal/server"
)

var testReplicas = []string{
	"http://10.0.0.1:8081",
	"http://10.0.0.2:8081",
	"http://10.0.0.3:8081",
}

// configSpaceKeys builds the canonical cache keys of the realistic
// config space: the ten pinned kernels × the three coherence schemes ×
// P ∈ {1,2,4,8} — the same CacheKey string the server memoizes under
// and the router hashes, so the distribution bound below is measured
// over exactly the keys production traffic produces.
func configSpaceKeys() []string {
	benches := []string{"treeadd", "power", "tsp", "mst", "bisort",
		"voronoi", "em3d", "barneshut", "perimeter", "health"}
	schemes := []string{"local", "global", "bilateral"}
	var keys []string
	for _, b := range benches {
		for _, s := range schemes {
			for _, p := range []int{1, 2, 4, 8} {
				keys = append(keys, server.CacheKey(server.RunRequest{
					Benchmark: b, Procs: p, Scale: 64, Scheme: s, Mode: "heuristic",
				}))
			}
		}
	}
	return keys
}

// TestRingDeterministic pins the property the whole cluster rests on:
// ownership is a pure function of (replicas, vnodes) — identical across
// ring rebuilds (process restarts) and across replica list order, with
// no coordination.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(testReplicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(testReplicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed list: same set, different order.
	rev := []string{testReplicas[2], testReplicas[1], testReplicas[0]}
	c, err := NewRing(rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range configSpaceKeys() {
		oa, ob, oc := a.Owner(key), b.Owner(key), c.Owner(key)
		if oa != ob {
			t.Fatalf("rebuild moved %q: %s vs %s", key, oa, ob)
		}
		if oa != oc {
			t.Fatalf("replica order moved %q: %s vs %s", key, oa, oc)
		}
		// The full owner chain must agree too (retry/replication order).
		ca, cc := a.Owners(key, 3), c.Owners(key, 3)
		for i := range ca {
			if ca[i] != cc[i] {
				t.Fatalf("owner chain for %q differs at %d: %v vs %v", key, i, ca, cc)
			}
		}
	}
}

// TestRingDistribution bounds the spread of the real config space over
// three replicas (max/mean and min/mean over the 120 production keys)
// and, with a large synthetic key set, the asymptotic uniformity of the
// ring itself.
func TestRingDistribution(t *testing.T) {
	ring, err := NewRing(testReplicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	count := func(keys []string) map[string]int {
		c := map[string]int{}
		for _, k := range keys {
			c[ring.Owner(k)]++
		}
		return c
	}

	keys := configSpaceKeys()
	counts := count(keys)
	mean := float64(len(keys)) / float64(len(testReplicas))
	for r, n := range counts {
		if f := float64(n) / mean; f > 1.6 || f < 0.4 {
			t.Errorf("config space skewed: %s owns %d of %d keys (%.2f of mean; all=%v)",
				r, n, len(keys), f, counts)
		}
	}
	if len(counts) != len(testReplicas) {
		t.Errorf("only %d of %d replicas own production keys: %v", len(counts), len(testReplicas), counts)
	}

	var synth []string
	for i := 0; i < 30000; i++ {
		synth = append(synth, fmt.Sprintf("bench%d|baseline=false|P=%d|scale=%d|scheme=s|mode=m", i, i%16, i%7))
	}
	sc := count(synth)
	smean := float64(len(synth)) / float64(len(testReplicas))
	for r, n := range sc {
		if f := float64(n) / smean; f > 1.10 || f < 0.90 {
			t.Errorf("synthetic distribution skewed: %s owns %d (%.3f of mean)", r, n, f)
		}
	}
}

// TestRingMinimalMovement removes one replica and requires that only the
// keys it owned move: every other key keeps its owner — the consistent-
// hashing contract that makes shard loss lose one cache shard, not
// reshuffle all of them.
func TestRingMinimalMovement(t *testing.T) {
	four := append(append([]string(nil), testReplicas...), "http://10.0.0.4:8081")
	removed := four[3]
	big, err := NewRing(four, 0)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewRing(testReplicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	keys = append(keys, configSpaceKeys()...)
	for i := 0; i < 5000; i++ {
		keys = append(keys, fmt.Sprintf("k%d", i))
	}
	moved, owned := 0, 0
	for _, key := range keys {
		before, after := big.Owner(key), small.Owner(key)
		if before == removed {
			owned++
			continue // must move; anywhere is legal
		}
		if before != after {
			moved++
			t.Errorf("key %q moved %s -> %s though its owner survived", key, before, after)
			if moved > 5 {
				t.Fatal("... more movement elided")
			}
		}
	}
	if owned == 0 {
		t.Fatal("removed replica owned no keys; test is vacuous")
	}
	// The removed replica's keys must be redistributed, not funneled to
	// one survivor.
	redistributed := map[string]int{}
	for _, key := range keys {
		if big.Owner(key) == removed {
			redistributed[small.Owner(key)]++
		}
	}
	if len(redistributed) < 2 {
		t.Errorf("removed replica's %d keys all funneled to one survivor: %v", owned, redistributed)
	}
}

// TestRingOwners pins the owner-chain contract: distinct replicas,
// primary first, clamped to the replica count.
func TestRingOwners(t *testing.T) {
	ring, err := NewRing(testReplicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "b", "treeadd|baseline=false|P=4|scale=64|scheme=local|mode=heuristic"} {
		owners := ring.Owners(key, 10)
		if len(owners) != len(testReplicas) {
			t.Fatalf("Owners(%q, 10) = %v, want all %d replicas", key, owners, len(testReplicas))
		}
		if owners[0] != ring.Owner(key) {
			t.Fatalf("Owners[0] %q != Owner %q", owners[0], ring.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %q in %v", o, owners)
			}
			seen[o] = true
		}
	}
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty replica list must error")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate replicas must error")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty replica name must error")
	}
}
