package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/server"
)

// Config tunes a Router. Replicas is the only required field.
type Config struct {
	// Replicas is the static replica list: base URLs (http://host:port)
	// of the oldend processes the ring shards over.
	Replicas []string
	// VNodes is the virtual-node count per replica (0 = DefaultVNodes).
	VNodes int
	// ProbeOwners is R, the hot-key replication width: cacheable /run
	// requests rotate across the key's first R owners, and the router
	// probes those owners' caches (GET /cache/probe) before committing
	// an execution anywhere. 1 (the default) routes every key to its
	// primary owner only — maximum aggregate cache capacity, no
	// replication; raise it for skewed mixes where a few hot keys
	// deserve to be served from more than one shard.
	ProbeOwners int
	// VerifyEvery is K: every Kth routed execution whose primary answer
	// was a 200 is duplicated — synchronously — to a second replica, and
	// the two bodies plus trace digests must be byte-identical. 0
	// disables. This is the correctness gate determinism buys the
	// cluster: any two replicas asked the same question must agree, so a
	// mismatch is a real bug (nondeterminism, version skew, corruption),
	// counted in oldenrouter_verify_mismatch_total and logged.
	VerifyEvery int
	// MaxConnsPerReplica bounds concurrent requests (proxies, probes,
	// verify duplicates) the router holds open to one replica
	// (default 64). Excess requests wait; the bound is what keeps one
	// slow shard from absorbing the router's whole file-descriptor
	// budget.
	MaxConnsPerReplica int
	// RetryAfter is the backoff hint attached to 503 responses when no
	// owner of a key is reachable (default 1s).
	RetryAfter time.Duration
	// DownCooldown is how long a replica stays marked down after a
	// connection failure before the router tries it again (default 2s).
	DownCooldown time.Duration
	// ProbeTimeout caps one peer cache probe (default 2s) — probes are
	// an optimization and must never stall the routed path.
	ProbeTimeout time.Duration
	// Metrics receives the router's counters; a fresh registry when nil.
	Metrics *metrics.Registry
	// Tracer owns request sampling; when nil one is built from
	// SampleEvery/DebugRequests, as in the server.
	Tracer *obs.Tracer
	// SampleEvery is head sampling when Tracer is nil (same semantics as
	// the server's flag of the same name).
	SampleEvery int
	// DebugRequests bounds the router's finished-request ring.
	DebugRequests int
	// AccessLog, when non-nil, receives one JSON line per request.
	AccessLog io.Writer
	// Client substitutes the outbound HTTP client (tests); nil builds
	// one with no global timeout (per-request contexts bound everything).
	Client *http.Client
	// Now substitutes the wall clock (tests).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.ProbeOwners <= 0 {
		c.ProbeOwners = 1
	}
	if c.MaxConnsPerReplica <= 0 {
		c.MaxConnsPerReplica = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Tracer == nil {
		c.Tracer = obs.New(obs.Config{
			SampleEvery: c.SampleEvery,
			RequestRing: c.DebugRequests,
			Now:         c.Now,
		})
	}
	return c
}

// shard is the router's per-replica state: the connection budget and the
// failure-cooldown clock.
type shard struct {
	name   string
	budget chan struct{}
	// downUntil is the unix-nano instant before which the shard is
	// skipped on the first routing pass. Connection failures set it;
	// any successful exchange clears it.
	downUntil atomic.Int64
}

// Router shards oldend traffic across replicas by the canonical
// run-config cache key. Create with NewRouter, mount Handler.
type Router struct {
	cfg    Config
	ring   *Ring
	shards map[string]*shard
	names  []string // ring order-independent replica list (config order)
	log    *slog.Logger

	rr      atomic.Uint64 // round-robin cursor over a key's first R owners
	verifyN atomic.Uint64 // every-Kth counter for cross-replica verify

	retries        *metrics.Counter
	unroutable     *metrics.Counter
	verifyMatch    *metrics.Counter
	verifyMismatch *metrics.Counter
	verifyErr      *metrics.Counter
}

// NewRouter builds the router and its ring.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		shards: make(map[string]*shard, len(cfg.Replicas)),
		names:  ring.Replicas(),
	}
	if cfg.AccessLog != nil {
		rt.log = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	for _, name := range rt.names {
		rt.shards[name] = &shard{
			name:   name,
			budget: make(chan struct{}, cfg.MaxConnsPerReplica),
		}
	}
	m := cfg.Metrics
	m.SetHelp("oldenrouter_requests_total", "Requests answered by the router, by path and status code.")
	m.SetHelp("oldenrouter_proxied_total", "Requests proxied to a replica, by shard and status code.")
	m.SetHelp("oldenrouter_proxy_retries_total", "Proxy attempts retried on the next ring owner after a connection failure.")
	m.SetHelp("oldenrouter_unroutable_total", "Requests answered 503 because no owner of the key was reachable.")
	m.SetHelp("oldenrouter_probe_total", "Peer cache probes issued, by shard and outcome.")
	m.SetHelp("oldenrouter_verify_total", "Cross-replica verify duplicates, by outcome (byte-identity of two replicas' answers).")
	m.SetHelp("oldenrouter_verify_mismatch_total", "Cross-replica verify mismatches: two replicas answered the same key with different bytes. Any nonzero value is a determinism bug.")
	m.SetHelp("oldenrouter_shard_latency_us", "Wall-clock latency of proxied replica exchanges, in microseconds, by shard.")
	m.SetHelp("oldenrouter_replica_down_total", "Connection failures that marked a replica down for the cooldown, by shard.")
	m.SetHelp("oldenrouter_shards", "Replicas in the ring (static).")
	rt.retries = m.Counter("oldenrouter_proxy_retries_total")
	rt.unroutable = m.Counter("oldenrouter_unroutable_total")
	rt.verifyMatch = m.Counter("oldenrouter_verify_total", metrics.L("outcome", "match"))
	rt.verifyMismatch = m.Counter("oldenrouter_verify_mismatch_total")
	rt.verifyErr = m.Counter("oldenrouter_verify_total", metrics.L("outcome", "error"))
	m.RegisterFunc("oldenrouter_shards", metrics.KindGauge, func() int64 { return int64(len(rt.names)) })
	return rt, nil
}

// Metrics exposes the router's registry.
func (rt *Router) Metrics() *metrics.Registry { return rt.cfg.Metrics }

// Ring exposes the router's ring (read-only; tests and the readyz
// handler use it).
func (rt *Router) Ring() *Ring { return rt.ring }

// alive reports whether the shard is not inside a failure cooldown.
func (rt *Router) alive(sh *shard) bool {
	return rt.cfg.Now().UnixNano() >= sh.downUntil.Load()
}

func (rt *Router) markDown(sh *shard) {
	sh.downUntil.Store(rt.cfg.Now().Add(rt.cfg.DownCooldown).UnixNano())
	rt.cfg.Metrics.Counter("oldenrouter_replica_down_total", metrics.L("shard", sh.name)).Inc()
}

func (rt *Router) markUp(sh *shard) { sh.downUntil.Store(0) }

// reply is one fully-read replica response: everything the router needs
// to serve, compare or discard it without holding a connection open.
type reply struct {
	status int
	header http.Header
	body   []byte
}

// exchange performs one bounded request against a shard: acquire the
// shard's connection budget (waiting within ctx), send, read the whole
// body, release. A transport error marks the shard down; any HTTP
// response — including 5xx — marks it up, because a replica that answers
// is alive even when it answers badly.
func (rt *Router) exchange(ctx context.Context, sh *shard, method, path string, body []byte, hdr http.Header) (reply, error) {
	select {
	case sh.budget <- struct{}{}:
	case <-ctx.Done():
		return reply{}, ctx.Err()
	}
	defer func() { <-sh.budget }()

	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, sh.name+path, rd)
	if err != nil {
		return reply{}, err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	start := rt.cfg.Now()
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.markDown(sh)
		return reply{}, err
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	resp.Body.Close()
	if err != nil {
		rt.markDown(sh)
		return reply{}, err
	}
	rt.markUp(sh)
	rt.cfg.Metrics.Histogram("oldenrouter_shard_latency_us", metrics.L("shard", sh.name)).
		Observe(rt.cfg.Now().Sub(start).Microseconds())
	rt.cfg.Metrics.Counter("oldenrouter_proxied_total",
		metrics.L("shard", sh.name), metrics.L("code", strconv.Itoa(resp.StatusCode))).Inc()
	return reply{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// skippedHeaders are response headers the router owns (trace identity is
// stamped before the handler runs) or that do not survive re-framing.
var skippedHeaders = map[string]bool{
	"Connection":        true,
	"Transfer-Encoding": true,
	"Content-Length":    true,
	"Date":              true,
	"X-Request-Id":      true,
	"X-Oldend-Trace-Id": true,
}

// serveReply writes a replica's response through to the client,
// preserving every replica header (X-Oldend-Cache, X-Oldend-Phase-Cache,
// X-Oldend-Trace-Digest, Retry-After, ...) and guaranteeing
// X-Oldend-Shard names the shard that answered even when the replica
// itself was not configured with a shard name.
func serveReply(w http.ResponseWriter, rep reply, shardName string) {
	for k, vs := range rep.header {
		if skippedHeaders[k] {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if w.Header().Get("X-Oldend-Shard") == "" {
		w.Header().Set("X-Oldend-Shard", shardName)
	}
	w.WriteHeader(rep.status)
	w.Write(rep.body)
}

// downstreamHeader builds the headers a proxied request carries: the
// original content type plus the trace chain — a fresh traceparent child
// of the router's span when the request is sampled (so the replica's
// span tree hangs off the router's), or the original traceparent
// verbatim when it is not.
func downstreamHeader(r *http.Request, sp *obs.Span) http.Header {
	h := http.Header{}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	if sp.Sampled() {
		h.Set("traceparent", sp.Context().Traceparent())
	} else if tp := r.Header.Get("traceparent"); tp != "" {
		h.Set("traceparent", tp)
	}
	return h
}

// candidates orders the owners the proxy path will try: the chosen
// target first, then the remaining ring owners in preference order —
// live shards before ones inside a failure cooldown, so a down replica
// costs nothing until its cooldown expires but is still tried as the
// last resort.
func (rt *Router) candidates(owners []string, target string) []*shard {
	ordered := make([]*shard, 0, len(owners))
	ordered = append(ordered, rt.shards[target])
	for _, o := range owners {
		if o != target {
			ordered = append(ordered, rt.shards[o])
		}
	}
	live := make([]*shard, 0, len(ordered))
	var down []*shard
	for _, sh := range ordered {
		if rt.alive(sh) {
			live = append(live, sh)
		} else {
			down = append(down, sh)
		}
	}
	return append(live, down...)
}

// handleRun is the routed execution path:
//
//  1. canonicalize the request with the replicas' own normalization and
//     key function (server.Normalize / server.CacheKey), so the ring
//     hashes exactly the string the replica caches under;
//  2. for cacheable requests with ProbeOwners > 1, probe the key's first
//     R owners' caches and serve the first hit — hot keys end up
//     resident on R shards and any of them can answer;
//  3. otherwise proxy to the round-robin target among those owners
//     (primary owner when R == 1), retrying the next ring owner on
//     connection failure, 503 + Retry-After when every owner is down;
//  4. every Kth successful execution is duplicated to a second replica
//     and the two answers must be byte-identical (verify mode).
func (rt *Router) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var req server.RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	req, err = server.Normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := server.CacheKey(req)
	owners := rt.ring.Owners(key, len(rt.names))
	rc := requestCtx(r)
	rc.key = key
	rc.benchmark = req.Benchmark

	cacheable := !req.NoCache && !req.Verify
	ridx := 0
	nProbe := min(rt.cfg.ProbeOwners, len(owners))
	if cacheable && nProbe > 1 {
		ridx = int(rt.rr.Add(1) % uint64(nProbe))
		// Probe phase: ask the R owners (starting at the rotation point,
		// so probe load spreads too) before executing anywhere.
		for i := 0; i < nProbe; i++ {
			sh := rt.shards[owners[(ridx+i)%nProbe]]
			if !rt.alive(sh) {
				continue
			}
			ps := rc.sp.StartChild("probe:" + sh.name)
			pctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProbeTimeout)
			rep, err := rt.exchange(pctx, sh, http.MethodGet,
				"/cache/probe?key="+url.QueryEscape(key), nil, downstreamHeader(r, ps))
			cancel()
			outcome := "miss"
			switch {
			case err != nil:
				outcome = "error"
				ps.EndAborted()
			case rep.status == http.StatusOK:
				outcome = "hit"
				ps.End()
			default:
				ps.End()
			}
			rt.cfg.Metrics.Counter("oldenrouter_probe_total",
				metrics.L("shard", sh.name), metrics.L("outcome", outcome)).Inc()
			if outcome == "hit" {
				rc.shard, rc.cache = sh.name, "hit"
				serveReply(w, rep, sh.name)
				return
			}
		}
	}
	target := owners[ridx%len(owners)]

	// Proxy phase with retry-on-next-owner. Safe to retry even after a
	// half-sent request: /run is deterministic and idempotent, the
	// property the whole cluster design leans on.
	hdr := downstreamHeader(r, rc.sp)
	var served bool
	for attempt, sh := range rt.candidates(owners, target) {
		if attempt > 0 {
			rt.retries.Inc()
		}
		ps := rc.sp.StartChild("proxy:" + sh.name)
		rep, err := rt.exchange(r.Context(), sh, http.MethodPost, "/run", body, hdr)
		if err != nil {
			ps.SetAttr("error", err.Error())
			ps.EndAborted()
			if r.Context().Err() != nil {
				break // the client is gone; stop burning replicas
			}
			continue
		}
		ps.SetAttrInt("status", int64(rep.status))
		ps.End()
		rc.shard = sh.name
		rc.cache = rep.header.Get("X-Oldend-Cache")
		if rep.status == http.StatusOK && cacheable && rt.cfg.VerifyEvery > 0 &&
			rt.verifyN.Add(1)%uint64(rt.cfg.VerifyEvery) == 0 {
			rt.verifyAgainstPeer(r, rc.sp, owners, sh.name, body, rep)
		}
		serveReply(w, rep, sh.name)
		served = true
		break
	}
	if !served {
		rt.unroutable.Inc()
		rc.shed = "no_owner_reachable"
		w.Header().Set("Retry-After", rt.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("no reachable replica for key %q (tried %d owners)", key, len(owners)))
	}
}

// verifyAgainstPeer duplicates one already-served execution to the next
// distinct owner and demands byte-identity: same RunRecord bytes, same
// X-Oldend-Trace-Digest. The duplicate runs synchronously (the caller
// already holds the primary answer) so the metrics a smoke script
// scrapes after a sweep are settled. A mismatch serves the primary
// answer regardless — the alarm is the counter and the log line, the
// contract with the client is unchanged.
func (rt *Router) verifyAgainstPeer(r *http.Request, sp *obs.Span, owners []string, primary string, body []byte, prime reply) {
	var peer *shard
	for _, o := range owners {
		if o != primary && rt.alive(rt.shards[o]) {
			peer = rt.shards[o]
			break
		}
	}
	if peer == nil {
		return // single-replica ring or everyone else down: nothing to compare
	}
	vs := sp.StartChild("verify:" + peer.name)
	rep, err := rt.exchange(r.Context(), peer, http.MethodPost, "/run", body, downstreamHeader(r, vs))
	if err != nil || rep.status != http.StatusOK {
		rt.verifyErr.Inc()
		vs.EndAborted()
		return
	}
	primeDigest := prime.header.Get("X-Oldend-Trace-Digest")
	peerDigest := rep.header.Get("X-Oldend-Trace-Digest")
	if bytes.Equal(prime.body, rep.body) && primeDigest == peerDigest {
		rt.verifyMatch.Inc()
		vs.SetAttr("verify", "match")
		vs.End()
		return
	}
	rt.verifyMismatch.Inc()
	vs.SetAttr("verify", "mismatch")
	vs.EndAborted()
	if rt.log != nil {
		rt.log.Error("cross-replica verify mismatch",
			slog.String("primary", primary),
			slog.String("peer", peer.name),
			slog.String("primary_digest", primeDigest),
			slog.String("peer_digest", peerDigest),
			slog.Int("primary_bytes", len(prime.body)),
			slog.Int("peer_bytes", len(rep.body)),
		)
	}
}

// handleBatch shards a /batch body: normalize every run with the
// replicas' own rules, group the valid ones by primary owner, forward
// one sub-batch per shard concurrently, and merge the per-item answers
// back into request order. Invalid items fail 400 item-locally, exactly
// as the replica would have answered; a shard whose whole exchange fails
// (after retrying the next ring owner) yields 503 items.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var breq server.BatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(breq.Runs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch (runs is required)")
		return
	}
	items := make([]server.BatchItem, len(breq.Runs))
	groups := map[string][]int{} // primary owner -> original indices
	keys := map[int]string{}
	for i, q := range breq.Runs {
		nq, err := server.Normalize(q)
		if err != nil {
			items[i] = server.BatchItem{Benchmark: q.Benchmark, Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		breq.Runs[i] = nq
		key := server.CacheKey(nq)
		keys[i] = key
		owner := rt.ring.Owner(key)
		groups[owner] = append(groups[owner], i)
	}
	hdr := downstreamHeader(r, requestCtx(r).sp)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			sub := server.BatchRequest{DeadlineMS: breq.DeadlineMS, Runs: make([]server.RunRequest, len(idxs))}
			for j, i := range idxs {
				sub.Runs[j] = breq.Runs[i]
			}
			body, err := json.Marshal(sub)
			if err != nil {
				rt.failBatchItems(items, idxs, &mu, http.StatusInternalServerError, err.Error())
				return
			}
			// Retry chain for the sub-batch: the group's owner first, then
			// the remaining ring owners of the group's first key — any
			// replica computes the same answers, so fallback is safe.
			owners := rt.ring.Owners(keys[idxs[0]], len(rt.names))
			var rep reply
			ok := false
			for attempt, sh := range rt.candidates(owners, owner) {
				if attempt > 0 {
					rt.retries.Inc()
				}
				rep, err = rt.exchange(r.Context(), sh, http.MethodPost, "/batch", body, hdr)
				if err == nil {
					ok = true
					break
				}
				if r.Context().Err() != nil {
					break
				}
			}
			if !ok {
				rt.unroutable.Inc()
				rt.failBatchItems(items, idxs, &mu, http.StatusServiceUnavailable, "no reachable replica for batch group")
				return
			}
			var subItems []server.BatchItem
			if rep.status != http.StatusOK || json.Unmarshal(rep.body, &subItems) != nil || len(subItems) != len(idxs) {
				rt.failBatchItems(items, idxs, &mu, http.StatusBadGateway,
					fmt.Sprintf("replica %s answered batch with status %d", owner, rep.status))
				return
			}
			mu.Lock()
			for j, i := range idxs {
				items[i] = subItems[j]
			}
			mu.Unlock()
		}(owner, idxs)
	}
	wg.Wait()

	retryAfter := false
	cacheHits, phaseHits := 0, 0
	for i := range items {
		switch items[i].Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			retryAfter = true
		}
		if items[i].Cache == "hit" || items[i].Cache == "dedup" {
			cacheHits++
		}
		if items[i].PhaseCache == "hit" {
			phaseHits++
		}
	}
	if retryAfter {
		w.Header().Set("Retry-After", rt.retryAfterSeconds())
	}
	w.Header().Set("X-Oldend-Batch",
		fmt.Sprintf("runs=%d cache-hits=%d phase-hits=%d shards=%d", len(items), cacheHits, phaseHits, len(groups)))
	writeJSON(w, http.StatusOK, items)
}

func (rt *Router) failBatchItems(items []server.BatchItem, idxs []int, mu *sync.Mutex, status int, msg string) {
	mu.Lock()
	defer mu.Unlock()
	for _, i := range idxs {
		items[i].Status = status
		items[i].Error = msg
	}
}

// proxyAny forwards a shard-agnostic request (catalog, analyze) to the
// first reachable replica.
func (rt *Router) proxyAny(w http.ResponseWriter, r *http.Request, method, path string, body []byte) {
	hdr := downstreamHeader(r, requestCtx(r).sp)
	for attempt, sh := range rt.candidates(rt.names, rt.names[0]) {
		if attempt > 0 {
			rt.retries.Inc()
		}
		rep, err := rt.exchange(r.Context(), sh, method, path, body, hdr)
		if err != nil {
			if r.Context().Err() != nil {
				break
			}
			continue
		}
		requestCtx(r).shard = sh.name
		serveReply(w, rep, sh.name)
		return
	}
	rt.unroutable.Inc()
	w.Header().Set("Retry-After", rt.retryAfterSeconds())
	writeError(w, http.StatusServiceUnavailable, "no reachable replica")
}

func (rt *Router) retryAfterSeconds() string {
	secs := int64((rt.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
