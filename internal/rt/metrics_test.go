package rt

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/gaddr"
	"repro/internal/metrics"
)

// buildRemoteList allocates a two-node cross-processor list so a traversal
// generates remote references.
func buildRemoteList(r *Runtime) (gaddr.GP, gaddr.GP) {
	var a, b gaddr.GP
	r.Run(0, func(t *Thread) {
		site := &Site{Name: "mt.init", Mech: Cache}
		a = t.Alloc(0, 16)
		b = t.Alloc(1, 16)
		t.StoreInt(site, a, 0, 1)
		t.StoreInt(site, b, 0, 2)
	})
	return a, b
}

func TestMetricsRegistryRecordsRun(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(Config{Procs: 2, Metrics: reg})
	a, b := buildRemoteList(r)
	site := &Site{Name: "mt.walk", Mech: Cache}
	// The build phase's remote store to b already missed and installed
	// b's line (write-through fills), so both kernel loads of b hit.
	r.Run(0, func(th *Thread) {
		th.LoadInt(site, a, 0) // local
		th.LoadInt(site, b, 0) // remote: hit
		th.LoadInt(site, b, 0) // remote: hit
	})
	snap := reg.Snapshot()

	// The machine statistics are bound into the registry under olden_*
	// names and agree with the Stats view.
	st := r.M.Stats.Snapshot()
	if sm, ok := snap.Get("olden_cache_misses_total"); !ok || sm.Value != st.Misses {
		t.Fatalf("olden_cache_misses_total = %+v, want %d", sm, st.Misses)
	}
	if sm, ok := snap.Get("olden_ptr_tests_total"); !ok || sm.Value != st.PtrTests {
		t.Fatalf("olden_ptr_tests_total = %+v, want %d", sm, st.PtrTests)
	}

	// The runtime's own meters: two hits (kernel), one miss with a
	// latency observation and one line fill (the build-phase store).
	if sm, _ := snap.Get("olden_cache_hits_total"); sm.Value != 2 {
		t.Fatalf("olden_cache_hits_total = %d, want 2", sm.Value)
	}
	if sm, _ := snap.Get("olden_line_fills_total"); sm.Value != 1 {
		t.Fatalf("olden_line_fills_total = %d, want 1", sm.Value)
	}
	sm, ok := snap.Get("olden_miss_latency_cycles")
	if !ok || sm.Hist == nil || sm.Hist.Count != 1 || sm.Hist.Sum <= 0 {
		t.Fatalf("olden_miss_latency_cycles = %+v, want one positive observation", sm)
	}
}

func TestMetricsMigrationAndProtocolCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(Config{Procs: 2, Scheme: coherence.GlobalKnowledge, Metrics: reg})
	a, b := buildRemoteList(r)
	mig := &Site{Name: "mt.mig", Mech: Migrate}
	cch := &Site{Name: "mt.cch", Mech: Cache}
	r.Run(0, func(th *Thread) {
		th.LoadInt(cch, b, 0) // cache proc 1's line on proc 0
		CallVoid(th, func() {
			th.LoadInt(mig, b, 0)     // migrate 0→1
			th.StoreInt(cch, b, 8, 9) // dirty proc 1's page
		}) // return stub 1→0 releases the dirty page → invalidation + ack
		th.LoadInt(cch, a, 0)
	})
	snap := reg.Snapshot()
	scheme := metrics.L("scheme", "global")
	if sm, _ := snap.Get("olden_migrations_total"); sm.Value != 1 {
		t.Fatalf("olden_migrations_total = %d, want 1", sm.Value)
	}
	if sm, ok := snap.Get("olden_migration_transit_cycles", metrics.L("kind", "forward")); !ok || sm.Hist == nil || sm.Hist.Count != 1 {
		t.Fatalf("forward transit histogram = %+v, want 1 observation", sm)
	}
	if sm, ok := snap.Get("olden_migration_transit_cycles", metrics.L("kind", "return")); !ok || sm.Hist == nil || sm.Hist.Count != 1 {
		t.Fatalf("return transit histogram = %+v, want 1 observation", sm)
	}
	if sm, _ := snap.Get("olden_protocol_messages_total", scheme, metrics.L("type", "inval")); sm.Value != 1 {
		t.Fatalf("inval messages = %d, want 1", sm.Value)
	}
	if sm, _ := snap.Get("olden_ack_round_trips_total", scheme); sm.Value != 1 {
		t.Fatalf("ack round trips = %d, want 1", sm.Value)
	}
	if sm, _ := snap.Get("olden_lines_invalidated_total", scheme); sm.Value != 1 {
		t.Fatalf("lines invalidated = %d, want 1", sm.Value)
	}
}

// TestResetForKernelResetsMetrics pins the epoch rule: a benchmark's
// ResetForKernel clears the metrics registry along with the statistics and
// the trace, so a kernel-timed record cannot mix build-phase counts.
func TestResetForKernelResetsMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(Config{Procs: 2, Metrics: reg})
	a, b := buildRemoteList(r)
	site := &Site{Name: "mt.build", Mech: Cache}
	r.Run(0, func(th *Thread) {
		th.LoadInt(site, b, 0)
		th.LoadInt(site, a, 0)
	})
	if sm, _ := reg.Snapshot().Get("olden_ptr_tests_total"); sm.Value == 0 {
		t.Fatal("build phase should have recorded pointer tests")
	}

	r.ResetForKernel()

	snap := reg.Snapshot()
	for _, s := range snap.Samples {
		// Read-through meters over cumulative cache state keep their
		// lifetime semantics (pages ever allocated survive phase
		// resets, exactly like Table 3's cumulative page count).
		if s.Name == "olden_cache_pages_allocated" || s.Name == "olden_proc_busy_cycles" {
			continue
		}
		if s.Value != 0 {
			t.Errorf("%s = %d after ResetForKernel, want 0", s.ID(), s.Value)
		}
		if s.Hist != nil && (s.Hist.Count != 0 || s.Hist.Sum != 0) {
			t.Errorf("%s histogram not cleared: %+v", s.ID(), s.Hist)
		}
	}
	// Busy-cycle gauges do reset with the clocks.
	if sm, ok := reg.Snapshot().Get("olden_proc_busy_cycles", metrics.L("proc", "0")); !ok || sm.Value != 0 {
		t.Fatalf("proc busy gauge = %+v, want 0 after clock reset", sm)
	}

	// And the kernel epoch accumulates fresh counts.
	kernel := &Site{Name: "mt.kernel", Mech: Cache}
	r.Run(0, func(th *Thread) { th.LoadInt(kernel, b, 0) })
	if sm, _ := reg.Snapshot().Get("olden_ptr_tests_total"); sm.Value != 1 {
		t.Fatalf("kernel epoch ptr tests = %d, want exactly 1", sm.Value)
	}
}

// TestMetricsOffByDefault pins the disabled state: no registry, nil
// handles, identical simulation results.
func TestMetricsOffByDefault(t *testing.T) {
	run := func(reg *metrics.Registry) int64 {
		r := New(Config{Procs: 2, Metrics: reg})
		a, b := buildRemoteList(r)
		site := &Site{Name: "mt.off", Mech: Cache}
		return r.Run(0, func(th *Thread) {
			th.LoadInt(site, a, 0)
			th.LoadInt(site, b, 0)
		})
	}
	if r := New(Config{Procs: 1}); r.Metrics() != nil {
		t.Fatal("metrics must be off by default")
	}
	if off, on := run(nil), run(metrics.NewRegistry()); off != on {
		t.Fatalf("metrics recording changed the simulation: %d != %d cycles", off, on)
	}
}
