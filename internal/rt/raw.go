package rt

import (
	"fmt"

	"repro/internal/gaddr"
)

// This file is the only sanctioned doorway for programs that need heap
// access outside the cost model (untimed build phases) or interior
// pointers into allocated objects. Everything here exists so that
// "compiled" benchmark code never unpacks or does arithmetic on global
// pointer encodings itself — internal/analysis's heap-escape check
// enforces exactly that boundary.

// FieldPtr forms an interior pointer off bytes into the object g — the
// address arithmetic the compiler would emit for &g->field or &g[i].
// The result stays on g's processor; FieldPtr panics on nil.
func FieldPtr(g gaddr.GP, off uint32) gaddr.GP {
	if g.IsNil() {
		panic("rt: FieldPtr of nil pointer")
	}
	return g.Add(off)
}

// RawAlloc allocates on a processor without charging anything — the
// untimed data-structure-building phase of a kernel-timed benchmark.
func (r *Runtime) RawAlloc(proc int, nbytes uint32) gaddr.GP {
	if proc < 0 || proc >= r.P() {
		panic(fmt.Sprintf("rt: RawAlloc on processor %d of %d", proc, r.P()))
	}
	return r.M.Procs[proc].Heap.Alloc(nbytes)
}

// RawLoad reads the word at byte offset off of object g without charging
// anything.
func (r *Runtime) RawLoad(g gaddr.GP, off uint32) uint64 {
	a := g.Add(off)
	return r.M.Procs[a.Proc()].Heap.LoadWord(a.Off())
}

// RawStore writes the word at byte offset off of object g without
// charging anything.
func (r *Runtime) RawStore(g gaddr.GP, off uint32, v uint64) {
	a := g.Add(off)
	r.M.Procs[a.Proc()].Heap.StoreWord(a.Off(), v)
}

// RawLoadPtr reads a global-pointer field without charging anything.
func (r *Runtime) RawLoadPtr(g gaddr.GP, off uint32) gaddr.GP {
	return gaddr.GP(r.RawLoad(g, off))
}

// RawStorePtr writes a global-pointer field without charging anything.
func (r *Runtime) RawStorePtr(g gaddr.GP, off uint32, v gaddr.GP) {
	r.RawStore(g, off, uint64(v))
}
