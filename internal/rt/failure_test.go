package rt

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/coherence"
	"repro/internal/gaddr"
	"repro/internal/machine"
)

// TestHeapExhaustionPanics checks the failure mode of an undersized heap
// section carries a sizing hint.
func TestHeapExhaustionPanics(t *testing.T) {
	r := New(Config{Procs: 1, HeapBytesPerProc: 2 * gaddr.PageBytes})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected heap exhaustion panic")
		}
		if !strings.Contains(v.(string), "HeapBytesPerProc") {
			t.Fatalf("panic lacks a sizing hint: %v", v)
		}
	}()
	r.Run(0, func(th *Thread) {
		for i := 0; i < 10_000; i++ {
			th.Alloc(0, 512)
		}
	})
}

// TestDeepCallWriteSets checks the per-frame write masks merge up through
// deep call chains: a return to an ancestor invalidates homes written by
// any nested call.
func TestDeepCallWriteSets(t *testing.T) {
	r := New(Config{Procs: 4, HeapBytesPerProc: 1 << 20})
	sc := &Site{Name: "deep.cache", Mech: Cache}
	r.Run(0, func(th *Thread) {
		g := th.Alloc(3, 8)
		th.LoadInt(sc, g, 0) // cache the line at 0
		CallVoid(th, func() {
			CallVoid(th, func() {
				CallVoid(th, func() {
					th.MigrateTo(1)
					th.StoreInt(sc, g, 0, 9) // writes processor 3's memory
				})
			})
		})
		// The outermost return must have invalidated processor 3's
		// lines in our cache.
		before := r.M.Stats.Misses.Load()
		if v := th.LoadInt(sc, g, 0); v != 9 {
			t.Fatalf("stale read %d after nested-call writes", v)
		}
		if r.M.Stats.Misses.Load() == before {
			t.Fatal("read should have missed: line was written during the call")
		}
	})
}

// TestFutureChains stress-tests chained futures: each child spawns its own
// child, forming a dependency chain across processors.
func TestFutureChains(t *testing.T) {
	const procs = 8
	r := New(Config{Procs: procs, HeapBytesPerProc: 1 << 20})
	total := r.Run(0, func(th *Thread) {
		var spawn func(t *Thread, depth int) *Future[int64]
		spawn = func(t *Thread, depth int) *Future[int64] {
			return Spawn(t, func(c *Thread) int64 {
				c.MigrateTo(depth % procs)
				c.Work(100)
				if depth == 0 {
					return 1
				}
				f := spawn(c, depth-1)
				return f.Touch(c) + 1
			})
		}
		if got := spawn(th, 20).Touch(th); got != 21 {
			t.Fatalf("chain result %d", got)
		}
	})
	if total < 2100 {
		t.Fatalf("makespan %d too small for a 21-link chain", total)
	}
}

// TestManyConcurrentFutures checks a wide fan-out drains correctly and
// work conservation holds.
func TestManyConcurrentFutures(t *testing.T) {
	const procs = 8
	const fan = 200
	r := New(Config{Procs: procs, HeapBytesPerProc: 1 << 20})
	r.Run(0, func(th *Thread) {
		futs := make([]*Future[int], fan)
		for i := range futs {
			i := i
			futs[i] = Spawn(th, func(c *Thread) int {
				c.MigrateTo(i % procs)
				c.Work(50)
				return i
			})
		}
		sum := 0
		for _, f := range futs {
			sum += f.Touch(th)
		}
		if sum != fan*(fan-1)/2 {
			t.Fatalf("sum = %d", sum)
		}
	})
	if busy := r.M.TotalBusy(); busy < fan*50 {
		t.Fatalf("busy %d; work not conserved", busy)
	}
}

// TestTwoThreadNonInterference is the Olden futures contract under random
// schedules: two futures write disjoint random slots; after touching both,
// the parent must observe every write under every scheme.
func TestTwoThreadNonInterference(t *testing.T) {
	for _, scheme := range []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral} {
		t.Run(scheme.String(), func(t *testing.T) {
			const procs = 4
			const slots = 64
			r := New(Config{Procs: procs, Scheme: scheme, HeapBytesPerProc: 1 << 20})
			sc := &Site{Name: "ni.cache", Mech: Cache}
			rng := rand.New(rand.NewSource(11))
			r.Run(0, func(th *Thread) {
				obj := th.Alloc(3, slots*8)
				// Parent caches the whole object first (so stale
				// copies exist to invalidate).
				for i := 0; i < slots; i++ {
					th.LoadInt(sc, obj, uint32(8*i))
				}
				// Disjoint halves, random order and processors.
				mk := func(lo, hi, proc int, seed int64) *Future[int] {
					return Spawn(th, func(c *Thread) int {
						lr := rand.New(rand.NewSource(seed))
						c.MigrateTo(proc)
						for _, i := range lr.Perm(hi - lo) {
							c.StoreInt(sc, obj, uint32(8*(lo+i)), int64(100+lo+i))
						}
						return 0
					})
				}
				f1 := mk(0, slots/2, 1+rng.Intn(3), 21)
				f2 := mk(slots/2, slots, 1+rng.Intn(3), 22)
				f1.Touch(th)
				f2.Touch(th)
				for i := 0; i < slots; i++ {
					if v := th.LoadInt(sc, obj, uint32(8*i)); v != int64(100+i) {
						t.Fatalf("slot %d = %d; stale under %v", i, v, scheme)
					}
				}
			})
		})
	}
}

// TestSchedulerStressQuick drives many random thread interleavings through
// the scheduler, checking work conservation.
func TestSchedulerStressQuick(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		const procs = 4
		r := New(Config{Procs: procs, HeapBytesPerProc: 1 << 20})
		var want int64
		var mu sync.Mutex
		r.Run(0, func(th *Thread) {
			var futs []*Future[int]
			n := 5 + rng.Intn(20)
			for i := 0; i < n; i++ {
				w := int64(10 + rng.Intn(500))
				p := rng.Intn(procs)
				mu.Lock()
				want += w
				mu.Unlock()
				futs = append(futs, Spawn(th, func(c *Thread) int {
					c.MigrateTo(p)
					c.Work(w)
					return 0
				}))
			}
			for _, f := range futs {
				f.Touch(th)
			}
		})
		if busy := r.M.TotalBusy(); busy < want {
			t.Fatalf("trial %d: busy %d < charged work %d", trial, busy, want)
		}
	}
}

// TestCostModelAccessors pins the helper arithmetic.
func TestCostModelAccessors(t *testing.T) {
	c := machine.DefaultCost()
	if c.MissTotal() != c.MissRequest+c.MissService+c.MissReply {
		t.Fatal("MissTotal wrong")
	}
	if c.MigrateTotal() != c.MigrateSend+c.MigrateNet+c.MigrateRecv {
		t.Fatal("MigrateTotal wrong")
	}
}
