package rt

import (
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/gaddr"
	"repro/internal/trace"
)

// cacheAccess resolves a remote reference through the software cache,
// running the bilateral stale check and the line fetch as needed. A
// reference counts as one miss if it pays any protocol round trip —
// a line fetch and/or a timestamp check (this is the quantity behind
// Table 3's "% of Remote references that miss").
//
// The resident-line hit — by far the dominant outcome — takes the
// allocation-free fast path: one hash-chain walk (cache.Hit), the hit
// counter, and the trace emit. Everything else falls back to the full
// probe, which re-derives the same state and handles page allocation,
// staleness and the fetch.
func (t *Thread) cacheAccess(s *Site, a gaddr.GP) cacheRef {
	c := t.rt.Caches[t.loc]
	tr := t.rt.M.Tracer
	start := t.now
	t.chargeHere(t.rt.M.Cost.CacheHit)
	if e, ok := c.Hit(a); ok {
		t.rt.mCacheHits.Inc()
		if tr != nil {
			tr.Emit(trace.Event{
				Kind: trace.EvCacheHit, T: start,
				P: int16(t.loc), Tid: t.tid(), Site: s.traceID,
				Page: uint32(gaddr.PageOf(a)), Line: int16(gaddr.LineOf(a)),
			})
		}
		return cacheRef{e: e, pageOff: a.Off() % gaddr.PageBytes}
	}
	e, pageNew, lineValid := c.Probe(a)
	if pageNew {
		t.rt.M.Stats.PagesCached.Add(1)
	}
	missed := false
	if t.rt.Coh.Kind() == coherence.Bilateral {
		if _, stale := c.LineState(e, gaddr.LineOf(a)); stale {
			t0 := t.now
			t.now = t.rt.Coh.StaleCheck(e, t.loc, t.now)
			missed = true
			if tr != nil {
				tr.Emit(trace.Event{
					Kind: trace.EvStampCheck, T: t0, Dur: t.now - t0,
					P: int16(t.loc), Tid: t.tid(), Site: s.traceID, Line: -1,
					Page: uint32(gaddr.PageOf(a)),
				})
			}
			lineValid, _ = c.LineState(e, gaddr.LineOf(a))
		}
	}
	if !lineValid {
		missed = true
		t.fetchLine(c, e, a)
	}
	if missed {
		t.rt.M.Stats.Misses.Add(1)
		t.rt.mMissLat.Observe(t.now - start)
	} else {
		t.rt.mCacheHits.Inc()
	}
	if tr != nil {
		ev := trace.Event{
			Kind: trace.EvCacheHit, T: start,
			P: int16(t.loc), Tid: t.tid(), Site: s.traceID,
			Page: uint32(gaddr.PageOf(a)), Line: int16(gaddr.LineOf(a)),
		}
		if missed {
			ev.Kind = trace.EvCacheMiss
			ev.Dur = t.now - start
		}
		tr.Emit(ev)
	}
	return cacheRef{e: e, pageOff: a.Off() % gaddr.PageBytes}
}

// fetchLine transfers the 64-byte line containing a from its home into the
// local cache: request latency, service occupying the home, reply latency.
func (t *Thread) fetchLine(c *cache.Cache, e *cache.Entry, a gaddr.GP) {
	cost := t.rt.M.Cost
	home := t.rt.M.Procs[a.Proc()]
	line := gaddr.LineOf(a)
	start := t.now
	t.now += cost.MissRequest
	t.now = home.Occupy(t.now, cost.MissService)
	var buf [gaddr.WordsPerLine]uint64
	lineOff := a.Off() &^ uint32(gaddr.LineBytes-1)
	home.Heap.CopyLineOut(lineOff, buf[:])
	t.now += cost.MissReply
	c.InstallLine(e, line, buf[:])
	t.rt.Coh.RegisterSharer(e.Page, t.loc)
	t.rt.M.Stats.LineFetches.Add(1)
	t.rt.mLineFills.Inc()
	if tr := t.rt.M.Tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.EvLineFetch, T: start, Dur: t.now - start,
			P: int16(t.loc), Tid: t.tid(), Site: -1, Line: int16(line),
			Page: uint32(e.Page), Arg: int64(a.Proc()),
		})
	}
}
