package rt

import (
	"strings"
	"testing"

	"repro/internal/gaddr"
)

// Sites register themselves with the runtime on first use, and two
// distinct Site values sharing one name are detected instead of silently
// merging their per-site statistics.
func TestSiteRegistrationAndDuplicates(t *testing.T) {
	r := New(Config{Procs: 2})
	sa := &Site{Name: "reg.a", Mech: Cache}
	sb := &Site{Name: "reg.b", Mech: Migrate}
	// The clashing name is assembled at run time: oldenvet's static
	// duplicate check only sees constant names, and this test exercises
	// precisely the dynamic case it cannot — the runtime-side detector.
	sbClash := &Site{Name: strings.Repeat("reg.b", 1), Mech: Cache}
	r.Run(0, func(th *Thread) {
		g := th.Alloc(1, 16)
		th.StoreInt(sa, g, 0, 1)
		th.LoadInt(sb, g, 0)
		th.LoadInt(sb, g, 0)
		th.LoadInt(sbClash, g, 0)
	})

	stats := r.SiteStats()
	if len(stats) != 2 {
		t.Fatalf("SiteStats: %d entries; want 2 (reg.a, reg.b)", len(stats))
	}
	if stats[0].Name != "reg.a" || stats[1].Name != "reg.b" {
		t.Fatalf("SiteStats order = %q, %q; want sorted by name", stats[0].Name, stats[1].Name)
	}
	dups := r.DuplicateSites()
	if len(dups) != 1 || dups["reg.b"] != 1 {
		t.Fatalf("DuplicateSites = %v; want reg.b counted once", dups)
	}
}

// Reusing one Site value across runtimes (the benchmark-suite pattern:
// fresh runtime per run, site rebuilt per run or shared) must not count as
// a duplicate anywhere.
func TestSiteReuseAcrossRuntimes(t *testing.T) {
	s := &Site{Name: "reuse.s", Mech: Cache}
	for i := 0; i < 2; i++ {
		r := New(Config{Procs: 1})
		r.Run(0, func(th *Thread) {
			g := th.Alloc(0, 8)
			th.StoreInt(s, g, 0, int64(i))
		})
		if d := r.DuplicateSites(); len(d) != 0 {
			t.Fatalf("run %d: DuplicateSites = %v; want none", i, d)
		}
		if st := r.SiteStats(); len(st) != 1 || st[0].Name != "reuse.s" {
			t.Fatalf("run %d: SiteStats = %v", i, st)
		}
	}
}

func TestAllocAtHome(t *testing.T) {
	r := New(Config{Procs: 4})
	s := &Site{Name: "home.s", Mech: Cache}
	r.Run(0, func(th *Thread) {
		g := th.Alloc(3, 16)
		n := th.AllocAtHome(g, 16)
		if n.Proc() != g.Proc() {
			t.Errorf("AllocAtHome placed on %d; want %d", n.Proc(), g.Proc())
		}
		th.StoreInt(s, n, 0, 7)
		if got := th.LoadInt(s, n, 0); got != 7 {
			t.Errorf("load = %d; want 7", got)
		}
	})
}

func TestAllocAtHomeNilPanics(t *testing.T) {
	r := New(Config{Procs: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("AllocAtHome(nil) must panic")
		}
	}()
	r.Run(0, func(th *Thread) { th.AllocAtHome(gaddr.Nil, 8) })
}

func TestFieldPtrAndRawHelpers(t *testing.T) {
	r := New(Config{Procs: 2})
	g := r.RawAlloc(1, 32)
	if g.IsNil() {
		t.Fatal("RawAlloc returned nil")
	}
	elem := FieldPtr(g, 24)
	if elem.Proc() != g.Proc() || elem.Off() != g.Off()+24 {
		t.Fatalf("FieldPtr(g,24) = %v; want interior pointer on same proc", elem)
	}
	r.RawStore(g, 24, 99)
	if v := r.RawLoad(elem, 0); v != 99 {
		t.Fatalf("RawLoad via interior pointer = %d; want 99", v)
	}
	r.RawStorePtr(g, 0, elem)
	if p := r.RawLoadPtr(g, 0); p != elem {
		t.Fatalf("RawLoadPtr = %v; want %v", p, elem)
	}
}
