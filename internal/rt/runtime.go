// Package rt is the Olden runtime: it executes logical Olden threads on the
// simulated machine, satisfying remote heap references by computation
// migration or software caching (paper §3), implementing futures with lazy
// task creation economics (§2), and invoking the coherence engine at every
// migration send/receive (Appendix A).
package rt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Mechanism says how a dereference site satisfies remote references.
type Mechanism int

const (
	// Migrate moves the thread to the data (registers + PC + current
	// stack frame).
	Migrate Mechanism = iota
	// Cache brings the data to the thread through the software cache.
	Cache
)

// String names the mechanism.
func (m Mechanism) String() string {
	if m == Migrate {
		return "migrate"
	}
	return "cache"
}

// Mode optionally overrides every site's mechanism, machine-wide. The
// paper's Table 2 compares the heuristic's choices against migrate-only.
type Mode int

const (
	// Heuristic uses each site's own mechanism (as the compiler chose).
	Heuristic Mode = iota
	// MigrateOnly forces computation migration everywhere.
	MigrateOnly
	// CacheOnly forces software caching everywhere.
	CacheOnly
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case MigrateOnly:
		return "migrate-only"
	case CacheOnly:
		return "cache-only"
	}
	return "heuristic"
}

// Modes lists every mechanism-override mode in definition order — the
// enumeration the CLIs and the serving layer share.
func Modes() []Mode { return []Mode{Heuristic, MigrateOnly, CacheOnly} }

// ParseMode maps a mode name (as printed by Mode.String) back to its Mode.
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes() {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("rt: unknown mode %q (want heuristic, migrate-only or cache-only)", s)
}

// Site is one pointer-dereference site in the "compiled" program, tagged
// with the mechanism the compile-time heuristic selected for it. Sites
// accumulate per-site statistics, the view a profiler of the real system
// would give: how often the site ran, how often it went remote, and how
// many migrations it triggered.
type Site struct {
	Name string
	Mech Mechanism

	reads      atomic.Int64
	writes     atomic.Int64
	remote     atomic.Int64
	migrations atomic.Int64

	// reg is the runtime this site was last registered with. It is only
	// touched by the virtual-time-active thread (deref starts with a
	// sync), so no lock is needed — the scheduler's hand-off orders all
	// accesses.
	reg *Runtime
	// traceID is the site's interned id in the runtime's trace recorder
	// (-1 when tracing is off). Assigned at registration, under the same
	// hand-off ordering as reg.
	traceID int32
}

// SiteStats is a point-in-time copy of a site's counters.
type SiteStats struct {
	Name       string
	Mech       Mechanism
	Reads      int64
	Writes     int64
	Remote     int64
	Migrations int64
}

// Stats snapshots the site's counters.
func (s *Site) Stats() SiteStats {
	return SiteStats{
		Name:       s.Name,
		Mech:       s.Mech,
		Reads:      s.reads.Load(),
		Writes:     s.writes.Load(),
		Remote:     s.remote.Load(),
		Migrations: s.migrations.Load(),
	}
}

// Config describes a runtime instance.
type Config struct {
	// Procs is the simulated machine size.
	Procs int
	// Scheme selects the coherence scheme (default: local knowledge).
	Scheme coherence.Kind
	// Mode optionally overrides site mechanisms (default: heuristic).
	Mode Mode
	// NoOverhead disables the charges for pointer tests, cache lookups
	// and future bookkeeping: the "true sequential implementation"
	// baseline the paper divides by is the P=1 run with NoOverhead set.
	NoOverhead bool
	// HeapBytesPerProc sizes heap sections (0 ⇒ machine default).
	HeapBytesPerProc uint32
	// Cost overrides the cycle cost model (zero value ⇒ default).
	Cost machine.Cost
	// Trace, when non-nil, records every simulation event (migrations,
	// cache traffic, coherence protocol actions, thread lifecycle) into
	// the given recorder. Nil — the default — disables recording; the
	// cost model and all statistics are unaffected either way.
	Trace *trace.Recorder
	// Sched selects the scheduler implementation (default: the
	// virtual-time event loop; machine.SchedChannel keeps the original
	// channel-handoff scheduler for differential testing, as does the
	// OLDEN_SCHED=channel environment flag).
	Sched machine.SchedKind
	// Metrics, when non-nil, is a registry the runtime binds the
	// machine's statistics into and registers its own counters and
	// latency histograms with (cache hits, miss and migration transit
	// distributions, per-processor cache occupancy). Nil — the default —
	// disables registry recording; simulated cycles are identical either
	// way, since registering and updating metrics charges no simulated
	// work.
	Metrics *metrics.Registry
}

// Runtime binds a machine, its per-processor software caches, and a
// coherence engine.
type Runtime struct {
	M      *machine.Machine
	Caches []*cache.Cache
	Coh    *coherence.Engine
	Mode   Mode
	// Sched serializes all threads in virtual-time order, making every
	// run deterministic.
	Sched machine.Scheduler
	// Overhead is false for the sequential baseline.
	Overhead bool

	// dirty holds each processor's write-tracking state (Appendix A
	// tracks writes per processor: "a vector of dirty bits for each
	// shared page"); a migration leaving the processor releases it.
	// Only the virtual-time-active thread touches these, so no lock is
	// needed — the scheduler's hand-off orders all accesses.
	dirty []coherence.DirtySet

	// sites indexes every Site that has executed on this runtime by
	// name; dups counts extra registrations of an already-taken name by
	// a *distinct* Site value. Two sites sharing a name would silently
	// merge in per-site statistics (Table 3), so the collision is
	// recorded and exposed instead. Like dirty, these are only touched
	// by the virtual-time-active thread.
	sites map[string]*Site
	dups  map[string]int

	// Registry-backed meters beyond the machine's aggregate statistics.
	// All handles are nil when Config.Metrics was nil (the nil-safe
	// disabled state).
	mCacheHits  *metrics.Counter
	mLineFills  *metrics.Counter
	mMissLat    *metrics.Histogram
	mMigLat     *metrics.Histogram
	mReturnLat  *metrics.Histogram
	mTouchBlock *metrics.Histogram

	// buildDigest and buildAccess snapshot the build phase's trace just
	// before ResetForKernel discards it, so the phase keeps a durable
	// identity (the cacheability certificates in analysis/effects are
	// validated against these per-phase digests, not only the kernel's).
	// Only the virtual-time-active thread calls ResetForKernel, so the
	// same hand-off ordering covers them.
	buildDigest trace.Digest
	buildAccess trace.Digest
	buildPhases int
	// buildHeapFP fingerprints the heap image at the ResetForKernel
	// boundary. Raw-API builds emit no trace events, so the heap
	// fingerprint — not the (empty) build trace — is the content
	// identity of the build phase.
	buildHeapFP uint64
	buildHeapOK bool

	live sync.WaitGroup // outstanding future bodies
}

// New builds a runtime and its machine.
func New(cfg Config) *Runtime {
	m := machine.New(machine.Config{
		Procs:            cfg.Procs,
		HeapBytesPerProc: cfg.HeapBytesPerProc,
		Cost:             cfg.Cost,
	})
	m.Tracer = cfg.Trace
	m.Metrics = cfg.Metrics
	caches := make([]*cache.Cache, cfg.Procs)
	for i := range caches {
		caches[i] = cache.New()
	}
	if reg := cfg.Metrics; reg != nil {
		m.Stats.Bind(reg)
		m.BindProcs(reg)
		for i, c := range caches {
			c := c
			reg.RegisterFunc("olden_cache_pages_allocated", metrics.KindCounter,
				c.PagesAllocated, metrics.L("proc", fmt.Sprint(i)))
		}
	}
	dirty := make([]coherence.DirtySet, cfg.Procs)
	for i := range dirty {
		dirty[i] = coherence.DirtySet{}
	}
	sched := machine.NewSchedulerOf(cfg.Sched)
	sched.SetTracer(cfg.Trace)
	return &Runtime{
		M:        m,
		Caches:   caches,
		Coh:      coherence.New(cfg.Scheme, m, caches),
		Mode:     cfg.Mode,
		Sched:    sched,
		Overhead: !cfg.NoOverhead,
		dirty:    dirty,
		sites:    map[string]*Site{},
		dups:     map[string]int{},

		mCacheHits:  cfg.Metrics.Counter("olden_cache_hits_total"),
		mLineFills:  cfg.Metrics.Counter("olden_line_fills_total"),
		mMissLat:    cfg.Metrics.Histogram("olden_miss_latency_cycles"),
		mMigLat:     cfg.Metrics.Histogram("olden_migration_transit_cycles", metrics.L("kind", "forward")),
		mReturnLat:  cfg.Metrics.Histogram("olden_migration_transit_cycles", metrics.L("kind", "return")),
		mTouchBlock: cfg.Metrics.Histogram("olden_touch_blocked_cycles"),
	}
}

// Metrics returns the runtime's metrics registry, or nil when registry
// recording is off.
func (r *Runtime) Metrics() *metrics.Registry { return r.M.Metrics }

// Tracer returns the runtime's trace recorder, or nil when tracing is off.
func (r *Runtime) Tracer() *trace.Recorder { return r.M.Tracer }

// registerSite indexes a site by name on first use with this runtime,
// recording name collisions between distinct Site values.
func (r *Runtime) registerSite(s *Site) {
	prev, ok := r.sites[s.Name]
	switch {
	case !ok:
		r.sites[s.Name] = s
	case prev != s:
		r.dups[s.Name]++
	}
}

// SiteStats snapshots every site that has executed on this runtime,
// sorted by name — the per-site view behind Table 3's statistics.
func (r *Runtime) SiteStats() []SiteStats {
	names := make([]string, 0, len(r.sites))
	for n := range r.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SiteStats, 0, len(names))
	for _, n := range names {
		out = append(out, r.sites[n].Stats())
	}
	return out
}

// DuplicateSites reports, per site name, how many *distinct* Site values
// beyond the first used that name on this runtime. A non-empty result
// means per-site statistics under that name silently merged counters from
// unrelated dereference sites.
func (r *Runtime) DuplicateSites() map[string]int {
	out := make(map[string]int, len(r.dups))
	for n, c := range r.dups {
		out[n] = c
	}
	return out
}

// P returns the machine size.
func (r *Runtime) P() int { return r.M.P() }

// Run executes f as the root Olden thread on processor start, waits for
// every spawned future to finish, and returns the simulated makespan. It is
// the entry point of an "Olden program"; a Runtime runs one program at a
// time (phased benchmarks call Run once per phase).
func (r *Runtime) Run(start int, f func(t *Thread)) int64 {
	if start < 0 || start >= r.P() {
		panic(fmt.Sprintf("rt: start processor %d out of range", start))
	}
	t := &Thread{
		rt:     r,
		loc:    start,
		frames: []uint64{0},
	}
	t.se = r.Sched.Register(0)
	// Main runs the root body under the scheduler. Under the event loop
	// the calling goroutine becomes the dispatcher and Main returns only
	// when every thread (futures included) has exited; under the channel
	// scheduler futures run on their own goroutines and live.Wait picks
	// up the stragglers.
	r.Sched.Main(t.se, func() {
		f(t)
		t.Finish()
		r.Sched.Exit(t.se)
	})
	r.live.Wait()
	return r.M.Makespan()
}

// ResetForKernel clears clocks, statistics and cache contents so the kernel
// phase of a benchmark is timed on its own, as the paper does for the
// non-whole-program rows of Table 2 ("We report kernel times only ... to
// avoid having their data structure building phases skew the results").
// Heap contents survive.
func (r *Runtime) ResetForKernel() {
	// Fingerprint the heap image at the phase boundary: raw-API builds
	// bypass the tracer, so this — not the build trace — is the durable
	// content identity of what the build produced.
	r.buildHeapFP = r.HeapFingerprint()
	r.buildHeapOK = true
	r.M.ResetClocks()
	r.M.Stats.Reset()
	for _, c := range r.Caches {
		c.Clear()
	}
	for i := range r.dirty {
		r.dirty[i] = coherence.DirtySet{}
	}
	// The kernel phase is traced on its own: drop build-phase events but
	// keep interned site names (sites persist across phases). The phase's
	// digests are stashed first — discarding the events must not discard
	// the phase's identity.
	if r.M.Tracer != nil {
		r.buildDigest = r.M.Tracer.Digest()
		r.buildAccess = r.M.Tracer.AccessDigest()
		r.buildPhases++
		r.M.Tracer.Reset()
	}
	// The metrics registry follows the same epoch: a kernel-timed record
	// must not mix build-phase counts into its dump. (Reset is nil-safe.)
	r.M.Metrics.Reset()
}

// BuildPhaseDigest returns the trace digests of the most recent phase
// retired by ResetForKernel: the full emission-order digest and the
// scheme-invariant access projection (trace.AccessDigest). ok is false
// when tracing was off or ResetForKernel has not run.
func (r *Runtime) BuildPhaseDigest() (full, access trace.Digest, ok bool) {
	return r.buildDigest, r.buildAccess, r.buildPhases > 0
}

// BuildHeapFingerprint returns the heap fingerprint captured at the most
// recent ResetForKernel boundary. ok is false if no phase boundary has
// been crossed. Two configurations whose static phase plans share a
// build-chain digest must agree on this fingerprint whatever the
// coherence scheme — the phase-trace check and the server's phase cache
// both rest on that obligation.
func (r *Runtime) BuildHeapFingerprint() (uint64, bool) {
	return r.buildHeapFP, r.buildHeapOK
}

// SnapshotHeaps captures every processor's heap section. Together with
// the build state a phased benchmark returns, the images are the
// machine-level half of a reusable phase boundary.
func (r *Runtime) SnapshotHeaps() []mem.HeapImage {
	imgs := make([]mem.HeapImage, 0, len(r.M.Procs))
	for _, p := range r.M.Procs {
		imgs = append(imgs, p.Heap.Snapshot())
	}
	return imgs
}

// RestoreHeaps overwrites the processors' heap sections with previously
// captured images. The machine must have the same number of processors
// the snapshot was taken on.
func (r *Runtime) RestoreHeaps(imgs []mem.HeapImage) {
	if len(imgs) != len(r.M.Procs) {
		panic(fmt.Sprintf("rt: restoring %d heap images onto %d processors", len(imgs), len(r.M.Procs)))
	}
	for i, p := range r.M.Procs {
		p.Heap.Restore(imgs[i])
	}
}

// HeapFingerprint hashes the allocated contents of every processor's heap
// section into one order-sensitive digest. Two runs that built and mutated
// the same logical data structure — whatever coherence scheme or machine
// size carried the writes — must agree on it; the differential tests use
// this to prove the three schemes are observationally equivalent.
func (r *Runtime) HeapFingerprint() uint64 {
	var h uint64 = 14695981039346656037
	for _, p := range r.M.Procs {
		h = p.Heap.FoldFingerprint(h)
	}
	return h
}

// PagesCachedTotal sums the cumulative page allocations over all caches
// (Table 3's "Total Pages Cached").
func (r *Runtime) PagesCachedTotal() int64 {
	var n int64
	for _, c := range r.Caches {
		n += c.PagesAllocated()
	}
	return n
}
