package rt

import (
	"fmt"
	"testing"

	"repro/internal/coherence"
	"repro/internal/gaddr"
)

// Figure 2 of the paper: a list of N elements evenly divided among P
// processors. With a blocked layout, migration needs P−1 migrations while
// caching needs N(P−1)/P remote accesses; with a cyclic layout, migration
// needs N−1 migrations. These closed forms are the motivating example for
// the selection heuristic, and the runtime must reproduce the counts
// exactly.

const listNodeBytes = 16 // val (8) + next (8)

// buildList allocates an N-element list whose i-th node lives on
// procOf(i), linking node i to node i+1, and returns the head.
func buildList(t *Thread, n int, procOf func(i int) int) gaddr.GP {
	nodes := make([]gaddr.GP, n)
	for i := 0; i < n; i++ {
		nodes[i] = t.Alloc(procOf(i), listNodeBytes)
	}
	s := &Site{Name: "list.build", Mech: Cache}
	for i := 0; i < n; i++ {
		t.StoreInt(s, nodes[i], 0, int64(i))
		next := gaddr.Nil
		if i+1 < n {
			next = nodes[i+1]
		}
		t.StorePtr(s, nodes[i], 8, next)
	}
	return nodes[0]
}

func traverse(t *Thread, head gaddr.GP, s *Site) int64 {
	var sum int64
	for g := head; !g.IsNil(); g = t.LoadPtr(s, g, 8) {
		sum += t.LoadInt(s, g, 0)
	}
	return sum
}

func TestFigure2Counts(t *testing.T) {
	const n, p = 64, 4
	blocked := func(i int) int { return i * p / n }
	cyclic := func(i int) int { return i % p }
	wantSum := int64(n * (n - 1) / 2)

	cases := []struct {
		name           string
		layout         func(int) int
		mech           Mechanism
		wantMigrations int64
		wantRemote     int64
	}{
		{"blocked/migrate", blocked, Migrate, p - 1, 0},
		{"cyclic/migrate", cyclic, Migrate, n - 1, 0},
		{"blocked/cache", blocked, Cache, 0, 2 * n * (p - 1) / p}, // val+next per remote node
		{"cyclic/cache", cyclic, Cache, 0, 2 * n * (p - 1) / p},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newRT(p, coherence.LocalKnowledge)
			r.Run(0, func(th *Thread) {
				head := buildList(th, n, c.layout)
				r.ResetForKernel()
				site := &Site{Name: "list.walk", Mech: c.mech}
				if got := traverse(th, head, site); got != wantSum {
					t.Errorf("sum = %d; want %d", got, wantSum)
				}
			})
			s := r.M.Stats.Snapshot()
			if s.Migrations != c.wantMigrations {
				t.Errorf("migrations = %d; want %d", s.Migrations, c.wantMigrations)
			}
			if got := s.RemoteReads + s.RemoteWrites; got != c.wantRemote {
				t.Errorf("remote refs = %d; want %d", got, c.wantRemote)
			}
		})
	}
}

func TestFigure2CrossoverCost(t *testing.T) {
	// The heuristic's rationale: for a blocked layout migration is
	// cheaper; for a cyclic layout caching is cheaper.
	const n, p = 256, 8
	cost := func(layout func(int) int, mech Mechanism) int64 {
		r := newRT(p, coherence.LocalKnowledge)
		var mk int64
		r.Run(0, func(th *Thread) {
			head := buildList(th, n, layout)
			r.ResetForKernel()
			traverse(th, head, &Site{Name: "fig2.walk", Mech: mech})
		})
		mk = r.M.Makespan()
		return mk
	}
	blocked := func(i int) int { return i * p / n }
	cyclic := func(i int) int { return i % p }
	bm, bc := cost(blocked, Migrate), cost(blocked, Cache)
	cm, cc := cost(cyclic, Migrate), cost(cyclic, Cache)
	if bm >= bc {
		t.Errorf("blocked layout: migrate %d should beat cache %d", bm, bc)
	}
	if cc >= cm {
		t.Errorf("cyclic layout: cache %d should beat migrate %d", cc, cm)
	}
}

func TestDeterminism(t *testing.T) {
	// The virtual-time scheduler makes whole runs reproducible: the same
	// program yields the same makespan, bit for bit, every time.
	run := func() (int64, string) {
		r := newRT(4, coherence.LocalKnowledge)
		mk := r.Run(0, func(th *Thread) {
			var futs []*Future[int64]
			for p := 0; p < 4; p++ {
				p := p
				futs = append(futs, Spawn(th, func(c *Thread) int64 {
					c.MigrateTo(p)
					c.Work(int64(1000 * (p + 1)))
					g := c.Alloc(p, 16)
					c.StoreInt(siteCache, g, 0, int64(p))
					return c.LoadInt(siteCache, g, 0)
				}))
			}
			for _, f := range futs {
				f.Touch(th)
			}
		})
		return mk, fmt.Sprintf("%+v", r.M.Stats.Snapshot())
	}
	mk1, st1 := run()
	for i := 0; i < 5; i++ {
		mk2, st2 := run()
		if mk1 != mk2 || st1 != st2 {
			t.Fatalf("nondeterministic run %d: makespan %d vs %d\n%s\nvs\n%s", i, mk1, mk2, st1, st2)
		}
	}
}
