package rt

import (
	"sync"

	"repro/internal/machine"
	"repro/internal/trace"
)

// Future is the result of a futurecall (paper §2): work that may proceed in
// parallel with its parent context. Olden implements futures with lazy task
// creation — the continuation only becomes a real thread when the body
// migrates away and the processor would otherwise sit idle.
//
// In this runtime the body runs as its own logical thread under the
// virtual-time scheduler. Because the parent and the body charge the same
// processor until one of them migrates, the virtual-time serialization
// reproduces the lazy-task-creation economics: if the body never migrates,
// no other processor ever does the continuation's work and the schedule
// collapses to the sequential one plus the small futurecall overhead.
type Future[T any] struct {
	mu      sync.Mutex
	done    bool
	v       T
	when    int64 // body completion time
	waiters []*machine.SchedEntry
}

// Spawn issues a futurecall: body runs logically in parallel with the
// caller, starting on the caller's processor at the caller's time. When the
// body completes away from its spawn processor, a return-stub migration
// brings its context back, exactly like a procedure return.
func Spawn[T any](t *Thread, body func(child *Thread) T) *Future[T] {
	t.sync()
	t.rt.M.Stats.Futures.Add(1)
	t.chargeHere(t.rt.M.Cost.FutureSpawn)
	child := &Thread{
		rt:      t.rt,
		loc:     t.loc,
		now:     t.now,
		arrived: t.now,
		frames:  []uint64{0},
	}
	child.se = t.rt.Sched.Register(child.now)
	if tr := t.rt.M.Tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.EvFutureSpawn, T: t.now,
			P: int16(t.loc), Tid: t.tid(), Site: -1, Line: -1,
			Arg: int64(child.tid()),
		})
	}
	f := &Future[T]{}
	t.rt.live.Add(1)
	t.rt.Sched.Go(child.se, func() {
		defer t.rt.live.Done()
		// Call returns the child to its spawn processor via the
		// return stub if the body migrated.
		v := Call(child, func() T { return body(child) })
		child.Finish()
		f.mu.Lock()
		f.done, f.v, f.when = true, v, child.now
		ws := f.waiters
		f.waiters = nil
		f.mu.Unlock()
		// Wake touchers before leaving the scheduler so hand-off
		// points are deterministic.
		for _, w := range ws {
			t.rt.Sched.Resume(w, child.now)
		}
		t.rt.Sched.Exit(child.se)
	})
	return f
}

// Touch blocks until the future's value is available and synchronizes the
// toucher's clock with the body's completion time.
func (f *Future[T]) Touch(t *Thread) T {
	t.sync()
	start := t.now
	f.mu.Lock()
	if !f.done {
		f.waiters = append(f.waiters, t.se)
		f.mu.Unlock()
		t.rt.Sched.Park(t.se)
		f.mu.Lock()
	}
	v, when := f.v, f.when
	f.mu.Unlock()
	if when > t.now {
		t.now = when
	}
	if tr := t.rt.M.Tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.EvFutureTouch, T: start, Dur: t.now - start,
			P: int16(t.loc), Tid: t.tid(), Site: -1, Line: -1,
		})
	}
	t.rt.M.Stats.Touches.Add(1)
	t.rt.mTouchBlock.Observe(t.now - start)
	t.chargeHere(t.rt.M.Cost.Touch)
	return v
}
