package rt

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/gaddr"
	"repro/internal/trace"
)

var (
	siteMig   = &Site{Name: "test.mig", Mech: Migrate}
	siteCache = &Site{Name: "test.cache", Mech: Cache}
)

func newRT(procs int, scheme coherence.Kind) *Runtime {
	return New(Config{Procs: procs, Scheme: scheme, HeapBytesPerProc: 1 << 22})
}

func TestLocalLoadStore(t *testing.T) {
	r := newRT(2, coherence.LocalKnowledge)
	r.Run(0, func(th *Thread) {
		g := th.Alloc(0, 32)
		th.StoreInt(siteMig, g, 8, -42)
		if v := th.LoadInt(siteMig, g, 8); v != -42 {
			t.Errorf("local int = %d", v)
		}
		th.StoreFloat(siteCache, g, 16, 3.25)
		if v := th.LoadFloat(siteCache, g, 16); v != 3.25 {
			t.Errorf("local float = %v", v)
		}
		th.StorePtr(siteCache, g, 24, g)
		if v := th.LoadPtr(siteCache, g, 24); v != g {
			t.Errorf("local ptr = %v", v)
		}
	})
	if r.M.Stats.Migrations.Load() != 0 {
		t.Fatal("local accesses must not migrate")
	}
}

func TestMigrationOnRemoteAccess(t *testing.T) {
	r := newRT(4, coherence.LocalKnowledge)
	r.Run(0, func(th *Thread) {
		g := th.Alloc(3, 16)
		th.StoreInt(siteMig, g, 0, 7)
		if th.Loc() != 3 {
			t.Errorf("thread at %d; migration should move it to 3", th.Loc())
		}
		if v := th.LoadInt(siteMig, g, 0); v != 7 {
			t.Errorf("after migration read = %d", v)
		}
	})
	s := r.M.Stats.Snapshot()
	if s.Migrations != 1 {
		t.Fatalf("migrations = %d; want 1 (second access is local)", s.Migrations)
	}
	if s.PtrTests != 2 {
		t.Fatalf("pointer tests = %d; want 2", s.PtrTests)
	}
}

func TestCachedRemoteReadAndWriteThrough(t *testing.T) {
	r := newRT(2, coherence.LocalKnowledge)
	r.Run(0, func(th *Thread) {
		g := th.Alloc(1, 64)
		// Seed home memory directly (build-phase store migrates? no:
		// use a cache-site store, which writes through).
		th.StoreInt(siteCache, g, 0, 5)
		if th.Loc() != 0 {
			t.Fatal("cached store must not move the thread")
		}
		if v := th.LoadInt(siteCache, g, 0); v != 5 {
			t.Errorf("read-your-write = %d", v)
		}
		// The home copy must also be current (write-through).
		if v := r.M.Procs[1].Heap.LoadWord(g.Off()); v != 5 {
			t.Errorf("home copy = %d", v)
		}
	})
	s := r.M.Stats.Snapshot()
	if s.Migrations != 0 {
		t.Fatal("caching must not migrate")
	}
	if s.CacheableWrites != 1 || s.CacheableReads != 1 {
		t.Fatalf("cacheable w/r = %d/%d", s.CacheableWrites, s.CacheableReads)
	}
	if s.RemoteWrites != 1 || s.RemoteReads != 1 {
		t.Fatalf("remote w/r = %d/%d", s.RemoteWrites, s.RemoteReads)
	}
	if s.Misses != 1 {
		t.Fatalf("misses = %d; write fetches the line, read hits", s.Misses)
	}
}

func TestCacheHitOnSecondRead(t *testing.T) {
	r := newRT(2, coherence.LocalKnowledge)
	r.Run(0, func(th *Thread) {
		g := th.Alloc(1, 8)
		th.LoadInt(siteCache, g, 0)
		before := r.M.Stats.Misses.Load()
		th.LoadInt(siteCache, g, 0)
		if r.M.Stats.Misses.Load() != before {
			t.Error("second read must hit")
		}
	})
}

func TestLocalSchemeInvalidatesOnMigration(t *testing.T) {
	r := newRT(3, coherence.LocalKnowledge)
	r.Run(0, func(th *Thread) {
		g := th.Alloc(1, 8)
		th.LoadInt(siteCache, g, 0) // miss, line cached at 0
		misses := r.M.Stats.Misses.Load()
		th.MigrateTo(2)
		th.MigrateTo(0) // receive at 0 flushes the whole cache
		th.LoadInt(siteCache, g, 0)
		if r.M.Stats.Misses.Load() != misses+1 {
			t.Error("read after migration receive must miss again")
		}
	})
	if r.M.Stats.FullFlushes.Load() == 0 {
		t.Fatal("local scheme must flush on migration receive")
	}
}

func TestCallReturnStub(t *testing.T) {
	r := newRT(4, coherence.LocalKnowledge)
	r.Run(0, func(th *Thread) {
		g := th.Alloc(2, 16)
		v := Call(th, func() int64 {
			th.StoreInt(siteMig, g, 0, 11) // migrates to 2
			return th.LoadInt(siteMig, g, 0)
		})
		if v != 11 {
			t.Errorf("call result = %d", v)
		}
		if th.Loc() != 0 {
			t.Errorf("thread at %d after return; want 0", th.Loc())
		}
	})
	s := r.M.Stats.Snapshot()
	if s.Migrations != 1 || s.Returns != 1 {
		t.Fatalf("migrations=%d returns=%d", s.Migrations, s.Returns)
	}
}

func TestReturnInvalidatesOnlyWrittenHomes(t *testing.T) {
	r := newRT(4, coherence.LocalKnowledge)
	r.Run(0, func(th *Thread) {
		a := th.Alloc(1, 8) // will be cached at 0, NOT written by the call
		b := th.Alloc(2, 8) // will be cached at 0 and written remotely
		th.LoadInt(siteCache, a, 0)
		th.LoadInt(siteCache, b, 0)
		CallVoid(th, func() {
			th.MigrateTo(3)
			th.StoreInt(siteCache, b, 0, 9) // writes processor 2's memory
		}) // return stub to 0: invalidate only lines homed on 2
		before := r.M.Stats.Misses.Load()
		th.LoadInt(siteCache, a, 0) // must still hit
		if got := r.M.Stats.Misses.Load(); got != before {
			t.Errorf("unwritten home was invalidated (misses %d→%d)", before, got)
		}
		if v := th.LoadInt(siteCache, b, 0); v != 9 {
			t.Errorf("read after return = %d; stale line survived", v)
		}
		if r.M.Stats.Misses.Load() != before+1 {
			t.Error("written home must be invalidated on return")
		}
	})
}

func TestModeOverrides(t *testing.T) {
	r := New(Config{Procs: 2, Mode: MigrateOnly, HeapBytesPerProc: 1 << 20})
	r.Run(0, func(th *Thread) {
		g := th.Alloc(1, 8)
		th.StoreInt(siteCache, g, 0, 1) // cache site, but mode forces migration
	})
	if r.M.Stats.Migrations.Load() != 1 {
		t.Fatal("migrate-only mode must migrate at cache sites")
	}

	r2 := New(Config{Procs: 2, Mode: CacheOnly, HeapBytesPerProc: 1 << 20})
	r2.Run(0, func(th *Thread) {
		g := th.Alloc(1, 8)
		th.StoreInt(siteMig, g, 0, 1)
		if th.Loc() != 0 {
			t.Error("cache-only mode must not migrate")
		}
	})
	if r2.M.Stats.Migrations.Load() != 0 {
		t.Fatal("cache-only mode migrated")
	}
}

func TestNoOverheadBaseline(t *testing.T) {
	r := New(Config{Procs: 1, NoOverhead: true, HeapBytesPerProc: 1 << 20})
	mk := r.Run(0, func(th *Thread) {
		g := th.Alloc(0, 8)
		th.StoreInt(siteMig, g, 0, 1)
		th.LoadInt(siteMig, g, 0)
		th.Work(100)
	})
	if mk != 100 {
		t.Fatalf("makespan = %d; only explicit Work should be charged", mk)
	}
}

func TestFutureParallelism(t *testing.T) {
	const procs = 4
	r := newRT(procs, coherence.LocalKnowledge)
	mk := r.Run(0, func(th *Thread) {
		var futs []*Future[int64]
		for p := 0; p < procs; p++ {
			p := p
			futs = append(futs, Spawn(th, func(c *Thread) int64 {
				c.MigrateTo(p)
				c.Work(10000)
				return int64(p)
			}))
		}
		var sum int64
		for _, f := range futs {
			sum += f.Touch(th)
		}
		if sum != 0+1+2+3 {
			t.Errorf("future results sum = %d", sum)
		}
	})
	// Four 10k-cycle bodies on four processors must overlap: makespan
	// well under the 40k of a serial schedule.
	if mk >= 30000 {
		t.Fatalf("makespan = %d; futures did not run in parallel", mk)
	}
	if r.M.Stats.Futures.Load() != procs || r.M.Stats.Touches.Load() != procs {
		t.Fatal("future/touch counts wrong")
	}
}

func TestFutureNoMigrationIsSerial(t *testing.T) {
	// A future whose body stays home serializes with its parent in
	// virtual time: lazy task creation means no parallelism without a
	// migration.
	r := newRT(2, coherence.LocalKnowledge)
	mk := r.Run(0, func(th *Thread) {
		f := Spawn(th, func(c *Thread) int64 { c.Work(5000); return 1 })
		th.Work(5000)
		f.Touch(th)
	})
	if mk < 10000 {
		t.Fatalf("makespan = %d; same-processor future must serialize", mk)
	}
}

func TestNilDereferencePanics(t *testing.T) {
	r := newRT(1, coherence.LocalKnowledge)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil dereference")
		}
	}()
	r.Run(0, func(th *Thread) {
		th.LoadInt(siteMig, gaddr.Nil, 0)
	})
}

func TestResetForKernel(t *testing.T) {
	r := newRT(2, coherence.LocalKnowledge)
	var g gaddr.GP
	r.Run(0, func(th *Thread) {
		g = th.Alloc(1, 8)
		th.StoreInt(siteCache, g, 0, 123)
		th.Work(500)
	})
	r.ResetForKernel()
	if r.M.Makespan() != 0 {
		t.Fatal("clocks not reset")
	}
	if s := r.M.Stats.Snapshot(); s.PtrTests != 0 || s.Misses != 0 {
		t.Fatal("stats not reset")
	}
	for _, c := range r.Caches {
		if c.Entries() != 0 {
			t.Fatal("caches not cleared")
		}
	}
	// Heap contents survive the reset.
	r.Run(0, func(th *Thread) {
		if v := th.LoadInt(siteCache, g, 0); v != 123 {
			t.Errorf("heap lost data across reset: %d", v)
		}
	})
}

// TestBuildPhaseDigestStash pins that ResetForKernel snapshots the build
// phase's trace digests before discarding its events: the phase keeps an
// identity the certificate-trace validation can compare across schemes.
func TestBuildPhaseDigestStash(t *testing.T) {
	run := func() *Runtime {
		r := New(Config{Procs: 2, Scheme: coherence.LocalKnowledge,
			HeapBytesPerProc: 1 << 22, Trace: trace.New(0)})
		r.Run(0, func(th *Thread) {
			g := th.Alloc(1, 16)
			th.StoreInt(siteCache, g, 0, 9)
			th.LoadInt(siteCache, g, 0)
		})
		return r
	}

	r := run()
	if _, _, ok := r.BuildPhaseDigest(); ok {
		t.Fatal("digest reported before any ResetForKernel")
	}
	r.ResetForKernel()
	full, access, ok := r.BuildPhaseDigest()
	if !ok {
		t.Fatal("digest missing after ResetForKernel")
	}
	if full.Events == 0 || access.Events == 0 {
		t.Fatalf("empty phase digests: full=%s access=%s", full, access)
	}
	if r.M.Tracer.Len() != 0 {
		t.Fatal("tracer events survived the reset")
	}

	// The stash must be reproducible: an identical run yields identical
	// phase digests.
	r2 := run()
	r2.ResetForKernel()
	full2, access2, _ := r2.BuildPhaseDigest()
	if full != full2 || access != access2 {
		t.Errorf("build-phase digests not reproducible:\n%s vs %s\n%s vs %s",
			full, full2, access, access2)
	}
}

func TestSiteStats(t *testing.T) {
	r := newRT(2, coherence.LocalKnowledge)
	sm := &Site{Name: "stats.m", Mech: Migrate}
	sc := &Site{Name: "stats.c", Mech: Cache}
	r.Run(0, func(th *Thread) {
		g := th.Alloc(1, 16)
		th.StoreInt(sm, g, 0, 1) // remote write, migrates
		th.MigrateTo(0)
		th.LoadInt(sc, g, 0) // remote cached read
		th.LoadInt(sc, g, 0) // hit, still remote
	})
	m := sm.Stats()
	if m.Writes != 1 || m.Remote != 1 || m.Migrations != 1 {
		t.Fatalf("migrate site stats: %+v", m)
	}
	c := sc.Stats()
	if c.Reads != 2 || c.Remote != 2 || c.Migrations != 0 {
		t.Fatalf("cache site stats: %+v", c)
	}
}
