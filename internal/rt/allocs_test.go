package rt

import (
	"testing"

	"repro/internal/trace"
)

// The per-access hot paths must not allocate: a simulated kernel performs
// millions of dereferences, and PR 8's wall-clock profile showed the
// heap-escaping cacheRef and the line-fetch buffer accounting for two
// thirds of all objects allocated. These tests pin the zero-alloc claims
// with testing.AllocsPerRun, run from inside the simulation thread so the
// measurements cover the scheduler fast path too.

// TestCacheHitPathZeroAlloc pins the resident-line cache hit with tracing
// disabled: locality test, scheduler sync, cache lookup and the word read
// — zero allocations per access.
func TestCacheHitPathZeroAlloc(t *testing.T) {
	r := New(Config{Procs: 2})
	g := r.M.Procs[1].Heap.Alloc(64)
	site := &Site{Name: "allocs.hit", Mech: Cache}
	r.Run(0, func(th *Thread) {
		th.LoadWord(site, g, 0) // fault the line in
		if avg := testing.AllocsPerRun(200, func() {
			th.LoadWord(site, g, 0)
		}); avg != 0 {
			t.Errorf("cache-hit load allocates %.1f objects per access; want 0", avg)
		}
		if avg := testing.AllocsPerRun(200, func() {
			th.StoreWord(site, g, 8, 42)
		}); avg != 0 {
			t.Errorf("cache-hit store allocates %.1f objects per access; want 0", avg)
		}
	})
}

// TestTracedCacheHitZeroAlloc pins the same path with tracing ENABLED on
// an explicitly sized recorder: the ring is preallocated, so emitting a
// hit event costs no allocation either (until the ring wraps, which also
// does not allocate).
func TestTracedCacheHitZeroAlloc(t *testing.T) {
	rec := trace.New(1 << 12)
	r := New(Config{Procs: 2, Trace: rec})
	g := r.M.Procs[1].Heap.Alloc(64)
	site := &Site{Name: "allocs.tracedhit", Mech: Cache}
	r.Run(0, func(th *Thread) {
		th.LoadWord(site, g, 0)
		if avg := testing.AllocsPerRun(200, func() {
			th.LoadWord(site, g, 0)
		}); avg != 0 {
			t.Errorf("traced cache-hit load allocates %.1f objects per access; want 0", avg)
		}
	})
}

// TestWorkZeroAlloc pins the plain compute path: chunked Work charges and
// their scheduler syncs allocate nothing.
func TestWorkZeroAlloc(t *testing.T) {
	r := New(Config{Procs: 2})
	r.Run(0, func(th *Thread) {
		if avg := testing.AllocsPerRun(200, func() {
			th.Work(1024)
		}); avg != 0 {
			t.Errorf("Work allocates %.1f objects per charge; want 0", avg)
		}
	})
}

// TestLocalDerefZeroAlloc pins the local-reference path (pointer test
// passes, no mechanism engaged) — the single hottest operation in every
// kernel.
func TestLocalDerefZeroAlloc(t *testing.T) {
	r := New(Config{Procs: 2})
	g := r.M.Procs[0].Heap.Alloc(64)
	site := &Site{Name: "allocs.local", Mech: Cache}
	r.Run(0, func(th *Thread) {
		th.LoadWord(site, g, 0)
		if avg := testing.AllocsPerRun(200, func() {
			th.LoadWord(site, g, 0)
		}); avg != 0 {
			t.Errorf("local load allocates %.1f objects per access; want 0", avg)
		}
	})
}
