package rt

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/coherence"
	"repro/internal/gaddr"
)

// TestReadAfterWriteAllSchemes drives a long random access string — allocs,
// reads and writes at randomly-mechanized sites, migrations — through every
// coherence scheme and mode, checking each read against a shadow model.
// This exercises line fetches, write-through, full flushes, sharer
// invalidations and timestamp checks on one thread, where sequential
// consistency degenerates to read-your-writes.
func TestReadAfterWriteAllSchemes(t *testing.T) {
	schemes := []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral}
	modes := []Mode{Heuristic, MigrateOnly, CacheOnly}
	for _, scheme := range schemes {
		for _, mode := range modes {
			name := fmt.Sprintf("%v/%v", scheme, mode)
			t.Run(name, func(t *testing.T) {
				const procs = 4
				r := New(Config{Procs: procs, Scheme: scheme, Mode: mode, HeapBytesPerProc: 1 << 22})
				rng := rand.New(rand.NewSource(7))
				shadow := map[gaddr.GP]uint64{}
				sites := []*Site{
					{Name: "prop.m", Mech: Migrate},
					{Name: "prop.c", Mech: Cache},
				}
				r.Run(0, func(th *Thread) {
					var objs []gaddr.GP
					for i := 0; i < 32; i++ {
						objs = append(objs, th.Alloc(rng.Intn(procs), 64))
					}
					for step := 0; step < 4000; step++ {
						g := objs[rng.Intn(len(objs))]
						off := uint32(rng.Intn(8)) * 8
						s := sites[rng.Intn(len(sites))]
						switch rng.Intn(5) {
						case 0: // write
							v := rng.Uint64()
							th.StoreWord(s, g, off, v)
							shadow[g.Add(off)] = v
						case 1: // explicit migration
							th.MigrateTo(rng.Intn(procs))
						default: // read
							got := th.LoadWord(s, g, off)
							want := shadow[g.Add(off)]
							if got != want {
								t.Fatalf("step %d: read %v+%d via %s = %#x; want %#x",
									step, g, off, s.Name, got, want)
							}
						}
					}
				})
			})
		}
	}
}

// TestParallelDisjointWrites checks the futures contract the paper relies
// on: concurrent threads touch disjoint data, and after the touches the
// parent observes every child's writes regardless of scheme.
func TestParallelDisjointWrites(t *testing.T) {
	for _, scheme := range []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral} {
		t.Run(scheme.String(), func(t *testing.T) {
			const procs = 8
			r := New(Config{Procs: procs, Scheme: scheme, HeapBytesPerProc: 1 << 20})
			r.Run(0, func(th *Thread) {
				objs := make([]gaddr.GP, procs)
				for p := range objs {
					objs[p] = th.Alloc(p, 32)
				}
				var futs []*Future[int]
				for p := 0; p < procs; p++ {
					p := p
					futs = append(futs, Spawn(th, func(c *Thread) int {
						// Each child migrates to its processor and
						// fills its object.
						for w := uint32(0); w < 4; w++ {
							c.StoreInt(siteMig, objs[p], w*8, int64(100*p)+int64(w))
						}
						return p
					}))
				}
				for _, f := range futs {
					f.Touch(th)
				}
				// Parent reads everything back through the cache.
				for p := 0; p < procs; p++ {
					for w := uint32(0); w < 4; w++ {
						got := th.LoadInt(siteCache, objs[p], w*8)
						if want := int64(100*p) + int64(w); got != want {
							t.Fatalf("obj %d word %d = %d; want %d", p, w, got, want)
						}
					}
				}
			})
		})
	}
}
