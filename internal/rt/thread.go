package rt

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/gaddr"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Thread is one logical Olden thread. It carries its own virtual clock and
// its current processor; work, message latencies and coherence events move
// the clock forward, and charging work on a processor serializes against
// every other thread on that processor in virtual time.
//
// A Thread is confined to a single goroutine; Spawn creates new threads for
// parallel work.
type Thread struct {
	rt  *Runtime
	se  *machine.SchedEntry
	loc int   // current processor
	now int64 // virtual clock

	// arrived is the clock at which the thread arrived at loc (spawn
	// time, or completion of its last migration); the trace layer emits
	// the [arrived, departure) span as a residency event.
	arrived int64

	// frames holds, per active rt.Call, the bitmask of processors whose
	// memories this thread wrote during the call — the refined
	// local-knowledge rule invalidates exactly those homes on return.
	frames []uint64
}

// tid is the thread's logical id in traces: its scheduler sequence number.
func (t *Thread) tid() int32 { return int32(t.se.Seq()) }

// Loc returns the processor the thread currently occupies.
func (t *Thread) Loc() int { return t.loc }

// Now returns the thread's virtual clock.
func (t *Thread) Now() int64 { return t.now }

// Runtime returns the runtime the thread executes on.
func (t *Thread) Runtime() *Runtime { return t.rt }

// workChunk bounds a single virtual-time occupation. Charging work in
// chunks lets concurrently-arriving threads interleave on a processor the
// way a real serial processor with preemption points would, instead of the
// first goroutine to reach the mutex monopolizing the resource for one huge
// charge.
const workChunk = 256

// Work charges cycles of local computation at the current processor.
func (t *Thread) Work(cycles int64) {
	for cycles > 0 {
		c := cycles
		if c > workChunk {
			c = workChunk
		}
		t.sync()
		t.now = t.rt.M.Procs[t.loc].Occupy(t.now, c)
		cycles -= c
	}
}

// sync blocks until this thread is the globally minimal-clock runnable
// thread; every simulation operation starts with a sync, which is what
// makes runs deterministic and virtual time causally consistent.
func (t *Thread) sync() { t.rt.Sched.Sync(t.se, t.now) }

// chargeHere charges overhead cycles locally if overhead accounting is on.
func (t *Thread) chargeHere(cycles int64) {
	if t.rt.Overhead && cycles > 0 {
		t.now = t.rt.M.Procs[t.loc].Occupy(t.now, cycles)
	}
}

// Alloc allocates nbytes on the named processor and returns its global
// pointer — the paper's ALLOC library routine. Allocation itself costs a
// few cycles of local work.
func (t *Thread) Alloc(proc int, nbytes uint32) gaddr.GP {
	if proc < 0 || proc >= t.rt.P() {
		panic(fmt.Sprintf("rt: Alloc on processor %d of %d", proc, t.rt.P()))
	}
	t.sync()
	t.chargeHere(4)
	return t.rt.M.Procs[proc].Heap.Alloc(nbytes)
}

// AllocAtHome allocates nbytes on the processor that owns g — the common
// "place the new object with its neighbour" pattern (e.g. splitting a
// Barnes-Hut cell on the displaced body's processor). Programs use this
// instead of unpacking the processor name out of a global pointer
// themselves: address encodings are the runtime's business.
func (t *Thread) AllocAtHome(g gaddr.GP, nbytes uint32) gaddr.GP {
	if g.IsNil() {
		panic("rt: AllocAtHome of nil pointer")
	}
	return t.Alloc(g.Proc(), nbytes)
}

// mech resolves the effective mechanism of a site under the runtime mode.
func (t *Thread) mech(s *Site) Mechanism {
	switch t.rt.Mode {
	case MigrateOnly:
		return Migrate
	case CacheOnly:
		return Cache
	default:
		return s.Mech
	}
}

// noteWrite records that the thread wrote processor q's memory: into every
// open call frame (return invalidation) and into the dirty set via the
// caller (write tracking).
func (t *Thread) noteWrite(q int) {
	for i := range t.frames {
		t.frames[i] |= 1 << uint(q)
	}
}

// migrate moves the thread to processor dst: release at the source, network
// latency, receive + acquire at the destination. site is the interned
// trace id of the dereference site that triggered the move (-1 for
// explicit moves and return stubs).
func (t *Thread) migrate(dst int, isReturn bool, writtenProcs uint64, site int32) {
	c := t.rt.M.Cost
	src := t.loc
	var send, net, recv int64
	if isReturn {
		send, net, recv = c.ReturnSend, c.ReturnNet, c.ReturnRecv
		t.rt.M.Stats.Returns.Add(1)
	} else {
		send, net, recv = c.MigrateSend, c.MigrateNet, c.MigrateRecv
		t.rt.M.Stats.Migrations.Add(1)
	}
	t.now = t.rt.M.Procs[src].Occupy(t.now, send)
	// A migration leaving a processor releases that processor's
	// accumulated write-tracking state (Appendix A).
	t.now = t.rt.Coh.OnRelease(src, t.now, t.rt.dirty[src])
	t.rt.dirty[src] = coherence.DirtySet{}
	depart := t.now
	t.now += net
	t.now = t.rt.M.Procs[dst].Occupy(t.now, recv)
	t.now = t.rt.Coh.OnAcquire(dst, t.now, isReturn, writtenProcs)
	if isReturn {
		t.rt.mReturnLat.Observe(t.now - depart)
	} else {
		t.rt.mMigLat.Observe(t.now - depart)
	}
	if tr := t.rt.M.Tracer; tr != nil {
		kind := trace.EvMigrate
		if isReturn {
			kind = trace.EvReturn
		}
		tr.Emit(trace.Event{
			Kind: trace.EvResidency, T: t.arrived, Dur: depart - t.arrived,
			P: int16(src), Tid: t.tid(), Site: -1, Line: -1,
		})
		tr.Emit(trace.Event{
			Kind: kind, T: depart, Dur: t.now - depart,
			P: int16(src), Tid: t.tid(), Site: site, Line: -1,
			Arg: int64(dst),
		})
	}
	t.loc = dst
	t.arrived = t.now
}

// MigrateTo explicitly moves the thread (used by programs that pin work to
// a data owner, e.g. to model `ALLOC`-then-build loops).
func (t *Thread) MigrateTo(dst int) {
	if dst == t.loc {
		return
	}
	t.sync()
	t.migrate(dst, false, 0, -1)
}

// Finish releases the thread's outstanding writes and folds its clock into
// its final processor, so Makespan covers it. Run and Spawn call it
// automatically.
func (t *Thread) Finish() {
	t.sync()
	t.now = t.rt.Coh.OnRelease(t.loc, t.now, t.rt.dirty[t.loc])
	t.rt.dirty[t.loc] = coherence.DirtySet{}
	t.now = t.rt.M.Procs[t.loc].Occupy(t.now, 0)
	if tr := t.rt.M.Tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.EvResidency, T: t.arrived, Dur: t.now - t.arrived,
			P: int16(t.loc), Tid: t.tid(), Site: -1, Line: -1,
		})
	}
}

// Call executes f as an Olden procedure call: if the body migrated away,
// the return stub migrates the thread back to the caller's processor
// (registers + return address only — no stack frame), and the refined
// local-knowledge rule invalidates exactly the homes the body wrote.
func Call[T any](t *Thread, f func() T) T {
	home := t.loc
	t.frames = append(t.frames, 0)
	v := f()
	mask := t.frames[len(t.frames)-1]
	t.frames = t.frames[:len(t.frames)-1]
	t.frames[len(t.frames)-1] |= mask
	if t.loc != home {
		t.migrate(home, true, mask, -1)
	}
	return v
}

// CallVoid is Call for procedures without results. It repeats Call's body
// instead of wrapping f: the wrapper closure was a measurable allocation
// on the migrate hot path (every remote dereference under migrate-only
// runs inside one of these).
func CallVoid(t *Thread, f func()) {
	home := t.loc
	t.frames = append(t.frames, 0)
	f()
	mask := t.frames[len(t.frames)-1]
	t.frames = t.frames[:len(t.frames)-1]
	t.frames[len(t.frames)-1] |= mask
	if t.loc != home {
		t.migrate(home, true, mask, -1)
	}
}

// deref runs the locality test and, for remote references, applies the
// site's mechanism. It returns the heap to address with direct loads
// (after a migration the reference is local) or a cached entry. The
// cacheRef travels by value — it must not escape to the heap on the
// per-access path.
func (t *Thread) deref(s *Site, a gaddr.GP, isWrite bool) (entry cacheRef, direct bool) {
	if a.IsNil() {
		panic(fmt.Sprintf("rt: nil pointer dereference at site %q", s.Name))
	}
	t.sync()
	if s.reg != t.rt {
		s.reg = t.rt
		t.rt.registerSite(s)
		if tr := t.rt.M.Tracer; tr != nil {
			s.traceID = tr.SiteID(s.Name)
		} else {
			s.traceID = -1
		}
	}
	t.chargeHere(t.rt.M.Cost.PtrTest)
	t.rt.M.Stats.PtrTests.Add(1)
	if isWrite {
		s.writes.Add(1)
	} else {
		s.reads.Add(1)
	}
	m := t.mech(s)
	if m == Cache {
		if isWrite {
			t.rt.M.Stats.CacheableWrites.Add(1)
		} else {
			t.rt.M.Stats.CacheableReads.Add(1)
		}
	}
	if a.Proc() == t.loc {
		return cacheRef{}, true
	}
	s.remote.Add(1)
	if m == Migrate {
		s.migrations.Add(1)
		t.migrate(a.Proc(), false, 0, s.traceID)
		return cacheRef{}, true
	}
	if isWrite {
		t.rt.M.Stats.RemoteWrites.Add(1)
	} else {
		t.rt.M.Stats.RemoteReads.Add(1)
	}
	return t.cacheAccess(s, a), false
}

// cacheRef is a resolved cached access: the entry plus the page offset.
type cacheRef struct {
	e       *cache.Entry
	pageOff uint32
}

// LoadWord reads the 8-byte word at byte offset off from the object g,
// using the site's mechanism for remote references.
func (t *Thread) LoadWord(s *Site, g gaddr.GP, off uint32) uint64 {
	a := g.Add(off)
	ref, direct := t.deref(s, a, false)
	if direct {
		return t.rt.M.Procs[a.Proc()].Heap.LoadWord(a.Off())
	}
	return t.rt.Caches[t.loc].ReadWord(ref.e, ref.pageOff)
}

// StoreWord writes the word at byte offset off of object g. Cached remote
// writes are write-through; every heap write is tracked for coherence.
func (t *Thread) StoreWord(s *Site, g gaddr.GP, off uint32, v uint64) {
	a := g.Add(off)
	ref, direct := t.deref(s, a, true)
	home := t.rt.M.Procs[a.Proc()]
	if direct {
		home.Heap.StoreWord(a.Off(), v)
	} else {
		// Update the local copy and write through to the home. The
		// thread does not wait for the write-through to complete
		// (write-buffer semantics), but the home is occupied by it.
		t.rt.Caches[t.loc].WriteWord(ref.e, ref.pageOff, v)
		t.chargeHere(t.rt.M.Cost.WriteThrough)
		home.Occupy(t.now, t.rt.M.Cost.WriteService)
		home.Heap.StoreWord(a.Off(), v)
	}
	if track := t.rt.Coh.WriteTrackCost(a); track > 0 {
		t.now = t.rt.M.Procs[t.loc].Occupy(t.now, track)
	}
	t.rt.dirty[t.loc].Add(a)
	t.noteWrite(a.Proc())
}

// Typed accessors. Heap words hold either a packed global pointer (low 32
// bits), a signed 64-bit integer, or a float64's bits.

// LoadPtr reads a global pointer field.
func (t *Thread) LoadPtr(s *Site, g gaddr.GP, off uint32) gaddr.GP {
	return gaddr.GP(t.LoadWord(s, g, off))
}

// StorePtr writes a global pointer field.
func (t *Thread) StorePtr(s *Site, g gaddr.GP, off uint32, v gaddr.GP) {
	t.StoreWord(s, g, off, uint64(v))
}

// LoadInt reads a signed integer field.
func (t *Thread) LoadInt(s *Site, g gaddr.GP, off uint32) int64 {
	return int64(t.LoadWord(s, g, off))
}

// StoreInt writes a signed integer field.
func (t *Thread) StoreInt(s *Site, g gaddr.GP, off uint32, v int64) {
	t.StoreWord(s, g, off, uint64(v))
}

// LoadFloat reads a float64 field.
func (t *Thread) LoadFloat(s *Site, g gaddr.GP, off uint32) float64 {
	return math.Float64frombits(t.LoadWord(s, g, off))
}

// StoreFloat writes a float64 field.
func (t *Thread) StoreFloat(s *Site, g gaddr.GP, off uint32, v float64) {
	t.StoreWord(s, g, off, math.Float64bits(v))
}
