package dataflow

// MapLattice lifts a value lattice pointwise to string-keyed maps: the
// bottom map is nil, join is key-wise (a key absent from one side keeps
// the other side's value, since absence means the value bottom), and two
// maps are equal when every key's value is, treating absent keys as
// bottom. It is the natural domain for environment-style analyses — one
// abstract value per program variable — and keeps each client from
// re-deriving the same map plumbing around Solve.
//
// Join never mutates its arguments; it returns a fresh map whenever both
// sides are non-nil.
type MapLattice[V any] struct {
	Val Lattice[V]
}

// Bottom returns the nil map (every key implicitly at Val.Bottom).
func (l MapLattice[V]) Bottom() map[string]V { return nil }

// Join merges two environments key-wise.
func (l MapLattice[V]) Join(a, b map[string]V) map[string]V {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(map[string]V, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, bv := range b {
		if av, ok := out[k]; ok {
			out[k] = l.Val.Join(av, bv)
		} else {
			out[k] = bv
		}
	}
	return out
}

// Equal compares two environments, treating absent keys as bottom.
func (l MapLattice[V]) Equal(a, b map[string]V) bool {
	if (a == nil) != (b == nil) {
		// nil is the unreachable bottom; a non-nil map — even an empty
		// one — is a reachable environment. The distinction matters:
		// blocks cut off by returns must not look like the entry.
		return false
	}
	bot := l.Val.Bottom()
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			bv = bot
		}
		if !l.Val.Equal(av, bv) {
			return false
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok && !l.Val.Equal(bv, bot) {
			return false
		}
	}
	return true
}
