// Package dataflow is a generic worklist fixpoint solver for forward and
// backward dataflow problems over a join-semilattice, in the classic
// Kildall formulation. It is stdlib-only and graph-agnostic: any graph
// exposing integer adjacency (in practice internal/lang/cfg) plugs in,
// and the value domain is a type parameter constrained only by a small
// Lattice interface.
//
// Termination is the usual argument: with a monotone transfer function
// over a lattice of bounded height h, each node's output can change at
// most h times, so the solver performs at most Len + edges×h transfer
// applications. Result.Transfers reports the actual count so tests can
// assert the bound.
package dataflow

// Graph is the integer adjacency view of a control-flow graph. Node IDs
// are 0..Len()-1; Entry has no predecessors and Exit no successors.
type Graph interface {
	Len() int
	Entry() int
	Exit() int
	Succs(n int) []int
	Preds(n int) []int
}

// Lattice defines the value domain: a join-semilattice with a least
// element. Join and Equal must not mutate their arguments, Join must be
// commutative and idempotent with Bottom as identity, and the lattice
// must have bounded height for the solver to terminate.
type Lattice[V any] interface {
	Bottom() V
	Join(a, b V) V
	Equal(a, b V) bool
}

// Direction orients a problem.
type Direction int

const (
	// Forward propagates values along edges from the entry.
	Forward Direction = iota
	// Backward propagates values against edges from the exit.
	Backward
)

// Problem is one dataflow problem instance. Transfer maps a node's input
// value (the join over its incoming values in the propagation direction)
// to its output and must be monotone. TransferEdge, when non-nil, refines
// a value flowing across one edge (from, to are node IDs in original
// graph orientation for Forward, and swapped roles for Backward); it is
// how branch conditions sharpen facts on their true/false edges.
type Problem[V any] struct {
	Lattice      Lattice[V]
	Dir          Direction
	Boundary     V // value entering the boundary node (entry or exit)
	Transfer     func(n int, in V) V
	TransferEdge func(from, to int, v V) V // optional
}

// Result holds the fixpoint. In[n] is the input to node n's transfer (at
// block entry for Forward problems, at block exit for Backward ones) and
// Out[n] its output. Transfers counts transfer-function applications, for
// termination-bound assertions.
type Result[V any] struct {
	In, Out   []V
	Transfers int
}

// Solve runs the worklist iteration to a fixpoint and returns it.
func Solve[V any](g Graph, p Problem[V]) Result[V] {
	n := g.Len()
	in := make([]V, n)
	out := make([]V, n)
	for i := 0; i < n; i++ {
		in[i] = p.Lattice.Bottom()
		out[i] = p.Lattice.Bottom()
	}

	flowInto, flowFrom := g.Preds, g.Succs
	boundary := g.Entry()
	if p.Dir == Backward {
		flowInto, flowFrom = g.Succs, g.Preds
		boundary = g.Exit()
	}

	// FIFO worklist with membership dedup, seeded in propagation order so
	// the first sweep visits sources before sinks on reducible graphs.
	queue := make([]int, 0, n)
	queued := make([]bool, n)
	push := func(i int) {
		if !queued[i] {
			queued[i] = true
			queue = append(queue, i)
		}
	}
	for i := 0; i < n; i++ {
		if p.Dir == Backward {
			push(n - 1 - i)
		} else {
			push(i)
		}
	}

	transfers := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		queued[i] = false

		v := p.Lattice.Bottom()
		if i == boundary {
			v = p.Lattice.Join(v, p.Boundary)
		}
		for _, q := range flowInto(i) {
			qv := out[q]
			if p.TransferEdge != nil {
				qv = p.TransferEdge(q, i, qv)
			}
			v = p.Lattice.Join(v, qv)
		}
		in[i] = v

		nv := p.Transfer(i, v)
		transfers++
		if !p.Lattice.Equal(nv, out[i]) {
			out[i] = nv
			for _, s := range flowFrom(i) {
				push(s)
			}
		}
	}
	return Result[V]{In: in, Out: out, Transfers: transfers}
}
