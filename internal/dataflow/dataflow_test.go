package dataflow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// adjGraph is a test graph given by explicit adjacency.
type adjGraph struct {
	succs [][]int
	preds [][]int
}

func newAdjGraph(n int, edges [][2]int) *adjGraph {
	g := &adjGraph{succs: make([][]int, n), preds: make([][]int, n)}
	for _, e := range edges {
		g.succs[e[0]] = append(g.succs[e[0]], e[1])
		g.preds[e[1]] = append(g.preds[e[1]], e[0])
	}
	return g
}

func (g *adjGraph) Len() int          { return len(g.succs) }
func (g *adjGraph) Entry() int        { return 0 }
func (g *adjGraph) Exit() int         { return len(g.succs) - 1 }
func (g *adjGraph) Succs(n int) []int { return g.succs[n] }
func (g *adjGraph) Preds(n int) []int { return g.preds[n] }

// bits is a powerset lattice over 16 elements: the canonical bounded
// lattice (height 16) for gen/kill problems.
type bits struct{}

func (bits) Bottom() uint16          { return 0 }
func (bits) Join(a, b uint16) uint16 { return a | b }
func (bits) Equal(a, b uint16) bool  { return a == b }

// TestForwardGenKill checks a reaching-definitions-style problem on a
// diamond with a loop: 0 -> 1 -> {2,3} -> 4 -> 1, 4 -> 5.
func TestForwardGenKill(t *testing.T) {
	g := newAdjGraph(6, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 1}, {4, 5}})
	gen := []uint16{1 << 0, 0, 1 << 2, 1 << 3, 0, 0}
	kill := []uint16{0, 0, 1 << 3, 1 << 2, 0, 0}
	res := Solve[uint16](g, Problem[uint16]{
		Lattice:  bits{},
		Dir:      Forward,
		Boundary: 0,
		Transfer: func(n int, in uint16) uint16 { return in&^kill[n] | gen[n] },
	})
	// Bit 0 reaches everywhere; bits 2 and 3 both reach the exit (one
	// from each arm, neither killed on the joined path 4->5).
	if res.Out[5] != 1<<0|1<<2|1<<3 {
		t.Errorf("Out[5] = %b, want %b", res.Out[5], uint16(1<<0|1<<2|1<<3))
	}
	// Inside arm 2, bit 3 is killed.
	if res.Out[2]&(1<<3) != 0 {
		t.Errorf("Out[2] = %b, want bit 3 killed", res.Out[2])
	}
}

// TestBackwardLiveness checks a liveness-style backward problem: for a
// Backward problem In[n] is the value at the node's exit.
func TestBackwardLiveness(t *testing.T) {
	// 0: a=… ; 1: if … ; 2: use a ; 3: use b ; 4: exit
	g := newAdjGraph(5, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}})
	const aBit, bBit = 1 << 0, 1 << 1
	use := []uint16{0, 0, aBit, bBit, 0}
	def := []uint16{aBit, 0, 0, 0, 0}
	res := Solve[uint16](g, Problem[uint16]{
		Lattice:  bits{},
		Dir:      Backward,
		Boundary: 0,
		Transfer: func(n int, liveOut uint16) uint16 { return liveOut&^def[n] | use[n] },
	})
	// Live into node 1: both a and b (one arm each).
	if res.Out[1] != aBit|bBit {
		t.Errorf("live-in at 1 = %b, want a|b", res.Out[1])
	}
	// Node 0 defines a, so only b is live into it.
	if res.Out[0] != bBit {
		t.Errorf("live-in at 0 = %b, want b only", res.Out[0])
	}
}

// TestTransferEdge checks per-edge refinement: an edge filter that blocks
// one bit models a branch condition sharpening a fact on one arm.
func TestTransferEdge(t *testing.T) {
	g := newAdjGraph(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	res := Solve[uint16](g, Problem[uint16]{
		Lattice:  bits{},
		Dir:      Forward,
		Boundary: 1<<0 | 1<<1,
		Transfer: func(n int, in uint16) uint16 { return in },
		TransferEdge: func(from, to int, v uint16) uint16 {
			if from == 0 && to == 1 {
				return v &^ (1 << 1) // the true arm learns bit 1 is off
			}
			return v
		},
	})
	if res.In[1] != 1<<0 {
		t.Errorf("In[1] = %b, want refined to bit 0", res.In[1])
	}
	if res.In[2] != 1<<0|1<<1 {
		t.Errorf("In[2] = %b, want unrefined", res.In[2])
	}
	// The join block sees the union again.
	if res.In[3] != 1<<0|1<<1 {
		t.Errorf("In[3] = %b, want union", res.In[3])
	}
}

// randProblem is a randomized gen/kill instance over a random digraph,
// generated through testing/quick.
type randProblem struct {
	n         int
	edges     [][2]int
	gen, kill []uint16
	boundary  uint16
}

// Generate implements quick.Generator: a graph of 1–10 nodes with random
// edges and random monotone gen/kill transfers.
func (randProblem) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(10)
	p := randProblem{n: n, gen: make([]uint16, n), kill: make([]uint16, n)}
	for i := 0; i < n; i++ {
		p.gen[i] = uint16(r.Intn(1 << 16))
		p.kill[i] = uint16(r.Intn(1 << 16))
		for _, j := range r.Perm(n)[:r.Intn(n+1)] {
			if len(p.edges) < 3*n {
				p.edges = append(p.edges, [2]int{i, j})
			}
		}
	}
	p.boundary = uint16(r.Intn(1 << 16))
	return reflect.ValueOf(p)
}

// TestSolveFixpointQuick asserts on randomized graphs that Solve reaches
// a true fixpoint (every node satisfies its dataflow equation) within the
// monotone termination bound Len + edges×height.
func TestSolveFixpointQuick(t *testing.T) {
	f := func(p randProblem) bool {
		g := newAdjGraph(p.n, p.edges)
		lat := bits{}
		prob := Problem[uint16]{
			Lattice:  lat,
			Dir:      Forward,
			Boundary: p.boundary,
			Transfer: func(n int, in uint16) uint16 { return in&^p.kill[n] | p.gen[n] },
		}
		res := Solve[uint16](g, prob)
		// Fixpoint equations: In = join(preds' Out) [+ boundary at entry],
		// Out = Transfer(In).
		for i := 0; i < p.n; i++ {
			want := lat.Bottom()
			if i == g.Entry() {
				want = lat.Join(want, p.boundary)
			}
			for _, q := range g.Preds(i) {
				want = lat.Join(want, res.Out[q])
			}
			if !lat.Equal(res.In[i], want) {
				t.Logf("node %d: In = %b, want %b", i, res.In[i], want)
				return false
			}
			if !lat.Equal(res.Out[i], prob.Transfer(i, res.In[i])) {
				t.Logf("node %d: Out not Transfer(In)", i)
				return false
			}
		}
		// Termination bound for a monotone transfer over a height-16
		// lattice: every node transfers once, then only when a
		// predecessor's output strictly grows.
		const height = 16
		bound := p.n + len(p.edges)*height
		if res.Transfers > bound {
			t.Logf("transfers = %d > bound %d (n=%d, edges=%d)", res.Transfers, bound, p.n, len(p.edges))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBackwardFixpointQuick mirrors the forward property in the backward
// direction, where the equations flip orientation.
func TestBackwardFixpointQuick(t *testing.T) {
	f := func(p randProblem) bool {
		g := newAdjGraph(p.n, p.edges)
		lat := bits{}
		prob := Problem[uint16]{
			Lattice:  lat,
			Dir:      Backward,
			Boundary: p.boundary,
			Transfer: func(n int, in uint16) uint16 { return in&^p.kill[n] | p.gen[n] },
		}
		res := Solve[uint16](g, prob)
		for i := 0; i < p.n; i++ {
			want := lat.Bottom()
			if i == g.Exit() {
				want = lat.Join(want, p.boundary)
			}
			for _, q := range g.Succs(i) {
				want = lat.Join(want, res.Out[q])
			}
			if !lat.Equal(res.In[i], want) {
				return false
			}
			if !lat.Equal(res.Out[i], prob.Transfer(i, res.In[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMapLattice pins the pointwise-map adapter's semantics: nil is a
// distinguished bottom, absent keys join as the value bottom, and join
// never mutates its arguments.
func TestMapLattice(t *testing.T) {
	l := MapLattice[uint16]{Val: bits{}}
	if l.Bottom() != nil {
		t.Fatal("Bottom must be nil")
	}
	a := map[string]uint16{"x": 0b01, "y": 0b10}
	b := map[string]uint16{"x": 0b10, "z": 0b100}
	j := l.Join(a, b)
	want := map[string]uint16{"x": 0b11, "y": 0b10, "z": 0b100}
	if !reflect.DeepEqual(j, want) {
		t.Fatalf("Join = %v, want %v", j, want)
	}
	if a["x"] != 0b01 || len(b) != 2 {
		t.Fatal("Join mutated an argument")
	}
	if got := l.Join(nil, a); !reflect.DeepEqual(got, a) {
		t.Fatalf("Join(bottom, a) = %v", got)
	}
	if got := l.Join(a, nil); !reflect.DeepEqual(got, a) {
		t.Fatalf("Join(a, bottom) = %v", got)
	}
	if !l.Equal(map[string]uint16{"x": 1, "y": 0}, map[string]uint16{"x": 1}) {
		t.Error("a key at value-bottom must equal its absence")
	}
	if l.Equal(nil, map[string]uint16{}) {
		t.Error("nil (unreachable) must differ from an empty environment")
	}
	if l.Equal(a, b) {
		t.Error("distinct environments compare equal")
	}
}
