package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"time"

	"repro/internal/trace"
)

// servicePID is the synthetic Chrome-trace process id service spans render
// under. Simulated processors occupy pids 0..P-1 (see trace.EmitChrome),
// so the service timeline sits in its own clearly-separate track.
const servicePID = 1000

// WriteChrome renders one sampled request as a single merged Chrome
// trace_event file: the service span tree (wall-clock microseconds,
// pid 1000) alongside the simulation events its execution recorded
// (simulated cycles as microseconds, pid = simulated processor). Two
// clock domains in one file is deliberate — the viewer shows them as
// separate process tracks, and the point of the export is seeing both
// attributions for the same request side by side.
func WriteChrome(w io.Writer, root *Span) error {
	if root == nil {
		return errors.New("obs: nil span")
	}
	snap := root.snapshot(root.tracer.now())

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(obj map[string]any) error {
		b, err := json.Marshal(obj)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	if err := emit(map[string]any{
		"ph": "M", "name": "process_name", "pid": servicePID,
		"args": map[string]any{"name": "oldend service (wall-clock µs)"},
	}); err != nil {
		return err
	}
	if err := emit(map[string]any{
		"ph": "M", "name": "trace_id", "pid": servicePID,
		"args": map[string]any{"trace_id": root.TraceID().String()},
	}); err != nil {
		return err
	}
	if err := emitSpan(emit, snap, snap.start); err != nil {
		return err
	}
	if rec := findSimRec(snap); rec != nil {
		if err := rec.EmitChrome(emit); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// emitSpan renders one span (and recursively its children) as a ph:"X"
// complete event, with timestamps as microsecond offsets from the root's
// start so the export is stable under a fake clock.
func emitSpan(emit func(map[string]any) error, sn spanSnap, epoch time.Time) error {
	args := map[string]any{
		"span_id":   sn.spanID.String(),
		"parent_id": sn.parentID.String(),
	}
	for _, a := range sn.attrs {
		args[a.Key] = a.Value
	}
	if sn.simCycles >= 0 {
		args["sim_cycles"] = sn.simCycles
	}
	if sn.dropKids > 0 {
		args["dropped_children"] = sn.dropKids
	}
	if sn.dropAttrs > 0 {
		args["dropped_attrs"] = sn.dropAttrs
	}
	if err := emit(map[string]any{
		"ph": "X", "name": sn.name, "cat": "service",
		"pid": servicePID, "tid": 0,
		"ts": sn.start.Sub(epoch).Microseconds(), "dur": sn.durUS(),
		"args": args,
	}); err != nil {
		return err
	}
	for _, c := range sn.children {
		if err := emitSpan(emit, c, epoch); err != nil {
			return err
		}
	}
	return nil
}

// findSimRec returns the first simulation recorder attached anywhere in
// the snapshot tree (depth-first), nil when the request never reached the
// simulator (pure cache hit, shed, or validation error).
func findSimRec(sn spanSnap) *trace.Recorder {
	if sn.simRec != nil {
		return sn.simRec
	}
	for _, c := range sn.children {
		if rec := findSimRec(c); rec != nil {
			return rec
		}
	}
	return nil
}
