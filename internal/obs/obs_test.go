package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic wall clock tests advance by hand.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time           { return c.t }
func (c *fakeClock) Advance(d time.Duration)  { c.t = c.t.Add(d) }
func (c *fakeClock) config(cfg Config) Config { cfg.Now = c.Now; return cfg }
func counterRand() func() uint64 {
	var n uint64
	return func() uint64 { n++; return n }
}

func newTestTracer(clk *fakeClock, cfg Config) *Tracer {
	cfg = clk.config(cfg)
	cfg.Rand = counterRand()
	return New(cfg)
}

const validSampled = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr bool
		sampled bool
	}{
		{"valid sampled", validSampled, false, true},
		{"valid unsampled", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00", false, false},
		{"flags set high bits", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-03", false, true},
		{"empty", "", true, false},
		{"too short", "00-abc", true, false},
		{"version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", true, false},
		{"version 00 with trailer", validSampled + "-extra", true, false},
		{"future version with trailer", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", false, true},
		{"future version bad trailer", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01extra", true, false},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", true, false},
		{"zero parent id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", true, false},
		{"uppercase hex", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", true, false},
		{"bad separator", "00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", true, false},
		{"non-hex version", "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, err := ParseTraceparent(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseTraceparent(%q): want error, got %+v", tc.in, ctx)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseTraceparent(%q): %v", tc.in, err)
			}
			if !ctx.Valid() {
				t.Fatalf("parsed context not valid: %+v", ctx)
			}
			if ctx.Sampled != tc.sampled {
				t.Fatalf("sampled = %v, want %v", ctx.Sampled, tc.sampled)
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	ctx, err := ParseTraceparent(validSampled)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.Traceparent(); got != validSampled {
		t.Fatalf("round trip = %q, want %q", got, validSampled)
	}
	if got := ctx.TraceID.String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id = %q", got)
	}
	ctx.Sampled = false
	if got := ctx.Traceparent(); !strings.HasSuffix(got, "-00") {
		t.Fatalf("unsampled traceparent = %q, want -00 suffix", got)
	}
}

func TestSamplingPolicy(t *testing.T) {
	clk := newFakeClock()
	upstream, _ := ParseTraceparent(validSampled)

	t.Run("every nth", func(t *testing.T) {
		tr := newTestTracer(clk, Config{SampleEvery: 3})
		var got []bool
		for i := 0; i < 6; i++ {
			got = append(got, tr.StartRequest("POST", "/run", Context{}).Sampled())
		}
		want := []bool{true, false, false, true, false, false}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("request %d sampled = %v, want %v (%v)", i, got[i], want[i], got)
			}
		}
	})
	t.Run("upstream always wins", func(t *testing.T) {
		tr := newTestTracer(clk, Config{SampleEvery: 0})
		if tr.StartRequest("POST", "/run", Context{}).Sampled() {
			t.Fatal("unsampled request sampled with SampleEvery=0")
		}
		sp := tr.StartRequest("POST", "/run", upstream)
		if !sp.Sampled() {
			t.Fatal("upstream-sampled request not sampled")
		}
		if sp.TraceID() != upstream.TraceID {
			t.Fatalf("trace id not propagated: %s", sp.TraceID())
		}
		if sp.Context().SpanID == upstream.SpanID {
			t.Fatal("root span must mint its own span id")
		}
	})
	t.Run("disabled", func(t *testing.T) {
		tr := newTestTracer(clk, Config{SampleEvery: -1})
		if tr.StartRequest("POST", "/run", upstream).Sampled() {
			t.Fatal("disabled tracer sampled a request")
		}
	})
	t.Run("nil tracer", func(t *testing.T) {
		var tr *Tracer
		if tr.StartRequest("POST", "/run", upstream).Sampled() {
			t.Fatal("nil tracer sampled a request")
		}
		tr.FinishRequest(nil, ReqInfo{})
		tr.AbortInflight()
		if tr.Requests() != nil || tr.InFlight() != 0 {
			t.Fatal("nil tracer reported requests")
		}
		if _, ok := tr.Lookup("0af7651916cd43dd8448eb211c80319c"); ok {
			t.Fatal("nil tracer resolved a lookup")
		}
	})
}

func finish(tr *Tracer, sp *Span, clk *fakeClock, d time.Duration, info ReqInfo) {
	clk.Advance(d)
	if info.TraceID == "" {
		info.TraceID = sp.TraceID().String()
	}
	info.DurUS = d.Microseconds()
	tr.FinishRequest(sp, info)
}

func TestTraceRingEviction(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1, TraceRing: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		sp := tr.StartRequest("POST", "/run", Context{})
		ids = append(ids, sp.TraceID().String())
		finish(tr, sp, clk, time.Millisecond, ReqInfo{Method: "POST", Path: "/run", Status: 200})
	}
	if _, ok := tr.Lookup(ids[0]); ok {
		t.Fatal("oldest trace survived eviction from a ring of 2")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Lookup(id); !ok {
			t.Fatalf("trace %s evicted too early", id)
		}
	}
}

func TestRequestsSlowestFirst(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1})
	durs := []time.Duration{3 * time.Millisecond, 9 * time.Millisecond, 1 * time.Millisecond}
	for i, d := range durs {
		sp := tr.StartRequest("POST", "/run", Context{})
		finish(tr, sp, clk, d, ReqInfo{Method: "POST", Path: "/run", Status: 200, Benchmark: []string{"a", "b", "c"}[i]})
	}
	// One in-flight request, slower than everything finished.
	slow := tr.StartRequest("POST", "/batch", Context{})
	clk.Advance(20 * time.Millisecond)

	reqs := tr.Requests()
	if len(reqs) != 4 {
		t.Fatalf("len(Requests()) = %d, want 4", len(reqs))
	}
	if !reqs[0].InFlight || reqs[0].Path != "/batch" || reqs[0].DurUS != 20000 {
		t.Fatalf("slowest should be the in-flight request: %+v", reqs[0])
	}
	wantDurs := []int64{20000, 9000, 3000, 1000}
	for i, r := range reqs {
		if r.DurUS != wantDurs[i] {
			t.Fatalf("Requests()[%d].DurUS = %d, want %d", i, r.DurUS, wantDurs[i])
		}
	}
	if tr.InFlight() != 1 {
		t.Fatalf("InFlight() = %d, want 1", tr.InFlight())
	}
	slow.End()
}

func TestFinishFlushesUnfinishedChildren(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1})
	sp := tr.StartRequest("POST", "/run", Context{})
	clk.Advance(time.Millisecond)
	q := sp.StartChild("queue_wait") // never ended: simulates the 504 path
	clk.Advance(4 * time.Millisecond)
	finish(tr, sp, clk, time.Millisecond, ReqInfo{Method: "POST", Path: "/run", Status: 504, ShedReason: "deadline"})

	if q.Attr("aborted") != "true" {
		t.Fatal("unfinished child not flushed with aborted attr")
	}
	tree := Tree(sp)
	if tree.Root.Attrs == nil || sp.Attr("shed_reason") != "deadline" {
		t.Fatal("root missing shed_reason attr")
	}
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != "queue_wait" {
		t.Fatalf("tree missing queue_wait child: %+v", tree.Root)
	}
	// queue_wait ran 4ms of the root's 6ms and was flushed at End time.
	if got := tree.Root.Children[0].DurUS; got != 5000 {
		t.Fatalf("queue_wait dur = %dus, want 5000", got)
	}
}

func TestDominantSpan(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1})
	sp := tr.StartRequest("POST", "/run", Context{})
	q := sp.StartChild("queue_wait")
	clk.Advance(80 * time.Millisecond)
	q.End()
	ex := sp.StartChild("execute")
	ph := ex.StartChild("phase:kernel")
	clk.Advance(15 * time.Millisecond)
	ph.End()
	clk.Advance(time.Millisecond)
	ex.End()
	finish(tr, sp, clk, 2*time.Millisecond, ReqInfo{Method: "POST", Path: "/run", Status: 200})

	reqs := tr.Requests()
	if len(reqs) != 1 {
		t.Fatalf("len(Requests()) = %d", len(reqs))
	}
	if reqs[0].Dominant != "queue_wait" || reqs[0].DominantDepth != 1 {
		t.Fatalf("dominant = %q depth %d, want queue_wait depth 1", reqs[0].Dominant, reqs[0].DominantDepth)
	}
	tree := Tree(sp)
	if tree.Dominant != "queue_wait" || tree.DominantUS != 80000 {
		t.Fatalf("tree dominant = %q %dus", tree.Dominant, tree.DominantUS)
	}
	// Exclusive times: execute held 16ms total but only 1ms itself.
	var exTree *SpanTree
	for i := range tree.Root.Children {
		if tree.Root.Children[i].Name == "execute" {
			exTree = &tree.Root.Children[i]
		}
	}
	if exTree == nil || exTree.SelfUS != 1000 {
		t.Fatalf("execute self time wrong: %+v", exTree)
	}
}

func TestBoundsDropAndCount(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1, MaxChildren: 2, MaxAttrs: 2})
	sp := tr.StartRequest("POST", "/run", Context{})
	for i := 0; i < 4; i++ {
		c := sp.StartChild("c")
		if (i < 2) != (c != nil) {
			t.Fatalf("child %d: got %v", i, c)
		}
		c.End()
	}
	sp.SetAttr("a", "1")
	sp.SetAttr("b", "2")
	sp.SetAttr("b", "3") // update, not a new attr
	sp.SetAttr("c", "4") // dropped
	if sp.Attr("b") != "3" {
		t.Fatalf("attr update failed: %q", sp.Attr("b"))
	}
	if sp.Attr("c") != "" {
		t.Fatal("over-bound attr was stored")
	}
	// FinishRequest's own status attr also hits the bound: 2 drops total.
	finish(tr, sp, clk, time.Millisecond, ReqInfo{Method: "POST", Path: "/run", Status: 200})
	tree := Tree(sp)
	if tree.Root.DroppedChildren != 2 || tree.Root.DroppedAttrs != 2 {
		t.Fatalf("drop counts = %d children, %d attrs; want 2, 2",
			tree.Root.DroppedChildren, tree.Root.DroppedAttrs)
	}
}

func TestAbortInflightAtDrain(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1})
	sp := tr.StartRequest("POST", "/run", Context{})
	ex := sp.StartChild("execute")
	clk.Advance(7 * time.Millisecond)

	tr.AbortInflight()
	if tr.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after abort", tr.InFlight())
	}
	got, ok := tr.Lookup(sp.TraceID().String())
	if !ok || got != sp {
		t.Fatal("aborted trace not retained")
	}
	if sp.Attr("aborted") != "true" || ex.Attr("aborted") != "true" {
		t.Fatal("aborted attr missing after drain flush")
	}
	reqs := tr.Requests()
	if len(reqs) != 1 || reqs[0].ShedReason != "aborted_at_drain" {
		t.Fatalf("drain summary wrong: %+v", reqs)
	}
	if reqs[0].Method != "POST" || reqs[0].Path != "/run" || reqs[0].DurUS != 7000 {
		t.Fatalf("drain summary fields wrong: %+v", reqs[0])
	}
}

func TestStartChildOnFinishedSpan(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1})
	sp := tr.StartRequest("POST", "/run", Context{})
	sp.End()
	if sp.StartChild("late") != nil {
		t.Fatal("StartChild on a finished span returned a live span")
	}
	sp.End() // idempotent
	finish(tr, sp, clk, 0, ReqInfo{Method: "POST", Path: "/run", Status: 200})
}

func TestDuplicateTraceIDReplaces(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 0, TraceRing: 4})
	upstream, _ := ParseTraceparent(validSampled)
	first := tr.StartRequest("POST", "/run", upstream)
	finish(tr, first, clk, time.Millisecond, ReqInfo{Method: "POST", Path: "/run", Status: 200})
	second := tr.StartRequest("POST", "/run", upstream)
	finish(tr, second, clk, time.Millisecond, ReqInfo{Method: "POST", Path: "/run", Status: 200})
	got, ok := tr.Lookup(upstream.TraceID.String())
	if !ok || got != second {
		t.Fatal("retried trace id did not replace the retained tree")
	}
}

// TestUnsampledZeroAllocs pins the tentpole's cost contract: a request
// that is not sampled must allocate no spans — the full per-request
// sequence (header parse, sampling decision, child spans, attrs, finish)
// is free when the decision is "no".
func TestUnsampledZeroAllocs(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 0})
	info := ReqInfo{
		TraceID: "0af7651916cd43dd8448eb211c80319c",
		Method:  "POST", Path: "/run", Status: 200,
		Start: clk.Now(), DurUS: 42, Benchmark: "treeadd", Cache: "hit",
	}
	allocs := testing.AllocsPerRun(200, func() {
		ctx, _ := ParseTraceparent("")
		sp := tr.StartRequest("POST", "/run", ctx)
		sp.SetAttr("benchmark", "treeadd")
		child := sp.StartChild("queue_wait")
		child.End()
		sp.SetAttrInt("status", 200)
		sp.SetSimCycles(123)
		sp.End()
		tr.FinishRequest(sp, info)
	})
	if allocs != 0 {
		t.Fatalf("unsampled request path allocates %.1f times per request, want 0", allocs)
	}
	// Rejecting a malformed header must also be free.
	allocs = testing.AllocsPerRun(200, func() {
		_, _ = ParseTraceparent("00-borked")
	})
	if allocs != 0 {
		t.Fatalf("malformed traceparent rejection allocates %.1f, want 0", allocs)
	}
}
