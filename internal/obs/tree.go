package obs

import "time"

// SpanTree is the JSON shape of one span in the tree view served by
// GET /debug/trace/<id>?format=tree. It exists as a shared type so
// oldenload can unmarshal the server's response and print breakdowns
// without re-deriving the schema.
type SpanTree struct {
	Name     string `json:"name"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// StartUS is the span's start as a microsecond offset from the root
	// span's start; DurUS its wall-clock duration.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// SelfUS is the exclusive time: DurUS minus the children's DurUS —
	// the quantity the dominant-span computation maximizes.
	SelfUS          int64      `json:"self_us"`
	SimCycles       int64      `json:"sim_cycles,omitempty"`
	Attrs           []Attr     `json:"attrs,omitempty"`
	DroppedChildren int        `json:"dropped_children,omitempty"`
	DroppedAttrs    int        `json:"dropped_attrs,omitempty"`
	Children        []SpanTree `json:"children,omitempty"`
}

// TraceTree is the full tree view of one sampled request: the span tree
// plus the merged-export bookkeeping (dominant span, simulation event
// counts and drops).
type TraceTree struct {
	TraceID       string    `json:"trace_id"`
	Start         time.Time `json:"start"`
	DurUS         int64     `json:"dur_us"`
	Dominant      string    `json:"dominant"`
	DominantDepth int       `json:"dominant_depth"`
	DominantUS    int64     `json:"dominant_us"`
	SimEvents     int       `json:"sim_events"`
	SimDropped    int64     `json:"sim_dropped"`
	Root          SpanTree  `json:"root"`
}

// Tree renders a sampled request's span tree as its JSON view. Returns
// the zero value for nil.
func Tree(root *Span) TraceTree {
	if root == nil {
		return TraceTree{}
	}
	snap := root.snapshot(root.tracer.now())
	dom, depth, domUS := snap.dominant()
	tt := TraceTree{
		TraceID:       root.TraceID().String(),
		Start:         snap.start,
		DurUS:         snap.durUS(),
		Dominant:      dom,
		DominantDepth: depth,
		DominantUS:    domUS,
		Root:          treeOf(snap, snap.start),
	}
	if rec := findSimRec(snap); rec != nil {
		tt.SimEvents = rec.Len()
		tt.SimDropped = rec.Dropped()
	}
	return tt
}

func treeOf(sn spanSnap, epoch time.Time) SpanTree {
	st := SpanTree{
		Name:            sn.name,
		SpanID:          sn.spanID.String(),
		StartUS:         sn.start.Sub(epoch).Microseconds(),
		DurUS:           sn.durUS(),
		SelfUS:          sn.durUS(),
		Attrs:           sn.attrs,
		DroppedChildren: sn.dropKids,
		DroppedAttrs:    sn.dropAttrs,
	}
	if !sn.parentID.IsZero() {
		st.ParentID = sn.parentID.String()
	}
	if sn.simCycles >= 0 {
		st.SimCycles = sn.simCycles
	}
	for _, c := range sn.children {
		ct := treeOf(c, epoch)
		st.SelfUS -= ct.DurUS
		st.Children = append(st.Children, ct)
	}
	return st
}
