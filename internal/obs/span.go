package obs

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/trace"
)

// Attr is one key/value annotation on a span. Values are strings so the
// span stays pointer-light and renders directly into exports.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a request: a name, identity,
// wall-clock bounds, optional simulated-cycle cost, bounded attributes
// and a bounded child list. A nil *Span is the unsampled state; every
// method is nil-safe and free, which is what keeps the unsampled request
// path at zero span allocations.
//
// A span is owned by the goroutine driving its request phase, but phases
// hand off between the HTTP handler and a pool worker, so the struct is
// internally locked; the bounded lists make the cost of that lock and of
// a hostile request's attribute spam both O(1).
type Span struct {
	mu       sync.Mutex
	tracer   *Tracer
	name     string
	traceID  TraceID
	spanID   SpanID
	parentID SpanID

	startWall time.Time
	endWall   time.Time
	finished  bool

	// simCycles is the simulated-cycle cost attributed to this span
	// (the second clock the tentpole asks for); -1 means not applicable.
	simCycles int64

	attrs     []Attr
	dropAttrs int
	children  []*Span
	dropKids  int
	// simRec, set on the root execute path, bridges the request down to
	// the simulator: the recorder's events render under this span tree
	// in the merged Chrome export.
	simRec *trace.Recorder
}

// Sampled reports whether the span is live (non-nil): the one-branch
// check instrumentation points use before doing sampled-only work.
func (s *Span) Sampled() bool { return s != nil }

// TraceID returns the span's trace id (zero for nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// Context returns the span's propagation context with the sampled flag
// set — what an outbound hop would send as traceparent.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.traceID, SpanID: s.spanID, Sampled: true}
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartChild opens a child span. Returns nil — the disabled state — on a
// nil receiver, on a finished span, or once the child bound is reached
// (the drop is counted and surfaced in exports).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return nil
	}
	if len(s.children) >= s.tracer.cfg.MaxChildren {
		s.dropKids++
		return nil
	}
	c := &Span{
		tracer:    s.tracer,
		name:      name,
		traceID:   s.traceID,
		spanID:    s.tracer.newSpanID(),
		parentID:  s.spanID,
		startWall: s.tracer.now(),
		simCycles: -1,
	}
	s.children = append(s.children, c)
	return c
}

// SetAttr annotates the span. Attributes beyond the bound are dropped
// and counted. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	if len(s.attrs) >= s.tracer.cfg.MaxAttrs {
		s.dropAttrs++
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value. No-op on nil.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// Attr returns the value of an attribute ("" when absent or nil).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// SetSimCycles records the simulated-cycle cost attributed to the span —
// the second clock alongside wall time. No-op on nil.
func (s *Span) SetSimCycles(cycles int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.simCycles = cycles
	s.mu.Unlock()
}

// AttachSim binds the per-request simulation recorder to the span, so
// the merged Chrome export shows the simulation events under the
// service tree. No-op on nil.
func (s *Span) AttachSim(rec *trace.Recorder) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.simRec = rec
	s.mu.Unlock()
}

// SimRecorder returns the attached simulation recorder (nil when none).
func (s *Span) SimRecorder() *trace.Recorder {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simRec
}

// End closes the span at the tracer's current wall clock. Idempotent —
// the first End wins — and nil-safe, so handoff races between a timed-out
// handler and a worker that surfaces later resolve harmlessly.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.finished {
		s.finished = true
		s.endWall = s.tracer.now()
	}
	s.mu.Unlock()
}

// EndAborted marks the span aborted and closes it: the shape drain and
// deadline paths leave behind, distinguishable from a clean finish.
func (s *Span) EndAborted() {
	if s == nil {
		return
	}
	s.SetAttr("aborted", "true")
	s.End()
}

// Duration returns the span's wall-clock duration; for an unfinished
// span, the elapsed time so far against the given now.
func (s *Span) Duration(now time.Time) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return s.endWall.Sub(s.startWall)
	}
	return now.Sub(s.startWall)
}

// flushUnfinished closes every unfinished span in the tree with the
// aborted attribute — called when the request finishes (or drain fires)
// so an exported tree never contains dangling open spans.
func (s *Span) flushUnfinished() {
	if s == nil {
		return
	}
	s.mu.Lock()
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	finished := s.finished
	s.mu.Unlock()
	for _, c := range kids {
		c.flushUnfinished()
	}
	if !finished {
		s.EndAborted()
	}
}

// spanSnap is a consistent copy of one span, taken child-first under
// each span's own lock — what the exporters render from, so they never
// hold locks while writing.
type spanSnap struct {
	name      string
	spanID    SpanID
	parentID  SpanID
	start     time.Time
	end       time.Time
	finished  bool
	simCycles int64
	attrs     []Attr
	dropKids  int
	dropAttrs int
	children  []spanSnap
	simRec    *trace.Recorder
}

func (s *Span) snapshot(now time.Time) spanSnap {
	s.mu.Lock()
	snap := spanSnap{
		name:      s.name,
		spanID:    s.spanID,
		parentID:  s.parentID,
		start:     s.startWall,
		end:       s.endWall,
		finished:  s.finished,
		simCycles: s.simCycles,
		attrs:     append([]Attr(nil), s.attrs...),
		dropKids:  s.dropKids,
		dropAttrs: s.dropAttrs,
		simRec:    s.simRec,
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	if !snap.finished {
		snap.end = now
	}
	snap.children = make([]spanSnap, 0, len(kids))
	for _, c := range kids {
		snap.children = append(snap.children, c.snapshot(now))
	}
	return snap
}

func (sn spanSnap) durUS() int64 { return sn.end.Sub(sn.start).Microseconds() }

// dominant returns the span with the greatest exclusive (self) time in
// the snapshot tree and its depth (root = 0): the one-line answer to
// "where did this request's latency go".
func (sn spanSnap) dominant() (name string, depth int, selfUS int64) {
	var walk func(s spanSnap, d int)
	walk = func(s spanSnap, d int) {
		self := s.durUS()
		for _, c := range s.children {
			self -= c.durUS()
			walk(c, d+1)
		}
		if self > selfUS || name == "" {
			name, depth, selfUS = s.name, d, self
		}
	}
	walk(sn, 0)
	return name, depth, selfUS
}
