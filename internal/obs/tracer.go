package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Tracer. The zero value is usable: honor-upstream-only
// sampling with default ring sizes.
type Config struct {
	// SampleEvery selects local head sampling: N >= 1 samples every Nth
	// request (1 = all), 0 samples only requests whose incoming
	// traceparent carries the sampled flag, and a negative value
	// disables sampling entirely (even propagated).
	SampleEvery int
	// RequestRing bounds the finished-request summary ring served by
	// GET /debug/requests (default 256). Every request lands here,
	// sampled or not; the ring is preallocated and written by value, so
	// recording an unsampled request allocates nothing.
	RequestRing int
	// TraceRing bounds the retained sampled span trees served by
	// GET /debug/trace/<id> (default 64, strictly FIFO eviction).
	TraceRing int
	// MaxChildren and MaxAttrs bound each span's lists (defaults 64 and
	// 32); excess is dropped and counted, never allocated.
	MaxChildren int
	MaxAttrs    int
	// Now substitutes the wall clock (tests); nil means time.Now.
	Now func() time.Time
	// Rand substitutes the id entropy source (tests); nil means the
	// runtime's PRNG. Trace ids are operational identifiers, not
	// simulation state, so this randomness does not touch determinism.
	Rand func() uint64
}

func (c Config) withDefaults() Config {
	if c.RequestRing <= 0 {
		c.RequestRing = 256
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 64
	}
	if c.MaxChildren <= 0 {
		c.MaxChildren = 64
	}
	if c.MaxAttrs <= 0 {
		c.MaxAttrs = 32
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Rand == nil {
		c.Rand = rand.Uint64
	}
	return c
}

// ReqSummary is one request's introspection record: identity, outcome,
// latency and — when sampled — the dominant span. It is a value type so
// the tracer's ring holds finished requests without allocating.
type ReqSummary struct {
	TraceID    string    `json:"trace_id"`
	Method     string    `json:"method"`
	Path       string    `json:"path"`
	Status     int       `json:"status"`
	Start      time.Time `json:"start"`
	DurUS      int64     `json:"dur_us"`
	Sampled    bool      `json:"sampled"`
	InFlight   bool      `json:"in_flight"`
	Benchmark  string    `json:"benchmark,omitempty"`
	Cache      string    `json:"cache,omitempty"`
	ShedReason string    `json:"shed_reason,omitempty"`
	// Dominant names the span with the greatest exclusive time and its
	// depth in the tree — "queue_wait dominates at depth 2" as data.
	Dominant      string `json:"dominant,omitempty"`
	DominantDepth int    `json:"dominant_depth,omitempty"`
}

// ReqInfo is what the HTTP layer reports when a request finishes.
// TraceID carries the already-rendered id string (the same one sent in
// the X-Oldend-Trace-Id header) so unsampled accounting reuses the
// allocation instead of making another.
type ReqInfo struct {
	TraceID    string
	Method     string
	Path       string
	Status     int
	Start      time.Time
	DurUS      int64
	Benchmark  string
	Cache      string
	ShedReason string
}

// Tracer decides sampling, owns live request spans, and retains rings of
// finished requests and sampled traces for the introspection endpoints.
// A nil *Tracer is fully disabled; all methods are nil-safe.
type Tracer struct {
	cfg     Config
	counter atomic.Uint64

	mu       sync.Mutex
	reqs     []ReqSummary // finished-request ring, preallocated
	reqNext  int
	reqCount int

	inflight map[TraceID]*Span
	finished map[TraceID]*Span
	ring     []TraceID // FIFO of finished sampled trace ids
	ringNext int
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{
		cfg:      cfg,
		reqs:     make([]ReqSummary, cfg.RequestRing),
		inflight: make(map[TraceID]*Span),
		finished: make(map[TraceID]*Span),
		ring:     make([]TraceID, 0, cfg.TraceRing),
	}
}

func (t *Tracer) now() time.Time { return t.cfg.Now() }

// NewTraceID mints a random non-zero trace id.
func (t *Tracer) NewTraceID() TraceID {
	var id TraceID
	if t == nil {
		return id
	}
	for id.IsZero() {
		a, b := t.cfg.Rand(), t.cfg.Rand()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := t.cfg.Rand()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (8 * i))
		}
	}
	return id
}

// StartRequest makes the sampling decision for one request and, when
// sampled, opens its root span (registered in-flight). It returns nil —
// at zero allocations — when the request is not sampled: an upstream
// sampled traceparent always samples, otherwise local 1-in-N sampling
// applies, and a negative SampleEvery disables both.
func (t *Tracer) StartRequest(method, path string, parent Context) *Span {
	if t == nil || t.cfg.SampleEvery < 0 {
		return nil
	}
	sampled := parent.Valid() && parent.Sampled
	if !sampled && t.cfg.SampleEvery > 0 {
		sampled = (t.counter.Add(1)-1)%uint64(t.cfg.SampleEvery) == 0
	}
	if !sampled {
		return nil
	}
	traceID := parent.TraceID
	if traceID.IsZero() {
		traceID = t.NewTraceID()
	}
	sp := &Span{
		tracer:    t,
		name:      method + " " + path,
		traceID:   traceID,
		spanID:    t.newSpanID(),
		parentID:  parent.SpanID,
		startWall: t.now(),
		simCycles: -1,
	}
	t.mu.Lock()
	t.inflight[traceID] = sp
	t.mu.Unlock()
	return sp
}

// FinishRequest completes one request's accounting: the summary lands in
// the finished-request ring, and — when the request was sampled — every
// unfinished span in the tree is flushed with the aborted attribute, the
// root is closed, and the tree moves from in-flight to the retained
// trace ring. Safe with sp == nil (the unsampled case) and on a nil
// tracer.
func (t *Tracer) FinishRequest(sp *Span, info ReqInfo) {
	if t == nil {
		return
	}
	sum := ReqSummary{
		TraceID:    info.TraceID,
		Method:     info.Method,
		Path:       info.Path,
		Status:     info.Status,
		Start:      info.Start,
		DurUS:      info.DurUS,
		Benchmark:  info.Benchmark,
		Cache:      info.Cache,
		ShedReason: info.ShedReason,
	}
	if sp != nil {
		if info.Status != 0 {
			sp.SetAttrInt("status", int64(info.Status))
		}
		if info.Benchmark != "" {
			sp.SetAttr("benchmark", info.Benchmark)
		}
		if info.Cache != "" {
			sp.SetAttr("cache", info.Cache)
		}
		if info.ShedReason != "" {
			sp.SetAttr("shed_reason", info.ShedReason)
		}
		// End the root cleanly before flushing: only children left
		// dangling (a 504's queue_wait, say) deserve the aborted attr.
		sp.End()
		sp.flushUnfinished()
		sum.Sampled = true
		snap := sp.snapshot(t.now())
		sum.Dominant, sum.DominantDepth, _ = snap.dominant()
		t.retain(sp)
	}
	t.mu.Lock()
	t.reqs[t.reqNext] = sum
	t.reqNext = (t.reqNext + 1) % len(t.reqs)
	if t.reqCount < len(t.reqs) {
		t.reqCount++
	}
	t.mu.Unlock()
}

// retain moves a finished sampled root from in-flight to the bounded
// trace ring, evicting the oldest retained trace when full.
func (t *Tracer) retain(sp *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.inflight, sp.traceID)
	if _, dup := t.finished[sp.traceID]; dup {
		// A reused trace id (client retry with the same traceparent)
		// replaces the retained tree in place rather than growing the
		// ring.
		t.finished[sp.traceID] = sp
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp.traceID)
	} else {
		delete(t.finished, t.ring[t.ringNext])
		t.ring[t.ringNext] = sp.traceID
		t.ringNext = (t.ringNext + 1) % len(t.ring)
	}
	t.finished[sp.traceID] = sp
}

// AbortInflight flushes every in-flight sampled request — drain and
// SIGTERM call this so no span tree is lost half-open: each tree's
// unfinished spans get the aborted attribute and the tree is retained
// as if the request had finished.
func (t *Tracer) AbortInflight() {
	if t == nil {
		return
	}
	t.mu.Lock()
	roots := make([]*Span, 0, len(t.inflight))
	for _, sp := range t.inflight {
		roots = append(roots, sp)
	}
	t.mu.Unlock()
	sort.Slice(roots, func(i, j int) bool { return roots[i].startWall.Before(roots[j].startWall) })
	for _, sp := range roots {
		sp.flushUnfinished()
		snap := sp.snapshot(t.now())
		dom, depth, _ := snap.dominant()
		t.retain(sp)
		t.mu.Lock()
		t.reqs[t.reqNext] = ReqSummary{
			TraceID:       sp.traceID.String(),
			Method:        methodOf(sp.name),
			Path:          pathOf(sp.name),
			Start:         snap.start,
			DurUS:         snap.durUS(),
			Sampled:       true,
			ShedReason:    "aborted_at_drain",
			Dominant:      dom,
			DominantDepth: depth,
		}
		t.reqNext = (t.reqNext + 1) % len(t.reqs)
		if t.reqCount < len(t.reqs) {
			t.reqCount++
		}
		t.mu.Unlock()
	}
}

// methodOf / pathOf split a root span name ("POST /run") back into its
// parts for drain-aborted summaries.
func methodOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ' ' {
			return name[:i]
		}
	}
	return name
}

func pathOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ' ' {
			return name[i+1:]
		}
	}
	return ""
}

// Lookup resolves a trace id string to its retained (or still in-flight)
// span tree.
func (t *Tracer) Lookup(id string) (*Span, bool) {
	if t == nil {
		return nil, false
	}
	tid, err := ParseTraceID(id)
	if err != nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp, ok := t.finished[tid]; ok {
		return sp, true
	}
	if sp, ok := t.inflight[tid]; ok {
		return sp, true
	}
	return nil, false
}

// Requests returns the introspection list: every in-flight sampled
// request plus the ring of recently finished ones, slowest first (the
// order an operator asking "why is p99 burning" wants). In-flight
// entries report elapsed time so far.
func (t *Tracer) Requests() []ReqSummary {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	out := make([]ReqSummary, 0, t.reqCount+len(t.inflight))
	inflight := make([]*Span, 0, len(t.inflight))
	for _, sp := range t.inflight {
		inflight = append(inflight, sp)
	}
	for i := 0; i < t.reqCount; i++ {
		out = append(out, t.reqs[(t.reqNext-1-i+len(t.reqs))%len(t.reqs)])
	}
	t.mu.Unlock()
	for _, sp := range inflight {
		out = append(out, ReqSummary{
			TraceID:   sp.TraceID().String(),
			Method:    methodOf(sp.Name()),
			Path:      pathOf(sp.Name()),
			Start:     sp.startWall,
			DurUS:     sp.Duration(now).Microseconds(),
			Sampled:   true,
			InFlight:  true,
			Benchmark: sp.Attr("benchmark"),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].DurUS > out[j].DurUS })
	return out
}

// InFlight returns the number of sampled requests currently open.
func (t *Tracer) InFlight() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.inflight)
}
