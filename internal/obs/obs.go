// Package obs is oldend's request-tracing layer: a zero-dependency span
// tree per sampled request, W3C traceparent propagation so context
// survives HTTP hops, and live introspection over the results.
//
// The simulator already answers "where did the cycles go" for one run
// (internal/trace records every migration and miss on the virtual
// clock); this package answers the same question one level up, for one
// *request* through the serving layer: admission → queue wait → cache
// probes → execution phases → serialization. A sampled request carries a
// per-request trace.Recorder down into the simulator, so a single export
// shows the service span tree and the simulation events under it — the
// paper's Table 2 discipline (attribute every cycle to a mechanism)
// applied to p99 latency instead of makespan.
//
// The cost discipline mirrors the trace recorder's: a nil *Span is the
// unsampled state, every method is nil-safe, and an unsampled request
// allocates no spans at all (pinned by an AllocsPerRun test). Sampling
// is decided once at admission — locally (1-in-N) or by honoring the
// sampled flag of an incoming traceparent, which is what lets a future
// router force-trace one request across process boundaries.
package obs

import (
	"encoding/hex"
	"errors"
)

// TraceID is the W3C trace-id: 16 bytes, all-zero meaning absent.
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the W3C parent-id: 8 bytes, all-zero meaning absent.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 hex characters into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, errBadTraceID
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, errBadTraceID
	}
	return t, nil
}

// Context is a propagated trace context: who the caller is (trace and
// parent span ids) and whether the trace is sampled.
type Context struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both ids are present (non-zero), per the W3C
// validity rules.
func (c Context) Valid() bool { return !c.TraceID.IsZero() && !c.SpanID.IsZero() }

// Traceparent renders the context in the W3C traceparent format:
// version 00, lowercase hex, the sampled bit in the trace-flags octet.
func (c Context) Traceparent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, c.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, c.SpanID[:])
	if c.Sampled {
		buf = append(buf, "-01"...)
	} else {
		buf = append(buf, "-00"...)
	}
	return string(buf)
}

// Traceparent parse errors. These are sentinels (not formatted) so that
// rejecting a header on the request hot path allocates nothing.
var (
	errEmptyTraceparent = errors.New("obs: empty traceparent")
	errBadTraceparent   = errors.New("obs: malformed traceparent")
	errBadVersion       = errors.New("obs: invalid traceparent version")
	errBadTraceID       = errors.New("obs: invalid trace-id")
	errBadSpanID        = errors.New("obs: invalid parent-id")
)

// ParseTraceparent parses a W3C traceparent header value:
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	   00       32 hex       16 hex       2 hex
//
// Per the spec: version ff is invalid; version 00 must be exactly 55
// characters; a higher version is parsed by its version-00 prefix as
// long as any extra content is "-"-separated. All-zero trace or parent
// ids are invalid. The empty string parses to the zero Context with an
// error, so absent headers cost one comparison and no allocation.
func ParseTraceparent(s string) (Context, error) {
	var c Context
	if s == "" {
		return c, errEmptyTraceparent
	}
	if len(s) < 55 {
		return c, errBadTraceparent
	}
	ver, ok := hexByte(s[0], s[1])
	if !ok || ver == 0xff {
		return c, errBadVersion
	}
	if ver == 0x00 && len(s) != 55 {
		return c, errBadTraceparent
	}
	if ver != 0x00 && len(s) > 55 && s[55] != '-' {
		return c, errBadTraceparent
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return c, errBadTraceparent
	}
	for i := 0; i < 16; i++ {
		b, ok := hexByte(s[3+2*i], s[4+2*i])
		if !ok {
			return Context{}, errBadTraceID
		}
		c.TraceID[i] = b
	}
	if c.TraceID.IsZero() {
		return Context{}, errBadTraceID
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(s[36+2*i], s[37+2*i])
		if !ok {
			return Context{}, errBadSpanID
		}
		c.SpanID[i] = b
	}
	if c.SpanID.IsZero() {
		return Context{}, errBadSpanID
	}
	flags, ok := hexByte(s[53], s[54])
	if !ok {
		return Context{}, errBadTraceparent
	}
	c.Sampled = flags&0x01 != 0
	return c, nil
}

// hexByte decodes two hex digits without allocating (hex.Decode needs a
// byte slice; header parsing runs per request).
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
