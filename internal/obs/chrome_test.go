package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/trace"
)

// buildSampledRequest assembles the span tree the server produces for a
// sampled /run that executed in the simulator, with nEvents simulation
// events recorded into a ring of capacity cap.
func buildSampledRequest(t *testing.T, clk *fakeClock, tr *Tracer, ringCap, nEvents int) (*Span, *trace.Recorder) {
	t.Helper()
	sp := tr.StartRequest("POST", "/run", Context{})
	if !sp.Sampled() {
		t.Fatal("request not sampled")
	}
	probe := sp.StartChild("cache_probe")
	probe.SetAttr("cache", "miss")
	probe.End()
	q := sp.StartChild("queue_wait")
	clk.Advance(2 * time.Millisecond)
	q.End()

	ex := sp.StartChild("execute")
	rec := trace.New(ringCap)
	ex.AttachSim(rec)
	site := rec.SiteID("treeadd.go:42")
	for i := 0; i < nEvents; i++ {
		rec.Emit(trace.Event{Kind: trace.EvCacheMiss, T: int64(i * 10), Dur: 34, Site: site, P: 0, Tid: 0})
	}
	ph := ex.StartChild("phase:kernel")
	clk.Advance(5 * time.Millisecond)
	ph.SetSimCycles(5000)
	ph.End()
	ex.SetSimCycles(5000)
	ex.End()

	ser := sp.StartChild("serialize")
	clk.Advance(time.Millisecond)
	ser.End()
	return sp, rec
}

func TestWriteChromeMergedExport(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1})
	sp, _ := buildSampledRequest(t, clk, tr, 64, 5)
	finish(tr, sp, clk, 0, ReqInfo{Method: "POST", Path: "/run", Status: 200, Benchmark: "treeadd"})

	var buf bytes.Buffer
	if err := WriteChrome(&buf, sp); err != nil {
		t.Fatal(err)
	}
	stats, err := trace.ValidateChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("merged export failed strict validation: %v\n%s", err, buf.String())
	}
	// Both clock domains must be present: service spans under pid 1000,
	// simulation events under simulated-processor pids.
	if stats.ByPid[1000] < 6 {
		t.Fatalf("service span events = %d, want >= 6 (root + 5 children)", stats.ByPid[1000])
	}
	if stats.ByPid[0] != 5 {
		t.Fatalf("sim events on proc 0 = %d, want 5", stats.ByPid[0])
	}
	if stats.ByCat["service"] == 0 || stats.ByCat["cache"] == 0 {
		t.Fatalf("missing category: %+v", stats.ByCat)
	}
	if stats.DroppedEvents != 0 {
		t.Fatalf("complete trace declares %d dropped events", stats.DroppedEvents)
	}
	// The sim timeline lives in simulated time, the service one in wall
	// time; both appear but under distinct process tracks.
	if !bytes.Contains(buf.Bytes(), []byte("oldend service (wall-clock")) {
		t.Fatal("service process name metadata missing")
	}
	if !bytes.Contains(buf.Bytes(), []byte(sp.TraceID().String())) {
		t.Fatal("trace id metadata missing")
	}
}

// TestDroppedSurfacedEverywhere is the satellite's contract: overflow a
// tiny ring and the drop count must appear in Profile.Format, the Chrome
// export metadata, and (via Dropped()) whatever metric the server exports.
func TestDroppedSurfacedEverywhere(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1})
	sp, rec := buildSampledRequest(t, clk, tr, 4, 10)
	finish(tr, sp, clk, 0, ReqInfo{Method: "POST", Path: "/run", Status: 200})

	if got := rec.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	text := rec.Profile().Format(5)
	if !bytes.Contains([]byte(text), []byte("dropped 6 events")) {
		t.Fatalf("Profile.Format does not surface drops:\n%s", text)
	}

	var buf bytes.Buffer
	if err := WriteChrome(&buf, sp); err != nil {
		t.Fatal(err)
	}
	stats, err := trace.ValidateChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedEvents != 6 {
		t.Fatalf("chrome metadata declares %d dropped, want 6", stats.DroppedEvents)
	}

	tree := Tree(sp)
	if tree.SimDropped != 6 {
		t.Fatalf("tree SimDropped = %d, want 6", tree.SimDropped)
	}
	if tree.SimEvents != 4 {
		t.Fatalf("tree SimEvents = %d, want 4 (ring capacity)", tree.SimEvents)
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	clk := newFakeClock()
	tr := newTestTracer(clk, Config{SampleEvery: 1})
	sp, _ := buildSampledRequest(t, clk, tr, 64, 3)
	finish(tr, sp, clk, 0, ReqInfo{Method: "POST", Path: "/run", Status: 200, Benchmark: "treeadd"})

	b, err := json.Marshal(Tree(sp))
	if err != nil {
		t.Fatal(err)
	}
	var back TraceTree
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != sp.TraceID().String() {
		t.Fatalf("trace id lost in round trip: %q", back.TraceID)
	}
	if back.Dominant == "" || back.Root.Name != "POST /run" {
		t.Fatalf("tree shape lost: %+v", back)
	}
	names := map[string]bool{}
	for _, c := range back.Root.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"cache_probe", "queue_wait", "execute", "serialize"} {
		if !names[want] {
			t.Fatalf("child %q missing from tree: %v", want, names)
		}
	}
	var exec *SpanTree
	for i := range back.Root.Children {
		if back.Root.Children[i].Name == "execute" {
			exec = &back.Root.Children[i]
		}
	}
	if exec == nil || exec.SimCycles != 5000 {
		t.Fatalf("execute sim_cycles lost: %+v", exec)
	}
}

func TestWriteChromeNilSpan(t *testing.T) {
	if err := WriteChrome(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("WriteChrome(nil) succeeded")
	}
}
