// Package mem implements the distributed heap: each simulated processor owns
// one word-addressable heap section, and allocation requests name the
// processor the object should live on (the paper's ALLOC library routine).
package mem

import (
	"fmt"
	"sync"

	"repro/internal/gaddr"
)

// Heap is one processor's section of the distributed heap. The unit of
// addressing is the byte (to match gaddr offsets and the paper's page/line
// geometry) but all accesses are whole 8-byte words.
//
// A Heap is safe for concurrent use: threads "located" on other processors
// reach into a home heap for write-through stores and line fetches.
type Heap struct {
	proc int

	mu    sync.Mutex
	words []uint64 // heap storage; index = byte offset / WordBytes
	next  uint32   // bump-allocation cursor (byte offset)
	limit uint32   // exclusive upper bound on offsets
}

// NewHeap creates the heap section for processor proc with the given
// capacity in bytes (rounded up to a whole page). The first page is
// reserved so that the nil global pointer ⟨0,0⟩ is never a valid address.
func NewHeap(proc int, capacity uint32) *Heap {
	if capacity > gaddr.MaxOffset {
		capacity = gaddr.MaxOffset
	}
	pages := (capacity + gaddr.PageBytes - 1) / gaddr.PageBytes
	if pages < 2 {
		pages = 2
	}
	return &Heap{
		proc:  proc,
		next:  gaddr.PageBytes, // reserve page 0
		limit: pages * gaddr.PageBytes,
	}
}

// Proc returns the owning processor's name.
func (h *Heap) Proc() int { return h.proc }

// Alloc carves nbytes out of the heap and returns the global pointer to it.
// Objects are word-aligned. Alloc never returns nil: exhausting a heap
// section is a configuration error and panics with a sizing hint.
func (h *Heap) Alloc(nbytes uint32) gaddr.GP {
	if nbytes == 0 {
		nbytes = gaddr.WordBytes
	}
	nbytes = (nbytes + gaddr.WordBytes - 1) &^ uint32(gaddr.WordBytes-1)
	h.mu.Lock()
	off := h.next
	if off+nbytes > h.limit || off+nbytes < off {
		h.mu.Unlock()
		panic(fmt.Sprintf("mem: heap section of processor %d exhausted (%d bytes in use, %d requested, limit %d); raise Config.HeapBytesPerProc",
			h.proc, off, nbytes, h.limit))
	}
	h.next = off + nbytes
	need := int((off + nbytes) / gaddr.WordBytes)
	if need > len(h.words) {
		grown := make([]uint64, max(need*2, int(4*gaddr.WordsPerPage)))
		copy(grown, h.words)
		h.words = grown
	}
	h.mu.Unlock()
	return gaddr.Pack(h.proc, off)
}

// InUse reports the number of allocated bytes (excluding the reserved page).
func (h *Heap) InUse() uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next - gaddr.PageBytes
}

func (h *Heap) wordIndex(off uint32) int {
	if off%gaddr.WordBytes != 0 {
		panic(fmt.Sprintf("mem: misaligned access at offset %#x on processor %d", off, h.proc))
	}
	return int(off / gaddr.WordBytes)
}

// LoadWord reads the word at byte offset off.
func (h *Heap) LoadWord(off uint32) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := h.wordIndex(off)
	if i >= len(h.words) {
		panic(fmt.Sprintf("mem: load beyond allocation at %#x on processor %d", off, h.proc))
	}
	return h.words[i]
}

// StoreWord writes the word at byte offset off.
func (h *Heap) StoreWord(off uint32, v uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := h.wordIndex(off)
	if i >= len(h.words) {
		panic(fmt.Sprintf("mem: store beyond allocation at %#x on processor %d", off, h.proc))
	}
	h.words[i] = v
}

// CopyLineOut copies the cache line starting at byte offset lineOff (which
// must be line-aligned) into dst, which must hold WordsPerLine words. This
// is the home-side service of a cache line fetch.
func (h *Heap) CopyLineOut(lineOff uint32, dst []uint64) {
	if lineOff%gaddr.LineBytes != 0 {
		panic(fmt.Sprintf("mem: CopyLineOut at unaligned offset %#x", lineOff))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := int(lineOff / gaddr.WordBytes)
	for w := 0; w < gaddr.WordsPerLine; w++ {
		if i+w < len(h.words) {
			dst[w] = h.words[i+w]
		} else {
			dst[w] = 0
		}
	}
}

// FoldFingerprint folds the heap section's allocated contents (and its
// allocation cursor) into a running FNV-1a hash and returns the new hash.
// Differential tests compare fingerprints across coherence schemes: since
// every write — cached or not — goes through to the home heap, runs that
// compute the same result must leave byte-identical heaps.
func (h *Heap) FoldFingerprint(hash uint64) uint64 {
	const prime = 1099511628211
	h.mu.Lock()
	defer h.mu.Unlock()
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			hash ^= v & 0xff
			hash *= prime
			v >>= 8
		}
	}
	fold(uint64(h.proc))
	fold(uint64(h.next))
	words := int(h.next / gaddr.WordBytes)
	if words > len(h.words) {
		words = len(h.words)
	}
	// Skip the reserved nil page: it is never addressable.
	for i := int(gaddr.WordsPerPage); i < words; i++ {
		fold(h.words[i])
	}
	return hash
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Snapshot copies the heap section's allocated contents and allocation
// cursor into a compact image. The image is immutable and safe to share:
// Restore copies out of it, never aliases it.
func (h *Heap) Snapshot() HeapImage {
	h.mu.Lock()
	defer h.mu.Unlock()
	words := int(h.next / gaddr.WordBytes)
	if words > len(h.words) {
		words = len(h.words)
	}
	img := HeapImage{Proc: h.proc, Next: h.next, Words: make([]uint64, words)}
	copy(img.Words, h.words[:words])
	return img
}

// Restore overwrites the heap section with a previously captured image.
// The image must come from a heap of the same processor; the section's
// capacity must be able to hold it.
func (h *Heap) Restore(img HeapImage) {
	if img.Proc != h.proc {
		panic(fmt.Sprintf("mem: restoring processor %d image onto processor %d", img.Proc, h.proc))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if img.Next > h.limit {
		panic(fmt.Sprintf("mem: heap image (%d bytes) exceeds section limit %d on processor %d",
			img.Next, h.limit, h.proc))
	}
	if len(img.Words) > len(h.words) {
		h.words = make([]uint64, len(img.Words))
	}
	n := copy(h.words, img.Words)
	for i := n; i < len(h.words); i++ {
		h.words[i] = 0
	}
	h.next = img.Next
}

// HeapImage is one processor's captured heap section: the allocated words
// and the bump cursor, enough to reproduce the section bit for bit.
type HeapImage struct {
	Proc  int
	Next  uint32
	Words []uint64
}
