package mem

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/gaddr"
)

func TestAllocReservesNilPage(t *testing.T) {
	h := NewHeap(0, 1<<16)
	g := h.Alloc(8)
	if g.IsNil() {
		t.Fatal("first allocation must not be nil")
	}
	if g.Off() < gaddr.PageBytes {
		t.Fatalf("first allocation %v lands in the reserved page", g)
	}
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	h := NewHeap(2, 1<<16)
	var prevEnd uint32 = gaddr.PageBytes
	for i, n := range []uint32{1, 7, 8, 9, 24, 64, 100} {
		g := h.Alloc(n)
		if g.Proc() != 2 {
			t.Fatalf("alloc %d on wrong processor: %v", i, g)
		}
		if g.Off()%gaddr.WordBytes != 0 {
			t.Fatalf("alloc %d misaligned: %v", i, g)
		}
		if g.Off() < prevEnd {
			t.Fatalf("alloc %d overlaps previous: off %#x < %#x", i, g.Off(), prevEnd)
		}
		rounded := (n + gaddr.WordBytes - 1) &^ uint32(gaddr.WordBytes-1)
		if rounded == 0 {
			rounded = gaddr.WordBytes
		}
		prevEnd = g.Off() + rounded
	}
}

func TestLoadStore(t *testing.T) {
	h := NewHeap(1, 1<<16)
	g := h.Alloc(32)
	h.StoreWord(g.Off(), 0xdeadbeef)
	h.StoreWord(g.Off()+8, 42)
	if v := h.LoadWord(g.Off()); v != 0xdeadbeef {
		t.Fatalf("load = %#x", v)
	}
	if v := h.LoadWord(g.Off() + 8); v != 42 {
		t.Fatalf("load = %d", v)
	}
}

func TestMisalignedPanics(t *testing.T) {
	h := NewHeap(0, 1<<16)
	g := h.Alloc(16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned access")
		}
	}()
	h.LoadWord(g.Off() + 3)
}

func TestExhaustionPanics(t *testing.T) {
	h := NewHeap(0, 2*gaddr.PageBytes)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on heap exhaustion")
		}
	}()
	for i := 0; i < 10_000; i++ {
		h.Alloc(1024)
	}
}

func TestCopyLineOut(t *testing.T) {
	h := NewHeap(0, 1<<16)
	g := h.Alloc(gaddr.LineBytes * 2)
	// Align to the next line boundary manually for the test.
	lineOff := (g.Off() + gaddr.LineBytes - 1) &^ uint32(gaddr.LineBytes-1)
	for w := uint32(0); w < gaddr.WordsPerLine; w++ {
		h.StoreWord(lineOff+w*8, uint64(100+w))
	}
	dst := make([]uint64, gaddr.WordsPerLine)
	h.CopyLineOut(lineOff, dst)
	for w, v := range dst {
		if v != uint64(100+w) {
			t.Fatalf("dst[%d] = %d", w, v)
		}
	}
}

func TestCopyLineOutBeyondAllocationIsZero(t *testing.T) {
	h := NewHeap(0, 1<<20)
	g := h.Alloc(8)
	h.StoreWord(g.Off(), 7)
	// Fetch a line in allocated address space but beyond backing storage.
	base := (g.Off() &^ uint32(gaddr.LineBytes-1)) + 16*gaddr.LineBytes
	dst := make([]uint64, gaddr.WordsPerLine)
	h.CopyLineOut(base, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("expected zero at %d, got %d", i, v)
		}
	}
}

func TestConcurrentAlloc(t *testing.T) {
	h := NewHeap(0, 1<<22)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	got := make([][]gaddr.GP, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got[w] = append(got[w], h.Alloc(24))
			}
		}(w)
	}
	wg.Wait()
	seen := map[gaddr.GP]bool{}
	for _, list := range got {
		for _, g := range list {
			if seen[g] {
				t.Fatalf("duplicate allocation %v", g)
			}
			seen[g] = true
		}
	}
}

func TestStoreLoadQuick(t *testing.T) {
	h := NewHeap(3, 1<<20)
	base := h.Alloc(1 << 12)
	f := func(slot uint16, v uint64) bool {
		off := base.Off() + uint32(slot%512)*8
		h.StoreWord(off, v)
		return h.LoadWord(off) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
