package cache

import (
	"math/rand"
	"testing"

	"repro/internal/gaddr"
)

// lineAddr builds a global pointer on proc 0 at the given page index and
// line.
func lineAddr(page, line int) gaddr.GP {
	return gaddr.Pack(0, uint32(page*gaddr.PageBytes+line*gaddr.LineBytes))
}

// TestHitProbeEquivalenceTable drives the fast path and the slow path
// through every reachable line state and requires them to agree: Hit must
// report ok exactly when Probe would find the line valid on a non-stale,
// already-resident page, and both must resolve the same entry.
func TestHitProbeEquivalenceTable(t *testing.T) {
	line0 := make([]uint64, gaddr.WordsPerLine)
	cases := []struct {
		name  string
		setup func(c *Cache, g gaddr.GP)
		ok    bool
	}{
		{"absent page", func(c *Cache, g gaddr.GP) {}, false},
		{"present page, invalid line", func(c *Cache, g gaddr.GP) {
			c.Probe(g)
		}, false},
		{"valid line", func(c *Cache, g gaddr.GP) {
			e, _, _ := c.Probe(g)
			c.InstallLine(e, gaddr.LineOf(g), line0)
		}, true},
		{"valid but stale", func(c *Cache, g gaddr.GP) {
			e, _, _ := c.Probe(g)
			c.InstallLine(e, gaddr.LineOf(g), line0)
			c.MarkAllStale()
		}, false},
		{"stale then refreshed, line untouched", func(c *Cache, g gaddr.GP) {
			e, _, _ := c.Probe(g)
			c.InstallLine(e, gaddr.LineOf(g), line0)
			c.MarkAllStale()
			c.Refresh(e, 0, 7)
		}, true},
		{"stale then refreshed, line changed at home", func(c *Cache, g gaddr.GP) {
			e, _, _ := c.Probe(g)
			c.InstallLine(e, gaddr.LineOf(g), line0)
			c.MarkAllStale()
			c.Refresh(e, 1<<uint(gaddr.LineOf(g)), 7)
		}, false},
		{"valid line invalidated", func(c *Cache, g gaddr.GP) {
			e, _, _ := c.Probe(g)
			c.InstallLine(e, gaddr.LineOf(g), line0)
			c.InvalidateAll()
		}, false},
		{"neighbouring line valid only", func(c *Cache, g gaddr.GP) {
			e, _, _ := c.Probe(g)
			c.InstallLine(e, gaddr.LineOf(g)+1, line0)
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New()
			g := lineAddr(3, 2)
			tc.setup(c, g)
			e, ok := c.Hit(g)
			if ok != tc.ok {
				t.Fatalf("Hit ok = %v; want %v", ok, tc.ok)
			}
			// The slow path must agree with the fast path's verdict and,
			// when the page is resident, resolve the identical entry.
			before := c.Entries()
			pe, pageNew, lineValid := c.Probe(g)
			slowOK := !pageNew && lineValid && !pe.Stale
			if slowOK != tc.ok {
				t.Fatalf("Probe-derived ok = %v; want %v", slowOK, tc.ok)
			}
			if e != nil && e != pe {
				t.Fatalf("fast and slow paths resolved different entries")
			}
			if !pageNew && c.Entries() != before {
				t.Fatalf("Probe of a resident page changed entry count")
			}
		})
	}
}

// modelPage is the oracle's view of one cached page.
type modelPage struct {
	valid uint32
	stale bool
}

// TestHitProbeEquivalenceRandom replays a long randomized operation
// sequence against both the cache and a flat model, checking after every
// step that (1) Hit agrees with the model's present/valid/stale state,
// (2) Hit never mutates the table — entry count, insertion order (keys)
// and line states are bit-identical before and after, and (3) Probe's
// pageNew/lineValid agree with the model. Insertion order is the hash
// table's analogue of the LRU eviction-order property: entries enter at
// the head of their bucket chain and never move.
func TestHitProbeEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	c := New()
	model := map[gaddr.PageID]*modelPage{}
	var insertion []gaddr.PageID // pages in model insertion order
	line0 := make([]uint64, gaddr.WordsPerLine)

	// expectKeys derives the cache's expected keys() from the model: per
	// bucket, pages inserted into that bucket, newest first.
	expectKeys := func() []gaddr.PageID {
		var out []gaddr.PageID
		for b := 0; b < NumBuckets; b++ {
			for i := len(insertion) - 1; i >= 0; i-- {
				if bucketOf(insertion[i]) == b {
					out = append(out, insertion[i])
				}
			}
		}
		return out
	}
	sameKeys := func(a, b []gaddr.PageID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	const pages, lines, steps = 40, 8, 4000
	randAddr := func() gaddr.GP { return lineAddr(rng.Intn(pages), rng.Intn(lines)) }

	for step := 0; step < steps; step++ {
		g := randAddr()
		p := gaddr.PageOf(g)
		line := gaddr.LineOf(g)
		switch op := rng.Intn(10); {
		case op < 4: // probe (+ install on miss), like a cache access
			e, pageNew, lineValid := c.Probe(g)
			m := model[p]
			if pageNew != (m == nil) {
				t.Fatalf("step %d: Probe pageNew = %v with model presence %v", step, pageNew, m != nil)
			}
			if m == nil {
				m = &modelPage{}
				model[p] = m
				insertion = append(insertion, p)
			}
			if lineValid != (m.valid&(1<<uint(line)) != 0) {
				t.Fatalf("step %d: Probe lineValid = %v; model says %v", step, lineValid, !lineValid)
			}
			if !lineValid {
				c.InstallLine(e, line, line0)
				m.valid |= 1 << uint(line)
			}
		case op < 5: // whole-cache invalidation (local scheme)
			c.InvalidateAll()
			for _, m := range model {
				m.valid = 0
				m.stale = false
			}
		case op < 6: // line invalidation (global scheme)
			mask := rng.Uint32()
			c.InvalidateLines(p, mask)
			if m := model[p]; m != nil {
				m.valid &^= mask
			}
		case op < 7: // mark stale (bilateral migration receive)
			c.MarkAllStale()
			for _, m := range model {
				if m.valid != 0 {
					m.stale = true
				}
			}
		case op < 8: // refresh (bilateral stamp check)
			if e, _ := c.Hit(g); e != nil {
				changed := rng.Uint32()
				c.Refresh(e, changed, uint32(step))
				m := model[p]
				m.valid &^= changed
				m.stale = false
			}
		default: // pure fast-path lookups
			e, ok := c.Hit(g)
			m := model[p]
			wantOK := m != nil && !m.stale && m.valid&(1<<uint(line)) != 0
			if ok != wantOK {
				t.Fatalf("step %d: Hit ok = %v; model wants %v", step, ok, wantOK)
			}
			if (e != nil) != (m != nil) {
				t.Fatalf("step %d: Hit presence %v; model presence %v", step, e != nil, m != nil)
			}
		}
		// After every op: Hit is read-only and the table matches the model.
		before := c.keys()
		entries := c.Entries()
		for i := 0; i < 4; i++ {
			c.Hit(randAddr())
		}
		if c.Entries() != entries {
			t.Fatalf("step %d: Hit changed entry count", step)
		}
		if after := c.keys(); !sameKeys(before, after) {
			t.Fatalf("step %d: Hit disturbed insertion order\n before: %v\n after:  %v", step, before, after)
		}
		if want := expectKeys(); !sameKeys(before, want) {
			t.Fatalf("step %d: table order diverged from model\n got:  %v\n want: %v", step, before, want)
		}
	}
}
