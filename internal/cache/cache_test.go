package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/gaddr"
)

func addr(proc int, off uint32) gaddr.GP { return gaddr.Pack(proc, off) }

func TestProbeAllocatesOnce(t *testing.T) {
	c := New()
	g := addr(1, 3*gaddr.PageBytes+2*gaddr.LineBytes)
	e1, pageNew, lineValid := c.Probe(g)
	if !pageNew || lineValid {
		t.Fatalf("first probe: pageNew=%v lineValid=%v", pageNew, lineValid)
	}
	e2, pageNew2, _ := c.Probe(g.Add(8))
	if pageNew2 || e1 != e2 {
		t.Fatal("second probe must reuse the entry")
	}
	if c.Entries() != 1 || c.PagesAllocated() != 1 {
		t.Fatalf("entries=%d allocs=%d", c.Entries(), c.PagesAllocated())
	}
}

func TestInstallAndReadWrite(t *testing.T) {
	c := New()
	g := addr(2, 5*gaddr.PageBytes+7*gaddr.LineBytes+16)
	e, _, _ := c.Probe(g)
	line := gaddr.LineOf(g)
	words := make([]uint64, gaddr.WordsPerLine)
	for i := range words {
		words[i] = uint64(1000 + i)
	}
	c.InstallLine(e, line, words)
	if _, _, valid := c.Probe(g); !valid {
		t.Fatal("line must be valid after install")
	}
	pageOff := g.Off() % gaddr.PageBytes
	if v := c.ReadWord(e, pageOff); v != 1002 {
		t.Fatalf("read = %d; want 1002 (word 2 of line)", v)
	}
	c.WriteWord(e, pageOff, 77)
	if v := c.ReadWord(e, pageOff); v != 77 {
		t.Fatalf("after write read = %d", v)
	}
	// Other lines of the page stay invalid.
	other := gaddr.PageOf(g).Base().Add(uint32((line + 1) % gaddr.LinesPerPage * gaddr.LineBytes))
	if _, _, valid := c.Probe(other); valid {
		t.Fatal("adjacent line must not become valid")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New()
	words := make([]uint64, gaddr.WordsPerLine)
	for p := 0; p < 4; p++ {
		g := addr(p, gaddr.PageBytes)
		e, _, _ := c.Probe(g)
		c.InstallLine(e, 0, words)
	}
	c.InvalidateAll()
	for p := 0; p < 4; p++ {
		if _, pageNew, valid := c.Probe(addr(p, gaddr.PageBytes)); valid || pageNew {
			t.Fatalf("proc %d: valid=%v pageNew=%v; entries persist but lines invalidate", p, valid, pageNew)
		}
	}
}

func TestInvalidateHomes(t *testing.T) {
	c := New()
	words := make([]uint64, gaddr.WordsPerLine)
	for p := 0; p < 4; p++ {
		e, _, _ := c.Probe(addr(p, gaddr.PageBytes))
		c.InstallLine(e, 0, words)
	}
	c.InvalidateHomes(1<<1 | 1<<3)
	for p := 0; p < 4; p++ {
		_, _, valid := c.Probe(addr(p, gaddr.PageBytes))
		wantValid := p == 0 || p == 2
		if valid != wantValid {
			t.Fatalf("proc %d: valid=%v want %v", p, valid, wantValid)
		}
	}
}

func TestInvalidateLines(t *testing.T) {
	c := New()
	g := addr(1, gaddr.PageBytes)
	e, _, _ := c.Probe(g)
	words := make([]uint64, gaddr.WordsPerLine)
	c.InstallLine(e, 0, words)
	c.InstallLine(e, 5, words)
	c.InstallLine(e, 9, words)
	if cleared := c.InvalidateLines(gaddr.PageOf(g), 1<<5|1<<31); cleared != 1<<5 {
		t.Fatalf("cleared = %#x; only the valid line 5 was discarded", cleared)
	}
	if e.Valid != 1<<0|1<<9 {
		t.Fatalf("valid mask = %#x", e.Valid)
	}
	if cleared := c.InvalidateLines(gaddr.PageID(addr(7, gaddr.PageBytes)), 1); cleared != 0 {
		t.Fatal("absent page must clear nothing")
	}
}

func TestStaleAndRefresh(t *testing.T) {
	c := New()
	g := addr(0, gaddr.PageBytes)
	e, _, _ := c.Probe(g)
	words := make([]uint64, gaddr.WordsPerLine)
	c.InstallLine(e, 0, words)
	c.InstallLine(e, 1, words)
	c.MarkAllStale()
	if !e.Stale {
		t.Fatal("entry must be stale")
	}
	c.Refresh(e, 1<<0, 42)
	if e.Stale || e.Stamp != 42 {
		t.Fatalf("after refresh: stale=%v stamp=%d", e.Stale, e.Stamp)
	}
	if e.Valid != 1<<1 {
		t.Fatalf("valid = %#x; changed line must be dropped", e.Valid)
	}
}

func TestMarkAllStaleSkipsEmptyEntries(t *testing.T) {
	c := New()
	e, _, _ := c.Probe(addr(0, gaddr.PageBytes))
	c.MarkAllStale()
	if e.Stale {
		t.Fatal("entry with no valid lines need not be stale")
	}
}

func TestClear(t *testing.T) {
	c := New()
	c.Probe(addr(0, gaddr.PageBytes))
	c.Probe(addr(1, gaddr.PageBytes))
	c.Clear()
	if c.Entries() != 0 {
		t.Fatal("clear must drop entries")
	}
	if c.PagesAllocated() != 2 {
		t.Fatal("allocation count is cumulative")
	}
}

func TestChainLengthApproxOne(t *testing.T) {
	// The paper: "in our experience, the average chain length is
	// approximately one." With a few hundred pages spread across
	// processors the 1K-bucket table should stay near one.
	c := New()
	for p := 0; p < 8; p++ {
		for pg := uint32(1); pg <= 40; pg++ {
			c.Probe(addr(p, pg*gaddr.PageBytes))
		}
	}
	if avg := c.AvgChainLength(); avg > 1.6 {
		t.Fatalf("avg chain length %.2f; want ≈1", avg)
	}
}

func TestReadYourWritesQuick(t *testing.T) {
	c := New()
	f := func(proc uint8, page uint8, word uint8, v uint64) bool {
		g := addr(int(proc%8), (1+uint32(page%16))*gaddr.PageBytes+uint32(word)%gaddr.WordsPerPage*8)
		e, _, _ := c.Probe(g)
		pageOff := g.Off() % gaddr.PageBytes
		c.WriteWord(e, pageOff, v)
		return c.ReadWord(e, pageOff) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
