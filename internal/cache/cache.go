// Package cache implements Olden's software cache (paper §3.2, Figure 1).
//
// Each processor uses its local memory as a large, fully-associative,
// write-through cache. Allocation is at the page level (2 KB) and transfer
// at the line level (64 bytes). Because the CM-5 gives no virtual-memory
// support, translation uses a 1024-bucket hash table with a list of pages
// kept in each bucket; each entry carries a tag (the local copy) and one
// valid bit per line — 32 bits per page with the paper's geometry.
package cache

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/gaddr"
)

// NumBuckets is the size of the translation hash table ("a 1K hash table
// with a list of pages kept in each bucket").
const NumBuckets = 1024

// slabEntries sizes the entry and page-data slabs: page entries are carved
// out of block allocations instead of being allocated one by one, so a
// kernel faulting in thousands of pages costs dozens of allocations, not
// thousands, and entries born together sit contiguously in memory.
const slabEntries = 64

// Entry is one cached page: the tag used to translate global to local
// pointers, the per-line valid bits, and — for the coherence schemes of
// Appendix A — a staleness mark and the home timestamp at last sync.
type Entry struct {
	Page  gaddr.PageID
	Valid uint32 // bit i set ⇒ line i holds current data
	Stale bool   // bilateral scheme: must timestamp-check before next use
	Stamp uint32 // bilateral scheme: home page timestamp at last sync
	Data  []uint64
	next  *Entry
}

// Cache is one processor's software cache. It is NOT internally locked:
// every simulation-path method is only ever invoked by the virtual-time
// active thread, and the scheduler's handoffs order those accesses across
// goroutines. The one reader outside that discipline — a metrics scrape of
// PagesAllocated mid-run — reads an atomic counter.
type Cache struct {
	buckets [NumBuckets]*Entry
	entries int
	allocs  atomic.Int64 // pages ever allocated (Table 3 "Total Pages Cached")

	// slab and arena are the block-allocation cursors entries and their
	// page data are carved from.
	slab  []Entry
	arena []uint64
}

// New returns an empty cache.
func New() *Cache { return &Cache{} }

func bucketOf(p gaddr.PageID) int {
	v := uint32(p) / gaddr.PageBytes
	return int((v ^ v>>10 ^ v>>20) % NumBuckets)
}

func (c *Cache) find(p gaddr.PageID) *Entry {
	for e := c.buckets[bucketOf(p)]; e != nil; e = e.next {
		if e.Page == p {
			return e
		}
	}
	return nil
}

// alloc carves a fresh entry (with zeroed page data) out of the slabs and
// links it into its bucket.
func (c *Cache) alloc(p gaddr.PageID) *Entry {
	if len(c.slab) == 0 {
		c.slab = make([]Entry, slabEntries)
	}
	e := &c.slab[0]
	c.slab = c.slab[1:]
	if len(c.arena) < gaddr.WordsPerPage {
		c.arena = make([]uint64, gaddr.WordsPerPage*slabEntries)
	}
	e.Data = c.arena[:gaddr.WordsPerPage:gaddr.WordsPerPage]
	c.arena = c.arena[gaddr.WordsPerPage:]
	e.Page = p
	b := bucketOf(p)
	e.next = c.buckets[b]
	c.buckets[b] = e
	c.entries++
	c.allocs.Add(1)
	return e
}

// Hit is the resident-line fast path: one hash-chain walk deciding whether
// the line containing g can be served from the cache with no further
// protocol work — page present, line valid, entry not marked stale. When
// it returns ok=false the caller falls back to Probe (and, under the
// bilateral scheme, the timestamp check), which re-derives the same state;
// Hit itself never allocates and never mutates the cache.
func (c *Cache) Hit(g gaddr.GP) (e *Entry, ok bool) {
	e = c.find(gaddr.PageOf(g))
	if e == nil || e.Stale || e.Valid&(1<<uint(gaddr.LineOf(g))) == 0 {
		return e, false
	}
	return e, true
}

// Probe looks up the page containing g, allocating an entry if the page is
// not present. It reports whether the page was newly allocated and whether
// the line containing g is valid. The entry's Stale flag is returned so the
// caller can run the bilateral scheme's timestamp check before trusting
// valid bits.
func (c *Cache) Probe(g gaddr.GP) (e *Entry, pageNew, lineValid bool) {
	p := gaddr.PageOf(g)
	line := gaddr.LineOf(g)
	e = c.find(p)
	if e == nil {
		e = c.alloc(p)
		pageNew = true
	}
	lineValid = e.Valid&(1<<uint(line)) != 0
	return e, pageNew, lineValid
}

// LineState reads an entry's valid bit for one line and its staleness mark.
func (c *Cache) LineState(e *Entry, line int) (valid, stale bool) {
	return e.Valid&(1<<uint(line)) != 0, e.Stale
}

// InstallLine copies a fetched 64-byte line into the entry and marks it
// valid.
func (c *Cache) InstallLine(e *Entry, line int, words []uint64) {
	copy(e.Data[line*gaddr.WordsPerLine:(line+1)*gaddr.WordsPerLine], words)
	e.Valid |= 1 << uint(line)
}

// ReadWord reads the word at byte offset pageOff within the cached page.
func (c *Cache) ReadWord(e *Entry, pageOff uint32) uint64 {
	return e.Data[pageOff/gaddr.WordBytes]
}

// WriteWord updates the local copy (the home copy is updated separately by
// the write-through).
func (c *Cache) WriteWord(e *Entry, pageOff uint32, v uint64) {
	e.Data[pageOff/gaddr.WordBytes] = v
}

// InvalidateAll clears every valid bit (local-knowledge scheme: "each
// processor invalidates its entire cache upon receiving a migration").
// Page entries stay allocated so hash chains stay short and the pages-
// cached statistic is cumulative. It returns the number of lines that
// were actually valid — the data the flush really discarded, which the
// trace layer records to expose over-invalidation.
func (c *Cache) InvalidateAll() (lines int) {
	for b := range c.buckets {
		for e := c.buckets[b]; e != nil; e = e.next {
			lines += bits.OnesCount32(e.Valid)
			e.Valid = 0
			e.Stale = false
		}
	}
	return lines
}

// InvalidateHomes clears valid bits of every line whose page is homed on a
// processor named in procMask (bit p set ⇒ processor p). This is the
// refined local-knowledge rule for returns: "we need only invalidate cached
// copies of lines from processors whose memories have been written by the
// returning thread." It returns the number of valid lines discarded.
func (c *Cache) InvalidateHomes(procMask uint64) (lines int) {
	for b := range c.buckets {
		for e := c.buckets[b]; e != nil; e = e.next {
			if procMask&(1<<uint(e.Page.Proc())) != 0 {
				lines += bits.OnesCount32(e.Valid)
				e.Valid = 0
				e.Stale = false
			}
		}
	}
	return lines
}

// InvalidateLines clears the given lines of one page if it is cached
// (global-knowledge scheme invalidation message). It returns the mask of
// lines that were actually valid and got cleared: zero means the message
// was spurious — the sharer-tracking is page-grained, so a sharer may
// receive invalidations for lines it never cached (the "spurious
// invalidation messages" the paper notes in Appendix A).
func (c *Cache) InvalidateLines(p gaddr.PageID, lineMask uint32) (cleared uint32) {
	e := c.find(p)
	if e == nil {
		return 0
	}
	cleared = e.Valid & lineMask
	e.Valid &^= lineMask
	return cleared
}

// MarkAllStale marks every cached page stale (bilateral scheme: "on
// receiving a migration, a processor marks all of its pages, so that they
// miss on the first access"). It returns the number of pages marked.
func (c *Cache) MarkAllStale() (pages int) {
	for b := range c.buckets {
		for e := c.buckets[b]; e != nil; e = e.next {
			if e.Valid != 0 {
				e.Stale = true
				pages++
			}
		}
	}
	return pages
}

// Refresh completes a bilateral timestamp check: lines written at home
// since the entry's stamp are invalidated, the stamp advances, and the
// staleness mark clears. It returns the number of valid lines the refresh
// discarded (like the other invalidation paths).
func (c *Cache) Refresh(e *Entry, changed uint32, newStamp uint32) (lines int) {
	lines = bits.OnesCount32(e.Valid & changed)
	e.Valid &^= changed
	e.Stamp = newStamp
	e.Stale = false
	return lines
}

// Clear drops every entry (used between benchmark phases). The slabs are
// dropped too: entries carved before the clear keep whole blocks alive,
// so reusing their tails would only delay reclamation.
func (c *Cache) Clear() {
	for b := range c.buckets {
		c.buckets[b] = nil
	}
	c.entries = 0
	c.slab = nil
	c.arena = nil
}

// keys returns every cached page in bucket order, each hash chain walked
// newest-insertion-first — the same introspection idiom as the serving
// layer's generic-LRU keys(). The software cache never evicts (entries
// persist until Clear), so chain position is pure insertion order; the
// fast-path equivalence tests assert through this that Hit never disturbs
// the table.
func (c *Cache) keys() []gaddr.PageID {
	out := make([]gaddr.PageID, 0, c.entries)
	for b := range c.buckets {
		for e := c.buckets[b]; e != nil; e = e.next {
			out = append(out, e.Page)
		}
	}
	return out
}

// Entries returns the number of live page entries.
func (c *Cache) Entries() int { return c.entries }

// PagesAllocated returns the cumulative number of page entries allocated.
// Unlike every other method it may be called from outside the virtual-time
// discipline (the metrics registry scrapes it mid-run), hence the atomic.
func (c *Cache) PagesAllocated() int64 { return c.allocs.Load() }

// AvgChainLength returns the mean hash-chain length over non-empty buckets;
// the paper reports this is approximately one in practice.
func (c *Cache) AvgChainLength() float64 {
	used := 0
	for b := range c.buckets {
		if c.buckets[b] != nil {
			used++
		}
	}
	if used == 0 {
		return 0
	}
	return float64(c.entries) / float64(used)
}
