// Package cache implements Olden's software cache (paper §3.2, Figure 1).
//
// Each processor uses its local memory as a large, fully-associative,
// write-through cache. Allocation is at the page level (2 KB) and transfer
// at the line level (64 bytes). Because the CM-5 gives no virtual-memory
// support, translation uses a 1024-bucket hash table with a list of pages
// kept in each bucket; each entry carries a tag (the local copy) and one
// valid bit per line — 32 bits per page with the paper's geometry.
package cache

import (
	"math/bits"
	"sync"

	"repro/internal/gaddr"
)

// NumBuckets is the size of the translation hash table ("a 1K hash table
// with a list of pages kept in each bucket").
const NumBuckets = 1024

// Entry is one cached page: the tag used to translate global to local
// pointers, the per-line valid bits, and — for the coherence schemes of
// Appendix A — a staleness mark and the home timestamp at last sync.
type Entry struct {
	Page  gaddr.PageID
	Valid uint32 // bit i set ⇒ line i holds current data
	Stale bool   // bilateral scheme: must timestamp-check before next use
	Stamp uint32 // bilateral scheme: home page timestamp at last sync
	Data  []uint64
	next  *Entry
}

// Cache is one processor's software cache. It is internally synchronized:
// several logical threads may occupy the same processor concurrently in
// real time even though they serialize in virtual time.
type Cache struct {
	mu      sync.Mutex
	buckets [NumBuckets]*Entry
	entries int
	allocs  int64 // pages ever allocated (Table 3 "Total Pages Cached")
}

// New returns an empty cache.
func New() *Cache { return &Cache{} }

func bucketOf(p gaddr.PageID) int {
	v := uint32(p) / gaddr.PageBytes
	return int((v ^ v>>10 ^ v>>20) % NumBuckets)
}

func (c *Cache) find(p gaddr.PageID) *Entry {
	for e := c.buckets[bucketOf(p)]; e != nil; e = e.next {
		if e.Page == p {
			return e
		}
	}
	return nil
}

// Probe looks up the page containing g, allocating an entry if the page is
// not present. It reports whether the page was newly allocated and whether
// the line containing g is valid. The entry's Stale flag is returned so the
// caller can run the bilateral scheme's timestamp check before trusting
// valid bits.
func (c *Cache) Probe(g gaddr.GP) (e *Entry, pageNew, lineValid bool) {
	p := gaddr.PageOf(g)
	line := gaddr.LineOf(g)
	c.mu.Lock()
	defer c.mu.Unlock()
	e = c.find(p)
	if e == nil {
		e = &Entry{Page: p, Data: make([]uint64, gaddr.WordsPerPage)}
		b := bucketOf(p)
		e.next = c.buckets[b]
		c.buckets[b] = e
		c.entries++
		c.allocs++
		pageNew = true
	}
	lineValid = e.Valid&(1<<uint(line)) != 0
	return e, pageNew, lineValid
}

// LineState reads an entry's valid bit for one line and its staleness mark
// under the cache lock (entries are shared between threads occupying the
// processor).
func (c *Cache) LineState(e *Entry, line int) (valid, stale bool) {
	c.mu.Lock()
	valid = e.Valid&(1<<uint(line)) != 0
	stale = e.Stale
	c.mu.Unlock()
	return valid, stale
}

// InstallLine copies a fetched 64-byte line into the entry and marks it
// valid.
func (c *Cache) InstallLine(e *Entry, line int, words []uint64) {
	c.mu.Lock()
	copy(e.Data[line*gaddr.WordsPerLine:(line+1)*gaddr.WordsPerLine], words)
	e.Valid |= 1 << uint(line)
	c.mu.Unlock()
}

// ReadWord reads the word at byte offset pageOff within the cached page.
func (c *Cache) ReadWord(e *Entry, pageOff uint32) uint64 {
	c.mu.Lock()
	v := e.Data[pageOff/gaddr.WordBytes]
	c.mu.Unlock()
	return v
}

// WriteWord updates the local copy (the home copy is updated separately by
// the write-through).
func (c *Cache) WriteWord(e *Entry, pageOff uint32, v uint64) {
	c.mu.Lock()
	e.Data[pageOff/gaddr.WordBytes] = v
	c.mu.Unlock()
}

// InvalidateAll clears every valid bit (local-knowledge scheme: "each
// processor invalidates its entire cache upon receiving a migration").
// Page entries stay allocated so hash chains stay short and the pages-
// cached statistic is cumulative. It returns the number of lines that
// were actually valid — the data the flush really discarded, which the
// trace layer records to expose over-invalidation.
func (c *Cache) InvalidateAll() (lines int) {
	c.mu.Lock()
	for b := range c.buckets {
		for e := c.buckets[b]; e != nil; e = e.next {
			lines += bits.OnesCount32(e.Valid)
			e.Valid = 0
			e.Stale = false
		}
	}
	c.mu.Unlock()
	return lines
}

// InvalidateHomes clears valid bits of every line whose page is homed on a
// processor named in procMask (bit p set ⇒ processor p). This is the
// refined local-knowledge rule for returns: "we need only invalidate cached
// copies of lines from processors whose memories have been written by the
// returning thread." It returns the number of valid lines discarded.
func (c *Cache) InvalidateHomes(procMask uint64) (lines int) {
	c.mu.Lock()
	for b := range c.buckets {
		for e := c.buckets[b]; e != nil; e = e.next {
			if procMask&(1<<uint(e.Page.Proc())) != 0 {
				lines += bits.OnesCount32(e.Valid)
				e.Valid = 0
				e.Stale = false
			}
		}
	}
	c.mu.Unlock()
	return lines
}

// InvalidateLines clears the given lines of one page if it is cached
// (global-knowledge scheme invalidation message). It returns the mask of
// lines that were actually valid and got cleared: zero means the message
// was spurious — the sharer-tracking is page-grained, so a sharer may
// receive invalidations for lines it never cached (the "spurious
// invalidation messages" the paper notes in Appendix A).
func (c *Cache) InvalidateLines(p gaddr.PageID, lineMask uint32) (cleared uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.find(p)
	if e == nil {
		return 0
	}
	cleared = e.Valid & lineMask
	e.Valid &^= lineMask
	return cleared
}

// MarkAllStale marks every cached page stale (bilateral scheme: "on
// receiving a migration, a processor marks all of its pages, so that they
// miss on the first access"). It returns the number of pages marked.
func (c *Cache) MarkAllStale() (pages int) {
	c.mu.Lock()
	for b := range c.buckets {
		for e := c.buckets[b]; e != nil; e = e.next {
			if e.Valid != 0 {
				e.Stale = true
				pages++
			}
		}
	}
	c.mu.Unlock()
	return pages
}

// Refresh completes a bilateral timestamp check: lines written at home
// since the entry's stamp are invalidated, the stamp advances, and the
// staleness mark clears. It returns the number of valid lines the refresh
// discarded (like the other invalidation paths).
func (c *Cache) Refresh(e *Entry, changed uint32, newStamp uint32) (lines int) {
	c.mu.Lock()
	lines = bits.OnesCount32(e.Valid & changed)
	e.Valid &^= changed
	e.Stamp = newStamp
	e.Stale = false
	c.mu.Unlock()
	return lines
}

// Clear drops every entry (used between benchmark phases).
func (c *Cache) Clear() {
	c.mu.Lock()
	for b := range c.buckets {
		c.buckets[b] = nil
	}
	c.entries = 0
	c.mu.Unlock()
}

// Entries returns the number of live page entries.
func (c *Cache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries
}

// PagesAllocated returns the cumulative number of page entries allocated.
func (c *Cache) PagesAllocated() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocs
}

// AvgChainLength returns the mean hash-chain length over non-empty buckets;
// the paper reports this is approximately one in practice.
func (c *Cache) AvgChainLength() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	used := 0
	for b := range c.buckets {
		if c.buckets[b] != nil {
			used++
		}
	}
	if used == 0 {
		return 0
	}
	return float64(c.entries) / float64(used)
}
