package server

import (
	"fmt"
	"sync"

	"repro/internal/analysis/phases"
	"repro/internal/bench"
	"repro/internal/bench/record"
	"repro/internal/coherence"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/trace"
)

// This file is the server's phase-granular memoization: the second LRU
// layer under the all-or-nothing result cache. The result cache can only
// reuse a run whose *entire* configuration matches; the phase cache
// reuses the build-phase boundary — heap images plus host-side build
// state — across every configuration that agrees on (benchmark, machine
// size, problem scale), whatever the coherence scheme or mechanism mode.
//
// Admitting a benchmark into this cache is a static decision, not a
// heuristic one: the benchmark's mini-C kernel is sliced into its phase
// plan and only a certified invariant build chain yields a key. The
// chain digest itself is part of the key, so editing a kernel reshuffles
// its chain and orphans any stale state rather than serving it.

// buildChains memoizes the static decision per benchmark name: the build
// chain digest, or "" when the benchmark is not phase-cacheable.
var buildChains sync.Map // string -> string

// buildChainFor returns the benchmark's certified build-chain digest.
// It is "" (not cacheable) when the benchmark has no kernel source or no
// build/kernel split, or when the slicer cannot stand behind the build
// phase.
func buildChainFor(name string) (string, bool) {
	if v, ok := buildChains.Load(name); ok {
		chain := v.(string)
		return chain, chain != ""
	}
	chain := ""
	if info, ok := bench.Get(name); ok && info.Source != "" && info.Phased != nil {
		if plan, err := phases.ComputeSource(info.Source, phases.Options{IncludeBuild: true}); err == nil {
			if c, ok := plan.BuildChain(); ok {
				chain = c
			}
		}
	}
	buildChains.Store(name, chain)
	return chain, chain != ""
}

// phaseKey is the phase-cache key: the scheme-invariant prefix identity.
// Scheme and mode are deliberately absent — that is the entire point —
// and so is Baseline, which Reusable refuses separately.
func phaseKey(req RunRequest, chain string) string {
	return fmt.Sprintf("%s|P=%d|scale=%d|chain=%s", req.Benchmark, req.Procs, req.Scale, chain)
}

// defaultExecutePhased runs the benchmark for real: a fresh machine +
// runtime per job (nothing shared with concurrent runs), the trace
// recorder and metrics registry attached so the record carries the
// digest that makes memoization verifiable. Phase-cacheable requests
// probe the phase cache first and restore the memoized build boundary on
// a hit; the returned disposition feeds the X-Oldend-Phase-Cache header.
// An unverified run — wrong answer versus the sequential reference — is
// an executor error, never a cacheable result.
//
// When sp is sampled, the run attaches its own simulation recorder so
// the span tree bottoms out in real cache-miss events, and each bench
// phase ("build", "kernel", ...) becomes a child span. The recorder's
// capacity matches what RunPhasedRecorded would allocate on its own, so
// TraceDigest is byte-identical sampled or not.
func (s *Server) defaultExecutePhased(req RunRequest, sp *obs.Span) (record.RunRecord, string, error) {
	info, ok := bench.Get(req.Benchmark)
	if !ok {
		return record.RunRecord{}, "none", fmt.Errorf("unknown benchmark %q", req.Benchmark)
	}
	scheme, err := coherence.Parse(req.Scheme)
	if err != nil {
		return record.RunRecord{}, "none", err
	}
	mode, err := rt.ParseMode(req.Mode)
	if err != nil {
		return record.RunRecord{}, "none", err
	}
	cfg := bench.Config{
		Baseline: req.Baseline,
		Procs:    req.Procs,
		Scale:    req.Scale,
		Scheme:   scheme,
		Mode:     mode,
	}
	var simRec *trace.Recorder
	if sp.Sampled() {
		sp.SetAttr("benchmark", req.Benchmark)
		sp.SetAttr("scheme", req.Scheme)
		if req.Mode != "" {
			sp.SetAttr("mode", req.Mode)
		}
		simRec = trace.New(s.cfg.TraceCapacity)
		cfg.Trace = simRec
		sp.AttachSim(simRec)
		cfg.OnPhase = func(name string) func() {
			ph := sp.StartChild("phase:" + name)
			return ph.End
		}
	}

	key := ""
	var bs *bench.BuildState
	if !req.Baseline {
		if chain, ok := buildChainFor(req.Benchmark); ok {
			key = phaseKey(req, chain)
			bs, _ = s.phases.get(key)
		}
	}
	res, rec, nbs, reused, err := bench.RunPhasedRecorded(info, cfg, bs)
	if simRec != nil {
		if d := simRec.Dropped(); d > 0 {
			s.traceDropped.Add(d)
			sp.SetAttrInt("sim_dropped", d)
		}
	}
	if err != nil {
		return rec, "none", err
	}
	if !res.Verified() {
		return rec, "none", fmt.Errorf("%s run failed verification: %#x != %#x", req.Benchmark, res.Check, res.WantCheck)
	}
	phase := "none"
	if key != "" && nbs != nil {
		if reused {
			phase = "hit"
			s.phaseHits.Inc()
		} else {
			phase = "miss"
			s.phaseMisses.Inc()
			s.phases.put(key, nbs)
		}
	}
	return rec, phase, nil
}
