package server

import (
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/obs"
)

// This file is oldend's live introspection surface. /debug/requests
// answers "what is the server doing right now and what was slow lately"
// without any external tooling; /debug/trace/<id> turns one sampled
// request into a merged Chrome trace — service spans over wall-clock
// time and the run's simulated cache events over simulated cycles in
// one file — or a JSON span tree for programmatic consumers.

// handleDebugRequests serves the introspection ring: in-flight requests
// first, then the last N finished ones, slowest first. Sampled entries
// carry the dominant span name and depth, so a glance answers "where
// did the time go" before anyone opens a trace.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"in_flight": s.cfg.Tracer.InFlight(),
		"requests":  s.cfg.Tracer.Requests(),
	})
}

// handleDebugTrace serves one retained trace by id:
//
//	GET /debug/trace/<32-hex id>              merged Chrome trace_event JSON
//	GET /debug/trace/<32-hex id>?format=tree  nested span-tree JSON
//
// Only sampled requests are retained (the TraceRing newest), so a 404
// means the id was never sampled or has been evicted — the access log
// line with that trace_id still exists either way.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if _, err := obs.ParseTraceID(idStr); err != nil {
		writeError(w, http.StatusBadRequest, "bad trace id: "+err.Error())
		return
	}
	root, ok := s.cfg.Tracer.Lookup(idStr)
	if !ok {
		writeError(w, http.StatusNotFound, "trace not retained (unsampled or evicted)")
		return
	}
	if r.URL.Query().Get("format") == "tree" {
		writeJSON(w, http.StatusOK, obs.Tree(root))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChrome(w, root); err != nil {
		// Headers are gone; all we can do is cut the body short.
		return
	}
}

// mountPprof exposes net/http/pprof on the main mux. It is opt-in
// (Config.EnablePprof) because the profiles reveal host internals a
// benchmark service does not otherwise leak.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
