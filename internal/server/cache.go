package server

import (
	"container/list"
	"sync"

	"repro/internal/bench"
	"repro/internal/bench/record"
)

// cacheEntry is one memoized run result: the canonical response bytes, the
// decoded record, and the trace digest the determinism argument rests on.
type cacheEntry struct {
	body   []byte
	digest string
	rec    record.RunRecord
}

// lruCache is a strict-LRU memo keyed by canonical strings. Eviction
// order is purely access order and capacity is an entry count, so the
// cache's behavior is a deterministic function of the request sequence —
// no clocks, no sizes, no randomness. The server runs two of these:
//
//   - the result cache (lruCache[*cacheEntry]) memoizes whole run
//     records, keyed by the full canonical configuration. Soundness
//     comes from the simulator's determinism: a RunRecord is a pure
//     function of its configuration, so the memoized bytes are exactly
//     what a re-run would produce.
//
//   - the phase cache (lruCache[*bench.BuildState]) memoizes build-phase
//     boundaries, keyed by (benchmark, machine size, scale, build chain
//     digest) — deliberately NOT by scheme or mode. Soundness comes from
//     the static phase plan: the build chain digest names a proven
//     scheme-invariant prefix, so one configuration's heap images serve
//     every configuration that agrees on the key.
type lruCache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// lruItem pairs a value with its key so eviction can unlink the index.
type lruItem[V any] struct {
	key string
	val V
}

// newLRU returns a cache holding up to capacity entries; zero or negative
// capacity disables caching (every lookup misses, puts drop).
func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the value under key, promoting it to most recently used.
func (c *lruCache[V]) get(key string) (V, bool) {
	var zero V
	if c.cap <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem[V]).val, true
}

// put inserts or refreshes the entry under key, evicting the least
// recently used entry when over capacity.
func (c *lruCache[V]) put(key string, v V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem[V]{key: key, val: v})
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.items, old.Value.(*lruItem[V]).key)
	}
}

// len reports the number of cached entries.
func (c *lruCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// keys returns the cached keys from most to least recently used; tests
// assert eviction order through it.
func (c *lruCache[V]) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruItem[V]).key)
	}
	return out
}

type resultCache = lruCache[*cacheEntry]
type phaseCache = lruCache[*bench.BuildState]
