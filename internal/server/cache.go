package server

import (
	"container/list"
	"sync"

	"repro/internal/bench/record"
)

// cacheEntry is one memoized run result: the canonical response bytes, the
// decoded record, and the trace digest the determinism argument rests on.
type cacheEntry struct {
	key    string
	body   []byte
	digest string
	rec    record.RunRecord
}

// resultCache is a strict-LRU memo of run results keyed by the canonical
// run configuration. Eviction order is purely access order and capacity is
// an entry count, so the cache's behavior is a deterministic function of
// the request sequence — no clocks, no sizes, no randomness. Soundness of
// serving from it at all comes from the simulator's determinism: a run's
// RunRecord (cycles, stats, metrics, trace digest) is a pure function of
// its configuration, so the memoized bytes are exactly what a re-run
// would produce.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// newResultCache returns a cache holding up to capacity entries; zero or
// negative capacity disables caching (every lookup misses, puts drop).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the entry under key, promoting it to most recently used.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts or refreshes the entry under its key, evicting the least
// recently used entry when over capacity.
func (c *resultCache) put(e *cacheEntry) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.items, old.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
