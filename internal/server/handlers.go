package server

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// AccessLogger emits one structured JSON line per request through
// log/slog, so access logs, metrics and traces join on trace_id. The
// JSON handler locks internally; one logger serves every request
// goroutine.
type AccessLogger struct {
	h slog.Handler
}

// NewAccessLogger logs one JSON object per request to w. The record's
// time is the request's start time (not the emit time), so log lines
// sort by arrival and match what the span tree says.
func NewAccessLogger(w io.Writer) *AccessLogger {
	return &AccessLogger{h: slog.NewJSONHandler(w, nil)}
}

// logExtra carries the run-specific fields the /run handler and workers
// contribute to the request's access-log line.
type logExtra struct {
	Benchmark   string
	Key         string
	Cache       string
	PhaseCache  string
	ShedReason  string
	QueueWaitUS int64
	RunUS       int64
}

// accessLine is one structured access-log record.
type accessLine struct {
	Start   time.Time
	Method  string
	Path    string
	Status  int
	Bytes   int64
	DurUS   int64
	Remote  string
	TraceID string
	Sampled bool
	logExtra
}

func (l *AccessLogger) emit(line accessLine) {
	if l == nil {
		return
	}
	rec := slog.NewRecord(line.Start, slog.LevelInfo, "request", 0)
	rec.AddAttrs(
		slog.String("method", line.Method),
		slog.String("path", line.Path),
		slog.Int("status", line.Status),
		slog.Int64("bytes", line.Bytes),
		slog.Int64("dur_us", line.DurUS),
	)
	if line.Remote != "" {
		rec.AddAttrs(slog.String("remote", line.Remote))
	}
	if line.TraceID != "" {
		rec.AddAttrs(slog.String("trace_id", line.TraceID))
	}
	if line.Sampled {
		rec.AddAttrs(slog.Bool("sampled", true))
	}
	if line.Benchmark != "" {
		rec.AddAttrs(slog.String("benchmark", line.Benchmark))
	}
	if line.Key != "" {
		rec.AddAttrs(slog.String("key", line.Key))
	}
	if line.Cache != "" {
		rec.AddAttrs(slog.String("cache", line.Cache))
	}
	if line.PhaseCache != "" {
		rec.AddAttrs(slog.String("phase_cache", line.PhaseCache))
	}
	if line.ShedReason != "" {
		rec.AddAttrs(slog.String("shed_reason", line.ShedReason))
	}
	if line.QueueWaitUS != 0 {
		rec.AddAttrs(slog.Int64("queue_wait_us", line.QueueWaitUS))
	}
	if line.RunUS != 0 {
		rec.AddAttrs(slog.Int64("run_us", line.RunUS))
	}
	_ = l.h.Handle(context.Background(), rec) // an unloggable request must not fail the request
}

// statusWriter captures the status code and byte count a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// reqCtx is the per-request state instrument threads through the context:
// the log fields handlers fill in, the request's root span (nil when
// unsampled) and the trace id every response advertises.
type reqCtx struct {
	extra   logExtra
	sp      *obs.Span
	traceID string
}

type reqCtxKey struct{}

// requestCtx returns the request's reqCtx (a throwaway one when the
// handler runs outside instrument, as in direct tests).
func requestCtx(r *http.Request) *reqCtx {
	if rc, ok := r.Context().Value(reqCtxKey{}).(*reqCtx); ok {
		return rc
	}
	return &reqCtx{}
}

// Handler returns the service's HTTP surface:
//
//	POST /run             execute (or memo-serve) one benchmark run
//	POST /batch           execute a set of runs, deduped against both caches
//	POST /analyze         static effect/cost analysis with budget admission
//	GET  /benchmarks      the shared machine-readable catalog
//	GET  /metrics         Prometheus exposition of the server registry
//	GET  /debug/requests  recent + in-flight requests, slowest first
//	GET  /debug/trace/<id>  one sampled request's merged Chrome trace
//	GET  /healthz         liveness (200 while the process serves)
//	GET  /readyz          readiness (503 once drain begins)
//
// Every request is access-logged (when a logger is configured), counted
// in oldend_requests_total by endpoint and status, and answered with an
// X-Oldend-Trace-Id header — on shed and error paths too — so any
// response can be quoted back at the trace endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/cache/probe", s.handleCacheProbe)
	mux.HandleFunc("/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/debug/trace/", s.handleDebugTrace)
	if s.cfg.EnablePprof {
		mountPprof(mux)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return s.instrument(mux)
}

// instrument wraps the mux with tracing, access logging and request
// accounting: it parses the incoming traceparent, makes the sampling
// decision, stamps the trace id on the response before the handler can
// write headers, and finishes the request's span tree afterwards.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.cfg.Now()
		parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
		sp := s.cfg.Tracer.StartRequest(r.Method, r.URL.Path, parent)
		var traceID string
		switch {
		case sp.Sampled():
			traceID = sp.TraceID().String()
		case parent.Valid():
			traceID = parent.TraceID.String()
		default:
			traceID = s.cfg.Tracer.NewTraceID().String()
		}
		// Every response — including 429/504 sheds — carries the id a
		// client can quote in a bug report.
		w.Header().Set("X-Request-Id", traceID)
		w.Header().Set("X-Oldend-Trace-Id", traceID)
		if s.cfg.ShardName != "" {
			w.Header().Set("X-Oldend-Shard", s.cfg.ShardName)
		}

		rc := &reqCtx{sp: sp, traceID: traceID}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqCtxKey{}, rc)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		durUS := s.cfg.Now().Sub(start).Microseconds()
		s.cfg.Metrics.Counter("oldend_requests_total",
			metrics.L("path", r.URL.Path),
			metrics.L("code", strconv.Itoa(sw.status))).Inc()
		s.cfg.Tracer.FinishRequest(sp, obs.ReqInfo{
			TraceID:    traceID,
			Method:     r.Method,
			Path:       r.URL.Path,
			Status:     sw.status,
			Start:      start,
			DurUS:      durUS,
			Benchmark:  rc.extra.Benchmark,
			Cache:      rc.extra.Cache,
			ShedReason: rc.extra.ShedReason,
		})
		s.cfg.AccessLog.emit(accessLine{
			Start:    start,
			Method:   r.Method,
			Path:     r.URL.Path,
			Status:   sw.status,
			Bytes:    sw.bytes,
			DurUS:    durUS,
			Remote:   r.RemoteAddr,
			TraceID:  traceID,
			Sampled:  sp.Sampled(),
			logExtra: rc.extra,
		})
	})
}

// handleRun admits, waits and responds for one run request. Phases:
// parse → cache probe → admission → queue wait → execution, with the
// request deadline checked at every boundary; each phase is a span on
// sampled requests.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	req, err := normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := req.Key()
	rc := requestCtx(r)
	rc.extra.Benchmark = req.Benchmark
	rc.extra.Key = key

	// Phase: cache probe. A hit returns the memoized bytes — verifiably
	// identical to a fresh run by determinism — unless the request asked
	// to bypass or cross-check.
	probe := rc.sp.StartChild("cache_probe")
	probe.SetAttr("key", key)
	if !req.NoCache && !req.Verify {
		if e, ok := s.cache.get(key); ok {
			s.cacheHits.Inc()
			rc.extra.Cache = "hit"
			probe.SetAttr("cache", "hit")
			probe.End()
			w.Header().Set("X-Oldend-Cache", "hit")
			w.Header().Set("X-Oldend-Trace-Digest", e.digest)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(e.body)
			return
		}
		s.cacheMisses.Inc()
	}
	cacheState := req.Disposition()
	rc.extra.Cache = cacheState
	probe.SetAttr("cache", cacheState)
	probe.End()

	// Phase: admission. Deadline starts covering queue wait + run.
	ctx, cancel := context.WithTimeout(r.Context(), s.clampDeadline(req.DeadlineMS))
	defer cancel()
	j := &job{
		req:      req,
		key:      key,
		cache:    cacheState,
		ctx:      ctx,
		enqueued: s.cfg.Now(),
		done:     make(chan result, 1),
		sp:       rc.sp,
	}
	if rc.sp.Sampled() {
		j.exemplar = rc.traceID
	}
	// The queue_wait span must exist before admit: a worker may dequeue
	// (and close it) before admit even returns.
	j.qspan = rc.sp.StartChild("queue_wait")
	switch s.admit(j) {
	case admitShed:
		j.qspan.EndAborted()
		s.shed.Inc()
		rc.extra.ShedReason = "queue_full"
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests,
			"admission queue full; retry after backoff")
		return
	case admitDraining:
		j.qspan.EndAborted()
		rc.extra.ShedReason = "draining"
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Phase: wait for a worker. If the deadline fires first the handler
	// answers 504 and the worker discards the stale job when it surfaces;
	// the dangling queue_wait span is flushed (aborted) at finish, so the
	// 504's span tree is still complete.
	var res result
	select {
	case res = <-j.done:
	case <-ctx.Done():
		select {
		case res = <-j.done: // result arrived in the same instant; serve it
		default:
			rc.extra.QueueWaitUS = s.cfg.Now().Sub(j.enqueued).Microseconds()
			rc.extra.ShedReason = "deadline"
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded: "+ctx.Err().Error())
			return
		}
	}
	rc.extra.Cache = res.cache
	rc.extra.PhaseCache = res.phase
	rc.extra.ShedReason = res.shed
	rc.extra.QueueWaitUS = res.queueWaitUS
	rc.extra.RunUS = res.runUS
	if res.status != http.StatusOK {
		writeError(w, res.status, res.errMsg)
		return
	}
	w.Header().Set("X-Oldend-Cache", res.cache)
	if res.phase != "" {
		w.Header().Set("X-Oldend-Phase-Cache", res.phase)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(res.body)
}

// handleCacheProbe is the peer-cache lookup a cluster router (or any
// replica acting as a client) uses to ask "do you already hold this
// result?" without triggering execution:
//
//	GET /cache/probe?key=<canonical cache key>
//
// A hit serves the memoized bytes exactly as a /run cache hit would —
// X-Oldend-Cache: hit, the trace digest header, the identical body — so
// a router can treat a probe hit and a routed hit interchangeably. A
// miss is a 404 and nothing else: probes are deliberately lightweight
// (no queueing, no simulation) so a router can afford to ask several
// owners about a hot key before committing an execution anywhere.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "missing key (the canonical run-config cache key)")
		return
	}
	rc := requestCtx(r)
	rc.extra.Key = key
	e, ok := s.cache.get(key)
	if !ok {
		s.probeMisses.Inc()
		rc.extra.Cache = "probe-miss"
		writeError(w, http.StatusNotFound, "not cached")
		return
	}
	s.probeHits.Inc()
	rc.extra.Cache = "probe-hit"
	w.Header().Set("X-Oldend-Cache", "hit")
	w.Header().Set("X-Oldend-Trace-Digest", e.digest)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(e.body)
}

// handleBenchmarks serves the shared catalog — the same bytes
// `oldenbench -list` prints, so clients and CLIs cannot drift.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	b, err := bench.CatalogJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleMetrics serves the registry in the Prometheus text exposition
// format with the exporter's Content-Type.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	io.WriteString(w, s.cfg.Metrics.Snapshot().Prometheus())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
