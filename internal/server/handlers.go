package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
)

// AccessLogger serializes structured JSON access-log lines onto a writer.
type AccessLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewAccessLogger logs one JSON object per request to w.
func NewAccessLogger(w io.Writer) *AccessLogger {
	return &AccessLogger{enc: json.NewEncoder(w)}
}

// logExtra carries the run-specific fields the /run handler and workers
// contribute to the request's access-log line.
type logExtra struct {
	Benchmark   string `json:"benchmark,omitempty"`
	Key         string `json:"key,omitempty"`
	Cache       string `json:"cache,omitempty"`
	PhaseCache  string `json:"phase_cache,omitempty"`
	QueueWaitUS int64  `json:"queue_wait_us,omitempty"`
	RunUS       int64  `json:"run_us,omitempty"`
}

// accessLine is one structured access-log record.
type accessLine struct {
	Time     string `json:"time"`
	Method   string `json:"method"`
	Path     string `json:"path"`
	Status   int    `json:"status"`
	Bytes    int64  `json:"bytes"`
	DurUS    int64  `json:"dur_us"`
	Remote   string `json:"remote,omitempty"`
	logExtra        // flattened run fields
}

func (l *AccessLogger) emit(line accessLine) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(line) // an unloggable request must not fail the request
}

// statusWriter captures the status code and byte count a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

type extraKey struct{}

// Handler returns the service's HTTP surface:
//
//	POST /run         execute (or memo-serve) one benchmark run
//	POST /batch       execute a set of runs, deduped against both caches
//	POST /analyze     static effect/cost analysis with budget admission
//	GET  /benchmarks  the shared machine-readable catalog
//	GET  /metrics     Prometheus exposition of the server registry
//	GET  /healthz     liveness (200 while the process serves)
//	GET  /readyz      readiness (503 once drain begins)
//
// Every request is access-logged (when a logger is configured) and
// counted in oldend_requests_total by endpoint and status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return s.instrument(mux)
}

// instrument wraps the mux with access logging and request accounting.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.cfg.Now()
		extra := &logExtra{}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), extraKey{}, extra)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.cfg.Metrics.Counter("oldend_requests_total",
			metrics.L("path", r.URL.Path),
			metrics.L("code", strconv.Itoa(sw.status))).Inc()
		s.cfg.AccessLog.emit(accessLine{
			Time:     start.UTC().Format(time.RFC3339Nano),
			Method:   r.Method,
			Path:     r.URL.Path,
			Status:   sw.status,
			Bytes:    sw.bytes,
			DurUS:    s.cfg.Now().Sub(start).Microseconds(),
			Remote:   r.RemoteAddr,
			logExtra: *extra,
		})
	})
}

// handleRun admits, waits and responds for one run request. Phases:
// parse → cache probe → admission → queue wait → execution, with the
// request deadline checked at every boundary.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	req, err := normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := req.Key()
	extra, _ := r.Context().Value(extraKey{}).(*logExtra)
	if extra == nil {
		extra = &logExtra{}
	}
	extra.Benchmark = req.Benchmark
	extra.Key = key

	// Phase: cache probe. A hit returns the memoized bytes — verifiably
	// identical to a fresh run by determinism — unless the request asked
	// to bypass or cross-check.
	if !req.NoCache && !req.Verify {
		if e, ok := s.cache.get(key); ok {
			s.cacheHits.Inc()
			extra.Cache = "hit"
			w.Header().Set("X-Oldend-Cache", "hit")
			w.Header().Set("X-Oldend-Trace-Digest", e.digest)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(e.body)
			return
		}
		s.cacheMisses.Inc()
	}
	cacheState := "miss"
	if req.NoCache {
		cacheState = "bypass"
	} else if req.Verify {
		cacheState = "verify"
	}
	extra.Cache = cacheState

	// Phase: admission. Deadline starts covering queue wait + run.
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	j := &job{
		req:      req,
		key:      key,
		cache:    cacheState,
		ctx:      ctx,
		enqueued: s.cfg.Now(),
		done:     make(chan result, 1),
	}
	switch s.admit(j) {
	case admitShed:
		s.shed.Inc()
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests,
			"admission queue full; retry after backoff")
		return
	case admitDraining:
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Phase: wait for a worker. If the deadline fires first the handler
	// answers 504 and the worker discards the stale job when it surfaces.
	var res result
	select {
	case res = <-j.done:
	case <-ctx.Done():
		select {
		case res = <-j.done: // result arrived in the same instant; serve it
		default:
			extra.QueueWaitUS = s.cfg.Now().Sub(j.enqueued).Microseconds()
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded: "+ctx.Err().Error())
			return
		}
	}
	extra.Cache = res.cache
	extra.PhaseCache = res.phase
	extra.QueueWaitUS = res.queueWaitUS
	extra.RunUS = res.runUS
	if res.status != http.StatusOK {
		writeError(w, res.status, res.errMsg)
		return
	}
	w.Header().Set("X-Oldend-Cache", res.cache)
	if res.phase != "" {
		w.Header().Set("X-Oldend-Phase-Cache", res.phase)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(res.body)
}

// handleBenchmarks serves the shared catalog — the same bytes
// `oldenbench -list` prints, so clients and CLIs cannot drift.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	b, err := bench.CatalogJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// handleMetrics serves the registry in the Prometheus text exposition
// format with the exporter's Content-Type.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	io.WriteString(w, s.cfg.Metrics.Snapshot().Prometheus())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
