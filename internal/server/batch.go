package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// BatchRequest is the POST /batch body: a set of run configurations to
// resolve together. The batch is deduplicated twice before anything
// executes — exact duplicates collapse onto one run, and configurations
// sharing a phase-cache key are ordered so the first run materializes
// the build state the rest restore.
type BatchRequest struct {
	Runs []RunRequest `json:"runs"`
	// DeadlineMS caps each run's time in the service, like the /run
	// field of the same name.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// BatchItem is one run's outcome within a /batch response, in request
// order. Status is the per-item HTTP status the same configuration would
// have received from /run.
type BatchItem struct {
	Benchmark  string          `json:"benchmark,omitempty"`
	Key        string          `json:"key,omitempty"`
	Status     int             `json:"status"`
	Cache      string          `json:"cache,omitempty"`
	PhaseCache string          `json:"phase_cache,omitempty"`
	Error      string          `json:"error,omitempty"`
	Record     json.RawMessage `json:"record,omitempty"`
}

// handleBatch resolves a configuration set in one request:
//
//  1. normalize every run; invalid ones fail item-locally with 400;
//  2. collapse exact duplicates onto one execution;
//  3. serve what the result cache already holds;
//  4. group the residue by phase-cache key and, per group, execute the
//     first configuration alone — its build populates the phase cache —
//     then fan the rest out concurrently as phase hits;
//  5. answer in request order with per-item status, cache dispositions
//     and records.
//
// Groups themselves run concurrently; the bounded worker pool is still
// the only execution throttle.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var breq BatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&breq); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(breq.Runs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch (runs is required)")
		return
	}
	if len(breq.Runs) > s.cfg.QueueDepth {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds queue depth %d", len(breq.Runs), s.cfg.QueueDepth))
		return
	}

	items := make([]BatchItem, len(breq.Runs))
	reqs := make([]RunRequest, len(breq.Runs))
	first := map[string]int{} // key -> index of the item that executes it
	var order []int           // unique, valid, unserved indices
	for i, q := range breq.Runs {
		nq, err := normalize(q)
		if err != nil {
			items[i] = BatchItem{Benchmark: q.Benchmark, Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		if breq.DeadlineMS > 0 && nq.DeadlineMS == 0 {
			nq.DeadlineMS = breq.DeadlineMS
		}
		reqs[i] = nq
		key := nq.Key()
		items[i] = BatchItem{Benchmark: nq.Benchmark, Key: key}
		if _, dup := first[key]; dup {
			items[i].Cache = "dedup"
			continue
		}
		first[key] = i
		if !nq.NoCache && !nq.Verify {
			if e, ok := s.cache.get(key); ok {
				s.cacheHits.Inc()
				items[i].Status = http.StatusOK
				items[i].Cache = "hit"
				items[i].Record = json.RawMessage(e.body)
				continue
			}
			s.cacheMisses.Inc()
		}
		order = append(order, i)
	}

	// Group the residue by phase-cache key; configurations that cannot
	// share build state each form their own group.
	groups := map[string][]int{}
	for _, i := range order {
		g := "key:" + items[i].Key
		if !reqs[i].Baseline {
			if chain, ok := buildChainFor(reqs[i].Benchmark); ok {
				g = "phase:" + phaseKey(reqs[i], chain)
			}
		}
		groups[g] = append(groups[g], i)
	}

	rc := requestCtx(r)
	var wg sync.WaitGroup
	for _, idxs := range groups {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			// Warm: the group head builds (or finds) the shared state.
			s.runBatchItem(r.Context(), rc, reqs[idxs[0]], &items[idxs[0]])
			// Fan: everyone else restores it concurrently.
			var fan sync.WaitGroup
			for _, i := range idxs[1:] {
				fan.Add(1)
				go func(i int) {
					defer fan.Done()
					s.runBatchItem(r.Context(), rc, reqs[i], &items[i])
				}(i)
			}
			fan.Wait()
		}(idxs)
	}
	wg.Wait()

	// Fill duplicates from the item that executed their key.
	retryAfter := false
	cacheHits, phaseHits := 0, 0
	for i := range items {
		if items[i].Cache == "dedup" {
			src := items[first[items[i].Key]]
			items[i].Status = src.Status
			items[i].Error = src.Error
			items[i].Record = src.Record
		}
		switch items[i].Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			retryAfter = true
		}
		if items[i].Cache == "hit" || items[i].Cache == "dedup" {
			cacheHits++
		}
		if items[i].PhaseCache == "hit" {
			phaseHits++
		}
	}
	if retryAfter {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
	}
	w.Header().Set("X-Oldend-Batch",
		fmt.Sprintf("runs=%d cache-hits=%d phase-hits=%d", len(items), cacheHits, phaseHits))
	writeJSON(w, http.StatusOK, items)
}

// runBatchItem pushes one normalized configuration through the same
// admission queue and worker pool /run uses and fills the item in place.
// On sampled batch requests each item hangs a "run:<benchmark>" span off
// the request root, so one batch trace shows every item's queue wait and
// execution side by side.
func (s *Server) runBatchItem(parent context.Context, rc *reqCtx, req RunRequest, item *BatchItem) {
	ctx, cancel := context.WithTimeout(parent, s.clampDeadline(req.DeadlineMS))
	defer cancel()
	isp := rc.sp.StartChild("run:" + req.Benchmark)
	isp.SetAttr("key", item.Key)
	j := &job{
		req:      req,
		key:      item.Key,
		cache:    req.Disposition(),
		ctx:      ctx,
		enqueued: s.cfg.Now(),
		done:     make(chan result, 1),
		sp:       isp,
	}
	if isp.Sampled() {
		j.exemplar = rc.traceID
	}
	j.qspan = isp.StartChild("queue_wait")
	switch s.admit(j) {
	case admitShed:
		j.qspan.EndAborted()
		isp.SetAttr("shed_reason", "queue_full")
		isp.EndAborted()
		s.shed.Inc()
		item.Status = http.StatusTooManyRequests
		item.Error = "admission queue full; retry after backoff"
		return
	case admitDraining:
		j.qspan.EndAborted()
		isp.SetAttr("shed_reason", "draining")
		isp.EndAborted()
		item.Status = http.StatusServiceUnavailable
		item.Error = "server is draining"
		return
	}
	var res result
	select {
	case res = <-j.done:
	case <-ctx.Done():
		select {
		case res = <-j.done:
		default:
			// The worker will discard the stale job; the dangling
			// queue_wait under isp is flushed (aborted) at finish.
			isp.SetAttr("shed_reason", "deadline")
			item.Status = http.StatusGatewayTimeout
			item.Error = "deadline exceeded: " + ctx.Err().Error()
			return
		}
	}
	isp.SetAttr("cache", res.cache)
	isp.End()
	item.Status = res.status
	item.Cache = res.cache
	item.PhaseCache = res.phase
	if res.status != http.StatusOK {
		item.Error = res.errMsg
		return
	}
	item.Record = json.RawMessage(res.body)
}
