package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postAnalyze fires one POST /analyze and decodes the response.
func postAnalyze(t *testing.T, ts *httptest.Server, body string) (int, AnalyzeResponse, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /analyze: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var ar AnalyzeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ar); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, ar, raw
}

func analyzeServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := New(Config{Workers: 1})
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

const boundedSrc = `struct s { int v; };
int f(int n) {
  int i;
  int t;
  t = 0;
  i = 0;
  while (i < 10) {
    t = t + i;
    i = i + 1;
  }
  return t;
}`

const unboundedSrc = `struct s { int v; };
void spin(struct s *p) {
  while (1) {
    p->v = 0;
  }
}`

const symbolicSrc = `struct s { int v; };
int f(int n) {
  int i;
  int t;
  t = 0;
  for (i = 0; i < n; i = i + 1) {
    t = t + i;
  }
  return t;
}`

// TestAnalyzeAdmitsBounded pins the happy path: a constant-bounded
// program inside its budget is admitted, with summaries and certificate
// attached.
func TestAnalyzeAdmitsBounded(t *testing.T) {
	ts := analyzeServer(t)
	status, ar, raw := postAnalyze(t, ts,
		`{"source":`+jsonString(boundedSrc)+`,"budget":{"max_steps":1000,"max_allocs":10}}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !ar.Admitted || len(ar.Reasons) != 0 {
		t.Errorf("admitted=%v reasons=%v, want admitted", ar.Admitted, ar.Reasons)
	}
	if len(ar.Functions) != 1 || ar.Functions[0].Name != "f" {
		t.Errorf("functions = %+v", ar.Functions)
	}
	if len(ar.Certificate.Digest) != 16 {
		t.Errorf("certificate digest %q", ar.Certificate.Digest)
	}
	if len(ar.Findings) == 0 {
		t.Error("no findings attached")
	}
}

// TestAnalyzeRejectsUnbounded pins the core sandbox property: ⊤-bounded
// programs are rejected before any run, with machine-readable reasons.
func TestAnalyzeRejectsUnbounded(t *testing.T) {
	ts := analyzeServer(t)
	status, ar, raw := postAnalyze(t, ts, `{"source":`+jsonString(unboundedSrc)+`}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if ar.Admitted {
		t.Fatal("unbounded program admitted")
	}
	found := false
	for _, r := range ar.Reasons {
		if r == "unbounded-steps:spin" {
			found = true
		}
	}
	if !found {
		t.Errorf("Reasons = %v, want unbounded-steps:spin", ar.Reasons)
	}
}

// TestAnalyzeSymbolicNeedsOptIn: symbolic bounds are rejected under a
// strict budget and admitted when the budget allows them.
func TestAnalyzeSymbolicNeedsOptIn(t *testing.T) {
	ts := analyzeServer(t)
	_, strict, _ := postAnalyze(t, ts,
		`{"source":`+jsonString(symbolicSrc)+`,"budget":{"max_steps":1000}}`)
	if strict.Admitted {
		t.Error("symbolic bound admitted under constant-only budget")
	}
	sawSymbolic := false
	for _, r := range strict.Reasons {
		if strings.HasPrefix(r, "symbolic-steps:f:") {
			sawSymbolic = true
		}
	}
	if !sawSymbolic {
		t.Errorf("Reasons = %v, want symbolic-steps:f:*", strict.Reasons)
	}
	_, loose, _ := postAnalyze(t, ts,
		`{"source":`+jsonString(symbolicSrc)+`,"budget":{"max_steps":1000,"allow_symbolic":true}}`)
	if !loose.Admitted {
		t.Errorf("symbolic bound rejected with allow_symbolic: %v", loose.Reasons)
	}
}

// TestAnalyzeStepBudgetEnforced: a constant bound over the numeric cap is
// refused with the overage spelled out.
func TestAnalyzeStepBudgetEnforced(t *testing.T) {
	ts := analyzeServer(t)
	_, ar, _ := postAnalyze(t, ts,
		`{"source":`+jsonString(boundedSrc)+`,"budget":{"max_steps":3}}`)
	if ar.Admitted {
		t.Error("over-budget program admitted")
	}
	sawBudget := false
	for _, r := range ar.Reasons {
		if strings.HasPrefix(r, "steps-budget:f:") {
			sawBudget = true
		}
	}
	if !sawBudget {
		t.Errorf("Reasons = %v, want steps-budget:f:*", ar.Reasons)
	}
}

// TestAnalyzeBadRequests pins the error surface: wrong method, bad JSON,
// empty source, and a program that does not parse.
func TestAnalyzeBadRequests(t *testing.T) {
	ts := analyzeServer(t)
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze = %d, want 405", resp.StatusCode)
	}
	if status, _, _ := postAnalyze(t, ts, `{nope`); status != http.StatusBadRequest {
		t.Errorf("bad JSON = %d, want 400", status)
	}
	if status, _, _ := postAnalyze(t, ts, `{}`); status != http.StatusBadRequest {
		t.Errorf("empty source = %d, want 400", status)
	}
	if status, _, _ := postAnalyze(t, ts, `{"source":"int f( {"}`); status != http.StatusUnprocessableEntity {
		t.Errorf("unparsable source = %d, want 422", status)
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
