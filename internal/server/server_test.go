package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench/record"
	"repro/internal/metrics"
	"repro/internal/obs"

	_ "repro/internal/bench/treeadd"
)

// blockingExec is a test executor whose runs park until released, making
// queue occupancy deterministic without depending on benchmark timing.
type blockingExec struct {
	started chan string   // receives the key of each run as it begins
	release chan struct{} // one receive per run unblocks it
	calls   atomic.Int64
}

func newBlockingExec() *blockingExec {
	return &blockingExec{
		started: make(chan string, 16),
		release: make(chan struct{}, 16),
	}
}

func (b *blockingExec) fn(req RunRequest, _ *obs.Span) (record.RunRecord, error) {
	b.calls.Add(1)
	b.started <- req.Key()
	<-b.release
	return record.RunRecord{
		Benchmark:   req.Benchmark,
		Procs:       req.Procs,
		Scheme:      req.Scheme,
		Mode:        req.Mode,
		Scale:       req.Scale,
		Cycles:      1234,
		Verified:    true,
		TraceDigest: "digest-" + req.Key(),
	}, nil
}

// postRun fires one POST /run and returns status, body and headers.
func postRun(t *testing.T, ts *httptest.Server, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b, resp.Header
}

// asyncRun fires POST /run in a goroutine and delivers the outcome.
type runOutcome struct {
	status int
	body   []byte
	header http.Header
}

func asyncRun(t *testing.T, ts *httptest.Server, body string) <-chan runOutcome {
	t.Helper()
	ch := make(chan runOutcome, 1)
	go func() {
		status, b, h := postRun(t, ts, body)
		ch <- runOutcome{status, b, h}
	}()
	return ch
}

func waitStarted(t *testing.T, exec *blockingExec) string {
	t.Helper()
	select {
	case k := <-exec.started:
		return k
	case <-time.After(5 * time.Second):
		t.Fatal("no run started within 5s")
		return ""
	}
}

// waitQueueDepth polls until the admission queue holds want jobs.
func waitQueueDepth(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(s.queue) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d (at %d)", want, len(s.queue))
}

func counterValue(t *testing.T, reg *metrics.Registry, name string, labels ...metrics.Label) int64 {
	t.Helper()
	sm, ok := reg.Snapshot().Get(name, labels...)
	if !ok {
		return 0
	}
	return sm.Value
}

// TestQueueFullSheds pins the admission-control contract: with the one
// worker busy and the queue full, the next request is shed with 429 and a
// Retry-After hint — never queued unboundedly, never a 5xx.
func TestQueueFullSheds(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 1, Execute: exec.fn, RetryAfter: 2 * time.Second})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Distinct configs so the cache can't satisfy anything.
	a := asyncRun(t, ts, `{"benchmark":"treeadd","procs":1}`)
	waitStarted(t, exec) // worker occupied by A
	b := asyncRun(t, ts, `{"benchmark":"treeadd","procs":2}`)
	waitQueueDepth(t, s, 1) // B parked in the queue

	status, body, h := postRun(t, ts, `{"benchmark":"treeadd","procs":3}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated POST /run = %d, want 429 (body %s)", status, body)
	}
	if h.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want %q", h.Get("Retry-After"), "2")
	}
	if got := counterValue(t, s.Metrics(), "oldend_shed_total"); got != 1 {
		t.Fatalf("oldend_shed_total = %d, want 1", got)
	}

	// Draining the pool completes both admitted requests with 200.
	exec.release <- struct{}{}
	exec.release <- struct{}{}
	waitStarted(t, exec)
	for name, ch := range map[string]<-chan runOutcome{"A": a, "B": b} {
		out := <-ch
		if out.status != http.StatusOK {
			t.Fatalf("admitted request %s = %d, want 200 (body %s)", name, out.status, out.body)
		}
	}
}

// TestExpiredDeadlineFreesSlot pins deadline handling at the dequeue
// phase boundary: a job whose deadline lapsed while queued answers 504,
// is never executed, and the worker slot immediately serves later work.
func TestExpiredDeadlineFreesSlot(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 2, Execute: exec.fn})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := asyncRun(t, ts, `{"benchmark":"treeadd","procs":1}`)
	waitStarted(t, exec)
	b := asyncRun(t, ts, `{"benchmark":"treeadd","procs":2,"deadline_ms":50}`)
	waitQueueDepth(t, s, 1)
	outB := <-b
	if outB.status != http.StatusGatewayTimeout {
		t.Fatalf("expired request = %d, want 504 (body %s)", outB.status, outB.body)
	}
	c := asyncRun(t, ts, `{"benchmark":"treeadd","procs":3}`)
	waitQueueDepth(t, s, 2)

	callsBefore := exec.calls.Load()
	exec.release <- struct{}{} // finish A; worker must skip B and start C
	keyC := waitStarted(t, exec)
	if !strings.Contains(keyC, "P=3") {
		t.Fatalf("worker picked up %q after skip, want the P=3 job", keyC)
	}
	exec.release <- struct{}{}
	outA, outC := <-a, <-c
	if outA.status != http.StatusOK || outC.status != http.StatusOK {
		t.Fatalf("live requests = %d/%d, want 200/200", outA.status, outC.status)
	}
	if got := exec.calls.Load() - callsBefore; got != 1 {
		t.Fatalf("worker executed %d jobs after release, want 1 (expired job must not run)", got)
	}
	if got := counterValue(t, s.Metrics(), "oldend_deadline_expired_total"); got != 1 {
		t.Fatalf("oldend_deadline_expired_total = %d, want 1", got)
	}
}

// TestGracefulDrain pins the drain order: readiness fails first, new runs
// are refused with 503, in-flight and queued jobs complete with 200, and
// Shutdown returns once the pool is idle.
func TestGracefulDrain(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.fn})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := getStatus(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", code)
	}
	a := asyncRun(t, ts, `{"benchmark":"treeadd","procs":1}`)
	waitStarted(t, exec)
	b := asyncRun(t, ts, `{"benchmark":"treeadd","procs":2}`)
	waitQueueDepth(t, s, 1)

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	waitDraining(t, s)

	if code := getStatus(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", code)
	}
	if code := getStatus(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200 (liveness persists)", code)
	}
	status, _, h := postRun(t, ts, `{"benchmark":"treeadd","procs":3}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("POST /run during drain = %d, want 503", status)
	}
	if h.Get("Retry-After") == "" {
		t.Fatal("503 during drain missing Retry-After")
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with jobs still in flight", err)
	default:
	}

	exec.release <- struct{}{}
	waitStarted(t, exec)
	exec.release <- struct{}{}
	outA, outB := <-a, <-b
	if outA.status != http.StatusOK || outB.status != http.StatusOK {
		t.Fatalf("draining jobs = %d/%d, want 200/200 (drain must finish in-flight work)",
			outA.status, outB.status)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown = %v, want nil (idempotent)", err)
	}
}

func getStatus(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func waitDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Draining() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never entered draining state")
}

// instantExec completes immediately with a per-call digest sequence.
type instantExec struct {
	calls   atomic.Int64
	digests []string // digest per call; last repeats
}

func (e *instantExec) fn(req RunRequest, _ *obs.Span) (record.RunRecord, error) {
	n := int(e.calls.Add(1)) - 1
	d := e.digests[len(e.digests)-1]
	if n < len(e.digests) {
		d = e.digests[n]
	}
	return record.RunRecord{
		Benchmark: req.Benchmark, Procs: req.Procs, Scheme: req.Scheme,
		Mode: req.Mode, Scale: req.Scale, Cycles: 42, Verified: true,
		TraceDigest: d,
	}, nil
}

// TestCacheHitByteIdentical pins memoization: the second identical
// request is served from cache, byte-for-byte equal to the first
// response, without executing, and advertises the same trace digest.
func TestCacheHitByteIdentical(t *testing.T) {
	exec := &instantExec{digests: []string{"events=7 hash=abc"}}
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.fn})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"benchmark":"treeadd","procs":2,"scheme":"global"}`
	st1, b1, h1 := postRun(t, ts, body)
	st2, b2, h2 := postRun(t, ts, body)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("statuses %d/%d, want 200/200", st1, st2)
	}
	if h1.Get("X-Oldend-Cache") != "miss" || h2.Get("X-Oldend-Cache") != "hit" {
		t.Fatalf("cache headers %q/%q, want miss/hit",
			h1.Get("X-Oldend-Cache"), h2.Get("X-Oldend-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cache hit not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
	if h2.Get("X-Oldend-Trace-Digest") != "events=7 hash=abc" {
		t.Fatalf("hit digest header = %q", h2.Get("X-Oldend-Trace-Digest"))
	}
	if exec.calls.Load() != 1 {
		t.Fatalf("executor ran %d times, want 1", exec.calls.Load())
	}
	var rec record.RunRecord
	if err := json.Unmarshal(b2, &rec); err != nil {
		t.Fatalf("hit body is not a RunRecord: %v", err)
	}
	if rec.TraceDigest != "events=7 hash=abc" {
		t.Fatalf("hit record digest = %q", rec.TraceDigest)
	}
	if got := counterValue(t, s.Metrics(), "oldend_cache_hits_total"); got != 1 {
		t.Fatalf("oldend_cache_hits_total = %d, want 1", got)
	}
}

// TestVerifyCrossChecksDigest pins the determinism cross-check: Verify
// re-runs a memoized config and 500s on digest divergence.
func TestVerifyCrossChecksDigest(t *testing.T) {
	exec := &instantExec{digests: []string{"d1", "d1", "DIVERGED"}}
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.fn})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"benchmark":"treeadd","procs":2}`
	if st, b, _ := postRun(t, ts, body); st != 200 {
		t.Fatalf("prime = %d (%s)", st, b)
	}
	st, _, _ := postRun(t, ts, `{"benchmark":"treeadd","procs":2,"verify":true}`)
	if st != 200 {
		t.Fatalf("matching verify = %d, want 200", st)
	}
	if got := counterValue(t, s.Metrics(), "oldend_cache_verify_total", metrics.L("outcome", "match")); got != 1 {
		t.Fatalf("verify match counter = %d, want 1", got)
	}
	st, b, _ := postRun(t, ts, `{"benchmark":"treeadd","procs":2,"verify":true}`)
	if st != http.StatusInternalServerError {
		t.Fatalf("diverged verify = %d, want 500 (body %s)", st, b)
	}
	if !strings.Contains(string(b), "determinism violation") {
		t.Fatalf("diverged verify body %s", b)
	}
	if got := counterValue(t, s.Metrics(), "oldend_cache_verify_total", metrics.L("outcome", "mismatch")); got != 1 {
		t.Fatalf("verify mismatch counter = %d, want 1", got)
	}
}

// TestRequestValidation pins the 4xx surface.
func TestRequestValidation(t *testing.T) {
	exec := &instantExec{digests: []string{"d"}}
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.fn})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		body string
		want int
	}{
		{`{"benchmark":"nosuch"}`, 400},
		{`{}`, 400},
		{`{"benchmark":"treeadd","scheme":"mesi"}`, 400},
		{`{"benchmark":"treeadd","mode":"warp"}`, 400},
		{`{"benchmark":"treeadd","procs":65}`, 400},
		{`{"benchmark":"treeadd","procs":-1}`, 400},
		{`not json`, 400},
		{`{"benchmark":"treeadd"}`, 200},
	}
	for _, c := range cases {
		if st, b, _ := postRun(t, ts, c.body); st != c.want {
			t.Errorf("POST %s = %d, want %d (%s)", c.body, st, c.want, b)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run = %d, want 405", resp.StatusCode)
	}
}

// TestMetricsAndCatalogEndpoints pins the observability surface: the
// exposition Content-Type, server-level series presence, and the catalog
// matching the canonical bytes.
func TestMetricsAndCatalogEndpoints(t *testing.T) {
	exec := &instantExec{digests: []string{"d"}}
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.fn})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRun(t, ts, `{"benchmark":"treeadd"}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# HELP oldend_requests_total",
		"# TYPE oldend_queue_depth gauge",
		"oldend_cache_misses_total",
		`oldend_runs_total{benchmark="treeadd"} 1`,
		"oldend_run_us_count",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAccessLogShape pins the structured log: one JSON object per
// request with the run fields attached.
func TestAccessLogShape(t *testing.T) {
	var buf syncBuffer
	exec := &instantExec{digests: []string{"d"}}
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.fn, AccessLog: NewAccessLogger(&buf)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRun(t, ts, `{"benchmark":"treeadd","procs":2}`)
	getStatus(t, ts, "/healthz")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d log lines, want 2:\n%s", len(lines), buf.String())
	}
	var runLine map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &runLine); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	for _, k := range []string{"time", "method", "path", "status", "benchmark", "key", "cache", "dur_us"} {
		if _, ok := runLine[k]; !ok {
			t.Errorf("run log line missing %q: %s", k, lines[0])
		}
	}
	if runLine["path"] != "/run" || runLine["benchmark"] != "treeadd" || runLine["cache"] != "miss" {
		t.Errorf("run log fields wrong: %s", lines[0])
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestResultCacheLRU pins the deterministic eviction order.
func TestResultCacheLRU(t *testing.T) {
	c := newLRU[*cacheEntry](2)
	put := func(k string) { c.put(k, &cacheEntry{body: []byte(k)}) }
	put("a")
	put("b")
	if _, ok := c.get("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	put("c") // evicts b (least recently used), not a
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (was promoted)")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// refresh replaces in place
	c.put("a", &cacheEntry{body: []byte("a2")})
	if e, _ := c.get("a"); string(e.body) != "a2" {
		t.Fatal("refresh did not replace body")
	}
	// disabled cache never stores
	d := newLRU[*cacheEntry](-1)
	d.put("x", &cacheEntry{})
	if _, ok := d.get("x"); ok || d.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestRealExecutorEndToEnd exercises the default benchmark executor
// through the full HTTP path: a real treeadd run, then a cache hit that
// must be byte-identical with the digest intact — the acceptance
// criterion's memoization soundness check in miniature.
func TestRealExecutorEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"benchmark":"treeadd","procs":2,"scale":16}`
	st1, b1, h1 := postRun(t, ts, body)
	if st1 != 200 {
		t.Fatalf("real run = %d (%s)", st1, b1)
	}
	var rec record.RunRecord
	if err := json.Unmarshal(b1, &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.Verified || rec.Cycles <= 0 || rec.TraceDigest == "" {
		t.Fatalf("run record implausible: %+v", rec)
	}
	st2, b2, h2 := postRun(t, ts, body)
	if st2 != 200 || h2.Get("X-Oldend-Cache") != "hit" {
		t.Fatalf("repeat = %d cache=%q, want 200 hit", st2, h2.Get("X-Oldend-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cache hit diverged from original run bytes")
	}
	if h1.Get("X-Oldend-Cache") != "miss" {
		t.Fatalf("first run cache header = %q", h1.Get("X-Oldend-Cache"))
	}
	// And the verify path against a real deterministic run must match.
	st3, b3, _ := postRun(t, ts, `{"benchmark":"treeadd","procs":2,"scale":16,"verify":true}`)
	if st3 != 200 {
		t.Fatalf("verify of real run = %d (%s) — determinism violation?", st3, b3)
	}
	if got := counterValue(t, s.Metrics(), "oldend_cache_verify_total", metrics.L("outcome", "mismatch")); got != 0 {
		t.Fatalf("real run verify mismatches = %d, want 0", got)
	}
}
