package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/bench/record"
	"repro/internal/obs"

	_ "repro/internal/bench/treeadd"
)

func probeExec(req RunRequest, _ *obs.Span) (record.RunRecord, error) {
	return record.RunRecord{
		Benchmark:   req.Benchmark,
		Procs:       req.Procs,
		Scheme:      req.Scheme,
		Mode:        req.Mode,
		Scale:       req.Scale,
		Cycles:      99,
		Verified:    true,
		TraceDigest: "events=1 hash=p",
	}, nil
}

// TestCacheProbe pins the peer-probe endpoint the cluster router uses
// for hot-key replication: a miss is 404 without executing anything, a
// hit serves the memoized bytes — identical to the /run answer — with
// the cache and digest headers.
func TestCacheProbe(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 8, Execute: probeExec})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"benchmark":"treeadd","procs":2,"scale":32}`
	var q RunRequest
	nq, err := Normalize(RunRequest{Benchmark: "treeadd", Procs: 2, Scale: 32})
	if err != nil {
		t.Fatal(err)
	}
	q = nq
	key := CacheKey(q)
	probeURL := ts.URL + "/cache/probe?key=" + url.QueryEscape(key)

	// Before any execution: miss, no side effects.
	resp, err := http.Get(probeURL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("probe before execution: status %d, want 404", resp.StatusCode)
	}

	status, ran, _ := postRun(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("run: status %d", status)
	}

	resp, err = http.Get(probeURL)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after execution: status %d, want 200", resp.StatusCode)
	}
	if !bytes.Equal(got, ran) {
		t.Errorf("probe bytes differ from the /run answer:\n%s\nvs\n%s", got, ran)
	}
	if resp.Header.Get("X-Oldend-Cache") != "hit" {
		t.Errorf("probe hit X-Oldend-Cache = %q, want hit", resp.Header.Get("X-Oldend-Cache"))
	}
	if resp.Header.Get("X-Oldend-Trace-Digest") == "" {
		t.Error("probe hit missing X-Oldend-Trace-Digest")
	}

	// Parameter validation: a probe without a key is a 400, and POST is
	// not a probe.
	resp, err = http.Get(ts.URL + "/cache/probe")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("probe without key: status %d, want 400", resp.StatusCode)
	}
}

// TestCacheKeyIsTheCanonicalKey pins the single-source-of-truth
// contract: the exported CacheKey — which the cluster ring hashes — is
// exactly the key the server caches under, and it excludes the
// handling-only fields.
func TestCacheKeyIsTheCanonicalKey(t *testing.T) {
	q, err := Normalize(RunRequest{Benchmark: "treeadd", Procs: 4, Scale: 64})
	if err != nil {
		t.Fatal(err)
	}
	if q.Key() != CacheKey(q) {
		t.Fatalf("Key() %q != CacheKey() %q", q.Key(), CacheKey(q))
	}
	with := q
	with.NoCache, with.Verify, with.DeadlineMS = true, true, 123
	if CacheKey(with) != CacheKey(q) {
		t.Error("CacheKey must ignore NoCache/Verify/DeadlineMS (handling, not identity)")
	}
}

// TestDisposition pins the cache-disposition classifier shared by /run
// and /batch.
func TestDisposition(t *testing.T) {
	base := RunRequest{Benchmark: "treeadd", Procs: 1}
	if d := base.Disposition(); d != "miss" {
		t.Errorf("plain request disposition %q, want miss", d)
	}
	nc := base
	nc.NoCache = true
	if d := nc.Disposition(); d != "bypass" {
		t.Errorf("no_cache disposition %q, want bypass", d)
	}
	v := base
	v.Verify = true
	if d := v.Disposition(); d != "verify" {
		t.Errorf("verify disposition %q, want verify", d)
	}
}

// TestShardNameHeader: a replica configured with a shard name advertises
// it on every response.
func TestShardNameHeader(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: probeExec, ShardName: "shard7"})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, _, h := postRun(t, ts, `{"benchmark":"treeadd","procs":1}`)
	if got := h.Get("X-Oldend-Shard"); got != "shard7" {
		t.Errorf("X-Oldend-Shard = %q, want shard7", got)
	}
}
