package server

// This file serves POST /analyze: static admission control for mini-C
// programs. The effects analysis (internal/analysis/effects) bounds what
// a program could do — steps and allocations per invocation, with ⊤ when
// no bound exists — and the endpoint checks those bounds against a
// per-request sandbox budget *before* any simulation runs. An unbounded
// program is rejected up front with machine-readable reasons instead of
// being discovered by a deadline mid-run; the response also carries the
// full effect summaries and the cacheability certificate so callers can
// key memoization decisions off the certificate digest.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/analysis/effects"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Budget caps what an admitted program may cost per invocation of any of
// its functions. Zero fields mean "no numeric cap"; AllowSymbolic admits
// bounds the analysis could not reduce to a constant (symbolic or
// heap-proportional) — without it only constant bounds within the caps
// pass. ⊤ bounds are never admissible.
type Budget struct {
	MaxSteps      int64 `json:"max_steps,omitempty"`
	MaxAllocs     int64 `json:"max_allocs,omitempty"`
	AllowSymbolic bool  `json:"allow_symbolic,omitempty"`
}

// AnalyzeRequest is the POST /analyze body.
type AnalyzeRequest struct {
	// Source is the mini-C program to analyze.
	Source string `json:"source"`
	// Budget, when present, turns the response's admission verdict on;
	// without it the verdict only rejects ⊤ bounds.
	Budget *Budget `json:"budget,omitempty"`
}

// FunctionReport is one function's summary in the response.
type FunctionReport struct {
	Name    string `json:"name"`
	Effects string `json:"effects"`
	Steps   string `json:"steps"`
	Allocs  string `json:"allocs"`
}

// AnalyzeResponse is the POST /analyze reply.
type AnalyzeResponse struct {
	Admitted    bool                `json:"admitted"`
	Reasons     []string            `json:"reasons,omitempty"`
	Certificate effects.Certificate `json:"certificate"`
	Functions   []FunctionReport    `json:"functions"`
	Findings    []effects.Finding   `json:"findings"`
}

// admitAgainst checks every function's bounds against the budget and
// returns the machine-readable refusal reasons, empty when admitted.
func admitAgainst(res *effects.Result, budget *Budget) []string {
	var reasons []string
	checkOne := func(fn string, kind string, b effects.Bound, max int64, allowSym bool) {
		switch {
		case b.IsTop():
			reasons = append(reasons, fmt.Sprintf("unbounded-%s:%s", kind, fn))
		case b.Class == effects.BConst:
			if max > 0 && b.N > max {
				reasons = append(reasons, fmt.Sprintf("%s-budget:%s:%d>%d", kind, fn, b.N, max))
			}
		default: // symbolic or heap-proportional
			if !allowSym {
				reasons = append(reasons, fmt.Sprintf("symbolic-%s:%s:%s", kind, fn, b))
			}
		}
	}
	for _, s := range res.Summaries {
		maxSteps, maxAllocs := int64(0), int64(0)
		allowSym := true
		if budget != nil {
			maxSteps, maxAllocs = budget.MaxSteps, budget.MaxAllocs
			allowSym = budget.AllowSymbolic
		}
		checkOne(s.Name, "steps", s.Steps, maxSteps, allowSym)
		checkOne(s.Name, "allocs", s.Allocs, maxAllocs, allowSym)
	}
	return reasons
}

// handleAnalyze serves POST /analyze: parse, analyze, check the budget,
// answer. Analysis is pure computation over a few kilobytes of source,
// so it runs inline on the request goroutine — no queue, no worker.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AnalyzeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, "source is required")
		return
	}
	res, err := effects.AnalyzeSource(req.Source, core.DefaultParams())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "program does not parse: "+err.Error())
		return
	}
	reasons := admitAgainst(res, req.Budget)
	resp := AnalyzeResponse{
		Admitted:    len(reasons) == 0,
		Reasons:     reasons,
		Certificate: res.Certificate(),
		Findings:    res.Findings("<request>"),
	}
	for _, sum := range res.Summaries {
		resp.Functions = append(resp.Functions, FunctionReport{
			Name:    sum.Name,
			Effects: sum.EffectsLine(),
			Steps:   sum.Steps.String(),
			Allocs:  sum.Allocs.String(),
		})
	}
	s.cfg.Metrics.Counter("oldend_analyze_total",
		metrics.L("admitted", strconv.FormatBool(resp.Admitted))).Inc()
	writeJSON(w, http.StatusOK, resp)
}
