package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/record"
	"repro/internal/metrics"
	"repro/internal/obs"

	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
)

// TestBuildChainFor pins the static admission decision: kernel-timed
// benchmarks with a certified build phase get a chain key, whole-program
// benchmarks do not, and unknown names do not.
func TestBuildChainFor(t *testing.T) {
	chain, ok := buildChainFor("treeadd")
	if !ok || chain == "" {
		t.Fatalf("treeadd must be phase-cacheable, got %q ok=%t", chain, ok)
	}
	if c2, ok2 := buildChainFor("treeadd"); !ok2 || c2 != chain {
		t.Fatalf("memoized chain diverged: %q vs %q", c2, chain)
	}
	if em, ok := buildChainFor("em3d"); !ok || em == chain {
		t.Fatalf("em3d chain = %q ok=%t; must be cacheable and kernel-specific", em, ok)
	}
	if _, ok := buildChainFor("health"); ok {
		t.Fatal("health is whole-program; it must not be phase-cacheable")
	}
	if _, ok := buildChainFor("no-such-benchmark"); ok {
		t.Fatal("unknown benchmark must not be phase-cacheable")
	}
}

// TestPhaseCacheAcrossSchemes is the tentpole's serving-layer claim in
// miniature: the same benchmark under different coherence schemes misses
// the all-or-nothing result cache but shares one build state, and every
// run still verifies against the sequential reference.
func TestPhaseCacheAcrossSchemes(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	schemes := []string{"local", "global", "bilateral"}
	wantPhase := []string{"miss", "hit", "hit"}
	for i, scheme := range schemes {
		body := fmt.Sprintf(`{"benchmark":"treeadd","procs":2,"scale":16,"scheme":%q}`, scheme)
		st, b, h := postRun(t, ts, body)
		if st != 200 {
			t.Fatalf("[%s] run = %d (%s)", scheme, st, b)
		}
		if got := h.Get("X-Oldend-Cache"); got != "miss" {
			t.Fatalf("[%s] result cache = %q, want miss (distinct configs)", scheme, got)
		}
		if got := h.Get("X-Oldend-Phase-Cache"); got != wantPhase[i] {
			t.Fatalf("[%s] phase cache = %q, want %q", scheme, got, wantPhase[i])
		}
		var rec record.RunRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			t.Fatal(err)
		}
		if !rec.Verified {
			t.Fatalf("[%s] phase-cached run failed verification: %+v", scheme, rec)
		}
	}
	if got := counterValue(t, s.Metrics(), "oldend_phase_cache_hits_total"); got != 2 {
		t.Fatalf("phase hits = %d, want 2", got)
	}
	if got := counterValue(t, s.Metrics(), "oldend_phase_cache_misses_total"); got != 1 {
		t.Fatalf("phase misses = %d, want 1", got)
	}

	// MigrateOnly shares the same build state as the heuristic runs: the
	// key excludes mode as well as scheme.
	_, _, h := postRun(t, ts, `{"benchmark":"treeadd","procs":2,"scale":16,"mode":"migrate-only"}`)
	if got := h.Get("X-Oldend-Phase-Cache"); got != "hit" {
		t.Fatalf("migrate-only phase cache = %q, want hit", got)
	}

	// A different machine size is a different boundary: miss, not hit.
	_, _, h = postRun(t, ts, `{"benchmark":"treeadd","procs":4,"scale":16}`)
	if got := h.Get("X-Oldend-Phase-Cache"); got != "miss" {
		t.Fatalf("procs=4 phase cache = %q, want miss", got)
	}
}

// TestPhaseCacheNotApplied pins the refusals: baseline runs (different
// machine shape) and whole-program benchmarks never touch the phase
// cache, and a substituted Execute bypasses it entirely.
func TestPhaseCacheNotApplied(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, b, h := postRun(t, ts, `{"benchmark":"treeadd","baseline":true,"scale":16}`)
	if st != 200 {
		t.Fatalf("baseline run = %d (%s)", st, b)
	}
	if got := h.Get("X-Oldend-Phase-Cache"); got != "none" {
		t.Fatalf("baseline phase cache = %q, want none", got)
	}
	st, b, h = postRun(t, ts, `{"benchmark":"health","procs":2}`)
	if st != 200 {
		t.Fatalf("health run = %d (%s)", st, b)
	}
	if got := h.Get("X-Oldend-Phase-Cache"); got != "none" {
		t.Fatalf("whole-program phase cache = %q, want none", got)
	}
	if n := s.phases.len(); n != 0 {
		t.Fatalf("phase cache entries = %d, want 0 (no phase-cacheable run happened)", n)
	}
}

// TestPhaseCacheVerifyCrossScheme is the determinism cross-check through
// the phased path: verify re-runs that restore another scheme's build
// state must reproduce the memoized trace digest bit for bit.
func TestPhaseCacheVerifyCrossScheme(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"benchmark":"em3d","procs":2,"scale":16,"scheme":"global"}`
	if st, b, _ := postRun(t, ts, body); st != 200 {
		t.Fatalf("seed run = %d (%s)", st, b)
	}
	// Populate the phase cache from a different scheme, then verify the
	// first configuration: its kernel executes on top of the restored
	// build state and must match its own memoized digest.
	if st, b, _ := postRun(t, ts, `{"benchmark":"em3d","procs":2,"scale":16,"scheme":"local"}`); st != 200 {
		t.Fatalf("warm run = %d (%s)", st, b)
	}
	st, b, h := postRun(t, ts, `{"benchmark":"em3d","procs":2,"scale":16,"scheme":"global","verify":true}`)
	if st != 200 {
		t.Fatalf("verify run = %d (%s) — phased determinism violation?", st, b)
	}
	if got := h.Get("X-Oldend-Phase-Cache"); got != "hit" {
		t.Fatalf("verify run phase cache = %q, want hit", got)
	}
	if got := counterValue(t, s.Metrics(), "oldend_cache_verify_total", metrics.L("outcome", "mismatch")); got != 0 {
		t.Fatalf("verify mismatches = %d, want 0", got)
	}
}

// TestLRUConcurrentMixed hammers both cache instantiations — full run
// records and phase-prefix build states — with concurrent mixed lookups
// and insertions. The race detector owns the memory-safety claim; the
// single-threaded tail pins that eviction order stays strict-LRU after
// the storm.
func TestLRUConcurrentMixed(t *testing.T) {
	results := newLRU[*cacheEntry](8)
	phases := newLRU[*bench.BuildState](4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rk := fmt.Sprintf("run-%d", (g+i)%12)
				pk := fmt.Sprintf("phase-%d", (g*i)%6)
				if _, ok := results.get(rk); !ok {
					results.put(rk, &cacheEntry{digest: rk})
				}
				if _, ok := phases.get(pk); !ok {
					phases.put(pk, &bench.BuildState{Benchmark: pk})
				}
				results.len()
				phases.keys()
			}
		}(g)
	}
	wg.Wait()
	if n := results.len(); n != 8 {
		t.Fatalf("result cache len = %d, want capacity 8", n)
	}
	if n := phases.len(); n != 4 {
		t.Fatalf("phase cache len = %d, want capacity 4", n)
	}

	// Deterministic tail: rebuild a known access pattern and assert the
	// exact eviction order, most recent first.
	c := newLRU[*bench.BuildState](3)
	for _, k := range []string{"a", "b", "c"} {
		c.put(k, &bench.BuildState{Benchmark: k})
	}
	c.get("a")                                    // order: a c b
	c.put("d", &bench.BuildState{Benchmark: "d"}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	want := []string{"d", "a", "c"}
	got := c.keys()
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

// TestBatchEndpoint drives /batch over a mixed configuration set:
// duplicates collapse, result-cache hits serve memoized bytes, and the
// three-scheme sweep shares one build via the phase cache.
func TestBatchEndpoint(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed the result cache with the local-scheme run.
	if st, b, _ := postRun(t, ts, `{"benchmark":"treeadd","procs":2,"scale":16,"scheme":"local"}`); st != 200 {
		t.Fatalf("seed = %d (%s)", st, b)
	}

	body := `{"runs":[
		{"benchmark":"treeadd","procs":2,"scale":16,"scheme":"local"},
		{"benchmark":"treeadd","procs":2,"scale":16,"scheme":"global"},
		{"benchmark":"treeadd","procs":2,"scale":16,"scheme":"bilateral"},
		{"benchmark":"treeadd","procs":2,"scale":16,"scheme":"global"},
		{"benchmark":"no-such-bench"}
	]}`
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	var items []BatchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("items = %d, want 5", len(items))
	}
	if items[0].Status != 200 || items[0].Cache != "hit" {
		t.Fatalf("seeded item: %+v", items[0])
	}
	for _, i := range []int{1, 2} {
		if items[i].Status != 200 || items[i].Cache != "miss" {
			t.Fatalf("swept item %d: %+v", i, items[i])
		}
		if items[i].PhaseCache != "hit" {
			t.Fatalf("swept item %d phase cache = %q, want hit (build seeded by the local run)",
				i, items[i].PhaseCache)
		}
		var rec record.RunRecord
		if err := json.Unmarshal(items[i].Record, &rec); err != nil || !rec.Verified {
			t.Fatalf("swept item %d record: %v %+v", i, err, rec)
		}
	}
	if items[3].Status != 200 || items[3].Cache != "dedup" {
		t.Fatalf("duplicate item: %+v", items[3])
	}
	if string(items[3].Record) != string(items[1].Record) {
		t.Fatal("duplicate item record diverged from its executed twin")
	}
	if items[4].Status != http.StatusBadRequest || items[4].Error == "" {
		t.Fatalf("invalid item: %+v", items[4])
	}
	if got := resp.Header.Get("X-Oldend-Batch"); got != "runs=5 cache-hits=2 phase-hits=2" {
		t.Fatalf("batch header = %q", got)
	}
}

// TestBatchColdSweepSharesBuild is the batch-level dedup claim with a
// cold server: a three-scheme sweep must build exactly once (the group
// head) and serve the rest as phase hits — the warm-then-fan ordering.
func TestBatchColdSweepSharesBuild(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"runs":[
		{"benchmark":"mst","procs":2,"scale":16,"scheme":"local"},
		{"benchmark":"mst","procs":2,"scale":16,"scheme":"global"},
		{"benchmark":"mst","procs":2,"scale":16,"scheme":"bilateral"}
	]}`
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var items []BatchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	misses, hits := 0, 0
	for i, it := range items {
		if it.Status != 200 {
			t.Fatalf("item %d: %+v", i, it)
		}
		switch it.PhaseCache {
		case "miss":
			misses++
		case "hit":
			hits++
		}
	}
	if misses != 1 || hits != 2 {
		t.Fatalf("cold sweep: %d misses, %d hits; want 1 build and 2 restores", misses, hits)
	}
}

// TestBatchValidation pins the request-shape errors.
func TestBatchValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: func(req RunRequest, _ *obs.Span) (record.RunRecord, error) {
		return record.RunRecord{Benchmark: req.Benchmark, Verified: true}, nil
	}})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"runs":[]}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"runs":[{"benchmark":"treeadd"},{"benchmark":"treeadd"},{"benchmark":"treeadd"},
		   {"benchmark":"treeadd"},{"benchmark":"treeadd"}]}`, http.StatusBadRequest}, // > QueueDepth
	} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch = %d", resp.StatusCode)
	}
}
