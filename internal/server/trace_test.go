package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// postRunHdr posts a /run body with extra request headers and returns
// status, body and response headers.
func postRunHdr(t *testing.T, ts *httptest.Server, body string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestTraceIDHeaderOnEveryResponse pins the contract that every
// response — success, client error, shed — carries X-Oldend-Trace-Id
// and X-Request-Id, so any failure a client sees can be quoted back at
// the introspection endpoints.
func TestTraceIDHeaderOnEveryResponse(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 1, Execute: exec.fn, SampleEvery: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	check := func(label string, h http.Header) {
		t.Helper()
		tid := h.Get("X-Oldend-Trace-Id")
		if len(tid) != 32 {
			t.Errorf("%s: X-Oldend-Trace-Id = %q, want 32 hex chars", label, tid)
		}
		if h.Get("X-Request-Id") != tid {
			t.Errorf("%s: X-Request-Id = %q != trace id %q", label, h.Get("X-Request-Id"), tid)
		}
	}

	// 400: malformed body still gets an id.
	_, _, h := postRunHdr(t, ts, `{`, nil)
	check("400", h)

	// Park the worker; the next request waits in the one queue slot until
	// its 50ms deadline fires → 504.
	st1, _, h1 := postRunAsync(t, ts, `{"benchmark":"treeadd","procs":1}`)
	<-exec.started
	st504, _, h504 := postRunHdr(t, ts, `{"benchmark":"treeadd","procs":8,"deadline_ms":50}`, nil)
	if st504 != http.StatusGatewayTimeout {
		t.Fatalf("expected 504, got %d", st504)
	}
	check("504", h504)

	// The expired job still occupies the queue slot (the worker is
	// parked), so the next admission sheds → 429.
	stShed, _, hShed := postRunHdr(t, ts, `{"benchmark":"treeadd","procs":4}`, nil)
	if stShed != http.StatusTooManyRequests {
		t.Fatalf("expected 429 shed, got %d", stShed)
	}
	check("429", hShed)

	exec.release <- struct{}{} // the expired job is discarded without executing
	if st := <-st1; st != 200 {
		t.Fatalf("parked run = %d", st)
	}
	check("200", <-h1)
}

// postRunAsync fires a /run in the background, returning channels for
// status and headers.
func postRunAsync(t *testing.T, ts *httptest.Server, body string) (<-chan int, <-chan []byte, <-chan http.Header) {
	t.Helper()
	stc := make(chan int, 1)
	bc := make(chan []byte, 1)
	hc := make(chan http.Header, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			stc <- -1
			bc <- nil
			hc <- nil
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		stc <- resp.StatusCode
		bc <- b
		hc <- resp.Header
	}()
	return stc, bc, hc
}

// TestSampledRunMergedChromeTrace drives a real treeadd run with an
// upstream sampled traceparent and asserts the whole observability
// chain: the response advertises the upstream trace id, /debug/requests
// lists it, and /debug/trace/<id> serves ONE valid Chrome trace holding
// both service spans (pid 1000) and simulated cache events (sim pids) —
// the tentpole's merged export.
func TestSampledRunMergedChromeTrace(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8}) // SampleEvery 0: sample only on upstream ask
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const upstream = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	st, _, h := postRunHdr(t, ts, `{"benchmark":"treeadd","procs":2,"scale":16}`,
		map[string]string{"traceparent": upstream})
	if st != 200 {
		t.Fatalf("sampled run = %d", st)
	}
	tid := h.Get("X-Oldend-Trace-Id")
	if tid != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id = %q, want the upstream id propagated", tid)
	}

	// /debug/requests lists the finished request, slowest-first.
	stReq, body := getBody(t, ts, "/debug/requests")
	if stReq != 200 {
		t.Fatalf("/debug/requests = %d", stReq)
	}
	var dbg struct {
		InFlight int              `json:"in_flight"`
		Requests []obs.ReqSummary `json:"requests"`
	}
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatalf("/debug/requests not JSON: %v\n%s", err, body)
	}
	var found *obs.ReqSummary
	for i := range dbg.Requests {
		if dbg.Requests[i].TraceID == tid {
			found = &dbg.Requests[i]
		}
	}
	if found == nil {
		t.Fatalf("trace %s not in /debug/requests: %s", tid, body)
	}
	if !found.Sampled || found.Path != "/run" || found.Status != 200 {
		t.Fatalf("summary wrong: %+v", *found)
	}
	if found.Dominant == "" {
		t.Fatalf("sampled summary missing dominant span: %+v", *found)
	}

	// The merged Chrome export: service spans AND sim events in one file.
	stTr, chromeBody := getBody(t, ts, "/debug/trace/"+tid)
	if stTr != 200 {
		t.Fatalf("/debug/trace = %d: %s", stTr, chromeBody)
	}
	stats, err := trace.ValidateChrome(bytes.NewReader(chromeBody))
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if stats.ByPid[1000] < 4 {
		t.Fatalf("service spans (pid 1000) = %d, want >= 4 (root, probe, queue, execute)", stats.ByPid[1000])
	}
	simEvents := 0
	for pid, n := range stats.ByPid {
		if pid != 1000 {
			simEvents += n
		}
	}
	if simEvents == 0 {
		t.Fatal("merged trace has no simulated events — the sim recorder was not attached")
	}
	if stats.ByCat["service"] == 0 {
		t.Fatal("no events categorized 'service'")
	}

	// The tree view: execute has phase children and simulated cycles.
	stTree, treeBody := getBody(t, ts, "/debug/trace/"+tid+"?format=tree")
	if stTree != 200 {
		t.Fatalf("tree view = %d", stTree)
	}
	var tree obs.TraceTree
	if err := json.Unmarshal(treeBody, &tree); err != nil {
		t.Fatal(err)
	}
	if tree.TraceID != tid || tree.SimEvents == 0 {
		t.Fatalf("tree = trace_id %q sim_events %d, want %q and > 0", tree.TraceID, tree.SimEvents, tid)
	}
	names := map[string]bool{}
	var walk func(st obs.SpanTree)
	walk = func(st obs.SpanTree) {
		names[st.Name] = true
		for _, c := range st.Children {
			walk(c)
		}
	}
	walk(tree.Root)
	for _, want := range []string{"cache_probe", "queue_wait", "execute", "phase:kernel", "serialize"} {
		if !names[want] {
			t.Errorf("span %q missing from tree; have %v", want, names)
		}
	}

	// Unsampled request: no traceparent, SampleEvery -1 → not retained.
	st2, _, h2 := postRunHdr(t, ts, `{"benchmark":"treeadd","procs":2,"scale":16,"nocache":true}`, nil)
	if st2 != 200 {
		t.Fatalf("unsampled run = %d", st2)
	}
	if st404, _ := getBody(t, ts, "/debug/trace/"+h2.Get("X-Oldend-Trace-Id")); st404 != http.StatusNotFound {
		t.Fatalf("unsampled trace lookup = %d, want 404", st404)
	}
}

// TestDeadline504TraceComplete pins satellite 4's second half: a job
// that dies in the queue still produces a complete, retained span tree —
// root finished normally, queue_wait flushed with the aborted attribute.
func TestDeadline504TraceComplete(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.fn, SampleEvery: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park the worker, then time a second request out in the queue.
	st1, _, _ := postRunAsync(t, ts, `{"benchmark":"treeadd","procs":1}`)
	<-exec.started
	st, _, h := postRunHdr(t, ts, `{"benchmark":"treeadd","procs":2,"deadline_ms":50}`, nil)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("queued run = %d, want 504", st)
	}
	tid := h.Get("X-Oldend-Trace-Id")

	stTree, body := getBody(t, ts, "/debug/trace/"+tid+"?format=tree")
	if stTree != 200 {
		t.Fatalf("504 trace not retained: %d", stTree)
	}
	var tree obs.TraceTree
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatal(err)
	}
	var qw *obs.SpanTree
	for i := range tree.Root.Children {
		if tree.Root.Children[i].Name == "queue_wait" {
			qw = &tree.Root.Children[i]
		}
	}
	if qw == nil {
		t.Fatalf("504 tree has no queue_wait child: %s", body)
	}
	aborted := false
	for _, a := range qw.Attrs {
		if a.Key == "aborted" && a.Value == "true" {
			aborted = true
		}
	}
	if !aborted {
		t.Fatalf("queue_wait not flushed as aborted: %+v", qw.Attrs)
	}
	// Root itself finished normally (no aborted attr).
	for _, a := range tree.Root.Attrs {
		if a.Key == "aborted" {
			t.Fatalf("root span wrongly aborted: %+v", tree.Root.Attrs)
		}
	}

	exec.release <- struct{}{}
	exec.release <- struct{}{}
	if got := <-st1; got != 200 {
		t.Fatalf("parked run = %d", got)
	}
}

// TestDrainFlushesInflightSpans pins satellite 4's first half: Shutdown
// aborts in-flight sampled requests into the finished ring, marked
// aborted_at_drain, so a drain leaves no invisible requests behind.
func TestDrainFlushesInflightSpans(t *testing.T) {
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 4, Execute: exec.fn, SampleEvery: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stc, _, _ := postRunAsync(t, ts, `{"benchmark":"treeadd","procs":1}`)
	<-exec.started

	// Shutdown with an expired context: drain can't finish (the worker is
	// parked), so AbortInflight must sweep the live request.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)

	var drained *obs.ReqSummary
	for _, r := range s.Tracer().Requests() {
		if r.ShedReason == "aborted_at_drain" {
			rr := r
			drained = &rr
		}
	}
	if drained == nil {
		t.Fatalf("no aborted_at_drain summary after Shutdown: %+v", s.Tracer().Requests())
	}
	if drained.Path != "/run" || !drained.Sampled {
		t.Fatalf("drained summary wrong: %+v", *drained)
	}

	exec.release <- struct{}{}
	<-stc
}

// TestExemplarLinksHistogramToTrace pins the exemplar bridge: after a
// sampled run, the latency histograms carry an exemplar whose ref is the
// request's trace id — the jump from "p99 is bad" to "here is a p99
// trace".
func TestExemplarLinksHistogramToTrace(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, SampleEvery: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _, h := postRunHdr(t, ts, `{"benchmark":"treeadd","procs":2,"scale":16}`, nil)
	if st != 200 {
		t.Fatalf("run = %d", st)
	}
	tid := h.Get("X-Oldend-Trace-Id")

	snap := s.Metrics().Snapshot()
	for _, name := range []string{"oldend_run_us", "oldend_queue_wait_us"} {
		sm, ok := snap.Get(name)
		if !ok || sm.Hist == nil {
			t.Fatalf("%s missing from snapshot", name)
		}
		refs := map[string]bool{}
		for _, ex := range sm.Hist.Exemplars {
			refs[ex.Ref] = true
		}
		if !refs[tid] {
			t.Errorf("%s exemplars %v missing trace id %s", name, refs, tid)
		}
	}
}

// TestTraceCapacityDropsSurfaced pins satellite 3 end to end at the
// server layer: with a tiny per-request event ring, a real run overflows
// and the drop count shows up in the oldend_trace_dropped_total counter,
// the Chrome export's trace_dropped metadata, and the tree's sim_dropped.
func TestTraceCapacityDropsSurfaced(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, SampleEvery: 1, TraceCapacity: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _, h := postRunHdr(t, ts, `{"benchmark":"treeadd","procs":2,"scale":16}`, nil)
	if st != 200 {
		t.Fatalf("run = %d", st)
	}
	tid := h.Get("X-Oldend-Trace-Id")

	if got := counterValue(t, s.Metrics(), "oldend_trace_dropped_total"); got == 0 {
		t.Fatal("oldend_trace_dropped_total = 0 with a 4-slot ring")
	}
	_, chromeBody := getBody(t, ts, "/debug/trace/"+tid)
	stats, err := trace.ValidateChrome(bytes.NewReader(chromeBody))
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedEvents == 0 {
		t.Fatal("Chrome export missing trace_dropped metadata")
	}
	_, treeBody := getBody(t, ts, "/debug/trace/"+tid+"?format=tree")
	var tree obs.TraceTree
	if err := json.Unmarshal(treeBody, &tree); err != nil {
		t.Fatal(err)
	}
	if tree.SimDropped == 0 {
		t.Fatal("tree view missing sim_dropped")
	}
}

// TestAccessLogCarriesTraceAndShed extends the log-shape golden: shed
// responses log shed_reason and every line logs the same trace_id the
// response advertised — logs, metrics and traces join on one key.
func TestAccessLogCarriesTraceAndShed(t *testing.T) {
	var buf syncBuffer
	exec := newBlockingExec()
	s := New(Config{Workers: 1, QueueDepth: 1, Execute: exec.fn, SampleEvery: 1,
		AccessLog: NewAccessLogger(&buf)})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stc, _, _ := postRunAsync(t, ts, `{"benchmark":"treeadd","procs":1}`)
	<-exec.started
	st2, _, _ := postRunAsync(t, ts, `{"benchmark":"treeadd","procs":2}`)
	// The probe may race req2 for the queue slot; a short deadline makes
	// a wrongly-queued probe 504 quickly, and the expired job it leaves
	// behind keeps the queue full for the next attempt.
	var hShed http.Header
	deadline := time.Now().Add(10 * time.Second)
	for {
		var stS int
		stS, _, hShed = postRunHdr(t, ts, `{"benchmark":"treeadd","procs":4,"deadline_ms":200}`, nil)
		if stS == http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never shed")
		}
	}
	exec.release <- struct{}{}
	exec.release <- struct{}{}
	<-stc
	<-st2

	wantTID := hShed.Get("X-Oldend-Trace-Id")
	var shedLine map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line not JSON: %v: %s", err, line)
		}
		for _, k := range []string{"time", "level", "msg", "method", "path", "status", "trace_id", "dur_us"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("log line missing %q: %s", k, line)
			}
		}
		if m["trace_id"] == wantTID && m["shed_reason"] == "queue_full" {
			shedLine = m
		}
	}
	if shedLine == nil {
		t.Fatalf("no shed log line with trace_id=%s shed_reason=queue_full:\n%s", wantTID, buf.String())
	}
	if shedLine["status"] != float64(http.StatusTooManyRequests) {
		t.Fatalf("shed line status = %v", shedLine["status"])
	}
}
