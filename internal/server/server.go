// Package server is oldend's serving layer: a long-running HTTP service
// that executes Olden benchmark runs on a bounded worker pool with
// admission control, per-request deadlines, deterministic result
// memoization, Prometheus metrics and graceful drain.
//
// The production envelope mirrors the paper's own theme one level up the
// stack: the simulator software-caches remote heap lines because remote
// fetches are expensive; the server memoizes whole run results because
// runs are expensive — and PR 3's determinism work (byte-stable trace
// digests) is what makes that memoization *sound* rather than heuristic:
// a RunRecord is a pure function of its run configuration, so cached
// bytes are exactly what a re-run would produce, and any divergence is a
// determinism bug worth failing loudly over.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/record"
	"repro/internal/coherence"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rt"
)

// RunRequest is the POST /run body: one benchmark run configuration.
// Unset fields take the catalog defaults; the canonicalized configuration
// is the result-cache key.
type RunRequest struct {
	Benchmark string `json:"benchmark"`
	Baseline  bool   `json:"baseline,omitempty"`
	Procs     int    `json:"procs,omitempty"`
	Scale     int    `json:"scale,omitempty"`
	Scheme    string `json:"scheme,omitempty"`
	Mode      string `json:"mode,omitempty"`

	// NoCache bypasses the result cache entirely: the run executes and
	// its result is not stored.
	NoCache bool `json:"no_cache,omitempty"`
	// Verify forces execution even on a cache hit and cross-checks the
	// fresh trace digest against the memoized one; a mismatch is a
	// determinism violation and is served as a 500.
	Verify bool `json:"verify,omitempty"`
	// DeadlineMS caps this request's time in the service (queue wait +
	// execution), bounded above by the server's MaxDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Key is the canonical cache/identity key of the (already normalized)
// configuration. It delegates to CacheKey, the single source of truth.
func (q RunRequest) Key() string { return CacheKey(q) }

// CacheKey renders the canonical result-cache key of a normalized run
// configuration — the single source of truth shared by the server's
// result cache, the cluster router's consistent-hash ring and the tests.
// It deliberately excludes NoCache/Verify/DeadlineMS: those shape
// request handling, not the result. Two processes that agree on this
// string agree on result identity, which is what lets a router shard
// the cache across replicas without any coordination protocol.
func CacheKey(q RunRequest) string {
	return fmt.Sprintf("%s|baseline=%t|P=%d|scale=%d|scheme=%s|mode=%s",
		q.Benchmark, q.Baseline, q.Procs, q.Scale, q.Scheme, q.Mode)
}

// Normalize validates a request and fills catalog defaults, returning
// the canonical configuration CacheKey is defined over. Exported so the
// cluster router canonicalizes requests exactly the way the replicas
// will — same validation, same defaults, same key.
func Normalize(q RunRequest) (RunRequest, error) { return normalize(q) }

// Disposition returns the cache disposition a (normalized) request
// carries into execution: "bypass" when it refuses the cache, "verify"
// when it cross-checks it, else "miss".
func (q RunRequest) Disposition() string {
	switch {
	case q.NoCache:
		return "bypass"
	case q.Verify:
		return "verify"
	}
	return "miss"
}

// ExecuteFunc runs one normalized request to completion and returns its
// record. The default executes the registered benchmark; tests substitute
// controllable fakes to exercise queueing without timing dependence. sp
// is the request's execute span — nil unless the request is sampled, and
// safe to use either way.
type ExecuteFunc func(req RunRequest, sp *obs.Span) (record.RunRecord, error)

// ExecutePhasedFunc is ExecuteFunc with the phase-cache disposition:
// "hit" (build state restored), "miss" (built and stored) or "none" (the
// configuration is not phase-cacheable).
type ExecutePhasedFunc func(req RunRequest, sp *obs.Span) (record.RunRecord, string, error)

// Config tunes a Server. The zero value is usable: every field has a
// default chosen for a small local instance.
type Config struct {
	// Workers is the execution pool size — the maximum number of
	// simulations in flight at once (default 4). Each job gets its own
	// machine and runtime, so workers share nothing but the pool.
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds load
	// with 429 rather than queueing unboundedly (default 64).
	QueueDepth int
	// CacheEntries is the result-cache capacity in entries; 0 picks the
	// default (256), negative disables memoization.
	CacheEntries int
	// PhaseCacheEntries is the phase-cache capacity: memoized build-phase
	// boundaries shared across schemes and modes, admitted only for
	// benchmarks whose static phase plan certifies an invariant build
	// chain. 0 picks the default (64), negative disables it.
	PhaseCacheEntries int
	// DefaultDeadline applies when a request names none (default 60s);
	// MaxDeadline caps what a request may ask for (default 5m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the backoff hint attached to 429/503 responses
	// (default 1s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// ShardName, when set, identifies this replica in a cluster: every
	// response carries it as X-Oldend-Shard, which is how the router's
	// balance reporting and the smoke scripts attribute traffic without
	// trusting the router's own bookkeeping.
	ShardName string
	// Metrics receives server-level counters and histograms; a fresh
	// registry is created when nil.
	Metrics *metrics.Registry
	// AccessLog, when non-nil, receives one JSON object per request.
	AccessLog *AccessLogger
	// Tracer owns request sampling and span retention; when nil one is
	// built from SampleEvery/DebugRequests. Supplying a tracer lets
	// tests pin its clock and randomness.
	Tracer *obs.Tracer
	// SampleEvery is the head-sampling rate when Tracer is nil: N >= 1
	// samples every Nth request, 0 (the default) samples only requests
	// carrying an upstream-sampled traceparent, negative disables
	// tracing entirely.
	SampleEvery int
	// DebugRequests bounds the finished-request ring behind
	// GET /debug/requests when Tracer is nil (0 picks the obs default).
	DebugRequests int
	// TraceCapacity caps each sampled request's simulation-event ring; 0
	// picks the trace package default — the same capacity unsampled runs
	// record into, which keeps sampled trace digests byte-identical.
	TraceCapacity int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Execute substitutes the run executor (tests); nil means the real
	// benchmark executor. A substituted executor bypasses the phase
	// cache; use ExecutePhased to substitute that path too.
	Execute ExecuteFunc
	// ExecutePhased substitutes the phase-aware executor (tests); when
	// both it and Execute are nil the server uses its own phase-cached
	// benchmark executor.
	ExecutePhased ExecutePhasedFunc
	// Now substitutes the wall clock (tests); nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.PhaseCacheEntries == 0 {
		c.PhaseCacheEntries = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Tracer == nil {
		c.Tracer = obs.New(obs.Config{
			SampleEvery: c.SampleEvery,
			RequestRing: c.DebugRequests,
			Now:         c.Now,
		})
	}
	return c
}

// result is what a worker (or the admission path) delivers for one job.
// Phase timings ride along so the handler can log them without sharing
// mutable state with the worker.
type result struct {
	status      int
	body        []byte
	errMsg      string
	cache       string // hit | miss | bypass | verify
	phase       string // hit | miss | none | "" (executor has no phase path)
	shed        string // shed reason when the worker refused the job
	queueWaitUS int64
	runUS       int64
}

// job is one admitted run request waiting for a worker.
type job struct {
	req      RunRequest
	key      string
	cache    string // cache disposition decided at admission
	ctx      context.Context
	enqueued time.Time
	done     chan result // buffered(1): workers never block on delivery

	// Tracing state, all nil/"" for unsampled requests: the request's
	// parent span (execute and serialize spans hang off it), the
	// queue_wait span the worker closes on dequeue, and the trace id
	// stored as the latency histograms' exemplar.
	sp       *obs.Span
	qspan    *obs.Span
	exemplar string
}

// Server is the oldend service core. Create with New, mount Handler, and
// call Shutdown to drain.
type Server struct {
	cfg    Config
	cache  *resultCache
	phases *phaseCache
	// execute is the worker's run path: the substituted Execute, the
	// substituted ExecutePhased, or the server's own phase-cached
	// executor.
	execute ExecutePhasedFunc

	queue    chan *job
	wg       sync.WaitGroup
	admitMu  sync.RWMutex // write-held only by Shutdown, closing queue
	draining atomic.Bool

	// server-level metrics (all wall-clock observations in microseconds)
	shed         *metrics.Counter
	expired      *metrics.Counter
	cacheHits    *metrics.Counter
	cacheMisses  *metrics.Counter
	verifyOK     *metrics.Counter
	verifyBad    *metrics.Counter
	phaseHits    *metrics.Counter
	phaseMisses  *metrics.Counter
	probeHits    *metrics.Counter
	probeMisses  *metrics.Counter
	inflight     *metrics.Gauge
	queueWait    *metrics.Histogram
	runLatency   *metrics.Histogram
	simCycles    *metrics.Counter
	traceDropped *metrics.Counter
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		cache:  newLRU[*cacheEntry](cfg.CacheEntries),
		phases: newLRU[*bench.BuildState](cfg.PhaseCacheEntries),
		queue:  make(chan *job, cfg.QueueDepth),
	}
	switch {
	case cfg.Execute != nil:
		s.execute = func(req RunRequest, sp *obs.Span) (record.RunRecord, string, error) {
			rec, err := cfg.Execute(req, sp)
			return rec, "", err
		}
	case cfg.ExecutePhased != nil:
		s.execute = cfg.ExecutePhased
	default:
		s.execute = s.defaultExecutePhased
	}
	m := cfg.Metrics
	m.SetHelp("oldend_requests_total", "Requests served, by endpoint and status code.")
	m.SetHelp("oldend_shed_total", "Run requests rejected with 429 because the admission queue was full.")
	m.SetHelp("oldend_deadline_expired_total", "Admitted jobs whose deadline expired before a worker picked them up.")
	m.SetHelp("oldend_cache_hits_total", "Run requests served from the deterministic result cache.")
	m.SetHelp("oldend_cache_misses_total", "Run requests that executed because no memoized result existed.")
	m.SetHelp("oldend_cache_verify_total", "Cache-verification re-runs, by outcome (determinism cross-checks).")
	m.SetHelp("oldend_phase_cache_hits_total", "Runs that restored a memoized build-phase boundary instead of rebuilding.")
	m.SetHelp("oldend_phase_cache_misses_total", "Phase-cacheable runs that built (and memoized) their build state.")
	m.SetHelp("oldend_phase_cache_entries", "Build-phase boundaries resident in the phase cache right now.")
	m.SetHelp("oldend_cache_probe_total", "Peer cache probes (GET /cache/probe) served, by outcome.")
	m.SetHelp("oldend_queue_depth", "Jobs waiting in the admission queue right now.")
	m.SetHelp("oldend_cache_entries", "Entries resident in the result cache right now.")
	m.SetHelp("oldend_inflight_runs", "Simulations executing on the worker pool right now.")
	m.SetHelp("oldend_queue_wait_us", "Wall-clock time admitted jobs spent queued, in microseconds.")
	m.SetHelp("oldend_run_us", "Wall-clock execution time of one simulation run, in microseconds.")
	m.SetHelp("oldend_runs_total", "Completed simulation runs, by benchmark.")
	m.SetHelp("oldend_sim_cycles_total", "Simulated cycles executed across all completed runs.")
	m.SetHelp("oldend_trace_dropped_total", "Simulation trace events lost to per-request ring wrap-around on sampled runs.")
	s.shed = m.Counter("oldend_shed_total")
	s.expired = m.Counter("oldend_deadline_expired_total")
	s.cacheHits = m.Counter("oldend_cache_hits_total")
	s.cacheMisses = m.Counter("oldend_cache_misses_total")
	s.verifyOK = m.Counter("oldend_cache_verify_total", metrics.L("outcome", "match"))
	s.verifyBad = m.Counter("oldend_cache_verify_total", metrics.L("outcome", "mismatch"))
	s.phaseHits = m.Counter("oldend_phase_cache_hits_total")
	s.phaseMisses = m.Counter("oldend_phase_cache_misses_total")
	s.probeHits = m.Counter("oldend_cache_probe_total", metrics.L("outcome", "hit"))
	s.probeMisses = m.Counter("oldend_cache_probe_total", metrics.L("outcome", "miss"))
	s.inflight = m.Gauge("oldend_inflight_runs")
	s.queueWait = m.Histogram("oldend_queue_wait_us")
	s.runLatency = m.Histogram("oldend_run_us")
	s.simCycles = m.Counter("oldend_sim_cycles_total")
	s.traceDropped = m.Counter("oldend_trace_dropped_total")
	m.RegisterFunc("oldend_queue_depth", metrics.KindGauge, func() int64 { return int64(len(s.queue)) })
	m.RegisterFunc("oldend_cache_entries", metrics.KindGauge, func() int64 { return int64(s.cache.len()) })
	m.RegisterFunc("oldend_phase_cache_entries", metrics.KindGauge, func() int64 { return int64(s.phases.len()) })
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the server's registry (shared with Config.Metrics).
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

// Tracer exposes the server's request tracer (shared with Config.Tracer).
func (s *Server) Tracer() *obs.Tracer { return s.cfg.Tracer }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown begins graceful drain: readiness fails and new runs are
// refused immediately, admitted jobs run to completion, and Shutdown
// returns when the pool is idle or ctx expires. Safe to call twice.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.admitMu.Unlock()
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	// Whatever sampled requests are still open when drain completes (or
	// is abandoned) get their span trees flushed with the aborted attr
	// and retained, so a post-mortem can still read them.
	defer s.cfg.Tracer.AbortInflight()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admission outcomes.
const (
	admitOK = iota
	admitShed
	admitDraining
)

// admit offers the job to the bounded queue without blocking. The read
// lock excludes Shutdown's queue close, so a send can never race it.
func (s *Server) admit(j *job) int {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return admitDraining
	}
	select {
	case s.queue <- j:
		return admitOK
	default:
		return admitShed
	}
}

// worker executes admitted jobs until drain closes the queue. Deadlines
// are honored at phase boundaries: a job whose context expired while
// queued is skipped (freeing the slot for live work), and one whose
// context expired during execution has its result discarded by the
// waiting handler — the simulation itself always runs to completion, the
// same way a migration in the paper's runtime is not preemptible
// mid-message.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		j.qspan.End()
		wait := s.cfg.Now().Sub(j.enqueued).Microseconds()
		s.queueWait.ObserveExemplar(wait, j.exemplar)
		if j.ctx.Err() != nil {
			s.expired.Inc()
			j.done <- result{status: http.StatusGatewayTimeout, errMsg: "deadline expired while queued", cache: j.cache, shed: "deadline_queued", queueWaitUS: wait}
			continue
		}
		ex := j.sp.StartChild("execute")
		s.inflight.Add(1)
		start := s.cfg.Now()
		rec, phase, err := s.execute(j.req, ex)
		s.inflight.Add(-1)
		runUS := s.cfg.Now().Sub(start).Microseconds()
		s.runLatency.ObserveExemplar(runUS, j.exemplar)
		if err != nil {
			ex.SetAttr("error", err.Error())
			ex.EndAborted()
			j.done <- result{status: http.StatusInternalServerError, errMsg: err.Error(), cache: j.cache, queueWaitUS: wait, runUS: runUS}
			continue
		}
		if phase != "" {
			ex.SetAttr("phase_cache", phase)
		}
		ex.SetSimCycles(rec.Cycles)
		ex.End()
		ser := j.sp.StartChild("serialize")
		body, merr := marshalRecord(rec)
		ser.End()
		if merr != nil {
			j.done <- result{status: http.StatusInternalServerError, errMsg: merr.Error(), cache: j.cache, queueWaitUS: wait, runUS: runUS}
			continue
		}
		s.cfg.Metrics.Counter("oldend_runs_total", metrics.L("benchmark", j.req.Benchmark)).Inc()
		s.simCycles.Add(rec.Cycles)
		res := result{status: http.StatusOK, body: body, cache: j.cache, phase: phase, queueWaitUS: wait, runUS: runUS}
		if j.req.Verify {
			if hit, ok := s.cache.get(j.key); ok {
				if hit.digest == rec.TraceDigest {
					s.verifyOK.Inc()
				} else {
					s.verifyBad.Inc()
					res = result{
						status: http.StatusInternalServerError,
						errMsg: fmt.Sprintf("determinism violation: cached digest %s, fresh digest %s", hit.digest, rec.TraceDigest),
						cache:  "verify",
					}
				}
			} else {
				s.verifyOK.Inc()
			}
		}
		if res.status == http.StatusOK && !j.req.NoCache {
			s.cache.put(j.key, &cacheEntry{body: body, digest: rec.TraceDigest, rec: rec})
		}
		j.done <- res
	}
}

// marshalRecord renders the canonical response body: indented RunRecord
// JSON with a trailing newline, byte-stable for a given record (map keys
// sort), so a cache hit is byte-identical to the run that populated it.
func marshalRecord(rec record.RunRecord) ([]byte, error) {
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// normalize validates the request and fills catalog defaults, returning
// the canonical configuration every downstream phase (cache key, executor,
// log) agrees on.
func normalize(q RunRequest) (RunRequest, error) {
	if q.Benchmark == "" {
		return q, fmt.Errorf("missing benchmark (GET /benchmarks lists them)")
	}
	if _, ok := bench.Get(q.Benchmark); !ok {
		return q, fmt.Errorf("unknown benchmark %q (GET /benchmarks lists them)", q.Benchmark)
	}
	if q.Scale < 0 {
		return q, fmt.Errorf("scale must be >= 0")
	}
	if q.Scale == 0 {
		q.Scale = bench.DefaultScale
	}
	if q.Baseline {
		q.Procs = 1
	}
	if q.Procs == 0 {
		q.Procs = bench.CatalogDefaultProcs
	}
	if q.Procs < 1 || q.Procs > bench.CatalogMaxProcs {
		return q, fmt.Errorf("procs %d out of range 1..%d", q.Procs, bench.CatalogMaxProcs)
	}
	if q.Scheme == "" {
		q.Scheme = coherence.LocalKnowledge.String()
	}
	if _, err := coherence.Parse(q.Scheme); err != nil {
		return q, err
	}
	if q.Mode == "" {
		q.Mode = rt.Heuristic.String()
	}
	if _, err := rt.ParseMode(q.Mode); err != nil {
		return q, err
	}
	if q.DeadlineMS < 0 {
		return q, fmt.Errorf("deadline_ms must be >= 0")
	}
	return q, nil
}

// clampDeadline resolves a request's deadline_ms against the server's
// default and ceiling — the one deadline policy /run and /batch share.
func (s *Server) clampDeadline(ms int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

func (s *Server) retryAfterSeconds() string {
	secs := int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
