package metrics

// Exemplar links one histogram bucket to a concrete instance that landed
// in it — for latency histograms, a trace id. It answers the question a
// bucket count cannot: "show me one of the requests that took that long".
type Exemplar struct {
	// Le is the bucket's inclusive upper bound, matching Bucket.Le.
	Le int64 `json:"le"`
	// Value is the exemplar observation itself.
	Value int64 `json:"value"`
	// Ref is the caller-supplied reference (oldend stores the trace id).
	Ref string `json:"ref"`
}

// exemplarCell is the immutable payload swapped into a bucket's slot; a
// fresh cell per store keeps reads tear-free without locks.
type exemplarCell struct {
	value int64
	ref   string
}

// ObserveExemplar records one observation and, when ref is non-empty,
// remembers (v, ref) as the bucket's exemplar — last writer wins, which
// biases toward recency, the useful bias for "show me a recent slow
// request". An empty ref degrades to a plain Observe, so unsampled
// requests pay nothing beyond the observation itself. No-op on a nil
// histogram.
func (h *Histogram) ObserveExemplar(v int64, ref string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if ref == "" {
		return
	}
	i := bucketIndex(v)
	h.ex[i].Store(&exemplarCell{value: v, ref: ref})
}

// Exemplars returns the current exemplar of every bucket that has one,
// in ascending bucket order.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := 0; i < NumBuckets; i++ {
		if cell := h.ex[i].Load(); cell != nil {
			out = append(out, Exemplar{Le: BucketBound(i), Value: cell.value, Ref: cell.ref})
		}
	}
	return out
}
