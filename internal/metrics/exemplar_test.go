package metrics

import (
	"strings"
	"testing"
)

func TestObserveExemplar(t *testing.T) {
	h := &Histogram{}
	h.ObserveExemplar(3, "trace-a")
	h.ObserveExemplar(100, "trace-b")
	h.ObserveExemplar(120, "trace-c") // same bucket as 100: last writer wins
	h.ObserveExemplar(7, "")          // no ref: observation only

	if h.Count() != 4 {
		t.Fatalf("Count() = %d, want 4", h.Count())
	}
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("Exemplars() = %+v, want 2 entries", ex)
	}
	if ex[0].Ref != "trace-a" || ex[0].Value != 3 {
		t.Fatalf("bucket exemplar = %+v, want trace-a/3", ex[0])
	}
	if ex[1].Ref != "trace-c" || ex[1].Value != 120 || ex[1].Le != 127 {
		t.Fatalf("bucket exemplar = %+v, want trace-c/120 le=127", ex[1])
	}

	var nilH *Histogram
	nilH.ObserveExemplar(1, "x")
	if nilH.Exemplars() != nil {
		t.Fatal("nil histogram returned exemplars")
	}
}

func TestExemplarsInSnapshotJSONOnly(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_us")
	h.ObserveExemplar(50, "0af7651916cd43dd8448eb211c80319c")
	snap := r.Snapshot()

	sm, ok := snap.Get("latency_us")
	if !ok || sm.Hist == nil || len(sm.Hist.Exemplars) != 1 {
		t.Fatalf("snapshot missing exemplar: %+v", sm)
	}
	if sm.Hist.Exemplars[0].Ref != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("exemplar ref = %q", sm.Hist.Exemplars[0].Ref)
	}
	b, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "0af7651916cd43dd8448eb211c80319c") {
		t.Fatal("JSON export missing exemplar ref")
	}

	// The pinned formats must not know exemplars exist.
	flat := snap.Flat()
	for k := range flat {
		if strings.Contains(k, "exemplar") {
			t.Fatalf("Flat() leaked exemplar key %q", k)
		}
	}
	if out := snap.Prometheus(); strings.Contains(out, "0af76519") {
		t.Fatalf("Prometheus() leaked exemplar:\n%s", out)
	}
	if out := snap.Text(); strings.Contains(out, "0af76519") {
		t.Fatalf("Text() leaked exemplar:\n%s", out)
	}

	// Reset clears exemplars with the distribution.
	r.Reset()
	if ex := h.Exemplars(); ex != nil {
		t.Fatalf("Reset left exemplars: %+v", ex)
	}
}
