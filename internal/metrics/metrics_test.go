package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndHandlesAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles, got %v %v %v", c, g, h)
	}
	// None of these may panic, and all reads are zero.
	c.Add(5)
	c.Inc()
	c.Store(9)
	g.Set(3)
	g.Add(-1)
	h.Observe(100)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	r.RegisterCounter("x", &Counter{})
	r.RegisterFunc("y", KindGauge, func() int64 { return 1 })
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("nil registry has no metrics")
	}
	if snap := r.Snapshot(); len(snap.Samples) != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %d samples", len(snap.Samples))
	}
}

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("olden_migrations_total")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if c2 := r.Counter("olden_migrations_total"); c2 != c {
		t.Fatal("same id must return the same counter handle")
	}

	g := r.Gauge("pages")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 900} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 906 {
		t.Fatalf("hist count/sum = %d/%d, want 5/906", h.Count(), h.Sum())
	}
	sm, ok := r.Snapshot().Get("lat")
	if !ok || sm.Hist == nil {
		t.Fatal("histogram sample missing")
	}
	// 0 → bucket le=0; 1 → le=1; 2,3 → le=3; 900 → le=1023.
	want := []Bucket{{0, 1}, {1, 1}, {3, 2}, {1023, 1}}
	if len(sm.Hist.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", sm.Hist.Buckets, want)
	}
	for i, b := range want {
		if sm.Hist.Buckets[i] != b {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, sm.Hist.Buckets[i], b)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m")
}

func TestLabelsAreCanonicalized(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("msgs", L("type", "inval"), L("scheme", "global"))
	b := r.Counter("msgs", L("scheme", "global"), L("type", "inval"))
	if a != b {
		t.Fatal("label order must not distinguish metrics")
	}
	a.Add(2)
	sm, ok := r.Snapshot().Get("msgs", L("type", "inval"), L("scheme", "global"))
	if !ok || sm.Value != 2 {
		t.Fatalf("labelled lookup got %+v ok=%v", sm, ok)
	}
	if want := `msgs{scheme="global",type="inval"}`; sm.ID() != want {
		t.Fatalf("ID = %q, want %q", sm.ID(), want)
	}
}

func TestSnapshotIsSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(1)
	r.Counter("a", L("x", "2")).Add(2)
	r.Counter("a", L("x", "1")).Add(3)
	s1, s2 := r.Snapshot(), r.Snapshot()
	ids := []string{}
	for _, sm := range s1.Samples {
		ids = append(ids, sm.ID())
	}
	want := []string{`a{x="1"}`, `a{x="2"}`, "b"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order %v, want %v", ids, want)
		}
	}
	j1, _ := s1.JSON()
	j2, _ := s2.JSON()
	if string(j1) != string(j2) {
		t.Fatal("snapshots of unchanged registry must serialize identically")
	}
}

func TestRegisterCounterAndFunc(t *testing.T) {
	r := NewRegistry()
	var external Counter
	external.Add(11)
	r.RegisterCounter("bound", &external)
	live := int64(40)
	r.RegisterFunc("fn", KindGauge, func() int64 { return live }, L("proc", "0"))

	snap := r.Snapshot()
	if sm, _ := snap.Get("bound"); sm.Value != 11 {
		t.Fatalf("bound counter = %d, want 11", sm.Value)
	}
	if sm, _ := snap.Get("fn", L("proc", "0")); sm.Value != 40 {
		t.Fatalf("func metric = %d, want 40", sm.Value)
	}
	live = 41
	if sm, _ := r.Snapshot().Get("fn", L("proc", "0")); sm.Value != 41 {
		t.Fatal("func metric must be read-through")
	}

	// Reset zeroes owned and bound metrics but leaves func-backed alone.
	r.Reset()
	if external.Load() != 0 {
		t.Fatal("Reset must zero bound counters")
	}
	if sm, _ := r.Snapshot().Get("fn", L("proc", "0")); sm.Value != 41 {
		t.Fatal("Reset must not affect func-backed metrics")
	}
}

func TestDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(10)
	g.Set(5)
	h.Observe(4)
	before := r.Snapshot()
	c.Add(7)
	g.Set(9)
	h.Observe(4)
	h.Observe(100)
	d := r.Snapshot().Diff(before)

	if sm, ok := d.Get("c"); !ok || sm.Value != 7 {
		t.Fatalf("counter diff = %+v, want 7", sm)
	}
	if sm, ok := d.Get("g"); !ok || sm.Value != 9 {
		t.Fatalf("gauge diff must report the level (9), got %+v", sm)
	}
	sm, ok := d.Get("h")
	if !ok || sm.Hist == nil || sm.Hist.Count != 2 || sm.Hist.Sum != 104 {
		t.Fatalf("hist diff = %+v", sm)
	}

	// A diff across an idle interval is empty.
	idle := r.Snapshot()
	d = r.Snapshot().Diff(idle)
	for _, s := range d.Samples {
		if s.Kind != KindGauge.String() {
			t.Fatalf("idle diff should only carry gauge levels, got %+v", s)
		}
	}
}

func TestExporters(t *testing.T) {
	r := NewRegistry()
	r.Counter("olden_misses_total", L("scheme", "local")).Add(3)
	h := r.Histogram("olden_miss_latency_cycles")
	h.Observe(3)
	h.Observe(500)
	snap := r.Snapshot()

	text := snap.Text()
	if !strings.Contains(text, `olden_misses_total{scheme="local"} 3`) {
		t.Fatalf("text export missing counter:\n%s", text)
	}
	if !strings.Contains(text, "count=2 sum=503") {
		t.Fatalf("text export missing histogram summary:\n%s", text)
	}

	flat := snap.Flat()
	if flat[`olden_misses_total{scheme="local"}`] != 3 {
		t.Fatalf("flat export: %v", flat)
	}
	if flat["olden_miss_latency_cycles:count"] != 2 || flat["olden_miss_latency_cycles:sum"] != 503 {
		t.Fatalf("flat histogram export: %v", flat)
	}
	if flat["olden_miss_latency_cycles:le=3"] != 1 || flat["olden_miss_latency_cycles:le=511"] != 1 {
		t.Fatalf("flat histogram buckets: %v", flat)
	}

	prom := snap.Prometheus()
	for _, want := range []string{
		"# TYPE olden_misses_total counter",
		`olden_misses_total{scheme="local"} 3`,
		"# TYPE olden_miss_latency_cycles histogram",
		`olden_miss_latency_cycles_bucket{le="3"} 1`,
		`olden_miss_latency_cycles_bucket{le="511"} 2`, // cumulative
		`olden_miss_latency_cycles_bucket{le="+Inf"} 2`,
		"olden_miss_latency_cycles_sum 503",
		"olden_miss_latency_cycles_count 2",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus export missing %q:\n%s", want, prom)
		}
	}

	b, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("JSON export must round-trip: %v", err)
	}
	if len(back.Samples) != len(snap.Samples) {
		t.Fatalf("round-trip lost samples: %d != %d", len(back.Samples), len(snap.Samples))
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("lat").Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestBucketBound(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023}
	for i, want := range cases {
		if got := BucketBound(i); got != want {
			t.Fatalf("BucketBound(%d) = %d, want %d", i, got, want)
		}
	}
	if BucketBound(64) != int64(^uint64(0)>>1) {
		t.Fatal("top bucket must cover every int64")
	}
}
