package metrics

import (
	"strconv"
	"strings"
	"testing"
)

// promLine is one parsed exposition sample: metric name, label map, value.
type promLine struct {
	name   string
	labels map[string]string
	value  int64
}

// parseProm is a strict reader of the subset of the text exposition format
// the exporter emits. It understands exactly the three legal label-value
// escapes (\\, \", \n) and rejects anything else, so a test failure here
// means the exporter wrote something a Prometheus scraper would misread.
func parseProm(t *testing.T, text string) (lines []promLine, help map[string]string) {
	t.Helper()
	help = map[string]string{}
	for _, raw := range strings.Split(text, "\n") {
		if raw == "" {
			continue
		}
		if strings.HasPrefix(raw, "# HELP ") {
			rest := strings.TrimPrefix(raw, "# HELP ")
			name, h, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed HELP line %q", raw)
			}
			help[name] = unescapeHelp(t, h)
			continue
		}
		if strings.HasPrefix(raw, "#") {
			continue
		}
		lines = append(lines, parsePromSample(t, raw))
	}
	return lines, help
}

func unescapeHelp(t *testing.T, s string) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			sb.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			t.Fatalf("dangling backslash in help %q", s)
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case 'n':
			sb.WriteByte('\n')
		default:
			t.Fatalf("illegal help escape \\%c in %q", s[i], s)
		}
	}
	return sb.String()
}

func parsePromSample(t *testing.T, raw string) promLine {
	t.Helper()
	line := promLine{labels: map[string]string{}}
	rest := raw
	if i := strings.IndexAny(raw, "{ "); i < 0 {
		t.Fatalf("malformed sample line %q", raw)
	} else {
		line.name = raw[:i]
		rest = raw[i:]
	}
	if rest[0] == '{' {
		i := 1
		for rest[i] != '}' {
			j := strings.IndexByte(rest[i:], '=')
			if j < 0 {
				t.Fatalf("malformed labels in %q", raw)
			}
			key := rest[i : i+j]
			i += j + 1
			if rest[i] != '"' {
				t.Fatalf("unquoted label value in %q", raw)
			}
			i++
			var val strings.Builder
			for rest[i] != '"' {
				c := rest[i]
				if c == '\n' {
					t.Fatalf("raw newline inside label value in %q", raw)
				}
				if c == '\\' {
					i++
					switch rest[i] {
					case '\\':
						c = '\\'
					case '"':
						c = '"'
					case 'n':
						c = '\n'
					default:
						t.Fatalf("illegal label escape \\%c in %q", rest[i], raw)
					}
				}
				val.WriteByte(c)
				i++
			}
			i++ // closing quote
			line.labels[key] = val.String()
			if rest[i] == ',' {
				i++
			}
		}
		rest = rest[i+1:]
	}
	v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", raw, err)
	}
	line.value = v
	return line
}

// hostileValues are label values that break naive quoting: every escapable
// byte, Go-style escapes that are NOT legal exposition escapes (tab), and
// exposition syntax characters that need no escaping at all.
var hostileValues = []string{
	`back\slash`,
	`quo"te`,
	"new\nline",
	"tab\there",
	`all three \ " ` + "\n" + ` at once`,
	`{curly},comma=equals`,
	"unicode-é世界",
	``,
}

// TestPrometheusLabelEscapingRoundTrip feeds hostile label values through
// the exporter and reads them back with a strict exposition parser: every
// value must survive byte-for-byte, and no line may use an escape the
// format does not define.
func TestPrometheusLabelEscapingRoundTrip(t *testing.T) {
	r := NewRegistry()
	want := map[string]int64{}
	for i, v := range hostileValues {
		r.Counter("hostile_total", L("v", v)).Add(int64(i + 1))
		want[v] = int64(i + 1)
	}
	lines, _ := parseProm(t, r.Snapshot().Prometheus())
	got := map[string]int64{}
	for _, l := range lines {
		if l.name != "hostile_total" {
			t.Fatalf("unexpected metric %q", l.name)
		}
		got[l.labels["v"]] = l.value
	}
	if len(got) != len(want) {
		t.Fatalf("round trip collapsed values: got %d distinct, want %d", len(got), len(want))
	}
	for v, n := range want {
		if got[v] != n {
			t.Errorf("value %q: got %d, want %d (escaping corrupted the label)", v, got[v], n)
		}
	}
}

// TestPrometheusHistogramLabelEscaping checks the escaping also holds on
// the derived _bucket/_sum/_count series where the le label is appended.
func TestPrometheusHistogramLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hostile := `h"i\` + "\n"
	r.Histogram("lat_cycles", L("site", hostile)).Observe(5)
	lines, _ := parseProm(t, r.Snapshot().Prometheus())
	var sawBucket, sawSum bool
	for _, l := range lines {
		switch l.name {
		case "lat_cycles_bucket":
			sawBucket = true
			if l.labels["site"] != hostile {
				t.Errorf("bucket site label corrupted: %q", l.labels["site"])
			}
			if _, ok := l.labels["le"]; !ok {
				t.Error("bucket line missing le label")
			}
		case "lat_cycles_sum":
			sawSum = true
			if l.labels["site"] != hostile {
				t.Errorf("sum site label corrupted: %q", l.labels["site"])
			}
		}
	}
	if !sawBucket || !sawSum {
		t.Fatalf("missing derived series (bucket=%v sum=%v)", sawBucket, sawSum)
	}
}

// TestPrometheusHelpEscaping pins HELP emission: registered help appears
// once per metric name, with backslashes and newlines escaped and quotes
// left alone.
func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	hostileHelp := `serves "quoted" text, a back\slash` + "\nand a second line"
	r.SetHelp("runs_total", hostileHelp)
	r.Counter("runs_total", L("bench", "treeadd")).Inc()
	r.Counter("runs_total", L("bench", "em3d")).Inc()
	text := r.Snapshot().Prometheus()
	if n := strings.Count(text, "# HELP runs_total "); n != 1 {
		t.Fatalf("HELP emitted %d times, want once:\n%s", n, text)
	}
	_, help := parseProm(t, text)
	if help["runs_total"] != hostileHelp {
		t.Errorf("help round trip: got %q, want %q", help["runs_total"], hostileHelp)
	}
	if i := strings.Index(text, "# HELP runs_total"); i > strings.Index(text, "# TYPE runs_total") {
		t.Error("HELP must precede TYPE")
	}
}

// TestContentType pins the exposition MIME type HTTP handlers must serve.
func TestContentType(t *testing.T) {
	if ContentType != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("ContentType = %q", ContentType)
	}
}

// TestPrometheusCleanValuesUnchanged guards the common case: metrics with
// benign labels render in the exact bytes pre-escaping code produced.
func TestPrometheusCleanValuesUnchanged(t *testing.T) {
	r := NewRegistry()
	r.Counter("olden_misses_total", L("scheme", "local")).Add(3)
	text := r.Snapshot().Prometheus()
	want := "# TYPE olden_misses_total counter\nolden_misses_total{scheme=\"local\"} 3\n"
	if text != want {
		t.Fatalf("clean rendering changed:\n got %q\nwant %q", text, want)
	}
}
