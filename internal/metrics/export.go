package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Bucket is one non-empty histogram bucket in a snapshot: Le is the
// inclusive upper bound of the bucket's value range and Count the number of
// observations that landed in it (non-cumulative).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSample is the snapshot of one histogram. Exemplars link buckets to
// concrete instances (trace ids); they ride only in the JSON form — Flat,
// Text and Prometheus ignore them, which keeps pinned benchmark goldens
// and the exposition output byte-identical to an exemplar-free registry.
type HistSample struct {
	Count     int64      `json:"count"`
	Sum       int64      `json:"sum"`
	Buckets   []Bucket   `json:"buckets,omitempty"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Sample is the snapshot of one metric. For histograms Value is the
// observation count and Hist carries the distribution.
type Sample struct {
	Name   string      `json:"name"`
	Labels []Label     `json:"labels,omitempty"`
	Kind   string      `json:"kind"`
	Value  int64       `json:"value"`
	Hist   *HistSample `json:"histogram,omitempty"`

	id string // name + canonical labels, for sorting and diffing
}

// ID returns the sample's canonical identity: name plus sorted labels,
// rendered as name{k="v",...}.
func (s Sample) ID() string {
	if s.id != "" {
		return s.id
	}
	return s.Name + labelID(s.Labels)
}

// ContentType is the MIME type of the Prometheus text exposition format
// this package emits; HTTP handlers serving Prometheus() output must set
// it so scrapers negotiate the right parser.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Snapshot is a point-in-time copy of a registry, sorted by metric ID so
// two snapshots of the same registry state render identically.
type Snapshot struct {
	Samples []Sample `json:"samples"`
	// Help maps metric names to their registered help strings; exporters
	// render them as # HELP lines.
	Help map[string]string `json:"help,omitempty"`
}

// Snapshot copies every registered metric. Function-backed metrics are read
// at call time. Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.index))
	for _, e := range r.index {
		entries = append(entries, e)
	}
	var help map[string]string
	if len(r.help) > 0 {
		help = make(map[string]string, len(r.help))
		for k, v := range r.help {
			help[k] = v
		}
	}
	r.mu.Unlock()

	snap := Snapshot{Help: help}
	for _, e := range entries {
		s := Sample{Name: e.name, Labels: e.labels, Kind: e.kind.String(), id: e.id}
		switch {
		case e.fn != nil:
			s.Value = e.fn()
		case e.c != nil:
			s.Value = e.c.Load()
		case e.g != nil:
			s.Value = e.g.Load()
		case e.h != nil:
			hs := &HistSample{Count: e.h.Count(), Sum: e.h.Sum()}
			for i := 0; i < NumBuckets; i++ {
				if n := e.h.buckets[i].Load(); n > 0 {
					hs.Buckets = append(hs.Buckets, Bucket{Le: BucketBound(i), Count: n})
				}
			}
			hs.Exemplars = e.h.Exemplars()
			s.Value = hs.Count
			s.Hist = hs
		}
		snap.Samples = append(snap.Samples, s)
	}
	sort.Slice(snap.Samples, func(i, j int) bool { return snap.Samples[i].ID() < snap.Samples[j].ID() })
	return snap
}

// Get returns the sample with the given name and labels, if present.
func (s Snapshot) Get(name string, labels ...Label) (Sample, bool) {
	id := name + labelID(canonLabels(labels))
	for _, sm := range s.Samples {
		if sm.ID() == id {
			return sm, true
		}
	}
	return Sample{}, false
}

// Diff returns this snapshot with every counter and histogram reduced by
// its value in prev (samples absent from prev keep their full value).
// Gauges and function-backed values are reported as-is: a delta of a level
// has no meaning. Samples whose diffed value and count are both zero are
// dropped, so a diff over an idle interval is empty.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	prevByID := make(map[string]Sample, len(prev.Samples))
	for _, p := range prev.Samples {
		prevByID[p.ID()] = p
	}
	var out Snapshot
	for _, cur := range s.Samples {
		d := cur
		if p, ok := prevByID[cur.ID()]; ok && cur.Kind == KindCounter.String() {
			d.Value -= p.Value
		} else if ok && cur.Kind == KindHistogram.String() && cur.Hist != nil {
			h := &HistSample{Count: cur.Hist.Count, Sum: cur.Hist.Sum}
			if p.Hist != nil {
				h.Count -= p.Hist.Count
				h.Sum -= p.Hist.Sum
				pb := make(map[int64]int64, len(p.Hist.Buckets))
				for _, b := range p.Hist.Buckets {
					pb[b.Le] = b.Count
				}
				for _, b := range cur.Hist.Buckets {
					if n := b.Count - pb[b.Le]; n != 0 {
						h.Buckets = append(h.Buckets, Bucket{Le: b.Le, Count: n})
					}
				}
			} else {
				h.Buckets = cur.Hist.Buckets
			}
			d.Hist = h
			d.Value = h.Count
		}
		if d.Value == 0 && d.Hist == nil {
			continue
		}
		if d.Hist != nil && d.Hist.Count == 0 && d.Hist.Sum == 0 {
			continue
		}
		out.Samples = append(out.Samples, d)
	}
	return out
}

// Flat renders the snapshot as a sorted map from metric ID to value —
// the compact form benchmark records embed. Histograms contribute
// <id>:count and <id>:sum entries plus one entry per non-empty bucket.
func (s Snapshot) Flat() map[string]int64 {
	out := make(map[string]int64, len(s.Samples))
	for _, sm := range s.Samples {
		if sm.Hist == nil {
			out[sm.ID()] = sm.Value
			continue
		}
		out[sm.ID()+":count"] = sm.Hist.Count
		out[sm.ID()+":sum"] = sm.Hist.Sum
		for _, b := range sm.Hist.Buckets {
			out[fmt.Sprintf("%s:le=%d", sm.ID(), b.Le)] = b.Count
		}
	}
	return out
}

// Text renders the snapshot as aligned name value lines, histograms as
// count/sum/mean — the human-readable dump behind oldenbench output.
func (s Snapshot) Text() string {
	var sb strings.Builder
	w := 0
	for _, sm := range s.Samples {
		if n := len(sm.ID()); n > w {
			w = n
		}
	}
	for _, sm := range s.Samples {
		if sm.Hist == nil {
			fmt.Fprintf(&sb, "%-*s %d\n", w, sm.ID(), sm.Value)
			continue
		}
		mean := 0.0
		if sm.Hist.Count > 0 {
			mean = float64(sm.Hist.Sum) / float64(sm.Hist.Count)
		}
		fmt.Fprintf(&sb, "%-*s count=%d sum=%d mean=%.1f\n", w, sm.ID(), sm.Hist.Count, sm.Hist.Sum, mean)
	}
	return sb.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Prometheus renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): HELP and TYPE comments, one line per sample, histograms
// with cumulative le buckets, _sum and _count series. Serve it with
// Content-Type ContentType. Label values and help text are escaped per
// the format: the exposition escapes are exactly \\, \" (label values
// only) and \n — richer Go-style escapes like \t are not part of the
// format and would be read back literally, which is why labelID's %q
// rendering is not reused here.
func (s Snapshot) Prometheus() string {
	var sb strings.Builder
	typed := map[string]bool{}
	for _, sm := range s.Samples {
		if !typed[sm.Name] {
			if help, ok := s.Help[sm.Name]; ok {
				fmt.Fprintf(&sb, "# HELP %s %s\n", sm.Name, helpEscaper.Replace(help))
			}
			fmt.Fprintf(&sb, "# TYPE %s %s\n", sm.Name, sm.Kind)
			typed[sm.Name] = true
		}
		if sm.Hist == nil {
			fmt.Fprintf(&sb, "%s%s %d\n", sm.Name, promLabels(sm.Labels), sm.Value)
			continue
		}
		var cum int64
		for _, b := range sm.Hist.Buckets {
			cum += b.Count
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", sm.Name, promLabelsLe(sm.Labels, fmt.Sprintf("%d", b.Le)), cum)
		}
		fmt.Fprintf(&sb, "%s_bucket%s %d\n", sm.Name, promLabelsLe(sm.Labels, "+Inf"), sm.Hist.Count)
		fmt.Fprintf(&sb, "%s_sum%s %d\n", sm.Name, promLabels(sm.Labels), sm.Hist.Sum)
		fmt.Fprintf(&sb, "%s_count%s %d\n", sm.Name, promLabels(sm.Labels), sm.Hist.Count)
	}
	return sb.String()
}

// labelEscaper escapes a label value per the exposition format: backslash,
// double-quote and newline only.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper escapes HELP text per the exposition format: backslash and
// newline only (quotes are legal verbatim in help).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// promLabels renders a label set in exposition syntax. Labels arrive
// already canonically sorted from the registry.
func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(labelEscaper.Replace(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// promLabelsLe renders labels plus the histogram le label.
func promLabelsLe(labels []Label, le string) string {
	ls := make([]Label, len(labels), len(labels)+1)
	copy(ls, labels)
	ls = append(ls, Label{Key: "le", Value: le})
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return promLabels(ls)
}
