// Package metrics is a typed, label-aware metrics registry for the
// simulated machine: counters, gauges and log2-bucketed histograms with
// cheap atomic updates, point-in-time snapshots, snapshot diffing, and
// text / JSON / Prometheus-exposition exporters.
//
// Recording is off by default. Every handle constructor is safe on a nil
// *Registry and returns a nil handle, and every update method is safe on a
// nil handle, so instrumented layers hold possibly-nil handles and pay one
// predictable branch when metrics are disabled — the same discipline the
// trace recorder uses. Because all simulation events are emitted on the
// deterministic virtual-time schedule, an enabled registry's snapshot is a
// pure function of the program and configuration: the same run always
// produces the same dump, which is what lets benchmark records diff exactly.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the metric type tag.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count (resettable at
	// simulation phase boundaries).
	KindCounter Kind = iota
	// KindGauge is a value that can move both ways.
	KindGauge
	// KindHistogram is a log2-bucketed distribution of int64 observations.
	KindHistogram
)

// String names the kind as it appears in exports.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "?"
}

// Label is one name=value dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready to
// use; a nil *Counter is the disabled state and ignores updates.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (zero for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Store sets the count — used by phase resets, which may rewind a counter
// to zero. No-op on a nil counter.
func (c *Counter) Store(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Gauge is a value that can move both ways. The zero value is ready to use;
// a nil *Gauge ignores updates.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (may be negative). No-op on a nil gauge.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value (zero for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the number of histogram buckets: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i-1], with
// bucket 0 holding v <= 0. 64-bit observations always fit.
const NumBuckets = 65

// Histogram is a log2-bucketed distribution of int64 observations (cycle
// latencies, fan-outs). The zero value is ready to use; a nil *Histogram
// ignores observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
	// ex holds one optional exemplar per bucket (see ObserveExemplar);
	// nil slots cost nothing.
	ex [NumBuckets]atomic.Pointer[exemplarCell]
}

// bucketIndex maps an observation to its bucket: bits.Len64, with
// non-positive values in bucket 0.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one observation. Negative values land in bucket 0 with
// the zeros. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations (zero for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (zero for a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketBound returns the inclusive upper bound of bucket i (2^i − 1);
// the last bucket's bound covers every int64.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return (1 << uint(i)) - 1
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
		h.ex[i].Store(nil)
	}
}

// entry is one registered metric: an owned or externally-bound handle, or a
// read-through function.
type entry struct {
	name   string
	labels []Label // sorted by key
	id     string  // name + canonical label rendering
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64
}

// Registry holds named metrics. A nil *Registry is the disabled state:
// handle constructors return nil handles and Snapshot returns an empty
// snapshot. The registry is safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	index map[string]*entry
	help  map[string]string // metric name -> HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{index: map[string]*entry{}} }

// SetHelp records the HELP text for a metric name (all label variants
// share it). Exporters escape it per their format. No-op on a nil
// registry.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.help == nil {
		r.help = map[string]string{}
	}
	r.help[name] = help
	r.mu.Unlock()
}

// labelID renders labels canonically: sorted by key, {k="v",...}.
func labelID(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

func canonLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// get returns the entry for (name, labels), creating it with kind if absent.
// A kind mismatch on an existing id panics: two layers disagreeing on a
// metric's type is a programming error, not a runtime condition.
func (r *Registry) get(name string, kind Kind, labels []Label) *entry {
	ls := canonLabels(labels)
	id := name + labelID(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[id]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", id, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, labels: ls, id: id, kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		e.h = &Histogram{}
	}
	r.index[id] = e
	return e
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, KindCounter, labels).c
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, KindGauge, labels).g
}

// Histogram returns the histogram registered under (name, labels), creating
// it on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, KindHistogram, labels).h
}

// RegisterCounter binds an externally-owned counter (e.g. the machine's
// hot-path statistics) into the registry under (name, labels), replacing
// any previous binding of that id. No-op on a nil registry.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) {
	if r == nil {
		return
	}
	ls := canonLabels(labels)
	id := name + labelID(ls)
	r.mu.Lock()
	r.index[id] = &entry{name: name, labels: ls, id: id, kind: KindCounter, c: c}
	r.mu.Unlock()
}

// RegisterFunc binds a read-through metric: its value is fn() at snapshot
// time. kind must be KindCounter or KindGauge. Replaces any previous
// binding of the id. No-op on a nil registry.
func (r *Registry) RegisterFunc(name string, kind Kind, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	if kind == KindHistogram {
		panic("metrics: RegisterFunc does not support histograms")
	}
	ls := canonLabels(labels)
	id := name + labelID(ls)
	r.mu.Lock()
	r.index[id] = &entry{name: name, labels: ls, id: id, kind: kind, fn: fn}
	r.mu.Unlock()
}

// Reset zeroes every owned and externally-bound metric (function-backed
// metrics are read-through and cannot be reset here). Benchmark phase
// boundaries call this so kernel-timed regions start from a clean epoch.
// No-op on a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.index {
		switch {
		case e.fn != nil:
		case e.c != nil:
			e.c.Store(0)
		case e.g != nil:
			e.g.Set(0)
		case e.h != nil:
			e.h.reset()
		}
	}
}

// Len returns the number of registered metrics (zero on a nil registry).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.index)
}
