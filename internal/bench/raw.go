package bench

import (
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// The Raw helpers manipulate the distributed heap directly, bypassing the
// runtime's cost accounting. Benchmarks whose rows in Table 2 report kernel
// times use them for the untimed data-structure-building phase ("we report
// kernel times only ... to avoid having their data structure building
// phases, which show excellent speed-up, skew the results"); whole-program
// benchmarks build through a thread instead. They delegate to the
// runtime's Raw* methods: benchmark code never unpacks global-pointer
// encodings itself (internal/analysis enforces this).

// RawAlloc allocates on a processor without charging anything.
func RawAlloc(r *rt.Runtime, proc int, nbytes uint32) gaddr.GP {
	return r.RawAlloc(proc, nbytes)
}

// RawStore writes a word of an object without charging anything.
func RawStore(r *rt.Runtime, g gaddr.GP, off uint32, v uint64) {
	r.RawStore(g, off, v)
}

// RawLoad reads a word of an object without charging anything.
func RawLoad(r *rt.Runtime, g gaddr.GP, off uint32) uint64 {
	return r.RawLoad(g, off)
}

// RawStorePtr writes a pointer field.
func RawStorePtr(r *rt.Runtime, g gaddr.GP, off uint32, v gaddr.GP) {
	r.RawStorePtr(g, off, v)
}

// RawLoadPtr reads a pointer field.
func RawLoadPtr(r *rt.Runtime, g gaddr.GP, off uint32) gaddr.GP {
	return r.RawLoadPtr(g, off)
}

// BlockedProc maps index i of n items onto one of p processors in a blocked
// distribution (Figure 2, left).
func BlockedProc(i, n, p int) int {
	if n <= 0 {
		return 0
	}
	q := i * p / n
	if q >= p {
		q = p - 1
	}
	return q
}

// CyclicProc maps index i onto p processors cyclically (Figure 2, right).
func CyclicProc(i, p int) int { return i % p }
