package bench

import (
	"testing"
	"testing/quick"

	"repro/internal/rt"
)

func TestBlockedProc(t *testing.T) {
	// Blocked distribution covers all processors with contiguous runs.
	n, p := 100, 8
	prev := 0
	counts := make([]int, p)
	for i := 0; i < n; i++ {
		q := BlockedProc(i, n, p)
		if q < prev {
			t.Fatalf("blocked distribution not monotone at %d", i)
		}
		if q >= p {
			t.Fatalf("processor %d out of range", q)
		}
		prev = q
		counts[q]++
	}
	for q, c := range counts {
		if c == 0 {
			t.Fatalf("processor %d received no items", q)
		}
	}
}

func TestBlockedProcQuick(t *testing.T) {
	f := func(i uint16, n uint16, p uint8) bool {
		nn := int(n%1000) + 1
		pp := int(p%32) + 1
		ii := int(i) % nn
		q := BlockedProc(ii, nn, pp)
		return q >= 0 && q < pp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicProc(t *testing.T) {
	for i := 0; i < 20; i++ {
		if got := CyclicProc(i, 4); got != i%4 {
			t.Fatalf("cyclic(%d) = %d", i, got)
		}
	}
}

func TestConfigScaled(t *testing.T) {
	c := Config{Scale: 4}
	if got := c.Scaled(1024, 10); got != 256 {
		t.Fatalf("scaled = %d", got)
	}
	if got := c.Scaled(16, 10); got != 10 {
		t.Fatalf("floor not applied: %d", got)
	}
	var def Config
	if got := def.Scaled(DefaultScale*100, 1); got != 100 {
		t.Fatalf("default scale: %d", got)
	}
}

func TestRegistry(t *testing.T) {
	Register(Info{Name: "bench-test-dummy", Run: func(Config) Result { return Result{} }})
	if _, ok := Get("bench-test-dummy"); !ok {
		t.Fatal("registered benchmark not found")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register(Info{Name: "bench-test-dummy"})
}

func TestRawHelpers(t *testing.T) {
	r := rt.New(rt.Config{Procs: 2, HeapBytesPerProc: 1 << 20})
	g := RawAlloc(r, 1, 32)
	RawStore(r, g, 8, 77)
	if v := RawLoad(r, g, 8); v != 77 {
		t.Fatalf("raw load = %d", v)
	}
	RawStorePtr(r, g, 16, g)
	if v := RawLoadPtr(r, g, 16); v != g {
		t.Fatalf("raw ptr = %v", v)
	}
}

func TestSpeedupUnknownBenchmark(t *testing.T) {
	if _, _, err := Speedup("no-such-benchmark", []int{1}, 0, rt.Heuristic, 64); err == nil {
		t.Fatal("expected error")
	}
}
