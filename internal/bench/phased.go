package bench

import (
	"fmt"

	"repro/internal/mem"
)

// BuildState is a reusable build-phase boundary: the heap images and
// host-side build state captured right before a kernel-timed benchmark's
// ResetForKernel. The static phase plan proves the boundary is
// scheme-invariant, so one BuildState serves every configuration that
// agrees on benchmark, machine size and problem scale — whatever the
// coherence scheme or mechanism mode.
type BuildState struct {
	Benchmark string
	Procs     int
	Scale     int
	Images    []mem.HeapImage
	State     any
	// HeapFP is the runtime's heap fingerprint at the phase boundary,
	// recorded on the run that built the state. Every reuse re-checks it:
	// a restored image that fingerprints differently is a harness bug,
	// caught before it can contaminate a result.
	HeapFP uint64
}

// Reusable reports whether the build state can serve the configuration.
func (bs *BuildState) Reusable(name string, cfg Config) bool {
	cfg = cfg.normalize()
	return bs != nil && bs.Benchmark == name && !cfg.Baseline &&
		bs.Procs == cfg.Procs && bs.Scale == cfg.Scale
}

// noopPhase is the shared end-of-phase func returned when no OnPhase
// hook is installed, so the unhooked path allocates no closures.
func noopPhase() {}

// beginPhase enters a named execution phase, returning the func that
// ends it.
func beginPhase(cfg Config, name string) func() {
	if cfg.OnPhase == nil {
		return noopPhase
	}
	if end := cfg.OnPhase(name); end != nil {
		return end
	}
	return noopPhase
}

// RunPhased executes one configuration, reusing the given build state
// when it fits and returning the (possibly new) build state for the next
// caller. reused reports whether the build phase was skipped. Benchmarks
// without a Phased split, and baseline configurations (whose machine
// shape differs), fall back to the ordinary Run with no build state.
//
// The kernel half is bit-identical either way: the build performs no
// simulated accesses, so restoring its heap image is indistinguishable
// from re-running it.
func RunPhased(info Info, cfg Config, bs *BuildState) (Result, *BuildState, bool, error) {
	cfg = cfg.normalize()
	if info.Phased == nil || cfg.Baseline {
		end := beginPhase(cfg, "run")
		res := info.Run(cfg)
		end()
		return res, nil, false, nil
	}
	r := cfg.NewRuntime()
	reused := bs.Reusable(info.Name, cfg)
	var st any
	if reused {
		end := beginPhase(cfg, "restore_build")
		r.RestoreHeaps(bs.Images)
		st = bs.State
		end()
	} else {
		end := beginPhase(cfg, "build")
		st = info.Phased.Build(cfg, r)
		bs = &BuildState{
			Benchmark: info.Name,
			Procs:     cfg.Procs,
			Scale:     cfg.Scale,
			Images:    r.SnapshotHeaps(),
			State:     st,
		}
		end()
	}
	endKernel := beginPhase(cfg, "kernel")
	res := info.Phased.Kernel(cfg, r, st)
	endKernel()
	fp, ok := r.BuildHeapFingerprint()
	if !ok {
		return res, nil, reused, fmt.Errorf("bench: %s phased kernel crossed no phase boundary", info.Name)
	}
	if reused {
		if fp != bs.HeapFP {
			return res, nil, true, fmt.Errorf(
				"bench: %s restored build state fingerprints %#x, want %#x", info.Name, fp, bs.HeapFP)
		}
	} else {
		bs.HeapFP = fp
	}
	return res, bs, reused, nil
}
