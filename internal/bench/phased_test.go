package bench_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/rt"
	"repro/internal/trace"

	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

// The phased contract: skipping the build by restoring its heap image
// must be observationally indistinguishable from re-running it — same
// result, same kernel trace digest, same build heap fingerprint —
// whatever coherence scheme or mechanism mode runs the kernel.
func TestRunPhasedReuseMatchesColdRun(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"treeadd", "em3d", "bisort", "mst", "tsp", "voronoi", "perimeter"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			info, ok := bench.Get(name)
			if !ok {
				t.Fatalf("benchmark %s not registered", name)
			}
			if info.Phased == nil {
				t.Fatalf("kernel-timed benchmark %s has no Phased split", name)
			}
			var bs *bench.BuildState
			for i, k := range []coherence.Kind{
				coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral,
			} {
				cold := runOnce(t, info, k, rt.Heuristic, nil)
				var warm obs
				warm, bs = runOnce2(t, info, k, rt.Heuristic, bs)
				if i > 0 && !warm.reused {
					t.Fatalf("%s under %s did not reuse the build state", name, k)
				}
				if cold.res != warm.res {
					t.Fatalf("%s under %s: cold %+v != warm %+v", name, k, cold.res, warm.res)
				}
				if cold.kernelDigest != warm.kernelDigest {
					t.Fatalf("%s under %s: kernel trace digest changed on reuse:\n cold %s\n warm %s",
						name, k, cold.kernelDigest, warm.kernelDigest)
				}
				if cold.heapFP != warm.heapFP {
					t.Fatalf("%s under %s: build heap fingerprint %#x != %#x",
						name, k, warm.heapFP, cold.heapFP)
				}
			}
			// The migrate-only mode must reuse the same build state too.
			warm, _ := runOnce2(t, info, coherence.LocalKnowledge, rt.MigrateOnly, bs)
			if !warm.reused || !warm.res.Verified() {
				t.Fatalf("%s migrate-only reuse: reused=%t verified=%t",
					name, warm.reused, warm.res.Verified())
			}
		})
	}
}

type obs struct {
	res          bench.Result
	kernelDigest string
	heapFP       uint64
	reused       bool
}

func runOnce(t *testing.T, info bench.Info, k coherence.Kind, mode rt.Mode, bs *bench.BuildState) obs {
	o, _ := runOnce2(t, info, k, mode, bs)
	return o
}

func runOnce2(t *testing.T, info bench.Info, k coherence.Kind, mode rt.Mode, bs *bench.BuildState) (obs, *bench.BuildState) {
	t.Helper()
	rec := trace.New(0)
	var rtm *rt.Runtime
	cfg := bench.Config{
		Procs:       2,
		Scheme:      k,
		Mode:        mode,
		Scale:       4 * bench.DefaultScale,
		Trace:       rec,
		RuntimeHook: func(r *rt.Runtime) { rtm = r },
	}
	res, out, reused, err := bench.RunPhased(info, cfg, bs)
	if err != nil {
		t.Fatalf("RunPhased(%s, %s): %v", info.Name, k, err)
	}
	if !res.Verified() {
		t.Fatalf("%s under %s failed verification", info.Name, k)
	}
	o := obs{res: res, kernelDigest: rec.Digest().String(), reused: reused}
	if rtm != nil {
		o.heapFP, _ = rtm.BuildHeapFingerprint()
	}
	return o, out
}

// Whole-program benchmarks have no phase split; RunPhased must fall
// back to the plain Run without inventing a build state.
func TestRunPhasedWholeProgramFallback(t *testing.T) {
	t.Parallel()
	info, ok := bench.Get("health")
	if !ok {
		t.Skip("health not registered")
	}
	if info.Phased != nil {
		t.Fatalf("whole-program benchmark unexpectedly has a Phased split")
	}
	res, bs, reused, err := bench.RunPhased(info, bench.Config{Procs: 2, Scale: 8 * bench.DefaultScale}, nil)
	if err != nil {
		t.Fatalf("RunPhased: %v", err)
	}
	if bs != nil || reused {
		t.Fatalf("fallback produced a build state (bs=%v reused=%t)", bs, reused)
	}
	if !res.Verified() {
		t.Fatalf("health failed verification")
	}
}

// A build state must not serve a different machine size or scale.
func TestBuildStateReusableGuards(t *testing.T) {
	t.Parallel()
	bs := &bench.BuildState{Benchmark: "treeadd", Procs: 2, Scale: 64}
	if !bs.Reusable("treeadd", bench.Config{Procs: 2, Scale: 64}) {
		t.Fatalf("matching config rejected")
	}
	for _, cfg := range []bench.Config{
		{Procs: 4, Scale: 64},
		{Procs: 2, Scale: 32},
		{Procs: 2, Scale: 64, Baseline: true},
	} {
		if bs.Reusable("treeadd", cfg) {
			t.Fatalf("mismatched config %+v accepted", cfg)
		}
	}
	if bs.Reusable("em3d", bench.Config{Procs: 2, Scale: 64}) {
		t.Fatalf("wrong benchmark accepted")
	}
	var nilBS *bench.BuildState
	if nilBS.Reusable("treeadd", bench.Config{Procs: 2, Scale: 64}) {
		t.Fatalf("nil build state accepted")
	}
}
