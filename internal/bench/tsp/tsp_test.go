package tsp

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lang"
)

// TestTourIsValid checks the reference algorithm produces a hamiltonian
// circuit visiting each city exactly once.
func TestTourIsValid(t *testing.T) {
	for _, n := range []int{15, 63, 255, 1023} {
		pts := genPoints(n)
		root := buildTree(pts, 0)
		rep := refTSP(root, n, conquerSize)
		seen := map[int]bool{}
		count := 0
		p := rep
		for {
			if seen[p.id] {
				t.Fatalf("n=%d: city %d visited twice", n, p.id)
			}
			seen[p.id] = true
			count++
			if p.next.prev != p {
				t.Fatalf("n=%d: broken doubly-linked tour at %d", n, p.id)
			}
			p = p.next
			if p == rep {
				break
			}
		}
		if count != n {
			t.Fatalf("n=%d: tour has %d cities", n, count)
		}
	}
}

// TestTourQuality sanity-checks the heuristic tour against the BHH
// asymptotic estimate ~0.7124*sqrt(n) for uniform points in the unit
// square: a sane heuristic lands within 2x.
func TestTourQuality(t *testing.T) {
	const n = 1023
	pts := genPoints(n)
	root := buildTree(pts, 0)
	rep := refTSP(root, n, conquerSize)
	var length float64
	p := rep
	for {
		length += dist(p, p.next)
		p = p.next
		if p == rep {
			break
		}
	}
	est := 0.7124 * math.Sqrt(float64(n))
	if length > 2*est || length < est/2 {
		t.Fatalf("tour length %.2f; expected within 2x of %.2f", length, est)
	}
}

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 64})
		if !res.Verified() {
			t.Fatalf("P=%d: checksum %#x != %#x", procs, res.Check, res.WantCheck)
		}
	}
}

func TestSpeedupGoodButSublinear(t *testing.T) {
	base := Run(bench.Config{Baseline: true, Scale: 16})
	sp1 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 1, Scale: 16}).Cycles)
	sp8 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 8, Scale: 16}).Cycles)
	if sp1 < 0.8 {
		t.Errorf("1-processor speedup %.2f (paper: 0.95)", sp1)
	}
	if sp8 < 3 {
		t.Errorf("P=8 speedup %.2f (paper: 6.70)", sp8)
	}
	if sp8 > 7.8 {
		t.Errorf("P=8 speedup %.2f; merges should keep TSP below linear", sp8)
	}
}

func TestHeuristicChoice(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	rec := r.FindLoop("tsp/rec")
	if rec == nil || rec.Mech != core.ChooseMigrate || rec.Var != "t" {
		t.Fatal("tsp recursion must migrate t")
	}
	mrg := r.FindLoop("merge/while")
	if mrg == nil || mrg.Mech != core.ChooseMigrate || mrg.Var != "p" {
		t.Fatal("merge walk must migrate p (annotated tour affinity 95)")
	}
	if !r.UsesMigrationOnly() {
		t.Fatal("TSP is an M benchmark (Table 2)")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 64})
	b := Run(bench.Config{Procs: 4, Scale: 64})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
