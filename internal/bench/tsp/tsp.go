package tsp

import (
	"math"

	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// City layout: x @0, y @8, left @16, right @24, next @32, prev @40,
// id @48.
const (
	offX     = 0
	offY     = 8
	offLeft  = 16
	offRight = 24
	offNext  = 32
	offPrev  = 40
	offID    = 48
	citySz   = 56
)

const (
	paperCities = 1<<15 - 1 // 32K cities
	conquerSize = 150       // subtree size toured greedily (as in the Olden source)
	distWork    = 25        // per distance evaluation
	nodeWork    = 20        // per recursion node
	futureCost  = 38
)

// KernelSource is the kernel in the mini-C subset, with the explicit
// high-affinity hints on tree and tour pointers that make TSP an "M"
// benchmark.
const KernelSource = `
struct city {
  float x;
  float y;
  struct city *left __affinity(90);
  struct city *right __affinity(90);
  struct city *next __affinity(95);
  struct city *prev;
};

struct city * merge(struct city *a, struct city *b, struct city *t) {
  struct city *p = a;
  while (p->next != a) {
    p = p->next;
  }
  return a;
}

struct city * tsp(struct city *t, int sz) {
  struct city *a;
  struct city *b;
  if (sz < 150) return conquer(t);
  a = touch(futurecall(tsp(t->left, sz / 2)));
  b = tsp(t->right, sz / 2);
  return merge(a, b, t);
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "tsp",
		Description: "Computes an estimate of the best hamiltonian circuit for the Traveling-salesman problem",
		PaperSize:   "32K cities",
		Choice:      "M",
		Run:         Run,
		Source:      KernelSource,
		Phased:      &bench.Phased{Build: buildPhase, Kernel: kernelPhase},
	})
}

type state struct {
	site       *rt.Site // everything migrates in TSP
	parallel   bool
	spawnDepth int
}

// materialize copies the reference tree into the distributed heap,
// spreading subtrees at the top of the tree, and returns the heap root.
func materialize(r *rt.Runtime, t *refCity, proc, stride int, nodes map[*refCity]gaddr.GP) gaddr.GP {
	if t == nil {
		return gaddr.Nil
	}
	n := bench.RawAlloc(r, proc, citySz)
	nodes[t] = n
	bench.RawStore(r, n, offX, math.Float64bits(t.x))
	bench.RawStore(r, n, offY, math.Float64bits(t.y))
	bench.RawStore(r, n, offID, uint64(t.id))
	rp := proc
	if stride > 1 {
		rp = proc + stride/2
	}
	bench.RawStorePtr(r, n, offLeft, materialize(r, t.l, proc, stride/2, nodes))
	bench.RawStorePtr(r, n, offRight, materialize(r, t.r, rp, stride/2, nodes))
	return n
}

// cityView caches a city's coordinates after one load pair.
type cityView struct {
	g    gaddr.GP
	x, y float64
}

func (s *state) view(t *rt.Thread, g gaddr.GP) cityView {
	return cityView{
		g: g,
		x: t.LoadFloat(s.site, g, offX),
		y: t.LoadFloat(s.site, g, offY),
	}
}

func (s *state) dist(t *rt.Thread, a, b cityView) float64 {
	t.Work(distWork)
	dx, dy := a.x-b.x, a.y-b.y
	return math.Sqrt(dx*dx + dy*dy)
}

// collect gathers a subtree's cities in order (the conquer step's working
// set; everything is local to the subtree's processor).
func (s *state) collect(t *rt.Thread, g gaddr.GP, out *[]cityView) {
	if g.IsNil() {
		return
	}
	s.collect(t, t.LoadPtr(s.site, g, offLeft), out)
	*out = append(*out, s.view(t, g))
	s.collect(t, t.LoadPtr(s.site, g, offRight), out)
}

// conquer tours a small subtree by greedy nearest neighbor.
func (s *state) conquer(t *rt.Thread, root gaddr.GP) gaddr.GP {
	var cities []cityView
	s.collect(t, root, &cities)
	visited := map[gaddr.GP]bool{root: true}
	cur := cities[0]
	for _, c := range cities {
		if c.g == root {
			cur = c
			break
		}
	}
	start := cur
	for i := 1; i < len(cities); i++ {
		best := cityView{}
		bestD := math.Inf(1)
		for _, c := range cities {
			if visited[c.g] {
				continue
			}
			if d := s.dist(t, cur, c); d < bestD {
				bestD, best = d, c
			}
		}
		t.StorePtr(s.site, cur.g, offNext, best.g)
		t.StorePtr(s.site, best.g, offPrev, cur.g)
		visited[best.g] = true
		cur = best
	}
	t.StorePtr(s.site, cur.g, offNext, start.g)
	t.StorePtr(s.site, start.g, offPrev, cur.g)
	return root
}

// merge splices tours a and b together through the divide node t; the
// walks migrate along the tours ("a migration for each participating
// processor").
func (s *state) merge(t *rt.Thread, a, b, mid gaddr.GP) gaddr.GP {
	tv := s.view(t, mid)

	bestP := s.view(t, a)
	bestCost := math.Inf(1)
	p := s.view(t, a)
	for {
		q := s.view(t, t.LoadPtr(s.site, p.g, offNext))
		cost := s.dist(t, p, tv) + s.dist(t, tv, q) - s.dist(t, p, q)
		if cost < bestCost {
			bestCost, bestP = cost, p
		}
		p = q
		if p.g == a {
			break
		}
	}
	tNext := s.view(t, t.LoadPtr(s.site, bestP.g, offNext))
	t.StorePtr(s.site, bestP.g, offNext, mid)
	t.StorePtr(s.site, mid, offPrev, bestP.g)
	t.StorePtr(s.site, mid, offNext, tNext.g)
	t.StorePtr(s.site, tNext.g, offPrev, mid)

	bestB := s.view(t, b)
	bestCost = math.Inf(1)
	p = s.view(t, b)
	for {
		q := s.view(t, t.LoadPtr(s.site, p.g, offNext))
		cost := s.dist(t, tv, q) + s.dist(t, p, tNext) - s.dist(t, p, q)
		if cost < bestCost {
			bestCost, bestB = cost, p
		}
		p = q
		if p.g == b {
			break
		}
	}
	q := s.view(t, t.LoadPtr(s.site, bestB.g, offNext))
	t.StorePtr(s.site, mid, offNext, q.g)
	t.StorePtr(s.site, q.g, offPrev, mid)
	t.StorePtr(s.site, bestB.g, offNext, tNext.g)
	t.StorePtr(s.site, tNext.g, offPrev, bestB.g)
	return mid
}

// tsp is the divide-and-conquer driver.
func (s *state) tsp(t *rt.Thread, root gaddr.GP, sz, depth int) gaddr.GP {
	t.Work(nodeWork)
	if sz <= conquerSize {
		return s.conquer(t, root)
	}
	left := t.LoadPtr(s.site, root, offLeft)
	right := t.LoadPtr(s.site, root, offRight)
	half := sz / 2
	var a, b gaddr.GP
	if s.parallel && depth < s.spawnDepth {
		f := rt.Spawn(t, func(c *rt.Thread) gaddr.GP {
			return s.tsp(c, left, half, depth+1)
		})
		b = rt.Call(t, func() gaddr.GP { return s.tsp(t, right, half, depth+1) })
		a = f.Touch(t)
	} else {
		if s.parallel {
			t.Work(futureCost)
		}
		a = rt.Call(t, func() gaddr.GP { return s.tsp(t, left, half, depth+1) })
		b = rt.Call(t, func() gaddr.GP { return s.tsp(t, right, half, depth+1) })
	}
	return rt.Call(t, func() gaddr.GP { return s.merge(t, a, b, root) })
}

// built is the immutable build-phase state: the materialized city tree,
// the problem size and the precomputed reference checksum.
type built struct {
	root      gaddr.GP
	n         int
	distDepth int
	want      uint64
}

// buildPhase generates and materializes the city tree through the raw
// heap API; the reference tour is pure host arithmetic, so it belongs
// to the build too.
func buildPhase(cfg bench.Config, r *rt.Runtime) any {
	n := cfg.Scaled(paperCities, 511)
	// Round to 2^k − 1 so median splits stay perfect.
	k := 0
	for (1<<uint(k+1))-1 <= n {
		k++
	}
	n = (1 << uint(k)) - 1

	pts := genPoints(n)
	refRoot := buildTree(pts, 0)
	nodes := map[*refCity]gaddr.GP{}
	root := materialize(r, refRoot, 0, r.P(), nodes)

	distDepth := 0
	for 1<<uint(distDepth) < r.P() {
		distDepth++
	}
	return &built{root: root, n: n, distDepth: distDepth,
		want: reference(n, conquerSize)}
}

// kernelPhase times the closest-point merge and verifies the tour.
func kernelPhase(cfg bench.Config, r *rt.Runtime, st any) bench.Result {
	b := st.(*built)
	root, n := b.root, b.n
	s := &state{
		site:       &rt.Site{Name: "tsp.city", Mech: rt.Migrate},
		parallel:   !cfg.Baseline,
		spawnDepth: b.distDepth + 2,
	}

	r.ResetForKernel()
	var check uint64
	var cycles int64
	r.Run(0, func(t *rt.Thread) {
		rep := rt.Call(t, func() gaddr.GP { return s.tsp(t, root, n, 0) })
		cycles = r.M.Makespan() // checksum walk below is not program time
		h := uint64(1469598103934665603)
		mix := func(v uint64) {
			h ^= v
			h *= 1099511628211
		}
		var length float64
		pv := s.view(t, rep)
		start := rep
		for {
			mix(uint64(t.LoadInt(s.site, pv.g, offID)))
			nv := s.view(t, t.LoadPtr(s.site, pv.g, offNext))
			length += s.dist(t, pv, nv)
			pv = nv
			if pv.g == start {
				break
			}
		}
		mix(math.Float64bits(length))
		check = h
	})

	return bench.Result{
		Name:      "tsp",
		Procs:     r.P(),
		Cycles:    cycles,
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     check,
		WantCheck: b.want,
	}
}

// Run executes TSP under the configuration.
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	return kernelPhase(cfg, r, buildPhase(cfg, r))
}
