// Package tsp implements the TSP benchmark: an estimate of the best
// hamiltonian circuit via Karp's divide-and-conquer partitioning (paper
// Table 1: 32K cities). Cities form a k-d-style balanced tree (median
// splits on alternating coordinates); small subtrees are toured with a
// greedy nearest-neighbor conquer step, and sibling tours are merged by
// linear scans that splice the cycles.
//
// Heuristic choice (Table 2: M): TSP is one of the three benchmarks with
// explicit path-affinity hints — the tree and tour pointers are marked
// high-affinity, so both the divide recursion and the merge walks migrate.
// "Using software caching in place of migration would increase rather than
// decrease the cost of communication ... because a large amount of data is
// accessed on each processor during the subtree walk."
package tsp

import "math"

// refCity mirrors the heap city record in plain Go.
type refCity struct {
	x, y       float64
	id         int
	l, r       *refCity
	next, prev *refCity
}

// genPoints produces deterministic pseudo-random points in the unit
// square.
func genPoints(n int) []*refCity {
	pts := make([]*refCity, n)
	seed := uint64(20260705)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	for i := range pts {
		pts[i] = &refCity{x: next(), y: next(), id: i}
	}
	return pts
}

// buildTree builds the balanced tree by median split on alternating axes.
// It sorts in place and returns the median as subtree root.
func buildTree(pts []*refCity, depth int) *refCity {
	if len(pts) == 0 {
		return nil
	}
	byX := depth%2 == 0
	sortCities(pts, byX)
	m := len(pts) / 2
	root := pts[m]
	root.l = buildTree(pts[:m], depth+1)
	root.r = buildTree(pts[m+1:], depth+1)
	return root
}

// sortCities is a deterministic merge sort by one coordinate (ties by id).
func sortCities(pts []*refCity, byX bool) {
	if len(pts) < 2 {
		return
	}
	m := len(pts) / 2
	left := append([]*refCity(nil), pts[:m]...)
	right := append([]*refCity(nil), pts[m:]...)
	sortCities(left, byX)
	sortCities(right, byX)
	less := func(a, b *refCity) bool {
		ka, kb := a.x, b.x
		if !byX {
			ka, kb = a.y, b.y
		}
		if ka != kb {
			return ka < kb
		}
		return a.id < b.id
	}
	i, j := 0, 0
	for k := range pts {
		switch {
		case i < len(left) && (j >= len(right) || !less(right[j], left[i])):
			pts[k] = left[i]
			i++
		default:
			pts[k] = right[j]
			j++
		}
	}
}

func dist(a, b *refCity) float64 {
	dx, dy := a.x-b.x, a.y-b.y
	return math.Sqrt(dx*dx + dy*dy)
}

// refCollect gathers a subtree's cities in order.
func refCollect(t *refCity, out *[]*refCity) {
	if t == nil {
		return
	}
	refCollect(t.l, out)
	*out = append(*out, t)
	refCollect(t.r, out)
}

// refConquer builds a greedy nearest-neighbor tour over a small subtree,
// starting from the subtree root, and returns the root as representative.
func refConquer(t *refCity) *refCity {
	var cities []*refCity
	refCollect(t, &cities)
	visited := map[*refCity]bool{t: true}
	cur := t
	for range cities[1:] {
		var best *refCity
		bestD := math.Inf(1)
		for _, c := range cities {
			if visited[c] {
				continue
			}
			if d := dist(cur, c); d < bestD {
				bestD, best = d, c
			}
		}
		cur.next = best
		best.prev = cur
		visited[best] = true
		cur = best
	}
	cur.next = t
	t.prev = cur
	return t
}

// refMerge splices tours a and b together through the divide node t,
// which belongs to neither tour yet. Linear in |a| + |b|.
func refMerge(a, b, t *refCity) *refCity {
	// Insert t into tour a at the cheapest edge.
	bestP := a
	bestCost := math.Inf(1)
	p := a
	for {
		q := p.next
		cost := dist(p, t) + dist(t, q) - dist(p, q)
		if cost < bestCost {
			bestCost, bestP = cost, p
		}
		p = q
		if p == a {
			break
		}
	}
	tNext := bestP.next
	bestP.next = t
	t.prev = bestP
	t.next = tNext
	tNext.prev = t

	// Splice tour b in across t's outgoing edge.
	bestB := b
	bestCost = math.Inf(1)
	p = b
	for {
		q := p.next
		cost := dist(t, q) + dist(p, tNext) - dist(p, q)
		if cost < bestCost {
			bestCost, bestB = cost, p
		}
		p = q
		if p == b {
			break
		}
	}
	q := bestB.next
	t.next = q
	q.prev = t
	bestB.next = tNext
	tNext.prev = bestB
	return t
}

// refTSP is the divide-and-conquer driver; sz is the subtree size.
func refTSP(t *refCity, sz, conquerSz int) *refCity {
	if sz <= conquerSz {
		return refConquer(t)
	}
	half := sz / 2
	a := refTSP(t.l, half, conquerSz)
	b := refTSP(t.r, half, conquerSz)
	return refMerge(a, b, t)
}

// tourChecksum folds the tour order and total length.
func tourChecksum(start *refCity) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	var length float64
	p := start
	for {
		mix(uint64(p.id))
		length += dist(p, p.next)
		p = p.next
		if p == start {
			break
		}
	}
	mix(math.Float64bits(length))
	return h
}

// reference runs the whole benchmark in plain Go.
func reference(n, conquerSz int) uint64 {
	pts := genPoints(n)
	root := buildTree(pts, 0)
	rep := refTSP(root, n, conquerSz)
	return tourChecksum(rep)
}
