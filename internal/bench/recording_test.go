package bench_test

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/record"
	"repro/internal/coherence"
	"repro/internal/rt"

	_ "repro/internal/bench/treeadd"
)

// recScale keeps the recording tests on tiny problems; determinism does
// not depend on size.
const recScale = 1024

// TestCollectRecordsIsDeterministic pins the property the perf gate rests
// on: two collections of the same suite from the same binary marshal to
// byte-identical files, so zero tolerance is a usable gate.
func TestCollectRecordsIsDeterministic(t *testing.T) {
	a, err := bench.CollectRecords("treeadd", 2, recScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.CollectRecords("treeadd", 2, recScale)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("two collections of the same suite produced different bytes")
	}

	if len(a.Records) != 5 {
		t.Fatalf("suite has %d records, want 5", len(a.Records))
	}
	for _, key := range []string{
		"baseline",
		record.HeuristicKey(2, "local"),
		record.HeuristicKey(2, "global"),
		record.HeuristicKey(2, "bilateral"),
		record.MigrateOnlyKey(2),
	} {
		r, ok := a.Lookup(key)
		if !ok {
			t.Fatalf("suite missing configuration %q", key)
		}
		if !r.Verified {
			t.Fatalf("%s not verified", key)
		}
		if r.TraceDigest == "" || len(r.Metrics) == 0 {
			t.Fatalf("%s record missing trace digest or metrics dump", key)
		}
	}

	// A byte-identical rerun passes the gate at zero tolerance.
	regs, err := record.Compare(a, b, record.Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("identical reruns must pass the zero-tolerance gate, got %v", regs)
	}
}

// TestGateCatchesDeliberatelySlowedRun slows the simulation for real — a
// costlier pointer test via the runtime hook, the kind of accidental
// overhead a code change could introduce — and checks the zero-tolerance
// gate fails it while the run still verifies.
func TestGateCatchesDeliberatelySlowedRun(t *testing.T) {
	base, err := bench.CollectRecords("treeadd", 2, recScale)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := bench.Get("treeadd")
	res, slowed := bench.RunRecorded(info, bench.Config{
		Procs: 2, Scale: recScale,
		RuntimeHook: func(r *rt.Runtime) { r.M.Cost.PtrTest += 10 },
	})
	if !res.Verified() {
		t.Fatal("the slowed run must still compute the right answer")
	}
	want, _ := base.Lookup(slowed.Key())
	if slowed.Cycles <= want.Cycles {
		t.Fatalf("slowed run took %d cycles, baseline %d — hook had no effect", slowed.Cycles, want.Cycles)
	}

	cand := base
	cand.Records = append([]record.RunRecord(nil), base.Records...)
	for i := range cand.Records {
		if cand.Records[i].Key() == slowed.Key() {
			cand.Records[i] = slowed
		}
	}
	regs, err := record.Compare(base, cand, record.Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, r := range regs {
		if r.Metric == "cycles" && r.Key == slowed.Key() {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("gate missed the slowed run: %v", regs)
	}
}

// TestObserverSharesTablePath pins the single-code-path satellite: the
// records streamed by the observer during a table computation carry the
// same cycle counts the table itself reports, and observing a run does not
// change its simulated cycles.
func TestObserverSharesTablePath(t *testing.T) {
	var got []record.RunRecord
	bench.SetRunObserver(func(r record.RunRecord) { got = append(got, r) })
	defer bench.SetRunObserver(nil)

	baseCycles, sp, err := bench.Speedup("treeadd", []int{2}, coherence.LocalKnowledge, rt.Heuristic, recScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 1 {
		t.Fatalf("speedups = %v, want one entry", sp)
	}
	if len(got) != 2 {
		t.Fatalf("observer saw %d records, want 2 (baseline + P=2)", len(got))
	}
	if got[0].Key() != "baseline" || got[0].Cycles != baseCycles {
		t.Fatalf("observed baseline %+v does not match the table's %d cycles", got[0], baseCycles)
	}
	wantPar := float64(baseCycles) / sp[0]
	if par := float64(got[1].Cycles); par != wantPar {
		t.Fatalf("observed parallel cycles %v, table implies %v", par, wantPar)
	}

	// The observed parallel run matches an unobserved one exactly.
	bench.SetRunObserver(nil)
	info, _ := bench.Get("treeadd")
	plain := info.Run(bench.Config{Procs: 2, Scale: recScale})
	if plain.Cycles != got[1].Cycles {
		t.Fatalf("observing a run changed its makespan: %d != %d", got[1].Cycles, plain.Cycles)
	}
}
