package bench_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/rt"
	"repro/internal/trace"

	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

// batteryScale keeps the 120-run battery fast; the digest goldens pin the
// default scheduler at scale 16 separately.
const batteryScale = 64

// batteryKernels is the ten paper kernels, spelled out rather than taken
// from bench.Names(): other tests register throwaway benchmarks that have
// no runtime behind them.
var batteryKernels = []string{
	"treeadd", "power", "tsp", "mst", "bisort",
	"voronoi", "em3d", "barneshut", "perimeter", "health",
}

// schedOutcome is everything a run exposes that could possibly tell the
// two schedulers apart.
type schedOutcome struct {
	digest trace.Digest
	heap   uint64
	cycles int64
	check  uint64
	stats  machine.StatsSnapshot
}

func runWithSched(t *testing.T, name string, kind machine.SchedKind, cfg bench.Config) schedOutcome {
	t.Helper()
	info, ok := bench.Get(name)
	if !ok {
		t.Fatalf("benchmark %q not registered", name)
	}
	rec := trace.New(0)
	var rtm *rt.Runtime
	cfg.Sched = kind
	cfg.Trace = rec
	cfg.RuntimeHook = func(r *rt.Runtime) { rtm = r }
	res := info.Run(cfg)
	if !res.Verified() {
		t.Fatalf("%s under %s scheduler: check %#x != %#x", name, kind, res.Check, res.WantCheck)
	}
	if rtm == nil {
		t.Fatalf("%s under %s scheduler: RuntimeHook never ran", name, kind)
	}
	return schedOutcome{
		digest: rec.Digest(),
		heap:   rtm.HeapFingerprint(),
		cycles: res.Cycles,
		check:  res.Check,
		stats:  res.Stats,
	}
}

// TestSchedulerDigestEquivalence is the digest battery gating the event
// loop: all ten kernels × three coherence schemes × P ∈ {1, 4}, run once
// on each scheduler implementation. TraceDigest (event order, content and
// per-kind counts), HeapFingerprint, makespan, checksum and every machine
// statistic must be byte-identical — the event loop is a pure reordering
// of bookkeeping, never of simulated events.
// Under the race detector the battery trims itself to one parallel
// configuration per kernel (scheme rotated by kernel so all three appear):
// race instrumentation multiplies the channel scheduler's goroutine
// handoffs ~10×, the serial P=1 runs have no concurrency to check, and
// the full sweep's equivalence guarantee is already enforced by every
// non-race test job.
func TestSchedulerDigestEquivalence(t *testing.T) {
	for ki, name := range batteryKernels {
		for si, s := range schemes {
			for _, procs := range []int{1, 4} {
				if raceDetectorEnabled && (procs == 1 || si != ki%len(schemes)) {
					continue
				}
				t.Run(fmt.Sprintf("%s/%s/P%d", name, s.name, procs), func(t *testing.T) {
					cfg := bench.Config{Procs: procs, Scheme: s.kind, Scale: batteryScale}
					loop := runWithSched(t, name, machine.SchedEventLoop, cfg)
					chan_ := runWithSched(t, name, machine.SchedChannel, cfg)
					if loop.digest != chan_.digest {
						t.Errorf("trace digest diverged:\n  eventloop: %s\n  channel:   %s",
							loop.digest, chan_.digest)
					}
					if loop.heap != chan_.heap {
						t.Errorf("heap fingerprint diverged: %016x vs %016x", loop.heap, chan_.heap)
					}
					if loop.cycles != chan_.cycles {
						t.Errorf("makespan diverged: %d vs %d cycles", loop.cycles, chan_.cycles)
					}
					if loop.check != chan_.check {
						t.Errorf("checksum diverged: %#x vs %#x", loop.check, chan_.check)
					}
					if loop.stats != chan_.stats {
						t.Errorf("statistics diverged:\n  eventloop: %+v\n  channel:   %+v",
							loop.stats, chan_.stats)
					}
				})
			}
		}
	}
}
