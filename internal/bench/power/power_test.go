package power

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rt"
)

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 16})
		if !res.Verified() {
			t.Fatalf("P=%d: check %#x != %#x", procs, res.Check, res.WantCheck)
		}
	}
}

func TestSpeedupNearLinear(t *testing.T) {
	base := Run(bench.Config{Baseline: true, Scale: 2})
	sp1 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 1, Scale: 2}).Cycles)
	sp8 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 8, Scale: 2}).Cycles)
	if sp1 < 0.8 {
		t.Errorf("1-processor speedup %.2f; paper reports 0.96", sp1)
	}
	if sp8 < 5 {
		t.Errorf("P=8 speedup %.2f; Power scales near-linearly (paper: 6.92)", sp8)
	}
}

func TestMigrateOnlyEquivalent(t *testing.T) {
	h := Run(bench.Config{Procs: 4, Scale: 16})
	m := Run(bench.Config{Procs: 4, Scale: 16, Mode: rt.MigrateOnly})
	if h.Cycles != m.Cycles {
		t.Fatalf("heuristic %d vs migrate-only %d; Power is an M benchmark", h.Cycles, m.Cycles)
	}
}

func TestHeuristicChoice(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	rec := r.FindLoop("Compute/rec")
	if rec == nil {
		t.Fatal("recursion not found")
	}
	if rec.Mech != core.ChooseMigrate || rec.Var != "n" {
		t.Fatalf("choice = %s %s; want migrate n", rec.Mech, rec.Var)
	}
	if !r.UsesMigrationOnly() {
		t.Fatal("Power is an M benchmark (Table 2)")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 16})
	b := Run(bench.Config{Procs: 4, Scale: 16})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
