// Package power implements the Power benchmark: the Power System
// Optimization problem of Lumetta et al. (paper Table 1: 10,000
// customers). The power network is a fixed four-level tree — root feeders,
// laterals, branches, and customer leaves. Each pricing iteration sends
// prices down the tree; customers locally optimize their demand against
// the price; demands flow back up with line losses; the root adjusts the
// price toward a demand target.
//
// Heuristic choice (Table 2: M): a pure tree computation with large-grain
// subtrees — every dereference migrates, futures parallelize the feeder
// and lateral recursions, and speedup is near linear (the paper reports
// 27.5 at 32 processors whole-program, better than the Split-C
// implementation's 75% efficiency at 64).
package power

import (
	"math"

	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// Node layout: alpha @0, beta @8 (line coefficients), childCount @16,
// children pointers from @24. Leaves (customers) have childCount 0 and use
// alpha/beta as utility coefficients.
const (
	offAlpha    = 0
	offBeta     = 8
	offCount    = 16
	offChildren = 24
)

func nodeSize(children int) uint32 { return uint32(offChildren + 8*children) }

// Network shape (paper: 10 feeders × 20 laterals × 5 branches × 10 leaves
// = 10,000 customers).
const (
	paperFeeders = 10
	laterals     = 20
	branches     = 5
	leaves       = 10
	iterations   = 10
	demandTarget = 0.8 // per-customer target demand
	priceGamma   = 0.3 // root price adjustment step
)

// Work constants: customers run a small local optimization; interior nodes
// combine children and apply line losses.
const (
	leafWork    = 500
	interiorPer = 30
	futureCost  = 38
)

// KernelSource is the kernel in the mini-C subset: a multi-way tree
// recursion with futurecalls — migration everywhere (Table 2: M).
const KernelSource = `
struct node {
  float alpha;
  float beta;
  struct node *c0;
  struct node *c1;
  struct node *c2;
  struct node *c3;
};

float Compute(struct node *n, float price) {
  float d;
  if (n == NULL) return 0.0;
  d = touch(futurecall(Compute(n->c0, price + n->alpha)));
  d = d + touch(futurecall(Compute(n->c1, price + n->alpha)));
  d = d + Compute(n->c2, price + n->alpha) + Compute(n->c3, price + n->alpha);
  return d + n->beta * d * d;
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "power",
		Description: "Solves the Power System Optimization problem",
		PaperSize:   "10,000 customers",
		Choice:      "M",
		Whole:       true,
		Run:         Run,
		Source:      KernelSource,
	})
}

// demand is the customer's local optimization: a few Newton steps on a
// concave utility against the delivered price.
func demand(alpha, beta, price float64) float64 {
	d := 1.0
	for i := 0; i < 4; i++ {
		// maximize alpha*log(1+d) − price*d − beta*d²
		grad := alpha/(1+d) - price - 2*beta*d
		hess := -alpha/((1+d)*(1+d)) - 2*beta
		d -= grad / hess
	}
	if d < 0 {
		return 0
	}
	return d
}

// loss is the line loss added by an interior node carrying demand d.
func loss(beta, d float64) float64 { return beta * d * d * 0.001 }

type shape struct {
	feeders int
	leaves  int
}

// shapeFor scales the network by thinning the customers per branch, so
// the lateral fan-out — the grain of parallelism — survives scaling.
func shapeFor(cfg bench.Config) shape {
	customers := cfg.Scaled(paperFeeders*laterals*branches*leaves, 500)
	l := customers / (paperFeeders * laterals * branches)
	if l < 1 {
		l = 1
	}
	return shape{feeders: paperFeeders, leaves: l}
}

type state struct {
	r        *rt.Runtime
	site     *rt.Site
	parallel bool
	feeders  int
	leaves   int
}

// build allocates one level of the network through the thread (Power
// reports whole-program times). Laterals — the grain of parallelism — are
// placed index-proportionally across all processors; everything below a
// lateral shares its processor. gbase is the node's index within its
// level cohort.
func (s *state) build(t *rt.Thread, level, fanout, proc int, gbase int64, idx int64) gaddr.GP {
	counts := []int{0, s.leaves, branches, laterals, fanout} // children per level
	nc := counts[level]
	n := t.Alloc(proc, nodeSize(nc))
	t.Work(40)
	// Deterministic per-node coefficients.
	h := uint64(idx)*0x9e3779b97f4a7c15 + uint64(level)
	alpha := 0.5 + float64(h%1000)/2000     // 0.5..1.0
	beta := 0.05 + float64(h>>10%1000)/4000 // 0.05..0.3
	t.StoreFloat(s.site, n, offAlpha, alpha)
	t.StoreFloat(s.site, n, offBeta, beta)
	t.StoreInt(s.site, n, offCount, int64(nc))
	childProc := func(c int) int {
		g := gbase*int64(nc) + int64(c)
		switch level {
		case 4: // feeders: spread
			return int(g) * s.r.P() / fanout
		case 3: // laterals: spread over all processors
			return int(g * int64(s.r.P()) / int64(s.feeders*laterals))
		default: // branches and leaves stay with their lateral
			return proc
		}
	}
	if s.parallel && level >= 3 {
		// Subtree builds are futurecalled too: the paper notes that
		// the building phases "show excellent speed-up".
		futs := make([]*rt.Future[gaddr.GP], nc)
		for c := 0; c < nc; c++ {
			cp := childProc(c)
			g := gbase*int64(nc) + int64(c)
			id := idx*16 + int64(c) + 1
			lvl := level - 1
			futs[c] = rt.Spawn(t, func(ct *rt.Thread) gaddr.GP {
				return s.build(ct, lvl, 0, cp, g, id)
			})
		}
		for c, f := range futs {
			t.StorePtr(s.site, n, uint32(offChildren+8*c), f.Touch(t))
		}
		return n
	}
	for c := 0; c < nc; c++ {
		g := gbase*int64(nc) + int64(c)
		child := s.build(t, level-1, 0, childProc(c), g, idx*16+int64(c)+1)
		t.StorePtr(s.site, n, uint32(offChildren+8*c), child)
	}
	return n
}

// compute is the kernel: walk down with the price, return the subtree
// demand with line losses. Dereferences migrate; futures fan out at the
// top two levels.
func (s *state) compute(t *rt.Thread, n gaddr.GP, price float64, level int) float64 {
	alpha := t.LoadFloat(s.site, n, offAlpha)
	beta := t.LoadFloat(s.site, n, offBeta)
	nc := int(t.LoadInt(s.site, n, offCount))
	if nc == 0 {
		t.Work(leafWork)
		return demand(alpha, beta, price)
	}
	childPrice := price + 0.01*alpha
	var d float64
	if s.parallel && level >= 3 {
		futs := make([]*rt.Future[float64], nc)
		for c := 0; c < nc; c++ {
			child := t.LoadPtr(s.site, n, uint32(offChildren+8*c))
			futs[c] = rt.Spawn(t, func(ct *rt.Thread) float64 {
				return s.compute(ct, child, childPrice, level-1)
			})
		}
		for _, f := range futs {
			d += f.Touch(t)
		}
	} else {
		if s.parallel {
			t.Work(futureCost * int64(nc))
		}
		for c := 0; c < nc; c++ {
			child := t.LoadPtr(s.site, n, uint32(offChildren+8*c))
			d += rt.Call(t, func() float64 { return s.compute(t, child, childPrice, level-1) })
		}
	}
	t.Work(int64(interiorPer * nc))
	return d + loss(beta, d)
}

// Run executes Power under the configuration.
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	sh := shapeFor(cfg)
	s := &state{
		r:        r,
		site:     &rt.Site{Name: "power.node", Mech: rt.Migrate},
		parallel: !cfg.Baseline,
		feeders:  sh.feeders,
		leaves:   sh.leaves,
	}

	customers := sh.feeders * laterals * branches * sh.leaves
	var finalDemand, finalPrice float64
	var cycles int64
	r.Run(0, func(t *rt.Thread) {
		root := s.build(t, 4, sh.feeders, 0, 0, 1)
		price := 1.0
		target := demandTarget * float64(customers)
		var total float64
		for it := 0; it < iterations; it++ {
			total = rt.Call(t, func() float64 { return s.compute(t, root, price, 4) })
			price += priceGamma * (total - target) / target
			t.Work(200)
		}
		finalDemand, finalPrice = total, price
		cycles = r.M.Makespan()
	})

	return bench.Result{
		Name:      "power",
		Procs:     r.P(),
		Cycles:    cycles,
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     math.Float64bits(finalDemand) ^ math.Float64bits(finalPrice),
		WantCheck: reference(sh.feeders, sh.leaves),
	}
}

// reference mirrors the computation in plain Go.
func reference(feeders, nleaves int) uint64 {
	type node struct {
		alpha, beta float64
		children    []*node
	}
	var build func(level, fanout int, idx int64) *node
	build = func(level, fanout int, idx int64) *node {
		counts := []int{0, nleaves, branches, laterals, fanout}
		nc := counts[level]
		h := uint64(idx)*0x9e3779b97f4a7c15 + uint64(level)
		n := &node{
			alpha: 0.5 + float64(h%1000)/2000,
			beta:  0.05 + float64(h>>10%1000)/4000,
		}
		for c := 0; c < nc; c++ {
			n.children = append(n.children, build(level-1, 0, idx*16+int64(c)+1))
		}
		return n
	}
	var compute func(n *node, price float64) float64
	compute = func(n *node, price float64) float64 {
		if len(n.children) == 0 {
			return demand(n.alpha, n.beta, price)
		}
		childPrice := price + 0.01*n.alpha
		var d float64
		for _, c := range n.children {
			d += compute(c, childPrice)
		}
		return d + loss(n.beta, d)
	}
	root := build(4, feeders, 1)
	customers := feeders * laterals * branches * nleaves
	price := 1.0
	target := demandTarget * float64(customers)
	var total float64
	for it := 0; it < iterations; it++ {
		total = compute(root, price)
		price += priceGamma * (total - target) / target
	}
	return math.Float64bits(total) ^ math.Float64bits(price)
}
