// Package perimeter implements the Perimeter benchmark: computing the
// perimeter of a quad-tree encoded raster image (paper Table 1: 4K×4K
// image) with Samet's algorithm — for every black leaf, locate the
// equal-or-greater-size neighbor in each direction through parent pointers
// and total the exposed boundary against white regions.
//
// Heuristic choice (Table 2: M+C): the quadrant recursion migrates (four
// child updates or-combine above the threshold); the neighbor finding
// caches — Perimeter is one of the three benchmarks with explicit
// path-affinity hints, marking the parent pointers low-affinity because
// "the neighbors of a quadrant may be far away in the tree".
package perimeter

// Colors.
const (
	white = 0
	black = 1
	grey  = 2
)

// Quadrants and directions.
const (
	nw = 0
	ne = 1
	sw = 2
	se = 3

	north = 0
	east  = 1
	south = 2
	west  = 3
)

// adjacent reports whether quadrant q touches side dir of its parent.
func adjacent(dir, q int) bool {
	switch dir {
	case north:
		return q == nw || q == ne
	case south:
		return q == sw || q == se
	case east:
		return q == ne || q == se
	default: // west
		return q == nw || q == sw
	}
}

// reflect mirrors a quadrant across the axis of dir.
func reflect(dir, q int) int {
	if dir == north || dir == south {
		switch q {
		case nw:
			return sw
		case sw:
			return nw
		case ne:
			return se
		default:
			return ne
		}
	}
	switch q {
	case nw:
		return ne
	case ne:
		return nw
	case sw:
		return se
	default:
		return sw
	}
}

// sideQuadrants returns the two quadrants of a neighbor that touch the
// black node (i.e. the quadrants adjacent to the opposite side).
func sideQuadrants(dir int) (int, int) {
	switch dir {
	case north:
		return sw, se
	case south:
		return nw, ne
	case east:
		return nw, sw
	default: // west
		return ne, se
	}
}

// image is the deterministic test picture: a disc.
type image struct {
	n      int // image is n×n cells
	cx, cy float64
	r2     float64
}

func makeImage(n int) image {
	return image{n: n, cx: float64(n) * 0.5, cy: float64(n) * 0.45, r2: float64(n) * float64(n) * 0.14}
}

func (im image) cellBlack(x, y int) bool {
	dx := float64(x) + 0.5 - im.cx
	dy := float64(y) + 0.5 - im.cy
	return dx*dx+dy*dy <= im.r2
}

// regionColor classifies the square region [x,x+size)×[y,y+size):
// white/black if uniform, grey otherwise. Exact for a disc: all cell
// centers inside ⇔ the farthest cell center is inside; all outside ⇔ the
// nearest point of the center grid is outside.
func (im image) regionColor(x, y, size int) int {
	if size == 1 {
		if im.cellBlack(x, y) {
			return black
		}
		return white
	}
	// Cell centers span [x+0.5, x+size-0.5] in each axis.
	lo := func(c float64, a, b float64) float64 {
		// distance from c to interval [a,b]
		if c < a {
			return a - c
		}
		if c > b {
			return c - b
		}
		return 0
	}
	ax, bx := float64(x)+0.5, float64(x+size)-0.5
	ay, by := float64(y)+0.5, float64(y+size)-0.5
	ndx, ndy := lo(im.cx, ax, bx), lo(im.cy, ay, by)
	if ndx*ndx+ndy*ndy > im.r2 {
		return white
	}
	hi := func(c float64, a, b float64) float64 {
		d1, d2 := c-a, b-c
		if d1 < 0 {
			d1 = -d1
		}
		if d2 < 0 {
			d2 = -d2
		}
		if d1 > d2 {
			return d1
		}
		return d2
	}
	fdx, fdy := hi(im.cx, ax, bx), hi(im.cy, ay, by)
	if fdx*fdx+fdy*fdy <= im.r2 {
		return black
	}
	return grey
}

// refNode is the plain-Go quadtree node.
type refNode struct {
	color     int
	childType int
	parent    *refNode
	child     [4]*refNode
}

// quadXY gives a quadrant's offset within a square of the given size:
// quadrant rows are north = low y.
func quadXY(q, size int) (int, int) {
	half := size / 2
	switch q {
	case nw:
		return 0, 0
	case ne:
		return half, 0
	case sw:
		return 0, half
	default:
		return half, half
	}
}

// refBuild builds the quadtree for the region.
func refBuild(im image, x, y, size int, parent *refNode, childType int) *refNode {
	c := im.regionColor(x, y, size)
	n := &refNode{color: c, childType: childType, parent: parent}
	if c == grey {
		for q := 0; q < 4; q++ {
			dx, dy := quadXY(q, size)
			n.child[q] = refBuild(im, x+dx, y+dy, size/2, n, q)
		}
	}
	return n
}

// refNeighbor is gtequal_adj_neighbor: the equal-or-greater-size neighbor
// of node in direction dir, or nil at the image border.
func refNeighbor(node *refNode, dir int) *refNode {
	var q *refNode
	if node.parent != nil && adjacent(dir, node.childType) {
		q = refNeighbor(node.parent, dir)
	} else {
		q = node.parent
	}
	if q != nil && q.color == grey {
		return q.child[reflect(dir, node.childType)]
	}
	return q
}

// refSumAdjacent totals the white boundary inside a grey neighbor along
// the shared side.
func refSumAdjacent(q *refNode, q1, q2, size int) int {
	if q.color == grey {
		return refSumAdjacent(q.child[q1], q1, q2, size/2) +
			refSumAdjacent(q.child[q2], q1, q2, size/2)
	}
	if q.color == white {
		return size
	}
	return 0
}

// refPerimeter is Samet's algorithm.
func refPerimeter(t *refNode, size int) int {
	if t.color == grey {
		total := 0
		for q := 0; q < 4; q++ {
			total += refPerimeter(t.child[q], size/2)
		}
		return total
	}
	if t.color != black {
		return 0
	}
	total := 0
	for dir := 0; dir < 4; dir++ {
		nb := refNeighbor(t, dir)
		switch {
		case nb == nil:
			total += size
		case nb.color == white:
			total += size
		case nb.color == grey:
			q1, q2 := sideQuadrants(dir)
			total += refSumAdjacent(nb, q1, q2, size)
		}
	}
	return total
}

// rasterPerimeter computes the same perimeter directly from the raster:
// every black cell contributes one unit per side facing a white cell or
// the border. Used to validate the algorithm in tests.
func rasterPerimeter(im image) int {
	total := 0
	for y := 0; y < im.n; y++ {
		for x := 0; x < im.n; x++ {
			if !im.cellBlack(x, y) {
				continue
			}
			for _, d := range [4][2]int{{0, -1}, {0, 1}, {-1, 0}, {1, 0}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= im.n || ny >= im.n || !im.cellBlack(nx, ny) {
					total++
				}
			}
		}
	}
	return total
}

// reference builds the tree and computes the perimeter in plain Go.
func reference(n int) uint64 {
	im := makeImage(n)
	root := refBuild(im, 0, 0, n, nil, 0)
	return uint64(refPerimeter(root, n))
}
