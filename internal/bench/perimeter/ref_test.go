package perimeter

import "testing"

// TestAlgorithmMatchesRaster validates Samet's algorithm against a direct
// raster count at several image sizes.
func TestAlgorithmMatchesRaster(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		im := makeImage(n)
		want := rasterPerimeter(im)
		got := int(reference(n))
		if got != want {
			t.Errorf("n=%d: quadtree perimeter %d != raster %d", n, got, want)
		}
	}
}
