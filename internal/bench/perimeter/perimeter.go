package perimeter

import (
	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// Node layout: color @0, childType @8, parent @16, children @24+8q.
const (
	offColor  = 0
	offCType  = 8
	offParent = 16
	offChild0 = 24
	nodeSz    = 56
)

func offChild(q int) uint32 { return uint32(offChild0 + 8*q) }

const (
	paperSide    = 4096 // 4K×4K image
	nodeWork     = 30   // per quadrant visited by the perimeter recursion
	neighborWork = 15   // per parent-pointer step in neighbor finding
	adjacentWork = 15   // per node in the white-boundary sum
	futureCost   = 38
)

// KernelSource is the kernel in the mini-C subset. Perimeter is one of the
// three benchmarks with explicit path-affinity hints: the quadrant children
// are marked high-affinity (subtrees are colocated) so the recursion
// migrates, while the parent pointers are marked low-affinity so the
// neighbor search caches ("they may be far away in the tree").
const KernelSource = `
struct quad {
  int color;
  int childtype;
  struct quad *parent __affinity(40);
  struct quad *nw __affinity(90);
  struct quad *ne __affinity(90);
  struct quad *sw __affinity(90);
  struct quad *se __affinity(90);
};

struct quad * gtequal_adj_neighbor(struct quad *t, int dir) {
  struct quad *q;
  if (t->parent == NULL) return NULL;
  if (adj(dir, t->childtype) == 1) {
    q = gtequal_adj_neighbor(t->parent, dir);
  } else {
    q = t->parent;
  }
  return q;
}

int perimeter(struct quad *t, int size) {
  int total;
  if (t->color == 2) {
    total = touch(futurecall(perimeter(t->nw, size / 2)));
    total = total + touch(futurecall(perimeter(t->ne, size / 2)));
    total = total + perimeter(t->sw, size / 2);
    total = total + perimeter(t->se, size / 2);
    return total;
  }
  return t->color;
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "perimeter",
		Description: "Computes the perimeter of a set of quad-tree encoded raster images",
		PaperSize:   "4K x 4K image",
		Choice:      "M+C",
		Run:         Run,
		Source:      KernelSource,
		Phased:      &bench.Phased{Build: buildPhase, Kernel: kernelPhase},
	})
}

// sideFor scales the image: the paper's 4096² divided by the scale (area).
func sideFor(cfg bench.Config) int {
	side := paperSide
	scale := cfg.Scale
	if scale <= 0 {
		scale = bench.DefaultScale
	}
	for scale > 1 && side > 64 {
		side /= 2
		scale /= 4
	}
	return side
}

// build mirrors refBuild into the distributed heap, spreading quadrants of
// the top levels over processor ranges (untimed build phase).
func build(r *rt.Runtime, im image, x, y, size int, parent gaddr.GP, childType, lo, hi int) gaddr.GP {
	c := im.regionColor(x, y, size)
	n := bench.RawAlloc(r, lo, nodeSz)
	bench.RawStore(r, n, offColor, uint64(c))
	bench.RawStore(r, n, offCType, uint64(childType))
	bench.RawStorePtr(r, n, offParent, parent)
	if c == grey {
		for q := 0; q < 4; q++ {
			clo, chi := lo, hi
			if hi-lo > 1 {
				clo = lo + q*(hi-lo)/4
				chi = lo + (q+1)*(hi-lo)/4
				if chi <= clo {
					chi = clo + 1
				}
			}
			dx, dy := quadXY(q, size)
			child := build(r, im, x+dx, y+dy, size/2, n, q, clo, chi)
			bench.RawStorePtr(r, n, offChild(q), child)
		}
	}
	return n
}

type state struct {
	siteTree *rt.Site // quadrant recursion: migrate
	siteNbr  *rt.Site // neighbor finding through parents: cache
	parallel bool
	spawnSz  int // spawn futures while size is at least this
}

// neighbor is gtequal_adj_neighbor compiled against the runtime: cached.
func (s *state) neighbor(t *rt.Thread, node gaddr.GP, dir int) gaddr.GP {
	t.Work(neighborWork)
	parent := t.LoadPtr(s.siteNbr, node, offParent)
	ctype := int(t.LoadInt(s.siteNbr, node, offCType))
	var q gaddr.GP
	if !parent.IsNil() && adjacent(dir, ctype) {
		q = s.neighbor(t, parent, dir)
	} else {
		q = parent
	}
	if !q.IsNil() && t.LoadInt(s.siteNbr, q, offColor) == grey {
		return t.LoadPtr(s.siteNbr, q, offChild(reflect(dir, ctype)))
	}
	return q
}

// sumAdjacent totals white boundary within a grey neighbor: cached.
func (s *state) sumAdjacent(t *rt.Thread, q gaddr.GP, q1, q2, size int) int64 {
	t.Work(adjacentWork)
	switch t.LoadInt(s.siteNbr, q, offColor) {
	case grey:
		return s.sumAdjacent(t, t.LoadPtr(s.siteNbr, q, offChild(q1)), q1, q2, size/2) +
			s.sumAdjacent(t, t.LoadPtr(s.siteNbr, q, offChild(q2)), q1, q2, size/2)
	case white:
		return int64(size)
	default:
		return 0
	}
}

// perimeter is the main recursion: migrate along the quadrants, futures at
// the top of the tree.
func (s *state) perimeter(t *rt.Thread, node gaddr.GP, size int) int64 {
	t.Work(nodeWork)
	color := t.LoadInt(s.siteTree, node, offColor)
	if color == grey {
		var kids [4]gaddr.GP
		for q := 0; q < 4; q++ {
			kids[q] = t.LoadPtr(s.siteTree, node, offChild(q))
		}
		var total int64
		if s.parallel && size >= s.spawnSz {
			var futs [4]*rt.Future[int64]
			for q := 0; q < 4; q++ {
				kid := kids[q]
				futs[q] = rt.Spawn(t, func(c *rt.Thread) int64 {
					return s.perimeter(c, kid, size/2)
				})
			}
			for q := 0; q < 4; q++ {
				total += futs[q].Touch(t)
			}
		} else {
			if s.parallel {
				t.Work(futureCost)
			}
			for q := 0; q < 4; q++ {
				kid := kids[q]
				total += rt.Call(t, func() int64 { return s.perimeter(t, kid, size/2) })
			}
		}
		return total
	}
	if color != black {
		return 0
	}
	var total int64
	for dir := 0; dir < 4; dir++ {
		nb := s.neighbor(t, node, dir)
		switch {
		case nb.IsNil():
			total += int64(size)
		case t.LoadInt(s.siteNbr, nb, offColor) == white:
			total += int64(size)
		case t.LoadInt(s.siteNbr, nb, offColor) == grey:
			q1, q2 := sideQuadrants(dir)
			total += s.sumAdjacent(t, nb, q1, q2, size)
		}
	}
	return total
}

// built is the immutable build-phase state: the quadtree root, the
// image side, and the precomputed reference perimeter.
type built struct {
	root gaddr.GP
	side int
	want uint64
}

// buildPhase materializes the quadtree through the raw heap API.
func buildPhase(cfg bench.Config, r *rt.Runtime) any {
	side := sideFor(cfg)
	im := makeImage(side)
	root := build(r, im, 0, 0, side, gaddr.Nil, 0, 0, r.P())
	return &built{root: root, side: side, want: reference(side)}
}

// kernelPhase times the perimeter traversal and verifies the total.
func kernelPhase(cfg bench.Config, r *rt.Runtime, st any) bench.Result {
	b := st.(*built)
	root, side := b.root, b.side
	s := &state{
		siteTree: &rt.Site{Name: "perimeter.tree", Mech: rt.Migrate},
		siteNbr:  &rt.Site{Name: "perimeter.nbr", Mech: rt.Cache},
		parallel: !cfg.Baseline,
	}
	// Spawn futures down to the distribution depth (quadrants spread
	// while their processor range is larger than one).
	s.spawnSz = side / (1 << 4)
	if s.spawnSz < 4 {
		s.spawnSz = 4
	}

	r.ResetForKernel()
	var total int64
	r.Run(0, func(t *rt.Thread) {
		total = rt.Call(t, func() int64 { return s.perimeter(t, root, side) })
	})

	return bench.Result{
		Name:      "perimeter",
		Procs:     r.P(),
		Cycles:    r.M.Makespan(),
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     uint64(total),
		WantCheck: b.want,
	}
}

// Run executes Perimeter under the configuration.
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	return kernelPhase(cfg, r, buildPhase(cfg, r))
}
