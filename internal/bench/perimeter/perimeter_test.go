package perimeter

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rt"
)

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 256})
		if !res.Verified() {
			t.Fatalf("P=%d: perimeter %d != %d", procs, res.Check, res.WantCheck)
		}
	}
}

func TestSpeedupShape(t *testing.T) {
	base := Run(bench.Config{Baseline: true, Scale: 64})
	sp1 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 1, Scale: 64}).Cycles)
	sp8 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 8, Scale: 64}).Cycles)
	if sp1 < 0.6 {
		t.Errorf("1-processor speedup %.2f (paper: 0.86)", sp1)
	}
	if sp8 < 2.5 {
		t.Errorf("P=8 speedup %.2f (paper: 6.09)", sp8)
	}
}

func TestMigrateOnlyMuchWorse(t *testing.T) {
	// Table 2: 14.1 heuristic vs 2.96 migrate-only at 32 — neighbor
	// chasing by migration bounces across the tree.
	h := Run(bench.Config{Procs: 8, Scale: 64})
	m := Run(bench.Config{Procs: 8, Scale: 64, Mode: rt.MigrateOnly})
	if !m.Verified() {
		t.Fatal("migrate-only must verify")
	}
	if float64(m.Cycles) < 1.5*float64(h.Cycles) {
		t.Errorf("migrate-only %d vs heuristic %d; expected clearly worse", m.Cycles, h.Cycles)
	}
}

func TestHeuristicChoice(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	rec := r.FindLoop("perimeter/rec")
	if rec == nil || rec.Mech != core.ChooseMigrate || rec.Var != "t" {
		t.Fatal("quadrant recursion must migrate t")
	}
	nbr := r.FindLoop("gtequal_adj_neighbor/rec")
	if nbr == nil {
		t.Fatal("neighbor recursion not found")
	}
	if nbr.Mech != core.ChooseCache {
		t.Fatalf("neighbor recursion = %s %s; the low-affinity parent hint makes it cache", nbr.Mech, nbr.Var)
	}
	if r.UsesMigrationOnly() {
		t.Fatal("perimeter is an M+C benchmark")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 256})
	b := Run(bench.Config{Procs: 4, Scale: 256})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
