package barneshut

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rt"
)

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 32})
		if !res.Verified() {
			t.Fatalf("P=%d: checksum %#x != %#x", procs, res.Check, res.WantCheck)
		}
	}
}

func TestCorrectnessAllSchemes(t *testing.T) {
	for _, scheme := range []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral} {
		res := Run(bench.Config{Procs: 4, Scale: 32, Scheme: scheme})
		if !res.Verified() {
			t.Fatalf("%v: checksum mismatch", scheme)
		}
	}
}

func TestSpeedupShape(t *testing.T) {
	base := Run(bench.Config{Baseline: true, Scale: 16})
	sp2 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 2, Scale: 16}).Cycles)
	sp8 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 8, Scale: 16}).Cycles)
	if sp2 < 1.0 {
		t.Errorf("P=2 speedup %.2f (paper: 1.42)", sp2)
	}
	if sp8 < 2.5 {
		t.Errorf("P=8 speedup %.2f (paper: 5.29)", sp8)
	}
	if sp8 > 7.5 {
		t.Errorf("P=8 speedup %.2f; the sequential tree build should bound it", sp8)
	}
}

func TestMigrateOnlyCollapses(t *testing.T) {
	// Table 2: <0.01 speedup migrate-only at 32 — every tree-walk step
	// would serialize through migrations on the shared tree.
	h := Run(bench.Config{Procs: 4, Scale: 32})
	m := Run(bench.Config{Procs: 4, Scale: 32, Mode: rt.MigrateOnly})
	if !m.Verified() {
		t.Fatal("migrate-only must verify")
	}
	if float64(m.Cycles) < 3*float64(h.Cycles) {
		t.Errorf("migrate-only %d vs heuristic %d; expected collapse", m.Cycles, h.Cycles)
	}
}

func TestHeuristicBottleneckRule(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	// Standalone, the tree walk would migrate (high child affinities).
	walk := r.FindLoop("walk/rec")
	if walk == nil || walk.Mech != core.ChooseMigrate {
		t.Fatal("standalone tree walk should migrate")
	}
	// Inside the parallel body loop it is a bottleneck: demoted to cache.
	loop := r.FindLoop("forces/while")
	if loop == nil || !loop.Parallel || loop.Mech != core.ChooseMigrate || loop.Var != "b" {
		t.Fatal("body loop must be parallel and migrate b")
	}
	var inst *core.Loop
	for _, c := range loop.Children {
		if c.Fn.Name == "walk" {
			inst = c
		}
	}
	if inst == nil {
		t.Fatal("walk instance not expanded under the body loop")
	}
	if inst.Mech != core.ChooseCache || !inst.Bottleneck {
		t.Fatalf("walk under forces: %s bottleneck=%v; the tree must cache to avoid a root bottleneck",
			inst.Mech, inst.Bottleneck)
	}
	if r.UsesMigrationOnly() {
		t.Fatal("barneshut is an M+C benchmark")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 32})
	b := Run(bench.Config{Procs: 4, Scale: 32})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
