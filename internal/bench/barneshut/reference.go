// Package barneshut implements the Barnes-Hut benchmark: the O(N log N)
// hierarchical N-body method (paper Table 1: 8K bodies). Each timestep
// builds an octree over the bodies (sequentially, as in the paper),
// computes cell centers of mass, computes per-body accelerations by
// walking the tree with the opening criterion θ, and advances positions.
//
// Heuristic choice (Table 2: M+C): migration sends computation to the
// processor owning each body (bodies have high locality); the tree is
// cached *despite* its high locality, because migrating the walk would
// serialize every thread on the tree root — the bottleneck rule of §4.3.
// Migrate-only at 32 processors achieves <0.01 speedup in the paper.
package barneshut

import "math"

const (
	theta   = 0.6  // opening criterion
	dt      = 0.03 // timestep
	eps2    = 1e-4 // softening
	gravity = 1.0
)

// refBody is the plain-Go body.
type refBody struct {
	mass     float64
	pos, vel [3]float64
	acc      [3]float64
}

// refCell is the plain-Go octree cell.
type refCell struct {
	mass  float64
	com   [3]float64
	child [8]any // *refCell or *refBody
}

// genBodies produces a deterministic cluster of bodies in the unit cube.
func genBodies(n int) []*refBody {
	seed := uint64(777)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	bodies := make([]*refBody, n)
	for i := range bodies {
		b := &refBody{mass: 0.5 + next()}
		for k := 0; k < 3; k++ {
			b.pos[k] = next()
			b.vel[k] = (next() - 0.5) * 0.1
		}
		bodies[i] = b
	}
	return bodies
}

// octant returns which child octant of a cell centered at c the point p
// falls into.
func octant(c, p [3]float64) int {
	o := 0
	for k := 0; k < 3; k++ {
		if p[k] >= c[k] {
			o |= 1 << uint(k)
		}
	}
	return o
}

// childCenter offsets a cell center into one octant.
func childCenter(c [3]float64, half float64, o int) [3]float64 {
	q := half / 2
	for k := 0; k < 3; k++ {
		if o&(1<<uint(k)) != 0 {
			c[k] += q
		} else {
			c[k] -= q
		}
	}
	return c
}

// refInsert inserts a body into the octree.
func refInsert(cell *refCell, center [3]float64, half float64, b *refBody) {
	o := octant(center, b.pos)
	switch cur := cell.child[o].(type) {
	case nil:
		cell.child[o] = b
	case *refBody:
		sub := &refCell{}
		cell.child[o] = sub
		cc := childCenter(center, half, o)
		refInsert(sub, cc, half/2, cur)
		refInsert(sub, cc, half/2, b)
	case *refCell:
		refInsert(cur, childCenter(center, half, o), half/2, b)
	}
}

// refCoM computes cell masses and centers of mass bottom-up.
func refCoM(cell *refCell) {
	cell.mass = 0
	var wpos [3]float64
	for _, ch := range cell.child {
		switch c := ch.(type) {
		case *refBody:
			cell.mass += c.mass
			for k := 0; k < 3; k++ {
				wpos[k] += c.mass * c.pos[k]
			}
		case *refCell:
			refCoM(c)
			cell.mass += c.mass
			for k := 0; k < 3; k++ {
				wpos[k] += c.mass * c.com[k]
			}
		}
	}
	if cell.mass > 0 {
		for k := 0; k < 3; k++ {
			cell.com[k] = wpos[k] / cell.mass
		}
	}
}

// accumulate adds the gravitational pull of (mass at pos) on b.
func accumulate(b *refBody, mass float64, pos [3]float64) {
	var dr [3]float64
	r2 := eps2
	for k := 0; k < 3; k++ {
		dr[k] = pos[k] - b.pos[k]
		r2 += dr[k] * dr[k]
	}
	inv := gravity * mass / (r2 * math.Sqrt(r2))
	for k := 0; k < 3; k++ {
		b.acc[k] += dr[k] * inv
	}
}

// refForce walks the tree for one body.
func refForce(b *refBody, node any, half float64) {
	switch c := node.(type) {
	case nil:
	case *refBody:
		if c != b {
			accumulate(b, c.mass, c.pos)
		}
	case *refCell:
		var dr float64
		for k := 0; k < 3; k++ {
			d := c.com[k] - b.pos[k]
			dr += d * d
		}
		if (2*half)*(2*half) < theta*theta*dr {
			accumulate(b, c.mass, c.com)
			return
		}
		for _, ch := range c.child {
			refForce(b, ch, half/2)
		}
	}
}

// refStep runs one timestep over all bodies.
func refStep(bodies []*refBody) {
	root := &refCell{}
	center := [3]float64{0.5, 0.5, 0.5}
	const half = 4.0 // generous bounds: bodies drift slowly
	for _, b := range bodies {
		refInsert(root, center, half, b)
	}
	refCoM(root)
	for _, b := range bodies {
		b.acc = [3]float64{}
		refForce(b, root, half)
	}
	for _, b := range bodies {
		for k := 0; k < 3; k++ {
			b.vel[k] += b.acc[k] * dt
			b.pos[k] += b.vel[k] * dt
		}
	}
}

// refChecksum folds the final body positions.
func refChecksum(bodies []*refBody) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, b := range bodies {
		for k := 0; k < 3; k++ {
			mix(math.Float64bits(b.pos[k]))
		}
	}
	return h
}

// reference runs the simulation in plain Go.
func reference(n, steps int) uint64 {
	bodies := genBodies(n)
	for s := 0; s < steps; s++ {
		refStep(bodies)
	}
	return refChecksum(bodies)
}
