package barneshut

import (
	"math"

	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// Record layouts. Both node kinds begin with a kind tag so the tree walk
// can distinguish them.
const (
	kindBody = 0
	kindCell = 1

	offKind = 0

	// body: mass @8, pos @16..32, vel @40..56, acc @64..80
	offBMass = 8
	offBPos  = 16
	offBVel  = 40
	offBAcc  = 64
	bodySz   = 88

	// cell: mass @8, com @16..32, children @40..96
	offCMass  = 8
	offCCom   = 16
	offCChild = 40
	cellSz    = 104
)

func offBPosK(k int) uint32  { return uint32(offBPos + 8*k) }
func offBVelK(k int) uint32  { return uint32(offBVel + 8*k) }
func offBAccK(k int) uint32  { return uint32(offBAcc + 8*k) }
func offCComK(k int) uint32  { return uint32(offCCom + 8*k) }
func offChildO(o int) uint32 { return uint32(offCChild + 8*o) }

const (
	paperBodies = 8192
	steps       = 2
	accumWork   = 180 // per body-node gravitational interaction
	openWork    = 70  // per opening-criterion test
	insertWork  = 25  // per insertion step
	comWork     = 20  // per cell in the center-of-mass pass
	advanceWork = 40  // per body position update
	futureCost  = 38
)

// KernelSource is the force phase in the mini-C subset. The body loop is
// parallelizable, so it migrates; the tree walk would migrate on its own
// (high child affinity), but its induction variable enters the loop as the
// unchanging tree root — the bottleneck rule demotes it to caching.
const KernelSource = `
struct cell {
  float mass;
  struct cell *c0 __affinity(90);
  struct cell *c1 __affinity(90);
  struct cell *c2 __affinity(90);
  struct cell *c3 __affinity(90);
};
struct body {
  float ax;
  struct body *next;
};

float walk(struct cell *c, float px) {
  if (c == NULL) return 0.0;
  return c->mass + walk(c->c0, px) + walk(c->c1, px) + walk(c->c2, px) + walk(c->c3, px);
}

void forces(struct body *b, struct cell *root) {
  while (b) {
    b->ax = touch(futurecall(walk(root, b->ax)));
    b = b->next;
  }
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "barneshut",
		Description: "Solves the N-body problem using hierarchical methods",
		PaperSize:   "8K bodies",
		Choice:      "M+C",
		Whole:       true,
		Run:         Run,
		Source:      KernelSource,
	})
}

type state struct {
	r         *rt.Runtime
	siteBody  *rt.Site // per-body work at the owner: migrate
	siteCell  *rt.Site // tree reads during the walk: cache (bottleneck rule)
	siteBuild *rt.Site // sequential tree build: cache
	parallel  bool
}

// insert adds body b (with position pos, read once) into the octree.
func (s *state) insert(t *rt.Thread, cell gaddr.GP, center [3]float64, half float64, b gaddr.GP, pos [3]float64) {
	t.Work(insertWork)
	o := octant(center, pos)
	cur := t.LoadPtr(s.siteBuild, cell, offChildO(o))
	switch {
	case cur.IsNil():
		t.StorePtr(s.siteBuild, cell, offChildO(o), b)
	case t.LoadInt(s.siteBuild, cur, offKind) == kindBody:
		// Split: the new cell lives on the displaced body's processor,
		// distributing the tree like the bodies.
		sub := t.AllocAtHome(cur, cellSz)
		t.StoreInt(s.siteBuild, sub, offKind, kindCell)
		for q := 0; q < 8; q++ {
			t.StoreWord(s.siteBuild, sub, offChildO(q), 0)
		}
		t.StorePtr(s.siteBuild, cell, offChildO(o), sub)
		cc := childCenter(center, half, o)
		var curPos [3]float64
		for k := 0; k < 3; k++ {
			curPos[k] = t.LoadFloat(s.siteBuild, cur, offBPosK(k))
		}
		s.insert(t, sub, cc, half/2, cur, curPos)
		s.insert(t, sub, cc, half/2, b, pos)
	default:
		s.insert(t, cur, childCenter(center, half, o), half/2, b, pos)
	}
}

// com computes masses and centers of mass bottom-up.
func (s *state) com(t *rt.Thread, cell gaddr.GP) {
	t.Work(comWork)
	var mass float64
	var wpos [3]float64
	for o := 0; o < 8; o++ {
		ch := t.LoadPtr(s.siteBuild, cell, offChildO(o))
		if ch.IsNil() {
			continue
		}
		if t.LoadInt(s.siteBuild, ch, offKind) == kindBody {
			m := t.LoadFloat(s.siteBuild, ch, offBMass)
			mass += m
			for k := 0; k < 3; k++ {
				wpos[k] += m * t.LoadFloat(s.siteBuild, ch, offBPosK(k))
			}
		} else {
			s.com(t, ch)
			m := t.LoadFloat(s.siteBuild, ch, offCMass)
			mass += m
			for k := 0; k < 3; k++ {
				wpos[k] += m * t.LoadFloat(s.siteBuild, ch, offCComK(k))
			}
		}
	}
	t.StoreFloat(s.siteBuild, cell, offCMass, mass)
	if mass > 0 {
		for k := 0; k < 3; k++ {
			t.StoreFloat(s.siteBuild, cell, offCComK(k), wpos[k]/mass)
		}
	}
}

// force walks the tree for one body, accumulating acceleration into acc.
func (s *state) force(t *rt.Thread, b gaddr.GP, bpos [3]float64, node gaddr.GP, half float64, acc *[3]float64) {
	if node.IsNil() {
		return
	}
	if t.LoadInt(s.siteCell, node, offKind) == kindBody {
		if node == b {
			return
		}
		var pos [3]float64
		for k := 0; k < 3; k++ {
			pos[k] = t.LoadFloat(s.siteCell, node, offBPosK(k))
		}
		m := t.LoadFloat(s.siteCell, node, offBMass)
		accumulateAt(t, bpos, m, pos, acc)
		return
	}
	var com [3]float64
	for k := 0; k < 3; k++ {
		com[k] = t.LoadFloat(s.siteCell, node, offCComK(k))
	}
	t.Work(openWork)
	var dr float64
	for k := 0; k < 3; k++ {
		d := com[k] - bpos[k]
		dr += d * d
	}
	if (2*half)*(2*half) < theta*theta*dr {
		m := t.LoadFloat(s.siteCell, node, offCMass)
		accumulateAt(t, bpos, m, com, acc)
		return
	}
	for o := 0; o < 8; o++ {
		s.force(t, b, bpos, t.LoadPtr(s.siteCell, node, offChildO(o)), half/2, acc)
	}
}

// accumulateAt mirrors accumulate on thread-local state.
func accumulateAt(t *rt.Thread, bpos [3]float64, mass float64, pos [3]float64, acc *[3]float64) {
	t.Work(accumWork)
	var dr [3]float64
	r2 := eps2
	for k := 0; k < 3; k++ {
		dr[k] = pos[k] - bpos[k]
		r2 += dr[k] * dr[k]
	}
	inv := gravity * mass / (r2 * math.Sqrt(r2))
	for k := 0; k < 3; k++ {
		acc[k] += dr[k] * inv
	}
}

// Run executes Barnes-Hut under the configuration (whole-program timing).
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	n := cfg.Scaled(paperBodies, 256)
	ref := genBodies(n)

	s := &state{
		r:         r,
		siteBody:  &rt.Site{Name: "barneshut.body", Mech: rt.Migrate},
		siteCell:  &rt.Site{Name: "barneshut.cell", Mech: rt.Cache},
		siteBuild: &rt.Site{Name: "barneshut.build", Mech: rt.Cache},
		parallel:  !cfg.Baseline,
	}

	// Allocate the bodies blocked across processors (costed: whole
	// program), remembering which indexes live on each processor.
	bodies := make([]gaddr.GP, n)
	perProc := make([][]int, r.P())
	var cycles int64
	r.Run(0, func(t *rt.Thread) {
		for i, b := range ref {
			p := bench.BlockedProc(i, n, r.P())
			g := t.Alloc(p, bodySz)
			bodies[i] = g
			perProc[p] = append(perProc[p], i)
			t.StoreInt(s.siteBuild, g, offKind, kindBody)
			t.StoreFloat(s.siteBuild, g, offBMass, b.mass)
			for k := 0; k < 3; k++ {
				t.StoreFloat(s.siteBuild, g, offBPosK(k), b.pos[k])
				t.StoreFloat(s.siteBuild, g, offBVelK(k), b.vel[k])
			}
		}

		center := [3]float64{0.5, 0.5, 0.5}
		const half = 4.0
		for step := 0; step < steps; step++ {
			// Phase 1: sequential tree build (as in the paper).
			root := t.Alloc(0, cellSz)
			t.StoreInt(s.siteBuild, root, offKind, kindCell)
			for q := 0; q < 8; q++ {
				t.StoreWord(s.siteBuild, root, offChildO(q), 0)
			}
			for i := range bodies {
				var pos [3]float64
				for k := 0; k < 3; k++ {
					pos[k] = t.LoadFloat(s.siteBuild, bodies[i], offBPosK(k))
				}
				s.insert(t, root, center, half, bodies[i], pos)
			}
			s.com(t, root)

			// Phase 2: parallel force computation — migrate to each
			// body's owner, cache the tree.
			forceProc := func(ct *rt.Thread, p int) {
				for _, i := range perProc[p] {
					b := bodies[i]
					var bpos [3]float64
					for k := 0; k < 3; k++ {
						bpos[k] = ct.LoadFloat(s.siteBody, b, offBPosK(k))
					}
					var acc [3]float64
					s.force(ct, b, bpos, root, half, &acc)
					for k := 0; k < 3; k++ {
						ct.StoreFloat(s.siteBody, b, offBAccK(k), acc[k])
					}
					if s.parallel {
						ct.Work(futureCost)
					}
				}
			}
			// Phase 3: parallel position update.
			advanceProc := func(ct *rt.Thread, p int) {
				for _, i := range perProc[p] {
					b := bodies[i]
					ct.Work(advanceWork)
					for k := 0; k < 3; k++ {
						v := ct.LoadFloat(s.siteBody, b, offBVelK(k)) +
							ct.LoadFloat(s.siteBody, b, offBAccK(k))*dt
						ct.StoreFloat(s.siteBody, b, offBVelK(k), v)
						ct.StoreFloat(s.siteBody, b, offBPosK(k),
							ct.LoadFloat(s.siteBody, b, offBPosK(k))+v*dt)
					}
				}
			}
			for _, phase := range []func(*rt.Thread, int){forceProc, advanceProc} {
				if !s.parallel {
					for p := 0; p < r.P(); p++ {
						phase(t, p)
					}
					continue
				}
				var futs []*rt.Future[int]
				for p := 0; p < r.P(); p++ {
					if len(perProc[p]) == 0 {
						continue
					}
					p := p
					ph := phase
					futs = append(futs, rt.Spawn(t, func(c *rt.Thread) int {
						c.MigrateTo(p)
						ph(c, p)
						return 0
					}))
				}
				for _, f := range futs {
					f.Touch(t)
				}
			}
		}
		cycles = r.M.Makespan()
	})

	// Verification: final positions against the plain-Go reference.
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for i := range bodies {
		for k := 0; k < 3; k++ {
			mix(bench.RawLoad(r, bodies[i], offBPosK(k)))
		}
	}

	return bench.Result{
		Name:      "barneshut",
		Procs:     r.P(),
		Cycles:    cycles,
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     h,
		WantCheck: reference(n, steps),
	}
}
