package bench_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/rt"

	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/perimeter"
)

// TestCoherenceDifferential runs bisort and perimeter under all three
// coherence schemes at P=2 and P=8 and requires the same program result
// and the same final heap contents everywhere. The schemes may disagree
// on cycles and invalidation traffic — that is the point of Table 3 —
// but never on what the program computed: a divergence means stale data
// was read through the software cache.
func TestCoherenceDifferential(t *testing.T) {
	for _, name := range []string{"bisort", "perimeter"} {
		for _, procs := range []int{2, 8} {
			t.Run(fmt.Sprintf("%s/P%d", name, procs), func(t *testing.T) {
				info, ok := bench.Get(name)
				if !ok {
					t.Fatalf("benchmark %q not registered", name)
				}
				type outcome struct {
					scheme string
					check  uint64
					heap   uint64
				}
				var ref *outcome
				for _, s := range schemes {
					var rtm *rt.Runtime
					res := info.Run(bench.Config{
						Procs:       procs,
						Scheme:      s.kind,
						RuntimeHook: func(r *rt.Runtime) { rtm = r },
					})
					if !res.Verified() {
						t.Fatalf("%s under %s: check %#x != %#x", name, s.name, res.Check, res.WantCheck)
					}
					if rtm == nil {
						t.Fatalf("%s under %s: RuntimeHook never ran", name, s.name)
					}
					o := outcome{scheme: s.name, check: res.Check, heap: rtm.HeapFingerprint()}
					if ref == nil {
						ref = &o
						continue
					}
					if o.check != ref.check {
						t.Errorf("program result differs between schemes %s and %s: %#x vs %#x",
							ref.scheme, o.scheme, ref.check, o.check)
					}
					if o.heap != ref.heap {
						t.Errorf("final heap contents differ between schemes %s and %s: %016x vs %016x",
							ref.scheme, o.scheme, ref.heap, o.heap)
					}
				}
			})
		}
	}
}
