//go:build race

package bench_test

// raceDetectorEnabled reports whether this binary was built with -race.
// The digest battery trims itself under the race detector (see
// sched_differential_test.go): race checking multiplies the channel
// scheduler's goroutine handoffs by an order of magnitude, and the value
// of the race run is exercising that concurrency at all — the full
// 60-config equivalence sweep still runs in every non-race test job.
const raceDetectorEnabled = true
