package health

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rt"
)

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 16})
		if !res.Verified() {
			t.Fatalf("P=%d: checksum %#x != %#x", procs, res.Check, res.WantCheck)
		}
	}
}

func TestCorrectnessAllSchemes(t *testing.T) {
	for _, scheme := range []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral} {
		res := Run(bench.Config{Procs: 4, Scale: 16, Scheme: scheme})
		if !res.Verified() {
			t.Fatalf("%v: checksum mismatch", scheme)
		}
	}
}

func TestModes(t *testing.T) {
	// Health verifies under both forced modes; Table 2 reports migrate-
	// only as roughly a wash (16.42 vs 16.52 at 32 processors).
	for _, mode := range []rt.Mode{rt.MigrateOnly, rt.CacheOnly} {
		res := Run(bench.Config{Procs: 4, Scale: 16, Mode: mode})
		if !res.Verified() {
			t.Fatalf("mode %v: checksum mismatch", mode)
		}
	}
}

func TestSpeedupShape(t *testing.T) {
	base := Run(bench.Config{Baseline: true, Scale: 4})
	sp2 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 2, Scale: 4}).Cycles)
	sp8 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 8, Scale: 4}).Cycles)
	if sp8 < sp2 || sp8 < 2 {
		t.Errorf("speedups: P=2 %.2f, P=8 %.2f; want growth", sp2, sp8)
	}
}

func TestHeuristicChoice(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	rec := r.FindLoop("sim/rec")
	if rec == nil {
		t.Fatal("recursion loop not found")
	}
	// Four recursive calls at default affinity: 1−0.3⁴ ≈ 99.2%.
	if aff, ok := rec.Matrix.Diagonal("v"); !ok || aff < 0.99 {
		t.Fatalf("recursion affinity = %v, %v; want ≈0.99", aff, ok)
	}
	if rec.Mech != core.ChooseMigrate || rec.Var != "v" {
		t.Fatalf("tree traversal choice = %s %s; want migrate v", rec.Mech, rec.Var)
	}
	lst := r.FindLoop("sim/while")
	if lst == nil || lst.Mech != core.ChooseCache || lst.Var != "p" {
		t.Fatal("patient list walk must cache p")
	}
	if r.UsesMigrationOnly() {
		t.Fatal("health is an M+C benchmark")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 16})
	b := Run(bench.Config{Procs: 4, Scale: 16})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
